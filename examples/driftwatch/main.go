// Drift watch: the operational loop the paper sketches in §VI-D — the
// deployed model never retrains; a lightweight monitor watches incoming
// telemetry windows and triggers an FS+GAN refresh only when the
// distribution actually departs from the source domain.
//
// Run with:
//
//	go run ./examples/driftwatch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
	"netdrift/internal/monitor"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("generating telemetry: a stable period followed by a drift ...")
	d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
		Seed:         17,
		SourceNormal: 1200, SourceFaults: [4]int{50, 80, 200, 150},
		TargetNormal: 500, TargetFaults: [4]int{30, 40, 80, 100},
		TargetTrainPerGroup: 12,
	})
	if err != nil {
		return err
	}

	// Train the fault detector once, on source data.
	scalerOnly := core.NewAdapter(core.AdapterConfig{
		Mode: core.ModeFSRecon, Recon: core.ReconGAN,
		GAN: core.GANConfig{Epochs: 1}, Seed: 18,
	})
	bootSupport, _, err := d.Targets[0].Train.FewShot(2, true, rand.New(rand.NewSource(18)))
	if err != nil {
		return err
	}
	if err := scalerOnly.Fit(d.Source, bootSupport); err != nil {
		return err
	}
	train, err := scalerOnly.TrainingData(d.Source)
	if err != nil {
		return err
	}
	clf := models.NewTNet(models.Options{Seed: 18, Epochs: 20})
	if err := clf.Fit(train.X, train.Y, 2); err != nil {
		return err
	}

	// Arm the drift monitor with the source distribution.
	det := monitor.New(monitor.Config{})
	if err := det.Fit(d.Source.X); err != nil {
		return err
	}

	// Simulated stream: three in-domain windows, then the drift arrives.
	srcPool := d.Source.Shuffle(rand.New(rand.NewSource(19)))
	windows := []struct {
		name string
		rows [][]float64
	}{
		{"week 1 (stable)", srcPool.X[0:250]},
		{"week 2 (stable)", srcPool.X[250:500]},
		{"week 3 (stable)", srcPool.X[500:750]},
		{"week 4 (traffic trend changed)", d.Targets[0].Test.X[:250]},
	}
	var adapter *core.Adapter
	for _, w := range windows {
		rep, err := det.Check(w.rows)
		if err != nil {
			return err
		}
		fmt.Printf("%-32s drifted=%-5v features=%2d maxPSI=%.2f\n",
			w.name, rep.Drifted, len(rep.DriftedFeatures), rep.MaxPSI)
		// Per-feature attribution: which columns pushed the verdict over.
		for _, f := range rep.TopOffenders(3) {
			fmt.Printf("    feature %2d: KS=%.3f (p=%.2g) PSI=%.2f\n",
				f.Index, f.KSStat, f.KSP, f.PSI)
		}
		if rep.Drifted && adapter == nil {
			fmt.Println("  -> drift confirmed: collecting 5 labelled samples per fault type, refitting FS+GAN")
			support, _, err := d.Targets[0].Train.FewShot(5, true, rand.New(rand.NewSource(20)))
			if err != nil {
				return err
			}
			adapter = core.NewAdapter(core.AdapterConfig{
				Mode: core.ModeFSRecon, Recon: core.ReconGAN,
				GAN: core.GANConfig{Epochs: 40}, Seed: 21,
			})
			if err := adapter.Fit(d.Source, support); err != nil {
				return err
			}
			fmt.Printf("  -> FS identified %d variant features; GAN trained on source only\n",
				len(adapter.VariantFeatures()))
		}
	}
	if adapter == nil {
		return fmt.Errorf("drift was never detected")
	}

	// The same TNet — untouched — now serves the drifted domain through the
	// refreshed adapter.
	test := d.Targets[0].Test
	raw, err := scalerOnly.TrainingData(test)
	if err != nil {
		return err
	}
	rawPred, err := models.PredictClasses(clf, raw.X)
	if err != nil {
		return err
	}
	rawF1, err := metrics.MacroF1Score(test.Y, rawPred, 2)
	if err != nil {
		return err
	}
	aligned, err := adapter.TransformTarget(test.X)
	if err != nil {
		return err
	}
	pred, err := models.PredictClasses(clf, aligned)
	if err != nil {
		return err
	}
	f1, err := metrics.MacroF1Score(test.Y, pred, 2)
	if err != nil {
		return err
	}
	fmt.Printf("\nfault detection on the drifted domain: F1 %.1f without adapter, %.1f with refreshed FS+GAN\n",
		rawF1, f1)
	fmt.Println("the TNet model itself was never retrained.")
	return nil
}
