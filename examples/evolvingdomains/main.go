// Evolving domains (paper §VI-F, Table III): one fault-detection model,
// trained exclusively on source data, survives two successive domain
// drifts without retraining — only the lightweight FS+GAN front end is
// refreshed per domain.
//
// Run with:
//
//	go run ./examples/evolvingdomains
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("generating synthetic 5GIPC dataset with two target domains ...")
	d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
		Seed:         11,
		SourceNormal: 1200, SourceFaults: [4]int{50, 80, 200, 150},
		TargetNormal: 400, TargetFaults: [4]int{30, 40, 70, 90},
		TargetTrainPerGroup: 12,
		NumTargets:          2,
	})
	if err != nil {
		return err
	}

	// The network-management model is trained ONCE, on source data only.
	// (Scaling is shared by every adapter: it is fitted on source.)
	ref := core.NewAdapter(core.AdapterConfig{Mode: core.ModeFS, Seed: 3})
	refSupport, _, err := d.Targets[0].Train.FewShot(5, true, rand.New(rand.NewSource(100)))
	if err != nil {
		return err
	}
	if err := ref.Fit(d.Source, refSupport); err != nil {
		return err
	}
	// Train on all features, scaled, via an FSRecon-mode adapter's view.
	trainer := core.NewAdapter(core.AdapterConfig{
		Mode: core.ModeFSRecon, Recon: core.ReconGAN,
		GAN: core.GANConfig{Epochs: 40}, Seed: 3,
	})
	if err := trainer.Fit(d.Source, refSupport); err != nil {
		return err
	}
	train, err := trainer.TrainingData(d.Source)
	if err != nil {
		return err
	}
	clf := models.NewTNet(models.Options{Seed: 3, Epochs: 20})
	if err := clf.Fit(train.X, train.Y, 2); err != nil {
		return err
	}
	fmt.Println("TNet fault-detection model trained on source data only.")

	// As the network drifts into Target_1 and later Target_2, only the
	// adapters are refitted (minutes), never the model.
	adapters := make([]*core.Adapter, 2)
	for t := 0; t < 2; t++ {
		support, _, err := d.Targets[t].Train.FewShot(5, true, rand.New(rand.NewSource(int64(200+t))))
		if err != nil {
			return err
		}
		ad := core.NewAdapter(core.AdapterConfig{
			Mode: core.ModeFSRecon, Recon: core.ReconGAN,
			GAN: core.GANConfig{Epochs: 40}, Seed: int64(10 + t),
		})
		if err := ad.Fit(d.Source, support); err != nil {
			return err
		}
		adapters[t] = ad
		fmt.Printf("FS+GAN_%d fitted: %d variant features\n", t+1, len(ad.VariantFeatures()))
	}

	fmt.Println("\ncross-evaluation (same TNet everywhere):")
	for a := 0; a < 2; a++ {
		for t := 0; t < 2; t++ {
			aligned, err := adapters[a].TransformTarget(d.Targets[t].Test.X)
			if err != nil {
				return err
			}
			pred, err := models.PredictClasses(clf, aligned)
			if err != nil {
				return err
			}
			f1, err := metrics.MacroF1Score(d.Targets[t].Test.Y, pred, 2)
			if err != nil {
				return err
			}
			marker := ""
			if a == t {
				marker = "  <- matched adapter"
			}
			fmt.Printf("  FS+GAN_%d on Target_%d: F1 = %.1f%s\n", a+1, t+1, f1, marker)
		}
	}

	// The paper observes most variant features are common across targets,
	// which is why a stale adapter remains competitive.
	common := intersection(adapters[0].VariantFeatures(), adapters[1].VariantFeatures())
	fmt.Printf("\nvariant features shared between the two targets: %d\n", common)
	return nil
}

func intersection(a, b []int) int {
	set := make(map[int]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	var n int
	for _, v := range b {
		if set[v] {
			n++
		}
	}
	return n
}
