// Quickstart: the FS+GAN pipeline end to end on a small synthetic drift
// problem.
//
// A traffic classifier is trained on source-domain telemetry. The target
// domain has drifted (a traffic-trend change soft-intervened on one
// feature). With five labelled target samples per class, the Adapter
// separates variant from invariant features, trains a conditional GAN on
// source data only, and aligns target samples at inference — no retraining
// of the classifier.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// makeDomain samples a tiny two-class telemetry problem: f0/f1 carry the
// class signal, f2 is a near-deterministic "traffic total" of f0+f1, f3 is
// noise. In the target domain, f2 is mean-shifted (a traffic-trend change).
func makeDomain(n int, drifted bool, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		cs := float64(2*c - 1)
		f0 := cs + 0.6*rng.NormFloat64()
		f1 := 0.8*cs + 0.6*rng.NormFloat64()
		f2 := f0 + f1 + 0.1*rng.NormFloat64()
		if drifted {
			f2 += 4
		}
		x[i] = []float64{f0, f1, f2, rng.NormFloat64()}
		y[i] = c
	}
	return &dataset.Dataset{
		X: x, Y: y,
		FeatureNames: []string{"pkts_in", "pkts_out", "traffic_total", "noise"},
		ClassNames:   []string{"normal", "congested"},
	}
}

func run() error {
	source := makeDomain(800, false, 1)
	targetSupport := makeDomain(10, true, 2) // 5 per class: the few-shot budget
	targetTest := makeDomain(400, true, 3)

	// 1. Fit the adapter: feature separation + GAN training (source only).
	adapter := core.NewAdapter(core.AdapterConfig{
		Mode:  core.ModeFSRecon,
		Recon: core.ReconGAN,
		GAN:   core.GANConfig{Epochs: 40},
		Seed:  7,
	})
	if err := adapter.Fit(source, targetSupport); err != nil {
		return err
	}
	for _, v := range adapter.VariantFeatures() {
		fmt.Printf("domain-variant feature: %s\n", source.FeatureNames[v])
	}

	// 2. Train the network-management model on source data only.
	train, err := adapter.TrainingData(source)
	if err != nil {
		return err
	}
	clf := models.NewMLPClassifier(models.Options{Seed: 7, Epochs: 20})
	if err := clf.Fit(train.X, train.Y, 2); err != nil {
		return err
	}

	// 3. Evaluate on the drifted target, with and without adaptation.
	rawScaled, err := adapter.TrainingData(targetTest) // naive: just scale
	if err != nil {
		return err
	}
	rawPred, err := models.PredictClasses(clf, rawScaled.X)
	if err != nil {
		return err
	}
	rawF1, err := metrics.MacroF1Score(targetTest.Y, rawPred, 2)
	if err != nil {
		return err
	}

	aligned, err := adapter.TransformTarget(targetTest.X)
	if err != nil {
		return err
	}
	adaptedPred, err := models.PredictClasses(clf, aligned)
	if err != nil {
		return err
	}
	adaptedF1, err := metrics.MacroF1Score(targetTest.Y, adaptedPred, 2)
	if err != nil {
		return err
	}

	fmt.Printf("\nF1 on drifted target without adaptation: %.1f\n", rawF1)
	fmt.Printf("F1 on drifted target with FS+GAN:         %.1f\n", adaptedF1)
	return nil
}
