// Failure classification on the synthetic 5GC dataset (paper §IV-A): 442
// telemetry metrics, 16 classes (normal + 5 fault types × 3 VNFs), with a
// digital-twin source domain and a drifted real-network target domain.
//
// The example compares the SrcOnly baseline against FS and FS+GAN with a
// TNet classifier at a 5-shot target budget, and prints the identified
// domain-variant features next to the generator's ground truth.
//
// Run with:
//
//	go run ./examples/failureclass
//
// (about two minutes on one CPU core; pass -quick for a fast, rougher run)
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"netdrift/internal/baselines"
	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	quick := flag.Bool("quick", false, "use a small data/epoch budget")
	flag.Parse()

	sourceSamples, epochs, ganEpochs := 1200, 20, 50
	if *quick {
		sourceSamples, epochs, ganEpochs = 480, 8, 15
	}

	fmt.Println("generating synthetic 5GC dataset ...")
	d, err := dataset.Synthetic5GC(dataset.FiveGCConfig{
		Seed:              42,
		SourceSamples:     sourceSamples,
		TargetTrainPool:   192,
		TargetTestSamples: 480,
	})
	if err != nil {
		return err
	}
	support, _, err := d.TargetTrain.FewShot(5, false, rand.New(rand.NewSource(43)))
	if err != nil {
		return err
	}
	fmt.Printf("source %d samples, target support %d (5 per class), test %d\n\n",
		d.Source.NumSamples(), support.NumSamples(), d.TargetTest.NumSamples())

	// SrcOnly baseline: train on source, hope for the best.
	srcOnly := models.NewTNet(models.Options{Seed: 1, Epochs: epochs})
	pred, err := baselines.SrcOnly{}.Predict(d.Source, support, d.TargetTest, srcOnly)
	if err != nil {
		return err
	}
	f1, err := metrics.MacroF1Score(d.TargetTest.Y, pred, 16)
	if err != nil {
		return err
	}
	fmt.Printf("SrcOnly (no adaptation):  F1 = %.1f\n", f1)

	// FS and FS+GAN.
	for _, mode := range []struct {
		name string
		cfg  core.AdapterConfig
	}{
		{"FS (ours)", core.AdapterConfig{Mode: core.ModeFS, Seed: 2}},
		{"FS+GAN (ours)", core.AdapterConfig{
			Mode: core.ModeFSRecon, Recon: core.ReconGAN,
			GAN: core.GANConfig{Epochs: ganEpochs}, Seed: 2,
		}},
	} {
		adapter := core.NewAdapter(mode.cfg)
		if err := adapter.Fit(d.Source, support); err != nil {
			return err
		}
		train, err := adapter.TrainingData(d.Source)
		if err != nil {
			return err
		}
		clf := models.NewTNet(models.Options{Seed: 2, Epochs: epochs})
		if err := clf.Fit(train.X, train.Y, 16); err != nil {
			return err
		}
		aligned, err := adapter.TransformTarget(d.TargetTest.X)
		if err != nil {
			return err
		}
		pred, err := models.PredictClasses(clf, aligned)
		if err != nil {
			return err
		}
		f1, err := metrics.MacroF1Score(d.TargetTest.Y, pred, 16)
		if err != nil {
			return err
		}
		fmt.Printf("%-24s F1 = %.1f  (%d variant features identified)\n",
			mode.name+":", f1, len(adapter.VariantFeatures()))

		if mode.cfg.Mode == core.ModeFSRecon {
			reportSeparation(adapter, d)
		}
	}
	return nil
}

func reportSeparation(adapter *core.Adapter, d *dataset.Drifted) {
	truth := make(map[int]bool, len(d.TrueVariant))
	for _, v := range d.TrueVariant {
		truth[v] = true
	}
	var tp int
	variant := adapter.VariantFeatures()
	for _, v := range variant {
		if truth[v] {
			tp++
		}
	}
	fmt.Printf("\nfeature separation vs ground truth: %d identified, %d/%d true targets (precision %.2f)\n",
		len(variant), tp, len(d.TrueVariant), float64(tp)/float64(max(len(variant), 1)))
	fmt.Println("examples of identified domain-variant metrics:")
	for i, v := range variant {
		if i >= 5 {
			break
		}
		fmt.Printf("  %s\n", d.Source.FeatureNames[v])
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
