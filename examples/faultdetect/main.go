// Fault detection on the synthetic 5GIPC dataset (paper §IV-B), including
// the paper's domain-splitting protocol: pool all telemetry, cluster it
// with a Gaussian mixture model, treat the larger cluster as the source
// domain and the smaller as the drifted target — then run FS+GAN.
//
// Run with:
//
//	go run ./examples/faultdetect
package main

import (
	"fmt"
	"log"
	"math/rand"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("generating synthetic 5GIPC dataset ...")
	d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
		Seed:         42,
		SourceNormal: 1200, SourceFaults: [4]int{50, 80, 200, 150},
		TargetNormal: 500, TargetFaults: [4]int{30, 40, 80, 100},
		TargetTrainPerGroup: 12,
	})
	if err != nil {
		return err
	}

	// The paper's protocol (§IV-B): the domains are not given — they are
	// recovered by clustering the pooled data with a GMM and taking the
	// larger cluster as the source.
	pooled, err := dataset.Concat(d.Source, d.Targets[0].Test)
	if err != nil {
		return err
	}
	clusters, _, err := dataset.SplitByGMM(pooled, 2, 7)
	if err != nil {
		return err
	}
	fmt.Printf("GMM domain split: %d source-like, %d target-like samples\n",
		clusters[0].NumSamples(), clusters[1].NumSamples())

	// Few-shot support drawn per fault type (the paper treats normal as a
	// fault type too): 5 samples per stratum.
	support, _, err := d.Targets[0].Train.FewShot(5, true, rand.New(rand.NewSource(43)))
	if err != nil {
		return err
	}
	fmt.Printf("few-shot support: %d samples across %d fault types\n\n",
		support.NumSamples(), 5)

	adapter := core.NewAdapter(core.AdapterConfig{
		Mode:  core.ModeFSRecon,
		Recon: core.ReconGAN,
		GAN:   core.GANConfig{Epochs: 40},
		Seed:  9,
	})
	if err := adapter.Fit(d.Source, support); err != nil {
		return err
	}
	fmt.Printf("FS identified %d domain-variant metrics (ground truth: %d)\n",
		len(adapter.VariantFeatures()), len(d.Targets[0].TrueVariant))

	train, err := adapter.TrainingData(d.Source)
	if err != nil {
		return err
	}
	clf := models.NewTNet(models.Options{Seed: 9, Epochs: 20})
	if err := clf.Fit(train.X, train.Y, 2); err != nil {
		return err
	}

	// Without adaptation: scale only.
	noAdapt, err := adapter.TrainingData(d.Targets[0].Test)
	if err != nil {
		return err
	}
	rawPred, err := models.PredictClasses(clf, noAdapt.X)
	if err != nil {
		return err
	}
	rawF1, err := metrics.MacroF1Score(d.Targets[0].Test.Y, rawPred, 2)
	if err != nil {
		return err
	}

	aligned, err := adapter.TransformTarget(d.Targets[0].Test.X)
	if err != nil {
		return err
	}
	pred, err := models.PredictClasses(clf, aligned)
	if err != nil {
		return err
	}
	f1, err := metrics.MacroF1Score(d.Targets[0].Test.Y, pred, 2)
	if err != nil {
		return err
	}

	fmt.Printf("\nfault-detection F1 without adaptation: %.1f\n", rawF1)
	fmt.Printf("fault-detection F1 with FS+GAN:        %.1f\n", f1)

	// Per-fault-type recall with adaptation.
	fmt.Println("\ndetection recall by fault type (with FS+GAN):")
	for g := 1; g <= 4; g++ {
		var total, hit int
		for i, grp := range d.Targets[0].Test.Groups {
			if grp != g {
				continue
			}
			total++
			if pred[i] == 1 {
				hit++
			}
		}
		if total > 0 {
			fmt.Printf("  %-18s %3d/%3d (%.0f%%)\n",
				dataset.GroupNames5GIPC[g], hit, total, 100*float64(hit)/float64(total))
		}
	}
	return nil
}
