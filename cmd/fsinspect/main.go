// Command fsinspect runs the FS causal feature separation on a synthetic
// drifted dataset and reports the identified domain-variant features
// against the generator's ground-truth intervention targets:
//
//	fsinspect -dataset 5gc -shots 5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"netdrift/internal/causal"
	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "fsinspect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ds    = flag.String("dataset", "5gc", "dataset: 5gc|5gipc")
		scale = flag.String("scale", "bench", "compute scale: quick|bench|full")
		shots = flag.Int("shots", 5, "target training samples per class")
		seed  = flag.Int64("seed", 1, "RNG seed")
		alpha = flag.Float64("alpha", 0.01, "CI-test significance level")
	)
	flag.Parse()

	sc, ok := experiments.ScaleByName(*scale)
	if !ok {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	truth, names, err := groundTruth(*ds, sc, *seed)
	if err != nil {
		return err
	}
	pair, err := experiments.MakePair(*ds, sc, *seed)
	if err != nil {
		return err
	}
	support, _, err := pair.TargetTrain.FewShot(*shots, pair.UseGroups, rand.New(rand.NewSource(*seed+1)))
	if err != nil {
		return err
	}

	sep := core.NewFeatureSeparator(causal.FNodeConfig{Alpha: *alpha})
	if err := sep.Fit(pair.Source.X, support.X); err != nil {
		return err
	}
	variant := sep.Variant()

	isTrue := make(map[int]bool, len(truth))
	for _, v := range truth {
		isTrue[v] = true
	}
	var tp int
	var falsePos []int
	for _, v := range variant {
		if isTrue[v] {
			tp++
		} else {
			falsePos = append(falsePos, v)
		}
	}
	found := make(map[int]bool, len(variant))
	for _, v := range variant {
		found[v] = true
	}
	var missed []int
	for _, v := range truth {
		if !found[v] {
			missed = append(missed, v)
		}
	}
	sort.Ints(missed)

	fmt.Printf("dataset=%s shots=%d source=%d support=%d features=%d\n",
		*ds, *shots, pair.Source.NumSamples(), support.NumSamples(), pair.Source.NumFeatures())
	fmt.Printf("ground-truth variant features: %d\n", len(truth))
	fmt.Printf("FS identified:                 %d\n", len(variant))
	recall := 0.0
	if len(truth) > 0 {
		recall = float64(tp) / float64(len(truth))
	}
	precision := 0.0
	if len(variant) > 0 {
		precision = float64(tp) / float64(len(variant))
	}
	fmt.Printf("recall=%.2f precision=%.2f\n\n", recall, precision)

	fmt.Println("identified variant features:")
	for _, v := range variant {
		mark := " "
		if !isTrue[v] {
			mark = "✗ (false positive)"
		}
		fmt.Printf("  %4d %-24s %s\n", v, names[v], mark)
	}
	if len(missed) > 0 {
		fmt.Println("\nmissed intervention targets (need more target samples):")
		for _, v := range missed {
			fmt.Printf("  %4d %s\n", v, names[v])
		}
	}
	_ = falsePos
	return nil
}

// groundTruth regenerates the dataset to expose the intervention targets
// and feature names.
func groundTruth(name string, sc experiments.Scale, seed int64) ([]int, []string, error) {
	switch name {
	case "5gc":
		d, err := dataset.Synthetic5GC(dataset.FiveGCConfig{
			Seed: seed, SourceSamples: sc.GCSource,
			TargetTrainPool: sc.GCTargetPool, TargetTestSamples: sc.GCTargetTest,
		})
		if err != nil {
			return nil, nil, err
		}
		return d.TrueVariant, d.Source.FeatureNames, nil
	case "5gipc":
		d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
			Seed: seed, SourceNormal: sc.IPCSourceNormal, SourceFaults: sc.IPCSourceFaults,
			TargetNormal: sc.IPCTargetNormal, TargetFaults: sc.IPCTargetFaults,
			TargetTrainPerGroup: sc.IPCTrainPool,
		})
		if err != nil {
			return nil, nil, err
		}
		return d.Targets[0].TrueVariant, d.Source.FeatureNames, nil
	default:
		return nil, nil, fmt.Errorf("unknown dataset %q", name)
	}
}
