package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"netdrift/internal/core"
	"netdrift/internal/ctrl"
	"netdrift/internal/dataset"
	"netdrift/internal/experiments"
	"netdrift/internal/fault"
	"netdrift/internal/models"
	"netdrift/internal/monitor"
	"netdrift/internal/serve"
)

// runCtrlCheck is the closed-loop acceptance test behind `driftserve
// -ctrlcheck`: a deterministic drift storm against the full controller
// stack, end to end over HTTP. Five phases, each gating the verdict:
//
//	A  clean loop: drifted telemetry through POST /v1/ingest must detect,
//	   refit (real FS+GAN), pass the shadow gate, hot-swap, and survive the
//	   watchdog — and the drift-to-recovery gauge must appear on /metrics.
//	B  refit chaos: with ctrl.refit erroring at 100%, a fresh drift must
//	   retry with backoff and land at refit-fail without touching serving.
//	C  poisoned candidate: a refit that returns the stale pass-through
//	   adapter must be rejected by the gate, not promoted.
//	D  watchdog: a force-promoted broken bundle (wrong feature width, so
//	   every /v1/adapt degrades to passthrough) must be rolled back under
//	   live traffic, and the pre-promotion bundle's responses must come
//	   back bit-identical.
//	E  crash resume: a controller rebuilt from the checkpoint must restore
//	   its epoch, reinstall the promoted bundle, and not re-trigger a refit.
//
// The verdict line is machine-greppable:
//
//	ctrlcheck: PASS phases=A,B,C,D,E epoch=2 recovery=1.234s
func runCtrlCheck(out io.Writer, cfg config) error {
	// Acceptance wants tight loops; honor explicit flags, shrink defaults.
	if cfg.BreakerBackoff == 100*time.Millisecond {
		cfg.BreakerBackoff = 2 * time.Millisecond
	}
	if cfg.BreakerMaxBackoff == 30*time.Second {
		cfg.BreakerMaxBackoff = 20 * time.Millisecond
	}
	o, reg, co, srv, _, err := buildStack(cfg)
	if err != nil {
		return err
	}
	defer co.Close()

	pair, err := experiments.MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	work, err := os.MkdirTemp("", "ctrlcheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(work)

	// The stale incumbent: support drawn from the source itself, so the
	// adapter never learned the drift (pass-through scaling), with the
	// downstream classifier that is never retrained from here on.
	stale, clf, err := fitStaleIncumbent(pair, cfg.Seed)
	if err != nil {
		return err
	}
	incPath := work + "/bundle-epoch000000.ndbf"
	if err := serve.WriteBundleFileFormat(incPath, "ctrlcheck-incumbent", stale, clf, serve.FormatBinary); err != nil {
		return err
	}
	if _, err := reg.LoadFile(incPath); err != nil {
		return err
	}

	det := monitor.New(monitor.Config{})
	if err := det.Fit(pair.Source.X); err != nil {
		return err
	}
	probe := subset(pair.TargetTest, 160)

	// The refit is the real thing — the paper's FS+GAN fitted on the
	// reservoir shots — except when the poison switch is thrown, which
	// returns the stale adapter (a candidate the gate must reject).
	var poison atomic.Bool
	refit := func(ctx context.Context, shots *dataset.Dataset, epoch int) (*ctrl.Candidate, error) {
		if poison.Load() {
			return &ctrl.Candidate{ID: fmt.Sprintf("poison-epoch%d", epoch), Adapter: stale}, nil
		}
		ad := core.NewAdapter(core.AdapterConfig{
			Mode:  core.ModeFSRecon,
			Recon: core.ReconGAN,
			GAN:   core.GANConfig{Epochs: cfg.Scale.GANEpochs},
			Seed:  cfg.Seed + int64(epoch),
		})
		if err := ad.Fit(pair.Source, shots); err != nil {
			return nil, err
		}
		return &ctrl.Candidate{ID: fmt.Sprintf("refit-epoch%d", epoch), Adapter: ad}, nil
	}

	cinj := fault.New(cfg.Seed)
	events := make(chan ctrl.Event, 4096)
	ctrlCfg := ctrl.Config{
		Detector: det, Registry: reg, Refit: refit,
		Probe: probe, NumClasses: pair.NumClasses,
		WindowSize: 32, CheckEvery: 16, DriftUp: 2,
		Cooldown: 150 * time.Millisecond,
		ShotsPerClass: cfg.Shots, MinShotsPerClass: 2,
		Retry: ctrl.RetryConfig{MaxAttempts: 3, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 40 * time.Millisecond},
		BundleDir: work, BundleFormat: serve.FormatBinary,
		InitialBundlePath: incPath,
		SLO:               srv.SLOSet(),
		WatchFor:          1200 * time.Millisecond, WatchEvery: 25 * time.Millisecond,
		WatchWindow: 10 * time.Second, MinWatchRequests: 10,
		CheckpointPath: work + "/ctrl.ckpt",
		Seed:           cfg.Seed, Faults: cinj, Obs: o,
		OnEvent: func(ev ctrl.Event) {
			select {
			case events <- ev:
			default:
			}
		},
	}
	c, err := ctrl.New(ctrlCfg)
	if err != nil {
		return err
	}
	srv.SetIngest(c)
	srv.SetCtrlStatus(func() any { return c.Status() })
	c.Start()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	waitEvent := func(kind string, timeout time.Duration) (ctrl.Event, error) {
		deadline := time.After(timeout)
		for {
			select {
			case ev := <-events:
				fmt.Fprintf(out, "  event %-14s epoch=%d %s\n", ev.Kind, ev.Epoch, ev.Detail)
				if ev.Kind == kind {
					return ev, nil
				}
				// A campaign that resolves the wrong way will never produce
				// the awaited kind; fail fast with the actual outcome.
				for _, term := range []string{ctrl.EventRefitFail, ctrl.EventGateFail, ctrl.EventPromoteFail, ctrl.EventRollback, ctrl.EventWatchClear} {
					if ev.Kind == term && kind != term {
						return ev, fmt.Errorf("waiting for %q, campaign ended with %q (%s)", kind, ev.Kind, ev.Detail)
					}
				}
			case <-deadline:
				return ctrl.Event{}, fmt.Errorf("timed out waiting for event %q", kind)
			}
		}
	}
	ingest := func(rows [][]float64, labels []int) error {
		body, _ := json.Marshal(serve.IngestRequest{Rows: rows, Labels: labels})
		res, err := http.Post(base+serve.EndpointIngest, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer res.Body.Close()
		if res.StatusCode != http.StatusOK {
			blob, _ := io.ReadAll(res.Body)
			return fmt.Errorf("ingest: %d %s", res.StatusCode, blob)
		}
		return nil
	}
	// feed streams ds through /v1/ingest in batches until stop() says done
	// (or the batches run out — that is the error case).
	feed := func(ds *dataset.Dataset, transform func([]float64) []float64, stop func() bool) error {
		const batch = 16
		for at := 0; at+batch <= len(ds.X); at += batch {
			if stop() {
				return nil
			}
			rows := make([][]float64, batch)
			for i := range rows {
				row := append([]float64(nil), ds.X[at+i]...)
				if transform != nil {
					row = transform(row)
				}
				rows[i] = row
			}
			if err := ingest(rows, ds.Y[at:at+batch]); err != nil {
				return err
			}
			time.Sleep(2 * time.Millisecond)
		}
		if stop() {
			return nil
		}
		return fmt.Errorf("telemetry exhausted (%d rows) before the controller reacted", len(ds.X))
	}
	// A campaign can resolve faster than the feed loop polls, so "reacted"
	// means either a campaign in flight or one just finished (cooldown
	// re-armed) — each phase sleeps the previous cooldown off first.
	campaignStarted := func() bool {
		st := c.Status()
		return st.Phase != ctrl.PhaseIdle || st.CooldownRemaining != ""
	}

	var phases []string
	fail := func(phase string, err error) error {
		fmt.Fprintf(out, "ctrlcheck: FAIL phase=%s: %v\n", phase, err)
		if o.Flight != nil && cfg.FlightSnap != "" {
			if f, ferr := os.Create(cfg.FlightSnap); ferr == nil {
				if o.Flight.WriteSnapshot(f, "ctrlcheck-fail") == nil {
					fmt.Fprintf(out, "  flight recorder dumped to %s\n", cfg.FlightSnap)
				}
				f.Close()
			}
		}
		return fmt.Errorf("ctrlcheck failed in phase %s: %w", phase, err)
	}

	// --- Phase A: clean closed loop over HTTP. ---
	fmt.Fprintf(out, "ctrlcheck: phase A — drift storm (dataset %s, scale %s, %d shots/class)\n",
		cfg.Dataset, cfg.ScaleName, cfg.Shots)
	if err := feed(pair.TargetTrain, nil, campaignStarted); err != nil {
		return fail("A", err)
	}
	if _, err := waitEvent(ctrl.EventGatePass, 2*time.Minute); err != nil {
		return fail("A", err)
	}
	if _, err := waitEvent(ctrl.EventPromote, 30*time.Second); err != nil {
		return fail("A", err)
	}
	if got := reg.Current().ID; !strings.HasPrefix(got, "refit-epoch") {
		return fail("A", fmt.Errorf("current bundle = %q, want the refit candidate", got))
	}
	if _, err := waitEvent(ctrl.EventWatchClear, 30*time.Second); err != nil {
		return fail("A", err)
	}
	recovery := c.Status().LastRecoverySeconds
	metricLine, err := scrapeMetric(base, "netdrift_ctrl_drift_to_recovery_seconds")
	if err != nil {
		return fail("A", err)
	}
	fmt.Fprintf(out, "  %s\n", metricLine)
	phases = append(phases, "A")

	// --- Phase B: refit chaos — retries, backoff, fail-closed. ---
	fmt.Fprintln(out, "ctrlcheck: phase B — refit erroring at 100%, campaign must fail closed")
	cinj.Set(ctrl.FaultSiteRefit, fault.Spec{ErrRate: 1})
	time.Sleep(300 * time.Millisecond) // clear phase A's cooldown
	served := reg.Current().ID
	// Phase A rebaselined the detector on drifted telemetry, so a fresh,
	// different shift is needed: a deterministic affine warp.
	warp := func(row []float64) []float64 {
		for i := range row {
			row[i] = row[i]*1.5 + 3
		}
		return row
	}
	if err := feed(pair.TargetTrain, warp, campaignStarted); err != nil {
		return fail("B", err)
	}
	if _, err := waitEvent(ctrl.EventRefitRetry, time.Minute); err != nil {
		return fail("B", err)
	}
	if _, err := waitEvent(ctrl.EventRefitFail, time.Minute); err != nil {
		return fail("B", err)
	}
	if got := reg.Current().ID; got != served {
		return fail("B", fmt.Errorf("failed refit disturbed serving: %q -> %q", served, got))
	}
	cinj.Clear()
	phases = append(phases, "B")

	// --- Phase C: poisoned candidate — the gate must reject it. ---
	fmt.Fprintln(out, "ctrlcheck: phase C — poisoned refit candidate, gate must reject")
	poison.Store(true)
	time.Sleep(300 * time.Millisecond)
	if err := feed(pair.TargetTrain, warp, campaignStarted); err != nil {
		return fail("C", err)
	}
	if _, err := waitEvent(ctrl.EventGateFail, 2*time.Minute); err != nil {
		return fail("C", err)
	}
	if got := reg.Current().ID; got != served {
		return fail("C", fmt.Errorf("rejected candidate reached serving: %q -> %q", served, got))
	}
	poison.Store(false)
	phases = append(phases, "C")

	// --- Phase D: watchdog rollback under live traffic. ---
	// The broken bundle is fitted on a feature-narrowed source, so every
	// full-width /v1/adapt degrades to passthrough — visible to the
	// watchdog as the degraded fraction, invisible to the SLO error budget.
	fmt.Fprintln(out, "ctrlcheck: phase D — force-promote a broken bundle, watchdog must roll back")
	time.Sleep(300 * time.Millisecond)
	goldenBundle := reg.Current()
	goldenRows, probeBody, err := goldenAdapt(goldenBundle, pair.TargetTest.X[:cfg.RowsPerReq])
	if err != nil {
		return fail("D", err)
	}
	broken, err := fitBrokenAdapter(pair, cfg.Seed)
	if err != nil {
		return fail("D", err)
	}
	forceDone := make(chan error, 1)
	go func() {
		forceDone <- c.ForcePromote(&ctrl.Candidate{ID: "ctrlcheck-broken", Adapter: broken})
	}()
	if _, err := waitEvent(ctrl.EventPromote, 30*time.Second); err != nil {
		return fail("D", err)
	}
	trafficStop := make(chan struct{})
	go func() {
		for {
			select {
			case <-trafficStop:
				return
			default:
			}
			res, err := http.Post(base+serve.EndpointAdapt, "application/json", bytes.NewReader(probeBody))
			if err == nil {
				io.Copy(io.Discard, res.Body)
				res.Body.Close()
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	_, rollErr := waitEvent(ctrl.EventRollback, time.Minute)
	close(trafficStop)
	if rollErr != nil {
		return fail("D", rollErr)
	}
	if err := <-forceDone; err != nil {
		return fail("D", fmt.Errorf("ForcePromote returned %w", err))
	}
	// Golden-bit restoration: the pre-promotion bundle must answer again,
	// bit for bit.
	restored := false
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		rows, bid, err := postAdaptRows(base, probeBody)
		if err == nil && bid == goldenBundle.ID && sameFloatRows(rows, goldenRows) {
			restored = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !restored {
		return fail("D", fmt.Errorf("bundle %q responses not restored bit-identical after rollback", goldenBundle.ID))
	}
	phases = append(phases, "D")

	// --- Phase E: crash + resume from checkpoint. ---
	fmt.Fprintln(out, "ctrlcheck: phase E — crash the controller, resume from checkpoint")
	epochBefore := c.Status().Epoch
	c.Close()
	reg.Swap(nil) // simulate a cold process: nothing installed
	events2 := make(chan ctrl.Event, 4096)
	ctrlCfg.OnEvent = func(ev ctrl.Event) {
		select {
		case events2 <- ev:
		default:
		}
	}
	det2 := monitor.New(monitor.Config{})
	if err := det2.Fit(pair.Source.X); err != nil {
		return fail("E", err)
	}
	ctrlCfg.Detector = det2
	c2, err := ctrl.New(ctrlCfg)
	if err != nil {
		return fail("E", err)
	}
	defer c2.Close()
	st := c2.Status()
	if !st.Restored || st.Epoch != epochBefore {
		return fail("E", fmt.Errorf("restored status = %+v, want restored epoch %d", st, epochBefore))
	}
	events = events2
	c2.Start()
	if _, err := waitEvent(ctrl.EventResume, 30*time.Second); err != nil {
		return fail("E", err)
	}
	if cur := reg.Current(); cur == nil || cur.ID != goldenBundle.ID {
		return fail("E", fmt.Errorf("resume did not reinstall %q", goldenBundle.ID))
	}
	// The restart itself must not re-trigger the refit it already shipped.
	select {
	case ev := <-events2:
		if ev.Kind == ctrl.EventDriftDetected || ev.Kind == ctrl.EventRefitStart {
			return fail("E", fmt.Errorf("resume re-triggered %q", ev.Kind))
		}
	case <-time.After(300 * time.Millisecond):
	}
	phases = append(phases, "E")

	fmt.Fprintf(out, "ctrlcheck: PASS phases=%s epoch=%d recovery=%.3fs\n",
		strings.Join(phases, ","), c2.Status().Epoch, recovery)
	return nil
}

// fitStaleIncumbent builds the pre-drift serving pair: an adapter whose
// few-shot support came from the source itself (so it adapts nothing) and
// the downstream classifier trained through it.
func fitStaleIncumbent(pair *experiments.Pair, seed int64) (*core.Adapter, *models.MLPClassifier, error) {
	support := subset(pair.Source, 40)
	ad := core.NewAdapter(core.AdapterConfig{
		Mode:  core.ModeFSRecon,
		Recon: core.ReconGAN,
		GAN:   core.GANConfig{Epochs: 2},
		Seed:  seed,
	})
	if err := ad.Fit(pair.Source, support); err != nil {
		return nil, nil, fmt.Errorf("fit stale incumbent: %w", err)
	}
	train, err := ad.TrainingData(pair.Source)
	if err != nil {
		return nil, nil, err
	}
	clf := models.NewMLPClassifier(models.Options{Seed: seed, Epochs: 6})
	if err := clf.Fit(train.X, train.Y, pair.NumClasses); err != nil {
		return nil, nil, fmt.Errorf("fit classifier: %w", err)
	}
	return ad, clf, nil
}

// fitBrokenAdapter produces an adapter of the wrong feature width (fitted
// on a narrowed source), so full-width serving rows make it error and the
// coalescer degrade every response to passthrough.
func fitBrokenAdapter(pair *experiments.Pair, seed int64) (*core.Adapter, error) {
	w := len(pair.Source.X[0])
	keep := make([]int, w-1)
	for i := range keep {
		keep[i] = i
	}
	narrow, err := pair.Source.SelectFeatures(keep)
	if err != nil {
		return nil, err
	}
	ad := core.NewAdapter(core.AdapterConfig{Mode: core.ModeFS, Seed: seed})
	if err := ad.Fit(narrow, subset(narrow, 40)); err != nil {
		return nil, fmt.Errorf("fit broken adapter: %w", err)
	}
	return ad, nil
}

// subset returns the first n rows of ds (deep enough a copy for serving).
func subset(ds *dataset.Dataset, n int) *dataset.Dataset {
	if n > len(ds.X) {
		n = len(ds.X)
	}
	return &dataset.Dataset{X: ds.X[:n], Y: ds.Y[:n]}
}

// goldenAdapt computes the bit-exact expected /v1/adapt output for rows
// under b, plus the request body that asks for it.
func goldenAdapt(b *serve.Bundle, rows [][]float64) ([][]float64, []byte, error) {
	seeds := make([]int64, len(rows))
	for i := range seeds {
		seeds[i] = core.SampleSeed(0, i)
	}
	var scr core.AdaptScratch
	outT, err := b.Adapter.AdaptBatch(rows, seeds, &scr)
	if err != nil {
		return nil, nil, fmt.Errorf("golden adaptation: %w", err)
	}
	golden := make([][]float64, outT.Rows())
	for i := range golden {
		golden[i] = append([]float64(nil), outT.Row(i)...)
	}
	body, err := json.Marshal(serve.AdaptRequest{Rows: rows})
	if err != nil {
		return nil, nil, err
	}
	return golden, body, nil
}

// postAdaptRows posts one /v1/adapt request and returns the adapted rows
// and bundle id (error on non-200 or degraded responses).
func postAdaptRows(base string, body []byte) ([][]float64, string, error) {
	res, err := http.Post(base+serve.EndpointAdapt, "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, "", err
	}
	defer res.Body.Close()
	var ar serve.AdaptResponse
	if err := json.NewDecoder(res.Body).Decode(&ar); err != nil {
		return nil, "", err
	}
	if res.StatusCode != http.StatusOK || ar.Degraded {
		return nil, "", fmt.Errorf("status %d degraded=%v", res.StatusCode, ar.Degraded)
	}
	return ar.Rows, ar.BundleID, nil
}

func sameFloatRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// scrapeMetric fetches /metrics and returns the first line bearing name.
func scrapeMetric(base, name string) (string, error) {
	res, err := http.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	blob, err := io.ReadAll(res.Body)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(blob), "\n") {
		if strings.HasPrefix(line, name) {
			return line, nil
		}
	}
	return "", fmt.Errorf("metric %s not found on /metrics", name)
}
