// Command driftserve serves a fitted adaptation bundle over HTTP with
// micro-batch request coalescing and lock-free artifact hot-swap.
//
// Build a serving bundle from a synthetic drift pair:
//
//	driftserve -mkbundle -bundle fixture.json -dataset 5gc -scale quick
//
// Serve it:
//
//	driftserve -bundle fixture.json -addr :8100
//	curl -s localhost:8100/healthz
//	curl -s -X POST localhost:8100/v1/adapt -d '{"rows":[[...]],"predict":true}'
//	curl -s localhost:8100/metrics
//
// Benchmark it (closed-loop load generator against an in-process server,
// plus the micro-batching speedup stage appended to BENCH_parallel.json):
//
//	driftserve -bundle fixture.json -loadgen -conns 4 -duration 10s \
//	    -bench-out BENCH_parallel.json
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"netdrift/internal/core"
	"netdrift/internal/ctrl"
	"netdrift/internal/dataset"
	"netdrift/internal/experiments"
	"netdrift/internal/fault"
	"netdrift/internal/models"
	"netdrift/internal/monitor"
	"netdrift/internal/obs"
	"netdrift/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "driftserve:", err)
		os.Exit(1)
	}
}

// Wire codec names accepted by -codec (and used as loadgen stage labels).
const (
	codecJSON   = "json"
	codecBinary = "binary"
)

type config struct {
	Bundle   string
	Addr     string
	MaxBatch int
	MaxWait  time.Duration
	Workers  int

	// Resilience knobs.
	FaultPlan         string
	MaxQueue          int
	RequestTimeout    time.Duration
	BreakerThreshold  int
	BreakerBackoff    time.Duration
	BreakerMaxBackoff time.Duration
	DrainTimeout      time.Duration

	// Observability knobs.
	TracePath       string
	FlightCap       int
	FlightSnap      string
	SLOLatency      time.Duration
	SLOAvailability float64

	Dataset   string
	ScaleName string
	Scale     experiments.Scale
	Seed      int64
	Shots     int
	ID        string
	Format    string
	Convert   string

	Conns      int
	Duration   time.Duration
	RowsPerReq int
	BenchOut   string
	Codec      string

	// Drift-controller knobs (-ctrl serving mode and -ctrlcheck).
	Ctrl           bool
	CtrlWindow     int
	CtrlCooldown   time.Duration
	CtrlMargin     float64
	CtrlWatch      time.Duration
	CtrlBundleDir  string
	CtrlCheckpoint string
}

// breakerConfig maps the CLI knobs onto a serve.BreakerConfig.
func (c config) breakerConfig() serve.BreakerConfig {
	return serve.BreakerConfig{
		FailThreshold: c.BreakerThreshold,
		BaseBackoff:   c.BreakerBackoff,
		MaxBackoff:    c.BreakerMaxBackoff,
		Seed:          c.Seed,
	}
}

// faultInjector parses -faults into an armed injector, or nil when the
// plan is empty (the production default: no chaos).
func (c config) faultInjector() (*fault.Injector, error) {
	if c.FaultPlan == "" {
		return nil, nil
	}
	plan, err := fault.ParsePlan(c.FaultPlan)
	if err != nil {
		return nil, fmt.Errorf("-faults: %w", err)
	}
	if err := fault.ValidatePlan(plan); err != nil {
		return nil, fmt.Errorf("-faults: %w", err)
	}
	inj := fault.New(c.Seed)
	inj.Load(plan)
	return inj, nil
}

// serveOptions assembles the coalescer options shared by serve, loadgen,
// and chaoscheck modes.
func (c config) serveOptions(o *obs.Observer, inj *fault.Injector) serve.Options {
	return serve.Options{
		MaxBatch: c.MaxBatch, MaxWait: c.MaxWait, Workers: c.Workers,
		MaxQueue: c.MaxQueue, RequestTimeout: c.RequestTimeout,
		Breaker: c.breakerConfig(), Faults: inj, Obs: o,
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("driftserve", flag.ContinueOnError)
	var (
		bundle   = fs.String("bundle", "bundle.json", "bundle file to serve (or write with -mkbundle)")
		addr     = fs.String("addr", ":8100", "HTTP listen address")
		maxBatch = fs.Int("max-batch", 32, "coalescer flush threshold in rows")
		maxWait  = fs.Duration("max-wait", 2*time.Millisecond, "max queueing delay before a partial batch flushes")
		workers  = fs.Int("workers", 1, "batch executor goroutines")

		mkbundle = fs.Bool("mkbundle", false, "fit a bundle from a synthetic drift pair and write it to -bundle instead of serving")
		ds       = fs.String("dataset", "5gc", "dataset for -mkbundle/-loadgen rows: 5gc|5gipc")
		scale    = fs.String("scale", "quick", "compute scale for -mkbundle/-loadgen: quick|bench|full")
		seed     = fs.Int64("seed", 1, "base RNG seed for -mkbundle/-loadgen")
		shots    = fs.Int("shots", 10, "few-shot target samples per class for -mkbundle")
		id       = fs.String("id", "", "bundle id (-mkbundle; default derived from dataset/scale/seed)")
		format   = fs.String("format", "json", "bundle encoding for -mkbundle/-convert: json|binary (loads always sniff)")
		convert  = fs.String("convert", "", "re-encode the bundle at this path into -bundle using -format, then exit")

		proberow = fs.Bool("proberow", false, "print one dataset test row as a JSON array (for hand-crafting /v1/adapt requests) and exit")

		loadgen    = fs.Bool("loadgen", false, "run the closed-loop load generator against an in-process server instead of serving")
		chaoscheck = fs.Bool("chaoscheck", false, "run the chaos acceptance check (fault storm + torn-response audit + recovery probe) and exit non-zero on any violation")
		conns      = fs.Int("conns", 4, "concurrent closed-loop clients for -loadgen/-chaoscheck")
		duration   = fs.Duration("duration", 5*time.Second, "load generation duration")
		rowsPerReq = fs.Int("rows-per-req", 8, "rows per request for -loadgen")
		benchOut   = fs.String("bench-out", "", "append the serve micro-batching + codec stages to this BENCH_parallel.json (empty = skip)")
		codec      = fs.String("codec", "json", "wire codec the -loadgen clients speak: json|binary")

		obsdump = fs.String("obsdump", "", "pretty-print a flight-recorder snapshot file and exit")

		ctrlOn         = fs.Bool("ctrl", false, "run the closed-loop drift controller alongside serving (POST telemetry to /v1/ingest)")
		ctrlcheck      = fs.Bool("ctrlcheck", false, "run the closed-loop drift-response acceptance check (drift storm -> refit -> gate -> hot-swap -> rollback -> resume) and exit non-zero on any violation")
		ctrlWindow     = fs.Int("ctrl-window", 64, "drift-check sliding window in telemetry rows")
		ctrlCooldown   = fs.Duration("ctrl-cooldown", 30*time.Second, "minimum pause between drift-response campaigns")
		ctrlMargin     = fs.Float64("ctrl-margin", 1.0, "macro-F1 points a refit candidate must beat the incumbent by at the shadow gate")
		ctrlWatch      = fs.Duration("ctrl-watch", 2*time.Minute, "how long a promotion stays under the rollback watchdog")
		ctrlBundleDir  = fs.String("ctrl-bundledir", ".", "directory promoted bundle files are written to")
		ctrlCheckpoint = fs.String("ctrl-checkpoint", "", "controller checkpoint file for crash-safe resume (empty = no checkpointing)")

		trace      = fs.String("trace", "", `span sink: write one JSON line per finished span to this file ("-" = stdout; empty = tracing off, the zero-allocation path)`)
		flightCap  = fs.Int("flightrec-cap", obs.DefaultFlightCapacity, "flight-recorder ring capacity in events (0 = recorder off)")
		flightSnap = fs.String("flightrec-snap", "flightrec.json", "file the flight ring is auto-snapshotted to on incidents (executor panic, breaker open); empty disarms")
		sloLatency = fs.Duration("slo-latency", 250*time.Millisecond, "SLO latency objective: slower successful requests burn the error budget")
		sloAvail   = fs.Float64("slo-availability", 0.999, "SLO availability objective in (0,1); the error budget is 1-availability")

		faults            = fs.String("faults", "", `deterministic fault plan, e.g. "batch.exec:err=0.2,panic=0.05,slow=1ms@0.3;http.adapt:err=0.1" (sites: `+strings.Join(fault.KnownSites(), ", ")+`)`)
		maxQueue          = fs.Int("max-queue", 4096, "admission queue bound in rows; excess load is shed with 429")
		requestTimeout    = fs.Duration("request-timeout", 0, "per-request deadline applied by the server (0 = none)")
		breakerThreshold  = fs.Int("breaker-threshold", 3, "consecutive failures that trip a circuit breaker open")
		breakerBackoff    = fs.Duration("breaker-backoff", 100*time.Millisecond, "base breaker backoff (doubles per trip, jittered)")
		breakerMaxBackoff = fs.Duration("breaker-max-backoff", 30*time.Second, "breaker backoff ceiling")
		drainTimeout      = fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain deadline on SIGTERM/SIGINT")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc, ok := experiments.ScaleByName(*scale)
	if !ok {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	cfg := config{
		Bundle: *bundle, Addr: *addr, MaxBatch: *maxBatch, MaxWait: *maxWait, Workers: *workers,
		FaultPlan: *faults, MaxQueue: *maxQueue, RequestTimeout: *requestTimeout,
		BreakerThreshold: *breakerThreshold, BreakerBackoff: *breakerBackoff,
		BreakerMaxBackoff: *breakerMaxBackoff, DrainTimeout: *drainTimeout,
		TracePath: *trace, FlightCap: *flightCap, FlightSnap: *flightSnap,
		SLOLatency: *sloLatency, SLOAvailability: *sloAvail,
		Dataset: *ds, ScaleName: *scale, Scale: sc, Seed: *seed, Shots: *shots, ID: *id,
		Format: *format, Convert: *convert,
		Conns: *conns, Duration: *duration, RowsPerReq: *rowsPerReq, BenchOut: *benchOut,
		Codec: *codec,
		Ctrl:  *ctrlOn, CtrlWindow: *ctrlWindow, CtrlCooldown: *ctrlCooldown,
		CtrlMargin: *ctrlMargin, CtrlWatch: *ctrlWatch,
		CtrlBundleDir: *ctrlBundleDir, CtrlCheckpoint: *ctrlCheckpoint,
	}
	if cfg.Format != string(serve.FormatJSON) && cfg.Format != string(serve.FormatBinary) {
		return fmt.Errorf("unknown -format %q (want json or binary)", cfg.Format)
	}
	if cfg.Codec != codecJSON && cfg.Codec != codecBinary {
		return fmt.Errorf("unknown -codec %q (want json or binary)", cfg.Codec)
	}
	switch {
	case *obsdump != "":
		return runObsDump(out, *obsdump)
	case *convert != "":
		return runConvert(out, cfg)
	case *mkbundle:
		return runMkBundle(out, cfg)
	case *proberow:
		return runProbeRow(out, cfg)
	case *loadgen:
		return runLoadgen(out, cfg)
	case *chaoscheck:
		return runChaosCheck(out, cfg)
	case *ctrlcheck:
		return runCtrlCheck(out, cfg)
	default:
		return runServe(out, cfg)
	}
}

// slo maps the CLI knobs onto the obs.SLO objective.
func (c config) slo() obs.SLO {
	return obs.SLO{LatencyObjective: c.SLOLatency.Seconds(), Availability: c.SLOAvailability}
}

// runProbeRow prints the first target-test row of the configured dataset
// as a JSON array, sized to match what a bundle fit on that dataset
// expects in /v1/adapt requests.
func runProbeRow(out io.Writer, cfg config) error {
	pair, err := experiments.MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	if len(pair.TargetTest.X) == 0 {
		return fmt.Errorf("dataset %q has no target test rows", cfg.Dataset)
	}
	blob, err := json.Marshal(pair.TargetTest.X[0])
	if err != nil {
		return err
	}
	_, err = fmt.Fprintln(out, string(blob))
	return err
}

// runMkBundle fits the paper's FS+GAN adapter and downstream MLP on a
// synthetic drift pair and writes them as one serving bundle.
func runMkBundle(out io.Writer, cfg config) error {
	pair, err := experiments.MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	drawRng := rand.New(rand.NewSource(cfg.Seed + 977))
	support, _, err := pair.TargetTrain.FewShot(cfg.Shots, pair.UseGroups, drawRng)
	if err != nil {
		return err
	}
	ad := core.NewAdapter(core.AdapterConfig{
		Mode:  core.ModeFSRecon,
		Recon: core.ReconGAN,
		GAN:   core.GANConfig{Epochs: cfg.Scale.GANEpochs},
		Seed:  cfg.Seed,
	})
	start := time.Now()
	if err := ad.Fit(pair.Source, support); err != nil {
		return fmt.Errorf("fit adapter: %w", err)
	}
	train, err := ad.TrainingData(pair.Source)
	if err != nil {
		return err
	}
	clf := models.NewMLPClassifier(models.Options{
		Seed: cfg.Seed, Epochs: cfg.Scale.ClassifierEpochs,
	})
	if err := clf.Fit(train.X, train.Y, pair.NumClasses); err != nil {
		return fmt.Errorf("fit classifier: %w", err)
	}
	bundleID := cfg.ID
	if bundleID == "" {
		bundleID = fmt.Sprintf("%s-%s-seed%d", cfg.Dataset, cfg.ScaleName, cfg.Seed)
	}
	if err := serve.WriteBundleFileFormat(cfg.Bundle, bundleID, ad, clf, serve.BundleFormat(cfg.Format)); err != nil {
		return err
	}
	fmt.Fprintf(out, "bundle %q written to %s (format %s, %d variant / %d invariant features, fit in %s)\n",
		bundleID, cfg.Bundle, cfg.Format, len(ad.VariantFeatures()), len(ad.InvariantFeatures()),
		time.Since(start).Round(time.Millisecond))
	return nil
}

// runConvert re-encodes an existing bundle (either format, sniffed on
// load) into -bundle using -format. Conversion is lossless: both codecs
// serialize the same blob, so a JSON→binary→JSON round trip is identical.
func runConvert(out io.Writer, cfg config) error {
	src, err := serve.LoadBundleFile(cfg.Convert)
	if err != nil {
		return fmt.Errorf("-convert %s: %w", cfg.Convert, err)
	}
	if err := serve.WriteBundleFileFormat(cfg.Bundle, src.ID, src.Adapter, src.Classifier, serve.BundleFormat(cfg.Format)); err != nil {
		return err
	}
	fmt.Fprintf(out, "bundle %q converted: %s -> %s (format %s)\n", src.ID, cfg.Convert, cfg.Bundle, cfg.Format)
	return nil
}

// buildStack assembles the full hardened serving stack from cfg: registry
// with a load breaker (and chaos, when armed), coalescer with admission
// control + executor breaker, HTTP handler tree, plus the observability
// layer — flight recorder (armed for incident snapshots), optional span
// sink, SLO trackers, and chaos wiring into both.
func buildStack(cfg config) (*obs.Observer, *serve.Registry, *serve.Coalescer, *serve.Server, *fault.Injector, error) {
	o := obs.New()
	if cfg.FlightCap != 0 {
		o.Flight = obs.NewFlightRecorder(cfg.FlightCap)
		o.Flight.CountEvents(o.Registry.Counter(obs.MetricFlightEvents))
		if cfg.FlightSnap != "" {
			o.Flight.SetAutoSnapshot(cfg.FlightSnap, 0)
		}
	}
	if cfg.TracePath != "" {
		w := io.Writer(os.Stdout)
		if cfg.TracePath != "-" {
			f, err := os.Create(cfg.TracePath)
			if err != nil {
				return nil, nil, nil, nil, nil, fmt.Errorf("-trace: %w", err)
			}
			w = f // lives for the process; closed by exit
		}
		sink := obs.NewJSONLinesSink(w)
		sink.CountDrops(o.Registry.Counter(obs.MetricSpanDrops))
		// Span completions also land in the flight ring, so a snapshot
		// shows the request timeline alongside the control events.
		o.Spans = o.Flight.SpanSink(sink)
	}
	inj, err := cfg.faultInjector()
	if err != nil {
		return nil, nil, nil, nil, nil, err
	}
	reg := serve.NewRegistry(o)
	reg.SetBreaker(serve.NewBreaker("bundle_load", cfg.breakerConfig(), o))
	reg.SetFaults(inj)
	co := serve.NewCoalescer(reg, cfg.serveOptions(o, inj))
	srv := serve.NewServer(reg, co, o)
	srv.ConfigureSLO(cfg.slo())
	serve.WireChaos(inj, o, srv.SLOSet())
	return o, reg, co, srv, inj, nil
}

// buildCtrl assembles the closed-loop drift controller for -ctrl serving
// mode: detector fitted on the source domain, held-out target-test rows as
// the shadow gate's probe set, and the paper's FS+GAN refit (classifier
// carried forward, never retrained). Telemetry arrives via POST /v1/ingest.
func buildCtrl(cfg config, o *obs.Observer, reg *serve.Registry, srv *serve.Server, inj *fault.Injector) (*ctrl.Controller, error) {
	pair, err := experiments.MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	det := monitor.New(monitor.Config{})
	if err := det.Fit(pair.Source.X); err != nil {
		return nil, fmt.Errorf("fit drift detector: %w", err)
	}
	probe := pair.TargetTest
	if len(probe.X) > 256 {
		probe = &dataset.Dataset{X: probe.X[:256], Y: probe.Y[:256]}
	}
	refit := func(ctx context.Context, shots *dataset.Dataset, epoch int) (*ctrl.Candidate, error) {
		ad := core.NewAdapter(core.AdapterConfig{
			Mode:  core.ModeFSRecon,
			Recon: core.ReconGAN,
			GAN:   core.GANConfig{Epochs: cfg.Scale.GANEpochs},
			Seed:  cfg.Seed + int64(epoch),
		})
		if err := ad.Fit(pair.Source, shots); err != nil {
			return nil, err
		}
		return &ctrl.Candidate{ID: fmt.Sprintf("refit-epoch%d", epoch), Adapter: ad}, nil
	}
	c, err := ctrl.New(ctrl.Config{
		Detector: det, Registry: reg, Refit: refit,
		Probe: probe, NumClasses: pair.NumClasses,
		WindowSize: cfg.CtrlWindow, Cooldown: cfg.CtrlCooldown,
		ShotsPerClass: cfg.Shots, MinWinMargin: cfg.CtrlMargin,
		BundleDir: cfg.CtrlBundleDir, BundleFormat: serve.BundleFormat(cfg.Format),
		InitialBundlePath: cfg.Bundle,
		SLO:               srv.SLOSet(), WatchFor: cfg.CtrlWatch,
		CheckpointPath: cfg.CtrlCheckpoint,
		Seed:           cfg.Seed, Faults: inj, Obs: o,
	})
	if err != nil {
		return nil, err
	}
	srv.SetIngest(c)
	srv.SetCtrlStatus(func() any { return c.Status() })
	return c, nil
}

// runObsDump pretty-prints a flight-recorder snapshot file (written by
// /debug/flightrec, an incident auto-snapshot, or a chaoscheck failure) as
// a human-readable timeline.
func runObsDump(out io.Writer, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap obs.FlightSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("%s: not a flight-recorder snapshot: %w", path, err)
	}
	dropped := int64(snap.LastSeq) - int64(len(snap.Events))
	fmt.Fprintf(out, "flight recorder snapshot %s\n", path)
	fmt.Fprintf(out, "  reason=%s taken=%s events=%d/%d capacity=%d overwritten=%d\n",
		snap.Reason, snap.TakenAt.Format(time.RFC3339Nano), len(snap.Events), snap.LastSeq, snap.Capacity, max(dropped, 0))
	for _, ev := range snap.Events {
		line := fmt.Sprintf("  %6d  %s  %-8s %-14s", ev.Seq,
			time.Unix(0, ev.Nanos).Format("15:04:05.000000"), ev.Kind, ev.Name)
		if ev.Trace != "" {
			line += "  trace=" + ev.Trace
		}
		if ev.Detail != "" {
			line += "  " + ev.Detail
		}
		fmt.Fprintln(out, line)
	}
	return nil
}

// runServe loads the bundle and serves until SIGTERM/SIGINT, then drains
// in-flight requests for up to -drain-timeout before exiting.
func runServe(out io.Writer, cfg config) error {
	o, reg, co, handler, inj, err := buildStack(cfg)
	if err != nil {
		return err
	}
	defer co.Close()
	b, err := reg.LoadFile(cfg.Bundle)
	if err != nil {
		return err
	}
	if cfg.Ctrl {
		dc, err := buildCtrl(cfg, o, reg, handler, inj)
		if err != nil {
			return err
		}
		dc.Start()
		defer dc.Close()
		fmt.Fprintf(out, "drift controller armed: window %d, cooldown %s, watch %s, margin %.1f F1 pts (telemetry -> POST %s)\n",
			cfg.CtrlWindow, cfg.CtrlCooldown, cfg.CtrlWatch, cfg.CtrlMargin, serve.EndpointIngest)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "serving bundle %q on http://%s (max-batch %d, max-wait %s, workers %d, max-queue %d)\n",
		b.ID, ln.Addr(), cfg.MaxBatch, cfg.MaxWait, cfg.Workers, cfg.MaxQueue)
	if inj != nil {
		fmt.Fprintf(out, "chaos armed: %s\n", cfg.FaultPlan)
	}
	if cfg.TracePath != "" {
		fmt.Fprintf(out, "tracing spans to %s (header %s)\n", cfg.TracePath, serve.TraceHeader)
	}
	srv := &http.Server{Handler: handler}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way
	fmt.Fprintf(out, "shutdown signal received, draining for up to %s\n", cfg.DrainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		// Drain deadline blown: some connections were cut. Report, don't hang.
		fmt.Fprintf(out, "drain incomplete: %v\n", err)
	}
	co.Close() // flush anything the handlers already admitted
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(out, "drained, bye")
	return nil
}
