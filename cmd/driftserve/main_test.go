package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMkBundleAndLoadgen exercises the full binary surface at quick scale:
// fit + write a bundle, then run the load generator against it and append
// the serve stage to a bench report skeleton.
func TestMkBundleAndLoadgen(t *testing.T) {
	dir := t.TempDir()
	bundlePath := filepath.Join(dir, "bundle.json")
	benchPath := filepath.Join(dir, "bench.json")

	var out strings.Builder
	err := run([]string{
		"-mkbundle", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3", "-shots", "10",
	}, &out)
	if err != nil {
		t.Fatalf("mkbundle: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(bundlePath); err != nil {
		t.Fatal(err)
	}

	// A minimal pre-existing bench report the serve stage gets appended to.
	seedReport := `{"gomaxprocs":1,"stages":[{"name":"matmul","speedup":1}]}`
	if err := os.WriteFile(benchPath, []byte(seedReport), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	err = run([]string{
		"-loadgen", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3",
		"-conns", "2", "-duration", "500ms", "-rows-per-req", "4",
		"-bench-out", benchPath,
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "rows/s") {
		t.Errorf("loadgen output missing throughput:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "verdict: clean") {
		t.Errorf("loadgen output missing clean verdict line:\n%s", out.String())
	}

	blob, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep["gomaxprocs"] != float64(1) {
		t.Error("appending the serve stage dropped existing report fields")
	}
	stages, _ := rep["stages"].([]any)
	var serveStage map[string]any
	for _, s := range stages {
		if m, ok := s.(map[string]any); ok && m["name"] == "serve" {
			serveStage = m
		}
	}
	if serveStage == nil {
		t.Fatalf("no serve stage in bench report: %v", stages)
	}
	if serveStage["bit_identical"] != true {
		t.Errorf("serve stage not bit-identical: %v", serveStage)
	}
	if serveStage["speedup"].(float64) <= 0 {
		t.Errorf("serve stage speedup %v", serveStage["speedup"])
	}

	// Re-running replaces the serve stage instead of stacking duplicates.
	out.Reset()
	err = run([]string{
		"-loadgen", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3",
		"-conns", "1", "-duration", "200ms",
		"-bench-out", benchPath,
	}, &out)
	if err != nil {
		t.Fatalf("second loadgen: %v\n%s", err, out.String())
	}
	blob, _ = os.ReadFile(benchPath)
	if n := strings.Count(string(blob), `"name": "serve"`); n != 1 {
		t.Errorf("serve stage appears %d times after re-run, want 1", n)
	}
}

// mkTestBundle writes a quick-scale bundle for the resilience CLI tests.
func mkTestBundle(t *testing.T) string {
	t.Helper()
	bundlePath := filepath.Join(t.TempDir(), "bundle.json")
	var out strings.Builder
	err := run([]string{
		"-mkbundle", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3", "-shots", "10",
	}, &out)
	if err != nil {
		t.Fatalf("mkbundle: %v\n%s", err, out.String())
	}
	return bundlePath
}

// TestChaosCheck runs the chaos acceptance mode end to end: default fault
// storm, torn-response audit, recovery probe. It must report PASS and
// exit cleanly.
func TestChaosCheck(t *testing.T) {
	bundlePath := mkTestBundle(t)
	var out strings.Builder
	err := run([]string{
		"-chaoscheck", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3",
		"-conns", "4", "-duration", "600ms", "-rows-per-req", "4",
		"-flightrec-snap", filepath.Join(t.TempDir(), "flightrec.json"),
	}, &out)
	if err != nil {
		t.Fatalf("chaoscheck: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "chaoscheck: PASS") {
		t.Errorf("missing PASS verdict:\n%s", text)
	}
	if !strings.Contains(text, "torn=0") {
		t.Errorf("verdict line missing torn=0:\n%s", text)
	}
	// The default storm injects hard enough that at least one degraded or
	// errored response should appear; a completely quiet run means the
	// faults never armed.
	if strings.Contains(text, "degraded=0 shed=0") && strings.Contains(text, "errors=0 timeouts=0") {
		t.Errorf("chaos storm had no visible effect:\n%s", text)
	}
}

// TestChaosCheckBadPlan rejects malformed -faults plans up front.
func TestChaosCheckBadPlan(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-chaoscheck", "-faults", "batch.exec:rate=banana"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-faults") {
		t.Errorf("bad plan error = %v, want -faults parse error", err)
	}
}

// syncWriter lets the drain test read serve output while runServe is
// still writing it from another goroutine.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestServeGracefulDrain boots the real serve mode on a loopback port,
// confirms it answers /healthz, then delivers SIGTERM and expects a clean
// drained exit within the drain deadline.
func TestServeGracefulDrain(t *testing.T) {
	bundlePath := mkTestBundle(t)
	out := &syncWriter{}
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-bundle", bundlePath, "-addr", "127.0.0.1:0",
			"-drain-timeout", "5s",
		}, out)
	}()

	// Wait for the listen line, then hit /healthz.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address:\n%s", out.String())
		}
		text := out.String()
		if i := strings.Index(text, "http://"); i >= 0 {
			if j := strings.IndexAny(text[i:], " \n"); j > 0 {
				addr = text[i : i+j]
			}
		}
		select {
		case err := <-errCh:
			t.Fatalf("serve exited early: %v\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	res, err := http.Get(addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", res.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drained exit returned %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not drain after SIGTERM:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained, bye") {
		t.Errorf("missing drain confirmation:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "nope"}, &out); err == nil {
		t.Error("expected unknown scale error")
	}
	if err := run([]string{"-bundle", "/does/not/exist.json"}, &out); err == nil {
		t.Error("expected missing bundle error")
	}
}
