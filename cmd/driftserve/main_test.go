package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestMkBundleAndLoadgen exercises the full binary surface at quick scale:
// fit + write a bundle, then run the load generator against it and append
// the serve stage to a bench report skeleton.
func TestMkBundleAndLoadgen(t *testing.T) {
	dir := t.TempDir()
	bundlePath := filepath.Join(dir, "bundle.json")
	benchPath := filepath.Join(dir, "bench.json")

	var out strings.Builder
	err := run([]string{
		"-mkbundle", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3", "-shots", "10",
	}, &out)
	if err != nil {
		t.Fatalf("mkbundle: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(bundlePath); err != nil {
		t.Fatal(err)
	}

	// A minimal pre-existing bench report the serve stage gets appended to.
	seedReport := `{"gomaxprocs":1,"stages":[{"name":"matmul","speedup":1}]}`
	if err := os.WriteFile(benchPath, []byte(seedReport), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	err = run([]string{
		"-loadgen", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3",
		"-conns", "2", "-duration", "500ms", "-rows-per-req", "4",
		"-bench-out", benchPath,
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "rows/s") {
		t.Errorf("loadgen output missing throughput:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "verdict: clean") {
		t.Errorf("loadgen output missing clean verdict line:\n%s", out.String())
	}

	blob, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep["gomaxprocs"] != float64(1) {
		t.Error("appending the serve stage dropped existing report fields")
	}
	stages, _ := rep["stages"].([]any)
	var serveStage map[string]any
	for _, s := range stages {
		if m, ok := s.(map[string]any); ok && m["name"] == "serve" {
			serveStage = m
		}
	}
	if serveStage == nil {
		t.Fatalf("no serve stage in bench report: %v", stages)
	}
	if serveStage["bit_identical"] != true {
		t.Errorf("serve stage not bit-identical: %v", serveStage)
	}
	if serveStage["speedup"].(float64) <= 0 {
		t.Errorf("serve stage speedup %v", serveStage["speedup"])
	}

	// Re-running replaces the serve stage instead of stacking duplicates.
	out.Reset()
	err = run([]string{
		"-loadgen", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3",
		"-conns", "1", "-duration", "200ms",
		"-bench-out", benchPath,
	}, &out)
	if err != nil {
		t.Fatalf("second loadgen: %v\n%s", err, out.String())
	}
	blob, _ = os.ReadFile(benchPath)
	if n := strings.Count(string(blob), `"name": "serve"`); n != 1 {
		t.Errorf("serve stage appears %d times after re-run, want 1", n)
	}
}

// TestMkBundleBinaryAndConvert covers the binary artifact path end to end:
// write a binary bundle, convert it to JSON and back, and check that the
// sniffing loader serves all three files identically via the loadgen's
// bit-identity audit.
func TestMkBundleBinaryAndConvert(t *testing.T) {
	dir := t.TempDir()
	binPath := filepath.Join(dir, "bundle.ndbf")
	jsonPath := filepath.Join(dir, "bundle.json")
	backPath := filepath.Join(dir, "bundle2.ndbf")

	var out strings.Builder
	err := run([]string{
		"-mkbundle", "-format", "binary", "-bundle", binPath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3", "-shots", "10",
	}, &out)
	if err != nil {
		t.Fatalf("mkbundle -format binary: %v\n%s", err, out.String())
	}
	blob, err := os.ReadFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) < 4 || string(blob[:4]) != "NDBF" {
		t.Fatalf("binary bundle missing NDBF magic: % x", blob[:min(8, len(blob))])
	}

	out.Reset()
	if err := run([]string{"-convert", binPath, "-format", "json", "-bundle", jsonPath}, &out); err != nil {
		t.Fatalf("convert binary->json: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "converted") {
		t.Errorf("convert output missing confirmation:\n%s", out.String())
	}
	jsonBlob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(jsonBlob) == 0 || jsonBlob[0] != '{' {
		t.Fatalf("converted JSON bundle does not look like JSON: % x", jsonBlob[:min(8, len(jsonBlob))])
	}

	out.Reset()
	if err := run([]string{"-convert", jsonPath, "-format", "binary", "-bundle", backPath}, &out); err != nil {
		t.Fatalf("convert json->binary: %v\n%s", err, out.String())
	}
	back, err := os.ReadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	// The JSON round trip is lossless, so converting back reproduces the
	// original binary artifact byte for byte.
	if string(back) != string(blob) {
		t.Error("binary -> json -> binary did not round-trip byte-identically")
	}

	// The sniffing loader must serve the binary artifact: the loadgen's
	// verdict line asserts bit-identical output against the golden path.
	for _, bundle := range []string{binPath, jsonPath} {
		out.Reset()
		err = run([]string{
			"-loadgen", "-bundle", bundle,
			"-dataset", "5gc", "-scale", "quick", "-seed", "3",
			"-conns", "1", "-duration", "200ms", "-rows-per-req", "4",
		}, &out)
		if err != nil {
			t.Fatalf("loadgen on %s: %v\n%s", bundle, err, out.String())
		}
		if !strings.Contains(out.String(), "verdict: clean") {
			t.Errorf("loadgen on %s not clean:\n%s", bundle, out.String())
		}
	}
}

// TestLoadgenBinaryCodec drives the load generator over the binary wire
// codec and checks both the clean verdict and the serve_binary bench stage
// (cross-codec bit-identity plus JSON-vs-binary latency comparison).
func TestLoadgenBinaryCodec(t *testing.T) {
	bundlePath := mkTestBundle(t)
	benchPath := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(benchPath, []byte(`{"stages":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{
		"-loadgen", "-codec", "binary", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3",
		"-conns", "2", "-duration", "300ms", "-rows-per-req", "4",
		"-bench-out", benchPath,
	}, &out)
	if err != nil {
		t.Fatalf("loadgen -codec binary: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "codec binary") {
		t.Errorf("loadgen header missing codec binary:\n%s", text)
	}
	if !strings.Contains(text, "verdict: clean") {
		t.Errorf("binary loadgen not clean:\n%s", text)
	}
	if !strings.Contains(text, "serve_binary stage:") {
		t.Errorf("missing serve_binary summary line:\n%s", text)
	}

	blob, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	stages, _ := rep["stages"].([]any)
	var binStage map[string]any
	for _, s := range stages {
		if m, ok := s.(map[string]any); ok && m["name"] == "serve_binary" {
			binStage = m
		}
	}
	if binStage == nil {
		t.Fatalf("no serve_binary stage in bench report: %v", stages)
	}
	if binStage["bit_identical"] != true {
		t.Errorf("serve_binary stage not bit-identical: %v", binStage)
	}
}

func TestRunBadCodecFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mkbundle", "-format", "msgpack"}, &out); err == nil {
		t.Error("expected unknown -format error")
	}
	if err := run([]string{"-loadgen", "-codec", "grpc"}, &out); err == nil {
		t.Error("expected unknown -codec error")
	}
	if err := run([]string{"-convert", "/does/not/exist.ndbf", "-bundle", filepath.Join(t.TempDir(), "o.json")}, &out); err == nil {
		t.Error("expected convert missing source error")
	}
}

// mkTestBundle writes a quick-scale bundle for the resilience CLI tests.
func mkTestBundle(t *testing.T) string {
	t.Helper()
	bundlePath := filepath.Join(t.TempDir(), "bundle.json")
	var out strings.Builder
	err := run([]string{
		"-mkbundle", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3", "-shots", "10",
	}, &out)
	if err != nil {
		t.Fatalf("mkbundle: %v\n%s", err, out.String())
	}
	return bundlePath
}

// TestChaosCheck runs the chaos acceptance mode end to end: default fault
// storm, torn-response audit, recovery probe. It must report PASS and
// exit cleanly.
func TestChaosCheck(t *testing.T) {
	bundlePath := mkTestBundle(t)
	var out strings.Builder
	err := run([]string{
		"-chaoscheck", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3",
		"-conns", "4", "-duration", "600ms", "-rows-per-req", "4",
		"-flightrec-snap", filepath.Join(t.TempDir(), "flightrec.json"),
	}, &out)
	if err != nil {
		t.Fatalf("chaoscheck: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "chaoscheck: PASS") {
		t.Errorf("missing PASS verdict:\n%s", text)
	}
	if !strings.Contains(text, "torn=0") {
		t.Errorf("verdict line missing torn=0:\n%s", text)
	}
	// The default storm injects hard enough that at least one degraded or
	// errored response should appear; a completely quiet run means the
	// faults never armed.
	if strings.Contains(text, "degraded=0 shed=0") && strings.Contains(text, "errors=0 timeouts=0") {
		t.Errorf("chaos storm had no visible effect:\n%s", text)
	}
}

// TestChaosCheckBadPlan rejects malformed -faults plans up front.
func TestChaosCheckBadPlan(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-chaoscheck", "-faults", "batch.exec:rate=banana"}, &out)
	if err == nil || !strings.Contains(err.Error(), "-faults") {
		t.Errorf("bad plan error = %v, want -faults parse error", err)
	}
}

// syncWriter lets the drain test read serve output while runServe is
// still writing it from another goroutine.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// TestServeGracefulDrain boots the real serve mode on a loopback port,
// confirms it answers /healthz, then delivers SIGTERM and expects a clean
// drained exit within the drain deadline.
func TestServeGracefulDrain(t *testing.T) {
	bundlePath := mkTestBundle(t)
	out := &syncWriter{}
	errCh := make(chan error, 1)
	go func() {
		errCh <- run([]string{
			"-bundle", bundlePath, "-addr", "127.0.0.1:0",
			"-drain-timeout", "5s",
		}, out)
	}()

	// Wait for the listen line, then hit /healthz.
	var addr string
	deadline := time.Now().Add(10 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address:\n%s", out.String())
		}
		text := out.String()
		if i := strings.Index(text, "http://"); i >= 0 {
			if j := strings.IndexAny(text[i:], " \n"); j > 0 {
				addr = text[i : i+j]
			}
		}
		select {
		case err := <-errCh:
			t.Fatalf("serve exited early: %v\n%s", err, out.String())
		case <-time.After(10 * time.Millisecond):
		}
	}
	res, err := http.Get(addr + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", res.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err != nil {
			t.Fatalf("drained exit returned %v\n%s", err, out.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("server did not drain after SIGTERM:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained, bye") {
		t.Errorf("missing drain confirmation:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "nope"}, &out); err == nil {
		t.Error("expected unknown scale error")
	}
	if err := run([]string{"-bundle", "/does/not/exist.json"}, &out); err == nil {
		t.Error("expected missing bundle error")
	}
}

// TestCtrlCheck runs the closed-loop drift-response acceptance mode end to
// end: detect -> refit -> gate -> hot-swap -> chaos -> rollback -> resume.
func TestCtrlCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("ctrlcheck fits real adapters; skipped in -short")
	}
	var out strings.Builder
	err := run([]string{
		"-ctrlcheck", "-dataset", "5gc", "-scale", "quick", "-seed", "1",
		"-shots", "10", "-rows-per-req", "4",
		"-flightrec-snap", filepath.Join(t.TempDir(), "flightrec.json"),
	}, &out)
	if err != nil {
		t.Fatalf("ctrlcheck: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "ctrlcheck: PASS phases=A,B,C,D,E") {
		t.Errorf("missing full-phase PASS verdict:\n%s", text)
	}
	if !strings.Contains(text, "netdrift_ctrl_drift_to_recovery_seconds") {
		t.Errorf("drift-to-recovery metric not scraped from /metrics:\n%s", text)
	}
}

// TestFaultPlanUnknownSite: a typo'd chaos site must be rejected up front
// with the known-site list, not silently armed as a no-op.
func TestFaultPlanUnknownSite(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-chaoscheck", "-faults", "bundel.load:err=1"}, &out)
	if err == nil || !strings.Contains(err.Error(), "bundel.load") {
		t.Fatalf("unknown site error = %v, want it named", err)
	}
	if !strings.Contains(err.Error(), "ctrl.refit") {
		t.Errorf("error should list known sites (ctrl.refit among them): %v", err)
	}
}
