package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestMkBundleAndLoadgen exercises the full binary surface at quick scale:
// fit + write a bundle, then run the load generator against it and append
// the serve stage to a bench report skeleton.
func TestMkBundleAndLoadgen(t *testing.T) {
	dir := t.TempDir()
	bundlePath := filepath.Join(dir, "bundle.json")
	benchPath := filepath.Join(dir, "bench.json")

	var out strings.Builder
	err := run([]string{
		"-mkbundle", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3", "-shots", "10",
	}, &out)
	if err != nil {
		t.Fatalf("mkbundle: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(bundlePath); err != nil {
		t.Fatal(err)
	}

	// A minimal pre-existing bench report the serve stage gets appended to.
	seedReport := `{"gomaxprocs":1,"stages":[{"name":"matmul","speedup":1}]}`
	if err := os.WriteFile(benchPath, []byte(seedReport), 0o644); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	err = run([]string{
		"-loadgen", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3",
		"-conns", "2", "-duration", "500ms", "-rows-per-req", "4",
		"-bench-out", benchPath,
	}, &out)
	if err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "rows/s") {
		t.Errorf("loadgen output missing throughput:\n%s", out.String())
	}

	blob, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep map[string]any
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatal(err)
	}
	if rep["gomaxprocs"] != float64(1) {
		t.Error("appending the serve stage dropped existing report fields")
	}
	stages, _ := rep["stages"].([]any)
	var serveStage map[string]any
	for _, s := range stages {
		if m, ok := s.(map[string]any); ok && m["name"] == "serve" {
			serveStage = m
		}
	}
	if serveStage == nil {
		t.Fatalf("no serve stage in bench report: %v", stages)
	}
	if serveStage["bit_identical"] != true {
		t.Errorf("serve stage not bit-identical: %v", serveStage)
	}
	if serveStage["speedup"].(float64) <= 0 {
		t.Errorf("serve stage speedup %v", serveStage["speedup"])
	}

	// Re-running replaces the serve stage instead of stacking duplicates.
	out.Reset()
	err = run([]string{
		"-loadgen", "-bundle", bundlePath,
		"-dataset", "5gc", "-scale", "quick", "-seed", "3",
		"-conns", "1", "-duration", "200ms",
		"-bench-out", benchPath,
	}, &out)
	if err != nil {
		t.Fatalf("second loadgen: %v\n%s", err, out.String())
	}
	blob, _ = os.ReadFile(benchPath)
	if n := strings.Count(string(blob), `"name": "serve"`); n != 1 {
		t.Errorf("serve stage appears %d times after re-run, want 1", n)
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "nope"}, &out); err == nil {
		t.Error("expected unknown scale error")
	}
	if err := run([]string{"-bundle", "/does/not/exist.json"}, &out); err == nil {
		t.Error("expected missing bundle error")
	}
}
