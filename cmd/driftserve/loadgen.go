package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netdrift/internal/core"
	"netdrift/internal/experiments"
	"netdrift/internal/obs"
	"netdrift/internal/serve"
)

// runLoadgen benchmarks the serving path twice:
//
//  1. A closed-loop HTTP load generator: -conns clients hammer an
//     in-process server over loopback for -duration, reporting request
//     throughput and latency quantiles — the end-to-end number including
//     JSON, HTTP, and coalescing.
//  2. An in-process micro-benchmark of the batching win itself: the
//     pre-batching serving approach (TransformTarget called per row,
//     batch size 1) against AdaptBatch in MaxBatch chunks, verified
//     bit-identical, optionally appended as a "serve" stage to the
//     BENCH_parallel.json report.
func runLoadgen(out io.Writer, cfg config) error {
	_, reg, co, handler, _, err := buildStack(cfg)
	if err != nil {
		return err
	}
	bundle, err := reg.LoadFile(cfg.Bundle)
	if err != nil {
		return err
	}
	pair, err := experiments.MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	rows := pair.TargetTest.X
	if len(rows) == 0 {
		return fmt.Errorf("dataset %q has no target test rows", cfg.Dataset)
	}

	// --- Part 1: closed-loop HTTP load. ---
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	url := "http://" + ln.Addr().String() + "/v1/adapt"

	binaryCodec := cfg.Codec == codecBinary
	contentType := "application/json"
	if binaryCodec {
		contentType = serve.ContentTypeRows
	}
	latency := obs.NewFixedHistogram(obs.LatencyBuckets)
	// Client-side rolling RED tracker: the caller's view of the SLO, fed
	// the same objective the server burns against. One window wide enough
	// to cover the whole run, so the verdict quantiles summarize everything.
	red := obs.NewSLOSet(cfg.slo(), cfg.Duration+time.Minute, 0, nil)
	var requests, servedRows, degraded, shed, timeouts, failures atomic.Int64
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			// Each client cycles through a different window of the test
			// set so coalesced batches mix distinct rows.
			pos := (c * 131) % len(rows)
			for time.Now().Before(deadline) {
				batch := make([][]float64, 0, cfg.RowsPerReq)
				for len(batch) < cfg.RowsPerReq {
					batch = append(batch, rows[pos])
					pos = (pos + 1) % len(rows)
				}
				var body []byte
				if binaryCodec {
					body = serve.AppendRowsRequest(nil, batch, 0, false)
				} else {
					body, _ = json.Marshal(serve.AdaptRequest{Rows: batch})
				}
				start := time.Now()
				res, err := client.Post(url, contentType, bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					red.Observe(serve.EndpointAdapt, time.Since(start).Seconds(), true)
					continue
				}
				ar, decErr := decodeAdaptResponse(res, binaryCodec)
				secs := time.Since(start).Seconds()
				latency.Observe(secs)
				isErr := false
				switch {
				case res.StatusCode == http.StatusOK && decErr == nil && ar.Degraded:
					degraded.Add(1)
				case res.StatusCode == http.StatusOK:
					requests.Add(1)
					servedRows.Add(int64(len(batch)))
				case res.StatusCode == http.StatusTooManyRequests:
					shed.Add(1)
					isErr = true
				case res.StatusCode == http.StatusRequestTimeout:
					timeouts.Add(1)
					isErr = true
				default:
					failures.Add(1)
					isErr = true
				}
				red.Observe(serve.EndpointAdapt, secs, isErr)
			}
		}(c)
	}
	wg.Wait()

	// The codec comparison stage runs against the still-live server so both
	// codecs ride the full HTTP + coalescer path the clients just used.
	stBin, codecErr := codecStage(url, rows, cfg.RowsPerReq)
	srv.Close()
	co.Close()
	if codecErr != nil {
		return fmt.Errorf("serve_binary stage: %w", codecErr)
	}

	secs := cfg.Duration.Seconds()
	reqRate := float64(requests.Load()) / secs
	rowRate := float64(servedRows.Load()) / secs
	total := requests.Load() + degraded.Load() + shed.Load() + timeouts.Load() + failures.Load()
	fmt.Fprintf(out, "loadgen: bundle %q, %d conns, %s, %d rows/req, codec %s (max-batch %d, workers %d, max-queue %d)\n",
		bundle.ID, cfg.Conns, cfg.Duration, cfg.RowsPerReq, cfg.Codec, cfg.MaxBatch, cfg.Workers, cfg.MaxQueue)
	fmt.Fprintf(out, "  %d requests ok, %d failed  |  %.0f req/s, %.0f rows/s\n",
		requests.Load(), failures.Load(), reqRate, rowRate)
	fmt.Fprintf(out, "  latency p50 %.2fms  p90 %.2fms  p99 %.2fms\n",
		latency.Quantile(0.5)*1e3, latency.Quantile(0.9)*1e3, latency.Quantile(0.99)*1e3)
	// The verdict line gives operators the resilience picture at a glance:
	// every request accounted for as ok / degraded / shed / timeout / error.
	verdict := "clean"
	if failures.Load() > 0 {
		verdict = "errors"
	} else if degraded.Load()+shed.Load()+timeouts.Load() > 0 {
		verdict = "lossy"
	}
	// The rolling-window view: client-observed quantiles plus the burn rate
	// against the configured SLO (1.0 = burning the whole error budget).
	stats := red.Tracker(serve.EndpointAdapt).Stats(cfg.Duration + time.Minute)
	fmt.Fprintf(out, "  verdict: %s  total=%d ok=%d degraded=%d shed=%d timeouts=%d errors=%d  p50=%.2fms p95=%.2fms p99=%.2fms burn=%.2f\n",
		verdict, total, requests.Load(), degraded.Load(), shed.Load(), timeouts.Load(), failures.Load(),
		stats.P50Seconds*1e3, stats.P95Seconds*1e3, stats.P99Seconds*1e3, stats.BurnRate)
	if requests.Load() == 0 {
		return fmt.Errorf("loadgen completed zero golden-path requests")
	}

	// --- Part 2: the micro-batching stage for the bench report. ---
	st, err := serveStage(bundle, rows, cfg.MaxBatch)
	if err != nil {
		return err
	}
	// Carry the end-to-end rolling quantiles and burn rate into the bench
	// report so BENCH_parallel.json records the SLO picture, not just the
	// kernel speedup.
	st.P50Seconds, st.P95Seconds, st.P99Seconds = stats.P50Seconds, stats.P95Seconds, stats.P99Seconds
	st.BurnRate = stats.BurnRate
	fmt.Fprintf(out, "serve stage: seq(batch=1) %.3fs  batched(%d) %.3fs  speedup %.2fx  allocs %d/%d  bit-identical %v\n",
		st.SeqSeconds, cfg.MaxBatch, st.ParSeconds, st.Speedup, st.SeqAllocs, st.ParAllocs, st.BitIdentical)
	fmt.Fprintf(out, "serve_binary stage: json %.3fs  binary %.3fs  speedup %.2fx  p99 %.2fms  bit-identical %v\n",
		stBin.SeqSeconds, stBin.ParSeconds, stBin.Speedup, stBin.P99Seconds*1e3, stBin.BitIdentical)
	if cfg.BenchOut != "" {
		if err := appendServeStage(cfg.BenchOut, st); err != nil {
			return err
		}
		if err := appendServeStage(cfg.BenchOut, stBin); err != nil {
			return err
		}
		fmt.Fprintf(out, "serve + serve_binary stages appended to %s\n", cfg.BenchOut)
	}
	return nil
}

// decodeAdaptResponse reads one /v1/adapt response in either codec into
// the common AdaptResponse shape.
func decodeAdaptResponse(res *http.Response, binary bool) (serve.AdaptResponse, error) {
	defer func() {
		io.Copy(io.Discard, res.Body)
		res.Body.Close()
	}()
	// Error responses are JSON in both codecs; only parse binary on a
	// binary-typed 200.
	if binary && res.StatusCode == http.StatusOK {
		body, err := io.ReadAll(res.Body)
		if err != nil {
			return serve.AdaptResponse{}, err
		}
		return serve.DecodeRowsResponse(body)
	}
	var ar serve.AdaptResponse
	err := json.NewDecoder(res.Body).Decode(&ar)
	return ar, err
}

// codecStage benchmarks the JSON wire codec against the binary one over
// the live server: a fixed request count per codec through one client
// (closed loop), client-side encode/decode allocations included — the
// end-to-end cost a caller actually pays per codec. seq_* fields carry
// the JSON pass, par_* the binary pass, so the stage reads exactly like
// the other speedup stages in BENCH_parallel.json. BitIdentical is a
// one-shot cross-codec comparison of the same request (rows and
// predictions, bit for bit).
func codecStage(url string, rows [][]float64, rowsPerReq int) (serveStageReport, error) {
	st := serveStageReport{Name: "serve_binary"}
	const reqCount = 192
	batches := make([][][]float64, 0, reqCount)
	pos := 0
	for len(batches) < reqCount {
		batch := make([][]float64, 0, rowsPerReq)
		for len(batch) < rowsPerReq {
			batch = append(batch, rows[pos])
			pos = (pos + 1) % len(rows)
		}
		batches = append(batches, batch)
	}

	client := &http.Client{}
	hist := obs.NewFixedHistogram(obs.LatencyBuckets)
	run := func(binary bool, hist *obs.FixedHistogram) (float64, uint64, uint64, error) {
		contentType := "application/json"
		if binary {
			contentType = serve.ContentTypeRows
		}
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		for _, batch := range batches {
			var body []byte
			if binary {
				body = serve.AppendRowsRequest(nil, batch, 0, false)
			} else {
				body, _ = json.Marshal(serve.AdaptRequest{Rows: batch})
			}
			reqStart := time.Now()
			res, err := client.Post(url, contentType, bytes.NewReader(body))
			if err != nil {
				return 0, 0, 0, err
			}
			ar, decErr := decodeAdaptResponse(res, binary)
			hist.Observe(time.Since(reqStart).Seconds())
			if decErr != nil {
				return 0, 0, 0, decErr
			}
			if res.StatusCode != http.StatusOK {
				return 0, 0, 0, fmt.Errorf("status %d", res.StatusCode)
			}
			if len(ar.Rows) != len(batch) {
				return 0, 0, 0, fmt.Errorf("%d rows back, sent %d", len(ar.Rows), len(batch))
			}
		}
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		return secs, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
	}

	var err error
	if st.SeqSeconds, st.SeqAllocs, st.SeqBytes, err = run(false, obs.NewFixedHistogram(obs.LatencyBuckets)); err != nil {
		return st, fmt.Errorf("json pass: %w", err)
	}
	if st.ParSeconds, st.ParAllocs, st.ParBytes, err = run(true, hist); err != nil {
		return st, fmt.Errorf("binary pass: %w", err)
	}
	if st.ParSeconds > 0 {
		st.Speedup = st.SeqSeconds / st.ParSeconds
	}
	st.P50Seconds = hist.Quantile(0.5)
	st.P95Seconds = hist.Quantile(0.95)
	st.P99Seconds = hist.Quantile(0.99)

	// Cross-codec bit-identity: the same request (rows, seed, predict)
	// through both codecs must adapt and predict identically.
	probe := batches[0]
	jsonBody, _ := json.Marshal(serve.AdaptRequest{Rows: probe, Seed: 7, Predict: true})
	jres, err := client.Post(url, "application/json", bytes.NewReader(jsonBody))
	if err != nil {
		return st, err
	}
	jar, err := decodeAdaptResponse(jres, false)
	if err != nil {
		return st, err
	}
	bres, err := client.Post(url, serve.ContentTypeRows,
		bytes.NewReader(serve.AppendRowsRequest(nil, probe, 7, true)))
	if err != nil {
		return st, err
	}
	bar, err := decodeAdaptResponse(bres, true)
	if err != nil {
		return st, err
	}
	st.BitIdentical = jar.BundleID == bar.BundleID &&
		identicalRows(jar.Rows, bar.Rows) && identicalRows(jar.Predictions, bar.Predictions)
	return st, nil
}

// identicalRows compares two matrices for exact float equality.
func identicalRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// serveStage mirrors driftbench's benchStage schema for the serving layer.
type serveStageReport struct {
	Name         string  `json:"name"`
	SeqSeconds   float64 `json:"seq_seconds"`
	ParSeconds   float64 `json:"par_seconds"`
	Speedup      float64 `json:"speedup"`
	SeqAllocs    uint64  `json:"seq_allocs"`
	SeqBytes     uint64  `json:"seq_bytes"`
	ParAllocs    uint64  `json:"par_allocs"`
	ParBytes     uint64  `json:"par_bytes"`
	BitIdentical bool    `json:"bit_identical"`
	// End-to-end rolling-window latency quantiles and SLO burn rate from
	// the closed-loop HTTP load (zero when the stage runs without loadgen).
	P50Seconds float64 `json:"p50_seconds,omitempty"`
	P95Seconds float64 `json:"p95_seconds,omitempty"`
	P99Seconds float64 `json:"p99_seconds,omitempty"`
	BurnRate   float64 `json:"burn_rate,omitempty"`
}

// serveStage measures the micro-batching win: the sequential pass serves
// every row through the pre-batching API (TransformTarget, batch size 1 —
// what a server would do without the coalescer); the batched pass runs the
// same rows through AdaptBatch in maxBatch chunks with pinned noise, then
// both outputs are compared bit for bit. Both sides repeat the row set
// enough times to make the timing robust on small fixtures.
func serveStage(bundle *serve.Bundle, rows [][]float64, maxBatch int) (serveStageReport, error) {
	ad := bundle.Adapter
	st := serveStageReport{Name: "serve"}
	passes := 1
	if len(rows) > 0 {
		for passes*len(rows) < 1024 {
			passes++
		}
	}

	timed := func(fn func() error) (float64, uint64, uint64, error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		err := fn()
		secs := time.Since(start).Seconds()
		runtime.ReadMemStats(&after)
		return secs, after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, err
	}

	var seqOut [][]float64
	var err error
	st.SeqSeconds, st.SeqAllocs, st.SeqBytes, err = timed(func() error {
		one := make([][]float64, 1)
		for p := 0; p < passes; p++ {
			seqOut = make([][]float64, 0, len(rows))
			for _, row := range rows {
				one[0] = row
				res, err := ad.TransformTarget(one)
				if err != nil {
					return err
				}
				seqOut = append(seqOut, res[0])
			}
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("serve stage seq: %w", err)
	}

	var scr core.AdaptScratch
	parOut := make([][]float64, 0, len(rows))
	seeds := make([]int64, maxBatch) // all zero: pinned noise, same as TransformTarget
	st.ParSeconds, st.ParAllocs, st.ParBytes, err = timed(func() error {
		for p := 0; p < passes; p++ {
			parOut = parOut[:0]
			for lo := 0; lo < len(rows); lo += maxBatch {
				hi := lo + maxBatch
				if hi > len(rows) {
					hi = len(rows)
				}
				outT, err := ad.AdaptBatch(rows[lo:hi], seeds[:hi-lo], &scr)
				if err != nil {
					return err
				}
				for i := 0; i < outT.Rows(); i++ {
					parOut = append(parOut, append([]float64(nil), outT.Row(i)...))
				}
			}
		}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("serve stage batched: %w", err)
	}
	if st.ParSeconds > 0 {
		st.Speedup = st.SeqSeconds / st.ParSeconds
	}

	st.BitIdentical = len(seqOut) == len(parOut)
	for i := 0; st.BitIdentical && i < len(seqOut); i++ {
		if len(seqOut[i]) != len(parOut[i]) {
			st.BitIdentical = false
			break
		}
		for j := range seqOut[i] {
			if seqOut[i][j] != parOut[i][j] {
				st.BitIdentical = false
				break
			}
		}
	}
	return st, nil
}

// appendServeStage adds (or replaces, matching by name) a serving stage in
// the driftbench report, decoding loosely so every other field the
// benchmark wrote is preserved byte-for-byte in value terms.
func appendServeStage(path string, st serveStageReport) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("-bench-out read (run driftbench -bench first): %w", err)
	}
	var rep map[string]any
	if err := json.Unmarshal(blob, &rep); err != nil {
		return fmt.Errorf("-bench-out parse: %w", err)
	}
	var stage any = toJSONValue(st)
	stages, _ := rep["stages"].([]any)
	replaced := false
	for i, s := range stages {
		if m, ok := s.(map[string]any); ok && m["name"] == st.Name {
			stages[i] = stage
			replaced = true
			break
		}
	}
	if !replaced {
		stages = append(stages, stage)
	}
	rep["stages"] = stages
	outBlob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(outBlob, '\n'), 0o644)
}

// toJSONValue round-trips a struct through JSON into the loose form used
// by appendServeStage.
func toJSONValue(v any) any {
	blob, _ := json.Marshal(v)
	var out any
	_ = json.Unmarshal(blob, &out)
	return out
}
