package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"netdrift/internal/core"
	"netdrift/internal/experiments"
	"netdrift/internal/serve"
)

// defaultChaosPlan is the fault storm used when -chaoscheck runs without
// an explicit -faults plan: enough errors, panics, and latency at both the
// executor and handler sites to exercise every degradation path.
const defaultChaosPlan = "batch.exec:err=0.15,panic=0.05,slow=500us@0.2;http.adapt:err=0.05,panic=0.02"

// runChaosCheck is the operational acceptance test behind `driftserve
// -chaoscheck`: it serves a bundle in-process, arms a deterministic fault
// storm, hammers the server with concurrent clients, and audits every
// single response byte-for-byte:
//
//   - 200 (adapted): must carry the expected bundle id and match the
//     precomputed golden adaptation of that exact request bit-for-bit.
//   - 200 (degraded): must echo the raw input rows exactly.
//   - 429: counted as shed (must carry Retry-After).
//   - 408/500: counted as timeouts/errors; bounded but expected under storm.
//
// Any other payload is a torn response and fails the check. After the
// storm the injector is cleared and the server must return to bit-identical
// golden output before the recovery deadline (one breaker probe after the
// backoff elapses). The verdict line is machine-greppable:
//
//	chaoscheck: PASS reqs=320 ok=204 degraded=78 shed=0 errors=30 timeouts=0 torn=0 recovered=12ms
func runChaosCheck(out io.Writer, cfg config) error {
	if cfg.FaultPlan == "" {
		cfg.FaultPlan = defaultChaosPlan
	}
	// Chaos acceptance wants small backoffs so recovery is probed within
	// the run, not after the default 100ms base backoff doubles a few
	// times. Honor explicit flags; shrink only the defaults.
	if cfg.BreakerBackoff == 100*time.Millisecond {
		cfg.BreakerBackoff = 2 * time.Millisecond
	}
	if cfg.BreakerMaxBackoff == 30*time.Second {
		cfg.BreakerMaxBackoff = 20 * time.Millisecond
	}
	o, reg, co, handler, inj, err := buildStack(cfg)
	if err != nil {
		return err
	}
	defer co.Close()
	// Load the bundle before arming load-site faults would matter; the
	// plan may also target bundle.load, in which case retries below ride
	// the breaker like production would.
	bundle, err := reg.LoadFile(cfg.Bundle)
	if err != nil {
		return err
	}
	pair, err := experiments.MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	rows := pair.TargetTest.X
	if len(rows) == 0 {
		return fmt.Errorf("dataset %q has no target test rows", cfg.Dataset)
	}

	// Fixed request shapes with goldens computed directly against the
	// bundle (no coalescer), the same reference the serve tests use. Each
	// shape carries both wire encodings so the storm (and the audit) covers
	// the JSON and binary codecs alike.
	type shape struct {
		raw     [][]float64
		golden  [][]float64
		body    []byte
		binBody []byte
	}
	nShapes := 4
	if len(rows) < nShapes*cfg.RowsPerReq {
		nShapes = 1
	}
	shapes := make([]shape, 0, nShapes)
	var scr core.AdaptScratch
	for s := 0; s < nShapes; s++ {
		raw := rows[s*cfg.RowsPerReq : (s+1)*cfg.RowsPerReq]
		seeds := make([]int64, len(raw))
		for i := range seeds {
			seeds[i] = core.SampleSeed(0, i)
		}
		outT, err := bundle.Adapter.AdaptBatch(raw, seeds, &scr)
		if err != nil {
			return fmt.Errorf("golden adaptation: %w", err)
		}
		golden := make([][]float64, outT.Rows())
		for i := range golden {
			golden[i] = append([]float64(nil), outT.Row(i)...)
		}
		body, err := json.Marshal(serve.AdaptRequest{Rows: raw})
		if err != nil {
			return err
		}
		shapes = append(shapes, shape{
			raw: raw, golden: golden, body: body,
			binBody: serve.AppendRowsRequest(nil, raw, 0, false),
		})
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	url := "http://" + ln.Addr().String() + "/v1/adapt"

	sameRows := func(a, b [][]float64) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if len(a[i]) != len(b[i]) {
				return false
			}
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}

	// --- The storm. ---
	fmt.Fprintf(out, "chaoscheck: bundle %q, %d conns for %s, plan %q\n",
		bundle.ID, cfg.Conns, cfg.Duration, cfg.FaultPlan)
	var reqs, ok, degraded, shed, errs, timeouts, torn atomic.Int64
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; time.Now().Before(deadline); i++ {
				sh := shapes[(c+i)%len(shapes)]
				// Alternate codecs per request so the storm interleaves
				// JSON and binary traffic through the same coalescer.
				binary := (c+i)%2 == 1
				body, contentType := sh.body, "application/json"
				if binary {
					body, contentType = sh.binBody, serve.ContentTypeRows
				}
				reqs.Add(1)
				res, err := client.Post(url, contentType, bytes.NewReader(body))
				if err != nil {
					errs.Add(1)
					continue
				}
				ar, decErr := decodeAdaptResponse(res, binary)
				switch res.StatusCode {
				case http.StatusOK:
					switch {
					case decErr != nil:
						torn.Add(1)
					case ar.Degraded:
						if sameRows(ar.Rows, sh.raw) {
							degraded.Add(1)
						} else {
							torn.Add(1)
						}
					case ar.BundleID == bundle.ID && sameRows(ar.Rows, sh.golden):
						ok.Add(1)
					default:
						torn.Add(1)
					}
				case http.StatusTooManyRequests:
					if res.Header.Get("Retry-After") == "" {
						torn.Add(1) // shed without backpressure guidance
					} else {
						shed.Add(1)
					}
				case http.StatusRequestTimeout:
					timeouts.Add(1)
				case http.StatusInternalServerError:
					errs.Add(1)
				default:
					torn.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()

	// --- Recovery. ---
	// Both codecs must return to bit-identical golden output: the JSON
	// probe and the binary probe each gate the verdict, so a regression
	// that only breaks one wire format cannot slip through.
	inj.Clear()
	recoverStart := time.Now()
	recoverDeadline := recoverStart.Add(10 * time.Second)
	recovered := time.Duration(-1)
	probe := func(binary bool) (bool, bool) { // (golden, torn)
		body, contentType := shapes[0].body, "application/json"
		if binary {
			body, contentType = shapes[0].binBody, serve.ContentTypeRows
		}
		res, err := http.Post(url, contentType, bytes.NewReader(body))
		if err != nil {
			return false, false
		}
		ar, decErr := decodeAdaptResponse(res, binary)
		if decErr != nil || res.StatusCode != http.StatusOK || ar.Degraded {
			return false, false
		}
		// A healthy 200 that is not bit-identical golden is a torn response.
		golden := sameRows(ar.Rows, shapes[0].golden)
		return golden, !golden
	}
	for time.Now().Before(recoverDeadline) {
		jsonGolden, jsonTorn := probe(false)
		if jsonTorn {
			torn.Add(1)
			break
		}
		if jsonGolden {
			binGolden, binTorn := probe(true)
			if binTorn {
				torn.Add(1)
				break
			}
			if binGolden {
				recovered = time.Since(recoverStart)
				break
			}
		}
		time.Sleep(time.Millisecond)
	}

	verdict := "PASS"
	var reasons []string
	if torn.Load() != 0 {
		verdict = "FAIL"
		reasons = append(reasons, fmt.Sprintf("%d torn responses", torn.Load()))
	}
	if ok.Load()+degraded.Load() == 0 {
		verdict = "FAIL"
		reasons = append(reasons, "no successful responses during the storm")
	}
	if recovered < 0 {
		verdict = "FAIL"
		reasons = append(reasons, "no bit-identical golden response after faults cleared")
	}
	fmt.Fprintf(out, "chaoscheck: %s reqs=%d ok=%d degraded=%d shed=%d errors=%d timeouts=%d torn=%d recovered=%s\n",
		verdict, reqs.Load(), ok.Load(), degraded.Load(), shed.Load(), errs.Load(), timeouts.Load(), torn.Load(),
		fmtRecovered(recovered))
	fmt.Fprintf(out, "  %s\n", inj.Summary())
	if verdict != "PASS" {
		// A failed acceptance run is exactly what the black box is for:
		// dump the flight ring (bypassing the incident throttle — this
		// write must not be suppressed by an earlier breaker snapshot) so
		// the fault/breaker/shed timeline that produced the failure
		// survives for `driftserve -obsdump`.
		if o.Flight != nil && cfg.FlightSnap != "" {
			if f, ferr := os.Create(cfg.FlightSnap); ferr == nil {
				if o.Flight.WriteSnapshot(f, "chaoscheck-fail") == nil {
					fmt.Fprintf(out, "  flight recorder dumped to %s\n", cfg.FlightSnap)
				}
				f.Close()
			}
		}
		return fmt.Errorf("chaoscheck failed: %v", reasons)
	}
	return nil
}

func fmtRecovered(d time.Duration) string {
	if d < 0 {
		return "never"
	}
	return d.Round(time.Millisecond).String()
}
