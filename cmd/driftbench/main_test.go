package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestRunBenchMode drives the -bench speedup report end to end on the
// quick scale: every stage must verify bit-identical sequential/parallel
// outputs and the JSON artifact must round-trip.
func TestRunBenchMode(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "BENCH_parallel.json")
	var buf bytes.Buffer
	err := run([]string{
		"-bench", "-bench-out", outPath, "-scale", "quick",
		"-shots", "1", "-repeats", "1", "-methods", "SrcOnly", "-seed", "3",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("bench report is not valid JSON: %v", err)
	}
	if rep.GOMAXPROCS < 1 || rep.Workers < 1 {
		t.Errorf("bench header gomaxprocs=%d workers=%d", rep.GOMAXPROCS, rep.Workers)
	}
	want := []string{"matmul", "covariance", "fs_search", "table1_cells", "gan_epoch"}
	if len(rep.Stages) != len(want) {
		t.Fatalf("got %d stages; want %d:\n%s", len(rep.Stages), len(want), blob)
	}
	for i, st := range rep.Stages {
		if st.Name != want[i] {
			t.Errorf("stage %d = %q; want %q", i, st.Name, want[i])
		}
		if !st.BitIdentical {
			t.Errorf("stage %s: parallel output not bit-identical to sequential", st.Name)
		}
		if st.SeqSeconds <= 0 || st.ParSeconds <= 0 {
			t.Errorf("stage %s: non-positive timings %+v", st.Name, st)
		}
		if st.GOMAXPROCS < 1 {
			t.Errorf("stage %s: gomaxprocs=%d", st.Name, st.GOMAXPROCS)
		}
	}
	// The training stage raises GOMAXPROCS to give its workers real
	// parallelism even on a constrained runner, and records what it used.
	if last := rep.Stages[len(rep.Stages)-1]; last.GOMAXPROCS < 4 {
		t.Errorf("gan_epoch ran at gomaxprocs=%d; want >= 4", last.GOMAXPROCS)
	}
	if !strings.Contains(buf.String(), "benchmark report written to") {
		t.Errorf("stdout missing report banner:\n%s", buf.String())
	}
}

func TestParseShots(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "1,5,10", want: []int{1, 5, 10}},
		{in: " 5 ", want: []int{5}},
		{in: "1,,5", want: []int{1, 5}},
		{in: "", wantErr: true},
		{in: "a", wantErr: true},
		{in: "0", wantErr: true},
		{in: "-3", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseShots(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseShots(%q): expected error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShots(%q): %v", tt.in, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseShots(%q) = %v; want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseShots(%q) = %v; want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}

// TestRunEndToEnd drives a quick FS-only Table I run with both
// observability outputs on: the live /metrics endpoint must serve
// Prometheus-parseable text and the -json report must be valid JSON with
// the run's metrics snapshot inside.
func TestRunEndToEnd(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")

	var metricsBody string
	scrapeForTest = func(addr string) {
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			t.Errorf("scrape /metrics: %v", err)
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Errorf("content type = %q; want Prometheus text format 0.0.4", ct)
		}
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Errorf("read /metrics: %v", err)
			return
		}
		metricsBody = string(blob)

		vars, err := http.Get("http://" + addr + "/debug/vars")
		if err != nil {
			t.Errorf("scrape /debug/vars: %v", err)
			return
		}
		defer vars.Body.Close()
		if vars.StatusCode != http.StatusOK {
			t.Errorf("/debug/vars status = %d", vars.StatusCode)
		}
	}
	defer func() { scrapeForTest = nil }()

	var buf bytes.Buffer
	err := run([]string{
		"-exp", "table1", "-dataset", "5gc", "-scale", "quick",
		"-shots", "1", "-repeats", "1", "-methods", "FS (ours)",
		"-http", "127.0.0.1:0", "-json", jsonPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	stdout := buf.String()
	if !strings.Contains(stdout, "serving metrics on http://") {
		t.Errorf("stdout missing serve banner:\n%s", stdout)
	}
	if !strings.Contains(stdout, "observability summary") || !strings.Contains(stdout, "CI tests:") {
		t.Errorf("stdout missing observability summary:\n%s", stdout)
	}

	// The scrape must have seen real pipeline metrics, in parseable shape.
	if !strings.Contains(metricsBody, "# TYPE netdrift_ci_tests_total counter") {
		t.Errorf("/metrics missing CI-test family:\n%s", metricsBody)
	}
	if !strings.Contains(metricsBody, `netdrift_ci_tests_total{kind="marginal"}`) {
		t.Errorf("/metrics missing marginal CI-test sample:\n%s", metricsBody)
	}
	for _, line := range strings.Split(strings.TrimSpace(metricsBody), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Fatalf("metrics line %q: bad value: %v", line, err)
		}
	}

	// The JSON report must round-trip and carry results + metrics.
	blob, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep report
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Experiment != "table1" || rep.Dataset != "5gc" || rep.Scale != "quick" {
		t.Errorf("report header = %q/%q/%q", rep.Experiment, rep.Dataset, rep.Scale)
	}
	if rep.WallSecs <= 0 {
		t.Errorf("wall seconds = %v; want > 0", rep.WallSecs)
	}
	if _, ok := rep.Results["table1/5gc"]; !ok {
		t.Errorf("report missing table1/5gc results: %v", rep.Results)
	}
	var sawCI bool
	for _, s := range rep.Metrics {
		if s.Name == "netdrift_ci_tests_total" && s.Labels["kind"] == "marginal" && s.Value > 0 {
			sawCI = true
		}
	}
	if !sawCI {
		t.Error("report metrics snapshot missing marginal CI-test count")
	}
}
