package main

import "testing"

func TestParseShots(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{in: "1,5,10", want: []int{1, 5, 10}},
		{in: " 5 ", want: []int{5}},
		{in: "1,,5", want: []int{1, 5}},
		{in: "", wantErr: true},
		{in: "a", wantErr: true},
		{in: "0", wantErr: true},
		{in: "-3", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseShots(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseShots(%q): expected error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseShots(%q): %v", tt.in, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseShots(%q) = %v; want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseShots(%q) = %v; want %v", tt.in, got, tt.want)
				break
			}
		}
	}
}
