// Command driftbench regenerates the paper's evaluation tables and
// analyses on the synthetic datasets:
//
//	driftbench -exp table1 -dataset 5gc            # Table I (one dataset)
//	driftbench -exp table2 -dataset 5gipc          # Table II ablation
//	driftbench -exp table3                         # Table III multi-target
//	driftbench -exp sensitivity -dataset 5gc       # §VI-C variant counts
//	driftbench -exp variance -dataset 5gipc        # §VI-C draw variance
//	driftbench -exp indomain -dataset 5gc          # §VI-B(a) in-domain check
//	driftbench -exp all                            # everything, both datasets
//
// -scale quick|bench|full trades fidelity for wall-clock time (see
// internal/experiments.Scale). -workers N bounds the parallel compute
// layer (0 = all cores, 1 = sequential) without changing any result bit.
//
// Benchmarking:
//
//	driftbench -bench                              # sequential vs parallel
//	                                               # stage timings + the
//	                                               # bit-identical verdicts,
//	                                               # written to
//	                                               # BENCH_parallel.json
//
// Observability:
//
//	driftbench -exp table1 -http :9090             # live Prometheus /metrics,
//	                                               # expvar, and pprof while
//	                                               # the tables run
//	driftbench -exp table1 -json report.json       # machine-readable run
//	                                               # report (results + the
//	                                               # final metrics snapshot)
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"time"

	"netdrift/internal/experiments"
	"netdrift/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "driftbench:", err)
		os.Exit(1)
	}
}

// report is the -json run artifact: enough to archive a run or diff two.
type report struct {
	Experiment string         `json:"experiment"`
	Dataset    string         `json:"dataset"`
	Scale      string         `json:"scale"`
	Shots      []int          `json:"shots"`
	Repeats    int            `json:"repeats"`
	Seed       int64          `json:"seed"`
	WallSecs   float64        `json:"wall_seconds"`
	Results    map[string]any `json:"results"`
	Metrics    []obs.Sample   `json:"metrics"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("driftbench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "table1", "experiment: table1|table2|table3|sensitivity|variance|indomain|all")
		ds       = fs.String("dataset", "5gc", "dataset: 5gc|5gipc (ignored by table3)")
		scale    = fs.String("scale", "bench", "compute scale: quick|bench|full")
		shots    = fs.String("shots", "1,5,10", "comma-separated target shots per class")
		repeats  = fs.Int("repeats", 3, "few-shot draws averaged per cell")
		seed     = fs.Int64("seed", 1, "base RNG seed")
		methods  = fs.String("methods", "", "comma-separated Table I method filter (empty = all)")
		workers  = fs.Int("workers", 0, "parallel workers for experiment cells and kernels (0 = all cores, 1 = sequential; results are bit-identical either way)")
		shards   = fs.Int("train-shards", 0, "gradient shards per training minibatch for the \"ours\" reconstructors (0/1 = sequential trainer; the shard count is part of the reproducibility key — it changes results; -workers never does)")
		bench    = fs.Bool("bench", false, "measure sequential vs parallel stage wall time and write a speedup report instead of running an experiment")
		benchOut = fs.String("bench-out", "BENCH_parallel.json", "output path for the -bench report")
		verbose  = fs.Bool("v", false, "print per-cell progress")
		httpAddr = fs.String("http", "", "serve /metrics, /debug/vars, and /debug/pprof on this address while running (e.g. :9090)")
		jsonPath = fs.String("json", "", "write a machine-readable JSON run report to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, ok := experiments.ScaleByName(*scale)
	if !ok {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	shotList, err := parseShots(*shots)
	if err != nil {
		return err
	}
	// Fail fast on an unwritable report path rather than after the run.
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return fmt.Errorf("-json: %w", err)
		}
		f.Close()
	}
	start := time.Now()
	var progress func(string)
	if *verbose {
		progress = func(s string) {
			fmt.Fprintf(out, "[%7s] %s\n", time.Since(start).Round(time.Second), s)
		}
	}
	var filter []string
	if *methods != "" {
		filter = strings.Split(*methods, ",")
	}

	// One observer instruments the whole run; the summary and -json report
	// read it back, and -http exposes it live.
	observer := obs.New()
	var serveAddr string
	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return fmt.Errorf("-http listen: %w", err)
		}
		serveAddr = ln.Addr().String()
		mux := http.NewServeMux()
		mux.Handle("/metrics", observer.Registry)
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(out, "serving metrics on http://%s/metrics\n", ln.Addr())
	}

	if *bench {
		if err := runBench(out, observer, benchConfig{
			Workers: *workers, Scale: sc, ScaleName: *scale, Seed: *seed,
			Shots: shotList, Repeats: *repeats, Methods: filter,
			Progress: progress, Out: *benchOut,
		}); err != nil {
			return err
		}
		if serveAddr != "" && scrapeForTest != nil {
			scrapeForTest(serveAddr)
		}
		return nil
	}

	results := make(map[string]any)
	runOne := func(kind, dataset string) error {
		key := kind
		if dataset != "" {
			key = kind + "/" + dataset
		}
		switch kind {
		case "table1":
			res, err := experiments.RunTable1(experiments.Table1Config{
				Dataset: dataset, Shots: shotList, Repeats: *repeats,
				Seed: *seed, Scale: sc, Methods: filter, Workers: *workers,
				TrainShards: *shards, Progress: progress, Obs: observer,
			})
			if err != nil {
				return err
			}
			results[key] = res
			fmt.Fprint(out, experiments.FormatTable1(res))
		case "table2":
			res, err := experiments.RunTable2(experiments.Table2Config{
				Dataset: dataset, Shots: shotList, Repeats: *repeats,
				Seed: *seed, Scale: sc, Workers: *workers,
				Progress: progress, Obs: observer,
			})
			if err != nil {
				return err
			}
			results[key] = res
			fmt.Fprint(out, experiments.FormatTable2(res))
		case "table3":
			res, err := experiments.RunTable3(experiments.Table3Config{
				Shots: shotList, Repeats: *repeats, Seed: *seed, Scale: sc,
				Workers: *workers, Progress: progress, Obs: observer,
			})
			if err != nil {
				return err
			}
			results[key] = res
			fmt.Fprint(out, experiments.FormatTable3(res))
		case "sensitivity":
			res, err := experiments.RunVariantCounts(experiments.SensitivityConfig{
				Dataset: dataset, Shots: shotList, Repeats: *repeats,
				Seed: *seed, Scale: sc, Workers: *workers,
				Progress: progress, Obs: observer,
			})
			if err != nil {
				return err
			}
			results[key] = res
			fmt.Fprint(out, experiments.FormatVariantCounts(res))
		case "variance":
			shot := 5
			if len(shotList) == 1 {
				shot = shotList[0]
			}
			res, err := experiments.RunVariance(experiments.SensitivityConfig{
				Dataset: dataset, Repeats: *repeats, Seed: *seed, Scale: sc,
				Workers: *workers, Progress: progress, Obs: observer,
			}, shot)
			if err != nil {
				return err
			}
			results[key] = res
			fmt.Fprint(out, experiments.FormatVariance(res))
		case "indomain":
			res, err := experiments.RunInDomain(experiments.SensitivityConfig{
				Dataset: dataset, Seed: *seed, Scale: sc, Progress: progress,
				Obs: observer,
			})
			if err != nil {
				return err
			}
			results[key] = res
			fmt.Fprint(out, experiments.FormatInDomain(res))
		default:
			return fmt.Errorf("unknown experiment %q", kind)
		}
		return nil
	}

	if *exp != "all" {
		if err := runOne(*exp, datasetFor(*exp, *ds)); err != nil {
			return err
		}
	} else {
		for _, dataset := range []string{"5gc", "5gipc"} {
			for _, kind := range []string{"indomain", "table1", "table2", "sensitivity", "variance"} {
				fmt.Fprintf(out, "\n=== %s / %s ===\n", kind, dataset)
				if err := runOne(kind, dataset); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(out, "\n=== table3 ===\n")
		if err := runOne("table3", ""); err != nil {
			return err
		}
	}

	printSummary(out, observer)

	if *jsonPath != "" {
		rep := report{
			Experiment: *exp,
			Dataset:    *ds,
			Scale:      *scale,
			Shots:      shotList,
			Repeats:    *repeats,
			Seed:       *seed,
			WallSecs:   time.Since(start).Seconds(),
			Results:    results,
			Metrics:    observer.Registry.Snapshot(),
		}
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return fmt.Errorf("-json encode: %w", err)
		}
		if err := os.WriteFile(*jsonPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("-json write: %w", err)
		}
		fmt.Fprintf(out, "run report written to %s\n", *jsonPath)
	}
	if serveAddr != "" && scrapeForTest != nil {
		scrapeForTest(serveAddr)
	}
	return nil
}

// scrapeForTest, when non-nil, is invoked with the -http listen address
// after the run completes but before the server shuts down, so tests can
// exercise the live endpoints.
var scrapeForTest func(addr string)

// datasetFor blanks the dataset for experiments that ignore it so result
// keys and the report stay honest.
func datasetFor(exp, ds string) string {
	if exp == "table3" {
		return ""
	}
	return ds
}

// printSummary digests the run's metrics into the human-readable trailer:
// how much causal search ran and how quickly the reconstructors settled.
func printSummary(out io.Writer, o *obs.Observer) {
	reg := o.Registry
	marginal, _ := reg.Value(obs.MetricCITests, "kind", "marginal")
	conditional, _ := reg.Value(obs.MetricCITests, "kind", "conditional")
	searches, _ := reg.Value(obs.MetricFSSearches)
	fmt.Fprintf(out, "\n--- observability summary ---\n")
	fmt.Fprintf(out, "CI tests: %.0f total (%.0f marginal, %.0f conditional) across %.0f FS searches\n",
		marginal+conditional, marginal, conditional, searches)
	for _, model := range []string{"GAN", "NoCond", "VAE", "VanillaAE"} {
		fits, ok := reg.Value(obs.MetricTrainFits, "model", model)
		if !ok || fits == 0 {
			continue
		}
		conv := reg.Histogram(obs.MetricConvergedEpoch, "model", model)
		epochs, _ := reg.Value(obs.MetricTrainEpochs, "model", model)
		fmt.Fprintf(out, "%s: %.0f fits, %.0f epochs total, converged at epoch %.1f on average\n",
			model, fits, epochs, conv.Mean())
	}
}

func parseShots(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid shot count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shot counts given")
	}
	return out, nil
}
