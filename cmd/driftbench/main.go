// Command driftbench regenerates the paper's evaluation tables and
// analyses on the synthetic datasets:
//
//	driftbench -exp table1 -dataset 5gc            # Table I (one dataset)
//	driftbench -exp table2 -dataset 5gipc          # Table II ablation
//	driftbench -exp table3                         # Table III multi-target
//	driftbench -exp sensitivity -dataset 5gc       # §VI-C variant counts
//	driftbench -exp variance -dataset 5gipc        # §VI-C draw variance
//	driftbench -exp indomain -dataset 5gc          # §VI-B(a) in-domain check
//	driftbench -exp all                            # everything, both datasets
//
// -scale quick|bench|full trades fidelity for wall-clock time (see
// internal/experiments.Scale).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"netdrift/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "driftbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "table1", "experiment: table1|table2|table3|sensitivity|variance|indomain|all")
		ds      = flag.String("dataset", "5gc", "dataset: 5gc|5gipc (ignored by table3)")
		scale   = flag.String("scale", "bench", "compute scale: quick|bench|full")
		shots   = flag.String("shots", "1,5,10", "comma-separated target shots per class")
		repeats = flag.Int("repeats", 3, "few-shot draws averaged per cell")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		methods = flag.String("methods", "", "comma-separated Table I method filter (empty = all)")
		verbose = flag.Bool("v", false, "print per-cell progress")
	)
	flag.Parse()

	sc, ok := experiments.ScaleByName(*scale)
	if !ok {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	shotList, err := parseShots(*shots)
	if err != nil {
		return err
	}
	var progress func(string)
	if *verbose {
		start := time.Now()
		progress = func(s string) {
			fmt.Printf("[%7s] %s\n", time.Since(start).Round(time.Second), s)
		}
	}
	var filter []string
	if *methods != "" {
		filter = strings.Split(*methods, ",")
	}

	runOne := func(kind, dataset string) error {
		switch kind {
		case "table1":
			res, err := experiments.RunTable1(experiments.Table1Config{
				Dataset: dataset, Shots: shotList, Repeats: *repeats,
				Seed: *seed, Scale: sc, Methods: filter, Progress: progress,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable1(res))
		case "table2":
			res, err := experiments.RunTable2(experiments.Table2Config{
				Dataset: dataset, Shots: shotList, Repeats: *repeats,
				Seed: *seed, Scale: sc, Progress: progress,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable2(res))
		case "table3":
			res, err := experiments.RunTable3(experiments.Table3Config{
				Shots: shotList, Repeats: *repeats, Seed: *seed, Scale: sc, Progress: progress,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable3(res))
		case "sensitivity":
			res, err := experiments.RunVariantCounts(experiments.SensitivityConfig{
				Dataset: dataset, Shots: shotList, Repeats: *repeats,
				Seed: *seed, Scale: sc, Progress: progress,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatVariantCounts(res))
		case "variance":
			shot := 5
			if len(shotList) == 1 {
				shot = shotList[0]
			}
			res, err := experiments.RunVariance(experiments.SensitivityConfig{
				Dataset: dataset, Repeats: *repeats, Seed: *seed, Scale: sc, Progress: progress,
			}, shot)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatVariance(res))
		case "indomain":
			res, err := experiments.RunInDomain(experiments.SensitivityConfig{
				Dataset: dataset, Seed: *seed, Scale: sc, Progress: progress,
			})
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatInDomain(res))
		default:
			return fmt.Errorf("unknown experiment %q", kind)
		}
		return nil
	}

	if *exp != "all" {
		return runOne(*exp, *ds)
	}
	for _, dataset := range []string{"5gc", "5gipc"} {
		for _, kind := range []string{"indomain", "table1", "table2", "sensitivity", "variance"} {
			fmt.Printf("\n=== %s / %s ===\n", kind, dataset)
			if err := runOne(kind, dataset); err != nil {
				return err
			}
		}
	}
	fmt.Printf("\n=== table3 ===\n")
	return runOne("table3", "")
}

func parseShots(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid shot count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no shot counts given")
	}
	return out, nil
}
