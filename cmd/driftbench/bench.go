package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"reflect"
	"runtime"

	"netdrift/internal/causal"
	"netdrift/internal/core"
	"netdrift/internal/experiments"
	"netdrift/internal/mat"
	"netdrift/internal/nn"
	"netdrift/internal/obs"
)

// benchStageMetric accumulates per-stage wall time in the run's observer so
// the -http endpoint and -json snapshot expose the benchmark like any other
// pipeline stage.
const benchStageMetric = "netdrift_bench_stage_seconds"

// benchReport is the BENCH_parallel.json artifact: sequential vs parallel
// wall time per pipeline stage, plus a bit-identical verdict for each.
type benchReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	NumCPU     int          `json:"num_cpu"`
	Workers    int          `json:"workers"`
	Scale      string       `json:"scale"`
	Seed       int64        `json:"seed"`
	Stages     []benchStage `json:"stages"`
}

type benchStage struct {
	Name string `json:"name"`
	// GOMAXPROCS is the live setting while THIS stage ran — the training
	// stage raises it, so the report-level value is not authoritative
	// per stage.
	GOMAXPROCS   int     `json:"gomaxprocs"`
	SeqSeconds   float64 `json:"seq_seconds"`
	ParSeconds   float64 `json:"par_seconds"`
	Speedup      float64 `json:"speedup"`
	SeqAllocs    uint64  `json:"seq_allocs"`
	SeqBytes     uint64  `json:"seq_bytes"`
	ParAllocs    uint64  `json:"par_allocs"`
	ParBytes     uint64  `json:"par_bytes"`
	BitIdentical bool    `json:"bit_identical"`
}

// benchConfig carries the shared flag values into the -bench runner.
type benchConfig struct {
	Workers   int
	Scale     experiments.Scale
	ScaleName string
	Seed      int64
	Shots     []int
	Repeats   int
	Methods   []string
	Progress  func(string)
	Out       string
}

// runBench measures each parallel stage (matrix multiply, covariance, the
// FS causal search, and a Table I cell grid) with Workers=1 against
// Workers=N, verifies the outputs are bit-identical, and writes the
// benchReport JSON. On a single-core machine the speedups honestly hover
// around 1.0; the determinism verdicts still hold.
func runBench(out io.Writer, observer *obs.Observer, cfg benchConfig) error {
	workers := cfg.Workers
	if workers <= 0 {
		// Default the parallel pass to the physical core count, not
		// GOMAXPROCS: a capped GOMAXPROCS (cgroup limits, GOMAXPROCS=1 in
		// the environment) would silently benchmark "parallel" with one
		// worker and report meaningless ~1.0 speedups.
		workers = runtime.NumCPU()
	}
	rep := benchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    workers,
		Scale:      cfg.ScaleName,
		Seed:       cfg.Seed,
	}
	// Kernel problem sizes scale with the -scale flag so "quick" stays
	// test-friendly while "bench"/"full" exercise real arithmetic volume.
	dim := 384
	switch cfg.ScaleName {
	case "quick":
		dim = 96
	case "full":
		dim = 768
	}

	// timed measures wall time plus heap allocation deltas (Mallocs /
	// TotalAlloc are monotonic, so the deltas are exact counts of what the
	// stage allocated; concurrent background work would inflate them, but
	// the bench runs stages strictly one at a time).
	timed := func(stage, mode string, fn func() error) (float64, uint64, uint64, error) {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		done := observer.Time(benchStageMetric, "stage", stage, "mode", mode)
		err := fn()
		done()
		runtime.ReadMemStats(&after)
		if err != nil {
			return 0, 0, 0, fmt.Errorf("bench %s (%s): %w", stage, mode, err)
		}
		h := observer.Registry.Histogram(benchStageMetric, "stage", stage, "mode", mode)
		return h.Sum(), after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc, nil
	}
	addStage := func(name string, seqFn, parFn func() error, identical func() bool) error {
		seqS, seqAllocs, seqBytes, err := timed(name, "seq", seqFn)
		if err != nil {
			return err
		}
		parS, parAllocs, parBytes, err := timed(name, "par", parFn)
		if err != nil {
			return err
		}
		st := benchStage{
			Name: name, GOMAXPROCS: runtime.GOMAXPROCS(0),
			SeqSeconds: seqS, ParSeconds: parS,
			SeqAllocs: seqAllocs, SeqBytes: seqBytes,
			ParAllocs: parAllocs, ParBytes: parBytes,
			BitIdentical: identical(),
		}
		if parS > 0 {
			st.Speedup = seqS / parS
		}
		rep.Stages = append(rep.Stages, st)
		fmt.Fprintf(out, "%-12s seq %.3fs  par(%d) %.3fs  speedup %.2fx  allocs %d/%d  MB %.1f/%.1f  bit-identical %v\n",
			name, st.SeqSeconds, workers, st.ParSeconds, st.Speedup,
			st.SeqAllocs, st.ParAllocs,
			float64(st.SeqBytes)/(1<<20), float64(st.ParBytes)/(1<<20), st.BitIdentical)
		return nil
	}

	// Stage 1: dense matrix multiply.
	rng := rand.New(rand.NewSource(cfg.Seed))
	randMat := func(rows, cols int) *mat.Matrix {
		m := mat.New(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		return m
	}
	a, b := randMat(dim, dim), randMat(dim, dim)
	var mulSeq, mulPar *mat.Matrix
	if err := addStage("matmul",
		func() (err error) { mulSeq, err = mat.MulWorkers(a, b, 1); return },
		func() (err error) { mulPar, err = mat.MulWorkers(a, b, workers); return },
		func() bool { return matEqual(mulSeq, mulPar) },
	); err != nil {
		return err
	}

	// Stage 2: covariance of a tall sample matrix.
	x := randMat(8*dim, dim/2)
	var covSeq, covPar *mat.Matrix
	if err := addStage("covariance",
		func() (err error) { covSeq, err = mat.CovarianceWorkers(x, 1); return },
		func() (err error) { covPar, err = mat.CovarianceWorkers(x, workers); return },
		func() bool { return matEqual(covSeq, covPar) },
	); err != nil {
		return err
	}

	// Stage 3: the FS causal search on a synthetic 5GC drift pair.
	pair, err := experiments.MakePair("5gc", cfg.Scale, cfg.Seed)
	if err != nil {
		return err
	}
	drawRng := rand.New(rand.NewSource(cfg.Seed + 977))
	shot := cfg.Shots[0]
	support, _, err := pair.TargetTrain.FewShot(shot, pair.UseGroups, drawRng)
	if err != nil {
		return err
	}
	var fsSeq, fsPar *causal.FNodeResult
	if err := addStage("fs_search",
		func() (err error) {
			fsSeq, err = causal.FindVariantFeatures(pair.Source.X, support.X, causal.FNodeConfig{Workers: 1})
			return
		},
		func() (err error) {
			fsPar, err = causal.FindVariantFeatures(pair.Source.X, support.X, causal.FNodeConfig{Workers: workers})
			return
		},
		func() bool { return reflect.DeepEqual(fsSeq, fsPar) },
	); err != nil {
		return err
	}

	// Stages 4 and 5 are the training stages: both raise GOMAXPROCS to at
	// least 4 (restored afterwards, recorded per stage) and run their
	// parallel leg with at least 4 workers, so the report shows a genuine
	// multi-worker training run even when launched on a constrained runner.
	prevProcs := runtime.GOMAXPROCS(0)
	if prevProcs < 4 {
		runtime.GOMAXPROCS(4)
	}
	trainWorkers := workers
	if trainWorkers < 4 {
		trainWorkers = 4
	}

	// Stage 4: a Table I cell grid (the experiment worker pool).
	t1 := func(w int) (*experiments.Table1Result, error) {
		return experiments.RunTable1(experiments.Table1Config{
			Dataset: "5gc", Shots: cfg.Shots, Repeats: cfg.Repeats,
			Seed: cfg.Seed, Scale: cfg.Scale, Methods: cfg.Methods,
			Workers: w, Progress: cfg.Progress, Obs: observer,
		})
	}
	var t1Seq, t1Par *experiments.Table1Result
	if err := addStage("table1_cells",
		func() (err error) { t1Seq, err = t1(1); return },
		func() (err error) { t1Par, err = t1(trainWorkers); return },
		func() bool {
			sb, err1 := json.Marshal(t1Seq)
			pb, err2 := json.Marshal(t1Par)
			return err1 == nil && err2 == nil && string(sb) == string(pb)
		},
	); err != nil {
		runtime.GOMAXPROCS(prevProcs)
		return err
	}

	// Stage 5: one sharded GAN training run (Shards fixed at 8, the
	// reproducibility key, identical in both legs). The sequential leg pins
	// the portable scalar kernels with one worker; the parallel leg
	// re-enables the SIMD kernel set and the worker pool. The bit-identical
	// verdict therefore attests both halves of the §5d determinism contract
	// at once — every AVX kernel against its scalar twin, and the tree
	// reduction against the worker count — end to end through real epochs.
	ganWorkers := trainWorkers
	ganEpochs := 6
	if cfg.ScaleName == "quick" {
		ganEpochs = 2
	}
	ganInv, ganVar, ganLab := benchGANData(4*dim, cfg.Seed+4242)
	trainGAN := func(w int, vector bool) ([]*nn.Snapshot, error) {
		prev := nn.SetVectorKernels(vector)
		defer nn.SetVectorKernels(prev)
		g := core.NewCGAN(core.GANConfig{
			Epochs: ganEpochs, BatchSize: 64, Hidden: 64, NoiseDim: 8,
			Seed: cfg.Seed + 99, Conditional: true,
			Shards: 8, Workers: w,
		})
		if err := g.Fit(ganInv, ganVar, ganLab, 2); err != nil {
			return nil, err
		}
		return g.Snapshots(), nil
	}
	var ganSeq, ganPar []*nn.Snapshot
	ganErr := addStage("gan_epoch",
		func() (err error) { ganSeq, err = trainGAN(1, false); return },
		func() (err error) { ganPar, err = trainGAN(ganWorkers, true); return },
		func() bool { return snapshotsBitEqual(ganSeq, ganPar) },
	)
	runtime.GOMAXPROCS(prevProcs)
	if ganErr != nil {
		return ganErr
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(cfg.Out, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("-bench-out write: %w", err)
	}
	fmt.Fprintf(out, "benchmark report written to %s\n", cfg.Out)
	return nil
}

// benchGANData synthesizes a source domain for the training stage: variant
// features are a noisy tanh-squashed linear map of the invariant ones, the
// same structure the experiment pairs use, at a size the stage controls.
func benchGANData(n int, seed int64) (inv, vr [][]float64, y []int) {
	rng := rand.New(rand.NewSource(seed))
	const invDim, varDim = 12, 6
	w := make([][]float64, invDim)
	for i := range w {
		w[i] = make([]float64, varDim)
		for j := range w[i] {
			w[i][j] = rng.NormFloat64()
		}
	}
	inv = make([][]float64, n)
	vr = make([][]float64, n)
	y = make([]int, n)
	for i := 0; i < n; i++ {
		inv[i] = make([]float64, invDim)
		vr[i] = make([]float64, varDim)
		for k := range inv[i] {
			inv[i][k] = 2*rng.Float64() - 1
		}
		for j := 0; j < varDim; j++ {
			var s float64
			for k := 0; k < invDim; k++ {
				s += inv[i][k] * w[k][j]
			}
			vr[i][j] = math.Tanh(s + 0.1*rng.NormFloat64())
		}
		y[i] = i % 2
	}
	return inv, vr, y
}

// snapshotsBitEqual reports whether two snapshot sets hold bitwise-identical
// parameters and extra state (batch-norm running statistics).
func snapshotsBitEqual(a, b []*nn.Snapshot) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] == nil || b[i] == nil {
			return false
		}
		if len(a[i].Params) != len(b[i].Params) || len(a[i].Extra) != len(b[i].Extra) {
			return false
		}
		for p := range a[i].Params {
			ap, bp := a[i].Params[p], b[i].Params[p]
			if len(ap) != len(bp) {
				return false
			}
			for k := range ap {
				if math.Float64bits(ap[k]) != math.Float64bits(bp[k]) {
					return false
				}
			}
		}
		for e := range a[i].Extra {
			ae, be := a[i].Extra[e], b[i].Extra[e]
			if len(ae) != len(be) {
				return false
			}
			for s := range ae {
				if len(ae[s]) != len(be[s]) {
					return false
				}
				for k := range ae[s] {
					if math.Float64bits(ae[s][k]) != math.Float64bits(be[s][k]) {
						return false
					}
				}
			}
		}
	}
	return true
}

// matEqual reports exact bit equality of two matrices, distinguishing
// -0.0 from +0.0 (NaNs never occur in these kernels' outputs).
func matEqual(a, b *mat.Matrix) bool {
	if a == nil || b == nil {
		return false
	}
	ar, ac := a.Dims()
	br, bc := b.Dims()
	if ar != br || ac != bc {
		return false
	}
	for i := 0; i < ar; i++ {
		for j := 0; j < ac; j++ {
			av, bv := a.At(i, j), b.At(i, j)
			if av != bv {
				return false
			}
			if av == 0 && 1/av != 1/bv {
				return false
			}
		}
	}
	return true
}
