// Command datagen emits the synthetic drifted datasets as CSV files for
// external analysis:
//
//	datagen -dataset 5gc -out ./data
//
// writes data/5gc_source.csv, data/5gc_target_train.csv,
// data/5gc_target_test.csv (plus _target2_* files for -targets 2 on 5gipc).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"netdrift/internal/dataset"
	"netdrift/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		ds      = flag.String("dataset", "5gc", "dataset: 5gc|5gipc")
		scale   = flag.String("scale", "full", "size: quick|bench|full")
		seed    = flag.Int64("seed", 1, "RNG seed")
		out     = flag.String("out", ".", "output directory")
		targets = flag.Int("targets", 1, "number of target domains (5gipc only; 1 or 2)")
	)
	flag.Parse()

	sc, ok := experiments.ScaleByName(*scale)
	if !ok {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	write := func(name string, d *dataset.Dataset) error {
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, d); err != nil {
			return fmt.Errorf("write %s: %w", path, err)
		}
		fmt.Printf("wrote %s (%d samples x %d features)\n", path, d.NumSamples(), d.NumFeatures())
		return f.Close()
	}

	switch *ds {
	case "5gc":
		d, err := dataset.Synthetic5GC(dataset.FiveGCConfig{
			Seed: *seed, SourceSamples: sc.GCSource,
			TargetTrainPool: sc.GCTargetPool, TargetTestSamples: sc.GCTargetTest,
		})
		if err != nil {
			return err
		}
		fmt.Printf("ground-truth variant features: %v\n", d.TrueVariant)
		if err := write("5gc_source.csv", d.Source); err != nil {
			return err
		}
		if err := write("5gc_target_train.csv", d.TargetTrain); err != nil {
			return err
		}
		return write("5gc_target_test.csv", d.TargetTest)
	case "5gipc":
		d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
			Seed: *seed, SourceNormal: sc.IPCSourceNormal, SourceFaults: sc.IPCSourceFaults,
			TargetNormal: sc.IPCTargetNormal, TargetFaults: sc.IPCTargetFaults,
			TargetTrainPerGroup: sc.IPCTrainPool, NumTargets: *targets,
		})
		if err != nil {
			return err
		}
		if err := write("5gipc_source.csv", d.Source); err != nil {
			return err
		}
		for t, tgt := range d.Targets {
			suffix := ""
			if t > 0 {
				suffix = fmt.Sprintf("%d", t+1)
			}
			fmt.Printf("target%s ground-truth variant features: %v\n", suffix, tgt.TrueVariant)
			if err := write(fmt.Sprintf("5gipc_target%s_train.csv", suffix), tgt.Train); err != nil {
				return err
			}
			if err := write(fmt.Sprintf("5gipc_target%s_test.csv", suffix), tgt.Test); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown dataset %q", *ds)
	}
}
