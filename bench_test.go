// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§VI). Each benchmark regenerates its experiment at BenchScale
// (see internal/experiments.Scale — sample counts and epoch budgets scaled
// for a single CPU core; use cmd/driftbench -scale full for paper-scale
// runs) and reports the headline F1 numbers as benchmark metrics.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package netdrift_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"netdrift/internal/causal"
	"netdrift/internal/core"
	"netdrift/internal/experiments"
	"netdrift/internal/models"
)

// benchSeed keeps every benchmark deterministic run-to-run.
const benchSeed = 1

// BenchmarkTable1_5GC regenerates Table I for the 5GC dataset: all 13
// methods × 4 classifiers × shots {1, 5, 10}.
func BenchmarkTable1_5GC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(experiments.Table1Config{
			Dataset: "5gc",
			Shots:   []int{1, 5, 10},
			Repeats: 1,
			Seed:    benchSeed,
			Scale:   experiments.BenchScale,
		})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Print(experiments.FormatTable1(res))
		reportHeadline(b, res)
	}
}

// BenchmarkTable1_5GIPC regenerates Table I for the 5GIPC dataset.
func BenchmarkTable1_5GIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable1(experiments.Table1Config{
			Dataset: "5gipc",
			Shots:   []int{1, 5, 10},
			Repeats: 1,
			Seed:    benchSeed,
			Scale:   experiments.BenchScale,
		})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Print(experiments.FormatTable1(res))
		reportHeadline(b, res)
	}
}

func reportHeadline(b *testing.B, res *experiments.Table1Result) {
	b.Helper()
	if v, ok := res.MeanScore("FS+GAN (ours)"); ok {
		b.ReportMetric(v, "F1_FS+GAN")
	}
	if v, ok := res.MeanScore("FS (ours)"); ok {
		b.ReportMetric(v, "F1_FS")
	}
	if v, ok := res.MeanScore("SrcOnly"); ok {
		b.ReportMetric(v, "F1_SrcOnly")
	}
	if v, ok := res.MeanScore("CMT"); ok {
		b.ReportMetric(v, "F1_CMT")
	}
}

// BenchmarkTable2_Ablation_5GC regenerates the Table II reconstruction
// ablation on 5GC (TNet).
func BenchmarkTable2_Ablation_5GC(b *testing.B) {
	benchTable2(b, "5gc")
}

// BenchmarkTable2_Ablation_5GIPC regenerates the Table II reconstruction
// ablation on 5GIPC (TNet).
func BenchmarkTable2_Ablation_5GIPC(b *testing.B) {
	benchTable2(b, "5gipc")
}

func benchTable2(b *testing.B, ds string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable2(experiments.Table2Config{
			Dataset: ds,
			Shots:   []int{1, 5, 10},
			Repeats: 1,
			Seed:    benchSeed,
			Scale:   experiments.BenchScale,
		})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Print(experiments.FormatTable2(res))
		for _, kind := range res.Kinds {
			b.ReportMetric(res.Scores[kind][10], "F1_FS+"+kind.String()+"@10")
		}
	}
}

// BenchmarkTable3_MultiTarget regenerates the Table III no-retraining
// experiment: one source-trained TNet, two target domains, two adapters.
func BenchmarkTable3_MultiTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTable3(experiments.Table3Config{
			Shots:   []int{1, 5, 10},
			Repeats: 1,
			Seed:    benchSeed,
			Scale:   experiments.BenchScale,
		})
		if err != nil {
			b.Fatal(err)
		}
		fmt.Print(experiments.FormatTable3(res))
		b.ReportMetric(res.Scores[0][0][10], "F1_A1T1@10")
		b.ReportMetric(res.Scores[1][1][10], "F1_A2T2@10")
		b.ReportMetric(res.CommonVariantFraction, "variant_jaccard")
	}
}

// BenchmarkSensitivity_VariantFeatures regenerates the §VI-C variant-
// feature detection sweep (paper: 35/68/75 on 5GC, 23/31/37 on 5GIPC).
func BenchmarkSensitivity_VariantFeatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ds := range []string{"5gc", "5gipc"} {
			res, err := experiments.RunVariantCounts(experiments.SensitivityConfig{
				Dataset: ds,
				Shots:   []int{1, 5, 10},
				Repeats: 2,
				Seed:    benchSeed,
				Scale:   experiments.BenchScale,
			})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Print(experiments.FormatVariantCounts(res))
			b.ReportMetric(res.FSCounts[1], "FS@1_"+ds)
			b.ReportMetric(res.FSCounts[10], "FS@10_"+ds)
		}
	}
}

// BenchmarkSensitivity_Variance regenerates the §VI-C draw-variance check
// (paper: FS+GAN within ±2.6 F1 across target-sample selections).
func BenchmarkSensitivity_Variance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunVariance(experiments.SensitivityConfig{
			Dataset: "5gipc",
			Repeats: 3,
			Seed:    benchSeed,
			Scale:   experiments.BenchScale,
		}, 5)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Print(experiments.FormatVariance(res))
		b.ReportMetric(res.Mean, "F1_mean")
		b.ReportMetric(res.StdDev, "F1_stddev")
	}
}

// BenchmarkSrcOnlyInDomain regenerates the §VI-B(a) check that SrcOnly is
// strong when no drift separates train and test.
func BenchmarkSrcOnlyInDomain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, ds := range []string{"5gc", "5gipc"} {
			res, err := experiments.RunInDomain(experiments.SensitivityConfig{
				Dataset: ds,
				Seed:    benchSeed,
				Scale:   experiments.BenchScale,
			})
			if err != nil {
				b.Fatal(err)
			}
			fmt.Print(experiments.FormatInDomain(res))
			b.ReportMetric(res.F1["TNet"], "F1_TNet_"+ds)
		}
	}
}

// BenchmarkFS_RunningTime measures the FS causal search alone (paper
// §VI-D: 42 min for 5GC on their server; ours runs the F-node-restricted
// search on BenchScale data).
func BenchmarkFS_RunningTime(b *testing.B) {
	pair, err := experiments.MakePair("5gc", experiments.BenchScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	support, _, err := pair.TargetTrain.FewShot(10, false, rand.New(rand.NewSource(benchSeed)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sep := core.NewFeatureSeparator(causal.FNodeConfig{})
		if err := sep.Fit(pair.Source.X, support.X); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGAN_Training measures one conditional-GAN fit on source data
// (paper §VI-D: ~12 min for 5GC on their GPU server).
func BenchmarkGAN_Training(b *testing.B) {
	pair, err := experiments.MakePair("5gc", experiments.BenchScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	support, _, err := pair.TargetTrain.FewShot(10, false, rand.New(rand.NewSource(benchSeed)))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ad := core.NewAdapter(core.AdapterConfig{
			Mode:  core.ModeFSRecon,
			Recon: core.ReconGAN,
			GAN:   core.GANConfig{Epochs: experiments.BenchScale.GANEpochs},
			Seed:  benchSeed,
		})
		if err := ad.Fit(pair.Source, support); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInference_PerSample measures the per-sample alignment cost: one
// generator pass per target sample (paper §VI-D: ~0.05 s/sample on their
// hardware; the point is that inference is a single feed-forward pass).
func BenchmarkInference_PerSample(b *testing.B) {
	pair, err := experiments.MakePair("5gipc", experiments.BenchScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	support, _, err := pair.TargetTrain.FewShot(10, true, rand.New(rand.NewSource(benchSeed)))
	if err != nil {
		b.Fatal(err)
	}
	ad := core.NewAdapter(core.AdapterConfig{
		Mode:  core.ModeFSRecon,
		Recon: core.ReconGAN,
		GAN:   core.GANConfig{Epochs: 10},
		Seed:  benchSeed,
	})
	if err := ad.Fit(pair.Source, support); err != nil {
		b.Fatal(err)
	}
	rows := pair.TargetTest.X[:200]
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ad.TransformTarget(rows); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if b.N > 0 {
		perSample := time.Since(start).Seconds() / float64(b.N*len(rows))
		b.ReportMetric(perSample*1e6, "µs/sample")
	}
}

// BenchmarkClassifierFits measures one training run of each classifier
// family at BenchScale, the unit cost behind every Table I cell.
func BenchmarkClassifierFits(b *testing.B) {
	pair, err := experiments.MakePair("5gc", experiments.BenchScale, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	for _, kind := range models.AllKinds() {
		kind := kind
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				clf, err := models.New(kind, models.Options{
					Seed:   benchSeed,
					Epochs: experiments.BenchScale.ClassifierEpochs,
					Trees:  experiments.BenchScale.Trees,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := clf.Fit(pair.Source.X, pair.Source.Y, 16); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
