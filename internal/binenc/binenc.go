// Package binenc implements the little-endian primitives shared by the
// binary artifact (bundle) and wire (row-batch) formats: an append-based
// encoder over a plain byte slice and a bounds-checked, sticky-error
// decoder. Both sides are allocation-free for fixed-size fields; slice
// reads validate their element counts against the remaining bytes before
// allocating, so a hostile length prefix can never demand more memory
// than the payload it arrived in.
//
// All multi-byte values are little-endian. Floats travel as IEEE-754
// bit patterns (math.Float64bits), so an encode/decode round trip is
// bit-exact — the property the cross-codec golden tests pin.
package binenc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Typed decode failures. Every decoder in this package (and the formats
// built on it) returns one of these wrapped — never a panic — so callers
// can map malformed input to a 4xx-class rejection.
var (
	// ErrTruncated marks input that ended before a declared field.
	ErrTruncated = errors.New("binenc: truncated input")
	// ErrOverflow marks a length or count prefix that exceeds what the
	// remaining bytes could possibly hold.
	ErrOverflow = errors.New("binenc: length prefix exceeds remaining input")
	// ErrNonFinite marks a NaN or Inf in a payload that requires finite
	// values.
	ErrNonFinite = errors.New("binenc: non-finite value in payload")
)

// AppendU8 appends one byte.
func AppendU8(dst []byte, v uint8) []byte { return append(dst, v) }

// AppendU16 appends v little-endian.
func AppendU16(dst []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(dst, v) }

// AppendU32 appends v little-endian.
func AppendU32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }

// AppendU64 appends v little-endian.
func AppendU64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

// AppendI64 appends v as its two's-complement little-endian bits.
func AppendI64(dst []byte, v int64) []byte { return AppendU64(dst, uint64(v)) }

// AppendF64 appends v as its IEEE-754 little-endian bit pattern.
func AppendF64(dst []byte, v float64) []byte { return AppendU64(dst, math.Float64bits(v)) }

// AppendBool appends 1 or 0.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendF64s appends a u32 element count followed by the raw float bits.
func AppendF64s(dst []byte, vs []float64) []byte {
	dst = AppendU32(dst, uint32(len(vs)))
	return AppendF64sRaw(dst, vs)
}

// AppendF64sRaw appends the raw float bits with no count prefix (for
// payloads whose shape lives in a header).
func AppendF64sRaw(dst []byte, vs []float64) []byte {
	for _, v := range vs {
		dst = AppendF64(dst, v)
	}
	return dst
}

// AppendI32s appends a u32 element count followed by int32 values.
func AppendI32s(dst []byte, vs []int) []byte {
	dst = AppendU32(dst, uint32(len(vs)))
	for _, v := range vs {
		dst = AppendU32(dst, uint32(int32(v)))
	}
	return dst
}

// AppendString appends a u16 byte length followed by the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = AppendU16(dst, uint16(len(s)))
	return append(dst, s...)
}

// Reader is a bounds-checked sticky-error decoder over a byte slice.
// After the first failure every read returns a zero value and Err keeps
// reporting the original error; callers may decode a whole structure and
// check once at the end.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader wraps data for decoding. The slice is read, never written.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Reset re-aims the reader at data and clears any sticky error, so a
// stack- or pool-held Reader can be reused without allocating.
func (r *Reader) Reset(data []byte) {
	r.data = data
	r.off = 0
	r.err = nil
}

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

// Offset returns the number of bytes consumed so far.
func (r *Reader) Offset() int { return r.off }

// fail records the first error with positional context.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = fmt.Errorf("%w (at byte %d of %d)", err, r.off, len(r.data))
	}
}

// take reserves n bytes, or fails with ErrTruncated.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.Remaining() < n {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// F64 reads an IEEE-754 little-endian float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte as a boolean (any nonzero value is true).
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Count reads a u32 element count and validates that count*elemBytes
// still fits in the remaining input, failing with ErrOverflow otherwise.
// This is the guard that keeps a hostile prefix from driving a huge
// allocation or a dim-overflow panic downstream.
func (r *Reader) Count(elemBytes int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || elemBytes > 0 && n > r.Remaining()/elemBytes {
		r.fail(ErrOverflow)
		return 0
	}
	return n
}

// F64s reads a u32 count followed by that many floats into a fresh slice.
func (r *Reader) F64s() []float64 {
	n := r.Count(8)
	if r.err != nil {
		return nil
	}
	out := make([]float64, n)
	r.F64sInto(out)
	return out
}

// F64sInto fills dst from the input with no count prefix.
func (r *Reader) F64sInto(dst []float64) {
	b := r.take(len(dst) * 8)
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// FiniteF64s is F64s plus a finiteness scan: any NaN or Inf fails the
// reader with ErrNonFinite.
func (r *Reader) FiniteF64s() []float64 {
	vs := r.F64s()
	if r.err == nil && !AllFinite(vs) {
		r.fail(ErrNonFinite)
		return nil
	}
	return vs
}

// I32s reads a u32 count followed by that many int32 values.
func (r *Reader) I32s() []int {
	n := r.Count(4)
	if r.err != nil {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(int32(r.U32()))
	}
	return out
}

// Bytes reads n raw bytes, returning a subslice of the input (no copy).
// Negative or over-long n fails with ErrTruncated.
func (r *Reader) Bytes(n int) []byte { return r.take(n) }

// String reads a u16 byte length followed by the string bytes.
func (r *Reader) String() string {
	n := int(r.U16())
	if r.err != nil {
		return ""
	}
	if n > r.Remaining() {
		r.fail(ErrOverflow)
		return ""
	}
	return string(r.take(n))
}

// AllFinite reports whether every value is neither NaN nor Inf.
func AllFinite(vs []float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
