package binenc

import (
	"errors"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	floats := []float64{0, 1, -1, math.Pi, math.SmallestNonzeroFloat64, math.MaxFloat64, math.Copysign(0, -1)}
	ints := []int{0, 1, -1, 1 << 20, -(1 << 20)}
	var dst []byte
	dst = AppendU8(dst, 0xAB)
	dst = AppendU16(dst, 0xBEEF)
	dst = AppendU32(dst, 0xDEADBEEF)
	dst = AppendU64(dst, 0x0123456789ABCDEF)
	dst = AppendI64(dst, -42)
	dst = AppendBool(dst, true)
	dst = AppendBool(dst, false)
	dst = AppendF64s(dst, floats)
	dst = AppendI32s(dst, ints)
	dst = AppendString(dst, "bundle-id")

	r := NewReader(dst)
	if v := r.U8(); v != 0xAB {
		t.Errorf("U8 = %x", v)
	}
	if v := r.U16(); v != 0xBEEF {
		t.Errorf("U16 = %x", v)
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %x", v)
	}
	if v := r.U64(); v != 0x0123456789ABCDEF {
		t.Errorf("U64 = %x", v)
	}
	if v := r.I64(); v != -42 {
		t.Errorf("I64 = %d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	got := r.F64s()
	if len(got) != len(floats) {
		t.Fatalf("F64s len %d, want %d", len(got), len(floats))
	}
	for i := range floats {
		if math.Float64bits(got[i]) != math.Float64bits(floats[i]) {
			t.Errorf("F64s[%d] = %x, want %x", i, math.Float64bits(got[i]), math.Float64bits(floats[i]))
		}
	}
	gotInts := r.I32s()
	for i := range ints {
		if gotInts[i] != ints[i] {
			t.Errorf("I32s[%d] = %d, want %d", i, gotInts[i], ints[i])
		}
	}
	if s := r.String(); s != "bundle-id" {
		t.Errorf("String = %q", s)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if r.Remaining() != 0 {
		t.Errorf("remaining %d bytes", r.Remaining())
	}
}

func TestTruncation(t *testing.T) {
	full := AppendF64s(nil, []float64{1, 2, 3})
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		r.F64s()
		if r.Err() == nil {
			t.Errorf("truncated at %d bytes: no error", cut)
		}
		if !errors.Is(r.Err(), ErrTruncated) && !errors.Is(r.Err(), ErrOverflow) {
			t.Errorf("truncated at %d: error %v, want typed", cut, r.Err())
		}
	}
}

func TestOverflowingCountRejected(t *testing.T) {
	// A count prefix claiming 2^31 floats backed by 8 bytes must fail with
	// ErrOverflow before any allocation of that size is attempted.
	data := AppendU32(nil, 1<<31)
	data = append(data, make([]byte, 8)...)
	r := NewReader(data)
	if vs := r.F64s(); vs != nil {
		t.Errorf("overflowing count returned %d values", len(vs))
	}
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Errorf("err = %v, want ErrOverflow", r.Err())
	}
	// Same for strings.
	data = AppendU16(nil, 500)
	r = NewReader(append(data, "short"...))
	if s := r.String(); s != "" {
		t.Errorf("overflowing string = %q", s)
	}
	if !errors.Is(r.Err(), ErrOverflow) {
		t.Errorf("string err = %v, want ErrOverflow", r.Err())
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.U32() // fails: truncated
	first := r.Err()
	if first == nil {
		t.Fatal("expected truncation error")
	}
	// Every later read is a zero-value no-op preserving the first error.
	if v := r.U8(); v != 0 {
		t.Errorf("read after error = %d", v)
	}
	if r.Err() != first {
		t.Errorf("error replaced: %v -> %v", first, r.Err())
	}
}

func TestFiniteF64s(t *testing.T) {
	r := NewReader(AppendF64s(nil, []float64{1, math.NaN()}))
	if vs := r.FiniteF64s(); vs != nil {
		t.Errorf("non-finite payload returned %v", vs)
	}
	if !errors.Is(r.Err(), ErrNonFinite) {
		t.Errorf("err = %v, want ErrNonFinite", r.Err())
	}
	r = NewReader(AppendF64s(nil, []float64{1, math.Inf(-1)}))
	r.FiniteF64s()
	if !errors.Is(r.Err(), ErrNonFinite) {
		t.Errorf("inf err = %v, want ErrNonFinite", r.Err())
	}
}

func TestF64sIntoIsAllocationFree(t *testing.T) {
	payload := AppendF64sRaw(nil, make([]float64, 64))
	dst := make([]float64, 64)
	allocs := testing.AllocsPerRun(100, func() {
		r := Reader{data: payload}
		r.F64sInto(dst)
		if r.Err() != nil {
			t.Fatal(r.Err())
		}
	})
	if allocs != 0 {
		t.Errorf("F64sInto allocates %v per run, want 0", allocs)
	}
}
