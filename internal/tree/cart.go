// Package tree implements decision-tree learners: CART classification
// trees, bootstrap-aggregated random forests, and second-order gradient-
// boosted trees (an XGBoost-style learner). These provide the RF and XGB
// classifier families used in the paper's Table I.
package tree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// ErrNotTrained is returned when predicting with an unfitted model.
var ErrNotTrained = errors.New("tree: model not trained")

// node is one tree node (internal or leaf) in a flattened tree.
type node struct {
	feature int     // split feature; -1 for leaf
	thresh  float64 // split threshold (go left when value <= thresh)
	left    int     // child indices into the node slice
	right   int
	dist    []float64 // leaf class distribution (classification)
	value   float64   // leaf value (regression)
}

// ClassTreeConfig configures a CART classification tree.
type ClassTreeConfig struct {
	MaxDepth    int // default 12
	MinLeaf     int // minimum samples per leaf; default 1
	MaxFeatures int // features sampled per split; default all
	Rng         *rand.Rand
}

// ClassificationTree is a CART tree with gini splitting.
type ClassificationTree struct {
	nodes      []node
	numClasses int
}

// FitClassificationTree builds a tree on the given rows.
func FitClassificationTree(x [][]float64, y []int, numClasses int, cfg ClassTreeConfig) (*ClassificationTree, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("tree: %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("tree: numClasses %d must be >= 2", numClasses)
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeaf == 0 {
		cfg.MinLeaf = 1
	}
	d := len(x[0])
	if cfg.MaxFeatures <= 0 || cfg.MaxFeatures > d {
		cfg.MaxFeatures = d
	}
	if cfg.Rng == nil {
		cfg.Rng = rand.New(rand.NewSource(0))
	}
	t := &ClassificationTree{numClasses: numClasses}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	b := &classBuilder{
		x: x, y: y, k: numClasses, cfg: cfg, tree: t,
		counts:     make([]float64, numClasses),
		leftCounts: make([]float64, numClasses),
		sorted:     make([]int, len(x)),
		part:       make([]int, 0, len(x)),
		perm:       make([]int, d),
	}
	b.build(idx, 0)
	return t, nil
}

type classBuilder struct {
	x    [][]float64
	y    []int
	k    int
	cfg  ClassTreeConfig
	tree *ClassificationTree

	// Split-scan scratch, shared across the whole build: every buffer is
	// fully (re)written before use and consumed before the recursion into
	// the children, so one instance of each suffices for the entire tree.
	counts     []float64
	leftCounts []float64
	sorted     []int
	part       []int
	perm       []int
}

// build grows the subtree for idx and returns its node index. It may
// reorder idx in place (the stable left/right partition), which is safe:
// callers never read idx again after the call.
func (b *classBuilder) build(idx []int, depth int) int {
	counts := b.counts
	for c := range counts {
		counts[c] = 0
	}
	for _, i := range idx {
		counts[b.y[i]]++
	}
	pure := 0
	for _, c := range counts {
		if c > 0 {
			pure++
		}
	}
	if depth >= b.cfg.MaxDepth || pure <= 1 || len(idx) < 2*b.cfg.MinLeaf {
		return b.leaf(counts, len(idx))
	}
	feat, thresh, ok := b.bestSplit(idx, counts)
	if !ok {
		return b.leaf(counts, len(idx))
	}
	// Stable in-place partition: left-goers compact to the idx prefix in
	// order, right-goers stage through the shared scratch — the same
	// left/right orders the old append-based partition produced.
	nl := 0
	scratch := b.part[:0]
	for _, i := range idx {
		if b.x[i][feat] <= thresh {
			idx[nl] = i
			nl++
		} else {
			scratch = append(scratch, i)
		}
	}
	copy(idx[nl:], scratch)
	left, right := idx[:nl], idx[nl:]
	if len(left) < b.cfg.MinLeaf || len(right) < b.cfg.MinLeaf {
		return b.leaf(counts, len(idx))
	}
	me := len(b.tree.nodes)
	b.tree.nodes = append(b.tree.nodes, node{feature: feat, thresh: thresh})
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.tree.nodes[me].left = l
	b.tree.nodes[me].right = r
	return me
}

func (b *classBuilder) leaf(counts []float64, n int) int {
	dist := make([]float64, b.k)
	if n > 0 {
		for c := range counts {
			dist[c] = counts[c] / float64(n)
		}
	}
	b.tree.nodes = append(b.tree.nodes, node{feature: -1, dist: dist})
	return len(b.tree.nodes) - 1
}

// bestSplit scans a random feature subset for the gini-optimal threshold.
func (b *classBuilder) bestSplit(idx []int, counts []float64) (int, float64, bool) {
	n := float64(len(idx))
	parentImp := giniImpurity(counts, n)
	bestGain := 1e-12
	bestFeat, bestThresh := -1, 0.0

	d := len(b.x[0])
	feats := permInto(b.cfg.Rng, d, b.perm)[:b.cfg.MaxFeatures]
	sorted := b.sorted[:len(idx)]
	leftCounts := b.leftCounts
	for _, f := range feats {
		copy(sorted, idx)
		sort.Slice(sorted, func(a, c int) bool { return b.x[sorted[a]][f] < b.x[sorted[c]][f] })
		for c := range leftCounts {
			leftCounts[c] = 0
		}
		var nl float64
		for pos := 0; pos < len(sorted)-1; pos++ {
			i := sorted[pos]
			leftCounts[b.y[i]]++
			nl++
			v, next := b.x[i][f], b.x[sorted[pos+1]][f]
			if v == next {
				continue
			}
			if int(nl) < b.cfg.MinLeaf || len(sorted)-int(nl) < b.cfg.MinLeaf {
				continue
			}
			nr := n - nl
			var impL, impR float64
			impL = giniImpurityLeft(leftCounts, nl)
			impR = giniImpurityRight(counts, leftCounts, nr)
			gain := parentImp - (nl/n)*impL - (nr/n)*impR
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThresh = (v + next) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestFeat >= 0
}

// permInto fills buf with a pseudo-random permutation of [0, n), consuming
// exactly the same rng draws — and producing exactly the same permutation —
// as rng.Perm(n), so feature subsampling is unchanged by the buffer reuse.
func permInto(rng *rand.Rand, n int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	// Mirrors rand.Perm exactly, including the i == 0 iteration whose
	// Intn(1) draw advances the rng state.
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
	return buf
}

func giniImpurity(counts []float64, n float64) float64 {
	if n == 0 {
		return 0
	}
	imp := 1.0
	for _, c := range counts {
		p := c / n
		imp -= p * p
	}
	return imp
}

func giniImpurityLeft(left []float64, nl float64) float64 {
	return giniImpurity(left, nl)
}

func giniImpurityRight(total, left []float64, nr float64) float64 {
	if nr == 0 {
		return 0
	}
	imp := 1.0
	for c := range total {
		p := (total[c] - left[c]) / nr
		imp -= p * p
	}
	return imp
}

// PredictProba returns the class distribution for each row.
func (t *ClassificationTree) PredictProba(x [][]float64) ([][]float64, error) {
	if len(t.nodes) == 0 {
		return nil, ErrNotTrained
	}
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = append([]float64(nil), t.traverse(row).dist...)
	}
	return out, nil
}

func (t *ClassificationTree) traverse(row []float64) *node {
	cur := 0
	for {
		nd := &t.nodes[cur]
		if nd.feature < 0 {
			return nd
		}
		if row[nd.feature] <= nd.thresh {
			cur = nd.left
		} else {
			cur = nd.right
		}
	}
}

// NumNodes reports the tree size (useful in tests and benchmarks).
func (t *ClassificationTree) NumNodes() int { return len(t.nodes) }
