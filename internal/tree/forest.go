package tree

import (
	"fmt"
	"math"
	"math/rand"
)

// ForestConfig configures a random forest classifier.
type ForestConfig struct {
	NumTrees    int // default 100
	MaxDepth    int // default 16
	MinLeaf     int // default 1
	MaxFeatures int // default sqrt(d)
	Seed        int64
}

// RandomForest is a bagged ensemble of CART trees.
type RandomForest struct {
	trees      []*ClassificationTree
	numClasses int
}

// FitRandomForest trains the ensemble on bootstrap resamples.
func FitRandomForest(x [][]float64, y []int, numClasses int, cfg ForestConfig) (*RandomForest, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("tree: %d rows, %d labels", len(x), len(y))
	}
	if cfg.NumTrees == 0 {
		cfg.NumTrees = 100
	}
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = 16
	}
	if cfg.MinLeaf == 0 {
		cfg.MinLeaf = 1
	}
	d := len(x[0])
	if cfg.MaxFeatures == 0 {
		cfg.MaxFeatures = int(math.Sqrt(float64(d))) + 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	rf := &RandomForest{numClasses: numClasses}
	n := len(x)
	for t := 0; t < cfg.NumTrees; t++ {
		bx := make([][]float64, n)
		by := make([]int, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = x[j]
			by[i] = y[j]
		}
		tr, err := FitClassificationTree(bx, by, numClasses, ClassTreeConfig{
			MaxDepth:    cfg.MaxDepth,
			MinLeaf:     cfg.MinLeaf,
			MaxFeatures: cfg.MaxFeatures,
			Rng:         rand.New(rand.NewSource(rng.Int63())),
		})
		if err != nil {
			return nil, fmt.Errorf("tree %d: %w", t, err)
		}
		rf.trees = append(rf.trees, tr)
	}
	return rf, nil
}

// PredictProba averages the member trees' leaf distributions.
func (rf *RandomForest) PredictProba(x [][]float64) ([][]float64, error) {
	if len(rf.trees) == 0 {
		return nil, ErrNotTrained
	}
	out := make([][]float64, len(x))
	for i := range out {
		out[i] = make([]float64, rf.numClasses)
	}
	for _, t := range rf.trees {
		p, err := t.PredictProba(x)
		if err != nil {
			return nil, err
		}
		for i := range p {
			for c, v := range p[i] {
				out[i][c] += v
			}
		}
	}
	inv := 1 / float64(len(rf.trees))
	for i := range out {
		for c := range out[i] {
			out[i][c] *= inv
		}
	}
	return out, nil
}

// NumTrees reports the ensemble size.
func (rf *RandomForest) NumTrees() int { return len(rf.trees) }
