package tree

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gaussBlobs builds a simple k-class problem with well separated Gaussian
// clusters in d dimensions.
func gaussBlobs(n, d, k int, sep float64, rng *rand.Rand) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[c%d] += sep
		x[i] = row
		y[i] = c
	}
	return x, y
}

func accuracy(probs [][]float64, y []int) float64 {
	var correct int
	for i, p := range probs {
		best := 0
		for c, v := range p {
			if v > p[best] {
				best = c
			}
		}
		if best == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

func TestClassificationTreeSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := gaussBlobs(400, 5, 3, 6, rng)
	tr, err := FitClassificationTree(x, y, 3, ClassTreeConfig{Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := tr.PredictProba(x)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(probs, y); acc < 0.97 {
		t.Errorf("train accuracy = %v; want >= 0.97", acc)
	}
	if tr.NumNodes() == 0 {
		t.Error("tree has no nodes")
	}
}

func TestClassificationTreeGeneralizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := gaussBlobs(600, 4, 2, 5, rng)
	xTest, yTest := gaussBlobs(200, 4, 2, 5, rng)
	tr, err := FitClassificationTree(x, y, 2, ClassTreeConfig{MaxDepth: 6, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := tr.PredictProba(xTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(probs, yTest); acc < 0.9 {
		t.Errorf("test accuracy = %v; want >= 0.9", acc)
	}
}

func TestClassificationTreeErrors(t *testing.T) {
	if _, err := FitClassificationTree(nil, nil, 2, ClassTreeConfig{}); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := FitClassificationTree([][]float64{{1}}, []int{0}, 1, ClassTreeConfig{}); err == nil {
		t.Error("expected error for single class")
	}
	var empty ClassificationTree
	if _, err := empty.PredictProba([][]float64{{1}}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v; want ErrNotTrained", err)
	}
}

func TestTreeProbabilitiesSumToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x, y := gaussBlobs(100, 3, 3, 2, rng)
		tr, err := FitClassificationTree(x, y, 3, ClassTreeConfig{MaxDepth: 5, Rng: rng})
		if err != nil {
			return false
		}
		probs, err := tr.PredictProba(x[:20])
		if err != nil {
			return false
		}
		for _, p := range probs {
			var s float64
			for _, v := range p {
				if v < 0 {
					return false
				}
				s += v
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRandomForest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := gaussBlobs(500, 6, 4, 4, rng)
	xTest, yTest := gaussBlobs(200, 6, 4, 4, rng)
	rf, err := FitRandomForest(x, y, 4, ForestConfig{NumTrees: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rf.NumTrees() != 30 {
		t.Errorf("NumTrees = %d; want 30", rf.NumTrees())
	}
	probs, err := rf.PredictProba(xTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(probs, yTest); acc < 0.92 {
		t.Errorf("forest test accuracy = %v; want >= 0.92", acc)
	}
	// Probabilities normalized.
	for _, p := range probs[:5] {
		var s float64
		for _, v := range p {
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("probs sum to %v", s)
		}
	}
}

func TestRandomForestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := gaussBlobs(200, 4, 2, 4, rng)
	a, err := FitRandomForest(x, y, 2, ForestConfig{NumTrees: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitRandomForest(x, y, 2, ForestConfig{NumTrees: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := a.PredictProba(x[:10])
	pb, _ := b.PredictProba(x[:10])
	for i := range pa {
		for c := range pa[i] {
			if pa[i][c] != pb[i][c] {
				t.Fatal("same seed must produce identical forests")
			}
		}
	}
}

func TestRandomForestErrors(t *testing.T) {
	if _, err := FitRandomForest(nil, nil, 2, ForestConfig{}); err == nil {
		t.Error("expected error for empty data")
	}
	var rf RandomForest
	if _, err := rf.PredictProba([][]float64{{1}}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v; want ErrNotTrained", err)
	}
}

func TestGradientBoosting(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y := gaussBlobs(500, 6, 4, 4, rng)
	xTest, yTest := gaussBlobs(200, 6, 4, 4, rng)
	gb, err := FitGradientBoosting(x, y, 4, BoostConfig{Rounds: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if gb.NumRounds() != 30 {
		t.Errorf("NumRounds = %d; want 30", gb.NumRounds())
	}
	probs, err := gb.PredictProba(xTest)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(probs, yTest); acc < 0.92 {
		t.Errorf("boosting test accuracy = %v; want >= 0.92", acc)
	}
}

func TestGradientBoostingBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x, y := gaussBlobs(400, 4, 2, 4, rng)
	gb, err := FitGradientBoosting(x, y, 2, BoostConfig{Rounds: 20, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	probs, err := gb.PredictProba(x)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(probs, y); acc < 0.95 {
		t.Errorf("binary train accuracy = %v; want >= 0.95", acc)
	}
}

func TestGradientBoostingErrors(t *testing.T) {
	if _, err := FitGradientBoosting(nil, nil, 2, BoostConfig{}); err == nil {
		t.Error("expected error for empty data")
	}
	if _, err := FitGradientBoosting([][]float64{{1}}, []int{0}, 1, BoostConfig{}); err == nil {
		t.Error("expected error for single class")
	}
	var gb GradientBoosting
	if _, err := gb.PredictProba([][]float64{{1}}); !errors.Is(err, ErrNotTrained) {
		t.Errorf("err = %v; want ErrNotTrained", err)
	}
}

func TestGradientBoostingImprovesWithRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y := gaussBlobs(400, 5, 3, 2.5, rng)
	short, err := FitGradientBoosting(x, y, 3, BoostConfig{Rounds: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	long, err := FitGradientBoosting(x, y, 3, BoostConfig{Rounds: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := short.PredictProba(x)
	pl, _ := long.PredictProba(x)
	if accuracy(pl, y) <= accuracy(ps, y) {
		t.Errorf("more rounds should improve train accuracy: %v vs %v",
			accuracy(pl, y), accuracy(ps, y))
	}
}

// TestPermIntoMatchesPerm pins the scratch-filling permutation against
// rand.Perm: identical permutations AND identical rng stream position, so
// feature subsampling is unchanged by the builder's buffer reuse.
func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 5, 17, 64} {
		a := rand.New(rand.NewSource(int64(n) + 7))
		b := rand.New(rand.NewSource(int64(n) + 7))
		want := a.Perm(n)
		buf := make([]int, 0)
		got := permInto(b, n, buf)
		if len(got) != len(want) {
			t.Fatalf("n=%d: length %d, want %d", n, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: perm[%d] = %d, want %d", n, i, got[i], want[i])
			}
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: rng streams diverged after permutation", n)
		}
	}
}
