package tree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// BoostConfig configures gradient-boosted trees.
type BoostConfig struct {
	Rounds       int     // boosting rounds; default 60
	MaxDepth     int     // default 4
	LearningRate float64 // shrinkage; default 0.2
	Lambda       float64 // L2 leaf regularization; default 1
	Subsample    float64 // row subsampling per round; default 0.8
	ColSample    float64 // column subsampling per tree; default 0.5
	MinChildHess float64 // minimum hessian per child; default 1
	Seed         int64
}

func (c *BoostConfig) applyDefaults() {
	if c.Rounds == 0 {
		c.Rounds = 60
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 4
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.2
	}
	if c.Lambda == 0 {
		c.Lambda = 1
	}
	if c.Subsample == 0 {
		c.Subsample = 0.8
	}
	if c.ColSample == 0 {
		c.ColSample = 0.5
	}
	if c.MinChildHess == 0 {
		c.MinChildHess = 1
	}
}

// GradientBoosting is a second-order boosted-tree classifier with a softmax
// objective (one regression tree per class per round), in the style of
// XGBoost.
type GradientBoosting struct {
	trees      [][]*regressionTree // [round][class]
	lr         float64
	numClasses int
}

// FitGradientBoosting trains the boosted ensemble.
func FitGradientBoosting(x [][]float64, y []int, numClasses int, cfg BoostConfig) (*GradientBoosting, error) {
	if len(x) == 0 || len(x) != len(y) {
		return nil, fmt.Errorf("tree: %d rows, %d labels", len(x), len(y))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("tree: numClasses %d must be >= 2", numClasses)
	}
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	n := len(x)
	gb := &GradientBoosting{lr: cfg.LearningRate, numClasses: numClasses}
	// Raw scores per sample per class.
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = make([]float64, numClasses)
	}
	probs := make([]float64, numClasses)
	grads := make([][]float64, numClasses)
	hess := make([][]float64, numClasses)
	for c := range grads {
		grads[c] = make([]float64, n)
		hess[c] = make([]float64, n)
	}

	// Presort every feature once; each tree's split search scans these
	// orders with a node-membership filter instead of re-sorting per node.
	presorted := presortColumns(x)

	for round := 0; round < cfg.Rounds; round++ {
		// Softmax gradients/hessians.
		for i := 0; i < n; i++ {
			maxV := scores[i][0]
			for _, v := range scores[i][1:] {
				if v > maxV {
					maxV = v
				}
			}
			var sum float64
			for c := 0; c < numClasses; c++ {
				probs[c] = math.Exp(scores[i][c] - maxV)
				sum += probs[c]
			}
			for c := 0; c < numClasses; c++ {
				p := probs[c] / sum
				g := p
				if y[i] == c {
					g -= 1
				}
				grads[c][i] = g
				hess[c][i] = math.Max(p*(1-p), 1e-6)
			}
		}
		// Row subsample shared by the round.
		rows := subsampleRows(n, cfg.Subsample, rng)
		roundTrees := make([]*regressionTree, numClasses)
		for c := 0; c < numClasses; c++ {
			rt := fitRegressionTree(x, presorted, grads[c], hess[c], rows, regTreeConfig{
				maxDepth:     cfg.MaxDepth,
				lambda:       cfg.Lambda,
				colSample:    cfg.ColSample,
				minChildHess: cfg.MinChildHess,
				rng:          rand.New(rand.NewSource(rng.Int63())),
			})
			roundTrees[c] = rt
			for i := 0; i < n; i++ {
				scores[i][c] += cfg.LearningRate * rt.predict(x[i])
			}
		}
		gb.trees = append(gb.trees, roundTrees)
	}
	return gb, nil
}

func subsampleRows(n int, frac float64, rng *rand.Rand) []int {
	if frac >= 1 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	k := int(float64(n) * frac)
	if k < 1 {
		k = 1
	}
	return rng.Perm(n)[:k]
}

// PredictProba returns softmax probabilities of the boosted scores.
func (gb *GradientBoosting) PredictProba(x [][]float64) ([][]float64, error) {
	if len(gb.trees) == 0 {
		return nil, ErrNotTrained
	}
	out := make([][]float64, len(x))
	for i, row := range x {
		scores := make([]float64, gb.numClasses)
		for _, roundTrees := range gb.trees {
			for c, rt := range roundTrees {
				scores[c] += gb.lr * rt.predict(row)
			}
		}
		maxV := scores[0]
		for _, v := range scores[1:] {
			if v > maxV {
				maxV = v
			}
		}
		var sum float64
		p := make([]float64, gb.numClasses)
		for c, v := range scores {
			p[c] = math.Exp(v - maxV)
			sum += p[c]
		}
		for c := range p {
			p[c] /= sum
		}
		out[i] = p
	}
	return out, nil
}

// NumRounds reports the number of boosting rounds trained.
func (gb *GradientBoosting) NumRounds() int { return len(gb.trees) }

// regressionTree is a second-order regression tree on (grad, hess) pairs.
type regressionTree struct {
	nodes []node
}

type regTreeConfig struct {
	maxDepth     int
	lambda       float64
	colSample    float64
	minChildHess float64
	rng          *rand.Rand
}

// presortColumns returns, for each feature, the row indices ordered by that
// feature's value.
func presortColumns(x [][]float64) [][]int32 {
	n := len(x)
	d := len(x[0])
	out := make([][]int32, d)
	for f := 0; f < d; f++ {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		col := make([]float64, n)
		for i := range x {
			col[i] = x[i][f]
		}
		sort.Slice(idx, func(a, b int) bool { return col[idx[a]] < col[idx[b]] })
		out[f] = idx
	}
	return out
}

func fitRegressionTree(x [][]float64, presorted [][]int32, grad, hess []float64, rows []int, cfg regTreeConfig) *regressionTree {
	t := &regressionTree{}
	d := len(x[0])
	nCols := int(float64(d) * cfg.colSample)
	if nCols < 1 {
		nCols = 1
	}
	cols := cfg.rng.Perm(d)[:nCols]
	b := &regBuilder{
		x: x, presorted: presorted, grad: grad, hess: hess,
		cfg: cfg, cols: cols, tree: t,
		inNode: make([]bool, len(x)),
	}
	b.build(rows, 0)
	return t
}

type regBuilder struct {
	x          [][]float64
	presorted  [][]int32
	grad, hess []float64
	cfg        regTreeConfig
	cols       []int
	tree       *regressionTree
	inNode     []bool // scratch membership mask, maintained around build calls
}

func (b *regBuilder) build(idx []int, depth int) int {
	var sumG, sumH float64
	for _, i := range idx {
		sumG += b.grad[i]
		sumH += b.hess[i]
	}
	if depth >= b.cfg.maxDepth || len(idx) < 2 {
		return b.leaf(sumG, sumH)
	}
	feat, thresh, ok := b.bestSplit(idx, sumG, sumH)
	if !ok {
		return b.leaf(sumG, sumH)
	}
	var left, right []int
	for _, i := range idx {
		if b.x[i][feat] <= thresh {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return b.leaf(sumG, sumH)
	}
	me := len(b.tree.nodes)
	b.tree.nodes = append(b.tree.nodes, node{feature: feat, thresh: thresh})
	l := b.build(left, depth+1)
	r := b.build(right, depth+1)
	b.tree.nodes[me].left = l
	b.tree.nodes[me].right = r
	return me
}

func (b *regBuilder) leaf(sumG, sumH float64) int {
	v := -sumG / (sumH + b.cfg.lambda)
	b.tree.nodes = append(b.tree.nodes, node{feature: -1, value: v})
	return len(b.tree.nodes) - 1
}

// bestSplit maximizes the XGBoost structure gain, scanning each feature's
// globally presorted order filtered to this node's rows.
func (b *regBuilder) bestSplit(idx []int, sumG, sumH float64) (int, float64, bool) {
	lambda := b.cfg.lambda
	parent := sumG * sumG / (sumH + lambda)
	bestGain := 1e-9
	bestFeat, bestThresh := -1, 0.0
	nNode := len(idx)

	for _, i := range idx {
		b.inNode[i] = true
	}
	defer func() {
		for _, i := range idx {
			b.inNode[i] = false
		}
	}()

	for _, f := range b.cols {
		order := b.presorted[f]
		var gl, hl float64
		seen := 0
		prev := -1 // previous in-node row in sorted order
		for _, ri32 := range order {
			i := int(ri32)
			if !b.inNode[i] {
				continue
			}
			if prev >= 0 {
				// Candidate cut between prev and i.
				v, next := b.x[prev][f], b.x[i][f]
				if v != next && hl >= b.cfg.minChildHess && sumH-hl >= b.cfg.minChildHess {
					gr := sumG - gl
					hr := sumH - hl
					gain := gl*gl/(hl+lambda) + gr*gr/(hr+lambda) - parent
					if gain > bestGain {
						bestGain = gain
						bestFeat = f
						bestThresh = (v + next) / 2
					}
				}
			}
			gl += b.grad[i]
			hl += b.hess[i]
			prev = i
			seen++
			if seen == nNode {
				break
			}
		}
	}
	return bestFeat, bestThresh, bestFeat >= 0
}

func (t *regressionTree) predict(row []float64) float64 {
	cur := 0
	for {
		nd := &t.nodes[cur]
		if nd.feature < 0 {
			return nd.value
		}
		if row[nd.feature] <= nd.thresh {
			cur = nd.left
		} else {
			cur = nd.right
		}
	}
}
