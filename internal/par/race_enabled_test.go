//go:build race

package par

// raceEnabled lets allocation-budget tests skip themselves: allocation
// accounting is not meaningful under the race detector's instrumentation.
const raceEnabled = true
