// Package par provides the repo's bounded parallel-execution primitives:
// a work-stealing parallel for-loop, an error-collecting variant with
// deterministic first-error semantics, and a contiguous block splitter for
// row-blocked matrix kernels.
//
// The package enforces one contract everywhere it is used: a resolved
// worker count of 1 runs the loop body sequentially in the calling
// goroutine — no goroutines, no channels, no scheduling — so callers can
// promise an "exact sequential path" when Workers=1. Higher worker counts
// may reorder execution but never reorder results: callers index into
// pre-sized output slots, and every numeric kernel built on this package
// preserves its per-element reduction order (see DESIGN.md, "Determinism
// contract").
package par

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Workers configuration value: n >= 1 is used as-is;
// zero and negative values mean "all cores", runtime.GOMAXPROCS(0).
func Resolve(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ParallelWorkThreshold is the approximate per-call operation count below
// which spawning goroutines costs more than it saves (goroutine startup is
// ~µs each). Numeric kernels route their worker counts through WorkersFor
// so small inputs always take the exact sequential path.
const ParallelWorkThreshold = 1 << 15

// WorkersFor resolves a Workers configuration value (Resolve semantics) and
// then degrades it to 1 when the kernel's total operation count is below
// ParallelWorkThreshold. This is the one place the "too small to
// parallelize" decision lives; TestWorkersForThreshold pins the boundary.
func WorkersFor(workers int, work int64) int {
	workers = Resolve(workers)
	if workers > 1 && work < ParallelWorkThreshold {
		return 1
	}
	return workers
}

// TaskPanic wraps a panic raised inside a parallel task so the caller can
// tell which index failed. When several tasks panic concurrently, the one
// with the smallest index is kept.
type TaskPanic struct {
	Index int
	Value any
}

// String implements fmt.Stringer for panic output readability.
func (p TaskPanic) String() string {
	return fmt.Sprintf("par: task %d panicked: %v", p.Index, p.Value)
}

// ForEach runs fn(i) for every i in [0, n) using up to workers goroutines
// (workers <= 0 means GOMAXPROCS). With a resolved worker count of 1 the
// calls happen in index order in the calling goroutine — and, unlike the
// error-collecting variant, without wrapping fn, so a stable fn value makes
// the sequential path allocation-free (the gradient-shard training loops
// rely on this for their steady-state budgets). Task panics from worker
// goroutines are re-raised in the caller as a TaskPanic.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if w := Resolve(workers); w == 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	_ = ForEachErr(workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr is ForEach for fallible tasks. After the first task error the
// pool stops claiming new indices (cancellation); every worker still
// finishes the index it already claimed. Among the tasks that ran, the
// error with the smallest index is returned — since index 0..workers-1 are
// always claimed before any cancellation can be observed, an error at
// index 0 is reported exactly as the sequential loop would report it. With
// a resolved worker count of 1 this is precisely the sequential
// loop-and-return-early semantics.
func ForEachErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64 // next index to claim
		stop atomic.Bool  // set after any error or panic

		mu       sync.Mutex
		errIdx   = n
		firstErr error
		panIdx   = n
		panVal   any
		panicked bool
	)
	runOne := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				stop.Store(true)
				mu.Lock()
				if !panicked || i < panIdx {
					panicked, panIdx, panVal = true, i, r
				}
				mu.Unlock()
			}
		}()
		if err := fn(i); err != nil {
			stop.Store(true)
			mu.Lock()
			if i < errIdx {
				errIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				// Claim before checking stop: each worker's first claim
				// always runs, so indices 0..workers-1 are never skipped
				// and the lowest-index error is reported deterministically.
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				runOne(i)
				if stop.Load() {
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(TaskPanic{Index: panIdx, Value: panVal})
	}
	return firstErr
}

// ShardBounds computes the fixed minibatch shard boundaries used by the
// data-parallel training loops: len(result)-1 contiguous shards over [0, n),
// shard s covering [result[s], result[s+1]).
//
// The shard count is a pure function of the CONFIGURED shard count and the
// input size — never of the worker pool, GOMAXPROCS, or the WorkersFor
// small-input threshold — so the shard shape (and therefore every gradient
// bit) is identical no matter how many workers execute the shards. The
// effective count is min(shards, n/minRows) clamped to at least 1: minRows
// keeps every shard large enough for per-shard batch statistics (BatchNorm
// needs >= 2 rows to stay on its training path). Boundaries follow the same
// s*n/eff rule as Blocks, reusing buf when it has capacity.
func ShardBounds(buf []int, n, shards, minRows int) []int {
	eff := shards
	if minRows > 0 && eff > n/minRows {
		eff = n / minRows
	}
	if eff < 1 {
		eff = 1
	}
	if cap(buf) < eff+1 {
		buf = make([]int, eff+1)
	}
	buf = buf[:eff+1]
	for s := 0; s <= eff; s++ {
		buf[s] = s * n / eff
	}
	return buf
}

// TreeReduce merges n slots pairwise with a fixed-shape binary tree,
// leaving the combined result in slot 0. At stride d (1, 2, 4, ...) every
// slot i with i%(2d) == 0 and i+d < n absorbs slot i+d via combine(i, i+d).
// The combine ORDER depends only on n: levels run strictly one after
// another (each level's ForEach is a barrier), and within a level the pairs
// touch disjoint slots, so elementwise combines produce bit-identical
// results for every worker count — the gradient-merge half of the training
// determinism contract (DESIGN.md §5). With a resolved worker count of 1
// the combines run sequentially in index order with no goroutines and no
// per-call allocations (given a stable combine value).
func TreeReduce(workers, n int, combine func(dst, src int)) {
	workers = Resolve(workers)
	for stride := 1; stride < n; stride *= 2 {
		step := 2 * stride
		pairs := (n - stride + step - 1) / step
		if workers == 1 || pairs == 1 {
			for p := 0; p < pairs; p++ {
				combine(p*step, p*step+stride)
			}
			continue
		}
		d := stride
		ForEach(workers, pairs, func(p int) { combine(p*2*d, p*2*d+d) })
	}
}

// Blocks partitions [0, n) into at most workers near-equal contiguous
// ranges and runs fn(lo, hi) for each, in parallel. With a resolved worker
// count of 1 it makes the single call fn(0, n) in the calling goroutine.
// Useful for row-blocked kernels where each block owns a disjoint output
// range.
func Blocks(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	ForEach(workers, workers, func(b int) {
		lo := b * n / workers
		hi := (b + 1) * n / workers
		if lo < hi {
			fn(lo, hi)
		}
	})
}
