package par

import (
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// TestShardBoundsWorkerIndependence pins the property the training
// determinism contract rests on: shard boundaries are a pure function of
// (n, shards, minRows). Neither the worker pool size nor GOMAXPROCS nor the
// WorkersFor small-input threshold may influence them — WorkersFor degrades
// POOL sizes on small inputs, and that degradation must never leak into the
// shard SHAPE.
func TestShardBoundsWorkerIndependence(t *testing.T) {
	cases := []struct{ n, shards, minRows int }{
		{64, 8, 2}, {64, 7, 2}, {5, 8, 2}, {3, 8, 2}, {1, 8, 2},
		{2, 8, 2}, {100, 3, 2}, {17, 4, 2}, {16, 16, 2}, {33, 8, 0},
	}
	for _, tc := range cases {
		want := ShardBounds(nil, tc.n, tc.shards, tc.minRows)
		// The boundaries must be identical under every simulated pool size,
		// including pools WorkersFor would have degraded to 1.
		for _, workers := range []int{1, 2, 3, 7, 64} {
			_ = WorkersFor(workers, int64(tc.n)) // tiny work: degrades to 1
			got := ShardBounds(nil, tc.n, tc.shards, tc.minRows)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d shards=%d: bounds changed across worker counts: %v vs %v",
					tc.n, tc.shards, got, want)
			}
		}
		prev := runtime.GOMAXPROCS(2)
		got := ShardBounds(nil, tc.n, tc.shards, tc.minRows)
		runtime.GOMAXPROCS(prev)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d shards=%d: bounds changed with GOMAXPROCS", tc.n, tc.shards)
		}
	}
}

// TestShardBoundsShape checks the boundary rule and the minRows clamp.
func TestShardBoundsShape(t *testing.T) {
	b := ShardBounds(nil, 64, 8, 2)
	if len(b) != 9 || b[0] != 0 || b[8] != 64 {
		t.Fatalf("bounds = %v", b)
	}
	for s := 0; s < 8; s++ {
		if b[s+1]-b[s] != 8 {
			t.Fatalf("uneven shard %d in %v", s, b)
		}
	}
	// 5 rows with minRows=2 supports only 2 shards.
	b = ShardBounds(b, 5, 8, 2)
	if want := []int{0, 2, 5}; !reflect.DeepEqual(b, want) {
		t.Fatalf("bounds = %v, want %v", b, want)
	}
	// Never fewer than one shard.
	b = ShardBounds(b, 1, 8, 2)
	if want := []int{0, 1}; !reflect.DeepEqual(b, want) {
		t.Fatalf("bounds = %v, want %v", b, want)
	}
	// Buffer reuse: no regrow when capacity suffices.
	big := make([]int, 0, 32)
	out := ShardBounds(big, 10, 4, 2)
	if &out[:1][0] != &big[:1][0] {
		t.Fatal("ShardBounds reallocated despite sufficient capacity")
	}
}

// TestTreeReduceShape pins the fixed combine schedule: the (dst, src) pairs
// and their level order depend only on the slot count.
func TestTreeReduceShape(t *testing.T) {
	var got [][2]int
	TreeReduce(1, 5, func(dst, src int) { got = append(got, [2]int{dst, src}) })
	want := [][2]int{{0, 1}, {2, 3}, {0, 2}, {0, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("combine schedule %v, want %v", got, want)
	}
	got = nil
	TreeReduce(1, 1, func(dst, src int) { got = append(got, [2]int{dst, src}) })
	if len(got) != 0 {
		t.Fatalf("single slot should not combine, got %v", got)
	}
}

// TestTreeReduceWorkerInvariance runs elementwise vector merges at several
// worker counts and slot counts; every run must produce bit-identical
// results in slot 0 and an identical multiset of combines.
func TestTreeReduceWorkerInvariance(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16, 33} {
		var want []float64
		for _, workers := range []int{1, 2, 3, 8} {
			slots := make([][]float64, n)
			for s := range slots {
				slots[s] = make([]float64, 17)
				for j := range slots[s] {
					slots[s][j] = float64(s*31+j) * 1.0000001
				}
			}
			var mu sync.Mutex
			seen := make(map[[2]int]bool)
			TreeReduce(workers, n, func(dst, src int) {
				mu.Lock()
				seen[[2]int{dst, src}] = true
				mu.Unlock()
				for j := range slots[dst] {
					slots[dst][j] += slots[src][j]
				}
			})
			if len(seen) != n-1 {
				t.Fatalf("n=%d workers=%d: %d combines, want %d", n, workers, len(seen), n-1)
			}
			if workers == 1 {
				want = append([]float64(nil), slots[0]...)
				continue
			}
			if !reflect.DeepEqual(slots[0], want) {
				t.Fatalf("n=%d workers=%d: merged result differs from workers=1", n, workers)
			}
		}
	}
}

// TestTreeReduceSequentialAllocs pins the Workers=1 fast path: with a
// stable combine value, reducing allocates nothing — the property the
// per-epoch allocation budgets of the sharded trainers depend on.
func TestTreeReduceSequentialAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	sink := 0
	combine := func(dst, src int) { sink += dst + src }
	if avg := testing.AllocsPerRun(100, func() { TreeReduce(1, 8, combine) }); avg > 0 {
		t.Errorf("sequential TreeReduce allocates %.2f/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { ForEach(1, 8, func(int) {}) }); avg > 0.5 {
		t.Errorf("sequential ForEach allocates %.2f/op", avg)
	}
}
