package par

import "testing"

// TestWorkersForThreshold pins the small-input degradation boundary: work
// below ParallelWorkThreshold always takes the exact sequential path, work
// at or above it keeps the resolved worker count.
func TestWorkersForThreshold(t *testing.T) {
	if got := WorkersFor(8, ParallelWorkThreshold-1); got != 1 {
		t.Errorf("WorkersFor(8, threshold-1) = %d, want 1", got)
	}
	if got := WorkersFor(8, ParallelWorkThreshold); got != 8 {
		t.Errorf("WorkersFor(8, threshold) = %d, want 8", got)
	}
	if got := WorkersFor(1, 1<<40); got != 1 {
		t.Errorf("WorkersFor(1, huge) = %d, want 1", got)
	}
	if got := WorkersFor(2, 0); got != 1 {
		t.Errorf("WorkersFor(2, 0) = %d, want 1", got)
	}
	if got, want := WorkersFor(0, 1<<40), Resolve(0); got != want {
		t.Errorf("WorkersFor(0, huge) = %d, want Resolve(0) = %d", got, want)
	}
	if got := WorkersFor(0, 1); got != 1 {
		t.Errorf("WorkersFor(0, tiny) = %d, want 1", got)
	}
}
