package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Errorf("Resolve(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Resolve(0); got != want {
		t.Errorf("Resolve(0) = %d; want GOMAXPROCS %d", got, want)
	}
	if got := Resolve(-5); got != want {
		t.Errorf("Resolve(-5) = %d; want GOMAXPROCS %d", got, want)
	}
}

func TestForEachSequentialOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d tasks; want 5", len(order))
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	const n = 2000
	hits := make([]atomic.Int32, n)
	ForEach(8, n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times; want exactly once", i, got)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	ran := false
	ForEach(4, 0, func(int) { ran = true })
	ForEach(4, -3, func(int) { ran = true })
	if ran {
		t.Error("fn ran for n <= 0")
	}
}

func TestForEachErrSequentialStopsEarly(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	err := ForEachErr(1, 10, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if len(ran) != 4 {
		t.Fatalf("ran %v; want exactly [0 1 2 3]", ran)
	}
}

func TestForEachErrLowestIndexWins(t *testing.T) {
	// Every task fails with a distinct error. Index 0 is always claimed by
	// some worker's first claim, so the reported error must be task 0's.
	err := ForEachErr(4, 100, func(i int) error {
		return fmt.Errorf("task %d", i)
	})
	if err == nil || err.Error() != "task 0" {
		t.Fatalf("err = %v; want task 0", err)
	}
}

func TestForEachErrCancellation(t *testing.T) {
	// After the early error, the pool must stop claiming new work: with
	// n >> workers, far fewer than n tasks should run.
	var ran atomic.Int64
	_ = ForEachErr(2, 1_000_000, func(i int) error {
		ran.Add(1)
		return errors.New("stop")
	})
	if got := ran.Load(); got > 100 {
		t.Errorf("ran %d tasks after first error; cancellation not effective", got)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		tp, ok := r.(TaskPanic)
		if !ok {
			t.Fatalf("recovered %#v; want TaskPanic", r)
		}
		if tp.Index != 2 || tp.Value != "kaboom" {
			t.Errorf("TaskPanic = %+v; want index 2 value kaboom", tp)
		}
		if tp.String() == "" {
			t.Error("empty TaskPanic string")
		}
	}()
	ForEach(4, 8, func(i int) {
		if i == 2 {
			panic("kaboom")
		}
	})
	t.Fatal("ForEach returned despite task panic")
}

func TestForEachErrPanicBeatsError(t *testing.T) {
	// A panic must surface as a panic even when other tasks returned
	// errors. Index 0 is always executed, so panicking there guarantees
	// the panic is observed regardless of cancellation.
	defer func() {
		if _, ok := recover().(TaskPanic); !ok {
			t.Fatal("expected TaskPanic")
		}
	}()
	_ = ForEachErr(4, 8, func(i int) error {
		if i == 0 {
			panic("early panic")
		}
		return fmt.Errorf("err %d", i)
	})
	t.Fatal("no panic propagated")
}

func TestBlocksPartition(t *testing.T) {
	for _, tc := range []struct{ workers, n int }{
		{1, 10}, {3, 10}, {4, 4}, {8, 3}, {2, 1}, {5, 17},
	} {
		covered := make([]atomic.Int32, tc.n)
		Blocks(tc.workers, tc.n, func(lo, hi int) {
			if lo >= hi {
				t.Errorf("workers=%d n=%d: empty block [%d,%d)", tc.workers, tc.n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				covered[i].Add(1)
			}
		})
		for i := range covered {
			if got := covered[i].Load(); got != 1 {
				t.Fatalf("workers=%d n=%d: index %d covered %d times", tc.workers, tc.n, i, got)
			}
		}
	}
	called := false
	Blocks(4, 0, func(lo, hi int) { called = true })
	if called {
		t.Error("Blocks called fn for n = 0")
	}
}
