package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestGMMThreeClusters(t *testing.T) {
	// Table III's protocol clusters into three components; verify EM
	// recovers three well-separated blobs and their size ordering.
	rng := rand.New(rand.NewSource(9))
	var x [][]float64
	centers := [][]float64{{0, 0}, {10, 0}, {0, 10}}
	sizes := []int{300, 150, 80}
	for c, n := range sizes {
		for i := 0; i < n; i++ {
			x = append(x, []float64{
				centers[c][0] + 0.6*rng.NormFloat64(),
				centers[c][1] + 0.6*rng.NormFloat64(),
			})
		}
	}
	g, err := FitGMM(x, GMMConfig{K: 3, Seed: 4, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	means := g.Means()
	if len(means) != 3 {
		t.Fatalf("means = %d; want 3", len(means))
	}
	// Every true center must be near some fitted mean.
	for _, c := range centers {
		best := math.Inf(1)
		for _, m := range means {
			d := math.Hypot(m[0]-c[0], m[1]-c[1])
			if d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Errorf("no fitted mean near center %v (closest %.2f away)", c, best)
		}
	}
	// Weights should roughly reflect the 300/150/80 split.
	w := g.ComponentWeights()
	var maxW float64
	for _, v := range w {
		if v > maxW {
			maxW = v
		}
	}
	if math.Abs(maxW-300.0/530.0) > 0.05 {
		t.Errorf("largest weight = %.3f; want ~%.3f", maxW, 300.0/530.0)
	}
}

func TestGMMSingleComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := make([][]float64, 200)
	for i := range x {
		x[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	g, err := FitGMM(x, GMMConfig{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := g.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pred {
		if p != 0 {
			t.Fatal("single-component GMM must assign everything to 0")
		}
	}
	if w := g.ComponentWeights(); math.Abs(w[0]-1) > 1e-9 {
		t.Errorf("weight = %v; want 1", w[0])
	}
}

func TestGMMDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([][]float64, 150)
	for i := range x {
		x[i] = []float64{rng.NormFloat64() + float64(i%2)*6, rng.NormFloat64()}
	}
	a, err := FitGMM(x, GMMConfig{K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitGMM(x, GMMConfig{K: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pa, _ := a.Predict(x)
	pb, _ := b.Predict(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same seed must produce identical assignments")
		}
	}
}
