// Package stats provides descriptive statistics, distribution functions,
// feature scalers, and a Gaussian mixture model. These power the causal
// conditional-independence tests, the dataset generators, and the 5GIPC
// domain-splitting protocol from the paper.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no data.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs. It returns 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Correlation returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when either series has zero variance or lengths differ.
func Correlation(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of [0,1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// MinMax returns the minimum and maximum of xs.
func MinMax(xs []float64) (minV, maxV float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	minV, maxV = xs[0], xs[0]
	for _, v := range xs[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV, nil
}
