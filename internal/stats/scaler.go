package stats

import (
	"errors"
	"fmt"
)

// ErrNotFitted is returned when a scaler is used before Fit.
var ErrNotFitted = errors.New("stats: scaler not fitted")

// Scaler transforms feature matrices column-wise. Implementations are fitted
// on source-domain data and then applied to both domains, matching the
// paper's protocol.
type Scaler interface {
	// Fit learns the per-column statistics from rows of x.
	Fit(x [][]float64) error
	// Transform returns a scaled copy of x.
	Transform(x [][]float64) ([][]float64, error)
	// Inverse undoes Transform on a scaled copy of x.
	Inverse(x [][]float64) ([][]float64, error)
}

// MinMaxScaler maps each column to [lo, hi] (the paper uses [-1, 1]).
// Columns that are constant in the fitting data map to the midpoint.
type MinMaxScaler struct {
	Lo, Hi float64

	mins, maxs []float64
	fitted     bool
}

var _ Scaler = (*MinMaxScaler)(nil)

// NewMinMaxScaler returns a scaler targeting the range [lo, hi].
func NewMinMaxScaler(lo, hi float64) *MinMaxScaler {
	return &MinMaxScaler{Lo: lo, Hi: hi}
}

// Bounds returns copies of the fitted per-column minima and maxima (nil
// before Fit).
func (s *MinMaxScaler) Bounds() (mins, maxs []float64) {
	return append([]float64(nil), s.mins...), append([]float64(nil), s.maxs...)
}

// RestoreBounds re-creates a fitted scaler from serialized bounds.
func (s *MinMaxScaler) RestoreBounds(mins, maxs []float64) error {
	if len(mins) == 0 || len(mins) != len(maxs) {
		return fmt.Errorf("stats: bounds length mismatch %d vs %d", len(mins), len(maxs))
	}
	s.mins = append([]float64(nil), mins...)
	s.maxs = append([]float64(nil), maxs...)
	s.fitted = true
	return nil
}

// Fit learns per-column minima and maxima.
func (s *MinMaxScaler) Fit(x [][]float64) error {
	if len(x) == 0 || len(x[0]) == 0 {
		return ErrEmpty
	}
	d := len(x[0])
	s.mins = make([]float64, d)
	s.maxs = make([]float64, d)
	copy(s.mins, x[0])
	copy(s.maxs, x[0])
	for _, row := range x[1:] {
		if len(row) != d {
			return fmt.Errorf("stats: ragged row (len %d, want %d)", len(row), d)
		}
		for j, v := range row {
			if v < s.mins[j] {
				s.mins[j] = v
			}
			if v > s.maxs[j] {
				s.maxs[j] = v
			}
		}
	}
	s.fitted = true
	return nil
}

// Transform scales x into [Lo, Hi] using the fitted column ranges. Values
// outside the fitted range are clamped, which keeps drifted target features
// within the range the downstream networks were trained on.
func (s *MinMaxScaler) Transform(x [][]float64) ([][]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	out := make([][]float64, len(x))
	span := s.Hi - s.Lo
	mid := (s.Hi + s.Lo) / 2
	for i, row := range x {
		if len(row) != len(s.mins) {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(row), len(s.mins))
		}
		o := make([]float64, len(row))
		for j, v := range row {
			r := s.maxs[j] - s.mins[j]
			if r == 0 {
				o[j] = mid
				continue
			}
			t := s.Lo + span*(v-s.mins[j])/r
			if t < s.Lo {
				t = s.Lo
			}
			if t > s.Hi {
				t = s.Hi
			}
			o[j] = t
		}
		out[i] = o
	}
	return out, nil
}

// TransformRowInto scales one row into dst with the same arithmetic as
// Transform (clamping included), without allocating — the serving hot
// path. dst must have the fitted width; dst may alias row.
func (s *MinMaxScaler) TransformRowInto(dst, row []float64) error {
	if !s.fitted {
		return ErrNotFitted
	}
	if len(row) != len(s.mins) || len(dst) != len(s.mins) {
		return fmt.Errorf("stats: row has %d columns, dst %d, want %d", len(row), len(dst), len(s.mins))
	}
	span := s.Hi - s.Lo
	mid := (s.Hi + s.Lo) / 2
	for j, v := range row {
		r := s.maxs[j] - s.mins[j]
		if r == 0 {
			dst[j] = mid
			continue
		}
		t := s.Lo + span*(v-s.mins[j])/r
		if t < s.Lo {
			t = s.Lo
		}
		if t > s.Hi {
			t = s.Hi
		}
		dst[j] = t
	}
	return nil
}

// Inverse maps scaled values back to the original feature space. Constant
// columns map back to their fitted value.
func (s *MinMaxScaler) Inverse(x [][]float64) ([][]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	span := s.Hi - s.Lo
	out := make([][]float64, len(x))
	for i, row := range x {
		if len(row) != len(s.mins) {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(row), len(s.mins))
		}
		o := make([]float64, len(row))
		for j, v := range row {
			r := s.maxs[j] - s.mins[j]
			if r == 0 {
				o[j] = s.mins[j]
				continue
			}
			o[j] = s.mins[j] + (v-s.Lo)/span*r
		}
		out[i] = o
	}
	return out, nil
}

// StandardScaler maps each column to zero mean and unit variance.
// Zero-variance columns are passed through centered only.
type StandardScaler struct {
	means, stds []float64
	fitted      bool
}

var _ Scaler = (*StandardScaler)(nil)

// NewStandardScaler returns an unfitted z-score scaler.
func NewStandardScaler() *StandardScaler { return &StandardScaler{} }

// Fit learns per-column means and standard deviations.
func (s *StandardScaler) Fit(x [][]float64) error {
	if len(x) == 0 || len(x[0]) == 0 {
		return ErrEmpty
	}
	d := len(x[0])
	s.means = make([]float64, d)
	s.stds = make([]float64, d)
	col := make([]float64, len(x))
	for j := 0; j < d; j++ {
		for i, row := range x {
			if len(row) != d {
				return fmt.Errorf("stats: ragged row (len %d, want %d)", len(row), d)
			}
			col[i] = row[j]
		}
		s.means[j] = Mean(col)
		s.stds[j] = StdDev(col)
	}
	s.fitted = true
	return nil
}

// Transform z-scores x using the fitted statistics.
func (s *StandardScaler) Transform(x [][]float64) ([][]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	out := make([][]float64, len(x))
	for i, row := range x {
		if len(row) != len(s.means) {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(row), len(s.means))
		}
		o := make([]float64, len(row))
		for j, v := range row {
			if s.stds[j] == 0 {
				o[j] = v - s.means[j]
				continue
			}
			o[j] = (v - s.means[j]) / s.stds[j]
		}
		out[i] = o
	}
	return out, nil
}

// Inverse undoes the z-score transform.
func (s *StandardScaler) Inverse(x [][]float64) ([][]float64, error) {
	if !s.fitted {
		return nil, ErrNotFitted
	}
	out := make([][]float64, len(x))
	for i, row := range x {
		if len(row) != len(s.means) {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(row), len(s.means))
		}
		o := make([]float64, len(row))
		for j, v := range row {
			if s.stds[j] == 0 {
				o[j] = v + s.means[j]
				continue
			}
			o[j] = v*s.stds[j] + s.means[j]
		}
		out[i] = o
	}
	return out, nil
}
