package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// GMM is a diagonal-covariance Gaussian mixture model fitted with EM.
// The paper uses a GMM to split the 5GIPC dataset into source and target
// domains (two clusters in §IV-B, three clusters in §VI-F); diagonal
// covariances are sufficient for that clustering role and keep EM stable in
// the 100+-dimensional telemetry space.
type GMM struct {
	K int // number of components

	weights []float64   // [K]
	means   [][]float64 // [K][D]
	vars    [][]float64 // [K][D]
	fitted  bool
}

// ErrGMMNotFitted is returned when Predict is called before Fit.
var ErrGMMNotFitted = errors.New("stats: gmm not fitted")

// GMMConfig controls EM fitting.
type GMMConfig struct {
	K        int     // number of components (required, >= 1)
	MaxIter  int     // EM iterations (default 100)
	Tol      float64 // log-likelihood convergence tolerance (default 1e-6)
	Seed     int64   // RNG seed for k-means++ style initialization
	MinVar   float64 // variance floor (default 1e-6)
	Restarts int     // number of random restarts, best LL wins (default 1)
}

// FitGMM fits a diagonal GMM to the rows of x.
func FitGMM(x [][]float64, cfg GMMConfig) (*GMM, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("stats: gmm needs K >= 1, got %d", cfg.K)
	}
	if len(x) < cfg.K {
		return nil, fmt.Errorf("stats: gmm needs >= K samples (%d < %d)", len(x), cfg.K)
	}
	if cfg.MaxIter == 0 {
		cfg.MaxIter = 100
	}
	if cfg.Tol == 0 {
		cfg.Tol = 1e-6
	}
	if cfg.MinVar == 0 {
		cfg.MinVar = 1e-6
	}
	if cfg.Restarts == 0 {
		cfg.Restarts = 1
	}

	var best *GMM
	bestLL := math.Inf(-1)
	for r := 0; r < cfg.Restarts; r++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*7919))
		g, ll, err := fitGMMOnce(x, cfg, rng)
		if err != nil {
			return nil, err
		}
		if ll > bestLL {
			bestLL = ll
			best = g
		}
	}
	return best, nil
}

func fitGMMOnce(x [][]float64, cfg GMMConfig, rng *rand.Rand) (*GMM, float64, error) {
	n := len(x)
	d := len(x[0])
	g := &GMM{K: cfg.K}
	g.weights = make([]float64, cfg.K)
	g.means = make([][]float64, cfg.K)
	g.vars = make([][]float64, cfg.K)

	// Global variance for initialization.
	globalVar := make([]float64, d)
	col := make([]float64, n)
	for j := 0; j < d; j++ {
		for i := range x {
			col[i] = x[i][j]
		}
		globalVar[j] = math.Max(Variance(col), cfg.MinVar)
	}

	// k-means++ style mean seeding.
	centers := kmeansPPInit(x, cfg.K, rng)
	for k := 0; k < cfg.K; k++ {
		g.weights[k] = 1 / float64(cfg.K)
		g.means[k] = append([]float64(nil), centers[k]...)
		g.vars[k] = append([]float64(nil), globalVar...)
	}

	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, cfg.K)
	}
	prevLL := math.Inf(-1)
	var ll float64
	for iter := 0; iter < cfg.MaxIter; iter++ {
		// E-step: responsibilities via log-sum-exp.
		ll = 0
		for i, row := range x {
			maxLog := math.Inf(-1)
			for k := 0; k < cfg.K; k++ {
				lp := math.Log(g.weights[k]) + g.logGaussian(k, row)
				resp[i][k] = lp
				if lp > maxLog {
					maxLog = lp
				}
			}
			var sum float64
			for k := 0; k < cfg.K; k++ {
				resp[i][k] = math.Exp(resp[i][k] - maxLog)
				sum += resp[i][k]
			}
			for k := 0; k < cfg.K; k++ {
				resp[i][k] /= sum
			}
			ll += maxLog + math.Log(sum)
		}
		// M-step.
		for k := 0; k < cfg.K; k++ {
			var nk float64
			for i := 0; i < n; i++ {
				nk += resp[i][k]
			}
			if nk < 1e-10 {
				// Dead component: re-seed at a random point.
				g.means[k] = append([]float64(nil), x[rng.Intn(n)]...)
				g.vars[k] = append([]float64(nil), globalVar...)
				g.weights[k] = 1e-6
				continue
			}
			g.weights[k] = nk / float64(n)
			mean := make([]float64, d)
			for i, row := range x {
				w := resp[i][k]
				for j, v := range row {
					mean[j] += w * v
				}
			}
			for j := range mean {
				mean[j] /= nk
			}
			g.means[k] = mean
			vr := make([]float64, d)
			for i, row := range x {
				w := resp[i][k]
				for j, v := range row {
					dv := v - mean[j]
					vr[j] += w * dv * dv
				}
			}
			for j := range vr {
				vr[j] = math.Max(vr[j]/nk, cfg.MinVar)
			}
			g.vars[k] = vr
		}
		// Renormalize weights (dead-component handling can unbalance them).
		var wsum float64
		for _, w := range g.weights {
			wsum += w
		}
		for k := range g.weights {
			g.weights[k] /= wsum
		}
		if math.Abs(ll-prevLL) < cfg.Tol*(1+math.Abs(ll)) {
			break
		}
		prevLL = ll
	}
	g.fitted = true
	return g, ll, nil
}

func kmeansPPInit(x [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(x)
	centers := make([][]float64, 0, k)
	centers = append(centers, x[rng.Intn(n)])
	dists := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, row := range x {
			best := math.Inf(1)
			for _, c := range centers {
				d := sqDist(row, c)
				if d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			centers = append(centers, x[rng.Intn(n)])
			continue
		}
		target := rng.Float64() * total
		var cum float64
		chosen := n - 1
		for i, d := range dists {
			cum += d
			if cum >= target {
				chosen = i
				break
			}
		}
		centers = append(centers, x[chosen])
	}
	return centers
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func (g *GMM) logGaussian(k int, x []float64) float64 {
	mean := g.means[k]
	vr := g.vars[k]
	lp := -0.5 * float64(len(x)) * math.Log(2*math.Pi)
	for j, v := range x {
		d := v - mean[j]
		lp -= 0.5 * (math.Log(vr[j]) + d*d/vr[j])
	}
	return lp
}

// Predict returns the most likely component index for each row of x.
func (g *GMM) Predict(x [][]float64) ([]int, error) {
	if !g.fitted {
		return nil, ErrGMMNotFitted
	}
	out := make([]int, len(x))
	for i, row := range x {
		best := math.Inf(-1)
		arg := 0
		for k := 0; k < g.K; k++ {
			lp := math.Log(g.weights[k]) + g.logGaussian(k, row)
			if lp > best {
				best = lp
				arg = k
			}
		}
		out[i] = arg
	}
	return out, nil
}

// Means returns a copy of the component means.
func (g *GMM) Means() [][]float64 {
	out := make([][]float64, g.K)
	for k := range out {
		out[k] = append([]float64(nil), g.means[k]...)
	}
	return out
}

// ComponentWeights returns a copy of the mixture weights.
func (g *GMM) ComponentWeights() []float64 {
	return append([]float64(nil), g.weights...)
}
