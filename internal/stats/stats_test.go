package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVarianceStdDev(t *testing.T) {
	tests := []struct {
		name           string
		xs             []float64
		mean, variance float64
	}{
		{name: "empty", xs: nil, mean: 0, variance: 0},
		{name: "single", xs: []float64{5}, mean: 5, variance: 0},
		{name: "simple", xs: []float64{1, 2, 3, 4}, mean: 2.5, variance: 5.0 / 3.0},
		{name: "constant", xs: []float64{7, 7, 7}, mean: 7, variance: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); math.Abs(got-tt.mean) > 1e-12 {
				t.Errorf("Mean = %v; want %v", got, tt.mean)
			}
			if got := Variance(tt.xs); math.Abs(got-tt.variance) > 1e-12 {
				t.Errorf("Variance = %v; want %v", got, tt.variance)
			}
			if got := StdDev(tt.xs); math.Abs(got-math.Sqrt(tt.variance)) > 1e-12 {
				t.Errorf("StdDev = %v; want %v", got, math.Sqrt(tt.variance))
			}
		})
	}
}

func TestCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Correlation(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Correlation(x, 2x) = %v; want 1", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(x, neg); math.Abs(got+1) > 1e-12 {
		t.Errorf("Correlation(x, -2x) = %v; want -1", got)
	}
	if got := Correlation(x, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Errorf("Correlation with constant = %v; want 0", got)
	}
	if got := Correlation(x, []float64{1}); got != 0 {
		t.Errorf("Correlation with mismatched length = %v; want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	q, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 2.5 {
		t.Errorf("median = %v; want 2.5", q)
	}
	if q, _ := Quantile(xs, 0); q != 1 {
		t.Errorf("q0 = %v; want 1", q)
	}
	if q, _ := Quantile(xs, 1); q != 4 {
		t.Errorf("q1 = %v; want 4", q)
	}
	if _, err := Quantile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v; want ErrEmpty", err)
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("expected error for q>1")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil {
		t.Fatal(err)
	}
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v,%v; want -1,7", lo, hi)
	}
	if _, _, err := MinMax(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty err = %v; want ErrEmpty", err)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	tests := []struct {
		z, want float64
	}{
		{0, 0.5},
		{1.959963984540054, 0.975},
		{-1.959963984540054, 0.025},
		{1, 0.8413447460685429},
	}
	for _, tt := range tests {
		if got := NormalCDF(tt.z); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("NormalCDF(%v) = %v; want %v", tt.z, got, tt.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); math.Abs(got-p) > 1e-8 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile at 0/1 should be infinite")
	}
}

func TestChiSquareSF(t *testing.T) {
	// Known value: P(X > 3.841) for df=1 is 0.05.
	if got := ChiSquareSF(3.841458820694124, 1); math.Abs(got-0.05) > 1e-6 {
		t.Errorf("ChiSquareSF(3.84,1) = %v; want 0.05", got)
	}
	// df=2 has SF(x) = exp(-x/2).
	for _, x := range []float64{0.5, 1, 2, 5, 10} {
		if got, want := ChiSquareSF(x, 2), math.Exp(-x/2); math.Abs(got-want) > 1e-10 {
			t.Errorf("ChiSquareSF(%v,2) = %v; want %v", x, got, want)
		}
	}
	if got := ChiSquareSF(-1, 3); got != 1 {
		t.Errorf("ChiSquareSF(-1,3) = %v; want 1", got)
	}
}

func TestFisherZPValue(t *testing.T) {
	// Strong correlation with many samples: tiny p-value.
	if p := FisherZPValue(0.9, 200, 0); p > 1e-10 {
		t.Errorf("p-value for r=0.9, n=200 = %v; want ~0", p)
	}
	// Zero correlation: p-value 1.
	if p := FisherZPValue(0, 200, 0); p != 1 {
		t.Errorf("p-value for r=0 = %v; want 1", p)
	}
	// Insufficient samples: cannot reject.
	if p := FisherZPValue(0.99, 4, 2); p != 1 {
		t.Errorf("p-value with df<=0 = %v; want 1", p)
	}
	// Monotone in |r|.
	if FisherZPValue(0.5, 50, 0) >= FisherZPValue(0.3, 50, 0) {
		t.Error("p-value should decrease with |r|")
	}
}

func TestMinMaxScaler(t *testing.T) {
	s := NewMinMaxScaler(-1, 1)
	x := [][]float64{{0, 10}, {5, 20}, {10, 30}}
	if err := s.Fit(x); err != nil {
		t.Fatal(err)
	}
	got, err := s.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{-1, -1}, {0, 0}, {1, 1}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(got[i][j]-want[i][j]) > 1e-12 {
				t.Errorf("Transform[%d][%d] = %v; want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
	// Out-of-range values clamp.
	clamped, err := s.Transform([][]float64{{-5, 100}})
	if err != nil {
		t.Fatal(err)
	}
	if clamped[0][0] != -1 || clamped[0][1] != 1 {
		t.Errorf("clamping failed: %v", clamped[0])
	}
	// Inverse round-trips in-range data.
	inv, err := s.Inverse(got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		for j := range x[i] {
			if math.Abs(inv[i][j]-x[i][j]) > 1e-9 {
				t.Errorf("Inverse[%d][%d] = %v; want %v", i, j, inv[i][j], x[i][j])
			}
		}
	}
}

func TestMinMaxScalerConstantColumn(t *testing.T) {
	s := NewMinMaxScaler(-1, 1)
	x := [][]float64{{5, 1}, {5, 2}}
	if err := s.Fit(x); err != nil {
		t.Fatal(err)
	}
	got, err := s.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 0 || got[1][0] != 0 {
		t.Errorf("constant column should map to midpoint 0, got %v, %v", got[0][0], got[1][0])
	}
}

func TestScalerNotFitted(t *testing.T) {
	var s MinMaxScaler
	if _, err := s.Transform([][]float64{{1}}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v; want ErrNotFitted", err)
	}
	var z StandardScaler
	if _, err := z.Transform([][]float64{{1}}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v; want ErrNotFitted", err)
	}
}

func TestStandardScaler(t *testing.T) {
	s := NewStandardScaler()
	x := [][]float64{{1, 100}, {2, 200}, {3, 300}, {4, 400}}
	if err := s.Fit(x); err != nil {
		t.Fatal(err)
	}
	got, err := s.Transform(x)
	if err != nil {
		t.Fatal(err)
	}
	// Each column should have ~0 mean, ~1 std.
	for j := 0; j < 2; j++ {
		col := make([]float64, len(got))
		for i := range got {
			col[i] = got[i][j]
		}
		if m := Mean(col); math.Abs(m) > 1e-12 {
			t.Errorf("col %d mean = %v; want 0", j, m)
		}
		if sd := StdDev(col); math.Abs(sd-1) > 1e-12 {
			t.Errorf("col %d std = %v; want 1", j, sd)
		}
	}
	inv, err := s.Inverse(got)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		for j := range x[i] {
			if math.Abs(inv[i][j]-x[i][j]) > 1e-9 {
				t.Errorf("Inverse[%d][%d] = %v; want %v", i, j, inv[i][j], x[i][j])
			}
		}
	}
}

func TestGMMTwoWellSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var x [][]float64
	labels := make([]int, 0, 300)
	for i := 0; i < 200; i++ {
		x = append(x, []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
		labels = append(labels, 0)
	}
	for i := 0; i < 100; i++ {
		x = append(x, []float64{8 + rng.NormFloat64()*0.5, 8 + rng.NormFloat64()*0.5})
		labels = append(labels, 1)
	}
	g, err := FitGMM(x, GMMConfig{K: 2, Seed: 1, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred, err := g.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster indices are arbitrary; check agreement up to relabeling.
	var agree, disagree int
	for i := range pred {
		if pred[i] == labels[i] {
			agree++
		} else {
			disagree++
		}
	}
	acc := math.Max(float64(agree), float64(disagree)) / float64(len(pred))
	if acc < 0.99 {
		t.Errorf("GMM clustering accuracy = %v; want >= 0.99", acc)
	}
	// The larger cluster should have ~2/3 weight.
	w := g.ComponentWeights()
	if math.Abs(math.Max(w[0], w[1])-2.0/3.0) > 0.05 {
		t.Errorf("weights = %v; want approx [2/3, 1/3]", w)
	}
}

func TestGMMErrors(t *testing.T) {
	if _, err := FitGMM([][]float64{{1}}, GMMConfig{K: 0}); err == nil {
		t.Error("expected error for K=0")
	}
	if _, err := FitGMM([][]float64{{1}}, GMMConfig{K: 5}); err == nil {
		t.Error("expected error for n < K")
	}
	var g GMM
	if _, err := g.Predict([][]float64{{1}}); !errors.Is(err, ErrGMMNotFitted) {
		t.Errorf("err = %v; want ErrGMMNotFitted", err)
	}
}

// Property: min-max transform output always lies within [Lo, Hi].
func TestMinMaxScalerRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fit := randRows(rng, 20, 3)
		apply := randRows(rng, 20, 3)
		s := NewMinMaxScaler(-1, 1)
		if err := s.Fit(fit); err != nil {
			return false
		}
		out, err := s.Transform(apply)
		if err != nil {
			return false
		}
		for _, row := range out {
			for _, v := range row {
				if v < -1-1e-12 || v > 1+1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Fisher-z p-values lie in [0, 1].
func TestFisherZPValueRangeProperty(t *testing.T) {
	f := func(r float64, n int) bool {
		r = math.Mod(r, 1) // keep |r| < 1
		if n < 0 {
			n = -n
		}
		n = n%1000 + 1
		p := FisherZPValue(r, n, 0)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func randRows(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64() * 10
		}
		out[i] = row
	}
	return out
}
