package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netdrift/internal/fault"
	"netdrift/internal/obs"
)

// newCodecServer spins up a server over fixture bundle A for wire tests.
func newCodecServer(t *testing.T, o *obs.Observer, opts Options) (*httptest.Server, *Registry, *Coalescer) {
	t.Helper()
	a, _, _ := fixtures(t)
	reg := NewRegistry(o)
	reg.Swap(a)
	if opts.MaxBatch == 0 {
		opts.MaxBatch = 8
	}
	co := NewCoalescer(reg, opts)
	ts := httptest.NewServer(NewServer(reg, co, o))
	t.Cleanup(func() { ts.Close(); co.Close() })
	return ts, reg, co
}

// postBinary sends a binary adapt request and returns the raw response.
func postBinary(t *testing.T, url string, payload []byte, accept string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url+"/v1/adapt", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeRows)
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return res, body
}

// TestRowsWireRoundTrip pins the codec at the byte level: encode → decode
// recovers every field bit for bit, for requests and responses, with and
// without predictions.
func TestRowsWireRoundTrip(t *testing.T) {
	rows := [][]float64{{1.5, -2.25, 1e-300, 42}, {0, -0, 3.14159, -1e308}}
	payload := AppendRowsRequest(nil, rows, 77, true)
	var buf RowBuf
	got, seed, predict, err := DecodeRowsRequest(payload, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 77 || !predict || !sameRows(got, rows) {
		t.Fatalf("request round trip: seed=%d predict=%v sameRows=%v", seed, predict, sameRows(got, rows))
	}

	res := Result{
		BundleID:    "bundle-x",
		Rows:        rows,
		Predictions: [][]float64{{0.25, 0.75}, {0.5, 0.5}},
		Degraded:    true,
	}
	out, err := DecodeRowsResponse(AppendRowsResponse(nil, &res))
	if err != nil {
		t.Fatal(err)
	}
	if out.BundleID != res.BundleID || !out.Degraded ||
		!sameRows(out.Rows, res.Rows) || !sameRows(out.Predictions, res.Predictions) {
		t.Fatalf("response round trip mismatch: %+v", out)
	}

	// No predictions: the section must be absent, not empty.
	res.Predictions = nil
	res.Degraded = false
	out, err = DecodeRowsResponse(AppendRowsResponse(nil, &res))
	if err != nil {
		t.Fatal(err)
	}
	if out.Predictions != nil || out.Degraded {
		t.Fatalf("prediction-less round trip: %+v", out)
	}
}

// TestAdaptCrossCodecGolden is the tentpole equivalence gate: the same
// request through the JSON codec and the binary codec must produce
// bit-identical adapted rows and predictions, and the binary response must
// carry the same bundle id.
func TestAdaptCrossCodecGolden(t *testing.T) {
	ts, _, _ := newCodecServer(t, nil, Options{})
	_, _, rows := fixtures(t)
	probe := rows[:6]

	rowsBlob, _ := json.Marshal(probe)
	jres, err := http.Post(ts.URL+"/v1/adapt", "application/json",
		strings.NewReader(fmt.Sprintf(`{"rows":%s,"predict":true,"seed":9}`, rowsBlob)))
	if err != nil {
		t.Fatal(err)
	}
	var jout AdaptResponse
	if err := json.NewDecoder(jres.Body).Decode(&jout); err != nil {
		t.Fatal(err)
	}
	jres.Body.Close()
	if jres.StatusCode != http.StatusOK {
		t.Fatalf("JSON request status %d", jres.StatusCode)
	}

	bres, body := postBinary(t, ts.URL, AppendRowsRequest(nil, probe, 9, true), "")
	if bres.StatusCode != http.StatusOK {
		t.Fatalf("binary request status %d: %s", bres.StatusCode, body)
	}
	if ct := bres.Header.Get("Content-Type"); ct != ContentTypeRows {
		t.Fatalf("binary response Content-Type %q", ct)
	}
	bout, err := DecodeRowsResponse(body)
	if err != nil {
		t.Fatal(err)
	}

	if bout.BundleID != jout.BundleID {
		t.Errorf("bundle id %q vs %q across codecs", bout.BundleID, jout.BundleID)
	}
	if !sameRows(bout.Rows, jout.Rows) {
		t.Error("adapted rows differ between JSON and binary codecs")
	}
	if !sameRows(bout.Predictions, jout.Predictions) {
		t.Error("predictions differ between JSON and binary codecs")
	}
	if bout.Degraded || jout.Degraded {
		t.Error("healthy cross-codec request reported degraded")
	}
}

// TestAdaptContentNegotiation pins the codec-selection contract on
// /v1/adapt: Accept wins, then the response follows the request codec.
func TestAdaptContentNegotiation(t *testing.T) {
	ts, _, _ := newCodecServer(t, nil, Options{})
	_, _, rows := fixtures(t)
	probe := rows[:2]
	rowsBlob, _ := json.Marshal(probe)
	jsonBody := fmt.Sprintf(`{"rows":%s}`, rowsBlob)
	binBody := AppendRowsRequest(nil, probe, 0, false)

	cases := []struct {
		name        string
		contentType string
		body        []byte
		accept      string
		wantCT      string
	}{
		{"json to json", "application/json", []byte(jsonBody), "", "application/json"},
		{"binary to binary", ContentTypeRows, binBody, "", ContentTypeRows},
		{"json upgrades via accept", "application/json", []byte(jsonBody), ContentTypeRows, ContentTypeRows},
		{"binary downgraded via accept", ContentTypeRows, binBody, "application/json", "application/json"},
		{"binary with wildcard accept", ContentTypeRows, binBody, "*/*", ContentTypeRows},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest("POST", ts.URL+"/v1/adapt", bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", tc.contentType)
			if tc.accept != "" {
				req.Header.Set("Accept", tc.accept)
			}
			res, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(res.Body)
			res.Body.Close()
			if res.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", res.StatusCode, body)
			}
			if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, tc.wantCT) {
				t.Errorf("Content-Type %q, want %q", ct, tc.wantCT)
			}
		})
	}
}

// TestBinaryDegradedPassthrough drives the executor into failure and
// checks the degradation contract holds on the binary codec: 200, the raw
// rows echoed bit for bit, the degraded flag set in the payload, and the
// X-Netdrift-Degraded header present.
func TestBinaryDegradedPassthrough(t *testing.T) {
	inj := fault.New(11)
	ts, _, _ := newCodecServer(t, nil, Options{Workers: 1, Faults: inj, Breaker: fastBreaker()})
	_, _, rows := fixtures(t)
	probe := rows[:3]
	payload := AppendRowsRequest(nil, probe, 0, false)

	inj.Set(FaultSiteExec, fault.Spec{ErrRate: 1})
	res, body := postBinary(t, ts.URL, payload, "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("degraded binary status %d: %s", res.StatusCode, body)
	}
	if res.Header.Get(DegradedHeader) != "true" {
		t.Errorf("degraded response missing %s header", DegradedHeader)
	}
	out, err := DecodeRowsResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Degraded {
		t.Error("binary payload degraded flag not set")
	}
	if !sameRows(out.Rows, probe) {
		t.Error("degraded binary response does not echo raw input rows")
	}
	inj.Clear()
}

// TestMalformedBinaryRequestDoesNotTripBreakers is the breaker-safety
// satellite: malformed wire input of every flavor must be rejected with a
// 400 before it reaches the coalescer, leaving both the load breaker and
// the executor breaker closed.
func TestMalformedBinaryRequestDoesNotTripBreakers(t *testing.T) {
	ts, reg, co := newCodecServer(t, nil, Options{})
	_, _, rows := fixtures(t)
	good := AppendRowsRequest(nil, rows[:2], 0, false)

	bad := [][]byte{
		nil,
		[]byte("garbage that is not NDRB at all"),
		good[:3],
		good[:len(good)-5],
		append(append([]byte(nil), good[:6]...), 0xFF, 0xFF), // mangled header
		AppendRowsRequest(nil, [][]float64{}, 0, false),      // zero rows
	}
	// Forged row count pointing past the payload.
	forged := append([]byte(nil), good...)
	forged[16] = 0xFF
	bad = append(bad, forged)

	for i, payload := range bad {
		res, body := postBinary(t, ts.URL, payload, "")
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed payload %d: status %d (%s), want 400", i, res.StatusCode, body)
		}
		if ct := res.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
			t.Errorf("malformed payload %d: error Content-Type %q, want JSON", i, ct)
		}
	}
	if st := reg.Breaker().Status(); st.State != BreakerClosed || st.ConsecutiveFails != 0 {
		t.Errorf("load breaker after malformed flood: %+v, want closed/0", st)
	}
	if st := co.Status().ExecBreaker; st.State != BreakerClosed || st.ConsecutiveFails != 0 {
		t.Errorf("exec breaker after malformed flood: %+v, want closed/0", st)
	}
	// The server still serves golden afterwards.
	res, body := postBinary(t, ts.URL, good, "")
	if res.StatusCode != http.StatusOK {
		t.Fatalf("good request after malformed flood: status %d: %s", res.StatusCode, body)
	}
}

// TestBundleBinaryGolden is the artifact-side tentpole gate: the same
// fitted pair written as JSON and as binary must load (via the sniffing
// LoadBundleFile) to adapters and classifiers that produce bit-identical
// outputs, and the binary file must be the smaller artifact.
func TestBundleBinaryGolden(t *testing.T) {
	a, _, rows := fixtures(t)
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "b.json")
	binPath := filepath.Join(dir, "b.bin")
	if err := WriteBundleFileFormat(jsonPath, "golden", a.Adapter, a.Classifier, FormatJSON); err != nil {
		t.Fatal(err)
	}
	if err := WriteBundleFileFormat(binPath, "golden", a.Adapter, a.Classifier, FormatBinary); err != nil {
		t.Fatal(err)
	}

	fromJSON, err := LoadBundleFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadBundleFile(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.ID != "golden" || fromJSON.ID != fromBin.ID {
		t.Fatalf("ids %q / %q", fromJSON.ID, fromBin.ID)
	}
	probe := rows[:5]
	if !sameRows(adaptWith(t, fromJSON, probe, 3), adaptWith(t, fromBin, probe, 3)) {
		t.Error("adapters loaded from JSON and binary bundles adapt differently")
	}
	pj, err := fromJSON.Classifier.PredictProba(probe)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := fromBin.Classifier.PredictProba(probe)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(pj, pb) {
		t.Error("classifiers loaded from JSON and binary bundles predict differently")
	}

	ji, _ := os.Stat(jsonPath)
	bi, _ := os.Stat(binPath)
	if bi.Size() >= ji.Size() {
		t.Errorf("binary bundle (%d B) not smaller than JSON (%d B)", bi.Size(), ji.Size())
	}
}

// TestReadBundleBinaryMalformed covers the corrupt-artifact sweep: bad
// magic, truncations, a flipped payload byte (checksum), and a forged
// section length must all fail typed, never panic, never misload.
func TestReadBundleBinaryMalformed(t *testing.T) {
	a, _, _ := fixtures(t)
	data, err := AppendBundleBinary(nil, "m", a.Adapter, a.Classifier)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundleBinary([]byte("JSON{}")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}
	for _, cut := range []int{0, 3, 4, 8, 32, len(data) / 2, len(data) - 1} {
		if _, err := ReadBundleBinary(data[:cut]); err == nil {
			t.Errorf("truncation at %d bytes loaded successfully", cut)
		}
	}
	// Flip one payload byte deep in the adapter section: the CRC must
	// catch it.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)/2] ^= 0x40
	if _, err := ReadBundleBinary(corrupt); err == nil {
		t.Error("bit-flipped bundle loaded successfully")
	}
}

// TestBinaryDecodeSteadyStateAllocs gates the zero-alloc hot path: with a
// warm RowBuf and a warm response buffer, request decode and response
// encode must allocate nothing. Named to match the CI allocation-budget
// test filter.
func TestBinaryDecodeSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	rows := make([][]float64, 32)
	for i := range rows {
		rows[i] = []float64{float64(i), 1.5, -2.5, 3.25}
	}
	payload := AppendRowsRequest(nil, rows, 5, true)
	var buf RowBuf
	if _, _, _, err := DecodeRowsRequest(payload, &buf); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, _, _, err := DecodeRowsRequest(payload, &buf); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state DecodeRowsRequest allocates %.1f/op, want 0", allocs)
	}

	res := Result{BundleID: "b", Rows: rows}
	dst := AppendRowsResponse(nil, &res) // warm-up sizes the buffer
	allocs = testing.AllocsPerRun(200, func() {
		dst = AppendRowsResponse(dst[:0], &res)
	})
	if allocs != 0 {
		t.Errorf("steady-state AppendRowsResponse allocates %.1f/op, want 0", allocs)
	}
}
