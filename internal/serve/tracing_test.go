package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"netdrift/internal/obs"
)

// tracedServer builds a fixture-backed server with tracing and the flight
// recorder enabled, returning the memory sink and recorder for assertions.
func tracedServer(t *testing.T) (*httptest.Server, *Coalescer, *obs.MemorySink, *obs.FlightRecorder) {
	t.Helper()
	a, _, _ := fixtures(t)
	o := obs.New()
	o.Flight = obs.NewFlightRecorder(256)
	sink := obs.NewMemorySink()
	o.Spans = o.Flight.SpanSink(sink)
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 16, Workers: 1, Obs: o})
	ts := httptest.NewServer(NewServer(reg, co, o))
	t.Cleanup(func() { ts.Close(); co.Close() })
	return ts, co, sink, o.Flight
}

// TestTraceEndToEnd is the tentpole acceptance check: one inbound trace ID
// must be observable on the response header, the handler span, the batch
// span's member list, the cross-links between the two, and the flight
// recorder — the full handler → coalescer → executor journey.
func TestTraceEndToEnd(t *testing.T) {
	_, _, rows := fixtures(t)
	ts, _, sink, flight := tracedServer(t)

	const traceID = "e2e-trace-0001"
	body, _ := json.Marshal(AdaptRequest{Rows: rows[:4]})
	req, err := http.NewRequest("POST", ts.URL+"/v1/adapt", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TraceHeader, traceID)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("adapt status %d", res.StatusCode)
	}
	if got := res.Header.Get(TraceHeader); got != traceID {
		t.Errorf("response %s = %q, want the inbound trace ID echoed", TraceHeader, got)
	}

	var handler, batch obs.SpanData
	var haveHandler, haveBatch bool
	for _, sp := range sink.Spans() {
		switch {
		case sp.Name == "http.adapt" && sp.Trace == traceID:
			handler, haveHandler = sp, true
		case sp.Name == "serve.batch" && sp.Trace == traceID:
			batch, haveBatch = sp, true
		}
	}
	if !haveHandler {
		t.Fatalf("no http.adapt span with trace %q; spans: %v", traceID, sink.Spans())
	}
	if !haveBatch {
		t.Fatalf("no serve.batch span with trace %q; spans: %v", traceID, sink.Spans())
	}
	if got := handler.Attrs.Get("outcome"); got != "ok" {
		t.Errorf("handler span outcome = %q, want ok", got)
	}
	if handler.Attrs.Get("queue_wait_us") == "" {
		t.Error("handler span missing queue_wait_us attr")
	}
	// Cross-links: the member span names its batch, the batch names its
	// members.
	if !strings.Contains(batch.Attrs.Get("request_ids"), traceID) {
		t.Errorf("batch span request_ids = %q, does not carry member trace %q",
			batch.Attrs.Get("request_ids"), traceID)
	}
	if got := batch.Attrs.Get("outcome"); got != "ok" {
		t.Errorf("batch span outcome = %q, want ok", got)
	}
	if handler.Attrs.Get("batch_span") == "" {
		t.Error("handler span missing batch_span attr")
	}

	// The flight ring saw the same trace.
	var flightSawTrace bool
	for _, ev := range flight.Snapshot() {
		if ev.Kind == obs.FlightKindSpan && ev.Trace == traceID {
			flightSawTrace = true
			break
		}
	}
	if !flightSawTrace {
		t.Errorf("flight recorder has no span event with trace %q", traceID)
	}
}

// TestTraceMintedWhenAbsent checks that a header-less request gets a fresh
// 16-hex trace ID minted and echoed.
func TestTraceMintedWhenAbsent(t *testing.T) {
	_, _, rows := fixtures(t)
	ts, _, _, _ := tracedServer(t)

	body, _ := json.Marshal(AdaptRequest{Rows: rows[:2]})
	res, err := http.Post(ts.URL+"/v1/adapt", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	got := res.Header.Get(TraceHeader)
	if len(got) != 16 {
		t.Fatalf("minted trace %q, want 16 hex chars", got)
	}
	for _, c := range got {
		if !strings.ContainsRune("0123456789abcdef", c) {
			t.Fatalf("minted trace %q contains non-hex %q", got, c)
		}
	}
}

func TestTraceFromRequestTraceparent(t *testing.T) {
	mk := func(h, v string) *http.Request {
		r := httptest.NewRequest("POST", "/v1/adapt", nil)
		if h != "" {
			r.Header.Set(h, v)
		}
		return r
	}
	w3cID := strings.Repeat("ab", 16)
	cases := []struct {
		name string
		req  *http.Request
		want string
	}{
		{"none", mk("", ""), ""},
		{"x-request-id", mk(TraceHeader, "req-7"), "req-7"},
		{"traceparent", mk("Traceparent", "00-"+w3cID+"-00f067aa0ba902b7-01"), w3cID},
		{"traceparent-malformed", mk("Traceparent", "garbage"), ""},
		{"traceparent-short-id", mk("Traceparent", "00-abcd-00f067aa0ba902b7-01"), ""},
	}
	for _, tc := range cases {
		if got := traceFromRequest(tc.req); got != tc.want {
			t.Errorf("%s: traceFromRequest = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// TestStatusAndFlightRecEndpoints covers the two new operator endpoints:
// /v1/status (health + SLO + recorder occupancy) and /debug/flightrec (the
// ring dump).
func TestStatusAndFlightRecEndpoints(t *testing.T) {
	_, _, rows := fixtures(t)
	ts, _, _, _ := tracedServer(t)

	// Generate one request so the SLO layer has something to report.
	body, _ := json.Marshal(AdaptRequest{Rows: rows[:2]})
	res, err := http.Post(ts.URL+"/v1/adapt", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()

	sres, err := http.Get(ts.URL + "/v1/status")
	if err != nil {
		t.Fatal(err)
	}
	defer sres.Body.Close()
	if sres.StatusCode != http.StatusOK {
		t.Fatalf("/v1/status status %d", sres.StatusCode)
	}
	var status StatusReport
	if err := json.NewDecoder(sres.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	if status.Health.Status != HealthOK {
		t.Errorf("status health = %q, want %q", status.Health.Status, HealthOK)
	}
	if status.SLO.Objective.Availability != 0.999 || status.SLO.Objective.LatencyObjective != 0.25 {
		t.Errorf("status SLO objective = %+v, want defaults", status.SLO.Objective)
	}
	adapt := status.SLO.Endpoints[EndpointAdapt]
	if len(adapt) != len(status.SLO.Windows) || len(adapt) == 0 {
		t.Fatalf("status has %d %s windows, want %d", len(adapt), EndpointAdapt, len(status.SLO.Windows))
	}
	if adapt[0].Requests == 0 {
		t.Error("status shows zero adapt requests after a served request")
	}
	if !status.Flight.Enabled || status.Flight.LastSeq == 0 {
		t.Errorf("status flight recorder = %+v, want enabled with events", status.Flight)
	}

	fres, err := http.Get(ts.URL + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	defer fres.Body.Close()
	if fres.StatusCode != http.StatusOK {
		t.Fatalf("/debug/flightrec status %d", fres.StatusCode)
	}
	var snap obs.FlightSnapshot
	if err := json.NewDecoder(fres.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Reason != "debug" || len(snap.Events) == 0 {
		t.Errorf("flightrec dump reason=%q events=%d, want debug dump with events", snap.Reason, len(snap.Events))
	}
}

// TestFlightRecDisabled404 checks the no-recorder path.
func TestFlightRecDisabled404(t *testing.T) {
	a, _, _ := fixtures(t)
	o := obs.New() // no Flight
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 16, Workers: 1, Obs: o})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, o))
	defer ts.Close()
	res, err := http.Get(ts.URL + "/debug/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/flightrec without recorder: status %d, want 404", res.StatusCode)
	}
}

// TestTracingDisabledZeroAlloc is the nil-sink fast-path gate: with no
// span sink and no flight recorder, the tracing hooks on the request path
// (header extraction, span start/attr/end, flight record) must allocate
// nothing at all.
func TestTracingDisabledZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	o := obs.New() // Spans == nil, Flight == nil: tracing disabled
	req := httptest.NewRequest("POST", "/v1/adapt", nil)
	allocs := testing.AllocsPerRun(200, func() {
		sp := o.StartTrace("http.adapt", traceFromRequest(req))
		sp.SetAttr("outcome", "ok")
		sp.SetAttr("queue_wait_us", "12")
		sp.End()
		o.FlightRecord(obs.FlightKindShed, "coalescer", sp.Trace(), "queue full")
	})
	if allocs != 0 {
		t.Errorf("tracing-disabled path allocates %.1f/op, want 0", allocs)
	}
}

// nullSink measures span overhead without sink-side work.
type nullSink struct{}

func (nullSink) Emit(obs.SpanData) {}

// TestTracingEnabledAllocBudget pins the enabled-path cost: one span with
// an inline (≤8) attr set must stay within a fixed small budget — the span
// allocation itself and nothing per-attr.
func TestTracingEnabledAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	o := obs.New()
	o.Spans = nullSink{}
	allocs := testing.AllocsPerRun(200, func() {
		sp := o.StartTrace("http.adapt", "fixed-trace")
		sp.SetAttr("outcome", "ok")
		sp.SetAttr("queue_wait_us", "12")
		sp.SetAttr("batch_span", "1")
		sp.SetAttr("batch_rows", "8")
		sp.End()
	})
	const budget = 2 // the Span itself (+1 slack for runtime variance)
	if allocs > budget {
		t.Errorf("tracing-enabled path allocates %.1f/op, budget %d", allocs, budget)
	}
}
