package serve

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"netdrift/internal/binenc"
)

// sameRowsBits compares matrices by float bit pattern, so NaN payloads
// (which the wire codec carries verbatim; finiteness is enforced by
// validateRows at the API boundary, not the codec) still compare equal to
// themselves.
func sameRowsBits(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// Fuzz targets for the two attacker-facing binary decoders: the row-batch
// request codec (network input) and the bundle envelope (artifact input).
// The invariant under fuzzing is the breaker-safety contract — malformed
// bytes must produce a typed error, never a panic, never an OOM-scale
// allocation, and anything that decodes cleanly must re-encode to an
// equivalent payload. CI runs these with a short -fuzztime as a smoke; the
// checked-in corpus under testdata/fuzz seeds both with the interesting
// shapes (valid payloads, truncations, forged counts).

func FuzzDecodeRowsRequest(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("NDRB"))
	f.Add(AppendRowsRequest(nil, [][]float64{{1, 2}, {3, 4}}, 7, true))
	f.Add(AppendRowsRequest(nil, [][]float64{}, 0, false))
	valid := AppendRowsRequest(nil, [][]float64{{1.5, -2.5, 0, 9}}, -1, false)
	f.Add(valid[:len(valid)-3])
	forged := append([]byte(nil), valid...)
	forged[16] = 0xFF // row count
	f.Add(forged)

	var buf RowBuf
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, seed, predict, err := DecodeRowsRequest(data, &buf)
		if err != nil {
			if rows != nil {
				t.Fatal("decode error but rows returned")
			}
			return
		}
		// Anything accepted must survive a re-encode → re-decode round trip.
		re := AppendRowsRequest(nil, rows, seed, predict)
		var buf2 RowBuf
		rows2, seed2, predict2, err := DecodeRowsRequest(re, &buf2)
		if err != nil {
			t.Fatalf("re-decode of accepted payload failed: %v", err)
		}
		if seed2 != seed || predict2 != predict || !sameRowsBits(rows2, rows) {
			t.Fatal("re-encoded payload decodes differently")
		}
	})
}

func FuzzReadBundleBinary(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte("NDBF"))
	f.Add([]byte(`{"format_version":1}`))
	// A structurally valid envelope with a tiny (invalid) adapter section,
	// so mutation explores the header and section framing.
	seed := []byte("NDBF")
	seed = binenc.AppendU16(seed, 1)
	seed = binenc.AppendString(seed, "fuzz")
	seed = binenc.AppendBool(seed, false)
	seed = appendSection(seed, []byte{1, 0, 0, 0})
	f.Add(seed)
	f.Add(seed[:len(seed)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ReadBundleBinary(data)
		if err == nil && (b == nil || b.Adapter == nil) {
			t.Fatal("nil-adapter bundle decoded without error")
		}
		if err != nil && b != nil {
			t.Fatal("decode error but bundle returned")
		}
		// The magic gate must be the only ErrBadMagic source.
		if errors.Is(err, ErrBadMagic) && bytes.HasPrefix(data, []byte(BundleMagic)) {
			t.Fatal("ErrBadMagic on a payload with valid magic")
		}
	})
}
