package serve

import (
	"strings"
	"testing"
	"time"

	"netdrift/internal/obs"
)

// fakeClock is a manually advanced clock for breaker timing tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(cfg BreakerConfig, o *obs.Observer) (*Breaker, *fakeClock) {
	b := NewBreaker("test", cfg, o)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	o := obs.New()
	b, _ := newTestBreaker(BreakerConfig{FailThreshold: 3, BaseBackoff: time.Second}, o)
	for i := 0; i < 2; i++ {
		b.Fail()
		if !b.Allow() {
			t.Fatalf("breaker tripped after %d failures, threshold 3", i+1)
		}
	}
	b.Fail() // third consecutive failure trips
	if b.Allow() {
		t.Fatal("breaker still allows after threshold failures")
	}
	if st := b.Status(); st.State != BreakerOpen || st.RetryIn == "" {
		t.Errorf("open status = %+v", st)
	}
	// A success while closed resets the consecutive count.
	b2, _ := newTestBreaker(BreakerConfig{FailThreshold: 3}, nil)
	b2.Fail()
	b2.Fail()
	b2.Success()
	b2.Fail()
	b2.Fail()
	if !b2.Allow() {
		t.Error("Success did not reset the consecutive-failure count")
	}
	// Transition was counted.
	if v, ok := o.Registry.Value(obs.MetricServeBreakerTransitions, "breaker", "test", "to", BreakerOpen); !ok || v != 1 {
		t.Errorf("open transitions = %v (ok=%v), want 1", v, ok)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailThreshold: 1, BaseBackoff: time.Second, MaxBackoff: time.Second}, nil)
	b.Fail()
	if b.Allow() {
		t.Fatal("open breaker allowed")
	}
	// Jitter keeps the backoff within [0.5s, 1.5s); after 1.5s the next
	// Allow must be the half-open probe, and only one probe may be out.
	clk.advance(1500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("backoff elapsed but probe refused")
	}
	if st := b.Status(); st.State != BreakerHalfOpen {
		t.Fatalf("state after probe admit = %+v", st)
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed in half-open")
	}
	// Probe success closes; everything flows again.
	b.Success()
	if st := b.Status(); st.State != BreakerClosed {
		t.Fatalf("state after probe success = %+v", st)
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker refused")
	}
}

func TestBreakerBackoffDoublesWithJitter(t *testing.T) {
	base := 100 * time.Millisecond
	b, clk := newTestBreaker(BreakerConfig{FailThreshold: 1, BaseBackoff: base, MaxBackoff: time.Minute}, nil)
	// openFor measures how long the breaker refuses by advancing the clock
	// until Allow admits a probe.
	openFor := func() time.Duration {
		start := clk.t
		step := time.Millisecond
		for i := 0; i < 200000; i++ {
			if b.Allow() {
				return clk.t.Sub(start)
			}
			clk.advance(step)
		}
		t.Fatal("breaker never reopened")
		return 0
	}
	within := func(d, nominal time.Duration) bool {
		return d >= nominal/2 && d <= nominal*3/2+time.Millisecond
	}
	b.Fail()
	if d := openFor(); !within(d, base) {
		t.Errorf("first backoff %v outside jitter envelope of %v", d, base)
	}
	b.Fail() // half-open probe failed: doubled interval
	if d := openFor(); !within(d, 2*base) {
		t.Errorf("second backoff %v outside jitter envelope of %v", d, 2*base)
	}
	b.Fail()
	if d := openFor(); !within(d, 4*base) {
		t.Errorf("third backoff %v outside jitter envelope of %v", d, 4*base)
	}
	// A probe success resets the exponent back to base.
	b.Success()
	b.Fail()
	if d := openFor(); !within(d, base) {
		t.Errorf("post-success backoff %v did not reset to %v envelope", d, base)
	}
}

func TestBreakerBackoffCapped(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{FailThreshold: 1, BaseBackoff: time.Second, MaxBackoff: 4 * time.Second}, nil)
	for i := 0; i < 12; i++ { // would be 2048s uncapped
		b.Fail()
		clk.advance(7 * time.Second) // > 1.5 * MaxBackoff always reopens
		if !b.Allow() {
			t.Fatalf("trip %d: backoff exceeded 1.5*MaxBackoff", i)
		}
	}
}

func TestBreakerNilAndStatus(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Error("nil breaker refused")
	}
	b.Success()
	b.Fail()
	if st := b.Status(); st.State != BreakerClosed {
		t.Errorf("nil status = %+v", st)
	}
}

func TestBreakerTransitionsExposition(t *testing.T) {
	o := obs.New()
	b, clk := newTestBreaker(BreakerConfig{FailThreshold: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}, o)
	b.Fail()
	clk.advance(time.Second)
	b.Allow() // half-open
	b.Success()
	var sb strings.Builder
	if err := o.Registry.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`netdrift_serve_breaker_transitions_total{breaker="test",to="open"} 1`,
		`netdrift_serve_breaker_transitions_total{breaker="test",to="half-open"} 1`,
		`netdrift_serve_breaker_transitions_total{breaker="test",to="closed"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}
