package serve

import (
	"io"
	"strings"
	"sync"
)

// HTTP-side wiring for the row-batch codec: content negotiation and the
// pooled per-request buffers that make the binary path allocation-light.

// DegradedHeader is set to "true" on passthrough responses in both codecs,
// so binary clients (whose degraded bit lives inside the payload) and
// proxies can spot degradation without parsing the body.
const DegradedHeader = "X-Netdrift-Degraded"

// Codec labels used on the per-codec serve metrics.
const (
	codecJSON   = "json"
	codecBinary = "binary"
)

// wantBinaryResponse decides the response codec: binary when the client
// asks for it via Accept, JSON when Accept names JSON, and otherwise
// symmetric with the request codec.
func wantBinaryResponse(accept string, binaryReq bool) bool {
	if strings.Contains(accept, ContentTypeRows) {
		return true
	}
	if strings.Contains(accept, "application/json") {
		return false
	}
	return binaryReq
}

// adaptBuf carries one request's reusable storage: the raw body bytes, the
// decoded row matrix, and the encoded response. Pooled so a warm server
// runs the binary hot path without per-request growth.
//
// Recycling rule: a buffer whose rows were submitted to the coalescer may
// be pooled again only when SubmitTraced's return proves the executor is
// finished with them — a result (or error) delivered through the request's
// done channel, or a pre-enqueue rejection. When Submit returns because
// the caller's context died, the executor may still be reading the row
// slices, so the buffer must be dropped to the GC instead.
type adaptBuf struct {
	body []byte
	rows RowBuf
	resp []byte
}

var adaptBufPool = sync.Pool{
	New: func() any { return &adaptBuf{body: make([]byte, 0, 64<<10)} },
}

// readBody slurps r into the buffer's byte storage, reusing capacity.
func (b *adaptBuf) readBody(r io.Reader) ([]byte, error) {
	b.body = b.body[:0]
	for {
		if len(b.body) == cap(b.body) {
			b.body = append(b.body, 0)[:len(b.body)]
		}
		n, err := r.Read(b.body[len(b.body):cap(b.body)])
		b.body = b.body[:len(b.body)+n]
		if err == io.EOF {
			return b.body, nil
		}
		if err != nil {
			return b.body, err
		}
	}
}

// countingReader tallies bytes read, for the request-size histogram on the
// streaming JSON path.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// countingWriter tallies bytes written, for the response-size histogram on
// the streaming JSON path.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
