package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netdrift/internal/fault"
	"netdrift/internal/obs"

	"net/http/httptest"
)

// TestCancelWhileBatchInFlight cancels a request's context while its batch
// is executing (the executor is slowed by injection). Submit must unblock
// with the context error, and the worker must keep serving afterwards.
func TestCancelWhileBatchInFlight(t *testing.T) {
	a, _, rows := fixtures(t)
	inj := fault.New(3)
	inj.Set(FaultSiteExec, fault.Spec{SlowRate: 1, SlowFor: 150 * time.Millisecond})
	reg := NewRegistry(nil)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 8, MaxWait: time.Microsecond, Workers: 1, Faults: inj})
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := co.Submit(ctx, rows[:2], 0, false)
		errCh <- err
	}()
	time.Sleep(30 * time.Millisecond) // batch is now in the slow executor
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit after mid-batch cancel = %v, want context.Canceled", err)
		}
	case <-time.After(50 * time.Millisecond):
		t.Fatal("Submit did not unblock promptly on cancel while batch in flight")
	}
	// The worker survives and the next request is served golden.
	inj.Clear()
	res, err := co.Submit(context.Background(), rows[:2], 0, false)
	if err != nil || res.Degraded {
		t.Fatalf("request after mid-batch cancel: res=%+v err=%v", res, err)
	}
	if !sameRows(res.Rows, adaptWith(t, a, rows[:2], 0)) {
		t.Error("post-cancel response not golden")
	}
}

// TestCloseRacingFlush races Close against a burst of Submits: every
// Submit must resolve to either a full golden result or ErrClosed —
// never a hang, a partial result, or a panic.
func TestCloseRacingFlush(t *testing.T) {
	a, _, rows := fixtures(t)
	golden := adaptWith(t, a, rows[:3], 0)
	for round := 0; round < 5; round++ {
		reg := NewRegistry(nil)
		reg.Swap(a)
		co := NewCoalescer(reg, Options{MaxBatch: 4, MaxWait: 200 * time.Microsecond, Workers: 2})
		const n = 16
		var wg sync.WaitGroup
		var served, closed atomic.Int64
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := co.Submit(context.Background(), rows[:3], 0, false)
				switch {
				case err == nil:
					if res.Degraded || !sameRows(res.Rows, golden) {
						t.Error("racing Submit returned a non-golden success")
					}
					served.Add(1)
				case errors.Is(err, ErrClosed):
					closed.Add(1)
				default:
					t.Errorf("racing Submit error %v, want nil or ErrClosed", err)
				}
			}()
		}
		time.Sleep(time.Duration(round) * 100 * time.Microsecond)
		co.Close()
		wg.Wait()
		if served.Load()+closed.Load() != n {
			t.Fatalf("round %d: %d served + %d closed != %d submitted",
				round, served.Load(), closed.Load(), n)
		}
	}
}

// TestOverflowSplitNearDeadline submits an oversized request (split into
// several executor chunks) under deadlines that expire around the split.
// The outcome must be all-or-nothing: either the full golden row set, or
// a deadline error — never a partial result.
func TestOverflowSplitNearDeadline(t *testing.T) {
	a, _, rows := fixtures(t)
	big := rows[:40] // MaxBatch 4 -> 10 chunks
	golden := adaptWith(t, a, big, 0)
	inj := fault.New(7)
	reg := NewRegistry(nil)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 4, MaxWait: time.Microsecond, Workers: 1, Faults: inj})
	defer co.Close()

	var full, expired int
	for i := 0; i < 12; i++ {
		// Delay execution start so some deadlines die mid-flight and the
		// split's allCanceled check has to abort cleanly.
		inj.Set(FaultSiteExec, fault.Spec{SlowRate: 1, SlowFor: time.Duration(i) * 2 * time.Millisecond})
		ctx, cancel := context.WithTimeout(context.Background(), 8*time.Millisecond)
		res, err := co.Submit(ctx, big, 0, false)
		cancel()
		switch {
		case err == nil:
			if res.Degraded {
				t.Fatalf("iter %d: degraded result with healthy executor", i)
			}
			if !sameRows(res.Rows, golden) {
				t.Fatalf("iter %d: successful result is not the full golden row set (%d rows)", i, len(res.Rows))
			}
			full++
		case errors.Is(err, context.DeadlineExceeded):
			expired++
		default:
			t.Fatalf("iter %d: err = %v, want nil or DeadlineExceeded", i, err)
		}
	}
	if full == 0 || expired == 0 {
		t.Logf("coverage note: full=%d expired=%d (both paths ideally hit)", full, expired)
	}
}

// TestChaosHammer is the package's torn-response check: a fault storm
// (errors, panics, latency at every injection site) under concurrent
// clients, with every single 200 byte-checked against the bundle it
// claims — adapted responses must match the golden output bit-for-bit,
// degraded responses must echo the raw input exactly. After the storm,
// the server must return to golden within the breaker backoff.
func TestChaosHammer(t *testing.T) {
	a, _, rows := fixtures(t)
	o := obs.New()
	inj := fault.New(1234)
	inj.Set(FaultSiteExec, fault.Spec{ErrRate: 0.15, PanicRate: 0.05, SlowRate: 0.2, SlowFor: 500 * time.Microsecond})
	inj.Set(FaultSiteHandler, fault.Spec{ErrRate: 0.05, PanicRate: 0.02})
	reg := NewRegistry(o)
	reg.SetBreaker(NewBreaker("bundle_load", BreakerConfig{}, o))
	reg.Swap(a)
	co := NewCoalescer(reg, Options{
		MaxBatch: 8, MaxWait: 100 * time.Microsecond, Workers: 2, MaxQueue: 64,
		Faults: inj, Obs: o,
		Breaker: BreakerConfig{FailThreshold: 2, BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Seed: 7},
	})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, o))
	defer ts.Close()

	// Fixed request shapes with precomputed goldens.
	type shape struct {
		raw    [][]float64
		golden [][]float64
		body   string
	}
	var shapes []shape
	for _, span := range [][2]int{{0, 1}, {1, 3}, {4, 8}, {8, 9}} {
		raw := rows[span[0]:span[1]]
		blob, err := json.Marshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		shapes = append(shapes, shape{raw: raw, golden: adaptWith(t, a, raw, 0), body: fmt.Sprintf(`{"rows":%s}`, blob)})
	}

	const clients = 8
	const perClient = 40
	var torn, ok, degraded, shed, errs atomic.Int64
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				sh := shapes[(cl+i)%len(shapes)]
				res, err := http.Post(ts.URL+"/v1/adapt", "application/json", strings.NewReader(sh.body))
				if err != nil {
					errs.Add(1)
					continue
				}
				var ar AdaptResponse
				decErr := json.NewDecoder(res.Body).Decode(&ar)
				res.Body.Close()
				switch res.StatusCode {
				case http.StatusOK:
					if decErr != nil {
						torn.Add(1)
						continue
					}
					if ar.Degraded {
						if !sameRows(ar.Rows, sh.raw) {
							torn.Add(1)
						} else {
							degraded.Add(1)
						}
						continue
					}
					if ar.BundleID != a.ID || !sameRows(ar.Rows, sh.golden) {
						torn.Add(1)
					} else {
						ok.Add(1)
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
				case http.StatusInternalServerError, http.StatusRequestTimeout:
					errs.Add(1)
				default:
					t.Errorf("unexpected status %d under chaos", res.StatusCode)
				}
			}
		}(cl)
	}
	wg.Wait()
	total := int64(clients * perClient)
	t.Logf("chaos: total=%d ok=%d degraded=%d shed=%d errors=%d torn=%d %s",
		total, ok.Load(), degraded.Load(), shed.Load(), errs.Load(), torn.Load(), inj.Summary())
	if torn.Load() != 0 {
		t.Fatalf("%d torn responses under chaos", torn.Load())
	}
	if ok.Load()+degraded.Load() == 0 {
		t.Fatal("chaos storm produced no successful responses at all")
	}

	// Storm over: must return to bit-identical golden serving.
	inj.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for {
		res, ar := postAdapt(t, ts.URL, shapes[0].body)
		if res.StatusCode == http.StatusOK && !ar.Degraded {
			if !sameRows(ar.Rows, shapes[0].golden) {
				t.Fatal("post-storm response is not bit-identical golden")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server did not recover to golden after chaos stopped")
		}
		time.Sleep(time.Millisecond)
	}
}
