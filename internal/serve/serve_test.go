package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/models"
	"netdrift/internal/obs"
)

// toyDrift mirrors the drifted toy problem used across the repo's tests:
// f2 is the variant aggregate, mean-shifted in the target domain.
func toyDrift(n int, target bool, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		cs := float64(2*c - 1)
		f0 := cs + 0.5*rng.NormFloat64()
		f1 := cs*0.8 + 0.5*rng.NormFloat64()
		f2 := f0 + f1 + cs + 0.1*rng.NormFloat64()
		if target {
			f2 += 4
		}
		f3 := rng.NormFloat64()
		x[i] = []float64{f0, f1, f2, f3}
		y[i] = c
	}
	return &dataset.Dataset{X: x, Y: y}
}

// buildBundle fits a small adapter + classifier pair for serving tests.
// seed differentiates the fitted weights so hot-swapped bundles produce
// distinguishable outputs.
func buildBundle(t testing.TB, id string, seed int64) *Bundle {
	t.Helper()
	src := toyDrift(400, false, seed)
	tgtSupport := toyDrift(20, true, seed+1)
	ad := core.NewAdapter(core.AdapterConfig{
		Mode:  core.ModeFSRecon,
		Recon: core.ReconGAN,
		GAN:   core.GANConfig{Epochs: 6},
		Seed:  seed,
	})
	if err := ad.Fit(src, tgtSupport); err != nil {
		t.Fatal(err)
	}
	train, err := ad.TrainingData(src)
	if err != nil {
		t.Fatal(err)
	}
	clf := models.NewMLPClassifier(models.Options{Seed: seed, Epochs: 3})
	if err := clf.Fit(train.X, train.Y, 2); err != nil {
		t.Fatal(err)
	}
	// Round-trip through the bundle format so tests exercise exactly what
	// a server would load from disk.
	var buf bytes.Buffer
	if err := WriteBundle(&buf, id, ad, clf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

var (
	fixtureOnce sync.Once
	fixtureA    *Bundle
	fixtureB    *Bundle
	fixtureRows [][]float64
)

// fixtures returns two distinguishable serving bundles plus probe rows,
// built once for the whole package.
func fixtures(t testing.TB) (*Bundle, *Bundle, [][]float64) {
	fixtureOnce.Do(func() {
		fixtureA = buildBundle(t, "bundle-a", 21)
		fixtureB = buildBundle(t, "bundle-b", 91)
		fixtureRows = toyDrift(48, true, 5).X
	})
	if fixtureA == nil || fixtureB == nil {
		t.Fatal("fixture build failed earlier")
	}
	return fixtureA, fixtureB, fixtureRows
}

// adaptWith runs rows through a bundle directly (no coalescer), returning
// defensive copies — the reference output for end-to-end comparisons.
func adaptWith(t testing.TB, b *Bundle, rows [][]float64, requestSeed int64) [][]float64 {
	t.Helper()
	seeds := make([]int64, len(rows))
	for i := range seeds {
		seeds[i] = core.SampleSeed(requestSeed, i)
	}
	var scr core.AdaptScratch
	out, err := b.Adapter.AdaptBatch(rows, seeds, &scr)
	if err != nil {
		t.Fatal(err)
	}
	cp := make([][]float64, out.Rows())
	for i := range cp {
		cp[i] = append([]float64(nil), out.Row(i)...)
	}
	return cp
}

func sameRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestBundleFileRoundTrip(t *testing.T) {
	a, _, rows := fixtures(t)
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := WriteBundleFile(path, a.ID, a.Adapter, a.Classifier); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(nil)
	loaded, err := reg.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if reg.Current() != loaded {
		t.Error("LoadFile did not install the bundle")
	}
	if loaded.ID != a.ID || loaded.Classifier == nil {
		t.Errorf("loaded bundle id=%q classifier=%v", loaded.ID, loaded.Classifier != nil)
	}
	if !sameRows(adaptWith(t, loaded, rows, 0), adaptWith(t, a, rows, 0)) {
		t.Error("bundle loaded from disk serves different outputs")
	}
	if _, err := reg.LoadFile(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Errorf("missing file: err = %v, want not-exist", err)
	}
}

func TestRegistrySingleflight(t *testing.T) {
	a, _, _ := fixtures(t)
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := WriteBundleFile(path, a.ID, a.Adapter, a.Classifier); err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	reg := NewRegistry(o)
	const callers = 8
	got := make([]*Bundle, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := reg.LoadFile(path)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = b
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if got[i] == nil {
			t.Fatal("caller got nil bundle")
		}
	}
	// Loads must coalesce: far fewer disk reads than callers. (Exact
	// count depends on scheduling; with the flight map it is usually 1.)
	var loads float64
	for _, s := range o.Registry.Snapshot() {
		if s.Name == obs.MetricServeBundleLoads {
			loads = s.Value
		}
	}
	if loads == 0 || loads > callers/2 {
		t.Errorf("bundle loads = %v for %d concurrent callers, want coalesced", loads, callers)
	}
}

func TestServerEndToEnd(t *testing.T) {
	a, _, rows := fixtures(t)
	o := obs.New()
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 16, Workers: 1, Obs: o})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, o))
	defer ts.Close()

	// Health.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", hres.StatusCode)
	}
	hres.Body.Close()

	// Adapt with predictions: must match the direct (uncoalesced) path.
	body, _ := json.Marshal(AdaptRequest{Rows: rows, Predict: true})
	res, err := http.Post(ts.URL+"/v1/adapt", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("adapt status %d", res.StatusCode)
	}
	var ar AdaptResponse
	if err := json.NewDecoder(res.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.BundleID != a.ID {
		t.Errorf("bundle id %q, want %q", ar.BundleID, a.ID)
	}
	if !sameRows(ar.Rows, adaptWith(t, a, rows, 0)) {
		t.Error("served rows differ from direct AdaptBatch")
	}
	if len(ar.Predictions) != len(rows) || len(ar.Predictions[0]) != 2 {
		t.Fatalf("predictions shape %dx?, want %dx2", len(ar.Predictions), len(rows))
	}

	// Bad requests.
	for _, payload := range []string{`{"rows":[]}`, `{not json`} {
		res, err := http.Post(ts.URL+"/v1/adapt", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		if res.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q: status %d, want 400", payload, res.StatusCode)
		}
	}

	// Metrics exposition includes the serving families.
	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mres.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := mres.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	text := sb.String()
	for _, want := range []string{
		obs.MetricServeRequests,
		obs.MetricServeRows,
		obs.MetricServeBatchSize + "_bucket",
		obs.MetricServeReqLatency + "_bucket",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestServerNoBundle(t *testing.T) {
	reg := NewRegistry(nil)
	co := NewCoalescer(reg, Options{})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, nil))
	defer ts.Close()

	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz without bundle: status %d, want 503", hres.StatusCode)
	}
	res, err := http.Post(ts.URL+"/v1/adapt", "application/json",
		strings.NewReader(`{"rows":[[1,2,3,4]]}`))
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("adapt without bundle: status %d, want 503", res.StatusCode)
	}
}

func TestSubmitCoalescesConcurrentRequests(t *testing.T) {
	a, _, rows := fixtures(t)
	o := obs.New()
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 32, Workers: 1, Obs: o})
	defer co.Close()

	want := adaptWith(t, a, rows, 0)
	const clients = 12
	perClient := len(rows) / clients
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lo := c * perClient
			res, err := co.Submit(context.Background(), rows[lo:lo+perClient], 0, false)
			if err != nil {
				t.Error(err)
				return
			}
			// Seed 0 pins the noise, so every row's result is independent
			// of how requests were coalesced.
			if !sameRows(res.Rows, want[lo:lo+perClient]) {
				t.Errorf("client %d got rows differing from the unbatched reference", c)
			}
		}(c)
	}
	wg.Wait()
	// The 12 concurrent 4-row requests must have shared batches.
	var batches, rowsServed float64
	for _, s := range o.Registry.Snapshot() {
		switch s.Name {
		case obs.MetricServeBatches:
			batches = s.Value
		case obs.MetricServeRows:
			rowsServed = s.Value
		}
	}
	if rowsServed != float64(clients*perClient) {
		t.Errorf("rows served = %v, want %d", rowsServed, clients*perClient)
	}
	if batches >= clients {
		t.Errorf("batches = %v for %d requests: no coalescing happened", batches, clients)
	}
}
