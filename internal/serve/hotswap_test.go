package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHotSwapNoTornReads hammers the serving path from many clients while
// another goroutine hot-swaps between two bundles as fast as it can. Every
// response claims the bundle it was served from; the response rows must
// equal that exact bundle's reference output for every row — a mixture
// (some rows from bundle A, some from B, i.e. a torn read across the swap)
// fails. Run under -race in CI, where the atomic-pointer registry and the
// per-batch bundle snapshot are also checked for data races.
func TestHotSwapNoTornReads(t *testing.T) {
	a, b, rows := fixtures(t)
	probe := rows[:8]
	wantA := adaptWith(t, a, probe, 0)
	wantB := adaptWith(t, b, probe, 0)
	if sameRows(wantA, wantB) {
		t.Fatal("fixture bundles are not distinguishable; the test cannot detect torn reads")
	}

	reg := NewRegistry(nil)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 16, MaxWait: 200 * time.Microsecond, Workers: 2})
	defer co.Close()

	stop := make(chan struct{})
	var swaps atomic.Int64
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		cur := b
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.Swap(cur)
			swaps.Add(1)
			if cur == a {
				cur = b
			} else {
				cur = a
			}
		}
	}()

	const clients = 4
	const iters = 200
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := co.Submit(context.Background(), probe, 0, false)
				if err != nil {
					t.Error(err)
					return
				}
				var want [][]float64
				switch res.BundleID {
				case a.ID:
					want = wantA
				case b.ID:
					want = wantB
				default:
					t.Errorf("response claims unknown bundle %q", res.BundleID)
					return
				}
				if !sameRows(res.Rows, want) {
					t.Errorf("torn read: response attributed to %q does not match that bundle's output", res.BundleID)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	if swaps.Load() < 2 {
		t.Skipf("only %d swaps happened; hammer did not overlap serving", swaps.Load())
	}
}
