package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"netdrift/internal/obs"
)

// AdaptRequest is the POST /v1/adapt payload.
type AdaptRequest struct {
	// Rows are raw (unscaled) target-domain feature rows.
	Rows [][]float64 `json:"rows"`
	// Seed scopes the generator noise for this request. Zero (the
	// default) pins the paper's M=1 inference draw; any other value gives
	// a reproducible per-row Gaussian draw via core.SampleSeed.
	Seed int64 `json:"seed,omitempty"`
	// Predict asks for downstream class probabilities when the bundle
	// ships a classifier.
	Predict bool `json:"predict,omitempty"`
}

// AdaptResponse is the POST /v1/adapt reply.
type AdaptResponse struct {
	BundleID    string      `json:"bundle_id"`
	Rows        [][]float64 `json:"rows"`
	Predictions [][]float64 `json:"predictions,omitempty"`
}

// Server wires the coalescer, registry, and observer into an http.Handler.
type Server struct {
	reg *Registry
	co  *Coalescer
	o   *obs.Observer
	mux *http.ServeMux
}

// NewServer builds the serving handler tree. o may be nil (metrics off,
// /metrics then reports an empty registry).
func NewServer(reg *Registry, co *Coalescer, o *obs.Observer) *Server {
	s := &Server{reg: reg, co: co, o: o, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/adapt", s.handleAdapt)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	reqLatency := s.o.FixedHistogram(obs.MetricServeReqLatency, obs.LatencyBuckets)
	outcome := func(kind string) {
		s.o.Counter(obs.MetricServeRequests, "outcome", kind).Inc()
		reqLatency.Observe(time.Since(start).Seconds())
	}
	var req AdaptRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		outcome("error")
		httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	if len(req.Rows) == 0 {
		outcome("error")
		httpError(w, http.StatusBadRequest, "rows must not be empty")
		return
	}
	res, err := s.co.Submit(r.Context(), req.Rows, req.Seed, req.Predict)
	switch {
	case err == nil:
	case errors.Is(err, r.Context().Err()) && r.Context().Err() != nil:
		outcome("canceled")
		httpError(w, http.StatusRequestTimeout, err.Error())
		return
	case errors.Is(err, ErrNoBundle):
		outcome("error")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrClosed):
		outcome("error")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	default:
		outcome("error")
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	outcome("ok")
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(AdaptResponse{
		BundleID:    res.BundleID,
		Rows:        res.Rows,
		Predictions: res.Predictions,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	type health struct {
		Status string `json:"status"`
		Bundle string `json:"bundle,omitempty"`
	}
	h := health{Status: "ok"}
	w.Header().Set("Content-Type", "application/json")
	if b := s.reg.Current(); b != nil {
		h.Bundle = b.ID
	} else {
		h.Status = "no-bundle"
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.o != nil && s.o.Registry != nil {
		s.o.Registry.WritePrometheus(w)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
