package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"netdrift/internal/obs"
)

// AdaptRequest is the POST /v1/adapt payload.
type AdaptRequest struct {
	// Rows are raw (unscaled) target-domain feature rows.
	Rows [][]float64 `json:"rows"`
	// Seed scopes the generator noise for this request. Zero (the
	// default) pins the paper's M=1 inference draw; any other value gives
	// a reproducible per-row Gaussian draw via core.SampleSeed.
	Seed int64 `json:"seed,omitempty"`
	// Predict asks for downstream class probabilities when the bundle
	// ships a classifier.
	Predict bool `json:"predict,omitempty"`
}

// AdaptResponse is the POST /v1/adapt reply.
type AdaptResponse struct {
	BundleID    string      `json:"bundle_id"`
	Rows        [][]float64 `json:"rows"`
	Predictions [][]float64 `json:"predictions,omitempty"`
	// Degraded marks a passthrough response: the adapter was unhealthy,
	// so Rows echoes the raw input features (see the degradation contract
	// in DESIGN §5e). Absent on the golden path, keeping healthy
	// responses byte-identical to pre-resilience serving.
	Degraded bool `json:"degraded,omitempty"`
}

// Endpoint names used as SLO tracker keys.
const (
	EndpointAdapt  = "/v1/adapt"
	EndpointHealth = "/healthz"
)

// Server wires the coalescer, registry, and observer into an http.Handler.
// Every request runs inside panic-recovery middleware: a handler panic
// (chaos-injected or real) is converted into a 500 without taking the
// process or the coalescer down.
type Server struct {
	reg *Registry
	co  *Coalescer
	o   *obs.Observer
	mux *http.ServeMux

	slo         *obs.SLOSet
	burnWindows []time.Duration

	ingest     IngestSink // nil: /v1/ingest answers 503
	ctrlStatus func() any // nil: no controller section on /v1/status
}

// NewServer builds the serving handler tree. o may be nil (metrics off,
// /metrics then reports an empty registry). The SLO layer starts with the
// default objective (250ms latency, 99.9% availability) over the default
// burn windows; ConfigureSLO overrides both before serving.
func NewServer(reg *Registry, co *Coalescer, o *obs.Observer) *Server {
	s := &Server{reg: reg, co: co, o: o, mux: http.NewServeMux()}
	s.ConfigureSLO(obs.SLO{})
	s.mux.HandleFunc("POST /v1/adapt", s.handleAdapt)
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/status", s.handleStatus)
	s.mux.HandleFunc("GET /debug/flightrec", s.handleFlightRec)
	return s
}

// ConfigureSLO replaces the SLO objective and burn-rate windows (defaults
// when none given). Call before serving starts; the tracker ring is sized
// to cover the longest window.
func (s *Server) ConfigureSLO(slo obs.SLO, burnWindows ...time.Duration) {
	if len(burnWindows) == 0 {
		burnWindows = obs.DefaultBurnWindows
	}
	longest := burnWindows[0]
	for _, w := range burnWindows {
		if w > longest {
			longest = w
		}
	}
	s.slo = obs.NewSLOSet(slo, longest, 0, nil)
	s.burnWindows = burnWindows
}

// SLOSet exposes the rolling RED trackers (for chaos wiring and tests).
func (s *Server) SLOSet() *obs.SLOSet { return s.slo }

// ServeHTTP implements http.Handler with panic recovery around the whole
// handler tree.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			s.o.Counter(obs.MetricServePanics, "site", "handler").Inc()
			s.o.FlightRecord(obs.FlightKindPanic, "handler", traceFromRequest(r), fmt.Sprintf("%v", rec))
			// If the handler already started the response this write is a
			// no-op; the client sees a truncated body, never a torn one.
			httpError(w, http.StatusInternalServerError, fmt.Sprintf("internal panic: %v", rec))
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// validateRows checks every row at the API boundary: feature width (when
// a bundle is installed) and finiteness, so malformed input fails with a
// field-level 400 instead of flowing into the kernels.
func (s *Server) validateRows(rows [][]float64) error {
	width := 0
	if b := s.reg.Current(); b != nil {
		width = b.Adapter.NumFeatures()
	}
	for i, row := range rows {
		if width > 0 && len(row) != width {
			return fmt.Errorf("rows[%d]: %d features, want %d", i, len(row), width)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("rows[%d][%d]: non-finite value", i, j)
			}
		}
	}
	return nil
}

func (s *Server) handleAdapt(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// Request span: adopt the caller's trace ID (X-Request-ID or
	// traceparent) or mint one, and echo it so the caller can correlate.
	// With spans disabled sp is nil and every span call below is a no-op —
	// the zero-allocation path guarded by TestAdaptDisabledTracingAllocs.
	sp := s.o.StartTrace("http.adapt", traceFromRequest(r))
	if t := sp.Trace(); t != "" {
		w.Header().Set(TraceHeader, t)
	}
	reqLatency := s.o.FixedHistogram(obs.MetricServeReqLatency, obs.LatencyBuckets)
	outcome := func(kind string) {
		s.o.Counter(obs.MetricServeRequests, "outcome", kind).Inc()
		secs := time.Since(start).Seconds()
		reqLatency.Observe(secs)
		// SLO accounting: shed, timeout, and server errors burn the error
		// budget; degraded passthrough and client cancels do not.
		s.slo.Observe(EndpointAdapt, secs, kind == "error" || kind == "timeout" || kind == "shed")
		sp.SetAttr("outcome", kind)
		sp.End()
	}
	// Content negotiation: a binary (NDRB) body is announced by
	// Content-Type; the response codec follows Accept, defaulting to the
	// request's codec. Error responses are always JSON — status codes are
	// codec-independent, and a failing client is better served by a
	// readable body.
	binaryReq := strings.Contains(r.Header.Get("Content-Type"), ContentTypeRows)
	binaryResp := wantBinaryResponse(r.Header.Get("Accept"), binaryReq)
	reqCodec := codecJSON
	if binaryReq {
		reqCodec = codecBinary
	}
	s.o.Counter(obs.MetricServeCodecRequests, "codec", reqCodec).Inc()

	var rows [][]float64
	var seed int64
	var predict bool
	pb := adaptBufPool.Get().(*adaptBuf)
	recycle := true
	defer func() {
		if recycle {
			adaptBufPool.Put(pb)
		}
	}()
	if binaryReq {
		body, err := pb.readBody(r.Body)
		s.o.FixedHistogram(obs.MetricServeRequestBytes, obs.SizeBuckets, "codec", codecBinary).
			Observe(float64(len(body)))
		if err != nil {
			outcome("error")
			httpError(w, http.StatusBadRequest, "read request: "+err.Error())
			return
		}
		rows, seed, predict, err = DecodeRowsRequest(body, &pb.rows)
		if err != nil {
			// Malformed wire input is a client error: it is rejected here,
			// before the coalescer, so it can never trip the serving
			// breakers (pinned by TestMalformedBinaryRequestDoesNotTripBreakers).
			outcome("error")
			httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
	} else {
		var req AdaptRequest
		cr := countingReader{r: r.Body}
		err := json.NewDecoder(&cr).Decode(&req)
		s.o.FixedHistogram(obs.MetricServeRequestBytes, obs.SizeBuckets, "codec", codecJSON).
			Observe(float64(cr.n))
		if err != nil {
			outcome("error")
			httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
			return
		}
		rows, seed, predict = req.Rows, req.Seed, req.Predict
	}
	if len(rows) == 0 {
		outcome("error")
		httpError(w, http.StatusBadRequest, "rows must not be empty")
		return
	}
	if err := s.validateRows(rows); err != nil {
		outcome("error")
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Chaos injection point for the handler itself. An injected panic
	// exercises the recovery middleware; an injected error maps to 500.
	if err := s.co.options().Faults.Fire(FaultSiteHandler); err != nil {
		outcome("error")
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	// Propagate a per-request deadline into the coalescer so a stuck or
	// slow batch cannot hold the connection open unboundedly.
	ctx := r.Context()
	if t := s.co.options().RequestTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	if binaryReq {
		// The decoded rows live in pb and are about to be handed to the
		// coalescer; from here pb may be recycled only when Submit's return
		// proves the executor is done with them (see adaptBuf).
		recycle = false
	}
	res, err := s.co.SubmitTraced(ctx, rows, seed, predict, sp)
	if binaryReq && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		recycle = true
	}
	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded):
		outcome("shed")
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, context.DeadlineExceeded):
		outcome("timeout")
		httpError(w, http.StatusRequestTimeout, err.Error())
		return
	case errors.Is(err, context.Canceled):
		outcome("canceled")
		httpError(w, http.StatusRequestTimeout, err.Error())
		return
	case errors.Is(err, ErrRowWidth):
		outcome("error")
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case errors.Is(err, ErrNoBundle), errors.Is(err, ErrClosed):
		outcome("error")
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, ErrExecPanic):
		outcome("error")
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	default:
		outcome("error")
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if res.Degraded {
		outcome("degraded")
		w.Header().Set(DegradedHeader, "true")
	} else {
		outcome("ok")
	}
	if binaryResp {
		pb.resp = AppendRowsResponse(pb.resp[:0], &res)
		w.Header().Set("Content-Type", ContentTypeRows)
		w.Write(pb.resp)
		s.o.FixedHistogram(obs.MetricServeResponseBytes, obs.SizeBuckets, "codec", codecBinary).
			Observe(float64(len(pb.resp)))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	cw := countingWriter{w: w}
	json.NewEncoder(&cw).Encode(AdaptResponse{
		BundleID:    res.BundleID,
		Rows:        res.Rows,
		Predictions: res.Predictions,
		Degraded:    res.Degraded,
	})
	s.o.FixedHistogram(obs.MetricServeResponseBytes, obs.SizeBuckets, "codec", codecJSON).
		Observe(float64(cw.n))
}

// Health statuses reported by /healthz.
const (
	HealthOK       = "ok"       // golden path: bundle installed, breakers closed
	HealthDegraded = "degraded" // serving passthrough or recovering (a breaker is not closed)
	HealthDown     = "down"     // nothing to serve: no bundle and no evidence one exists
)

// HealthReport is the /healthz body: overall status plus per-component
// detail for operators.
type HealthReport struct {
	Status     string `json:"status"`
	Bundle     string `json:"bundle,omitempty"`
	Components struct {
		BundleLoad BreakerStatus `json:"bundle_load"`
		Executor   BreakerStatus `json:"executor"`
		Admission  struct {
			QueuedRows int64 `json:"queued_rows"`
			MaxQueue   int   `json:"max_queue"`
		} `json:"admission"`
	} `json:"components"`
}

// Health assembles the current health report. Status is HealthDown (503)
// only when there is no bundle and the load breaker has seen nothing
// wrong — i.e. nothing was ever loaded; any open or half-open breaker
// reads HealthDegraded (200: passthrough is still serving).
func (s *Server) Health() HealthReport {
	var h HealthReport
	bundle := s.reg.Current()
	loadSt := s.reg.Breaker().Status()
	co := s.co.Status()
	if bundle != nil {
		h.Bundle = bundle.ID
	}
	h.Components.BundleLoad = loadSt
	h.Components.Executor = co.ExecBreaker
	h.Components.Admission.QueuedRows = co.QueuedRows
	h.Components.Admission.MaxQueue = co.MaxQueue
	switch {
	case bundle == nil && loadSt.State == BreakerClosed:
		h.Status = HealthDown
	case loadSt.State != BreakerClosed || co.ExecBreaker.State != BreakerClosed:
		h.Status = HealthDegraded
	default:
		h.Status = HealthOK
	}
	return h
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	start := time.Now()
	h := s.Health()
	w.Header().Set("Content-Type", "application/json")
	if h.Status == HealthDown {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(h)
	s.slo.Observe(EndpointHealth, time.Since(start).Seconds(), h.Status == HealthDown)
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if s.o != nil && s.o.Registry != nil {
		// Refresh the SLO gauges before exposition so burn rates on
		// /metrics reflect this instant's rolling windows.
		s.slo.Export(s.o.Registry, s.burnWindows...)
		s.o.Registry.WritePrometheus(w)
	}
}

// SLOStatus is the /v1/status view of the rolling SLO layer.
type SLOStatus struct {
	Objective obs.SLO                   `json:"objective"`
	Windows   []string                  `json:"windows"`
	Endpoints map[string][]obs.REDStats `json:"endpoints"`
}

// FlightStatus summarizes the flight recorder on /v1/status; the full ring
// is at /debug/flightrec.
type FlightStatus struct {
	Enabled  bool   `json:"enabled"`
	LastSeq  uint64 `json:"last_seq,omitempty"`
	Capacity int    `json:"capacity,omitempty"`
}

// StatusReport is the /v1/status body: health, SLO burn rates per endpoint
// and fault site, and flight-recorder occupancy in one operator view.
type StatusReport struct {
	Health HealthReport `json:"health"`
	SLO    SLOStatus    `json:"slo"`
	Flight FlightStatus `json:"flight_recorder"`
	Ctrl   any          `json:"ctrl,omitempty"`
}

// Status assembles the /v1/status report.
func (s *Server) Status() StatusReport {
	rep := StatusReport{Health: s.Health()}
	if s.ctrlStatus != nil {
		rep.Ctrl = s.ctrlStatus()
	}
	rep.SLO.Objective = s.slo.Objective()
	for _, wd := range s.burnWindows {
		rep.SLO.Windows = append(rep.SLO.Windows, wd.String())
	}
	rep.SLO.Endpoints = s.slo.Report(s.burnWindows...)
	if s.o != nil && s.o.Flight != nil {
		rep.Flight.Enabled = true
		rep.Flight.LastSeq = s.o.Flight.LastSeq()
		rep.Flight.Capacity = s.o.Flight.Capacity()
	}
	return rep
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Status())
}

func (s *Server) handleFlightRec(w http.ResponseWriter, _ *http.Request) {
	if s.o == nil || s.o.Flight == nil {
		httpError(w, http.StatusNotFound, "flight recorder disabled")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	s.o.Flight.WriteSnapshot(w, "debug")
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
