package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// stubSink is a controllable IngestSink for handler tests.
type stubSink struct {
	mu   sync.Mutex
	got  int
	fail error
}

func (s *stubSink) IngestRows(rows [][]float64, labels []int) (IngestSummary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		return IngestSummary{}, s.fail
	}
	s.got += len(rows)
	return IngestSummary{Accepted: len(rows), Phase: "idle", ReservoirRows: s.got}, nil
}

func postIngest(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url+EndpointIngest, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	var buf [1024]byte
	for {
		n, err := resp.Body.Read(buf[:])
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp, sb.String()
}

func TestIngestEndpoint(t *testing.T) {
	a, _, _ := fixtures(t)
	reg := NewRegistry(nil)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 8})
	defer co.Close()
	srv := NewServer(reg, co, nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	t.Run("no sink is 503", func(t *testing.T) {
		resp, body := postIngest(t, ts.URL, `{"rows":[[1,2,3,4]]}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d body %s, want 503", resp.StatusCode, body)
		}
	})

	sink := &stubSink{}
	srv.SetIngest(sink)

	t.Run("accepted batch", func(t *testing.T) {
		resp, body := postIngest(t, ts.URL, `{"rows":[[1,2,3,4],[5,6,7,8]],"labels":[0,1]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d body %s", resp.StatusCode, body)
		}
		var sum IngestSummary
		if err := json.Unmarshal([]byte(body), &sum); err != nil {
			t.Fatal(err)
		}
		if sum.Accepted != 2 || sum.ReservoirRows != 2 {
			t.Fatalf("summary = %+v", sum)
		}
	})
	t.Run("malformed JSON is 400", func(t *testing.T) {
		if resp, _ := postIngest(t, ts.URL, `{"rows": [[1,`); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d, want 400", resp.StatusCode)
		}
	})
	t.Run("sink rejection is 400", func(t *testing.T) {
		sink.fail = fmt.Errorf("%w: bad width", ErrIngestRejected)
		defer func() { sink.fail = nil }()
		resp, body := postIngest(t, ts.URL, `{"rows":[[1,2]]}`)
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body, "bad width") {
			t.Fatalf("status = %d body %s, want 400 + reason", resp.StatusCode, body)
		}
	})
	t.Run("sink internal error is 500", func(t *testing.T) {
		sink.fail = errors.New("reservoir on fire")
		defer func() { sink.fail = nil }()
		if resp, _ := postIngest(t, ts.URL, `{"rows":[[1,2,3,4]]}`); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status = %d, want 500", resp.StatusCode)
		}
	})
	t.Run("ctrl section on status", func(t *testing.T) {
		srv.SetCtrlStatus(func() any { return map[string]string{"phase": "watching"} })
		resp, err := http.Get(ts.URL + "/v1/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st struct {
			Ctrl map[string]string `json:"ctrl"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Ctrl["phase"] != "watching" {
			t.Fatalf("ctrl status section = %v", st.Ctrl)
		}
	})
}

// TestBreakerSurvivesPromoteRollbackRaces is the half-open race guard: a
// controller rollback (Registry.Swap) landing while a breaker load probe
// is in flight must neither wedge the breaker nor corrupt the registry.
// Run under -race.
func TestBreakerSurvivesPromoteRollbackRaces(t *testing.T) {
	a, b, _ := fixtures(t)
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	bad := filepath.Join(dir, "bad.json")
	if err := WriteBundleFile(good, b.ID, b.Adapter, b.Classifier); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(bad, []byte("{not a bundle"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg := NewRegistry(nil)
	reg.SetBreaker(NewBreaker("bundle", BreakerConfig{FailThreshold: 1, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 7}, nil))
	reg.Swap(a)

	// Promoters hammer good and bad loads (probes constantly moving the
	// breaker closed<->open<->half-open) while rollbackers swap the
	// incumbent back in, exactly what the controller watchdog does.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				path := good
				if i%2 == 0 {
					path = bad
				}
				_, err := reg.LoadFile(path)
				if err != nil && !errors.Is(err, ErrBreakerOpen) && path == good {
					t.Errorf("good load failed: %v", err)
					return
				}
			}
		}(i)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg.Swap(a) // rollback: reinstall the retained incumbent
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	if cur := reg.Current(); cur == nil || (cur.ID != a.ID && cur.ID != b.ID) {
		t.Fatalf("registry corrupted: %+v", cur)
	}
	// The breaker must not be wedged: after the chaos stops, a good load
	// must go through within a few backoff windows and close it.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := reg.LoadFile(good); err == nil {
			break
		} else if !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("good load after chaos: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker wedged: %+v", reg.Breaker().Status())
		}
		time.Sleep(time.Millisecond)
	}
	if st := reg.Breaker().Status(); st.State != BreakerClosed {
		t.Fatalf("breaker state after good load = %+v, want closed", st)
	}
	if got := reg.Current().ID; got != b.ID {
		t.Fatalf("current = %q, want %q after final good load", got, b.ID)
	}
}
