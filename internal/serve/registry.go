package serve

import (
	"errors"
	"sync"
	"sync/atomic"

	"netdrift/internal/obs"
)

// ErrNoBundle is returned when serving is attempted before any bundle has
// been installed.
var ErrNoBundle = errors.New("serve: no bundle installed")

// Registry holds the live serving bundle behind an atomic pointer. Readers
// (batch executors) take one snapshot of the pointer per micro-batch and
// run the whole batch against it, so a concurrent Swap can never produce a
// response stitched from two bundles. Swap is wait-free for readers: no
// lock is ever taken on the request path.
type Registry struct {
	current atomic.Pointer[Bundle]
	obs     *obs.Observer

	// Singleflight state for LoadFile: concurrent loads of the same path
	// share one disk read + deserialization instead of thundering.
	mu     sync.Mutex
	flight map[string]*loadCall
}

type loadCall struct {
	done   chan struct{}
	bundle *Bundle
	err    error
}

// NewRegistry returns an empty registry. obs may be nil.
func NewRegistry(o *obs.Observer) *Registry {
	return &Registry{obs: o, flight: make(map[string]*loadCall)}
}

// Current returns the live bundle, or nil before the first Swap.
func (r *Registry) Current() *Bundle { return r.current.Load() }

// Swap atomically installs b as the live bundle and returns the previous
// one (nil on first install). In-flight micro-batches that already
// snapshotted the old bundle finish against it.
func (r *Registry) Swap(b *Bundle) *Bundle {
	old := r.current.Swap(b)
	r.obs.Counter(obs.MetricServeSwaps).Inc()
	return old
}

// LoadFile reads a bundle from disk and installs it. Concurrent calls for
// the same path coalesce into one load (singleflight); every caller gets
// the same bundle or the same error. The bundle is swapped in only by the
// call that performed the read.
func (r *Registry) LoadFile(path string) (*Bundle, error) {
	r.mu.Lock()
	if c, ok := r.flight[path]; ok {
		r.mu.Unlock()
		<-c.done
		return c.bundle, c.err
	}
	c := &loadCall{done: make(chan struct{})}
	r.flight[path] = c
	r.mu.Unlock()

	c.bundle, c.err = LoadBundleFile(path)
	r.obs.Counter(obs.MetricServeBundleLoads).Inc()
	if c.err == nil {
		r.Swap(c.bundle)
	}

	r.mu.Lock()
	delete(r.flight, path)
	r.mu.Unlock()
	close(c.done)
	return c.bundle, c.err
}
