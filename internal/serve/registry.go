package serve

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"netdrift/internal/fault"
	"netdrift/internal/obs"
)

// ErrNoBundle is returned when serving is attempted before any bundle has
// been installed.
var ErrNoBundle = errors.New("serve: no bundle installed")

// ErrBreakerOpen is returned by LoadFile while the bundle-load circuit
// breaker is open: a recently failing bundle file is not re-read or
// re-parsed until the breaker's backoff admits a half-open probe.
var ErrBreakerOpen = errors.New("serve: bundle load breaker open")

// Fault-injection site names threaded through the serving stack (see
// internal/fault). Arming them in an Injector makes chaos runs hit the
// exact production code paths.
const (
	// FaultSiteLoad fires inside Registry.LoadFile, before the disk read.
	FaultSiteLoad = "bundle.load"
	// FaultSiteExec fires inside the coalescer's batch executor, before
	// the adaptation kernels run.
	FaultSiteExec = "batch.exec"
	// FaultSiteHandler fires inside the /v1/adapt HTTP handler, after
	// decoding but before Submit.
	FaultSiteHandler = "http.adapt"
)

func init() {
	fault.RegisterSite(FaultSiteLoad, "Registry.LoadFile, before the disk read")
	fault.RegisterSite(FaultSiteExec, "coalescer batch executor, before the adaptation kernels")
	fault.RegisterSite(FaultSiteHandler, "/v1/adapt handler, after decode, before Submit")
}

// Registry holds the live serving bundle behind an atomic pointer. Readers
// (batch executors) take one snapshot of the pointer per micro-batch and
// run the whole batch against it, so a concurrent Swap can never produce a
// response stitched from two bundles. Swap is wait-free for readers: no
// lock is ever taken on the request path.
type Registry struct {
	current atomic.Pointer[Bundle]
	obs     *obs.Observer
	breaker *Breaker        // nil: loads are never broken
	faults  *fault.Injector // nil: no chaos

	// Singleflight state for LoadFile: concurrent loads of the same path
	// share one disk read + deserialization instead of thundering.
	mu     sync.Mutex
	flight map[string]*loadCall
}

type loadCall struct {
	done   chan struct{}
	bundle *Bundle
	err    error
}

// NewRegistry returns an empty registry. obs may be nil.
func NewRegistry(o *obs.Observer) *Registry {
	return &Registry{obs: o, flight: make(map[string]*loadCall)}
}

// SetBreaker installs a circuit breaker around LoadFile. Call before
// serving starts; nil disables breaking.
func (r *Registry) SetBreaker(b *Breaker) { r.breaker = b }

// Breaker returns the load breaker (nil if none installed).
func (r *Registry) Breaker() *Breaker { return r.breaker }

// SetFaults arms fault injection for bundle loading (site FaultSiteLoad).
func (r *Registry) SetFaults(f *fault.Injector) { r.faults = f }

// Current returns the live bundle, or nil before the first Swap.
func (r *Registry) Current() *Bundle { return r.current.Load() }

// Swap atomically installs b as the live bundle and returns the previous
// one (nil on first install). In-flight micro-batches that already
// snapshotted the old bundle finish against it.
func (r *Registry) Swap(b *Bundle) *Bundle {
	old := r.current.Swap(b)
	r.obs.Counter(obs.MetricServeSwaps).Inc()
	id := ""
	if b != nil {
		id = b.ID
	}
	r.obs.FlightRecord(obs.FlightKindSwap, "registry", "", id)
	return old
}

// LoadFile reads a bundle from disk and installs it. Concurrent calls for
// the same path coalesce into one load (singleflight); every caller gets
// the same bundle or the same error. The bundle is swapped in only by the
// call that performed the read.
//
// With a breaker installed, consecutive load failures trip it open and
// later calls fail fast with ErrBreakerOpen — a corrupt or missing file
// is re-read only when the jittered backoff admits a half-open probe. A
// failed load never disturbs the currently installed bundle.
func (r *Registry) LoadFile(path string) (*Bundle, error) {
	r.mu.Lock()
	if c, ok := r.flight[path]; ok {
		// Joining an in-flight load is free regardless of breaker state
		// (it consumes no extra disk reads or probe slots).
		r.mu.Unlock()
		<-c.done
		return c.bundle, c.err
	}
	if !r.breaker.Allow() {
		r.mu.Unlock()
		return nil, ErrBreakerOpen
	}
	c := &loadCall{done: make(chan struct{})}
	r.flight[path] = c
	r.mu.Unlock()

	func() {
		// A panic during load (chaos-injected or a corrupt-payload decode
		// bug) must not strand the singleflight entry or kill the caller.
		defer func() {
			if rec := recover(); rec != nil {
				r.obs.Counter(obs.MetricServePanics, "site", "loader").Inc()
				c.err = fmt.Errorf("serve: bundle load panic: %v", rec)
			}
		}()
		if c.err = r.faults.Fire(FaultSiteLoad); c.err == nil {
			c.bundle, c.err = LoadBundleFile(path)
		}
	}()
	r.obs.Counter(obs.MetricServeBundleLoads).Inc()
	if c.err == nil {
		r.breaker.Success()
		r.Swap(c.bundle)
	} else {
		r.breaker.Fail()
	}

	r.mu.Lock()
	delete(r.flight, path)
	r.mu.Unlock()
	close(c.done)
	return c.bundle, c.err
}
