package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"
)

// EndpointIngest is the SLO tracker key for the telemetry ingest path.
const EndpointIngest = "/v1/ingest"

// ErrIngestRejected is the sentinel an IngestSink wraps for client-side
// rejections (bad width, non-finite values, missing labels) — the handler
// maps it to 400; any other sink error is a 500.
var ErrIngestRejected = errors.New("serve: ingest rejected")

// IngestRequest is the POST /v1/ingest payload: raw target-domain
// telemetry rows, optionally labelled. Labels drive the controller's
// few-shot reservoir; label -1 marks an unlabelled row (drift monitoring
// only). Omitting labels entirely means all rows are unlabelled.
type IngestRequest struct {
	Rows   [][]float64 `json:"rows"`
	Labels []int       `json:"labels,omitempty"`
}

// IngestSummary is the POST /v1/ingest reply: what the sink did with the
// batch and where the drift-response loop stands.
type IngestSummary struct {
	Accepted      int    `json:"accepted"`
	Phase         string `json:"phase,omitempty"`
	DriftStreak   int    `json:"drift_streak,omitempty"`
	ReservoirRows int    `json:"reservoir_rows,omitempty"`
}

// IngestSink consumes telemetry batches — implemented by ctrl.Controller.
// Implementations must be safe for concurrent calls.
type IngestSink interface {
	IngestRows(rows [][]float64, labels []int) (IngestSummary, error)
}

// SetIngest wires the drift-controller ingest sink behind POST /v1/ingest.
// Call before serving starts; nil (the default) makes the endpoint answer
// 503.
func (s *Server) SetIngest(sink IngestSink) { s.ingest = sink }

// SetCtrlStatus adds a drift-controller section to /v1/status. fn is
// called per status request; nil omits the section.
func (s *Server) SetCtrlStatus(fn func() any) { s.ctrlStatus = fn }

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := func(isErr bool) {
		s.slo.Observe(EndpointIngest, time.Since(start).Seconds(), isErr)
	}
	if s.ingest == nil {
		outcome(true)
		httpError(w, http.StatusServiceUnavailable, "no drift controller attached (start with -ctrl)")
		return
	}
	var req IngestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		outcome(true)
		httpError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	sum, err := s.ingest.IngestRows(req.Rows, req.Labels)
	switch {
	case errors.Is(err, ErrIngestRejected):
		outcome(true)
		httpError(w, http.StatusBadRequest, err.Error())
		return
	case err != nil:
		outcome(true)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	outcome(false)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(sum)
}
