package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"netdrift/internal/core"
	"netdrift/internal/fault"
	"netdrift/internal/models"
	"netdrift/internal/nn"
	"netdrift/internal/obs"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("serve: coalescer closed")

// ErrOverloaded is returned by Submit when the admission queue is full;
// the HTTP layer maps it to 429 + Retry-After instead of queueing
// unboundedly.
var ErrOverloaded = errors.New("serve: overloaded, request shed")

// ErrExecPanic wraps a panic recovered inside a batch executor. The
// worker loop survives; the requests in the panicked group fail with
// this error (HTTP 500) and the executor breaker records a failure.
var ErrExecPanic = errors.New("serve: executor panic")

// ErrRowWidth is wrapped by per-request feature-width failures detected
// at batch pickup; the HTTP layer maps it to 400.
var ErrRowWidth = errors.New("serve: row width mismatch")

// errNonFinite marks NaN/Inf detected in adapted output — an unhealthy
// generator, handled by degrading to passthrough.
var errNonFinite = errors.New("serve: non-finite value in adapted output")

// Options tune the coalescer. Zero values select the defaults.
type Options struct {
	// MaxBatch is the flush threshold in rows: the dispatcher flushes as
	// soon as pending requests reach this many rows. Default 32.
	MaxBatch int
	// MaxWait bounds the queueing delay of a lone request: a pending
	// batch is flushed this long after its first row arrived even if it
	// is not full. Default 2ms.
	MaxWait time.Duration
	// Workers is the number of batch executors, each owning its private
	// adaptation scratch. Default 1.
	Workers int
	// MaxQueue bounds the admission queue in rows: a Submit that would
	// push the queued (not yet executing) rows past this is shed with
	// ErrOverloaded instead of waiting. Default 4096.
	MaxQueue int
	// RequestTimeout is the per-request deadline the HTTP handler applies
	// before Submit, propagated into the coalescer via the request
	// context. Zero disables it.
	RequestTimeout time.Duration
	// Breaker tunes the executor circuit breaker that drives degraded
	// passthrough mode.
	Breaker BreakerConfig
	// Faults arms chaos injection at FaultSiteExec. Nil in production.
	Faults *fault.Injector
	// Obs receives serving metrics. May be nil.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 4096
	}
	return o
}

// Result is one request's outcome. Rows and Predictions are private copies
// owned by the caller.
type Result struct {
	BundleID    string
	Rows        [][]float64
	Predictions [][]float64 // nil unless requested and the bundle has a classifier
	// Degraded marks a passthrough response: the adaptation machinery was
	// unhealthy (breaker open, batch failure, or non-finite generator
	// output), so Rows echoes the raw input features unadapted.
	Degraded bool
}

// request is one submitted unit riding through the coalescer. done is
// buffered so the executor never blocks handing back a result, even if the
// submitter already gave up on its context. span carries the submitter's
// request span (nil when tracing is disabled) across the coalescer
// boundary so the batch executor can annotate it with queue wait and
// batch membership — the link that keeps a request's identity visible
// after it dissolves into a micro-batch.
type request struct {
	ctx      context.Context
	rows     [][]float64
	seeds    []int64
	predict  bool
	span     *obs.Span
	enqueued time.Time
	done     chan reqOutcome
}

type reqOutcome struct {
	res Result
	err error
}

// Coalescer fans concurrent Adapt requests into micro-batches: requests
// accumulate until MaxBatch rows are pending or the oldest has waited
// MaxWait, then the whole group runs as few generator forwards as possible
// on one worker. Per-row noise seeds are derived from each request's seed
// before batching, so responses are bit-identical to unbatched serving
// (see core.AdaptBatch).
//
// The resilience layer on top: admission is bounded by MaxQueue rows
// (excess load is shed, never queued), executor panics are recovered
// without killing the worker loop, and a circuit breaker around batch
// execution switches the coalescer into degraded passthrough — raw rows
// echoed with Result.Degraded set — instead of failing every request
// while the adapter is unhealthy. One half-open probe batch after the
// faults stop restores the bit-identical golden path.
type Coalescer struct {
	opts Options
	reg  *Registry

	reqCh  chan *request
	workCh chan []*request

	mu         sync.Mutex
	closed     bool
	submitters sync.WaitGroup // in-flight Submit calls, counted under mu
	dispatcher sync.WaitGroup
	workers    sync.WaitGroup

	queuedRows  atomic.Int64 // rows admitted but not yet picked up by a worker
	execBreaker *Breaker

	queueDepth *obs.Gauge
	shed       *obs.Counter
	degraded   *obs.Counter
	panics     *obs.Counter
}

// NewCoalescer starts the dispatcher and worker pool serving from reg.
func NewCoalescer(reg *Registry, opts Options) *Coalescer {
	opts = opts.withDefaults()
	c := &Coalescer{
		opts:        opts,
		reg:         reg,
		reqCh:       make(chan *request, opts.MaxQueue),
		workCh:      make(chan []*request, opts.Workers),
		execBreaker: NewBreaker("executor", opts.Breaker, opts.Obs),
		queueDepth:  opts.Obs.Gauge(obs.MetricServeQueueDepth),
		shed:        opts.Obs.Counter(obs.MetricServeShed),
		degraded:    opts.Obs.Counter(obs.MetricServeDegraded),
		panics:      opts.Obs.Counter(obs.MetricServePanics, "site", "executor"),
	}
	c.dispatcher.Add(1)
	go c.dispatch()
	c.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go c.work()
	}
	return c
}

// Status is the health snapshot of the serving pipeline behind /healthz.
type Status struct {
	ExecBreaker BreakerStatus `json:"exec_breaker"`
	QueuedRows  int64         `json:"queued_rows"`
	MaxQueue    int           `json:"max_queue"`
}

// Status snapshots the executor breaker and admission queue.
func (c *Coalescer) Status() Status {
	return Status{
		ExecBreaker: c.execBreaker.Status(),
		QueuedRows:  c.queuedRows.Load(),
		MaxQueue:    c.opts.MaxQueue,
	}
}

// options exposes the effective options to the HTTP layer.
func (c *Coalescer) options() Options { return c.opts }

// Submit queues rows for adaptation and blocks until the batch containing
// them completes, ctx is done, or the coalescer closes. Row i's noise is
// seeded with core.SampleSeed(seed, i) regardless of how the request is
// batched or split. When the queued backlog exceeds MaxQueue rows the
// request is shed immediately with ErrOverloaded.
func (c *Coalescer) Submit(ctx context.Context, rows [][]float64, seed int64, predict bool) (Result, error) {
	return c.SubmitTraced(ctx, rows, seed, predict, nil)
}

// SubmitTraced is Submit carrying the caller's request span (nil when
// tracing is disabled) through the coalescer, so the batch executor can
// annotate it with queue wait, batch size, and the batch span that served
// it. The span is not ended here — the caller owns its lifecycle.
func (c *Coalescer) SubmitTraced(ctx context.Context, rows [][]float64, seed int64, predict bool, span *obs.Span) (Result, error) {
	if len(rows) == 0 {
		return Result{}, fmt.Errorf("serve: empty request")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Result{}, ErrClosed
	}
	// The submitters group covers only the enqueue: Close may not close
	// reqCh until every accepted Submit has finished sending, but it must
	// not wait on result delivery (results need Close's own drain flush).
	c.submitters.Add(1)
	c.mu.Unlock()

	// Admission control: shed instead of queueing past MaxQueue rows. The
	// counter is released when a worker picks the rows up (runGroup), so
	// it bounds waiting work, not in-flight work.
	n := int64(len(rows))
	if c.queuedRows.Add(n) > int64(c.opts.MaxQueue) {
		c.queuedRows.Add(-n)
		c.submitters.Done()
		c.shed.Inc()
		c.opts.Obs.FlightRecord(obs.FlightKindShed, "coalescer", span.Trace(),
			"queue full")
		return Result{}, ErrOverloaded
	}

	seeds := make([]int64, len(rows))
	for i := range seeds {
		seeds[i] = core.SampleSeed(seed, i)
	}
	req := &request{
		ctx:      ctx,
		rows:     rows,
		seeds:    seeds,
		predict:  predict,
		span:     span,
		enqueued: time.Now(),
		done:     make(chan reqOutcome, 1),
	}
	enqueued := false
	select {
	case c.reqCh <- req:
		enqueued = true
		c.queueDepth.Add(1)
	case <-ctx.Done():
		c.queuedRows.Add(-n)
	}
	c.submitters.Done()
	if !enqueued {
		return Result{}, ctx.Err()
	}
	// Once enqueued the request always gets an outcome (done is buffered,
	// so the executor never blocks on an abandoned waiter), but a caller
	// whose context dies while queued or mid-batch gets unblocked
	// immediately.
	select {
	case out := <-req.done:
		return out.res, out.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Close flushes and serves every queued request, then stops the dispatcher
// and workers. Submit calls that began before Close complete normally;
// later ones fail with ErrClosed.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.submitters.Wait() // every accepted Submit has now sent on reqCh
	close(c.reqCh)
	c.dispatcher.Wait()
	c.workers.Wait()
}

// dispatch is the single goroutine that groups requests into batches. A
// batch flushes when its pending rows reach MaxBatch, when the oldest
// request has waited MaxWait, or at shutdown.
func (c *Coalescer) dispatch() {
	defer c.dispatcher.Done()
	var (
		pending []*request
		rows    int
		timer   *time.Timer
		timeout <-chan time.Time
	)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		c.workCh <- pending
		pending = nil
		rows = 0
		if timer != nil {
			timer.Stop()
		}
		timeout = nil
	}
	for {
		select {
		case req, ok := <-c.reqCh:
			if !ok {
				flush()
				close(c.workCh)
				return
			}
			c.queueDepth.Add(-1)
			// A request that would overflow the pending batch flushes it
			// first; an oversized request then forms its own batch and is
			// chunked by the executor.
			if rows > 0 && rows+len(req.rows) > c.opts.MaxBatch {
				flush()
			}
			pending = append(pending, req)
			rows += len(req.rows)
			if rows >= c.opts.MaxBatch {
				flush()
			} else if timeout == nil {
				if timer == nil {
					timer = time.NewTimer(c.opts.MaxWait)
				} else {
					timer.Reset(c.opts.MaxWait)
				}
				timeout = timer.C
			}
		case <-timeout:
			flush()
		}
	}
}

// work executes flushed batches. Each worker owns its scratch; the bundle
// pointer is snapshotted once per batch so every response in it comes
// wholly from one artifact even across a concurrent hot-swap.
func (c *Coalescer) work() {
	defer c.workers.Done()
	var adaptScr core.AdaptScratch
	var mlpScr models.MLPScratch
	o := c.opts.Obs
	m := &workerMetrics{
		batchLatency: o.FixedHistogram(obs.MetricServeBatchLatency, obs.LatencyBuckets),
		batchSize:    o.FixedHistogram(obs.MetricServeBatchSize, obs.BatchSizeBuckets),
		batches:      o.Counter(obs.MetricServeBatches),
		rowsTotal:    o.Counter(obs.MetricServeRows),
	}
	for group := range c.workCh {
		c.runGroup(group, &adaptScr, &mlpScr, m)
	}
}

type workerMetrics struct {
	batchLatency, batchSize *obs.FixedHistogram
	batches, rowsTotal      *obs.Counter
}

func (c *Coalescer) runGroup(group []*request, adaptScr *core.AdaptScratch, mlpScr *models.MLPScratch, m *workerMetrics) {
	// The group is leaving the admission queue: release its rows.
	var groupRows int64
	for _, req := range group {
		groupRows += int64(len(req.rows))
	}
	c.queuedRows.Add(-groupRows)
	// Drop requests whose submitter already gave up; they still get an
	// outcome so Submit never leaks a waiter.
	live := group[:0]
	for _, req := range group {
		if err := req.ctx.Err(); err != nil {
			req.done <- reqOutcome{err: err}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	bundle := c.reg.Current()
	if bundle == nil {
		// No artifact at all: if loading is circuit-broken there is a
		// bundle that should exist but can't be trusted — degrade to
		// passthrough. Before any load was ever attempted, fail plainly.
		if b := c.reg.Breaker(); b != nil && b.Status().State != BreakerClosed {
			c.degrade(live, "")
			return
		}
		c.failGroup(live, ErrNoBundle)
		return
	}
	// Per-request input-shape guard: a malformed direct Submit must fail
	// its own request, not poison the batch or trip the breaker.
	width := bundle.Adapter.NumFeatures()
	shaped := live[:0]
	for _, req := range live {
		if badRow := rowWidthMismatch(req.rows, width); badRow >= 0 {
			req.done <- reqOutcome{err: fmt.Errorf("%w: rows[%d] has %d features, bundle %q expects %d",
				ErrRowWidth, badRow, len(req.rows[badRow]), bundle.ID, width)}
			continue
		}
		shaped = append(shaped, req)
	}
	live = shaped
	if len(live) == 0 {
		return
	}
	// The tracing link across the coalescer boundary: one batch span per
	// executed group, carrying every member request's trace ID, while each
	// request span learns how long it queued and which batch served it.
	// With tracing disabled every span here is nil and this costs a few
	// predictable branches, no allocation.
	batchSpan := c.startBatchSpan(live)
	if !c.execBreaker.Allow() {
		batchSpan.SetAttr("outcome", "degraded")
		batchSpan.SetAttr("reason", "breaker-open")
		batchSpan.End()
		c.degrade(live, bundle.ID)
		return
	}
	outRows, outPreds, err := c.execute(bundle, live, adaptScr, mlpScr, m)
	if err == nil {
		batchSpan.SetAttr("outcome", "ok")
	} else {
		batchSpan.SetAttr("outcome", "error")
		batchSpan.SetAttr("error", err.Error())
	}
	batchSpan.End()
	switch {
	case err == nil:
		c.execBreaker.Success()
	case errors.Is(err, errGroupCanceled):
		// Every submitter gave up mid-batch; not an adapter failure.
		c.failGroup(live, err)
		return
	case errors.Is(err, ErrExecPanic):
		// A panicked executor cannot vouch for any partial output: fail
		// the group (HTTP 500), count the breaker failure, keep serving.
		c.execBreaker.Fail()
		c.failGroup(live, err)
		return
	default:
		// Batch error or non-finite output: the adapter is unhealthy but
		// the raw features still carry signal — degrade, don't fail.
		c.execBreaker.Fail()
		c.degrade(live, bundle.ID)
		return
	}
	m.rowsTotal.Add(float64(len(outRows)))
	// Scatter the flat results back to their requests.
	off := 0
	for _, req := range live {
		n := len(req.rows)
		res := Result{BundleID: bundle.ID, Rows: outRows[off : off+n : off+n]}
		if req.predict && outPreds != nil {
			res.Predictions = outPreds[off : off+n : off+n]
		}
		req.done <- reqOutcome{res: res}
		off += n
	}
}

// startBatchSpan opens the executor-side span for one picked-up group and
// stitches the cross-boundary links: the batch span is a child of the
// first traced member (inheriting its trace ID) and carries every member's
// trace and span ID as attrs; each member span learns its queue wait, the
// total batch row count, and the batch span that served it. Returns nil —
// and does no work at all — when no member is traced.
func (c *Coalescer) startBatchSpan(live []*request) *obs.Span {
	var first *obs.Span
	for _, req := range live {
		if req.span != nil {
			first = req.span
			break
		}
	}
	if first == nil {
		return nil
	}
	sp := first.Child("serve.batch")
	var rows int
	for _, req := range live {
		rows += len(req.rows)
	}
	var traces, members strings.Builder
	n := 0
	batchID := strconv.FormatUint(sp.ID(), 10)
	batchRows := strconv.Itoa(rows)
	for _, req := range live {
		if req.span == nil {
			continue
		}
		if n > 0 {
			traces.WriteByte(',')
			members.WriteByte(',')
		}
		traces.WriteString(req.span.Trace())
		members.WriteString(strconv.FormatUint(req.span.ID(), 10))
		n++
		req.span.SetAttr("queue_wait_us", strconv.FormatInt(time.Since(req.enqueued).Microseconds(), 10))
		req.span.SetAttr("batch_span", batchID)
		req.span.SetAttr("batch_rows", batchRows)
	}
	sp.SetAttr("requests", strconv.Itoa(len(live)))
	sp.SetAttr("rows", batchRows)
	sp.SetAttr("request_ids", traces.String())
	sp.SetAttr("member_spans", members.String())
	return sp
}

// errGroupCanceled aborts a batch whose submitters have all given up.
var errGroupCanceled = errors.New("serve: every request in batch canceled")

// execute runs one batch group end to end, returning defensive copies of
// the adapted rows (and predictions when requested). Any panic — from
// chaos injection or a kernel bug — is recovered into ErrExecPanic so the
// worker loop survives. Adapted output is scanned for NaN/Inf, which is
// reported as an error (the degradation trigger) rather than served.
func (c *Coalescer) execute(bundle *Bundle, live []*request, adaptScr *core.AdaptScratch,
	mlpScr *models.MLPScratch, m *workerMetrics) (outRows, outPreds [][]float64, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			c.panics.Inc()
			outRows, outPreds = nil, nil
			err = fmt.Errorf("%w: %v", ErrExecPanic, rec)
			// Black-box the incident: the ring captures the panic in its
			// timeline, and an armed recorder dumps itself to disk so the
			// lead-up survives even if the process dies next.
			c.opts.Obs.FlightRecord(obs.FlightKindPanic, "executor", "", err.Error())
			c.opts.Obs.FlightSnapshot("executor-panic")
		}
	}()
	if err := c.opts.Faults.Fire(FaultSiteExec); err != nil {
		return nil, nil, err
	}
	start := time.Now()
	// Stitch the group into one flat row list, then run it in chunks of
	// MaxBatch (a single oversized request spans several chunks).
	var allRows [][]float64
	var allSeeds []int64
	for _, req := range live {
		allRows = append(allRows, req.rows...)
		allSeeds = append(allSeeds, req.seeds...)
	}
	wantPredict := bundle.Classifier != nil
	if wantPredict {
		wantPredict = false
		for _, req := range live {
			if req.predict {
				wantPredict = true
				break
			}
		}
	}
	outRows = make([][]float64, 0, len(allRows))
	for lo := 0; lo < len(allRows); lo += c.opts.MaxBatch {
		// A long split (oversized request, slow executor) re-checks the
		// submitters between chunks: if every waiter is gone, stop
		// burning compute on undeliverable results.
		if lo > 0 && allCanceled(live) {
			return nil, nil, errGroupCanceled
		}
		hi := lo + c.opts.MaxBatch
		if hi > len(allRows) {
			hi = len(allRows)
		}
		adapted, err := bundle.Adapter.AdaptBatch(allRows[lo:hi], allSeeds[lo:hi], adaptScr)
		if err != nil {
			return nil, nil, err
		}
		if !finiteTensor(adapted) {
			return nil, nil, errNonFinite
		}
		var preds *nn.Tensor
		if wantPredict {
			preds, err = bundle.Classifier.PredictProbaT(adapted, mlpScr)
			if err != nil {
				return nil, nil, err
			}
		}
		// The scratch tensors are reused next chunk: copy results out.
		for i := 0; i < adapted.Rows(); i++ {
			outRows = append(outRows, append([]float64(nil), adapted.Row(i)...))
			if preds != nil {
				outPreds = append(outPreds, append([]float64(nil), preds.Row(i)...))
			}
		}
		m.batchSize.Observe(float64(hi - lo))
		m.batches.Inc()
	}
	m.batchLatency.Observe(time.Since(start).Seconds())
	return outRows, outPreds, nil
}

// degrade serves the group in passthrough mode: each request gets its raw
// input rows echoed back with Degraded set, so clients keep receiving
// feature vectors (the invariant-carrying raw signal) while the adapter
// heals. bundleID may be empty when no bundle is installed.
func (c *Coalescer) degrade(live []*request, bundleID string) {
	for _, req := range live {
		rows := make([][]float64, len(req.rows))
		for i, r := range req.rows {
			rows[i] = append([]float64(nil), r...)
		}
		c.degraded.Inc()
		c.opts.Obs.FlightRecord(obs.FlightKindDegrade, "coalescer", req.span.Trace(), bundleID)
		req.done <- reqOutcome{res: Result{BundleID: bundleID, Rows: rows, Degraded: true}}
	}
}

func (c *Coalescer) failGroup(live []*request, err error) {
	for _, req := range live {
		req.done <- reqOutcome{err: err}
	}
}

// rowWidthMismatch returns the index of the first row whose length is not
// width, or -1.
func rowWidthMismatch(rows [][]float64, width int) int {
	for i, r := range rows {
		if len(r) != width {
			return i
		}
	}
	return -1
}

func allCanceled(live []*request) bool {
	for _, req := range live {
		if req.ctx.Err() == nil {
			return false
		}
	}
	return true
}

// finiteTensor reports whether every element of t is finite.
func finiteTensor(t *nn.Tensor) bool {
	for i := 0; i < t.Rows(); i++ {
		for _, v := range t.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
		}
	}
	return true
}
