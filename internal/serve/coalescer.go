package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"netdrift/internal/core"
	"netdrift/internal/models"
	"netdrift/internal/nn"
	"netdrift/internal/obs"
)

// ErrClosed is returned by Submit after Close has begun.
var ErrClosed = errors.New("serve: coalescer closed")

// Options tune the coalescer. Zero values select the defaults.
type Options struct {
	// MaxBatch is the flush threshold in rows: the dispatcher flushes as
	// soon as pending requests reach this many rows. Default 32.
	MaxBatch int
	// MaxWait bounds the queueing delay of a lone request: a pending
	// batch is flushed this long after its first row arrived even if it
	// is not full. Default 2ms.
	MaxWait time.Duration
	// Workers is the number of batch executors, each owning its private
	// adaptation scratch. Default 1.
	Workers int
	// Obs receives serving metrics. May be nil.
	Obs *obs.Observer
}

func (o Options) withDefaults() Options {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Result is one request's outcome. Rows and Predictions are private copies
// owned by the caller.
type Result struct {
	BundleID    string
	Rows        [][]float64
	Predictions [][]float64 // nil unless requested and the bundle has a classifier
}

// request is one submitted unit riding through the coalescer. done is
// buffered so the executor never blocks handing back a result, even if the
// submitter already gave up on its context.
type request struct {
	ctx     context.Context
	rows    [][]float64
	seeds   []int64
	predict bool
	done    chan reqOutcome
}

type reqOutcome struct {
	res Result
	err error
}

// Coalescer fans concurrent Adapt requests into micro-batches: requests
// accumulate until MaxBatch rows are pending or the oldest has waited
// MaxWait, then the whole group runs as few generator forwards as possible
// on one worker. Per-row noise seeds are derived from each request's seed
// before batching, so responses are bit-identical to unbatched serving
// (see core.AdaptBatch).
type Coalescer struct {
	opts Options
	reg  *Registry

	reqCh  chan *request
	workCh chan []*request

	mu         sync.Mutex
	closed     bool
	submitters sync.WaitGroup // in-flight Submit calls, counted under mu
	dispatcher sync.WaitGroup
	workers    sync.WaitGroup

	queueDepth *obs.Gauge
}

// NewCoalescer starts the dispatcher and worker pool serving from reg.
func NewCoalescer(reg *Registry, opts Options) *Coalescer {
	opts = opts.withDefaults()
	c := &Coalescer{
		opts:       opts,
		reg:        reg,
		reqCh:      make(chan *request, opts.MaxBatch),
		workCh:     make(chan []*request, opts.Workers),
		queueDepth: opts.Obs.Gauge(obs.MetricServeQueueDepth),
	}
	c.dispatcher.Add(1)
	go c.dispatch()
	c.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go c.work()
	}
	return c
}

// Submit queues rows for adaptation and blocks until the batch containing
// them completes, ctx is done, or the coalescer closes. Row i's noise is
// seeded with core.SampleSeed(seed, i) regardless of how the request is
// batched or split.
func (c *Coalescer) Submit(ctx context.Context, rows [][]float64, seed int64, predict bool) (Result, error) {
	if len(rows) == 0 {
		return Result{}, fmt.Errorf("serve: empty request")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Result{}, ErrClosed
	}
	// The submitters group covers only the enqueue: Close may not close
	// reqCh until every accepted Submit has finished sending, but it must
	// not wait on result delivery (results need Close's own drain flush).
	c.submitters.Add(1)
	c.mu.Unlock()

	seeds := make([]int64, len(rows))
	for i := range seeds {
		seeds[i] = core.SampleSeed(seed, i)
	}
	req := &request{
		ctx:     ctx,
		rows:    rows,
		seeds:   seeds,
		predict: predict,
		done:    make(chan reqOutcome, 1),
	}
	enqueued := false
	select {
	case c.reqCh <- req:
		enqueued = true
		c.queueDepth.Add(1)
	case <-ctx.Done():
	}
	c.submitters.Done()
	if !enqueued {
		return Result{}, ctx.Err()
	}
	// Once enqueued the request always gets an outcome (done is buffered,
	// so the executor never blocks on an abandoned waiter), but a caller
	// whose context dies while queued gets unblocked immediately.
	select {
	case out := <-req.done:
		return out.res, out.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Close flushes and serves every queued request, then stops the dispatcher
// and workers. Submit calls that began before Close complete normally;
// later ones fail with ErrClosed.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	c.submitters.Wait() // every accepted Submit has now sent on reqCh
	close(c.reqCh)
	c.dispatcher.Wait()
	c.workers.Wait()
}

// dispatch is the single goroutine that groups requests into batches. A
// batch flushes when its pending rows reach MaxBatch, when the oldest
// request has waited MaxWait, or at shutdown.
func (c *Coalescer) dispatch() {
	defer c.dispatcher.Done()
	var (
		pending []*request
		rows    int
		timer   *time.Timer
		timeout <-chan time.Time
	)
	flush := func() {
		if len(pending) == 0 {
			return
		}
		c.workCh <- pending
		pending = nil
		rows = 0
		if timer != nil {
			timer.Stop()
		}
		timeout = nil
	}
	for {
		select {
		case req, ok := <-c.reqCh:
			if !ok {
				flush()
				close(c.workCh)
				return
			}
			c.queueDepth.Add(-1)
			// A request that would overflow the pending batch flushes it
			// first; an oversized request then forms its own batch and is
			// chunked by the executor.
			if rows > 0 && rows+len(req.rows) > c.opts.MaxBatch {
				flush()
			}
			pending = append(pending, req)
			rows += len(req.rows)
			if rows >= c.opts.MaxBatch {
				flush()
			} else if timeout == nil {
				if timer == nil {
					timer = time.NewTimer(c.opts.MaxWait)
				} else {
					timer.Reset(c.opts.MaxWait)
				}
				timeout = timer.C
			}
		case <-timeout:
			flush()
		}
	}
}

// work executes flushed batches. Each worker owns its scratch; the bundle
// pointer is snapshotted once per batch so every response in it comes
// wholly from one artifact even across a concurrent hot-swap.
func (c *Coalescer) work() {
	defer c.workers.Done()
	var adaptScr core.AdaptScratch
	var mlpScr models.MLPScratch
	o := c.opts.Obs
	batchLatency := o.FixedHistogram(obs.MetricServeBatchLatency, obs.LatencyBuckets)
	batchSize := o.FixedHistogram(obs.MetricServeBatchSize, obs.BatchSizeBuckets)
	batches := o.Counter(obs.MetricServeBatches)
	rowsTotal := o.Counter(obs.MetricServeRows)
	for group := range c.workCh {
		c.runGroup(group, &adaptScr, &mlpScr, batchLatency, batchSize, batches, rowsTotal)
	}
}

func (c *Coalescer) runGroup(group []*request, adaptScr *core.AdaptScratch, mlpScr *models.MLPScratch,
	batchLatency, batchSize *obs.FixedHistogram, batches, rowsTotal *obs.Counter) {
	// Drop requests whose submitter already gave up; they still get an
	// outcome so Submit never leaks a waiter.
	live := group[:0]
	for _, req := range group {
		if err := req.ctx.Err(); err != nil {
			req.done <- reqOutcome{err: err}
			continue
		}
		live = append(live, req)
	}
	if len(live) == 0 {
		return
	}
	bundle := c.reg.Current()
	if bundle == nil {
		for _, req := range live {
			req.done <- reqOutcome{err: ErrNoBundle}
		}
		return
	}
	start := time.Now()
	// Stitch the group into one flat row list, then run it in chunks of
	// MaxBatch (a single oversized request spans several chunks).
	var allRows [][]float64
	var allSeeds []int64
	for _, req := range live {
		allRows = append(allRows, req.rows...)
		allSeeds = append(allSeeds, req.seeds...)
	}
	wantPredict := bundle.Classifier != nil
	if wantPredict {
		wantPredict = false
		for _, req := range live {
			if req.predict {
				wantPredict = true
				break
			}
		}
	}
	outRows := make([][]float64, 0, len(allRows))
	var outPreds [][]float64
	for lo := 0; lo < len(allRows); lo += c.opts.MaxBatch {
		hi := lo + c.opts.MaxBatch
		if hi > len(allRows) {
			hi = len(allRows)
		}
		adapted, err := bundle.Adapter.AdaptBatch(allRows[lo:hi], allSeeds[lo:hi], adaptScr)
		if err != nil {
			c.failGroup(live, err)
			return
		}
		var preds *nn.Tensor
		if wantPredict {
			preds, err = bundle.Classifier.PredictProbaT(adapted, mlpScr)
			if err != nil {
				c.failGroup(live, err)
				return
			}
		}
		// The scratch tensors are reused next chunk: copy results out.
		for i := 0; i < adapted.Rows(); i++ {
			outRows = append(outRows, append([]float64(nil), adapted.Row(i)...))
			if preds != nil {
				outPreds = append(outPreds, append([]float64(nil), preds.Row(i)...))
			}
		}
		batchSize.Observe(float64(hi - lo))
		batches.Inc()
	}
	batchLatency.Observe(time.Since(start).Seconds())
	rowsTotal.Add(float64(len(allRows)))
	// Scatter the flat results back to their requests.
	off := 0
	for _, req := range live {
		n := len(req.rows)
		res := Result{BundleID: bundle.ID, Rows: outRows[off : off+n : off+n]}
		if req.predict && outPreds != nil {
			res.Predictions = outPreds[off : off+n : off+n]
		}
		req.done <- reqOutcome{res: res}
		off += n
	}
}

func (c *Coalescer) failGroup(live []*request, err error) {
	for _, req := range live {
		req.done <- reqOutcome{err: err}
	}
}
