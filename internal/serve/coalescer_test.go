package serve

import (
	"context"
	"sync"
	"testing"
	"time"

	"netdrift/internal/obs"
)

// Satellite edge-case coverage for the coalescer: MaxWait expiry, batch
// overflow splitting, queued-request cancellation, shutdown draining.

func TestCoalescerMaxWaitFlushesLoneRequest(t *testing.T) {
	a, _, rows := fixtures(t)
	reg := NewRegistry(nil)
	reg.Swap(a)
	// Batch threshold far above the request size: only the MaxWait timer
	// can flush.
	co := NewCoalescer(reg, Options{MaxBatch: 1 << 20, MaxWait: 10 * time.Millisecond})
	defer co.Close()

	start := time.Now()
	res, err := co.Submit(context.Background(), rows[:3], 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("lone request took %v; MaxWait expiry did not flush", elapsed)
	}
	if !sameRows(res.Rows, adaptWith(t, a, rows[:3], 0)) {
		t.Error("timer-flushed request served wrong rows")
	}
}

func TestCoalescerOverflowSplitting(t *testing.T) {
	a, _, rows := fixtures(t)
	o := obs.New()
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 4, Workers: 1, Obs: o})
	defer co.Close()

	// A single request far larger than MaxBatch must be split into
	// MaxBatch-sized chunks by the executor, and still return every row
	// bit-identical to the unbatched reference.
	n := 10 // 4 + 4 + 2
	res, err := co.Submit(context.Background(), rows[:n], 7, false)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(res.Rows, adaptWith(t, a, rows[:n], 7)) {
		t.Error("oversized request rows differ from unbatched reference")
	}
	var batches float64
	for _, s := range o.Registry.Snapshot() {
		if s.Name == obs.MetricServeBatches {
			batches = s.Value
		}
	}
	if batches != 3 {
		t.Errorf("batches = %v, want 3 (4+4+2 split)", batches)
	}
	// No executed batch may exceed MaxBatch: the batch-size histogram's
	// 100th percentile clamps to the bucket bound covering the largest
	// observation.
	sizeHist := o.Registry.FixedHistogram(obs.MetricServeBatchSize, obs.BatchSizeBuckets)
	if maxSeen := sizeHist.Quantile(1); maxSeen > 4 {
		t.Errorf("largest executed batch ≈ %v rows, exceeds MaxBatch 4", maxSeen)
	}
}

func TestCoalescerQueuedRequestCancellation(t *testing.T) {
	a, _, rows := fixtures(t)
	reg := NewRegistry(nil)
	reg.Swap(a)
	// A queue that never flushes on its own: huge batch, huge wait.
	co := NewCoalescer(reg, Options{MaxBatch: 1 << 20, MaxWait: time.Hour})
	defer co.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := co.Submit(ctx, rows[:2], 0, false)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request reach the queue
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Errorf("canceled queued Submit returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Submit did not return; waiter leaked in the queue")
	}
}

func TestCoalescerCloseDrainsQueuedRequests(t *testing.T) {
	a, _, rows := fixtures(t)
	reg := NewRegistry(nil)
	reg.Swap(a)
	// Nothing flushes until Close: requests must be served by the
	// shutdown drain, not dropped.
	co := NewCoalescer(reg, Options{MaxBatch: 1 << 20, MaxWait: time.Hour})

	const waiters = 5
	results := make([]Result, waiters)
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = co.Submit(context.Background(), rows[i:i+1], 0, false)
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let every request reach the queue
	co.Close()
	wg.Wait()
	want := adaptWith(t, a, rows[:waiters], 0)
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Errorf("queued request %d failed at shutdown: %v", i, errs[i])
			continue
		}
		if !sameRows(results[i].Rows, want[i:i+1]) {
			t.Errorf("request %d drained with wrong rows", i)
		}
	}

	// After Close, new submissions are refused.
	if _, err := co.Submit(context.Background(), rows[:1], 0, false); err != ErrClosed {
		t.Errorf("Submit after Close: err = %v, want ErrClosed", err)
	}
}
