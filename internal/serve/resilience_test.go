package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"netdrift/internal/fault"
	"netdrift/internal/obs"
)

// fastBreaker keeps chaos tests snappy: trips on the first failure and
// reopens within a few milliseconds.
func fastBreaker() BreakerConfig {
	return BreakerConfig{FailThreshold: 1, BaseBackoff: 5 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, Seed: 1}
}

func postAdapt(t *testing.T, url string, body string) (*http.Response, AdaptResponse) {
	t.Helper()
	res, err := http.Post(url+"/v1/adapt", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var ar AdaptResponse
	_ = json.NewDecoder(res.Body).Decode(&ar)
	return res, ar
}

// TestAdaptRequestValidation covers the API-boundary checks: wrong
// feature-vector widths and non-finite inputs must return field-level
// 400s instead of flowing into the kernels.
func TestAdaptRequestValidation(t *testing.T) {
	a, _, rows := fixtures(t)
	reg := NewRegistry(nil)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 8})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, nil))
	defer ts.Close()

	goodRow, _ := json.Marshal(rows[0])
	cases := []struct {
		name    string
		body    string
		status  int
		errPart string
	}{
		{"ok", fmt.Sprintf(`{"rows":[%s]}`, goodRow), http.StatusOK, ""},
		{"short row", `{"rows":[[1,2]]}`, http.StatusBadRequest, "rows[0]: 2 features, want 4"},
		{"long row", fmt.Sprintf(`{"rows":[%s,[1,2,3,4,5]]}`, goodRow), http.StatusBadRequest, "rows[1]: 5 features, want 4"},
		{"nan", `{"rows":[[1,2,NaN,4]]}`, http.StatusBadRequest, "decode request"}, // not even JSON
		{"nan via null-free float", `{"rows":[[1,2,1e999,4]]}`, http.StatusBadRequest, ""},
		{"empty rows", `{"rows":[]}`, http.StatusBadRequest, "rows must not be empty"},
		{"no body", `{}`, http.StatusBadRequest, "rows must not be empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := http.Post(ts.URL+"/v1/adapt", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			var blob bytes.Buffer
			blob.ReadFrom(res.Body)
			res.Body.Close()
			if res.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (body %s)", res.StatusCode, tc.status, blob.String())
			}
			if tc.errPart != "" && !strings.Contains(blob.String(), tc.errPart) {
				t.Errorf("error body %q missing %q", blob.String(), tc.errPart)
			}
		})
	}

	// Non-finite values that survive JSON decoding (crafted request
	// struct) are caught by validateRows directly.
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		bad := [][]float64{{1, 2, v, 4}}
		body, _ := json.Marshal(map[string]any{"rows": bad})
		_ = body // json.Marshal refuses NaN/Inf; exercise the validator in-process instead
		srv := NewServer(reg, co, nil)
		if err := srv.validateRows(bad); err == nil || !strings.Contains(err.Error(), "rows[0][2]") {
			t.Errorf("validateRows(%v) = %v, want rows[0][2] non-finite error", v, err)
		}
	}
}

// TestSubmitRowWidthGuard covers the same malformed input arriving via
// direct Submit (no HTTP validation): the bad request fails alone with
// ErrRowWidth; it neither poisons batchmates nor trips the breaker.
func TestSubmitRowWidthGuard(t *testing.T) {
	a, _, rows := fixtures(t)
	reg := NewRegistry(nil)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 8})
	defer co.Close()

	if _, err := co.Submit(context.Background(), [][]float64{{1, 2}}, 0, false); !errors.Is(err, ErrRowWidth) {
		t.Fatalf("short row: err = %v, want ErrRowWidth", err)
	}
	res, err := co.Submit(context.Background(), rows[:2], 0, false)
	if err != nil || res.Degraded {
		t.Fatalf("well-formed request after bad one: res=%+v err=%v", res, err)
	}
	if !sameRows(res.Rows, adaptWith(t, a, rows[:2], 0)) {
		t.Error("well-formed request not served golden after width failure")
	}
}

// TestAdmissionControlSheds fills the queue behind a wedged executor and
// checks excess load is refused with ErrOverloaded / HTTP 429 +
// Retry-After, and that the shed counter advances.
func TestAdmissionControlSheds(t *testing.T) {
	a, _, rows := fixtures(t)
	o := obs.New()
	inj := fault.New(1)
	// Wedge the single worker: every batch sleeps 200ms.
	inj.Set(FaultSiteExec, fault.Spec{SlowRate: 1, SlowFor: 200 * time.Millisecond})
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{
		MaxBatch: 1, MaxWait: time.Microsecond, Workers: 1, MaxQueue: 4,
		Faults: inj, Obs: o, Breaker: BreakerConfig{FailThreshold: 1 << 30},
	})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, o))
	defer ts.Close()

	// Saturate: the worker takes one row (queue released on pickup), so
	// pushing MaxQueue+worker+1 singles guarantees at least one shed.
	type done struct {
		status int
		retry  string
	}
	rowBlob, _ := json.Marshal(rows[0])
	body := fmt.Sprintf(`{"rows":[%s]}`, rowBlob)
	const inflight = 12
	ch := make(chan done, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			res, err := http.Post(ts.URL+"/v1/adapt", "application/json", strings.NewReader(body))
			if err != nil {
				ch <- done{status: -1}
				return
			}
			res.Body.Close()
			ch <- done{status: res.StatusCode, retry: res.Header.Get("Retry-After")}
		}()
	}
	var ok, shed int
	for i := 0; i < inflight; i++ {
		d := <-ch
		switch d.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			if d.retry == "" {
				t.Error("429 without Retry-After header")
			}
		default:
			t.Errorf("unexpected status %d", d.status)
		}
	}
	if shed == 0 {
		t.Fatalf("no request shed (%d ok) despite MaxQueue 4 and 12 in flight", ok)
	}
	if v, okv := o.Registry.Value(obs.MetricServeShed); !okv || v != float64(shed) {
		t.Errorf("shed counter = %v, want %d", v, shed)
	}
}

// TestDegradedPassthroughAndRecovery is the core degradation contract:
// with the executor failing, /v1/adapt serves raw rows with
// degraded:true (not errors); /healthz reports degraded; once faults
// stop, the first half-open probe restores bit-identical golden output.
func TestDegradedPassthroughAndRecovery(t *testing.T) {
	a, _, rows := fixtures(t)
	o := obs.New()
	inj := fault.New(5)
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 8, Workers: 1, Obs: o, Faults: inj, Breaker: fastBreaker()})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, o))
	defer ts.Close()

	golden := adaptWith(t, a, rows[:4], 0)
	rowsBlob, _ := json.Marshal(rows[:4])
	body := fmt.Sprintf(`{"rows":%s}`, rowsBlob)

	// Healthy first: golden path.
	res, ar := postAdapt(t, ts.URL, body)
	if res.StatusCode != http.StatusOK || ar.Degraded || !sameRows(ar.Rows, golden) {
		t.Fatalf("healthy response status=%d degraded=%v golden=%v", res.StatusCode, ar.Degraded, sameRows(ar.Rows, golden))
	}

	// Break the executor: every batch errors.
	inj.Set(FaultSiteExec, fault.Spec{ErrRate: 1})
	sawDegraded := 0
	for i := 0; i < 6; i++ {
		res, ar := postAdapt(t, ts.URL, body)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("degraded request %d: status %d, want 200 passthrough", i, res.StatusCode)
		}
		if !ar.Degraded {
			t.Fatalf("request %d under total executor failure not degraded", i)
		}
		if !sameRows(ar.Rows, rows[:4]) {
			t.Fatalf("degraded response does not echo raw input rows")
		}
		sawDegraded++
	}

	// Health reflects it.
	hres, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthReport
	json.NewDecoder(hres.Body).Decode(&h)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK || h.Status != HealthDegraded {
		t.Errorf("healthz status=%d report=%+v, want 200/degraded", hres.StatusCode, h.Status)
	}
	if h.Components.Executor.State == BreakerClosed {
		t.Errorf("executor component = %+v, want tripped", h.Components.Executor)
	}

	// Faults stop: within the breaker backoff plus one probe, the golden
	// path must return.
	inj.Clear()
	deadline := time.Now().Add(5 * time.Second)
	recovered := false
	for time.Now().Before(deadline) {
		res, ar := postAdapt(t, ts.URL, body)
		if res.StatusCode == http.StatusOK && !ar.Degraded {
			if !sameRows(ar.Rows, golden) {
				t.Fatal("post-recovery response is not bit-identical to golden")
			}
			recovered = true
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !recovered {
		t.Fatal("server did not recover to golden output after faults stopped")
	}
	if v, _ := o.Registry.Value(obs.MetricServeDegraded); v < float64(sawDegraded) {
		t.Errorf("degraded counter = %v, want >= %d", v, sawDegraded)
	}
	// healthz back to ok.
	hres2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h2 HealthReport
	json.NewDecoder(hres2.Body).Decode(&h2)
	hres2.Body.Close()
	if h2.Status != HealthOK {
		t.Errorf("healthz after recovery = %q, want ok", h2.Status)
	}
}

// TestExecutorPanicIsA500AndWorkerSurvives injects a panic into the batch
// executor: the in-flight request fails with 500, the recovered-panic
// counter advances, and the worker loop keeps serving afterwards.
func TestExecutorPanicIsA500AndWorkerSurvives(t *testing.T) {
	a, _, rows := fixtures(t)
	o := obs.New()
	inj := fault.New(9)
	inj.Set(FaultSiteExec, fault.Spec{PanicRate: 1})
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 8, Workers: 1, Obs: o, Faults: inj, Breaker: fastBreaker()})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, o))
	defer ts.Close()

	rowsBlob, _ := json.Marshal(rows[:2])
	body := fmt.Sprintf(`{"rows":%s}`, rowsBlob)
	res, _ := postAdapt(t, ts.URL, body)
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked batch: status %d, want 500", res.StatusCode)
	}
	if v, ok := o.Registry.Value(obs.MetricServePanics, "site", "executor"); !ok || v != 1 {
		t.Errorf("recovered executor panics = %v, want 1", v)
	}
	// Worker must still be alive: with the breaker now open, requests are
	// served degraded rather than hanging.
	res2, ar2 := postAdapt(t, ts.URL, body)
	if res2.StatusCode != http.StatusOK || !ar2.Degraded {
		t.Fatalf("post-panic request status=%d degraded=%v, want degraded passthrough", res2.StatusCode, ar2.Degraded)
	}
	// And after faults stop it fully recovers.
	inj.Clear()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		res, ar := postAdapt(t, ts.URL, body)
		if res.StatusCode == http.StatusOK && !ar.Degraded {
			if !sameRows(ar.Rows, adaptWith(t, a, rows[:2], 0)) {
				t.Fatal("post-panic recovery output not golden")
			}
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("worker did not recover after injected panics stopped")
}

// TestHandlerPanicRecoveryMiddleware injects a panic at the HTTP handler
// site: the response is a 500, the process survives, and the next request
// succeeds.
func TestHandlerPanicRecoveryMiddleware(t *testing.T) {
	a, _, rows := fixtures(t)
	o := obs.New()
	inj := fault.New(11)
	inj.Set(FaultSiteHandler, fault.Spec{PanicRate: 1})
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 8, Obs: o, Faults: inj})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, o))
	defer ts.Close()

	rowsBlob, _ := json.Marshal(rows[:1])
	body := fmt.Sprintf(`{"rows":%s}`, rowsBlob)
	res, _ := postAdapt(t, ts.URL, body)
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("handler panic: status %d, want 500", res.StatusCode)
	}
	if v, ok := o.Registry.Value(obs.MetricServePanics, "site", "handler"); !ok || v != 1 {
		t.Errorf("recovered handler panics = %v, want 1", v)
	}
	inj.Clear()
	res2, ar := postAdapt(t, ts.URL, body)
	if res2.StatusCode != http.StatusOK || ar.Degraded {
		t.Fatalf("request after handler panic: status=%d degraded=%v", res2.StatusCode, ar.Degraded)
	}
}

// TestBundleLoadCircuitBreaker points LoadFile at a corrupt file: after
// FailThreshold failures the breaker fails fast (no re-parse per call),
// the already-installed bundle keeps serving, and /v1/adapt degrades to
// passthrough when no bundle is installed at all.
func TestBundleLoadCircuitBreaker(t *testing.T) {
	a, _, rows := fixtures(t)
	dir := t.TempDir()
	corrupt := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corrupt, []byte(`{"format_version":1,"id":"x","adapter":{`), 0o644); err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	reg := NewRegistry(o)
	reg.SetBreaker(NewBreaker("bundle_load", BreakerConfig{FailThreshold: 2, BaseBackoff: time.Hour, MaxBackoff: time.Hour}, o))
	reg.Swap(a) // a good bundle is already live

	for i := 0; i < 2; i++ {
		if _, err := reg.LoadFile(corrupt); err == nil || errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("load %d: err = %v, want a parse error", i, err)
		}
	}
	// Breaker now open: fail fast without touching the file.
	loadsBefore, _ := o.Registry.Value(obs.MetricServeBundleLoads)
	for i := 0; i < 5; i++ {
		if _, err := reg.LoadFile(corrupt); !errors.Is(err, ErrBreakerOpen) {
			t.Fatalf("broken load %d: err = %v, want ErrBreakerOpen", i, err)
		}
	}
	if loadsAfter, _ := o.Registry.Value(obs.MetricServeBundleLoads); loadsAfter != loadsBefore {
		t.Errorf("open breaker still performed %v loads", loadsAfter-loadsBefore)
	}
	// The live bundle is untouched and keeps serving golden.
	if reg.Current() != a {
		t.Fatal("failed loads disturbed the installed bundle")
	}
	co := NewCoalescer(reg, Options{MaxBatch: 8})
	defer co.Close()
	res, err := co.Submit(context.Background(), rows[:2], 0, false)
	if err != nil || res.Degraded {
		t.Fatalf("serving with open load breaker but live bundle: res=%+v err=%v", res, err)
	}

	// With no bundle installed and the load breaker open, requests degrade
	// to passthrough instead of 503ing.
	reg2 := NewRegistry(nil)
	reg2.SetBreaker(NewBreaker("bundle_load", BreakerConfig{FailThreshold: 1, BaseBackoff: time.Hour, MaxBackoff: time.Hour}, nil))
	if _, err := reg2.LoadFile(corrupt); err == nil {
		t.Fatal("corrupt load succeeded")
	}
	co2 := NewCoalescer(reg2, Options{MaxBatch: 8})
	defer co2.Close()
	res2, err := co2.Submit(context.Background(), rows[:2], 0, false)
	if err != nil || !res2.Degraded {
		t.Fatalf("no bundle + open breaker: res=%+v err=%v, want degraded passthrough", res2, err)
	}
	if !sameRows(res2.Rows, rows[:2]) {
		t.Error("degraded passthrough did not echo raw rows")
	}
	// Recovery: fix the file, advance past the backoff via a fresh breaker
	// probe — here we just install a short-backoff breaker and verify a
	// good file closes it.
	good := filepath.Join(dir, "good.json")
	if err := WriteBundleFile(good, a.ID, a.Adapter, a.Classifier); err != nil {
		t.Fatal(err)
	}
	reg3 := NewRegistry(nil)
	br := NewBreaker("bundle_load", BreakerConfig{FailThreshold: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}, nil)
	reg3.SetBreaker(br)
	if _, err := reg3.LoadFile(corrupt); err == nil {
		t.Fatal("corrupt load succeeded")
	}
	time.Sleep(5 * time.Millisecond) // let the backoff elapse
	if _, err := reg3.LoadFile(good); err != nil {
		t.Fatalf("half-open probe with good file: %v", err)
	}
	if br.Status().State != BreakerClosed {
		t.Errorf("breaker after good probe = %+v, want closed", br.Status())
	}
}

// TestResilienceMetricsExposition runs a short fault storm and asserts
// every resilience family renders in the Prometheus exposition.
func TestResilienceMetricsExposition(t *testing.T) {
	a, _, rows := fixtures(t)
	o := obs.New()
	inj := fault.New(13)
	inj.Set(FaultSiteExec, fault.Spec{ErrRate: 1})
	reg := NewRegistry(o)
	reg.Swap(a)
	co := NewCoalescer(reg, Options{MaxBatch: 4, Workers: 1, Obs: o, Faults: inj, Breaker: fastBreaker()})
	defer co.Close()
	ts := httptest.NewServer(NewServer(reg, co, o))
	defer ts.Close()

	rowsBlob, _ := json.Marshal(rows[:2])
	body := fmt.Sprintf(`{"rows":%s}`, rowsBlob)
	for i := 0; i < 3; i++ {
		res, _ := postAdapt(t, ts.URL, body)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("degraded request status %d", res.StatusCode)
		}
	}
	mres, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, rerr := mres.Body.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	mres.Body.Close()
	text := sb.String()
	for _, want := range []string{
		"# TYPE " + obs.MetricServeDegraded + " counter",
		obs.MetricServeDegraded + " ",
		"# TYPE " + obs.MetricServeBreakerTransitions + " counter",
		obs.MetricServeBreakerTransitions + `{breaker="executor",to="open"}`,
		obs.MetricServeRequests + `{outcome="degraded"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
