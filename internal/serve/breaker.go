package serve

import (
	"math/rand"
	"sync"
	"time"

	"netdrift/internal/obs"
)

// Breaker states as reported by Status and the transition counter.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// BreakerConfig tunes a circuit breaker. Zero values select the defaults.
type BreakerConfig struct {
	// FailThreshold is the number of consecutive failures (while closed)
	// that trips the breaker open. Default 3.
	FailThreshold int
	// BaseBackoff is the first open interval; consecutive trips double it
	// up to MaxBackoff. Defaults 100ms / 30s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the backoff jitter PRNG so chaos runs are reproducible.
	// Default 1.
	Seed int64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailThreshold <= 0 {
		c.FailThreshold = 3
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 30 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Breaker is a three-state circuit breaker guarding a fallible dependency
// (bundle loading, batch execution). Closed passes everything through;
// FailThreshold consecutive failures trip it open, which fails fast for a
// jittered exponential backoff; the first Allow after the backoff elapses
// becomes the half-open probe — its Success closes the breaker, its Fail
// re-opens with a doubled interval. A nil *Breaker always allows.
type Breaker struct {
	name string
	cfg  BreakerConfig
	o    *obs.Observer
	now  func() time.Time // injectable clock for tests

	mu        sync.Mutex
	state     string
	fails     int // consecutive failures while closed
	trips     int // consecutive trips without a Success; backoff exponent
	openUntil time.Time
	probing   bool // a half-open probe is in flight
	rng       *rand.Rand
}

// NewBreaker builds a closed breaker. name labels its metrics; o may be
// nil.
func NewBreaker(name string, cfg BreakerConfig, o *obs.Observer) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{
		name:  name,
		cfg:   cfg,
		o:     o,
		now:   time.Now,
		state: BreakerClosed,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// transition must be called with mu held. Both the counter and the flight
// event are lock-free, so recording under mu is safe.
func (b *Breaker) transition(to string) {
	if b.state == to {
		return
	}
	b.state = to
	b.o.Counter(obs.MetricServeBreakerTransitions, "breaker", b.name, "to", to).Inc()
	b.o.FlightRecord(obs.FlightKindBreaker, b.name, "", to)
}

// Allow reports whether the protected operation may run now. While open
// it fails fast until the backoff deadline, then admits exactly one
// half-open probe at a time; the probe's Success or Fail decides what
// happens to everyone else.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.openUntil) {
			return false
		}
		b.transition(BreakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed operation: any state snaps back to closed
// and the failure/backoff history resets.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fails, b.trips, b.probing = 0, 0, false
	b.transition(BreakerClosed)
}

// Fail records a failed operation. A closed breaker trips after
// FailThreshold consecutive failures; a half-open probe failure re-opens
// immediately with a doubled (capped, jittered) backoff.
func (b *Breaker) Fail() {
	if b == nil {
		return
	}
	b.mu.Lock()
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails < b.cfg.FailThreshold {
			b.mu.Unlock()
			return
		}
	case BreakerOpen:
		b.mu.Unlock()
		return // already open; late failures from in-flight work are moot
	}
	// Trip: exponential backoff with multiplicative jitter in [0.5, 1.5).
	b.trips++
	backoff := b.cfg.BaseBackoff << (b.trips - 1)
	if backoff > b.cfg.MaxBackoff || backoff <= 0 {
		backoff = b.cfg.MaxBackoff
	}
	backoff = time.Duration(float64(backoff) * (0.5 + b.rng.Float64()))
	b.openUntil = b.now().Add(backoff)
	b.fails, b.probing = 0, false
	b.transition(BreakerOpen)
	b.mu.Unlock()
	// A breaker opening is an incident: dump the flight ring (file write,
	// so outside mu) to preserve the failure sequence that tripped it.
	b.o.FlightSnapshot("breaker-open-" + b.name)
}

// BreakerStatus is the health-endpoint snapshot of one breaker.
type BreakerStatus struct {
	State            string `json:"state"`
	ConsecutiveFails int    `json:"consecutive_fails,omitempty"`
	RetryIn          string `json:"retry_in,omitempty"` // open only: time until the next probe window
}

// Status snapshots the breaker for /healthz. A nil breaker reads closed.
func (b *Breaker) Status() BreakerStatus {
	if b == nil {
		return BreakerStatus{State: BreakerClosed}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStatus{State: b.state, ConsecutiveFails: b.fails}
	if b.state == BreakerOpen {
		if wait := b.openUntil.Sub(b.now()); wait > 0 {
			st.RetryIn = wait.Round(time.Millisecond).String()
		}
	}
	return st
}
