package serve

import (
	"net/http"
	"strings"

	"netdrift/internal/fault"
	"netdrift/internal/obs"
)

// TraceHeader is the request/response header carrying the trace ID. An
// inbound value is adopted verbatim as the request's trace ID; otherwise
// one is minted and echoed back, so every response is correlatable.
const TraceHeader = "X-Request-Id"

// traceparentHeader is the W3C trace-context header; its trace-id field is
// accepted as a fallback when TraceHeader is absent.
const traceparentHeader = "Traceparent"

// traceFromRequest extracts the caller's trace ID: X-Request-ID first,
// then the trace-id field of a traceparent header
// ("00-<32 hex trace-id>-<16 hex parent-id>-<flags>"). Returns "" when the
// request carries neither — the zero-allocation path.
func traceFromRequest(r *http.Request) string {
	if id := r.Header.Get(TraceHeader); id != "" {
		return id
	}
	tp := r.Header.Get(traceparentHeader)
	if tp == "" {
		return ""
	}
	// version-traceid-parentid-flags; tolerate unknown versions.
	parts := strings.SplitN(tp, "-", 4)
	if len(parts) >= 2 && len(parts[1]) == 32 {
		return parts[1]
	}
	return ""
}

// WireChaos connects a fault injector to the observability layer: every
// injection lands in the flight recorder (kind "fault", name = site,
// detail = slow|err|panic) and counts against the per-site rolling RED
// tracker ("fault:<site>"; slow injections are not errors). Call once
// after building the stack; a nil injector is a no-op.
func WireChaos(inj *fault.Injector, o *obs.Observer, slo *obs.SLOSet) {
	if inj == nil {
		return
	}
	inj.SetHook(func(site, kind string) {
		o.FlightRecord(obs.FlightKindFault, site, "", kind)
		slo.Observe("fault:"+site, 0, kind != "slow")
	})
}
