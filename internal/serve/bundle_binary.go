package serve

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"netdrift/internal/binenc"
	"netdrift/internal/core"
	"netdrift/internal/models"
)

// Binary bundle format: a flat little-endian envelope around the binary
// adapter/classifier encodings, built for the hot-swap load path — no JSON
// parse, no base64, sections land directly in the structs the executor
// reads. Layout:
//
//	4B magic "NDBF"
//	u16 format version
//	u16-prefixed id string
//	u8 hasClassifier
//	adapter section:     u32 byteLen, u32 CRC-32 (IEEE), payload
//	classifier section:  same shape, present iff hasClassifier
//
// Each section checksum covers its payload bytes, so a torn or bit-rotted
// artifact fails loudly at load instead of serving garbage weights.
// LoadBundleFile sniffs the magic, so callers (registry hot-swap, CLI
// tooling) handle both formats transparently; a binary load is
// breaker-safe in the same way the JSON path is — validation failures are
// typed errors, never panics.

// BundleMagic marks a binary bundle file.
const BundleMagic = "NDBF"

// BundleFormat selects an on-disk bundle encoding.
type BundleFormat string

const (
	// FormatJSON is the original self-describing envelope, kept for
	// tooling and diffability.
	FormatJSON BundleFormat = "json"
	// FormatBinary is the flat checksummed encoding for fast loads.
	FormatBinary BundleFormat = "binary"
)

// ErrBadChecksum marks a bundle section whose payload fails its CRC.
var ErrBadChecksum = errors.New("serve: bundle section checksum mismatch")

// ErrBadMagic marks a binary bundle without the NDBF magic.
var ErrBadMagic = errors.New("serve: not a binary bundle (bad magic)")

// AppendBundleBinary appends the binary encoding of a bundle to dst.
func AppendBundleBinary(dst []byte, id string, ad *core.Adapter, clf *models.MLPClassifier) ([]byte, error) {
	if ad == nil {
		return dst, ErrNoAdapter
	}
	dst = append(dst, BundleMagic...)
	dst = binenc.AppendU16(dst, uint16(bundleFormatVersion))
	dst = binenc.AppendString(dst, id)
	dst = binenc.AppendBool(dst, clf != nil)
	adPayload, err := ad.AppendBinary(nil)
	if err != nil {
		return dst, err
	}
	dst = appendSection(dst, adPayload)
	if clf != nil {
		clfPayload, err := clf.AppendBinary(nil)
		if err != nil {
			return dst, err
		}
		dst = appendSection(dst, clfPayload)
	}
	return dst, nil
}

func appendSection(dst, payload []byte) []byte {
	dst = binenc.AppendU32(dst, uint32(len(payload)))
	dst = binenc.AppendU32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// readSection validates a section's length prefix and checksum, returning
// the payload bytes (a subslice of the reader's input, not a copy).
func readSection(r *binenc.Reader) ([]byte, error) {
	n := r.Count(1)
	sum := r.U32()
	b := r.Bytes(n)
	if err := r.Err(); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(b) != sum {
		return nil, ErrBadChecksum
	}
	return b, nil
}

// ReadBundleBinary decodes a binary bundle from data. Malformed input —
// truncation, bad magic, checksum mismatch, hostile dims, non-finite
// weights — fails with a typed error and never panics.
func ReadBundleBinary(data []byte) (*Bundle, error) {
	if len(data) < len(BundleMagic) || string(data[:len(BundleMagic)]) != BundleMagic {
		return nil, ErrBadMagic
	}
	r := binenc.NewReader(data[len(BundleMagic):])
	version := int(r.U16())
	id := r.String()
	hasClf := r.Bool()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("serve: decode bundle: %w", err)
	}
	if version != bundleFormatVersion {
		return nil, fmt.Errorf("serve: unsupported bundle format %d", version)
	}
	adPayload, err := readSection(r)
	if err != nil {
		return nil, fmt.Errorf("serve: decode bundle adapter section: %w", err)
	}
	b := &Bundle{ID: id}
	ad, err := core.LoadAdapterBinary(binenc.NewReader(adPayload))
	if err != nil {
		return nil, err
	}
	b.Adapter = ad
	if hasClf {
		clfPayload, err := readSection(r)
		if err != nil {
			return nil, fmt.Errorf("serve: decode bundle classifier section: %w", err)
		}
		clf, err := models.LoadMLPClassifierBinary(binenc.NewReader(clfPayload))
		if err != nil {
			return nil, err
		}
		b.Classifier = clf
	}
	return b, nil
}

// WriteBundleBinary serializes a bundle in the binary format to w.
func WriteBundleBinary(w io.Writer, id string, ad *core.Adapter, clf *models.MLPClassifier) error {
	data, err := AppendBundleBinary(nil, id, ad, clf)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// WriteBundleFileFormat writes a bundle to disk in the requested format.
func WriteBundleFileFormat(path, id string, ad *core.Adapter, clf *models.MLPClassifier, format BundleFormat) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	switch format {
	case FormatBinary:
		werr = WriteBundleBinary(f, id, ad, clf)
	case FormatJSON, "":
		werr = WriteBundle(f, id, ad, clf)
	default:
		werr = fmt.Errorf("serve: unknown bundle format %q", format)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}
