package serve

import (
	"errors"
	"fmt"

	"netdrift/internal/binenc"
)

// Row-batch wire codec: the binary alternative to the JSON /v1/adapt
// payloads, negotiated via Content-Type / Accept. The shape is a flat
// little-endian float64 matrix with a fixed header, so the server decodes
// a request straight into a caller-owned RowBuf — zero allocations in
// steady state (gated by TestBinaryDecodeSteadyStateAllocs) — and encodes
// a response with one append pass over the result rows.
//
// Request layout ("NDRB" magic):
//
//	4B magic, u16 version, u16 flags (bit0 = predict)
//	i64 seed
//	u32 rowCount, u32 width
//	rowCount×width f64, row-major, no per-row framing
//
// Response layout (same magic and version field):
//
//	4B magic, u16 version, u16 flags (bit0 = degraded, bit1 = has predictions)
//	u16-prefixed bundle id string
//	u32 rowCount, u32 width, rowCount×width f64 adapted rows
//	if bit1: u32 predCols, rowCount×predCols f64 probabilities
//
// The byte count is fully determined by the header, and decoders require
// the payload to end exactly where the header says — trailing garbage is
// malformed. Malformed input of any kind (bad magic, truncation, hostile
// counts, non-finite values) is a typed error, never a panic, and the
// HTTP layer maps it to a 4xx that does not touch the serving breakers.

// ContentTypeRows is the media type of the binary row-batch codec on
// /v1/adapt, for both request bodies (Content-Type) and response
// negotiation (Accept).
const ContentTypeRows = "application/x-netdrift-rows"

// RowsMagic marks a binary row-batch payload.
const RowsMagic = "NDRB"

const rowsWireVersion = 1

// Wire flag bits.
const (
	rowsFlagPredict  = 1 << 0 // request: ask for class probabilities
	rowsFlagDegraded = 1 << 0 // response: passthrough (degraded) result
	rowsFlagPreds    = 1 << 1 // response: predictions section present
)

// maxWireDim bounds the declared row count and width of a wire payload;
// combined with the exact-length check it keeps a hostile header from
// driving oversized row-slice allocations.
const maxWireDim = 1 << 24

// Typed wire decode failures (beyond the binenc set, which is also used).
var (
	// ErrWireMagic marks a payload without the NDRB magic.
	ErrWireMagic = errors.New("serve: not a row-batch payload (bad magic)")
	// ErrWireVersion marks an unsupported row-batch codec version.
	ErrWireVersion = errors.New("serve: unsupported row-batch version")
	// ErrWireShape marks a header whose declared shape disagrees with the
	// payload length.
	ErrWireShape = errors.New("serve: row-batch shape does not match payload length")
)

// RowBuf is a reusable decode target for row batches: the flat float64
// storage and the row headers over it are recycled across requests, so a
// steady-state DecodeRowsRequest performs no allocations. One RowBuf
// serves one request at a time; it must not be recycled while the decoded
// rows may still be referenced by the coalescer (see the pooling rules in
// the HTTP handler).
type RowBuf struct {
	flat []float64
	rows [][]float64
}

// shape returns n row headers of the given width over the buffer's flat
// storage, growing both backing slices only when capacity is exceeded.
func (b *RowBuf) shape(n, width int) [][]float64 {
	need := n * width
	if cap(b.flat) < need {
		b.flat = make([]float64, need)
	}
	b.flat = b.flat[:need]
	if cap(b.rows) < n {
		b.rows = make([][]float64, n)
	}
	b.rows = b.rows[:n]
	for i := 0; i < n; i++ {
		b.rows[i] = b.flat[i*width : (i+1)*width : (i+1)*width]
	}
	return b.rows
}

// AppendRowsRequest appends the binary encoding of an adapt request to
// dst. All rows must share one width; the zero-row case is encodable (the
// server rejects it, same as the JSON path).
func AppendRowsRequest(dst []byte, rows [][]float64, seed int64, predict bool) []byte {
	var flags uint16
	if predict {
		flags |= rowsFlagPredict
	}
	width := 0
	if len(rows) > 0 {
		width = len(rows[0])
	}
	dst = append(dst, RowsMagic...)
	dst = binenc.AppendU16(dst, rowsWireVersion)
	dst = binenc.AppendU16(dst, flags)
	dst = binenc.AppendI64(dst, seed)
	dst = binenc.AppendU32(dst, uint32(len(rows)))
	dst = binenc.AppendU32(dst, uint32(width))
	for _, row := range rows {
		dst = binenc.AppendF64sRaw(dst, row)
	}
	return dst
}

// DecodeRowsRequest decodes a request payload into buf, returning row
// headers owned by buf (valid until its next reuse). Steady-state calls
// with a warm buf allocate nothing. Finiteness is NOT checked here — the
// handler's shared validateRows pass covers both codecs identically.
func DecodeRowsRequest(data []byte, buf *RowBuf) (rows [][]float64, seed int64, predict bool, err error) {
	r := binenc.Reader{}
	r.Reset(data)
	if string(r.Bytes(len(RowsMagic))) != RowsMagic {
		return nil, 0, false, ErrWireMagic
	}
	version := r.U16()
	flags := r.U16()
	seed = r.I64()
	n := int(r.U32())
	width := int(r.U32())
	if e := r.Err(); e != nil {
		return nil, 0, false, fmt.Errorf("serve: decode rows request: %w", e)
	}
	if version != rowsWireVersion {
		return nil, 0, false, fmt.Errorf("%w %d", ErrWireVersion, version)
	}
	if n < 0 || n > maxWireDim || width < 0 || width > maxWireDim {
		return nil, 0, false, fmt.Errorf("%w: %d×%d", ErrWireShape, n, width)
	}
	if r.Remaining() != n*width*8 {
		return nil, 0, false, fmt.Errorf("%w: %d×%d needs %d payload bytes, have %d",
			ErrWireShape, n, width, n*width*8, r.Remaining())
	}
	rows = buf.shape(n, width)
	r.F64sInto(buf.flat)
	if e := r.Err(); e != nil {
		return nil, 0, false, fmt.Errorf("serve: decode rows request: %w", e)
	}
	return rows, seed, flags&rowsFlagPredict != 0, nil
}

// AppendRowsResponse appends the binary encoding of an adapt result to dst.
func AppendRowsResponse(dst []byte, res *Result) []byte {
	var flags uint16
	if res.Degraded {
		flags |= rowsFlagDegraded
	}
	if res.Predictions != nil {
		flags |= rowsFlagPreds
	}
	width := 0
	if len(res.Rows) > 0 {
		width = len(res.Rows[0])
	}
	dst = append(dst, RowsMagic...)
	dst = binenc.AppendU16(dst, rowsWireVersion)
	dst = binenc.AppendU16(dst, flags)
	dst = binenc.AppendString(dst, res.BundleID)
	dst = binenc.AppendU32(dst, uint32(len(res.Rows)))
	dst = binenc.AppendU32(dst, uint32(width))
	for _, row := range res.Rows {
		dst = binenc.AppendF64sRaw(dst, row)
	}
	if res.Predictions != nil {
		predCols := 0
		if len(res.Predictions) > 0 {
			predCols = len(res.Predictions[0])
		}
		dst = binenc.AppendU32(dst, uint32(predCols))
		for _, row := range res.Predictions {
			dst = binenc.AppendF64sRaw(dst, row)
		}
	}
	return dst
}

// DecodeRowsResponse decodes a response payload into the JSON-equivalent
// AdaptResponse shape. This is the client-side half (loadgen, chaoscheck,
// cross-codec tests); it allocates fresh rows.
func DecodeRowsResponse(data []byte) (AdaptResponse, error) {
	var out AdaptResponse
	r := binenc.Reader{}
	r.Reset(data)
	if string(r.Bytes(len(RowsMagic))) != RowsMagic {
		return out, ErrWireMagic
	}
	version := r.U16()
	flags := r.U16()
	out.BundleID = r.String()
	n := int(r.U32())
	width := int(r.U32())
	if e := r.Err(); e != nil {
		return out, fmt.Errorf("serve: decode rows response: %w", e)
	}
	if version != rowsWireVersion {
		return out, fmt.Errorf("%w %d", ErrWireVersion, version)
	}
	if n < 0 || n > maxWireDim || width < 0 || width > maxWireDim ||
		r.Remaining() < n*width*8 {
		return out, fmt.Errorf("%w: %d×%d", ErrWireShape, n, width)
	}
	out.Degraded = flags&rowsFlagDegraded != 0
	out.Rows = make([][]float64, n)
	for i := range out.Rows {
		out.Rows[i] = make([]float64, width)
		r.F64sInto(out.Rows[i])
	}
	if flags&rowsFlagPreds != 0 {
		predCols := int(r.U32())
		if e := r.Err(); e != nil {
			return out, fmt.Errorf("serve: decode rows response: %w", e)
		}
		if predCols < 0 || predCols > maxWireDim || r.Remaining() != n*predCols*8 {
			return out, fmt.Errorf("%w: predictions %d×%d", ErrWireShape, n, predCols)
		}
		out.Predictions = make([][]float64, n)
		for i := range out.Predictions {
			out.Predictions[i] = make([]float64, predCols)
			r.F64sInto(out.Predictions[i])
		}
	} else if r.Remaining() != 0 {
		return out, fmt.Errorf("%w: %d trailing bytes", ErrWireShape, r.Remaining())
	}
	if e := r.Err(); e != nil {
		return out, fmt.Errorf("serve: decode rows response: %w", e)
	}
	return out, nil
}
