// Package serve is the online serving layer: it exposes a fitted adapter
// (and optionally the downstream classifier) behind a micro-batching
// request coalescer with lock-free artifact hot-swap. The offline pipeline
// fits and persists artifacts; serve loads them as immutable bundles and
// runs only the inference hot paths (core.AdaptBatch, models.PredictProbaT),
// so one bundle safely serves any number of workers concurrently.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"

	"netdrift/internal/core"
	"netdrift/internal/models"
)

const bundleFormatVersion = 1

// Bundle is one immutable, atomically swappable serving artifact: the
// fitted adapter plus an optional downstream classifier. Nothing in a
// loaded bundle is ever mutated — hot-swap replaces the whole pointer.
type Bundle struct {
	// ID distinguishes bundles across swaps; it is echoed in every
	// response so clients (and the torn-read race test) can attribute an
	// output to the exact artifact that produced it.
	ID         string
	Adapter    *core.Adapter
	Classifier *models.MLPClassifier // nil when the bundle ships no model
}

// bundleBlob is the on-disk JSON envelope. The adapter and classifier
// payloads are their own packages' persistence formats, embedded raw.
type bundleBlob struct {
	FormatVersion int             `json:"format_version"`
	ID            string          `json:"id"`
	Adapter       json.RawMessage `json:"adapter"`
	Classifier    json.RawMessage `json:"classifier,omitempty"`
}

// ErrNoAdapter is returned when a bundle blob has no adapter payload.
var ErrNoAdapter = errors.New("serve: bundle has no adapter")

// ReadBundle decodes a bundle from r.
func ReadBundle(r io.Reader) (*Bundle, error) {
	var blob bundleBlob
	if err := json.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("serve: decode bundle: %w", err)
	}
	if blob.FormatVersion != bundleFormatVersion {
		return nil, fmt.Errorf("serve: unsupported bundle format %d", blob.FormatVersion)
	}
	if len(blob.Adapter) == 0 {
		return nil, ErrNoAdapter
	}
	b := &Bundle{ID: blob.ID}
	ad, err := core.LoadAdapter(bytes.NewReader(blob.Adapter))
	if err != nil {
		return nil, err
	}
	b.Adapter = ad
	if len(blob.Classifier) > 0 {
		clf, err := models.LoadMLPClassifier(bytes.NewReader(blob.Classifier))
		if err != nil {
			return nil, err
		}
		b.Classifier = clf
	}
	return b, nil
}

// LoadBundleFile reads a bundle from disk, sniffing the format: files
// starting with the NDBF magic decode through the binary fast path, any
// other content falls through to the JSON envelope. Both formats rebuild
// through the same blob-assembly code, so the loaded bundle is
// bit-identical either way.
func LoadBundleFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) >= len(BundleMagic) && string(data[:len(BundleMagic)]) == BundleMagic {
		return ReadBundleBinary(data)
	}
	return ReadBundle(bytes.NewReader(data))
}

// WriteBundle serializes a fitted adapter (and optional classifier) as a
// bundle with the given id.
func WriteBundle(w io.Writer, id string, ad *core.Adapter, clf *models.MLPClassifier) error {
	if ad == nil {
		return ErrNoAdapter
	}
	blob := bundleBlob{FormatVersion: bundleFormatVersion, ID: id}
	var buf jsonBuffer
	if err := ad.Save(&buf); err != nil {
		return err
	}
	blob.Adapter = buf.take()
	if clf != nil {
		if err := clf.Save(&buf); err != nil {
			return err
		}
		blob.Classifier = buf.take()
	}
	return json.NewEncoder(w).Encode(&blob)
}

// WriteBundleFile writes a bundle to disk.
func WriteBundleFile(path, id string, ad *core.Adapter, clf *models.MLPClassifier) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteBundle(f, id, ad, clf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonBuffer accumulates one sub-payload at a time for the envelope.
type jsonBuffer struct{ bytes.Buffer }

func (j *jsonBuffer) take() json.RawMessage {
	out := json.RawMessage(append([]byte(nil), j.Bytes()...))
	j.Reset()
	return out
}
