package obs

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// fakeClock is an injectable, manually advanced clock for rolling-window
// tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }
func approx(a, b, tol float64) bool          { return math.Abs(a-b) <= tol }

func TestREDTrackerBurnRateMath(t *testing.T) {
	clk := newFakeClock()
	slo := SLO{LatencyObjective: 0.1, Availability: 0.99} // 1% error budget
	tr := NewREDTracker(slo, time.Minute, 6, clk.now)

	for i := 0; i < 90; i++ {
		tr.Observe(0.01, false) // fast successes
	}
	for i := 0; i < 5; i++ {
		tr.Observe(0.01, true) // errors
	}
	for i := 0; i < 5; i++ {
		tr.Observe(0.5, false) // successful but over the latency objective
	}
	clk.advance(20 * time.Second)

	st := tr.Stats(time.Minute)
	if st.Requests != 100 || st.Errors != 5 || st.SlowOverSLO != 5 {
		t.Fatalf("counts = %d/%d/%d, want 100/5/5", st.Requests, st.Errors, st.SlowOverSLO)
	}
	if !approx(st.ErrorFraction, 0.05, 1e-12) {
		t.Errorf("ErrorFraction = %v, want 0.05", st.ErrorFraction)
	}
	if !approx(st.BadFraction, 0.10, 1e-12) {
		t.Errorf("BadFraction = %v, want 0.10 (errors + slow)", st.BadFraction)
	}
	// burn = bad / (1 - availability) = 0.10 / 0.01 = 10x the budget.
	if !approx(st.BurnRate, 10, 1e-9) {
		t.Errorf("BurnRate = %v, want 10", st.BurnRate)
	}
	// Coverage is clamped to the tracker's 20s age, so the rate is honest.
	if !approx(st.RatePerSec, 100.0/20.0, 1e-9) {
		t.Errorf("RatePerSec = %v, want 5 (100 reqs over 20s of life)", st.RatePerSec)
	}
	// Quantiles: p50 lands in a low-latency bucket, p99 in a slow one.
	if st.P50Seconds <= 0 || st.P50Seconds > 0.1 {
		t.Errorf("P50 = %v, want within the fast buckets", st.P50Seconds)
	}
	if st.P99Seconds < 0.1 {
		t.Errorf("P99 = %v, want pulled up by the 0.5s tail", st.P99Seconds)
	}
}

func TestREDTrackerWindowAging(t *testing.T) {
	clk := newFakeClock()
	tr := NewREDTracker(SLO{}, time.Minute, 6, clk.now) // 10s buckets
	for i := 0; i < 10; i++ {
		tr.Observe(0.01, false)
	}
	clk.advance(40 * time.Second)
	if st := tr.Stats(time.Minute); st.Requests != 10 {
		t.Errorf("after 40s: Requests = %d, want 10 still inside the window", st.Requests)
	}
	// A shorter lookback excludes the old bucket entirely.
	if st := tr.Stats(20 * time.Second); st.Requests != 0 {
		t.Errorf("20s lookback: Requests = %d, want 0", st.Requests)
	}
	clk.advance(40 * time.Second) // 80s total: everything aged out
	if st := tr.Stats(time.Minute); st.Requests != 0 {
		t.Errorf("after 80s: Requests = %d, want 0 (aged out)", st.Requests)
	}
	// New traffic lands in recycled buckets.
	tr.Observe(0.01, true)
	if st := tr.Stats(time.Minute); st.Requests != 1 || st.Errors != 1 {
		t.Errorf("recycled ring: %d/%d, want 1/1", st.Requests, st.Errors)
	}
}

func TestREDTrackerNilAndDefaults(t *testing.T) {
	var tr *REDTracker
	tr.Observe(1, true) // must not panic
	if st := tr.Stats(time.Minute); st.Requests != 0 {
		t.Error("nil tracker reported requests")
	}
	if got := tr.Objective(); got.Availability != 0.999 || got.LatencyObjective != 0.25 {
		t.Errorf("nil tracker objective = %+v, want defaults", got)
	}
	if got := (SLO{}).withDefaults(); got.LatencyObjective != 0.25 || got.Availability != 0.999 {
		t.Errorf("withDefaults = %+v", got)
	}
}

func TestSLOSetReportAndNames(t *testing.T) {
	clk := newFakeClock()
	s := NewSLOSet(SLO{}, time.Minute, 6, clk.now)
	s.Observe("/v1/adapt", 0.01, false)
	s.Observe("fault:batch.exec", 0, true)
	s.Observe("/healthz", 0.001, false)
	names := s.Names()
	want := []string{"/healthz", "/v1/adapt", "fault:batch.exec"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want sorted %v", names, want)
		}
	}
	rep := s.Report(time.Minute)
	if len(rep) != 3 || len(rep["/v1/adapt"]) != 1 || rep["/v1/adapt"][0].Requests != 1 {
		t.Errorf("Report = %v", rep)
	}
	var nilSet *SLOSet
	nilSet.Observe("x", 1, true) // must not panic
	if nilSet.Report() != nil || nilSet.Names() != nil {
		t.Error("nil SLOSet is not a no-op")
	}
}

// TestSLOExportExpositionByteStable is the map-ordering regression gate:
// two registries fed the same metrics in different insertion orders — and
// scraped repeatedly — must render byte-identical Prometheus text.
func TestSLOExportExpositionByteStable(t *testing.T) {
	render := func(order []string) []byte {
		clk := newFakeClock()
		s := NewSLOSet(SLO{}, time.Minute, 6, clk.now)
		for _, name := range order {
			s.Observe(name, 0.01, false)
			s.Observe(name, 0.3, true)
		}
		clk.advance(10 * time.Second)
		r := NewRegistry()
		// Counters registered in endpoint-dependent order too.
		for _, name := range order {
			r.Counter(MetricServeRequests, "outcome", name).Inc()
		}
		s.Export(r, time.Minute, 5*time.Minute)
		s.Export(r, time.Minute, 5*time.Minute) // re-export: same identities, no dupes
		var buf bytes.Buffer
		r.WritePrometheus(&buf)
		return buf.Bytes()
	}
	a := render([]string{"/v1/adapt", "/healthz", "fault:batch.exec"})
	b := render([]string{"fault:batch.exec", "/healthz", "/v1/adapt"})
	if !bytes.Equal(a, b) {
		t.Errorf("exposition depends on insertion order:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
	c := render([]string{"/v1/adapt", "/healthz", "fault:batch.exec"})
	if !bytes.Equal(a, c) {
		t.Error("exposition not byte-stable across identical runs")
	}
}
