package obs

import (
	"math"
	"sort"
	"sync"
)

// defaultHistogramBins bounds the memory of a streaming histogram. 64
// centroids keep quantile estimates within a couple of percent of the data
// range for the unimodal distributions produced by timers and losses.
const defaultHistogramBins = 64

// Histogram is a fixed-memory streaming histogram in the style of Ben-Haim
// & Tom-Tov (JMLR 2010): observations are absorbed into at most maxBins
// weighted centroids, merging the closest pair when the budget is
// exceeded. Quantiles are estimated by linear interpolation over the
// cumulative centroid weights. All methods are safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	maxBins int
	bins    []centroid // ascending by value
	count   uint64
	sum     float64
	min     float64
	max     float64
}

type centroid struct {
	value  float64
	weight float64
}

func newHistogram(maxBins int) *Histogram {
	if maxBins < 2 {
		maxBins = defaultHistogramBins
	}
	return &Histogram{maxBins: maxBins, min: math.Inf(1), max: math.Inf(-1)}
}

// Observe adds one sample. NaN samples are dropped.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	// Insert a unit-weight centroid at the sorted position.
	i := sort.Search(len(h.bins), func(i int) bool { return h.bins[i].value >= v })
	if i < len(h.bins) && h.bins[i].value == v {
		h.bins[i].weight++
		return
	}
	h.bins = append(h.bins, centroid{})
	copy(h.bins[i+1:], h.bins[i:])
	h.bins[i] = centroid{value: v, weight: 1}
	if len(h.bins) > h.maxBins {
		h.mergeClosest()
	}
}

// mergeClosest fuses the adjacent centroid pair with the smallest gap into
// their weighted mean, keeping the bin budget.
func (h *Histogram) mergeClosest() {
	best := 0
	bestGap := math.Inf(1)
	for i := 0; i+1 < len(h.bins); i++ {
		if gap := h.bins[i+1].value - h.bins[i].value; gap < bestGap {
			bestGap = gap
			best = i
		}
	}
	a, b := h.bins[best], h.bins[best+1]
	w := a.weight + b.weight
	h.bins[best] = centroid{
		value:  (a.value*a.weight + b.value*b.weight) / w,
		weight: w,
	}
	h.bins = append(h.bins[:best+1], h.bins[best+2:]...)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the exact running mean (not a centroid estimate).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (q in [0, 1]) by interpolating the
// cumulative centroid weights, anchored at the exact observed min and max.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * float64(h.count)
	// Treat each centroid as a mass point at its value, with half the
	// weight on either side; walk the cumulative curve between successive
	// centroid midpoints (the standard Ben-Haim "sum" inversion simplified
	// to trapezoid-free linear interpolation between centroids).
	var cum float64
	prevVal, prevCum := h.min, 0.0
	for _, b := range h.bins {
		mid := cum + b.weight/2
		if target <= mid {
			if mid == prevCum {
				return b.value
			}
			frac := (target - prevCum) / (mid - prevCum)
			return prevVal + frac*(b.value-prevVal)
		}
		prevVal, prevCum = b.value, mid
		cum += b.weight
	}
	// Tail: interpolate from the last centroid to the observed max.
	total := float64(h.count)
	if total == prevCum {
		return h.max
	}
	frac := (target - prevCum) / (total - prevCum)
	return prevVal + frac*(h.max-prevVal)
}

// quantiles returns estimates for several q values under one lock.
func (h *Histogram) quantiles(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if h == nil {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, q := range qs {
		out[i] = h.quantileLocked(q)
	}
	return out
}
