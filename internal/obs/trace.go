package obs

import (
	"os"
	"sync/atomic"
	"time"
)

// traceState is the process-wide trace-ID generator state: a splitmix64
// stream seeded once from the clock and PID, advanced atomically per mint.
// Trace IDs need to be unique and well-mixed, not secret, so no crypto
// randomness (or its syscall cost) is involved.
var traceState atomic.Uint64

func init() {
	traceState.Store(uint64(time.Now().UnixNano()) ^ uint64(os.Getpid())<<32 | 1)
}

const hexDigits = "0123456789abcdef"

// MintTraceID returns a fresh 16-hex-character trace ID. Safe for
// concurrent use; one string allocation per call.
func MintTraceID() string {
	z := traceState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[z&0xf]
		z >>= 4
	}
	return string(b[:])
}
