package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestFixedHistogramBuckets(t *testing.T) {
	h := NewFixedHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10, math.NaN()} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6 (NaN dropped)", got)
	}
	if got, want := h.Sum(), 0.5+1+1.5+2+3+10; got != want {
		t.Errorf("sum = %v, want %v", got, want)
	}
	// Bucket semantics are le (inclusive upper bound), Prometheus-style.
	want := []uint64{2, 2, 1, 1} // le=1: {0.5, 1}; le=2: {1.5, 2}; le=5: {3}; +Inf: {10}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count slice length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestFixedHistogramQuantile(t *testing.T) {
	h := NewFixedHistogram([]float64{0.01, 0.1, 1})
	// 100 samples uniformly in the (0.01, 0.1] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	// The interpolated median of a single fully-populated bucket sits at
	// its midpoint.
	if got := h.Quantile(0.5); math.Abs(got-0.055) > 1e-9 {
		t.Errorf("p50 = %v, want 0.055 (bucket midpoint)", got)
	}
	if got := h.Quantile(1); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("p100 = %v, want bucket upper bound 0.1", got)
	}
	// Overflow ranks clamp to the largest finite bound.
	h.Observe(50)
	if got := h.Quantile(0.999); got != 1 {
		t.Errorf("overflow quantile = %v, want largest finite bound 1", got)
	}
	var empty *FixedHistogram
	if empty.Quantile(0.5) != 0 || NewFixedHistogram(nil).Quantile(0.5) != 0 {
		t.Error("nil/empty histograms should report 0")
	}
}

func TestFixedHistogramConcurrent(t *testing.T) {
	h := NewFixedHistogram([]float64{1, 10})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Errorf("count = %d, want 8000", got)
	}
	if got := h.Sum(); got != 4000 {
		t.Errorf("sum = %v, want 4000", got)
	}
}

func TestFixedHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.FixedHistogram("req_seconds", []float64{0.1, 1}, "stage", "adapt")
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)
	// Same (name, labels) returns the same instance; bounds of later calls
	// are ignored.
	if again := r.FixedHistogram("req_seconds", []float64{9}, "stage", "adapt"); again != h {
		t.Fatal("second FixedHistogram call returned a different instance")
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{stage="adapt",le="0.1"} 1`,
		`req_seconds_bucket{stage="adapt",le="1"} 2`,
		`req_seconds_bucket{stage="adapt",le="+Inf"} 3`,
		`req_seconds_sum{stage="adapt"} 3.55`,
		`req_seconds_count{stage="adapt"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Snapshot carries count, sum, and the standard quantile points.
	var sawCount, sawP99 bool
	for _, s := range r.Snapshot() {
		switch {
		case s.Name == "req_seconds_count" && s.Value == 3:
			sawCount = true
		case s.Name == "req_seconds" && s.Labels["quantile"] == "0.99":
			sawP99 = true
		}
	}
	if !sawCount || !sawP99 {
		t.Errorf("snapshot missing fixed-histogram samples (count=%v p99=%v)", sawCount, sawP99)
	}
}
