package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value span annotation.
type Attr struct {
	Key   string
	Value string
}

// AttrList is an ordered attribute set. Small sets (≤ inlineAttrs) live in
// an array inlined in the Span, so annotating a span on the serve hot path
// does not allocate a map; the list marshals to the same JSON object shape
// the old map produced, in insertion order.
type AttrList []Attr

// Get returns the value for key, or "" when absent.
func (a AttrList) Get(key string) string {
	for _, kv := range a {
		if kv.Key == key {
			return kv.Value
		}
	}
	return ""
}

// MarshalJSON renders the list as a JSON object in insertion order.
func (a AttrList) MarshalJSON() ([]byte, error) {
	buf := make([]byte, 0, 16+len(a)*24)
	buf = append(buf, '{')
	for i, kv := range a {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, err := json.Marshal(kv.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(kv.Value)
		if err != nil {
			return nil, err
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON accepts the object shape MarshalJSON produces. Key order
// within the object is preserved only as far as encoding/json reports it
// (token order), which matches the emitted order.
func (a *AttrList) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(newByteReader(data))
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return &json.UnmarshalTypeError{Value: "non-object", Type: nil}
	}
	out := (*a)[:0]
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return err
		}
		var v string
		if err := dec.Decode(&v); err != nil {
			return err
		}
		out = append(out, Attr{Key: kt.(string), Value: v})
	}
	*a = out
	return nil
}

// newByteReader avoids bytes.NewReader's interface indirection cost in the
// tiny UnmarshalJSON path (and keeps this file's imports minimal).
type byteReader struct {
	b []byte
	i int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// SpanData is the immutable record a finished span emits to its Sink.
type SpanData struct {
	Trace    string        `json:"trace,omitempty"`
	ID       uint64        `json:"id"`
	ParentID uint64        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durationNs"`
	Attrs    AttrList      `json:"attrs,omitempty"`
}

// Sink receives finished spans. Implementations must be safe for
// concurrent use. A nil Sink disables tracing entirely (the no-op
// default): Observer.StartSpan then returns nil and every Span method on
// that nil span is a no-op, so the disabled path costs one pointer check.
type Sink interface {
	Emit(SpanData)
}

// Fanout combines sinks into one; nil entries are dropped. It returns nil
// when nothing remains (tracing stays disabled) and the sink itself when
// only one remains (no indirection on the single-sink path).
func Fanout(sinks ...Sink) Sink {
	var live fanoutSink
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

type fanoutSink []Sink

func (f fanoutSink) Emit(sp SpanData) {
	for _, s := range f {
		s.Emit(sp)
	}
}

// spanIDs is the process-wide span ID source.
var spanIDs atomic.Uint64

// inlineAttrs is the attr count a span stores without allocating beyond
// the span itself; rarer, larger sets spill into a slice.
const inlineAttrs = 8

// Span is one timed phase of the pipeline. Spans form a hierarchy via
// Child and share one trace ID per root request. All methods are nil-safe.
type Span struct {
	sink   Sink
	id     uint64
	parent uint64
	trace  string
	name   string
	start  time.Time
	mu     sync.Mutex
	inline [inlineAttrs]Attr
	nAttrs int
	spill  []Attr
	done   bool
}

func startSpan(sink Sink, parent uint64, trace, name string) *Span {
	if sink == nil {
		return nil
	}
	return &Span{
		sink:   sink,
		id:     spanIDs.Add(1),
		parent: parent,
		trace:  trace,
		name:   name,
		start:  time.Now(),
	}
}

// Child starts a sub-span sharing this span's sink and trace ID.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return startSpan(s.sink, s.id, s.trace, name)
}

// ID returns the span's process-unique ID (0 for a nil span).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Trace returns the span's trace ID ("" for a nil span).
func (s *Span) Trace() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// Start returns when the span began (zero for a nil span).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// SetAttr attaches a key/value annotation to the span, overwriting any
// previous value for the same key. The first inlineAttrs distinct keys are
// stored inline in the span, so hot-path annotation allocates nothing.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := 0; i < s.nAttrs; i++ {
		if s.inline[i].Key == key {
			s.inline[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	for i := range s.spill {
		if s.spill[i].Key == key {
			s.spill[i].Value = value
			s.mu.Unlock()
			return
		}
	}
	if s.nAttrs < inlineAttrs {
		s.inline[s.nAttrs] = Attr{Key: key, Value: value}
		s.nAttrs++
	} else {
		s.spill = append(s.spill, Attr{Key: key, Value: value})
	}
	s.mu.Unlock()
}

// End finishes the span and emits it to the sink. Repeated calls are
// ignored, so `defer sp.End()` composes with early explicit ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	var attrs AttrList
	if len(s.spill) > 0 {
		attrs = append(append(AttrList{}, s.inline[:s.nAttrs]...), s.spill...)
	} else if s.nAttrs > 0 {
		attrs = AttrList(s.inline[:s.nAttrs:s.nAttrs])
	}
	s.mu.Unlock()
	s.sink.Emit(SpanData{
		Trace:    s.trace,
		ID:       s.id,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	})
}

// JSONLinesSink writes one JSON object per finished span, suitable for
// appending to a trace log file. Spans that fail to marshal or write are
// dropped, but never silently: the drop count is observable via Drops and
// can be mirrored into a registry counter (MetricSpanDrops) with
// CountDrops.
type JSONLinesSink struct {
	mu      sync.Mutex
	w       io.Writer
	dropped atomic.Uint64
	counter *Counter // optional registry mirror; may be nil
}

// NewJSONLinesSink wraps w; writes are serialized internally.
func NewJSONLinesSink(w io.Writer) *JSONLinesSink {
	return &JSONLinesSink{w: w}
}

// CountDrops mirrors every dropped span into c (typically the registry's
// MetricSpanDrops counter, so /metrics exposes the loss).
func (s *JSONLinesSink) CountDrops(c *Counter) {
	s.mu.Lock()
	s.counter = c
	s.mu.Unlock()
}

// Drops returns the number of spans lost to marshal or write failures.
func (s *JSONLinesSink) Drops() uint64 { return s.dropped.Load() }

func (s *JSONLinesSink) drop() {
	s.dropped.Add(1)
	s.counter.Inc()
}

// Emit implements Sink.
func (s *JSONLinesSink) Emit(sp SpanData) {
	line, err := json.Marshal(sp)
	if err != nil {
		s.mu.Lock()
		s.drop()
		s.mu.Unlock()
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	if _, err := s.w.Write(line); err != nil {
		s.drop()
	}
	s.mu.Unlock()
}

// MemorySink collects finished spans in memory, for tests and inspection.
type MemorySink struct {
	mu    sync.Mutex
	spans []SpanData
}

// NewMemorySink creates an empty collector.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit implements Sink.
func (s *MemorySink) Emit(sp SpanData) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

// Spans returns a copy of everything collected so far.
func (s *MemorySink) Spans() []SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanData(nil), s.spans...)
}

// Find returns the first collected span with the given name.
func (s *MemorySink) Find(name string) (SpanData, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sp := range s.spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return SpanData{}, false
}
