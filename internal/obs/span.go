package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// SpanData is the immutable record a finished span emits to its Sink.
type SpanData struct {
	ID       uint64            `json:"id"`
	ParentID uint64            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"durationNs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Sink receives finished spans. Implementations must be safe for
// concurrent use. A nil Sink disables tracing entirely (the no-op
// default): Observer.StartSpan then returns nil and every Span method on
// that nil span is a no-op, so the disabled path costs one pointer check.
type Sink interface {
	Emit(SpanData)
}

// spanIDs is the process-wide span ID source.
var spanIDs atomic.Uint64

// Span is one timed phase of the pipeline. Spans form a hierarchy via
// Child. All methods are nil-safe.
type Span struct {
	sink   Sink
	id     uint64
	parent uint64
	name   string
	start  time.Time
	mu     sync.Mutex
	attrs  map[string]string
	done   bool
}

func startSpan(sink Sink, parent uint64, name string) *Span {
	if sink == nil {
		return nil
	}
	return &Span{
		sink:   sink,
		id:     spanIDs.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

// Child starts a sub-span sharing this span's sink.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return startSpan(s.sink, s.id, name)
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End finishes the span and emits it to the sink. Repeated calls are
// ignored, so `defer sp.End()` composes with early explicit ends.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	attrs := s.attrs
	s.mu.Unlock()
	s.sink.Emit(SpanData{
		ID:       s.id,
		ParentID: s.parent,
		Name:     s.name,
		Start:    s.start,
		Duration: time.Since(s.start),
		Attrs:    attrs,
	})
}

// JSONLinesSink writes one JSON object per finished span, suitable for
// appending to a trace log file.
type JSONLinesSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLinesSink wraps w; writes are serialized internally.
func NewJSONLinesSink(w io.Writer) *JSONLinesSink {
	return &JSONLinesSink{w: w}
}

// Emit implements Sink.
func (s *JSONLinesSink) Emit(sp SpanData) {
	line, err := json.Marshal(sp)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.mu.Lock()
	_, _ = s.w.Write(line)
	s.mu.Unlock()
}

// MemorySink collects finished spans in memory, for tests and inspection.
type MemorySink struct {
	mu    sync.Mutex
	spans []SpanData
}

// NewMemorySink creates an empty collector.
func NewMemorySink() *MemorySink { return &MemorySink{} }

// Emit implements Sink.
func (s *MemorySink) Emit(sp SpanData) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

// Spans returns a copy of everything collected so far.
func (s *MemorySink) Spans() []SpanData {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SpanData(nil), s.spans...)
}

// Find returns the first collected span with the given name.
func (s *MemorySink) Find(name string) (SpanData, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sp := range s.spans {
		if sp.Name == name {
			return sp, true
		}
	}
	return SpanData{}, false
}
