package obs

import "time"

// Metric names recorded by the instrumented pipeline. Centralized here so
// call sites, the driftbench summary, and the docs agree.
const (
	// internal/causal
	MetricCITests    = "netdrift_ci_tests_total"    // counter{kind="marginal"|"conditional"}
	MetricCICondSize = "netdrift_ci_cond_size"      // histogram of conditioning-set sizes
	MetricFSVerdicts = "netdrift_fs_features_total" // counter{verdict="variant"|"invariant"}
	MetricFSSearches = "netdrift_fs_searches_total" // counter
	// internal/core
	MetricAdapterFitSeconds = "netdrift_adapter_fit_seconds" // histogram
	MetricTransformSeconds  = "netdrift_transform_seconds"   // histogram
	MetricTransformRows     = "netdrift_transform_rows_total"
	MetricTrainEpochs       = "netdrift_train_epochs_total"    // counter{model=...}
	MetricGenLoss           = "netdrift_train_gen_loss"        // histogram{model=...}
	MetricDiscLoss          = "netdrift_train_disc_loss"       // histogram{model=...}
	MetricTrainFits         = "netdrift_train_fits_total"      // counter{model=...}
	MetricConvergedEpoch    = "netdrift_train_converged_epoch" // histogram{model=...}
	MetricTrainShards       = "netdrift_train_shards_total"    // counter{model=...}
	MetricTrainShardSeconds = "netdrift_train_shard_seconds"   // histogram{model=...}
	MetricReconError        = "netdrift_reconstruction_rmse"   // histogram
	// internal/monitor
	MetricMonitorChecks = "netdrift_monitor_checks_total"
	MetricMonitorDrifts = "netdrift_monitor_drifts_total"
	MetricMonitorKSStat = "netdrift_monitor_ks_stat" // histogram across features
	MetricMonitorPSI    = "netdrift_monitor_psi"     // histogram across features
	// internal/baselines
	MetricMethodSeconds = "netdrift_method_predict_seconds" // histogram{method=...}
	// internal/serve
	MetricServeRequests     = "netdrift_serve_requests_total"     // counter{outcome="ok"|"error"|"canceled"}
	MetricServeRows         = "netdrift_serve_rows_total"         // counter
	MetricServeBatches      = "netdrift_serve_batches_total"      // counter
	MetricServeSwaps        = "netdrift_serve_swaps_total"        // counter
	MetricServeReqLatency   = "netdrift_serve_request_seconds"    // fixed histogram
	MetricServeBatchLatency = "netdrift_serve_batch_seconds"      // fixed histogram
	MetricServeBatchSize    = "netdrift_serve_batch_size"         // fixed histogram
	MetricServeQueueDepth   = "netdrift_serve_queue_depth"        // gauge
	MetricServeBundleLoads  = "netdrift_serve_bundle_loads_total" // counter
	// internal/serve resilience layer
	MetricServeShed               = "netdrift_serve_shed_total"                // counter: requests refused with 429 by admission control
	MetricServeDegraded           = "netdrift_serve_degraded_total"            // counter: passthrough (degraded: true) responses
	MetricServePanics             = "netdrift_serve_recovered_panics_total"    // counter{site="executor"|"handler"}
	MetricServeBreakerTransitions = "netdrift_serve_breaker_transitions_total" // counter{breaker=..., to="closed"|"open"|"half-open"}
	// internal/serve wire codecs
	MetricServeCodecRequests = "netdrift_serve_codec_requests_total" // counter{codec="json"|"binary"}
	MetricServeRequestBytes  = "netdrift_serve_request_bytes"        // fixed histogram{codec=...}: /v1/adapt request body sizes
	MetricServeResponseBytes = "netdrift_serve_response_bytes"       // fixed histogram{codec=...}: /v1/adapt response body sizes
	// internal/ctrl drift-response controller
	MetricCtrlTransitions     = "netdrift_ctrl_transitions_total"       // counter{event="drift-detected"|"refit-start"|...}
	MetricCtrlIngestRows      = "netdrift_ctrl_ingest_rows_total"       // counter: target rows accepted into the controller
	MetricCtrlReservoirRows   = "netdrift_ctrl_reservoir_rows"          // gauge: labelled shots currently retained
	MetricCtrlEpoch           = "netdrift_ctrl_epoch"                   // gauge: promotions survived by the controller
	MetricCtrlRefitSeconds    = "netdrift_ctrl_refit_seconds"           // histogram: wall time of successful refits
	MetricCtrlGateScore       = "netdrift_ctrl_gate_score"              // gauge{role="candidate"|"incumbent"}: last shadow-gate macro-F1
	MetricCtrlDriftToRecovery = "netdrift_ctrl_drift_to_recovery_seconds" // gauge: drift-detected -> promote wall time, last campaign
	MetricCtrlCheckpoints     = "netdrift_ctrl_checkpoints_total"       // counter: atomic checkpoint files written
	// internal/obs tracing + flight recorder + SLO layer
	MetricSpanDrops       = "obs_span_drops_total"               // counter: spans lost to sink marshal/write failures
	MetricFlightEvents    = "netdrift_flightrec_events_total"    // counter: events recorded into the flight ring
	MetricFlightSnapshots = "netdrift_flightrec_snapshots_total" // counter{reason=...}: automatic snapshot files written
	MetricSLOBurnRate     = "netdrift_slo_burn_rate"             // gauge{endpoint=..., window=...}
	MetricSLOErrFraction  = "netdrift_slo_error_fraction"        // gauge{endpoint=..., window=...}
	MetricSLOReqRate      = "netdrift_slo_request_rate"          // gauge{endpoint=..., window=...}: requests/s over the window
	MetricSLOLatency      = "netdrift_slo_latency_seconds"       // gauge{endpoint=..., window=..., quantile=...}
)

// TrainEpoch reports one completed reconstructor training epoch.
type TrainEpoch struct {
	Model       string  // "GAN", "NoCond", "VAE", "VanillaAE"
	Epoch       int     // 0-based
	GenLoss     float64 // generator / total loss (epoch mean)
	DiscLoss    float64 // discriminator loss (epoch mean); adversarial models only
	Adversarial bool    // whether DiscLoss is meaningful
}

// TrainDone reports the end of one reconstructor fit.
type TrainDone struct {
	Model          string
	Epochs         int // epochs actually run
	ConvergedEpoch int // 1-based epoch of the best (minimum) epoch-mean loss
}

// TrainHook observes reconstructor training progress.
type TrainHook interface {
	Epoch(TrainEpoch)
	Done(TrainDone)
}

// CITest reports one conditional-independence test from the FS search.
type CITest struct {
	X, Y     int     // variable indices (Y is the F-node in the FS search)
	CondSize int     // |conditioning set|; 0 for marginal tests
	P        float64 // Fisher-z p-value
}

// FeatureVerdict reports the FS search's final call on one feature.
type FeatureVerdict struct {
	Feature    int
	Variant    bool
	Exonerated bool    // dependence on the domain explained away by siblings
	MarginalP  float64 // the feature's marginal p-value against the F-node
}

// SearchHook observes the causal feature-separation search.
type SearchHook interface {
	CITest(CITest)
	Verdict(FeatureVerdict)
}

// Observer bundles the observability channels: a metrics registry, a span
// sink, a flight recorder, and optional typed hooks. Any field may be nil;
// a nil *Observer disables everything. Pass one Observer through the
// pipeline configs to light up instrumentation end to end.
type Observer struct {
	Registry *Registry
	Spans    Sink
	Flight   *FlightRecorder
	Train    TrainHook
	Search   SearchHook
}

// New returns an Observer with a fresh metrics registry and no span sink.
func New() *Observer {
	return &Observer{Registry: NewRegistry()}
}

// Enabled reports whether any instrumentation is active.
func (o *Observer) Enabled() bool { return o != nil }

// Counter is a nil-safe Registry.Counter.
func (o *Observer) Counter(name string, labels ...string) *Counter {
	if o == nil {
		return nil
	}
	return o.Registry.Counter(name, labels...)
}

// Gauge is a nil-safe Registry.Gauge.
func (o *Observer) Gauge(name string, labels ...string) *Gauge {
	if o == nil {
		return nil
	}
	return o.Registry.Gauge(name, labels...)
}

// Histogram is a nil-safe Registry.Histogram.
func (o *Observer) Histogram(name string, labels ...string) *Histogram {
	if o == nil {
		return nil
	}
	return o.Registry.Histogram(name, labels...)
}

// FixedHistogram is a nil-safe Registry.FixedHistogram.
func (o *Observer) FixedHistogram(name string, bounds []float64, labels ...string) *FixedHistogram {
	if o == nil {
		return nil
	}
	return o.Registry.FixedHistogram(name, bounds, labels...)
}

// StartSpan opens a root span; returns nil (all methods no-ops) when
// tracing is disabled.
func (o *Observer) StartSpan(name string) *Span {
	if o == nil {
		return nil
	}
	return startSpan(o.Spans, 0, "", name)
}

// StartTrace opens a root span bound to a trace ID — the entry point for
// request-scoped tracing. An empty trace mints a fresh ID; an inbound ID
// (e.g. from an X-Request-ID header) is carried verbatim so a caller's
// correlation key survives end to end. Returns nil when tracing is
// disabled, in which case nothing (including the mint) allocates.
func (o *Observer) StartTrace(name, trace string) *Span {
	if o == nil || o.Spans == nil {
		return nil
	}
	if trace == "" {
		trace = MintTraceID()
	}
	return startSpan(o.Spans, 0, trace, name)
}

// FlightRecord appends one event to the flight recorder, if one is
// installed. Nil-safe and non-blocking.
func (o *Observer) FlightRecord(kind, name, trace, detail string) {
	if o == nil {
		return
	}
	o.Flight.Record(kind, name, trace, detail)
}

// FlightSnapshot writes an automatic flight-recorder snapshot for reason,
// if a recorder with a snapshot path is installed. Returns the file
// written, or "".
func (o *Observer) FlightSnapshot(reason string) string {
	if o == nil {
		return ""
	}
	path := o.Flight.AutoSnapshot(reason)
	if path != "" && o.Registry != nil {
		o.Registry.Counter(MetricFlightSnapshots, "reason", reason).Inc()
	}
	return path
}

// noop is the shared disabled-path closure returned by Time.
var noop = func() {}

// Time starts a latency timer; invoking the returned func observes the
// elapsed seconds into the named histogram. Disabled observers return a
// shared no-op without touching the clock.
func (o *Observer) Time(name string, labels ...string) func() {
	if o == nil || o.Registry == nil {
		return noop
	}
	h := o.Registry.Histogram(name, labels...)
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// OnTrainEpoch records one training epoch into the registry and forwards
// it to the TrainHook.
func (o *Observer) OnTrainEpoch(e TrainEpoch) {
	if o == nil {
		return
	}
	if r := o.Registry; r != nil {
		r.Counter(MetricTrainEpochs, "model", e.Model).Inc()
		r.Histogram(MetricGenLoss, "model", e.Model).Observe(e.GenLoss)
		if e.Adversarial {
			r.Histogram(MetricDiscLoss, "model", e.Model).Observe(e.DiscLoss)
		}
	}
	if o.Train != nil {
		o.Train.Epoch(e)
	}
}

// OnTrainDone records the end of a reconstructor fit.
func (o *Observer) OnTrainDone(d TrainDone) {
	if o == nil {
		return
	}
	if r := o.Registry; r != nil {
		r.Counter(MetricTrainFits, "model", d.Model).Inc()
		r.Histogram(MetricConvergedEpoch, "model", d.Model).Observe(float64(d.ConvergedEpoch))
	}
	if o.Train != nil {
		o.Train.Done(d)
	}
}

// OnTrainShard records one gradient-shard execution of a data-parallel
// training step: its wall time and a shard counter. Metrics only — it is
// deliberately NOT forwarded to the TrainHook, so hook event streams stay
// bit-identical across worker counts (shard timings are timing-dependent;
// hook streams are part of the determinism contract).
func (o *Observer) OnTrainShard(model string, seconds float64) {
	if o == nil {
		return
	}
	if r := o.Registry; r != nil {
		r.Counter(MetricTrainShards, "model", model).Inc()
		r.Histogram(MetricTrainShardSeconds, "model", model).Observe(seconds)
	}
}

// OnCITest records one CI test into the registry and forwards it to the
// SearchHook.
func (o *Observer) OnCITest(t CITest) {
	if o == nil {
		return
	}
	if r := o.Registry; r != nil {
		kind := "marginal"
		if t.CondSize > 0 {
			kind = "conditional"
		}
		r.Counter(MetricCITests, "kind", kind).Inc()
		r.Histogram(MetricCICondSize).Observe(float64(t.CondSize))
	}
	if o.Search != nil {
		o.Search.CITest(t)
	}
}

// OnVerdict records one FS feature verdict.
func (o *Observer) OnVerdict(v FeatureVerdict) {
	if o == nil {
		return
	}
	if r := o.Registry; r != nil {
		verdict := "invariant"
		if v.Variant {
			verdict = "variant"
		}
		r.Counter(MetricFSVerdicts, "verdict", verdict).Inc()
	}
	if o.Search != nil {
		o.Search.Verdict(v)
	}
}
