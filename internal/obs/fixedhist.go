package obs

import (
	"math"
	"sort"
	"sync/atomic"
)

// LatencyBuckets are the default fixed boundaries for request/batch
// latency histograms: 100µs to 10s in a roughly logarithmic ladder, wide
// enough for both an in-process adaptation call and a loaded HTTP
// round-trip.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// BatchSizeBuckets are the default fixed boundaries for micro-batch size
// distributions (powers of two up to a generous coalescing ceiling).
var BatchSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}

// SizeBuckets are the default fixed boundaries for request/response body
// size histograms: 64 B to 4 MiB in powers of four, spanning a one-row
// JSON body through a large binary row batch.
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}

// FixedHistogram is a fixed-boundary histogram: observations are counted
// into buckets with explicit ascending upper bounds (plus an implicit
// +Inf overflow bucket), the native Prometheus "histogram" shape. Unlike
// the streaming Histogram it is lock-free — Observe is two atomic adds
// and a CAS loop for the sum — which suits high-rate serving paths where
// many goroutines record latencies concurrently. Quantiles (p50/p90/p99
// via Snapshot) are estimated by linear interpolation inside the target
// bucket, exactly as Prometheus' histogram_quantile does.
type FixedHistogram struct {
	bounds  []float64 // ascending upper bounds; +Inf bucket is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewFixedHistogram creates a histogram with the given ascending upper
// bounds. The bounds are copied, sorted, and deduplicated; an empty list
// falls back to LatencyBuckets.
func NewFixedHistogram(bounds []float64) *FixedHistogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if i > 0 && len(dedup) > 0 && dedup[len(dedup)-1] == b {
			continue
		}
		dedup = append(dedup, b)
	}
	return &FixedHistogram{
		bounds:  dedup,
		buckets: make([]atomic.Uint64, len(dedup)+1),
	}
}

// Observe counts one sample. NaN samples are dropped. Safe for concurrent
// use; nil-safe like every obs handle.
func (h *FixedHistogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	i := searchBound(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *FixedHistogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *FixedHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the bucket upper bounds (shared slice; do not mutate).
func (h *FixedHistogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// BucketCounts returns a snapshot of the per-bucket (non-cumulative)
// counts; the final element is the +Inf overflow bucket.
func (h *FixedHistogram) BucketCounts() []uint64 {
	if h == nil {
		return nil
	}
	out := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear interpolation
// within the bucket containing the target rank, Prometheus-style: the
// first bucket interpolates from zero, and ranks landing in the +Inf
// bucket report the largest finite bound.
func (h *FixedHistogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return bucketQuantile(h.bounds, h.BucketCounts(), q)
}

// searchBound returns the bucket index for value v against ascending
// bounds: the first bound >= v, or len(bounds) for the +Inf bucket.
func searchBound(bounds []float64, v float64) int {
	return sort.SearchFloat64s(bounds, v)
}

// bucketQuantile is the shared fixed-bucket quantile estimator used by
// FixedHistogram and the rolling RED windows: counts holds per-bound
// counts plus the trailing +Inf bucket.
func bucketQuantile(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		next := cum + float64(c)
		if target <= next && c > 0 {
			if i == len(bounds) {
				// Overflow bucket: no finite upper bound to interpolate to.
				if len(bounds) == 0 {
					return 0
				}
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo + (bounds[i]-lo)*(target-cum)/float64(c)
		}
		cum = next
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1]
}

// quantilesFixed returns estimates for several q values.
func (h *FixedHistogram) quantilesFixed(qs ...float64) []float64 {
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}
