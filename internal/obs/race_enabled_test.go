//go:build race

package obs

// raceEnabled lets allocation-budget tests skip themselves: allocation
// accounting is not meaningful under the race detector's instrumentation.
const raceEnabled = true
