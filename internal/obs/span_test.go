package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpanHierarchyMemorySink(t *testing.T) {
	sink := NewMemorySink()
	o := &Observer{Spans: sink}
	root := o.StartSpan("adapter.fit")
	child := root.Child("feature_separation")
	child.SetAttr("features", "32")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()
	root.End() // double End must be a no-op

	spans := sink.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	fs, ok := sink.Find("feature_separation")
	if !ok {
		t.Fatal("missing child span")
	}
	rt, _ := sink.Find("adapter.fit")
	if fs.ParentID != rt.ID {
		t.Errorf("child parent = %d, want root id %d", fs.ParentID, rt.ID)
	}
	if fs.Attrs.Get("features") != "32" {
		t.Errorf("attrs = %v", fs.Attrs)
	}
	if fs.Duration <= 0 {
		t.Error("child span should have positive duration")
	}
	if rt.Duration < fs.Duration {
		t.Error("root should outlast child")
	}
}

func TestSpanNilSafety(t *testing.T) {
	var o *Observer
	sp := o.StartSpan("x") // nil observer -> nil span
	if sp != nil {
		t.Fatal("nil observer should return nil span")
	}
	sp.SetAttr("k", "v")
	child := sp.Child("y")
	child.End()
	sp.End()

	// Observer with no sink also short-circuits.
	o2 := &Observer{}
	if sp := o2.StartSpan("x"); sp != nil {
		t.Fatal("sinkless observer should return nil span")
	}
}

func TestJSONLinesSink(t *testing.T) {
	var buf strings.Builder
	sink := NewJSONLinesSink(&buf)
	o := &Observer{Spans: sink}
	a := o.StartSpan("one")
	a.SetAttr("k", "v")
	a.End()
	o.StartSpan("two").End()

	sc := bufio.NewScanner(strings.NewReader(buf.String()))
	var names []string
	for sc.Scan() {
		var sp SpanData
		if err := json.Unmarshal(sc.Bytes(), &sp); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		names = append(names, sp.Name)
	}
	if len(names) != 2 || names[0] != "one" || names[1] != "two" {
		t.Errorf("names = %v", names)
	}
}
