package obs

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactQuantile computes the ground-truth q-quantile of a sorted slice via
// linear interpolation (same convention as internal/stats.Quantile).
func exactQuantile(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

func testQuantileAccuracy(t *testing.T, name string, draw func(*rand.Rand) float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	h := newHistogram(defaultHistogramBins)
	data := make([]float64, n)
	for i := range data {
		data[i] = draw(rng)
		h.Observe(data[i])
	}
	sorted := append([]float64(nil), data...)
	sort.Float64s(sorted)
	spread := sorted[len(sorted)-1] - sorted[0]
	for _, q := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := h.Quantile(q)
		want := exactQuantile(sorted, q)
		if err := math.Abs(got - want); err > 0.05*spread {
			t.Errorf("%s: quantile(%.2f) = %.4f, exact %.4f (err %.4f > 5%% of range %.4f)",
				name, q, got, want, err, spread)
		}
	}
	if h.Count() != n {
		t.Errorf("%s: count = %d, want %d", name, h.Count(), n)
	}
	var sum float64
	for _, v := range data {
		sum += v
	}
	if math.Abs(h.Sum()-sum) > 1e-6*math.Abs(sum) {
		t.Errorf("%s: sum = %g, want %g", name, h.Sum(), sum)
	}
	if h.Min() != sorted[0] || h.Max() != sorted[len(sorted)-1] {
		t.Errorf("%s: min/max = %g/%g, want %g/%g", name, h.Min(), h.Max(), sorted[0], sorted[len(sorted)-1])
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	testQuantileAccuracy(t, "uniform", func(r *rand.Rand) float64 { return r.Float64() * 100 })
}

func TestHistogramQuantileNormal(t *testing.T) {
	testQuantileAccuracy(t, "normal", func(r *rand.Rand) float64 { return 5 + 2*r.NormFloat64() })
}

func TestHistogramQuantileExponential(t *testing.T) {
	testQuantileAccuracy(t, "exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() })
}

func TestHistogramSmall(t *testing.T) {
	h := newHistogram(8)
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(3)
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("single-sample median = %g, want 3", got)
	}
	h.Observe(1)
	h.Observe(2)
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q0 = %g, want 1", got)
	}
	if got := h.Quantile(1); got != 3 {
		t.Errorf("q1 = %g, want 3", got)
	}
	if got := h.Mean(); math.Abs(got-2) > 1e-12 {
		t.Errorf("mean = %g, want 2", got)
	}
}

func TestHistogramNaNAndNil(t *testing.T) {
	h := newHistogram(8)
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Error("NaN should be dropped")
	}
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	if nilH.Count() != 0 || nilH.Quantile(0.5) != 0 {
		t.Error("nil histogram should be inert")
	}
}

func TestHistogramBinBudget(t *testing.T) {
	h := newHistogram(16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		h.Observe(rng.NormFloat64())
	}
	if len(h.bins) > 16 {
		t.Errorf("bins = %d, want <= 16", len(h.bins))
	}
	for i := 0; i+1 < len(h.bins); i++ {
		if h.bins[i].value > h.bins[i+1].value {
			t.Fatalf("bins out of order at %d", i)
		}
	}
}
