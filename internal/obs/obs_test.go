package obs

import (
	"testing"
	"time"
)

// recordingHooks captures forwarded hook events.
type recordingHooks struct {
	epochs   []TrainEpoch
	dones    []TrainDone
	tests    []CITest
	verdicts []FeatureVerdict
}

func (r *recordingHooks) Epoch(e TrainEpoch)       { r.epochs = append(r.epochs, e) }
func (r *recordingHooks) Done(d TrainDone)         { r.dones = append(r.dones, d) }
func (r *recordingHooks) CITest(t CITest)          { r.tests = append(r.tests, t) }
func (r *recordingHooks) Verdict(v FeatureVerdict) { r.verdicts = append(r.verdicts, v) }

func TestObserverNilSafety(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Error("nil observer should be disabled")
	}
	o.Counter("c").Inc()
	o.Gauge("g").Set(1)
	o.Histogram("h").Observe(1)
	o.Time("t")()
	o.OnTrainEpoch(TrainEpoch{})
	o.OnTrainDone(TrainDone{})
	o.OnCITest(CITest{})
	o.OnVerdict(FeatureVerdict{})
}

func TestObserverHookForwarding(t *testing.T) {
	rec := &recordingHooks{}
	o := New()
	o.Train = rec
	o.Search = rec

	o.OnTrainEpoch(TrainEpoch{Model: "GAN", Epoch: 0, GenLoss: 1.5, DiscLoss: 0.7, Adversarial: true})
	o.OnTrainDone(TrainDone{Model: "GAN", Epochs: 10, ConvergedEpoch: 8})
	o.OnCITest(CITest{X: 3, Y: 12, CondSize: 2, P: 0.4})
	o.OnCITest(CITest{X: 4, Y: 12, CondSize: 0, P: 0.001})
	o.OnVerdict(FeatureVerdict{Feature: 4, Variant: true})
	o.OnVerdict(FeatureVerdict{Feature: 3, Variant: false, Exonerated: true})

	if len(rec.epochs) != 1 || rec.epochs[0].GenLoss != 1.5 {
		t.Errorf("epochs = %+v", rec.epochs)
	}
	if len(rec.dones) != 1 || rec.dones[0].ConvergedEpoch != 8 {
		t.Errorf("dones = %+v", rec.dones)
	}
	if len(rec.tests) != 2 {
		t.Errorf("tests = %+v", rec.tests)
	}
	if len(rec.verdicts) != 2 {
		t.Errorf("verdicts = %+v", rec.verdicts)
	}

	// The registry side must record in parallel with the hooks.
	if v, ok := o.Registry.Value(MetricCITests, "kind", "conditional"); !ok || v != 1 {
		t.Errorf("conditional CI counter = %g, %v", v, ok)
	}
	if v, ok := o.Registry.Value(MetricCITests, "kind", "marginal"); !ok || v != 1 {
		t.Errorf("marginal CI counter = %g, %v", v, ok)
	}
	if v, ok := o.Registry.Value(MetricFSVerdicts, "verdict", "variant"); !ok || v != 1 {
		t.Errorf("variant verdict counter = %g, %v", v, ok)
	}
	if c := o.Registry.Histogram(MetricGenLoss, "model", "GAN").Count(); c != 1 {
		t.Errorf("gen loss observations = %d", c)
	}
	if c := o.Registry.Histogram(MetricConvergedEpoch, "model", "GAN").Count(); c != 1 {
		t.Errorf("converged epoch observations = %d", c)
	}
}

func TestObserverTime(t *testing.T) {
	o := New()
	stop := o.Time(MetricTransformSeconds)
	time.Sleep(2 * time.Millisecond)
	stop()
	h := o.Registry.Histogram(MetricTransformSeconds)
	if h.Count() != 1 {
		t.Fatalf("timer observations = %d", h.Count())
	}
	if h.Sum() <= 0 {
		t.Error("timer should record positive elapsed seconds")
	}
}
