package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderWrapAndOrder(t *testing.T) {
	r := NewFlightRecorder(8)
	for i := 1; i <= 20; i++ {
		r.Record(FlightKindMark, "m", "", strconv.Itoa(i))
	}
	if got := r.LastSeq(); got != 20 {
		t.Fatalf("LastSeq = %d, want 20", got)
	}
	evs := r.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot has %d events, want capacity 8", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(13 + i) // the last 8 of 20, ascending
		if ev.Seq != wantSeq || ev.Detail != strconv.FormatUint(wantSeq, 10) {
			t.Errorf("event %d: seq=%d detail=%q, want seq=%d", i, ev.Seq, ev.Detail, wantSeq)
		}
	}
}

func TestFlightRecorderDefaultsAndNil(t *testing.T) {
	if got := NewFlightRecorder(0).Capacity(); got != DefaultFlightCapacity {
		t.Errorf("default capacity %d, want %d", got, DefaultFlightCapacity)
	}
	var r *FlightRecorder
	r.Record(FlightKindMark, "x", "", "") // must not panic
	if r.Snapshot() != nil || r.LastSeq() != 0 || r.Capacity() != 0 {
		t.Error("nil recorder is not a no-op")
	}
	if r.AutoSnapshot("x") != "" {
		t.Error("nil recorder wrote a snapshot")
	}
}

// TestFlightRecorderRaceHammer is the -race soak: many concurrent writers
// against concurrent snapshotters. Every observed event must be internally
// consistent (untorn), and afterwards the sequence must account for every
// record.
func TestFlightRecorderRaceHammer(t *testing.T) {
	const (
		writers = 8
		perW    = 1000
	)
	r := NewFlightRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshot readers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, ev := range r.Snapshot() {
					// Torn events would mix fields from different writers.
					if ev.Detail != ev.Name {
						t.Errorf("torn event: seq=%d name=%q detail=%q", ev.Seq, ev.Name, ev.Detail)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				tag := fmt.Sprintf("w%d-%d", w, i)
				r.Record(FlightKindMark, tag, "", tag)
			}
		}(w)
	}
	go func() {
		// Close the reader loop once writers drain; a timeout guards hangs.
		deadline := time.After(30 * time.Second)
		for r.LastSeq() < writers*perW {
			select {
			case <-deadline:
				close(stop)
				return
			default:
				time.Sleep(time.Millisecond)
			}
		}
		close(stop)
	}()
	wg.Wait()
	if got := r.LastSeq(); got != writers*perW {
		t.Errorf("LastSeq = %d, want %d", got, writers*perW)
	}
	evs := r.Snapshot()
	if len(evs) != 64 {
		t.Errorf("final snapshot %d events, want full ring 64", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("snapshot not strictly ordered: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestFlightRecorderRecordAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed under -race")
	}
	r := NewFlightRecorder(128)
	allocs := testing.AllocsPerRun(500, func() {
		r.Record(FlightKindBreaker, "executor", "", "open")
	})
	if allocs > 1 { // exactly the published event
		t.Errorf("Record allocates %.1f/op, want <=1", allocs)
	}
}

func TestFlightRecorderCountEvents(t *testing.T) {
	reg := NewRegistry()
	r := NewFlightRecorder(8)
	r.CountEvents(reg.Counter(MetricFlightEvents))
	for i := 0; i < 5; i++ {
		r.Record(FlightKindMark, "m", "", "")
	}
	var got float64
	for _, s := range reg.Snapshot() {
		if s.Name == MetricFlightEvents {
			got = s.Value
		}
	}
	if got != 5 {
		t.Errorf("%s = %v, want 5", MetricFlightEvents, got)
	}
}

func TestFlightAutoSnapshotThrottleAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "flightrec.json")
	r := NewFlightRecorder(16)
	r.Record(FlightKindPanic, "executor", "tr-1", "boom")
	r.SetAutoSnapshot(path, time.Hour)
	if got := r.AutoSnapshot("executor-panic"); got != path {
		t.Fatalf("AutoSnapshot = %q, want %q", got, path)
	}
	if got := r.AutoSnapshot("again"); got != "" {
		t.Errorf("second AutoSnapshot inside the throttle window wrote %q", got)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Reason != "executor-panic" || len(snap.Events) != 1 || snap.Events[0].Trace != "tr-1" {
		t.Errorf("snapshot = %+v, want the recorded panic under reason executor-panic", snap)
	}
	// No leftover temp file from the atomic write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("snapshot dir has %d entries, want just the snapshot", len(entries))
	}
	// Disarmed recorder writes nothing.
	r.SetAutoSnapshot("", 0)
	if got := r.AutoSnapshot("x"); got != "" {
		t.Errorf("disarmed AutoSnapshot wrote %q", got)
	}
}

func TestFlightSpanSinkForwardsAndRecords(t *testing.T) {
	r := NewFlightRecorder(8)
	mem := NewMemorySink()
	o := &Observer{Registry: NewRegistry(), Flight: r, Spans: r.SpanSink(mem)}
	sp := o.StartTrace("http.adapt", "trace-9")
	sp.SetAttr("outcome", "ok")
	sp.End()
	if got, ok := mem.Find("http.adapt"); !ok || got.Trace != "trace-9" {
		t.Fatalf("wrapped sink did not forward: %+v ok=%v", got, ok)
	}
	evs := r.Snapshot()
	if len(evs) != 1 || evs[0].Kind != FlightKindSpan || evs[0].Trace != "trace-9" || evs[0].Name != "http.adapt" {
		t.Errorf("flight ring = %+v, want one span event with the trace", evs)
	}
	// A nil recorder degrades to the wrapped sink; a nil next still records.
	var nilRec *FlightRecorder
	if s := nilRec.SpanSink(mem); s != Sink(mem) {
		t.Error("nil recorder SpanSink should return next unchanged")
	}
	solo := NewFlightRecorder(4)
	solo.SpanSink(nil).Emit(SpanData{Name: "x"})
	if solo.LastSeq() != 1 {
		t.Error("SpanSink(nil) did not record")
	}
}

func TestWriteSnapshotShape(t *testing.T) {
	r := NewFlightRecorder(4)
	r.Record(FlightKindSwap, "registry", "", "bundle-b")
	var buf bytes.Buffer
	if err := r.WriteSnapshot(&buf, "debug"); err != nil {
		t.Fatal(err)
	}
	var snap FlightSnapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Reason != "debug" || snap.Capacity != 4 || snap.LastSeq != 1 || len(snap.Events) != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
}
