package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "code", "200")
	c.Inc()
	c.Add(2)
	c.Add(-5) // negative deltas ignored on counters
	if got := c.Value(); got != 3 {
		t.Errorf("counter = %g, want 3", got)
	}
	if same := r.Counter("requests_total", "code", "200"); same != c {
		t.Error("same (name, labels) should return the same counter")
	}
	if other := r.Counter("requests_total", "code", "500"); other == c {
		t.Error("different labels should return a different counter")
	}

	g := r.Gauge("temperature")
	g.Set(20)
	g.Add(-5)
	if got := g.Value(); got != 15 {
		t.Errorf("gauge = %g, want 15", got)
	}

	if v, ok := r.Value("requests_total", "code", "200"); !ok || v != 3 {
		t.Errorf("Value = %g, %v; want 3, true", v, ok)
	}
	if _, ok := r.Value("missing"); ok {
		t.Error("missing metric should report !ok")
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("ops_total").Inc()
				r.Counter("ops_by_worker_total", "w", string(rune('a'+w%4))).Inc()
				r.Gauge("last").Set(float64(i))
				r.Histogram("latency").Observe(float64(i))
				if i%100 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("ops_total").Value(); got != workers*perWorker {
		t.Errorf("ops_total = %g, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("latency").Count(); got != workers*perWorker {
		t.Errorf("latency count = %d, want %d", got, workers*perWorker)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("netdrift_ci_tests_total", "kind", "marginal").Add(42)
	r.Counter("netdrift_ci_tests_total", "kind", "conditional").Add(7)
	r.Gauge("netdrift_up").Set(1)
	h := r.Histogram("netdrift_latency_seconds", "phase", "fit")
	for i := 1; i <= 4; i++ {
		h.Observe(float64(i))
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE netdrift_ci_tests_total counter
netdrift_ci_tests_total{kind="conditional"} 7
netdrift_ci_tests_total{kind="marginal"} 42
# TYPE netdrift_latency_seconds summary
netdrift_latency_seconds{phase="fit",quantile="0.5"} 2.5
netdrift_latency_seconds{phase="fit",quantile="0.9"} 4
netdrift_latency_seconds{phase="fit",quantile="0.99"} 4
netdrift_latency_seconds_sum{phase="fit"} 10
netdrift_latency_seconds_count{phase="fit"} 4
# TYPE netdrift_up gauge
netdrift_up 1
`
	if got := b.String(); got != want {
		t.Errorf("prometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusParseable(t *testing.T) {
	// Every non-comment line must be `name{labels} value` with a float value.
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Histogram("b_seconds").Observe(0.5)
	r.Gauge("c", "k", `quo"te`).Set(-2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed line %q", line)
		}
		name := line[:sp]
		if strings.ContainsAny(name[:strings.IndexAny(name+"{", "{")], " \t") {
			t.Errorf("metric name with whitespace in %q", line)
		}
		if strings.Contains(name, "{") && !strings.HasSuffix(name, "}") {
			t.Errorf("unclosed label block in %q", line)
		}
	}
	if !strings.Contains(b.String(), `k="quo\"te"`) {
		t.Errorf("label escaping missing:\n%s", b.String())
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "path", "/x").Add(5)
	r.Histogram("lat").Observe(2)
	snap := r.Snapshot()
	byName := map[string]Sample{}
	for _, s := range snap {
		byName[s.Name+labelKey(flatten(s.Labels))] = s
	}
	found := false
	for _, s := range snap {
		if s.Name == "hits_total" && s.Labels["path"] == "/x" && s.Value == 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("snapshot missing counter: %+v", snap)
	}
	var count, sum bool
	for _, s := range snap {
		if s.Name == "lat_count" && s.Value == 1 {
			count = true
		}
		if s.Name == "lat_sum" && s.Value == 2 {
			sum = true
		}
	}
	if !count || !sum {
		t.Errorf("snapshot missing histogram expansion: %+v", snap)
	}
}

func flatten(m map[string]string) []string {
	var out []string
	for k, v := range m {
		out = append(out, k, v)
	}
	return out
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.Histogram("z").Observe(1)
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}
	if _, ok := r.Value("x"); ok {
		t.Error("nil registry Value should report !ok")
	}
}
