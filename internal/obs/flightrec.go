package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flight-recorder event kinds. Every noteworthy serving-stack transition
// lands in the ring under one of these, so a snapshot reads as a causal
// timeline: what was in flight (spans), what was injected (faults), and
// how the control surfaces reacted (breaker, shed, degrade, swap, panic).
const (
	FlightKindSpan    = "span"    // a span completed (Name = span name, Trace = its trace ID)
	FlightKindFault   = "fault"   // chaos injection fired (Name = site, Detail = slow|err|panic)
	FlightKindBreaker = "breaker" // breaker transition (Name = breaker, Detail = new state)
	FlightKindShed    = "shed"    // admission control refused a request
	FlightKindDegrade = "degrade" // a group was served as passthrough
	FlightKindSwap    = "swap"    // bundle hot-swap (Detail = new bundle ID)
	FlightKindPanic   = "panic"   // recovered panic (Name = site)
	FlightKindMark    = "mark"    // free-form operator/test marker
	FlightKindCtrl    = "ctrl"    // drift-controller transition (Name = event, Detail = context)
)

// FlightEvent is one ring entry. Events are immutable once published.
type FlightEvent struct {
	Seq    uint64 `json:"seq"`
	Nanos  int64  `json:"unix_nanos"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	Trace  string `json:"trace,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// FlightRecorder is a fixed-capacity black-box recorder: the last
// ~Capacity events survive, older ones are overwritten in place. Record is
// lock-free (one atomic sequence claim plus one pointer publish), so it is
// safe to call from the hottest serving paths, panic handlers, and breaker
// transitions without ordering concerns; Snapshot never blocks writers.
// The zero-capacity and nil recorders are no-ops.
type FlightRecorder struct {
	slots   []atomic.Pointer[FlightEvent]
	seq     atomic.Uint64
	counter atomic.Pointer[Counter] // optional events-recorded mirror

	// Auto-snapshot state: a configured path arms snapshot-on-incident
	// (executor panic, breaker open, chaoscheck failure). Writes are
	// throttled so an incident storm produces one file, not thousands.
	snapMu       sync.Mutex
	snapPath     string
	snapMinGap   time.Duration
	lastSnapNano atomic.Int64
}

// DefaultFlightCapacity is the ring size used when none is given: enough
// for several seconds of a busy serving timeline without measurable memory.
const DefaultFlightCapacity = 2048

// NewFlightRecorder builds a ring holding the last capacity events
// (DefaultFlightCapacity when capacity <= 0).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{
		slots:      make([]atomic.Pointer[FlightEvent], capacity),
		snapMinGap: time.Second,
	}
}

// CountEvents mirrors every Record into c (typically the registry's
// MetricFlightEvents counter) so /metrics exposes ring throughput.
func (r *FlightRecorder) CountEvents(c *Counter) {
	if r == nil || c == nil {
		return
	}
	r.counter.Store(c)
}

// Record publishes one event. Safe for any number of concurrent writers;
// never blocks, never takes a lock.
func (r *FlightRecorder) Record(kind, name, trace, detail string) {
	if r == nil || len(r.slots) == 0 {
		return
	}
	seq := r.seq.Add(1)
	r.slots[(seq-1)%uint64(len(r.slots))].Store(&FlightEvent{
		Seq:    seq,
		Nanos:  time.Now().UnixNano(),
		Kind:   kind,
		Name:   name,
		Trace:  trace,
		Detail: detail,
	})
	if c := r.counter.Load(); c != nil {
		c.Inc()
	}
}

// LastSeq returns the sequence number of the most recently claimed event
// (0 before the first Record).
func (r *FlightRecorder) LastSeq() uint64 {
	if r == nil {
		return 0
	}
	return r.seq.Load()
}

// Capacity returns the ring size.
func (r *FlightRecorder) Capacity() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Snapshot copies the surviving events, ordered by ascending sequence
// number. Events being published concurrently may be missed; everything
// returned is complete and untorn (each slot holds an immutable event).
func (r *FlightRecorder) Snapshot() []FlightEvent {
	if r == nil {
		return nil
	}
	out := make([]FlightEvent, 0, len(r.slots))
	for i := range r.slots {
		if ev := r.slots[i].Load(); ev != nil {
			out = append(out, *ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// FlightSnapshot is the serialized dump shape: the /debug/flightrec body
// and the on-disk incident file share it.
type FlightSnapshot struct {
	Reason   string        `json:"reason"`
	TakenAt  time.Time     `json:"taken_at"`
	LastSeq  uint64        `json:"last_seq"`
	Capacity int           `json:"capacity"`
	Events   []FlightEvent `json:"events"`
}

// SnapshotFor assembles a dump document tagged with reason.
func (r *FlightRecorder) SnapshotFor(reason string) FlightSnapshot {
	return FlightSnapshot{
		Reason:   reason,
		TakenAt:  time.Now(),
		LastSeq:  r.LastSeq(),
		Capacity: r.Capacity(),
		Events:   r.Snapshot(),
	}
}

// WriteSnapshot writes the dump as indented JSON.
func (r *FlightRecorder) WriteSnapshot(w io.Writer, reason string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.SnapshotFor(reason))
}

// SetAutoSnapshot arms incident snapshots: AutoSnapshot writes the ring to
// path (atomically, via rename), at most once per minGap (default 1s when
// minGap <= 0). An empty path disarms.
func (r *FlightRecorder) SetAutoSnapshot(path string, minGap time.Duration) {
	if r == nil {
		return
	}
	if minGap <= 0 {
		minGap = time.Second
	}
	r.snapMu.Lock()
	r.snapPath = path
	r.snapMinGap = minGap
	r.snapMu.Unlock()
}

// AutoSnapshot writes an incident snapshot if armed and outside the
// throttle window, returning the path written ("" otherwise). It is safe
// to call from recovery paths: all errors are swallowed (the incident
// being recorded matters more than the recording of it).
func (r *FlightRecorder) AutoSnapshot(reason string) string {
	if r == nil {
		return ""
	}
	r.snapMu.Lock()
	path, gap := r.snapPath, r.snapMinGap
	r.snapMu.Unlock()
	if path == "" {
		return ""
	}
	now := time.Now().UnixNano()
	last := r.lastSnapNano.Load()
	if now-last < int64(gap) || !r.lastSnapNano.CompareAndSwap(last, now) {
		return ""
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return ""
	}
	err = r.WriteSnapshot(f, reason)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil || os.Rename(tmp, path) != nil {
		os.Remove(tmp)
		return ""
	}
	return path
}

// SpanSink returns a Sink that records each span completion into the ring
// and forwards it to next (which may be nil). Wire it as Observer.Spans to
// make the flight recorder see the request timeline alongside the
// discrete control events.
func (r *FlightRecorder) SpanSink(next Sink) Sink {
	if r == nil {
		return next
	}
	return &flightSpanSink{r: r, next: next}
}

type flightSpanSink struct {
	r    *FlightRecorder
	next Sink
}

func (s *flightSpanSink) Emit(sp SpanData) {
	s.r.Record(FlightKindSpan, sp.Name, sp.Trace, sp.Duration.String())
	if s.next != nil {
		s.next.Emit(sp)
	}
}
