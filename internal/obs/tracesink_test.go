package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestMintTraceID(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := MintTraceID()
		if len(id) != 16 {
			t.Fatalf("MintTraceID = %q, want 16 hex chars", id)
		}
		for _, c := range id {
			if !strings.ContainsRune("0123456789abcdef", c) {
				t.Fatalf("MintTraceID = %q: non-hex %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q within 1000 mints", id)
		}
		seen[id] = true
	}
}

type failWriter struct{ writes int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	return 0, errors.New("disk full")
}

// TestJSONLinesSinkCountsDrops is the satellite-fix regression test: a
// span lost to a write failure must be visible in Drops and mirrored into
// the registry's obs_span_drops_total counter — never silently discarded.
func TestJSONLinesSinkCountsDrops(t *testing.T) {
	fw := &failWriter{}
	sink := NewJSONLinesSink(fw)
	reg := NewRegistry()
	sink.CountDrops(reg.Counter(MetricSpanDrops))
	o := &Observer{Registry: reg, Spans: sink}
	for i := 0; i < 3; i++ {
		sp := o.StartTrace("x", "tr")
		sp.End()
	}
	if fw.writes != 3 {
		t.Fatalf("writer saw %d writes, want 3", fw.writes)
	}
	if got := sink.Drops(); got != 3 {
		t.Errorf("Drops = %d, want 3", got)
	}
	var counted float64
	for _, s := range reg.Snapshot() {
		if s.Name == MetricSpanDrops {
			counted = s.Value
		}
	}
	if counted != 3 {
		t.Errorf("%s = %v, want 3", MetricSpanDrops, counted)
	}
	// Without a registered counter the sink still counts locally.
	bare := NewJSONLinesSink(&failWriter{})
	bare.Emit(SpanData{Name: "y"})
	if bare.Drops() != 1 {
		t.Errorf("bare sink Drops = %d, want 1", bare.Drops())
	}
}

func TestJSONLinesSinkWritesAttrsInOrder(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLinesSink(&buf)
	o := &Observer{Spans: sink}
	sp := o.StartTrace("span-a", "tr-1")
	sp.SetAttr("zeta", "1")
	sp.SetAttr("alpha", "2")
	sp.End()
	if sink.Drops() != 0 {
		t.Fatalf("healthy writer dropped %d spans", sink.Drops())
	}
	line := buf.String()
	var got SpanData
	if err := json.Unmarshal([]byte(line), &got); err != nil {
		t.Fatalf("emitted line is not JSON: %v\n%s", err, line)
	}
	if got.Trace != "tr-1" || got.Name != "span-a" {
		t.Errorf("round-trip = %+v", got)
	}
	// Insertion order survives the custom AttrList marshal (a map would
	// re-sort or randomize).
	if len(got.Attrs) != 2 || got.Attrs[0].Key != "zeta" || got.Attrs[1].Key != "alpha" {
		t.Errorf("attrs = %+v, want insertion order zeta,alpha", got.Attrs)
	}
}
