package obs

import (
	"sort"
	"sync"
	"time"
)

// SLO declares the service-level objective that burn rates are computed
// against: a request is "bad" when it errors or completes slower than
// LatencyObjective; the error budget is 1 - Availability.
type SLO struct {
	LatencyObjective float64 `json:"latency_objective_seconds"` // default 250ms
	Availability     float64 `json:"availability"`              // default 0.999
}

func (s SLO) withDefaults() SLO {
	if s.LatencyObjective <= 0 {
		s.LatencyObjective = 0.25
	}
	if s.Availability <= 0 || s.Availability >= 1 {
		s.Availability = 0.999
	}
	return s
}

// DefaultBurnWindows are the multi-window burn-rate horizons reported when
// none are given: a fast window that reacts to incidents within a minute
// and a slow one that smooths bursts.
var DefaultBurnWindows = []time.Duration{time.Minute, 5 * time.Minute}

// REDStats is one endpoint's rolling-window RED summary (rate, errors,
// duration) plus its burn rate against the tracker's SLO.
type REDStats struct {
	Window        string  `json:"window"`
	Requests      uint64  `json:"requests"`
	Errors        uint64  `json:"errors"`
	SlowOverSLO   uint64  `json:"slow_over_slo"`
	RatePerSec    float64 `json:"rate_per_sec"`
	ErrorFraction float64 `json:"error_fraction"`
	BadFraction   float64 `json:"bad_fraction"`
	BurnRate      float64 `json:"burn_rate"`
	P50Seconds    float64 `json:"p50_seconds"`
	P95Seconds    float64 `json:"p95_seconds"`
	P99Seconds    float64 `json:"p99_seconds"`
}

// redBucket is one time slice of the rolling window.
type redBucket struct {
	requests uint64
	errors   uint64
	slow     uint64 // successful but over the latency objective
	sum      float64
	hist     []uint64 // per-bound counts + overflow, aligned with tracker bounds
}

func (b *redBucket) reset() {
	b.requests, b.errors, b.slow, b.sum = 0, 0, 0, 0
	for i := range b.hist {
		b.hist[i] = 0
	}
}

// REDTracker keeps RED metrics over a rolling window, sliced into fixed
// buckets that age out in place — memory is constant regardless of
// traffic. One mutex guards the ring; at serving rates this is far off the
// critical path (one lock per request, no allocation).
type REDTracker struct {
	slo       SLO
	bounds    []float64
	bucketDur time.Duration
	now       func() time.Time

	mu        sync.Mutex
	buckets   []redBucket
	head      int
	headStart time.Time
	born      time.Time
}

// NewREDTracker builds a tracker whose ring covers window in numBuckets
// slices (defaults: 5m in 60 buckets). now is injectable for tests; nil
// uses the wall clock. Latency quantiles use LatencyBuckets bounds.
func NewREDTracker(slo SLO, window time.Duration, numBuckets int, now func() time.Time) *REDTracker {
	if window <= 0 {
		window = 5 * time.Minute
	}
	if numBuckets <= 0 {
		numBuckets = 60
	}
	if now == nil {
		now = time.Now
	}
	t := &REDTracker{
		slo:       slo.withDefaults(),
		bounds:    LatencyBuckets,
		bucketDur: window / time.Duration(numBuckets),
		now:       now,
		buckets:   make([]redBucket, numBuckets),
	}
	for i := range t.buckets {
		t.buckets[i].hist = make([]uint64, len(t.bounds)+1)
	}
	start := now()
	t.headStart, t.born = start, start
	return t
}

// rotate advances the ring to cover now, zeroing aged-out buckets.
// Callers hold mu.
func (t *REDTracker) rotate(now time.Time) {
	steps := int(now.Sub(t.headStart) / t.bucketDur)
	if steps <= 0 {
		return
	}
	if steps >= len(t.buckets) {
		for i := range t.buckets {
			t.buckets[i].reset()
		}
	} else {
		for i := 1; i <= steps; i++ {
			t.buckets[(t.head+i)%len(t.buckets)].reset()
		}
	}
	t.head = (t.head + steps) % len(t.buckets)
	t.headStart = t.headStart.Add(time.Duration(steps) * t.bucketDur)
}

// Observe records one request outcome. Nil-safe and allocation-free.
func (t *REDTracker) Observe(latencySeconds float64, isErr bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.rotate(t.now())
	b := &t.buckets[t.head]
	b.requests++
	if isErr {
		b.errors++
	} else if latencySeconds > t.slo.LatencyObjective {
		b.slow++
	}
	b.sum += latencySeconds
	b.hist[searchBound(t.bounds, latencySeconds)]++
	t.mu.Unlock()
}

// Objective returns the tracker's effective SLO.
func (t *REDTracker) Objective() SLO {
	if t == nil {
		return SLO{}.withDefaults()
	}
	return t.slo
}

// Stats summarizes the most recent window (clamped to the ring's span).
// The burn rate is badFraction / (1 - availability): 1.0 means the error
// budget is being consumed exactly as provisioned, >1 means faster.
func (t *REDTracker) Stats(window time.Duration) REDStats {
	if t == nil {
		return REDStats{Window: window.String()}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.now()
	t.rotate(now)
	k := int((window + t.bucketDur - 1) / t.bucketDur)
	if k < 1 {
		k = 1
	}
	if k > len(t.buckets) {
		k = len(t.buckets)
	}
	st := REDStats{Window: window.String()}
	merged := make([]uint64, len(t.bounds)+1)
	for i := 0; i < k; i++ {
		b := &t.buckets[(t.head-i+len(t.buckets))%len(t.buckets)]
		st.Requests += b.requests
		st.Errors += b.errors
		st.SlowOverSLO += b.slow
		for j, c := range b.hist {
			merged[j] += c
		}
	}
	// Effective coverage: full aged buckets plus the partially filled head,
	// clamped to the tracker's age so a fresh tracker reports honest rates.
	covered := time.Duration(k-1)*t.bucketDur + now.Sub(t.headStart)
	if age := now.Sub(t.born); covered > age {
		covered = age
	}
	if secs := covered.Seconds(); secs > 0 {
		st.RatePerSec = float64(st.Requests) / secs
	}
	if st.Requests > 0 {
		st.ErrorFraction = float64(st.Errors) / float64(st.Requests)
		st.BadFraction = float64(st.Errors+st.SlowOverSLO) / float64(st.Requests)
		st.BurnRate = st.BadFraction / (1 - t.slo.Availability)
	}
	st.P50Seconds = bucketQuantile(t.bounds, merged, 0.50)
	st.P95Seconds = bucketQuantile(t.bounds, merged, 0.95)
	st.P99Seconds = bucketQuantile(t.bounds, merged, 0.99)
	return st
}

// SLOSet tracks one REDTracker per endpoint (or fault site) under a shared
// SLO and ring geometry. The zero ring geometry covers the longest default
// burn window. A nil *SLOSet is a no-op.
type SLOSet struct {
	slo     SLO
	window  time.Duration
	buckets int
	now     func() time.Time

	mu       sync.Mutex
	trackers map[string]*REDTracker
}

// NewSLOSet builds an endpoint-keyed tracker set. window/numBuckets pick
// the ring geometry (defaults 5m / 60); now is injectable for tests.
func NewSLOSet(slo SLO, window time.Duration, numBuckets int, now func() time.Time) *SLOSet {
	return &SLOSet{
		slo:      slo.withDefaults(),
		window:   window,
		buckets:  numBuckets,
		now:      now,
		trackers: make(map[string]*REDTracker),
	}
}

// Objective returns the shared SLO.
func (s *SLOSet) Objective() SLO {
	if s == nil {
		return SLO{}.withDefaults()
	}
	return s.slo
}

// Tracker returns (creating on first use) the tracker for name.
func (s *SLOSet) Tracker(name string) *REDTracker {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.trackers[name]
	if t == nil {
		t = NewREDTracker(s.slo, s.window, s.buckets, s.now)
		s.trackers[name] = t
	}
	return t
}

// Observe records one outcome against name's tracker.
func (s *SLOSet) Observe(name string, latencySeconds float64, isErr bool) {
	s.Tracker(name).Observe(latencySeconds, isErr)
}

// Names returns the tracked endpoint names, sorted.
func (s *SLOSet) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.trackers))
	for name := range s.trackers {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// Report summarizes every tracked endpoint over the given windows
// (DefaultBurnWindows when none are given), endpoints sorted by name.
func (s *SLOSet) Report(windows ...time.Duration) map[string][]REDStats {
	if s == nil {
		return nil
	}
	if len(windows) == 0 {
		windows = DefaultBurnWindows
	}
	out := make(map[string][]REDStats)
	for _, name := range s.Names() {
		t := s.Tracker(name)
		stats := make([]REDStats, 0, len(windows))
		for _, w := range windows {
			stats = append(stats, t.Stats(w))
		}
		out[name] = stats
	}
	return out
}

// Export publishes the rolling stats as gauges in r, so one /metrics
// scrape carries the burn rates alongside the cumulative counters. Gauge
// identities are stable across calls (same names and labels), keeping the
// exposition's family/label ordering byte-stable.
func (s *SLOSet) Export(r *Registry, windows ...time.Duration) {
	if s == nil || r == nil {
		return
	}
	if len(windows) == 0 {
		windows = DefaultBurnWindows
	}
	for _, name := range s.Names() {
		t := s.Tracker(name)
		for _, w := range windows {
			st := t.Stats(w)
			wl := w.String()
			r.Gauge(MetricSLOBurnRate, "endpoint", name, "window", wl).Set(st.BurnRate)
			r.Gauge(MetricSLOErrFraction, "endpoint", name, "window", wl).Set(st.ErrorFraction)
			r.Gauge(MetricSLOReqRate, "endpoint", name, "window", wl).Set(st.RatePerSec)
			r.Gauge(MetricSLOLatency, "endpoint", name, "window", wl, "quantile", "0.5").Set(st.P50Seconds)
			r.Gauge(MetricSLOLatency, "endpoint", name, "window", wl, "quantile", "0.95").Set(st.P95Seconds)
			r.Gauge(MetricSLOLatency, "endpoint", name, "window", wl, "quantile", "0.99").Set(st.P99Seconds)
		}
	}
}
