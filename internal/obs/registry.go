// Package obs is the repo's dependency-free observability subsystem: a
// concurrency-safe metrics registry with Prometheus text exposition,
// span-style hierarchical tracing with pluggable sinks, and typed progress
// hooks for the training and search hot paths. Everything is nil-safe: a
// nil *Observer (and the nil metric handles it returns) makes every
// instrumentation call a cheap no-op, so library users who do not opt in
// pay essentially nothing.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry. All methods are nil-safe.
type Counter struct {
	bits uint64 // float64 bits, updated via CAS
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := atomic.LoadUint64(&c.bits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&c.bits, old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&c.bits))
}

// Gauge is a metric that can go up and down. All methods are nil-safe.
type Gauge struct {
	bits uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	atomic.StoreUint64(&g.bits, math.Float64bits(v))
}

// Add increments the gauge by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := atomic.LoadUint64(&g.bits)
		next := math.Float64bits(math.Float64frombits(old) + v)
		if atomic.CompareAndSwapUint64(&g.bits, old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(atomic.LoadUint64(&g.bits))
}

// metricKind tags a family for exposition.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindFixedHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindFixedHistogram:
		// Fixed-boundary histograms expose cumulative le buckets, the
		// native Prometheus "histogram" type.
		return "histogram"
	default:
		// Streaming histograms expose quantiles, so they render as the
		// Prometheus "summary" type.
		return "summary"
	}
}

// family groups all label variants of one metric name.
type family struct {
	kind    metricKind
	byLabel map[string]any // labelKey -> *Counter | *Gauge | *Histogram
	labels  map[string][]string
}

// Registry holds named metrics. It is safe for concurrent use; metric
// handles are created on first access and cached by (name, labels).
// A nil *Registry returns nil handles, whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey serializes a label set into a deterministic map key.
func labelKey(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	return strings.Join(labels, "\xff")
}

// pairs validates alternating key/value labels.
func pairs(labels []string) []string {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list %q (want key/value pairs)", labels))
	}
	return labels
}

func (r *Registry) metric(name string, kind metricKind, labels []string, make func() any) any {
	pairs(labels)
	key := labelKey(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{kind: kind, byLabel: map[string]any{}, labels: map[string][]string{}}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("obs: metric %q reused as %v, registered as %v", name, kind, fam.kind))
	}
	m := fam.byLabel[key]
	if m == nil {
		m = make()
		fam.byLabel[key] = m
		fam.labels[key] = append([]string(nil), labels...)
	}
	return m
}

// Counter returns the counter for name and the given key/value label pairs,
// creating it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.metric(name, kindCounter, labels, func() any { return new(Counter) }).(*Counter)
}

// Gauge returns the gauge for name and label pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.metric(name, kindGauge, labels, func() any { return new(Gauge) }).(*Gauge)
}

// Histogram returns the streaming histogram for name and label pairs.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.metric(name, kindHistogram, labels, func() any { return newHistogram(defaultHistogramBins) }).(*Histogram)
}

// FixedHistogram returns the fixed-boundary histogram for name and label
// pairs, creating it with the given bucket bounds on first use. Later
// calls for the same (name, labels) return the existing instance — the
// first caller's bounds win; pass nil bounds to accept whatever is
// already registered (or LatencyBuckets on first use).
func (r *Registry) FixedHistogram(name string, bounds []float64, labels ...string) *FixedHistogram {
	if r == nil {
		return nil
	}
	return r.metric(name, kindFixedHistogram, labels, func() any { return NewFixedHistogram(bounds) }).(*FixedHistogram)
}

// Sample is one exported metric point (histograms expand into several).
type Sample struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value"`
}

// snapshotEntry pairs a family name with one labelled metric for iteration.
type snapshotEntry struct {
	name   string
	kind   metricKind
	labels []string
	metric any
}

func (r *Registry) entries() []snapshotEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []snapshotEntry
	for name, fam := range r.families {
		for key, m := range fam.byLabel {
			out = append(out, snapshotEntry{name: name, kind: fam.kind, labels: fam.labels[key], metric: m})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return labelKey(out[i].labels) < labelKey(out[j].labels)
	})
	return out
}

// exportQuantiles are the quantile points exposed for each histogram.
var exportQuantiles = []float64{0.5, 0.9, 0.99}

// Snapshot flattens the registry into samples: counters and gauges one
// sample each; histograms expand into _count, _sum, and quantile samples.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, e := range r.entries() {
		lab := labelMap(e.labels)
		switch m := e.metric.(type) {
		case *Counter:
			out = append(out, Sample{Name: e.name, Labels: lab, Value: m.Value()})
		case *Gauge:
			out = append(out, Sample{Name: e.name, Labels: lab, Value: m.Value()})
		case *Histogram:
			out = append(out, Sample{Name: e.name + "_count", Labels: lab, Value: float64(m.Count())})
			out = append(out, Sample{Name: e.name + "_sum", Labels: lab, Value: m.Sum()})
			qs := m.quantiles(exportQuantiles...)
			for i, q := range exportQuantiles {
				ql := labelMap(e.labels)
				if ql == nil {
					ql = map[string]string{}
				}
				ql["quantile"] = formatFloat(q)
				out = append(out, Sample{Name: e.name, Labels: ql, Value: qs[i]})
			}
		case *FixedHistogram:
			out = append(out, Sample{Name: e.name + "_count", Labels: lab, Value: float64(m.Count())})
			out = append(out, Sample{Name: e.name + "_sum", Labels: lab, Value: m.Sum()})
			qs := m.quantilesFixed(exportQuantiles...)
			for i, q := range exportQuantiles {
				ql := labelMap(e.labels)
				if ql == nil {
					ql = map[string]string{}
				}
				ql["quantile"] = formatFloat(q)
				out = append(out, Sample{Name: e.name, Labels: ql, Value: qs[i]})
			}
		}
	}
	return out
}

// Value returns the current value of a counter or gauge, reporting whether
// it exists. Histograms are not addressable through Value; use Histogram.
func (r *Registry) Value(name string, labels ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	pairs(labels)
	r.mu.Lock()
	fam := r.families[name]
	var m any
	if fam != nil {
		m = fam.byLabel[labelKey(labels)]
	}
	r.mu.Unlock()
	switch v := m.(type) {
	case *Counter:
		return v.Value(), true
	case *Gauge:
		return v.Value(), true
	default:
		return 0, false
	}
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Output is deterministic: families sorted by
// name, label variants sorted by label values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	lastName := ""
	for _, e := range r.entries() {
		if e.name != lastName {
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, e.kind)
			lastName = e.name
		}
		switch m := e.metric.(type) {
		case *Counter:
			fmt.Fprintf(&b, "%s%s %s\n", e.name, renderLabels(e.labels), formatFloat(m.Value()))
		case *Gauge:
			fmt.Fprintf(&b, "%s%s %s\n", e.name, renderLabels(e.labels), formatFloat(m.Value()))
		case *Histogram:
			qs := m.quantiles(exportQuantiles...)
			for i, q := range exportQuantiles {
				ql := append(append([]string(nil), e.labels...), "quantile", formatFloat(q))
				fmt.Fprintf(&b, "%s%s %s\n", e.name, renderLabels(ql), formatFloat(qs[i]))
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", e.name, renderLabels(e.labels), formatFloat(m.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", e.name, renderLabels(e.labels), m.Count())
		case *FixedHistogram:
			counts := m.BucketCounts()
			var cum uint64
			for i, bound := range m.Bounds() {
				cum += counts[i]
				bl := append(append([]string(nil), e.labels...), "le", formatFloat(bound))
				fmt.Fprintf(&b, "%s_bucket%s %d\n", e.name, renderLabels(bl), cum)
			}
			cum += counts[len(counts)-1]
			bl := append(append([]string(nil), e.labels...), "le", "+Inf")
			fmt.Fprintf(&b, "%s_bucket%s %d\n", e.name, renderLabels(bl), cum)
			fmt.Fprintf(&b, "%s_sum%s %s\n", e.name, renderLabels(e.labels), formatFloat(m.Sum()))
			fmt.Fprintf(&b, "%s_count%s %d\n", e.name, renderLabels(e.labels), m.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ServeHTTP makes the registry mountable as a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WritePrometheus(w)
}

func labelMap(labels []string) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		m[labels[i]] = labels[i+1]
	}
	return m
}

func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
