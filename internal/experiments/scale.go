package experiments

// Scale bundles the compute knobs of an experiment run. Paper-scale data
// with GPU-scale epoch counts is not feasible on a single CPU core, so the
// default BenchScale shrinks sample counts and epochs while preserving the
// methods' relative behaviour; FullScale matches the paper's sample counts.
type Scale struct {
	// 5GC sizes.
	GCSource     int
	GCTargetPool int
	GCTargetTest int
	// 5GIPC sizes (normals; faults scale proportionally).
	IPCSourceNormal int
	IPCSourceFaults [4]int
	IPCTargetNormal int
	IPCTargetFaults [4]int
	IPCTrainPool    int
	// Model budgets.
	ClassifierEpochs int // neural classifiers
	Trees            int // RF trees / XGB rounds
	GANEpochs        int
	AdvEpochs        int // DANN / SCL
	Episodes         int // MatchNet / ProtoNet
	FineTuneEpochs   int
}

// QuickScale is for unit tests: tiny but still end-to-end.
var QuickScale = Scale{
	GCSource: 320, GCTargetPool: 96, GCTargetTest: 160,
	IPCSourceNormal: 300, IPCSourceFaults: [4]int{20, 30, 60, 50},
	IPCTargetNormal: 150, IPCTargetFaults: [4]int{10, 15, 25, 25},
	IPCTrainPool:     12,
	ClassifierEpochs: 6, Trees: 10, GANEpochs: 10, AdvEpochs: 5,
	Episodes: 30, FineTuneEpochs: 6,
}

// BenchScale is the default for the benchmark harness: large enough for the
// paper's orderings to be stable, small enough for a single CPU core.
var BenchScale = Scale{
	GCSource: 1200, GCTargetPool: 192, GCTargetTest: 480,
	IPCSourceNormal: 1500, IPCSourceFaults: [4]int{60, 100, 240, 180},
	IPCTargetNormal: 600, IPCTargetFaults: [4]int{40, 50, 90, 120},
	IPCTrainPool:     12,
	ClassifierEpochs: 20, Trees: 40, GANEpochs: 50, AdvEpochs: 15,
	Episodes: 100, FineTuneEpochs: 15,
}

// FullScale matches the paper's sample counts (§IV); expect hours on one
// CPU core.
var FullScale = Scale{
	GCSource: 3645, GCTargetPool: 192, GCTargetTest: 873,
	IPCSourceNormal: 5315, IPCSourceFaults: [4]int{100, 226, 874, 619},
	IPCTargetNormal: 2060, IPCTargetFaults: [4]int{95, 124, 311, 546},
	IPCTrainPool:     12,
	ClassifierEpochs: 30, Trees: 80, GANEpochs: 80, AdvEpochs: 30,
	Episodes: 200, FineTuneEpochs: 30,
}

// ScaleByName resolves "quick", "bench", or "full".
func ScaleByName(name string) (Scale, bool) {
	switch name {
	case "quick":
		return QuickScale, true
	case "bench", "":
		return BenchScale, true
	case "full":
		return FullScale, true
	default:
		return Scale{}, false
	}
}
