package experiments

import (
	"encoding/json"
	"sync"
	"testing"
)

// marshal renders a result to canonical JSON bytes for byte-level
// comparison between worker counts.
func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRunTable1WorkersBitIdentical is the pinned determinism test from the
// parallel-compute acceptance bar: a full Table I cell grid run with
// Workers=N must serialize to the same bytes as Workers=1.
func TestRunTable1WorkersBitIdentical(t *testing.T) {
	// Under the race detector the FS search is ~10x slower, so exercise
	// the concurrent cell pool with the cheap method only; the full grid
	// runs in the normal suite.
	methods := []string{"FS (ours)", "SrcOnly"}
	workerCounts := []int{2, 4}
	if raceEnabled {
		methods = []string{"SrcOnly"}
		workerCounts = []int{4}
	}
	run := func(workers int) *Table1Result {
		res, err := RunTable1(Table1Config{
			Dataset: "5gc",
			Methods: methods,
			Shots:   []int{1},
			Repeats: 2,
			Seed:    5,
			Scale:   QuickScale,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := marshal(t, run(1))
	for _, workers := range workerCounts {
		if par := marshal(t, run(workers)); string(par) != string(seq) {
			t.Errorf("workers=%d: Table1Result bytes differ from sequential\nseq %s\npar %s",
				workers, seq, par)
		}
	}
}

func TestRunVariantCountsWorkersBitIdentical(t *testing.T) {
	if raceEnabled {
		t.Skip("FS-search concurrency is race-covered in internal/causal; this grid is too slow under the race detector")
	}
	run := func(workers int) *VariantCountResult {
		res, err := RunVariantCounts(SensitivityConfig{
			Dataset: "5gc",
			Shots:   []int{1, 5},
			Repeats: 2,
			Seed:    9,
			Scale:   QuickScale,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := marshal(t, run(1))
	if par := marshal(t, run(3)); string(par) != string(seq) {
		t.Errorf("VariantCountResult bytes differ:\nseq %s\npar %s", seq, par)
	}
}

// TestLockedProgressSerializes checks the wrapper used to guard the
// user-supplied Progress callback during concurrent cell evaluation.
func TestLockedProgressSerializes(t *testing.T) {
	if lockedProgress(nil, 8) != nil {
		t.Error("nil callback should stay nil")
	}
	var lines []string
	raw := func(s string) { lines = append(lines, s) }
	wrapped := lockedProgress(raw, 8)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wrapped("line")
		}()
	}
	wg.Wait()
	if len(lines) != 16 {
		t.Errorf("got %d progress lines; want 16", len(lines))
	}
}
