//go:build race

package experiments

// raceEnabled lets expensive grid tests shrink their workload when the
// race detector multiplies runtime; the full grids run in the normal
// (tier-1) suite.
const raceEnabled = true
