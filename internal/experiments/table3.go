package experiments

import (
	"fmt"
	"math/rand"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
	"netdrift/internal/obs"
	"netdrift/internal/par"
)

// Table3Config drives the multi-target no-retraining experiment (§VI-F):
// a single TNet fault-detection model trained only on Source, with two
// FS+GAN adapters (one per target domain) cross-evaluated on both targets.
type Table3Config struct {
	Shots   []int // default {1, 5, 10}
	Repeats int   // default 3
	Seed    int64
	Scale   Scale
	// Workers bounds concurrent evaluation of independent (rep, shot)
	// cells; <= 0 means all cores, 1 forces the sequential path, and
	// results are bit-identical for every value.
	Workers  int
	Progress func(string)
	// Obs, when non-nil, instruments both per-target adapter pipelines.
	Obs *obs.Observer
}

// Table3Result holds Scores[adapter][target][shot]: F1 of the shared
// source-trained TNet on target `target` when DA is performed by
// FS+GAN_{adapter+1}.
type Table3Result struct {
	Shots   []int
	Scores  [2][2]map[int]float64
	Repeats int
	// CommonVariantFraction is |V1 ∩ V2| / |V1 ∪ V2| averaged over runs —
	// the paper's observation that most variant features are shared.
	CommonVariantFraction float64
}

// RunTable3 reproduces Table III on the synthetic 5GIPC dataset split into
// Source, Target_1, and Target_2.
func RunTable3(cfg Table3Config) (*Table3Result, error) {
	if len(cfg.Shots) == 0 {
		cfg.Shots = []int{1, 5, 10}
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	if cfg.Scale == (Scale{}) {
		cfg.Scale = BenchScale
	}
	d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
		Seed:                cfg.Seed,
		SourceNormal:        cfg.Scale.IPCSourceNormal,
		SourceFaults:        cfg.Scale.IPCSourceFaults,
		TargetNormal:        cfg.Scale.IPCTargetNormal,
		TargetFaults:        cfg.Scale.IPCTargetFaults,
		TargetTrainPerGroup: cfg.Scale.IPCTrainPool,
		NumTargets:          2,
	})
	if err != nil {
		return nil, err
	}

	res := &Table3Result{Shots: append([]int(nil), cfg.Shots...), Repeats: cfg.Repeats}
	acc := [2][2]map[int][]float64{}
	for a := 0; a < 2; a++ {
		for t := 0; t < 2; t++ {
			acc[a][t] = make(map[int][]float64)
		}
	}
	var commonSum float64
	var commonN int

	// Each (rep, shot) cell trains both adapters and the shared TNet from
	// its own seeded RNGs, so cells are independent and fan out across
	// workers; per-cell outputs merge afterwards in rep-major order so
	// the mean/Jaccard summation order matches the sequential path.
	type t3Cell struct{ rep, shot int }
	type t3Out struct {
		f1     [2][2]float64
		common float64
	}
	var cells []t3Cell
	for rep := 0; rep < cfg.Repeats; rep++ {
		for _, shot := range cfg.Shots {
			cells = append(cells, t3Cell{rep, shot})
		}
	}
	workers := par.Resolve(cfg.Workers)
	notify := lockedProgress(cfg.Progress, workers)
	outs := make([]t3Out, len(cells))
	if err := par.ForEachErr(workers, len(cells), func(ci int) error {
		c := cells[ci]
		seed := cfg.Seed + int64(c.rep)*7919 + int64(c.shot)*101
		// One shared TNet trained exclusively on scaled source data.
		var clf *models.TNet
		var adapters [2]*core.Adapter
		for a := 0; a < 2; a++ {
			drawRng := rand.New(rand.NewSource(seed + int64(a)*13))
			support, _, err := d.Targets[a].Train.FewShot(c.shot, true, drawRng)
			if err != nil {
				return err
			}
			ad := core.NewAdapter(core.AdapterConfig{
				Mode:    core.ModeFSRecon,
				Recon:   core.ReconGAN,
				GAN:     core.GANConfig{Epochs: cfg.Scale.GANEpochs},
				Seed:    seed + int64(a),
				Workers: 1, // the cell grid owns the parallelism
				Obs:     cfg.Obs,
			})
			if err := ad.Fit(d.Source, support); err != nil {
				return fmt.Errorf("experiments: table3 adapter %d: %w", a+1, err)
			}
			adapters[a] = ad
			if a == 0 {
				train, err := ad.TrainingData(d.Source)
				if err != nil {
					return err
				}
				clf = models.NewTNet(models.Options{Seed: seed, Epochs: cfg.Scale.ClassifierEpochs})
				if err := clf.Fit(train.X, train.Y, 2); err != nil {
					return fmt.Errorf("experiments: table3 tnet: %w", err)
				}
			}
		}
		outs[ci].common = jaccard(adapters[0].VariantFeatures(), adapters[1].VariantFeatures())

		for a := 0; a < 2; a++ {
			for t := 0; t < 2; t++ {
				aligned, err := adapters[a].TransformTarget(d.Targets[t].Test.X)
				if err != nil {
					return err
				}
				pred, err := models.PredictClasses(clf, aligned)
				if err != nil {
					return err
				}
				f1, err := metrics.MacroF1Score(d.Targets[t].Test.Y, pred, 2)
				if err != nil {
					return err
				}
				outs[ci].f1[a][t] = f1
				progress(notify, "FS+GAN_%d on Target_%d shot=%d rep=%d F1=%.1f",
					a+1, t+1, c.shot, c.rep, f1)
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for ci, c := range cells {
		commonSum += outs[ci].common
		commonN++
		for a := 0; a < 2; a++ {
			for t := 0; t < 2; t++ {
				acc[a][t][c.shot] = append(acc[a][t][c.shot], outs[ci].f1[a][t])
			}
		}
	}
	for a := 0; a < 2; a++ {
		for t := 0; t < 2; t++ {
			res.Scores[a][t] = make(map[int]float64)
			for _, s := range cfg.Shots {
				res.Scores[a][t][s] = mean(acc[a][t][s])
			}
		}
	}
	if commonN > 0 {
		res.CommonVariantFraction = commonSum / float64(commonN)
	}
	return res, nil
}

func jaccard(a, b []int) float64 {
	setA := make(map[int]bool, len(a))
	for _, v := range a {
		setA[v] = true
	}
	var inter int
	setU := make(map[int]bool, len(a)+len(b))
	for _, v := range a {
		setU[v] = true
	}
	for _, v := range b {
		if setA[v] {
			inter++
		}
		setU[v] = true
	}
	if len(setU) == 0 {
		return 0
	}
	return float64(inter) / float64(len(setU))
}
