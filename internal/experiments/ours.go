// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI): Table I (methods × classifiers × shots on both
// datasets), Table II (reconstruction ablation), Table III (multi-target
// no-retraining), the sensitivity analyses of §VI-C, the in-domain SrcOnly
// check of §VI-B(a), and the running-time measurements of §VI-D.
package experiments

import (
	"fmt"

	"netdrift/internal/baselines"
	"netdrift/internal/causal"
	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/models"
)

// OursMethod adapts the paper's FS / FS+GAN pipeline (core.Adapter) to the
// baselines.Method interface so it can be evaluated side by side with the
// compared approaches. The fitted adapter is cached per (source, support)
// pair so the four classifier columns of Table I share one GAN training.
type OursMethod struct {
	Label string
	Cfg   core.AdapterConfig

	cachedAdapter *core.Adapter
	cachedTrain   *dataset.Dataset
	cacheSrc      *dataset.Dataset
	cacheSup      *dataset.Dataset
}

var _ baselines.Method = (*OursMethod)(nil)

// NewFS returns the FS-only method ("FS (ours)").
func NewFS(seed int64) *OursMethod {
	return &OursMethod{
		Label: "FS (ours)",
		Cfg:   core.AdapterConfig{Mode: core.ModeFS, Seed: seed},
	}
}

// NewFSGAN returns the full method ("FS+GAN (ours)").
func NewFSGAN(ganEpochs int, seed int64) *OursMethod {
	return &OursMethod{
		Label: "FS+GAN (ours)",
		Cfg: core.AdapterConfig{
			Mode:  core.ModeFSRecon,
			Recon: core.ReconGAN,
			GAN:   core.GANConfig{Epochs: ganEpochs},
			Seed:  seed,
		},
	}
}

// NewFSRecon returns an FS+reconstruction variant for the Table II
// ablation.
func NewFSRecon(kind core.ReconKind, epochs int, seed int64) *OursMethod {
	cfg := core.AdapterConfig{Mode: core.ModeFSRecon, Recon: kind, Seed: seed}
	switch kind {
	case core.ReconGAN, core.ReconGANNoCond:
		cfg.GAN = core.GANConfig{Epochs: epochs}
	case core.ReconVAE, core.ReconVanillaAE:
		cfg.VAE = core.VAEConfig{Epochs: epochs}
	}
	return &OursMethod{Label: "FS+" + kind.String(), Cfg: cfg}
}

// Name implements baselines.Method.
func (m *OursMethod) Name() string { return m.Label }

// ModelAgnostic implements baselines.Method.
func (m *OursMethod) ModelAgnostic() bool { return true }

// Predict implements baselines.Method. The downstream classifier is trained
// exclusively on (scaled) source data; target data only drives the feature
// separation.
func (m *OursMethod) Predict(source, support, test *dataset.Dataset, clf models.Classifier) ([]int, error) {
	ad, train, err := m.adapterFor(source, support)
	if err != nil {
		return nil, err
	}
	numClasses := source.NumClasses()
	if c := test.NumClasses(); c > numClasses {
		numClasses = c
	}
	if err := clf.Fit(train.X, train.Y, numClasses); err != nil {
		return nil, fmt.Errorf("experiments: %s fit: %w", m.Label, err)
	}
	aligned, err := ad.TransformTarget(test.X)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s transform: %w", m.Label, err)
	}
	return models.PredictClasses(clf, aligned)
}

// adapterFor fits (or reuses) the adapter for this source/support pair.
func (m *OursMethod) adapterFor(source, support *dataset.Dataset) (*core.Adapter, *dataset.Dataset, error) {
	if m.cachedAdapter != nil && m.cacheSrc == source && m.cacheSup == support {
		return m.cachedAdapter, m.cachedTrain, nil
	}
	ad := core.NewAdapter(m.Cfg)
	if err := ad.Fit(source, support); err != nil {
		return nil, nil, fmt.Errorf("experiments: %s adapter fit: %w", m.Label, err)
	}
	train, err := ad.TrainingData(source)
	if err != nil {
		return nil, nil, err
	}
	m.cachedAdapter = ad
	m.cachedTrain = train
	m.cacheSrc = source
	m.cacheSup = support
	return ad, train, nil
}

// VariantCount runs only the feature-separation stage and reports how many
// domain-variant features FS identifies (sensitivity analysis, §VI-C).
func VariantCount(source, support *dataset.Dataset, cfg causal.FNodeConfig) (int, error) {
	sep := core.NewFeatureSeparator(cfg)
	if err := sep.Fit(source.X, support.X); err != nil {
		return 0, err
	}
	return len(sep.Variant()), nil
}
