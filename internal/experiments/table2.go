package experiments

import (
	"fmt"
	"math/rand"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
	"netdrift/internal/obs"
	"netdrift/internal/par"
)

// Table2Config drives the reconstruction-strategy ablation (Table II):
// FS+GAN vs FS+NoCond vs FS+VAE vs FS+VanillaAE with the TNet classifier.
type Table2Config struct {
	Dataset string // "5gc" or "5gipc"
	Shots   []int  // default {1, 5, 10}
	Repeats int    // default 3
	Seed    int64
	Scale   Scale
	// Workers bounds concurrent evaluation of independent (rep, shot,
	// reconstruction) cells; <= 0 means all cores, 1 forces the sequential
	// path, and results are bit-identical for every value.
	Workers  int
	Progress func(string)
	// Obs, when non-nil, instruments each ablation's adapter pipeline.
	Obs *obs.Observer
}

// Table2Result holds Scores[reconstruction][shot] mean F1 with TNet.
type Table2Result struct {
	Dataset string
	Shots   []int
	Kinds   []core.ReconKind
	Scores  map[core.ReconKind]map[int]float64
	Repeats int
}

// RunTable2 reproduces the Table II ablation for one dataset.
func RunTable2(cfg Table2Config) (*Table2Result, error) {
	if len(cfg.Shots) == 0 {
		cfg.Shots = []int{1, 5, 10}
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	if cfg.Scale == (Scale{}) {
		cfg.Scale = BenchScale
	}
	pair, err := MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	kinds := []core.ReconKind{core.ReconGAN, core.ReconGANNoCond, core.ReconVAE, core.ReconVanillaAE}
	acc := make(map[core.ReconKind]map[int][]float64, len(kinds))
	for _, k := range kinds {
		acc[k] = make(map[int][]float64)
	}
	type t2Cell struct {
		rep, shot int
		kind      core.ReconKind
		support   *dataset.Dataset
	}
	var cells []t2Cell
	for rep := 0; rep < cfg.Repeats; rep++ {
		for _, shot := range cfg.Shots {
			drawRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*977 + int64(shot)))
			support, _, err := pair.TargetTrain.FewShot(shot, pair.UseGroups, drawRng)
			if err != nil {
				return nil, err
			}
			for _, kind := range kinds {
				cells = append(cells, t2Cell{rep, shot, kind, support})
			}
		}
	}
	workers := par.Resolve(cfg.Workers)
	notify := lockedProgress(cfg.Progress, workers)
	f1s := make([]float64, len(cells))
	if err := par.ForEachErr(workers, len(cells), func(ci int) error {
		c := cells[ci]
		seed := cfg.Seed + int64(c.rep)*7919 + int64(c.shot)*101
		m := NewFSRecon(c.kind, cfg.Scale.GANEpochs, seed)
		m.Cfg.Obs = cfg.Obs
		m.Cfg.Workers = 1 // the cell grid owns the parallelism
		clf := models.NewTNet(models.Options{Seed: seed, Epochs: cfg.Scale.ClassifierEpochs})
		pred, err := m.Predict(pair.Source, c.support, pair.TargetTest, clf)
		if err != nil {
			return fmt.Errorf("experiments: table2 %s shot=%d: %w", c.kind, c.shot, err)
		}
		f1, err := metrics.MacroF1Score(pair.TargetTest.Y, pred, pair.NumClasses)
		if err != nil {
			return err
		}
		f1s[ci] = f1
		progress(notify, "%s FS+%s shot=%d rep=%d F1=%.1f", cfg.Dataset, c.kind, c.shot, c.rep, f1)
		return nil
	}); err != nil {
		return nil, err
	}
	// Rep-major merge keeps each mean's summation order sequential.
	for ci, c := range cells {
		acc[c.kind][c.shot] = append(acc[c.kind][c.shot], f1s[ci])
	}
	res := &Table2Result{
		Dataset: cfg.Dataset,
		Shots:   append([]int(nil), cfg.Shots...),
		Kinds:   kinds,
		Scores:  make(map[core.ReconKind]map[int]float64, len(kinds)),
		Repeats: cfg.Repeats,
	}
	for _, k := range kinds {
		res.Scores[k] = make(map[int]float64)
		for _, s := range cfg.Shots {
			res.Scores[k][s] = mean(acc[k][s])
		}
	}
	return res, nil
}
