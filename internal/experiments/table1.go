package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"netdrift/internal/baselines"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
	"netdrift/internal/obs"
	"netdrift/internal/par"
)

// Pair is one drifted dataset instance for the evaluation protocol.
type Pair struct {
	Name        string
	Source      *dataset.Dataset
	TargetTrain *dataset.Dataset // few-shot candidate pool
	TargetTest  *dataset.Dataset
	UseGroups   bool // stratify few-shot draws by fault type (5GIPC)
	NumClasses  int
}

// MakePair generates the named dataset ("5gc" or "5gipc") at the given
// scale.
func MakePair(name string, sc Scale, seed int64) (*Pair, error) {
	switch name {
	case "5gc":
		d, err := dataset.Synthetic5GC(dataset.FiveGCConfig{
			Seed:              seed,
			SourceSamples:     sc.GCSource,
			TargetTrainPool:   sc.GCTargetPool,
			TargetTestSamples: sc.GCTargetTest,
		})
		if err != nil {
			return nil, err
		}
		return &Pair{
			Name:        name,
			Source:      d.Source,
			TargetTrain: d.TargetTrain,
			TargetTest:  d.TargetTest,
			NumClasses:  16,
		}, nil
	case "5gipc":
		d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
			Seed:                seed,
			SourceNormal:        sc.IPCSourceNormal,
			SourceFaults:        sc.IPCSourceFaults,
			TargetNormal:        sc.IPCTargetNormal,
			TargetFaults:        sc.IPCTargetFaults,
			TargetTrainPerGroup: sc.IPCTrainPool,
		})
		if err != nil {
			return nil, err
		}
		return &Pair{
			Name:        name,
			Source:      d.Source,
			TargetTrain: d.Targets[0].Train,
			TargetTest:  d.Targets[0].Test,
			UseGroups:   true,
			NumClasses:  2,
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

// Table1Config drives the Table I reproduction.
type Table1Config struct {
	Dataset string // "5gc" or "5gipc"
	Shots   []int  // default {1, 5, 10}
	Repeats int    // few-shot redraws averaged per cell; default 3
	Seed    int64
	Scale   Scale
	// Methods filters by method name; empty runs the full Table I roster.
	Methods []string
	// Workers bounds concurrent evaluation of independent (rep, shot,
	// method) cells. <= 0 means runtime.GOMAXPROCS(0); 1 forces the exact
	// sequential path. Every cell owns its seeded RNGs and per-cell scores
	// are merged in deterministic rep-major order, so the result is
	// bit-identical for every value (see DESIGN.md, "Determinism
	// contract"). Only Progress-line interleaving may differ.
	Workers int
	// TrainShards, when > 1, runs the "ours" rows' reconstructor training
	// with that many deterministic gradient shards per minibatch (see
	// core.AdapterConfig.TrainShards). Part of the reproducibility key:
	// changing it changes the trained bits; Workers never does.
	TrainShards int
	// Progress, when non-nil, receives one line per completed cell. It may
	// be called from multiple goroutines (never concurrently) when
	// Workers != 1.
	Progress func(string)
	// Obs, when non-nil, instruments the run: per-method predict timers and
	// the full adapter pipeline metrics for the "ours" rows.
	Obs *obs.Observer
}

// MethodRow is one method's F1 results: Scores[shot][classifier] for
// model-agnostic methods; model-specific methods use the single pseudo
// classifier column "*".
type MethodRow struct {
	Method        string
	ModelAgnostic bool
	Category      string
	Scores        map[int]map[string]float64
}

// Table1Result is the reproduced Table I for one dataset.
type Table1Result struct {
	Dataset     string
	Shots       []int
	Classifiers []string
	Rows        []MethodRow
	Repeats     int
}

// methodSpec builds a fresh method instance per repetition (methods carry
// per-run seeds and caches).
type methodSpec struct {
	name     string
	category string
	build    func(sc Scale, seed int64) baselines.Method
}

func table1Roster() []methodSpec {
	return []methodSpec{
		{"FS+GAN (ours)", "Causal Learning", func(sc Scale, seed int64) baselines.Method {
			return NewFSGAN(sc.GANEpochs, seed)
		}},
		{"FS (ours)", "Causal Learning", func(_ Scale, seed int64) baselines.Method {
			return NewFS(seed)
		}},
		{"CMT", "Causal Learning", func(_ Scale, seed int64) baselines.Method {
			return baselines.CMT{Seed: seed}
		}},
		{"ICD", "Causal Learning", func(_ Scale, seed int64) baselines.Method {
			return baselines.ICD{Seed: seed}
		}},
		{"SrcOnly", "Naive Baselines", func(_ Scale, seed int64) baselines.Method {
			return baselines.SrcOnly{}
		}},
		{"TarOnly", "Naive Baselines", func(_ Scale, seed int64) baselines.Method {
			return baselines.TarOnly{}
		}},
		{"S&T", "Naive Baselines", func(_ Scale, seed int64) baselines.Method {
			return baselines.SAndT{Seed: seed}
		}},
		{"Fine-tune", "Naive Baselines", func(sc Scale, seed int64) baselines.Method {
			return &baselines.FineTune{Seed: seed, PretrainEpochs: sc.FineTuneEpochs, TuneEpochs: 3 * sc.FineTuneEpochs}
		}},
		{"CORAL", "Domain Independent", func(_ Scale, seed int64) baselines.Method {
			return baselines.CORAL{Seed: seed}
		}},
		{"DANN", "Domain Independent", func(sc Scale, seed int64) baselines.Method {
			return &baselines.DANN{Epochs: sc.AdvEpochs, Seed: seed}
		}},
		{"SCL", "Domain Independent", func(sc Scale, seed int64) baselines.Method {
			return baselines.NewSCL(sc.AdvEpochs, seed)
		}},
		{"MatchNet", "Few-shot Learning", func(sc Scale, seed int64) baselines.Method {
			return baselines.NewMatchNet(sc.Episodes, seed)
		}},
		{"ProtoNet", "Few-shot Learning", func(sc Scale, seed int64) baselines.Method {
			return baselines.NewProtoNet(sc.Episodes, seed)
		}},
	}
}

// RunTable1 reproduces Table I for one dataset.
func RunTable1(cfg Table1Config) (*Table1Result, error) {
	if len(cfg.Shots) == 0 {
		cfg.Shots = []int{1, 5, 10}
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	if cfg.Scale == (Scale{}) {
		cfg.Scale = BenchScale
	}
	pair, err := MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	roster := filterRoster(table1Roster(), cfg.Methods)
	if len(roster) == 0 {
		return nil, fmt.Errorf("experiments: no methods match filter %v", cfg.Methods)
	}

	clfNames := make([]string, 0, len(models.AllKinds()))
	for _, k := range models.AllKinds() {
		clfNames = append(clfNames, k.String())
	}

	res := &Table1Result{
		Dataset:     cfg.Dataset,
		Shots:       append([]int(nil), cfg.Shots...),
		Classifiers: clfNames,
		Repeats:     cfg.Repeats,
	}
	acc := make(map[string]map[int]map[string][]float64)
	for _, spec := range roster {
		acc[spec.name] = make(map[int]map[string][]float64)
		for _, s := range cfg.Shots {
			acc[spec.name][s] = make(map[string][]float64)
		}
	}

	// Enumerate the independent (rep, shot, method) cells in the same
	// rep-major nesting order as the historical sequential loops. Support
	// draws stay sequential (each has its own seeded RNG anyway) and are
	// shared by every method cell of the same (rep, shot), exactly as
	// before.
	type t1Cell struct {
		rep, shot int
		spec      methodSpec
		support   *dataset.Dataset
	}
	var cells []t1Cell
	for rep := 0; rep < cfg.Repeats; rep++ {
		for _, shot := range cfg.Shots {
			drawRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*977 + int64(shot)))
			support, _, err := pair.TargetTrain.FewShot(shot, pair.UseGroups, drawRng)
			if err != nil {
				return nil, err
			}
			for _, spec := range roster {
				cells = append(cells, t1Cell{rep, shot, spec, support})
			}
		}
	}

	workers := par.Resolve(cfg.Workers)
	notify := lockedProgress(cfg.Progress, workers)
	scores := make([]map[string]float64, len(cells))
	if err := par.ForEachErr(workers, len(cells), func(ci int) error {
		c := cells[ci]
		seed := cfg.Seed + int64(c.rep)*7919 + int64(c.shot)*101
		m := c.spec.build(cfg.Scale, seed)
		if om, ok := m.(*OursMethod); ok {
			om.Cfg.Obs = cfg.Obs
			// The cell grid owns the parallelism; keep the in-cell FS
			// search and shard workers on their sequential paths to avoid
			// oversubscription. TrainShards still applies — the shard count
			// changes the bits, the worker count never does.
			om.Cfg.Workers = 1
			om.Cfg.TrainShards = cfg.TrainShards
		}
		m = baselines.Instrument(m, cfg.Obs)
		out := make(map[string]float64)
		if m.ModelAgnostic() {
			for _, kind := range models.AllKinds() {
				clf, err := models.New(kind, models.Options{
					Seed:   seed,
					Epochs: cfg.Scale.ClassifierEpochs,
					Trees:  cfg.Scale.Trees,
				})
				if err != nil {
					return err
				}
				f1, err := scoreMethod(m, pair, c.support, clf)
				if err != nil {
					return fmt.Errorf("%s/%s shot=%d: %w", c.spec.name, kind, c.shot, err)
				}
				out[kind.String()] = f1
				progress(notify, "%s %s/%s shot=%d rep=%d F1=%.1f",
					cfg.Dataset, c.spec.name, kind, c.shot, c.rep, f1)
			}
		} else {
			f1, err := scoreMethod(m, pair, c.support, nil)
			if err != nil {
				return fmt.Errorf("%s shot=%d: %w", c.spec.name, c.shot, err)
			}
			out["*"] = f1
			progress(notify, "%s %s shot=%d rep=%d F1=%.1f",
				cfg.Dataset, c.spec.name, c.shot, c.rep, f1)
		}
		scores[ci] = out
		return nil
	}); err != nil {
		return nil, err
	}

	// Merge per-cell scores in cell (rep-major) order, classifiers in
	// models.AllKinds() order, so every mean's float summation order
	// matches the sequential path exactly.
	for ci := range cells {
		c := cells[ci]
		for _, kind := range models.AllKinds() {
			if v, ok := scores[ci][kind.String()]; ok {
				acc[c.spec.name][c.shot][kind.String()] = append(acc[c.spec.name][c.shot][kind.String()], v)
			}
		}
		if v, ok := scores[ci]["*"]; ok {
			acc[c.spec.name][c.shot]["*"] = append(acc[c.spec.name][c.shot]["*"], v)
		}
	}

	for _, spec := range roster {
		row := MethodRow{
			Method:        spec.name,
			Category:      spec.category,
			ModelAgnostic: acc[spec.name][cfg.Shots[0]]["*"] == nil,
			Scores:        make(map[int]map[string]float64),
		}
		for _, s := range cfg.Shots {
			row.Scores[s] = make(map[string]float64)
			for clf, vals := range acc[spec.name][s] {
				row.Scores[s][clf] = mean(vals)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func scoreMethod(m baselines.Method, pair *Pair, support *dataset.Dataset, clf models.Classifier) (float64, error) {
	pred, err := m.Predict(pair.Source, support, pair.TargetTest, clf)
	if err != nil {
		return 0, err
	}
	return metrics.MacroF1Score(pair.TargetTest.Y, pred, pair.NumClasses)
}

func filterRoster(roster []methodSpec, names []string) []methodSpec {
	if len(names) == 0 {
		return roster
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []methodSpec
	for _, spec := range roster {
		if want[spec.name] {
			out = append(out, spec)
		}
	}
	return out
}

func progress(fn func(string), format string, args ...any) {
	if fn != nil {
		fn(fmt.Sprintf(format, args...))
	}
}

// lockedProgress wraps a Progress callback with a mutex so concurrent
// experiment cells never invoke it at the same time. With one worker the
// callback is returned untouched.
func lockedProgress(fn func(string), workers int) func(string) {
	if fn == nil || workers <= 1 {
		return fn
	}
	var mu sync.Mutex
	return func(s string) {
		mu.Lock()
		defer mu.Unlock()
		fn(s)
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// BestScore returns the maximum cell value for a method row (any shot, any
// classifier); useful in summaries and tests.
func (r *Table1Result) BestScore(method string) (float64, bool) {
	for _, row := range r.Rows {
		if row.Method != method {
			continue
		}
		best := -1.0
		for _, byClf := range row.Scores {
			for _, v := range byClf {
				if v > best {
					best = v
				}
			}
		}
		return best, best >= 0
	}
	return 0, false
}

// Score returns a specific cell (clf "*" for model-specific methods).
func (r *Table1Result) Score(method string, shot int, clf string) (float64, bool) {
	for _, row := range r.Rows {
		if row.Method != method {
			continue
		}
		byClf, ok := row.Scores[shot]
		if !ok {
			return 0, false
		}
		if v, ok := byClf[clf]; ok {
			return v, true
		}
		v, ok := byClf["*"]
		return v, ok
	}
	return 0, false
}

// MeanScore averages a method's cells across all shots and classifiers.
func (r *Table1Result) MeanScore(method string) (float64, bool) {
	for _, row := range r.Rows {
		if row.Method != method {
			continue
		}
		var vals []float64
		for _, byClf := range row.Scores {
			keys := make([]string, 0, len(byClf))
			for k := range byClf {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				vals = append(vals, byClf[k])
			}
		}
		if len(vals) == 0 {
			return 0, false
		}
		return mean(vals), true
	}
	return 0, false
}
