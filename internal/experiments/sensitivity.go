package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"netdrift/internal/baselines"
	"netdrift/internal/causal"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
	"netdrift/internal/obs"
	"netdrift/internal/par"
)

// SensitivityConfig drives the §VI-C analyses.
type SensitivityConfig struct {
	Dataset string
	Shots   []int // default {1, 5, 10}
	Repeats int   // default 3
	Seed    int64
	Scale   Scale
	// Workers bounds concurrent evaluation of independent (shot, rep)
	// cells; <= 0 means all cores, 1 forces the sequential path, and
	// results are bit-identical for every value.
	Workers  int
	Progress func(string)
	// Obs, when non-nil, instruments the FS searches and adapter runs.
	Obs *obs.Observer
}

// VariantCountResult reports how many domain-variant features FS (and the
// conservative ICD baseline) identify per shot count, plus the ground-truth
// count from the synthetic generator.
type VariantCountResult struct {
	Dataset     string
	Shots       []int
	FSCounts    map[int]float64 // mean FS variant count per shot
	ICDCounts   map[int]float64 // mean ICD variant count per shot
	TrueVariant int
}

// RunVariantCounts reproduces the "FS identified 35/68/75 variant
// features ..." sensitivity sweep.
func RunVariantCounts(cfg SensitivityConfig) (*VariantCountResult, error) {
	if len(cfg.Shots) == 0 {
		cfg.Shots = []int{1, 5, 10}
	}
	if cfg.Repeats == 0 {
		cfg.Repeats = 3
	}
	if cfg.Scale == (Scale{}) {
		cfg.Scale = BenchScale
	}
	pair, err := MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	trueCount, err := trueVariantCount(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &VariantCountResult{
		Dataset:     cfg.Dataset,
		Shots:       append([]int(nil), cfg.Shots...),
		FSCounts:    make(map[int]float64),
		ICDCounts:   make(map[int]float64),
		TrueVariant: trueCount,
	}
	// Shot-major cell grid, matching the historical loop nesting.
	type vcCell struct{ shot, rep int }
	type vcOut struct{ fs, icd float64 }
	var cells []vcCell
	for _, shot := range cfg.Shots {
		for rep := 0; rep < cfg.Repeats; rep++ {
			cells = append(cells, vcCell{shot, rep})
		}
	}
	workers := par.Resolve(cfg.Workers)
	notify := lockedProgress(cfg.Progress, workers)
	outs := make([]vcOut, len(cells))
	if err := par.ForEachErr(workers, len(cells), func(ci int) error {
		c := cells[ci]
		drawRng := rand.New(rand.NewSource(cfg.Seed + int64(c.rep)*977 + int64(c.shot)))
		support, _, err := pair.TargetTrain.FewShot(c.shot, pair.UseGroups, drawRng)
		if err != nil {
			return err
		}
		n, err := VariantCount(pair.Source, support, causal.FNodeConfig{Workers: 1, Obs: cfg.Obs})
		if err != nil {
			return err
		}
		icdN, err := baselines.ICD{}.VariantCount(pair.Source, support)
		if err != nil {
			return err
		}
		outs[ci] = vcOut{fs: float64(n), icd: float64(icdN)}
		progress(notify, "%s shot=%d rep=%d FS=%d ICD=%d (truth %d)",
			cfg.Dataset, c.shot, c.rep, n, icdN, trueCount)
		return nil
	}); err != nil {
		return nil, err
	}
	for _, shot := range cfg.Shots {
		var fsVals, icdVals []float64
		for ci, c := range cells {
			if c.shot == shot {
				fsVals = append(fsVals, outs[ci].fs)
				icdVals = append(icdVals, outs[ci].icd)
			}
		}
		res.FSCounts[shot] = mean(fsVals)
		res.ICDCounts[shot] = mean(icdVals)
	}
	return res, nil
}

func trueVariantCount(name string, sc Scale, seed int64) (int, error) {
	switch name {
	case "5gc":
		d, err := dataset.Synthetic5GC(dataset.FiveGCConfig{
			Seed: seed, SourceSamples: 32, TargetTrainPool: 32, TargetTestSamples: 32,
		})
		if err != nil {
			return 0, err
		}
		return len(d.TrueVariant), nil
	case "5gipc":
		d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
			Seed: seed, SourceNormal: 50, SourceFaults: [4]int{8, 8, 8, 8},
			TargetNormal: 20, TargetFaults: [4]int{4, 4, 4, 4}, TargetTrainPerGroup: 2,
		})
		if err != nil {
			return 0, err
		}
		return len(d.Targets[0].TrueVariant), nil
	default:
		return 0, fmt.Errorf("experiments: unknown dataset %q", name)
	}
}

// VarianceResult reports the spread of FS+GAN performance across few-shot
// draws (paper: within ±2.6 F1).
type VarianceResult struct {
	Dataset string
	Shot    int
	Mean    float64
	StdDev  float64
	Values  []float64
}

// RunVariance measures FS+GAN (TNet) variance across random support draws.
func RunVariance(cfg SensitivityConfig, shot int) (*VarianceResult, error) {
	if cfg.Repeats == 0 {
		cfg.Repeats = 5
	}
	if cfg.Scale == (Scale{}) {
		cfg.Scale = BenchScale
	}
	pair, err := MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	workers := par.Resolve(cfg.Workers)
	notify := lockedProgress(cfg.Progress, workers)
	vals := make([]float64, cfg.Repeats)
	if err := par.ForEachErr(workers, cfg.Repeats, func(rep int) error {
		drawRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*977))
		support, _, err := pair.TargetTrain.FewShot(shot, pair.UseGroups, drawRng)
		if err != nil {
			return err
		}
		seed := cfg.Seed + int64(rep)*7919
		m := NewFSGAN(cfg.Scale.GANEpochs, seed)
		m.Cfg.Obs = cfg.Obs
		m.Cfg.Workers = 1 // the draw grid owns the parallelism
		clf := models.NewTNet(models.Options{Seed: seed, Epochs: cfg.Scale.ClassifierEpochs})
		pred, err := m.Predict(pair.Source, support, pair.TargetTest, clf)
		if err != nil {
			return err
		}
		f1, err := metrics.MacroF1Score(pair.TargetTest.Y, pred, pair.NumClasses)
		if err != nil {
			return err
		}
		vals[rep] = f1
		progress(notify, "%s variance draw %d: F1=%.1f", cfg.Dataset, rep, f1)
		return nil
	}); err != nil {
		return nil, err
	}
	m := mean(vals)
	var ss float64
	for _, v := range vals {
		ss += (v - m) * (v - m)
	}
	sd := 0.0
	if len(vals) > 1 {
		sd = math.Sqrt(ss / float64(len(vals)-1))
	}
	return &VarianceResult{Dataset: cfg.Dataset, Shot: shot, Mean: m, StdDev: sd, Values: vals}, nil
}

// InDomainResult reports SrcOnly performance when train and test both come
// from the source domain (§VI-B(a)): high scores prove the cross-domain
// collapse is caused by drift, not model capacity.
type InDomainResult struct {
	Dataset string
	F1      map[string]float64 // per classifier
}

// RunInDomain cross-validates SrcOnly within the source domain.
func RunInDomain(cfg SensitivityConfig) (*InDomainResult, error) {
	if cfg.Scale == (Scale{}) {
		cfg.Scale = BenchScale
	}
	pair, err := MakePair(cfg.Dataset, cfg.Scale, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	train, test, err := pair.Source.StratifiedSplit(0.8, false, rng)
	if err != nil {
		return nil, err
	}
	res := &InDomainResult{Dataset: cfg.Dataset, F1: make(map[string]float64)}
	for _, kind := range models.AllKinds() {
		clf, err := models.New(kind, models.Options{
			Seed: cfg.Seed, Epochs: cfg.Scale.ClassifierEpochs, Trees: cfg.Scale.Trees,
		})
		if err != nil {
			return nil, err
		}
		pred, err := baselines.Instrument(baselines.SrcOnly{}, cfg.Obs).Predict(train, nil, test, clf)
		if err != nil {
			return nil, err
		}
		f1, err := metrics.MacroF1Score(test.Y, pred, pair.NumClasses)
		if err != nil {
			return nil, err
		}
		res.F1[kind.String()] = f1
		progress(cfg.Progress, "%s in-domain %s F1=%.1f", cfg.Dataset, kind, f1)
	}
	return res, nil
}
