package experiments

import (
	"math/rand"
	"testing"

	"netdrift/internal/core"
	"netdrift/internal/models"
)

// TestOursMethodAdapterCache verifies the Table I optimization: the four
// classifier columns share one fitted adapter (one GAN training) per
// (source, support) pair.
func TestOursMethodAdapterCache(t *testing.T) {
	pair, err := MakePair("5gipc", QuickScale, 61)
	if err != nil {
		t.Fatal(err)
	}
	support, _, err := pair.TargetTrain.FewShot(3, true, rand.New(rand.NewSource(62)))
	if err != nil {
		t.Fatal(err)
	}
	m := NewFSGAN(QuickScale.GANEpochs, 63)
	ad1, train1, err := m.adapterFor(pair.Source, support)
	if err != nil {
		t.Fatal(err)
	}
	ad2, train2, err := m.adapterFor(pair.Source, support)
	if err != nil {
		t.Fatal(err)
	}
	if ad1 != ad2 || train1 != train2 {
		t.Error("same (source, support) pair must reuse the cached adapter")
	}
	// A different support invalidates the cache.
	support2, _, err := pair.TargetTrain.FewShot(3, true, rand.New(rand.NewSource(64)))
	if err != nil {
		t.Fatal(err)
	}
	ad3, _, err := m.adapterFor(pair.Source, support2)
	if err != nil {
		t.Fatal(err)
	}
	if ad3 == ad1 {
		t.Error("different support must refit the adapter")
	}
}

func TestOursMethodLabels(t *testing.T) {
	if got := NewFS(1).Name(); got != "FS (ours)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewFSGAN(5, 1).Name(); got != "FS+GAN (ours)" {
		t.Errorf("Name = %q", got)
	}
	if got := NewFSRecon(core.ReconVAE, 5, 1).Name(); got != "FS+VAE" {
		t.Errorf("Name = %q", got)
	}
	if !NewFS(1).ModelAgnostic() {
		t.Error("FS must be model-agnostic")
	}
}

func TestTable1ResultAccessors(t *testing.T) {
	res := &Table1Result{
		Shots:       []int{5},
		Classifiers: []string{"TNet"},
		Rows: []MethodRow{
			{
				Method: "FS (ours)",
				Scores: map[int]map[string]float64{5: {"TNet": 80, "MLP": 70}},
			},
			{
				Method: "DANN",
				Scores: map[int]map[string]float64{5: {"*": 60}},
			},
		},
	}
	if v, ok := res.Score("FS (ours)", 5, "TNet"); !ok || v != 80 {
		t.Errorf("Score = %v,%v; want 80,true", v, ok)
	}
	if v, ok := res.Score("DANN", 5, "TNet"); !ok || v != 60 {
		t.Errorf("model-specific Score = %v,%v; want 60,true", v, ok)
	}
	if _, ok := res.Score("nope", 5, "TNet"); ok {
		t.Error("unknown method should not resolve")
	}
	if v, ok := res.BestScore("FS (ours)"); !ok || v != 80 {
		t.Errorf("BestScore = %v,%v; want 80,true", v, ok)
	}
	if v, ok := res.MeanScore("FS (ours)"); !ok || v != 75 {
		t.Errorf("MeanScore = %v,%v; want 75,true", v, ok)
	}
	if _, ok := res.MeanScore("nope"); ok {
		t.Error("unknown method should not have a mean")
	}
}

// TestFSGANModelAgnosticAcrossClassifiers spot-checks the shared-adapter
// path end to end with two different classifier families.
func TestFSGANModelAgnosticAcrossClassifiers(t *testing.T) {
	pair, err := MakePair("5gipc", QuickScale, 71)
	if err != nil {
		t.Fatal(err)
	}
	support, _, err := pair.TargetTrain.FewShot(5, true, rand.New(rand.NewSource(72)))
	if err != nil {
		t.Fatal(err)
	}
	m := NewFSGAN(QuickScale.GANEpochs, 73)
	for _, kind := range []models.Kind{models.KindMLP, models.KindRF} {
		clf, err := models.New(kind, models.Options{Seed: 73, Epochs: 6, Trees: 10})
		if err != nil {
			t.Fatal(err)
		}
		pred, err := m.Predict(pair.Source, support, pair.TargetTest, clf)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(pred) != pair.TargetTest.NumSamples() {
			t.Fatalf("%s: wrong prediction count", kind)
		}
	}
}
