package experiments

import (
	"fmt"
	"strings"
)

// FormatTable1 renders a Table1Result in the paper's layout: one row per
// method, one column block per shot count with the four classifiers.
func FormatTable1(r *Table1Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table I — F1 on the %s target test set (mean of %d few-shot draws)\n",
		strings.ToUpper(r.Dataset), r.Repeats)
	// Header.
	fmt.Fprintf(&sb, "%-22s %-18s", "Method", "Category")
	for _, s := range r.Shots {
		for _, c := range r.Classifiers {
			fmt.Fprintf(&sb, " %5s", fmt.Sprintf("%d/%s", s, shortClf(c)))
		}
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-22s %-18s", row.Method, row.Category)
		for _, s := range r.Shots {
			byClf := row.Scores[s]
			if v, ok := byClf["*"]; ok {
				// Model-specific: one value spanning the classifier block.
				for range r.Classifiers {
					fmt.Fprintf(&sb, " %5.1f", v)
				}
				continue
			}
			for _, c := range r.Classifiers {
				fmt.Fprintf(&sb, " %5.1f", byClf[c])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func shortClf(name string) string {
	switch name {
	case "TNet":
		return "TN"
	case "MLP":
		return "ML"
	case "RF":
		return "RF"
	case "XGB":
		return "XG"
	default:
		return name
	}
}

// FormatTable2 renders the reconstruction-strategy ablation.
func FormatTable2(r *Table2Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table II — reconstruction ablation on %s (TNet, mean of %d draws)\n",
		strings.ToUpper(r.Dataset), r.Repeats)
	fmt.Fprintf(&sb, "%-14s", "Method")
	for _, s := range r.Shots {
		fmt.Fprintf(&sb, " %8s", fmt.Sprintf("shots=%d", s))
	}
	sb.WriteByte('\n')
	for _, k := range r.Kinds {
		fmt.Fprintf(&sb, "%-14s", "FS+"+k.String())
		for _, s := range r.Shots {
			fmt.Fprintf(&sb, " %8.1f", r.Scores[k][s])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// FormatTable3 renders the multi-target no-retraining experiment.
func FormatTable3(r *Table3Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table III — TNet trained on Source only (mean of %d draws)\n", r.Repeats)
	fmt.Fprintf(&sb, "%-10s", "DA Method")
	for t := 0; t < 2; t++ {
		for _, s := range r.Shots {
			fmt.Fprintf(&sb, " %8s", fmt.Sprintf("T%d/s=%d", t+1, s))
		}
	}
	sb.WriteByte('\n')
	for a := 0; a < 2; a++ {
		fmt.Fprintf(&sb, "FS+GAN_%d  ", a+1)
		for t := 0; t < 2; t++ {
			for _, s := range r.Shots {
				fmt.Fprintf(&sb, " %8.1f", r.Scores[a][t][s])
			}
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "common variant fraction (Jaccard): %.2f\n", r.CommonVariantFraction)
	return sb.String()
}

// FormatVariantCounts renders the §VI-C variant-feature sweep.
func FormatVariantCounts(r *VariantCountResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Sensitivity — variant features identified on %s (ground truth: %d)\n",
		strings.ToUpper(r.Dataset), r.TrueVariant)
	fmt.Fprintf(&sb, "%-8s %8s %8s\n", "shots", "FS", "ICD")
	for _, s := range r.Shots {
		fmt.Fprintf(&sb, "%-8d %8.1f %8.1f\n", s, r.FSCounts[s], r.ICDCounts[s])
	}
	return sb.String()
}

// FormatVariance renders the draw-variance analysis.
func FormatVariance(r *VarianceResult) string {
	return fmt.Sprintf(
		"Sensitivity — FS+GAN (TNet) on %s, %d draws at %d shots: mean F1 %.1f ± %.1f\n",
		strings.ToUpper(r.Dataset), len(r.Values), r.Shot, r.Mean, r.StdDev)
}

// FormatInDomain renders the SrcOnly in-domain check.
func FormatInDomain(r *InDomainResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SrcOnly cross-validated within the %s source domain:\n", strings.ToUpper(r.Dataset))
	for _, clf := range []string{"TNet", "MLP", "RF", "XGB"} {
		fmt.Fprintf(&sb, "  %-5s F1 = %.1f\n", clf, r.F1[clf])
	}
	return sb.String()
}
