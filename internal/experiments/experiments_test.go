package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"netdrift/internal/core"
	"netdrift/internal/models"
)

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "bench", "full", ""} {
		if _, ok := ScaleByName(name); !ok {
			t.Errorf("ScaleByName(%q) not found", name)
		}
	}
	if _, ok := ScaleByName("nope"); ok {
		t.Error("unknown scale should not resolve")
	}
}

func TestMakePair(t *testing.T) {
	for _, name := range []string{"5gc", "5gipc"} {
		pair, err := MakePair(name, QuickScale, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if pair.Source.NumSamples() == 0 || pair.TargetTest.NumSamples() == 0 {
			t.Errorf("%s: empty pair", name)
		}
	}
	if _, err := MakePair("bogus", QuickScale, 1); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestTable1QuickShapeAndOrdering(t *testing.T) {
	res, err := RunTable1(Table1Config{
		Dataset: "5gc",
		Shots:   []int{5},
		Repeats: 1,
		Seed:    3,
		Scale:   QuickScale,
		Methods: []string{"FS+GAN (ours)", "FS (ours)", "SrcOnly", "CMT"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d; want 4", len(res.Rows))
	}
	fsgan, ok := res.Score("FS+GAN (ours)", 5, "TNet")
	if !ok {
		t.Fatal("missing FS+GAN cell")
	}
	srconly, ok := res.Score("SrcOnly", 5, "TNet")
	if !ok {
		t.Fatal("missing SrcOnly cell")
	}
	if fsgan <= srconly {
		t.Errorf("FS+GAN (%.1f) must beat SrcOnly (%.1f) under drift", fsgan, srconly)
	}
	// Formatting renders every method.
	text := FormatTable1(res)
	for _, m := range []string{"FS+GAN (ours)", "FS (ours)", "SrcOnly", "CMT"} {
		if !strings.Contains(text, m) {
			t.Errorf("formatted table missing %q:\n%s", m, text)
		}
	}
}

func TestTable1ModelSpecificColumns(t *testing.T) {
	res, err := RunTable1(Table1Config{
		Dataset: "5gipc",
		Shots:   []int{5},
		Repeats: 1,
		Seed:    4,
		Scale:   QuickScale,
		Methods: []string{"ProtoNet"},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := res.Score("ProtoNet", 5, "TNet")
	if !ok {
		t.Fatal("model-specific score should resolve through the * column")
	}
	v2, _ := res.Score("ProtoNet", 5, "XGB")
	if v != v2 {
		t.Error("model-specific methods must report one value across classifier columns")
	}
}

func TestTable1UnknownInputs(t *testing.T) {
	if _, err := RunTable1(Table1Config{Dataset: "bogus", Scale: QuickScale}); err == nil {
		t.Error("expected error for unknown dataset")
	}
	if _, err := RunTable1(Table1Config{Dataset: "5gc", Scale: QuickScale,
		Methods: []string{"not-a-method"}}); err == nil {
		t.Error("expected error for empty roster")
	}
}

func TestTable2Quick(t *testing.T) {
	res, err := RunTable2(Table2Config{
		Dataset: "5gipc",
		Shots:   []int{5},
		Repeats: 1,
		Seed:    5,
		Scale:   QuickScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Kinds) != 4 {
		t.Fatalf("kinds = %d; want 4", len(res.Kinds))
	}
	for _, k := range res.Kinds {
		if res.Scores[k][5] <= 0 {
			t.Errorf("FS+%s score missing", k)
		}
	}
	if !strings.Contains(FormatTable2(res), "FS+GAN") {
		t.Error("formatted table2 missing FS+GAN")
	}
}

func TestTable3Quick(t *testing.T) {
	res, err := RunTable3(Table3Config{
		Shots:   []int{5},
		Repeats: 1,
		Seed:    6,
		Scale:   QuickScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 2; a++ {
		for tgt := 0; tgt < 2; tgt++ {
			if res.Scores[a][tgt][5] <= 0 {
				t.Errorf("missing score FS+GAN_%d on Target_%d", a+1, tgt+1)
			}
		}
	}
	if res.CommonVariantFraction <= 0 {
		t.Error("common variant fraction should be positive (targets share the traffic shift)")
	}
	if !strings.Contains(FormatTable3(res), "FS+GAN_2") {
		t.Error("formatted table3 missing FS+GAN_2")
	}
}

func TestVariantCountsQuick(t *testing.T) {
	res, err := RunVariantCounts(SensitivityConfig{
		Dataset: "5gc",
		Shots:   []int{1, 10},
		Repeats: 1,
		Seed:    7,
		Scale:   QuickScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueVariant != 78 {
		t.Errorf("true variant = %d; want 78", res.TrueVariant)
	}
	if res.FSCounts[10] < res.FSCounts[1] {
		t.Errorf("FS counts should grow with shots: %v", res.FSCounts)
	}
	// ICD is conservative: fewer variant features than FS (paper §VI-B(d)).
	if res.ICDCounts[10] > res.FSCounts[10] {
		t.Errorf("ICD (%v) should find fewer than FS (%v)", res.ICDCounts[10], res.FSCounts[10])
	}
	if !strings.Contains(FormatVariantCounts(res), "FS") {
		t.Error("formatted counts missing FS column")
	}
}

func TestVarianceQuick(t *testing.T) {
	res, err := RunVariance(SensitivityConfig{
		Dataset: "5gipc",
		Repeats: 2,
		Seed:    8,
		Scale:   QuickScale,
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("values = %d; want 2", len(res.Values))
	}
	if res.Mean <= 0 {
		t.Error("mean F1 should be positive")
	}
	if !strings.Contains(FormatVariance(res), "FS+GAN") {
		t.Error("formatted variance missing method name")
	}
}

func TestInDomainQuick(t *testing.T) {
	res, err := RunInDomain(SensitivityConfig{
		Dataset: "5gipc",
		Seed:    9,
		Scale:   QuickScale,
	})
	if err != nil {
		t.Fatal(err)
	}
	// QuickScale trains tiny models on tiny data; this is a smoke check
	// that in-domain performance is well above the 2-class chance level.
	// The bench harness validates the full-scale levels.
	for _, clf := range []string{"TNet", "MLP", "RF", "XGB"} {
		if res.F1[clf] < 45 {
			t.Errorf("in-domain %s F1 = %.1f; should beat chance comfortably", clf, res.F1[clf])
		}
	}
	if !strings.Contains(FormatInDomain(res), "source domain") {
		t.Error("formatted in-domain output malformed")
	}
}

// TestM1PredictionStability asserts the §V-C2 premise at the prediction
// level: two independent TransformTarget calls (different noise draws) give
// the downstream classifier effectively identical predictions.
func TestM1PredictionStability(t *testing.T) {
	pair, err := MakePair("5gipc", QuickScale, 11)
	if err != nil {
		t.Fatal(err)
	}
	support, _, err := pair.TargetTrain.FewShot(5, true, randFor(12))
	if err != nil {
		t.Fatal(err)
	}
	ad := core.NewAdapter(core.AdapterConfig{
		Mode:  core.ModeFSRecon,
		Recon: core.ReconGAN,
		GAN:   core.GANConfig{Epochs: QuickScale.GANEpochs},
		Seed:  13,
	})
	if err := ad.Fit(pair.Source, support); err != nil {
		t.Fatal(err)
	}
	train, err := ad.TrainingData(pair.Source)
	if err != nil {
		t.Fatal(err)
	}
	clf := models.NewMLPClassifier(models.Options{Seed: 13, Epochs: QuickScale.ClassifierEpochs})
	if err := clf.Fit(train.X, train.Y, 2); err != nil {
		t.Fatal(err)
	}
	a, err := ad.TransformTarget(pair.TargetTest.X)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ad.TransformTarget(pair.TargetTest.X)
	if err != nil {
		t.Fatal(err)
	}
	predA, err := models.PredictClasses(clf, a)
	if err != nil {
		t.Fatal(err)
	}
	predB, err := models.PredictClasses(clf, b)
	if err != nil {
		t.Fatal(err)
	}
	var agree int
	for i := range predA {
		if predA[i] == predB[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(predA)); frac < 0.97 {
		t.Errorf("prediction agreement across noise draws = %.3f; want >= 0.97 (M=1 premise)", frac)
	}
}

func randFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
