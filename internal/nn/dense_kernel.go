package nn

// Portable scalar kernels for the Dense inference hot loop. On amd64 with
// AVX-capable hardware these are replaced at runtime by the vector versions
// in dense_kernel_amd64.s; the vector code uses only per-lane IEEE mul and
// add (never fused multiply-add), so both implementations produce
// bit-identical results and the golden tests in infer_test.go pin them
// against each other and against ForwardT.

// axpy4Go adds v[r]*w into each of the four output rows: o_r[k] += v[r]*w[k].
func axpy4Go(v *[4]float64, w, o0, o1, o2, o3 []float64) {
	w = w[:len(o0)]
	o1 = o1[:len(w)]
	o2 = o2[:len(w)]
	o3 = o3[:len(w)]
	v0, v1, v2, v3 := v[0], v[1], v[2], v[3]
	for k, wk := range w {
		o0[k] += v0 * wk
		o1[k] += v1 * wk
		o2[k] += v2 * wk
		o3[k] += v3 * wk
	}
}

// axpy1Go is the single-row form: o[k] += v*w[k].
func axpy1Go(v float64, w, o []float64) {
	w = w[:len(o)]
	for k, wk := range w {
		o[k] += v * wk
	}
}
