package nn

import (
	"fmt"

	"netdrift/internal/binenc"
)

// Binary snapshot codec: the flat little-endian counterpart of the JSON
// Snapshot shape, used by the binary bundle format. Layout (all counts
// u32-prefixed):
//
//	u32 numParams   { u32 len, len × f64 }  per parameter, in Params order
//	u32 numExtra    { u32 numSlices { u32 len, len × f64 } }  per layer
//
// Weights must be finite: ReadSnapshot rejects NaN/Inf so a corrupt or
// hostile artifact fails the load instead of poisoning inference.

// AppendSnapshot appends snap's binary encoding to dst.
func AppendSnapshot(dst []byte, snap *Snapshot) []byte {
	dst = binenc.AppendU32(dst, uint32(len(snap.Params)))
	for _, p := range snap.Params {
		dst = binenc.AppendF64s(dst, p)
	}
	dst = binenc.AppendU32(dst, uint32(len(snap.Extra)))
	for _, extra := range snap.Extra {
		dst = binenc.AppendU32(dst, uint32(len(extra)))
		for _, s := range extra {
			dst = binenc.AppendF64s(dst, s)
		}
	}
	return dst
}

// ReadSnapshot decodes a snapshot written by AppendSnapshot, validating
// finiteness of every value. Errors are typed via the reader (truncation,
// overflowing counts, non-finite payloads); it never panics.
func ReadSnapshot(r *binenc.Reader) (*Snapshot, error) {
	snap := &Snapshot{}
	nParams := r.Count(4)
	for i := 0; i < nParams && r.Err() == nil; i++ {
		snap.Params = append(snap.Params, r.FiniteF64s())
	}
	nExtra := r.Count(4)
	for i := 0; i < nExtra && r.Err() == nil; i++ {
		nSlices := r.Count(4)
		slices := make([][]float64, 0, nSlices)
		for j := 0; j < nSlices && r.Err() == nil; j++ {
			slices = append(slices, r.FiniteF64s())
		}
		snap.Extra = append(snap.Extra, slices)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("nn: decode snapshot: %w", err)
	}
	return snap, nil
}
