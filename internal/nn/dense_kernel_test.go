package nn

import (
	"math/rand"
	"testing"
)

// TestAxpyKernelsMatchPortable pins the dispatched axpy kernels (AVX when
// the host supports it) against the portable Go implementations bit for
// bit, across vector-width tails and negative/zero/subnormal-ish values.
func TestAxpyKernelsMatchPortable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fill := func(n int) []float64 {
		s := make([]float64, n)
		for i := range s {
			switch rng.Intn(8) {
			case 0:
				s[i] = 0
			case 1:
				s[i] = 1e-300 * rng.NormFloat64()
			default:
				s[i] = rng.NormFloat64()
			}
		}
		return s
	}
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 50, 256, 678} {
		w := fill(n)
		base := [][]float64{fill(n), fill(n), fill(n), fill(n)}
		v := [4]float64{rng.NormFloat64(), 0, rng.NormFloat64(), -rng.NormFloat64()}

		got := make([][]float64, 4)
		want := make([][]float64, 4)
		for r := range base {
			got[r] = append([]float64(nil), base[r]...)
			want[r] = append([]float64(nil), base[r]...)
		}
		axpy4(&v, w, got[0], got[1], got[2], got[3])
		axpy4Go(&v, w, want[0], want[1], want[2], want[3])
		for r := range got {
			for k := range got[r] {
				if got[r][k] != want[r][k] {
					t.Fatalf("axpy4 n=%d row=%d col=%d: %v != %v", n, r, k, got[r][k], want[r][k])
				}
			}
		}

		g1 := append([]float64(nil), base[0]...)
		w1 := append([]float64(nil), base[0]...)
		axpy1(v[0], w, g1)
		axpy1Go(v[0], w, w1)
		for k := range g1 {
			if g1[k] != w1[k] {
				t.Fatalf("axpy1 n=%d col=%d: %v != %v", n, k, g1[k], w1[k])
			}
		}
	}
}
