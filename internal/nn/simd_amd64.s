//go:build amd64

#include "textflag.h"

// AVX kernels for the training hot loops: Dense backward, BatchNorm
// forward/backward, the ReLU family, and the loss reductions. Same
// bit-identity contract as dense_kernel_amd64.s: only VMULPD/VADDPD/
// VSUBPD/VDIVPD (and their scalar VEX forms for length tails) — one IEEE
// rounding per lane per operation, exactly what the Go twins in
// simd_kernel.go compute. VFMADD* must never appear here. The reductions
// (vdot/vsum/vmse) fold their four lanes as (acc0+acc2)+(acc1+acc3) via
// VEXTRACTF128/VADDPD/VUNPCKHPD/VADDSD, which is the DEFINITION the Go
// twins implement — golden tests in simd_test.go pin every routine.

DATA simdone<>+0(SB)/8, $0x3ff0000000000000 // 1.0
GLOBL simdone<>(SB), RODATA, $8

DATA simdtwo<>+0(SB)/8, $0x4000000000000000 // 2.0
GLOBL simdtwo<>(SB), RODATA, $8

// func vaddavx(dst, x *float64, n int)
// dst[i] += x[i]
TEXT ·vaddavx(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   addtail

addloop:
	VMOVUPD (SI), Y1
	VADDPD  (DI), Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     addloop

addtail:
	ANDQ $3, CX
	JZ   adddone

addtailloop:
	VMOVSD (SI), X1
	VADDSD (DI), X1, X1
	VMOVSD X1, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    addtailloop

adddone:
	VZEROUPPER
	RET

// func vmuladdavx(dst, a, b *float64, n int)
// dst[i] += a[i]*b[i]
TEXT ·vmuladdavx(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), BX
	MOVQ n+24(FP), CX

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   matail

maloop:
	VMOVUPD (SI), Y1
	VMULPD  (BX), Y1, Y2
	VADDPD  (DI), Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, BX
	ADDQ    $32, DI
	DECQ    DX
	JNZ     maloop

matail:
	ANDQ $3, CX
	JZ   madone

matailloop:
	VMOVSD (SI), X1
	VMULSD (BX), X1, X2
	VADDSD (DI), X2, X2
	VMOVSD X2, (DI)
	ADDQ   $8, SI
	ADDQ   $8, BX
	ADDQ   $8, DI
	DECQ   CX
	JNZ    matailloop

madone:
	VZEROUPPER
	RET

// func vsqdiffavx(dst, x, m *float64, n int)
// dst[i] += (x[i]-m[i])^2
TEXT ·vsqdiffavx(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ m+16(FP), BX
	MOVQ n+24(FP), CX

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   sqtail

sqloop:
	VMOVUPD (SI), Y1
	VSUBPD  (BX), Y1, Y2
	VMULPD  Y2, Y2, Y3
	VADDPD  (DI), Y3, Y3
	VMOVUPD Y3, (DI)
	ADDQ    $32, SI
	ADDQ    $32, BX
	ADDQ    $32, DI
	DECQ    DX
	JNZ     sqloop

sqtail:
	ANDQ $3, CX
	JZ   sqdone

sqtailloop:
	VMOVSD (SI), X1
	VSUBSD (BX), X1, X2
	VMULSD X2, X2, X3
	VADDSD (DI), X3, X3
	VMOVSD X3, (DI)
	ADDQ   $8, SI
	ADDQ   $8, BX
	ADDQ   $8, DI
	DECQ   CX
	JNZ    sqtailloop

sqdone:
	VZEROUPPER
	RET

// func vdivsavx(x *float64, s float64, n int)
// x[i] /= s
TEXT ·vdivsavx(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), DI
	MOVQ n+16(FP), CX

	VBROADCASTSD s+8(FP), Y0

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   divtail

divloop:
	VMOVUPD (DI), Y1
	VDIVPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, DI
	DECQ    DX
	JNZ     divloop

divtail:
	ANDQ $3, CX
	JZ   divdone

divtailloop:
	VMOVSD (DI), X1
	VDIVSD X0, X1, X1
	VMOVSD X1, (DI)
	ADDQ   $8, DI
	DECQ   CX
	JNZ    divtailloop

divdone:
	VZEROUPPER
	RET

// func vscaleavx(dst, x *float64, s float64, n int)
// dst[i] = s * x[i]
TEXT ·vscaleavx(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+24(FP), CX

	VBROADCASTSD s+16(FP), Y0

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   scaletail

scaleloop:
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y1
	VMOVUPD Y1, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     scaleloop

scaletail:
	ANDQ $3, CX
	JZ   scaledone

scaletailloop:
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VMOVSD X1, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    scaletailloop

scaledone:
	VZEROUPPER
	RET

// func vbnnormavx(xh, x, mean, std *float64, n int)
// xh[i] = (x[i]-mean[i]) / std[i]
TEXT ·vbnnormavx(SB), NOSPLIT, $0-40
	MOVQ xh+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ mean+16(FP), BX
	MOVQ std+24(FP), R8
	MOVQ n+32(FP), CX

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   bnntail

bnnloop:
	VMOVUPD (SI), Y1
	VSUBPD  (BX), Y1, Y2
	VDIVPD  (R8), Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, BX
	ADDQ    $32, R8
	ADDQ    $32, DI
	DECQ    DX
	JNZ     bnnloop

bnntail:
	ANDQ $3, CX
	JZ   bnndone

bnntailloop:
	VMOVSD (SI), X1
	VSUBSD (BX), X1, X2
	VDIVSD (R8), X2, X2
	VMOVSD X2, (DI)
	ADDQ   $8, SI
	ADDQ   $8, BX
	ADDQ   $8, R8
	ADDQ   $8, DI
	DECQ   CX
	JNZ    bnntailloop

bnndone:
	VZEROUPPER
	RET

// func vbnaffineavx(o, xh, gamma, beta *float64, n int)
// o[i] = gamma[i]*xh[i] + beta[i]
TEXT ·vbnaffineavx(SB), NOSPLIT, $0-40
	MOVQ o+0(FP), DI
	MOVQ xh+8(FP), SI
	MOVQ gamma+16(FP), BX
	MOVQ beta+24(FP), R8
	MOVQ n+32(FP), CX

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   bnatail

bnaloop:
	VMOVUPD (SI), Y1
	VMULPD  (BX), Y1, Y2
	VADDPD  (R8), Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, BX
	ADDQ    $32, R8
	ADDQ    $32, DI
	DECQ    DX
	JNZ     bnaloop

bnatail:
	ANDQ $3, CX
	JZ   bnadone

bnatailloop:
	VMOVSD (SI), X1
	VMULSD (BX), X1, X2
	VADDSD (R8), X2, X2
	VMOVSD X2, (DI)
	ADDQ   $8, SI
	ADDQ   $8, BX
	ADDQ   $8, R8
	ADDQ   $8, DI
	DECQ   CX
	JNZ    bnatailloop

bnadone:
	VZEROUPPER
	RET

// func vbnbackavx(gi, grad, xh, coef, sumG, sumGX *float64, nf float64, n int)
// gi[i] = coef[i] * (nf*g[i] - sumG[i] - xh[i]*sumGX[i])
TEXT ·vbnbackavx(SB), NOSPLIT, $0-64
	MOVQ gi+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ xh+16(FP), BX
	MOVQ coef+24(FP), R8
	MOVQ sumG+32(FP), R9
	MOVQ sumGX+40(FP), R10
	MOVQ n+56(FP), CX

	VBROADCASTSD nf+48(FP), Y0

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   bnbtail

bnbloop:
	VMOVUPD (SI), Y1
	VMULPD  Y0, Y1, Y2
	VSUBPD  (R9), Y2, Y2
	VMOVUPD (BX), Y3
	VMULPD  (R10), Y3, Y3
	VSUBPD  Y3, Y2, Y2
	VMULPD  (R8), Y2, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, BX
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, DI
	DECQ    DX
	JNZ     bnbloop

bnbtail:
	ANDQ $3, CX
	JZ   bnbdone

bnbtailloop:
	VMOVSD (SI), X1
	VMULSD X0, X1, X2
	VSUBSD (R9), X2, X2
	VMOVSD (BX), X3
	VMULSD (R10), X3, X3
	VSUBSD X3, X2, X2
	VMULSD (R8), X2, X2
	VMOVSD X2, (DI)
	ADDQ   $8, SI
	ADDQ   $8, BX
	ADDQ   $8, R8
	ADDQ   $8, R9
	ADDQ   $8, R10
	ADDQ   $8, DI
	DECQ   CX
	JNZ    bnbtailloop

bnbdone:
	VZEROUPPER
	RET

// func vreluavx(dst, x *float64, n int)
// dst[i] = MAXPD(+0, x[i]): 0 for negatives, x for -0/NaN/non-negatives —
// exactly the scalar `if x < 0 { 0 } else { x }`.
TEXT ·vreluavx(SB), NOSPLIT, $0-24
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+16(FP), CX

	VXORPD Y0, Y0, Y0

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   relutail

reluloop:
	VMOVUPD (SI), Y1
	VMAXPD  Y1, Y0, Y2
	VMOVUPD Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	DECQ    DX
	JNZ     reluloop

relutail:
	ANDQ $3, CX
	JZ   reludone

relutailloop:
	VMOVSD (SI), X1
	VMAXSD X1, X0, X2
	VMOVSD X2, (DI)
	ADDQ   $8, SI
	ADDQ   $8, DI
	DECQ   CX
	JNZ    relutailloop

reludone:
	VZEROUPPER
	RET

// func vlreluavx(dst, x *float64, alpha float64, n int)
// dst[i] = x[i] < 0 ? alpha*x[i] : x[i]
TEXT ·vlreluavx(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ n+24(FP), CX

	VBROADCASTSD alpha+16(FP), Y0
	VXORPD       Y2, Y2, Y2

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   lrtail

lrloop:
	VMOVUPD   (SI), Y1
	VCMPPD    $0x11, Y2, Y1, Y3
	VMULPD    Y0, Y1, Y4
	VBLENDVPD Y3, Y4, Y1, Y5
	VMOVUPD   Y5, (DI)
	ADDQ      $32, SI
	ADDQ      $32, DI
	DECQ      DX
	JNZ       lrloop

lrtail:
	ANDQ $3, CX
	JZ   lrdone

lrtailloop:
	VMOVSD    (SI), X1
	VCMPSD    $0x11, X2, X1, X3
	VMULSD    X0, X1, X4
	VBLENDVPD X3, X4, X1, X5
	VMOVSD    X5, (DI)
	ADDQ      $8, SI
	ADDQ      $8, DI
	DECQ      CX
	JNZ       lrtailloop

lrdone:
	VZEROUPPER
	RET

// func vlrelubwdavx(gi, grad, x *float64, alpha float64, n int)
// gi[i] = g[i] * (x[i] < 0 ? alpha : 1); alpha=0 is the ReLU backward.
TEXT ·vlrelubwdavx(SB), NOSPLIT, $0-40
	MOVQ gi+0(FP), DI
	MOVQ grad+8(FP), SI
	MOVQ x+16(FP), BX
	MOVQ n+32(FP), CX

	VBROADCASTSD alpha+24(FP), Y0
	VBROADCASTSD simdone<>(SB), Y1
	VXORPD       Y4, Y4, Y4

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   lbtail

lbloop:
	VMOVUPD   (BX), Y2
	VCMPPD    $0x11, Y4, Y2, Y5
	VBLENDVPD Y5, Y0, Y1, Y6
	VMOVUPD   (SI), Y7
	VMULPD    Y6, Y7, Y7
	VMOVUPD   Y7, (DI)
	ADDQ      $32, SI
	ADDQ      $32, BX
	ADDQ      $32, DI
	DECQ      DX
	JNZ       lbloop

lbtail:
	ANDQ $3, CX
	JZ   lbdone

lbtailloop:
	VMOVSD    (BX), X2
	VCMPSD    $0x11, X4, X2, X5
	VBLENDVPD X5, X0, X1, X6
	VMOVSD    (SI), X7
	VMULSD    X6, X7, X7
	VMOVSD    X7, (DI)
	ADDQ      $8, SI
	ADDQ      $8, BX
	ADDQ      $8, DI
	DECQ      CX
	JNZ       lbtailloop

lbdone:
	VZEROUPPER
	RET

// func vdotavx(a, b *float64, n int) float64
// 4-lane dot: lane k sums elements i = k (mod 4); fold (l0+l2)+(l1+l3);
// sequential scalar tail.
TEXT ·vdotavx(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ b+8(FP), BX
	MOVQ n+16(FP), CX

	// Four independent accumulators (lanes 0-3, 4-7, 8-11, 12-15) so the
	// VADDPD chains overlap instead of serializing on one register.
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3

	MOVQ CX, DX
	SHRQ $4, DX
	JZ   dotfold

dotloop:
	VMOVUPD (SI), Y4
	VMULPD  (BX), Y4, Y4
	VADDPD  Y4, Y0, Y0
	VMOVUPD 32(SI), Y5
	VMULPD  32(BX), Y5, Y5
	VADDPD  Y5, Y1, Y1
	VMOVUPD 64(SI), Y4
	VMULPD  64(BX), Y4, Y4
	VADDPD  Y4, Y2, Y2
	VMOVUPD 96(SI), Y5
	VMULPD  96(BX), Y5, Y5
	VADDPD  Y5, Y3, Y3
	ADDQ    $128, SI
	ADDQ    $128, BX
	DECQ    DX
	JNZ     dotloop

dotfold:
	// f[k] = (l[k]+l[k+8]) + (l[k+4]+l[k+12]), then the 4-lane horizontal
	// fold (f0+f2) + (f1+f3) — matching vdotGo exactly.
	VADDPD Y2, Y0, Y0
	VADDPD Y3, Y1, Y1
	VADDPD Y1, Y0, Y0

	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VUNPCKHPD    X0, X0, X2
	VADDSD       X2, X0, X0

	ANDQ $15, CX
	JZ   dotdone

dottailloop:
	VMOVSD (SI), X1
	VMULSD (BX), X1, X1
	VADDSD X1, X0, X0
	ADDQ   $8, SI
	ADDQ   $8, BX
	DECQ   CX
	JNZ    dottailloop

dotdone:
	VMOVSD X0, ret+24(FP)
	VZEROUPPER
	RET

// func vsumavx(x *float64, n int) float64
// 4-lane sum with the same fold and tail order as vdotavx.
TEXT ·vsumavx(SB), NOSPLIT, $0-24
	MOVQ x+0(FP), SI
	MOVQ n+8(FP), CX

	VXORPD Y0, Y0, Y0

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   sumfold

sumloop:
	VADDPD (SI), Y0, Y0
	ADDQ   $32, SI
	DECQ   DX
	JNZ    sumloop

sumfold:
	VEXTRACTF128 $1, Y0, X1
	VADDPD       X1, X0, X0
	VUNPCKHPD    X0, X0, X2
	VADDSD       X2, X0, X0

	ANDQ $3, CX
	JZ   sumdone

sumtailloop:
	VADDSD (SI), X0, X0
	ADDQ   $8, SI
	DECQ   CX
	JNZ    sumtailloop

sumdone:
	VMOVSD X0, ret+16(FP)
	VZEROUPPER
	RET

// func vmseavx(grad, pred, target *float64, n int) float64
// grad[i] = 2*(pred[i]-target[i]); returns the 4-lane sum of squared
// differences (unnormalized).
TEXT ·vmseavx(SB), NOSPLIT, $0-40
	MOVQ grad+0(FP), DI
	MOVQ pred+8(FP), SI
	MOVQ target+16(FP), BX
	MOVQ n+24(FP), CX

	VXORPD       Y0, Y0, Y0
	VBROADCASTSD simdtwo<>(SB), Y1

	MOVQ CX, DX
	SHRQ $2, DX
	JZ   msefold

mseloop:
	VMOVUPD (SI), Y2
	VSUBPD  (BX), Y2, Y2
	VMULPD  Y1, Y2, Y3
	VMOVUPD Y3, (DI)
	VMULPD  Y2, Y2, Y4
	VADDPD  Y4, Y0, Y0
	ADDQ    $32, SI
	ADDQ    $32, BX
	ADDQ    $32, DI
	DECQ    DX
	JNZ     mseloop

msefold:
	VEXTRACTF128 $1, Y0, X5
	VADDPD       X5, X0, X0
	VUNPCKHPD    X0, X0, X6
	VADDSD       X6, X0, X0

	ANDQ $3, CX
	JZ   msedone

msetailloop:
	VMOVSD (SI), X2
	VSUBSD (BX), X2, X2
	VMULSD X1, X2, X3
	VMOVSD X3, (DI)
	VMULSD X2, X2, X4
	VADDSD X4, X0, X0
	ADDQ   $8, SI
	ADDQ   $8, BX
	ADDQ   $8, DI
	DECQ   CX
	JNZ    msetailloop

msedone:
	VMOVSD X0, ret+32(FP)
	VZEROUPPER
	RET
