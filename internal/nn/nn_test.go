package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericalGrad computes d loss / d v by central differences, where get/set
// access the scalar being perturbed and lossFn recomputes the loss.
func numericalGrad(get func() float64, set func(float64), lossFn func() float64) float64 {
	const h = 1e-5
	orig := get()
	set(orig + h)
	lp := lossFn()
	set(orig - h)
	lm := lossFn()
	set(orig)
	return (lp - lm) / (2 * h)
}

// checkParamGrads verifies backprop parameter gradients of net against
// numerical differentiation of lossFn (which must run forward+loss in
// train mode deterministically).
func checkParamGrads(t *testing.T, params []*Param, lossFn func() float64, analytic func(), tol float64) {
	t.Helper()
	ZeroGrads(params)
	analytic()
	for _, p := range params {
		for i := range p.Data {
			want := numericalGrad(
				func() float64 { return p.Data[i] },
				func(v float64) { p.Data[i] = v },
				lossFn,
			)
			got := p.Grad[i]
			if math.Abs(got-want) > tol*(1+math.Abs(want)) {
				t.Errorf("param %s[%d]: grad = %v; numerical %v", p.Name, i, got, want)
			}
		}
	}
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, rng)
	x := [][]float64{{0.5, -1.2, 0.3}, {1.1, 0.2, -0.7}}
	y := []int{0, 1}

	lossFn := func() float64 {
		out := d.Forward(x, true)
		l, _, err := SoftmaxCE(out, y)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	analytic := func() {
		out := d.Forward(x, true)
		_, g, err := SoftmaxCE(out, y)
		if err != nil {
			t.Fatal(err)
		}
		d.Backward(g)
	}
	checkParamGrads(t, d.Params(), lossFn, analytic, 1e-6)
}

func TestDenseInputGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(3, 2, rng)
	x := [][]float64{{0.5, -1.2, 0.3}}
	y := []int{1}
	lossAt := func(xi [][]float64) float64 {
		out := d.Forward(xi, true)
		l, _, _ := SoftmaxCE(out, y)
		return l
	}
	out := d.Forward(x, true)
	_, g, _ := SoftmaxCE(out, y)
	gin := d.Backward(g)
	for j := range x[0] {
		want := numericalGrad(
			func() float64 { return x[0][j] },
			func(v float64) { x[0][j] = v },
			func() float64 { return lossAt(x) },
		)
		if math.Abs(gin[0][j]-want) > 1e-6*(1+math.Abs(want)) {
			t.Errorf("input grad[%d] = %v; numerical %v", j, gin[0][j], want)
		}
	}
}

func TestMLPGradientCheck(t *testing.T) {
	// Tanh keeps the loss smooth; ReLU's kink can sit within the finite-
	// difference step for unlucky seeds and void the numerical reference.
	// ReLU backward is covered by TestReLUGradientCheck below.
	rng := rand.New(rand.NewSource(3))
	net := NewMLP(MLPConfig{In: 4, Hidden: []int{5, 3}, Out: 2, Activation: NewTanh, Rng: rng})
	x := randBatch(rng, 3, 4)
	y := []int{0, 1, 0}
	lossFn := func() float64 {
		out := net.Forward(x, true)
		l, _, _ := SoftmaxCE(out, y)
		return l
	}
	analytic := func() {
		out := net.Forward(x, true)
		_, g, _ := SoftmaxCE(out, y)
		net.Backward(g)
	}
	checkParamGrads(t, net.Params(), lossFn, analytic, 1e-5)
}

func TestReLUGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := NewNetwork(NewDense(3, 4, rng), NewReLU(), NewDense(4, 2, rng))
	x := randBatch(rng, 2, 3)
	y := []int{1, 0}
	// Verify no pre-activation sits near the ReLU kink for this seed, so
	// the numerical reference below is trustworthy.
	pre := net.Layers[0].Forward(x, true)
	for _, row := range pre {
		for _, v := range row {
			if math.Abs(v) < 1e-3 {
				t.Fatalf("pre-activation %v too close to ReLU kink; pick another seed", v)
			}
		}
	}
	lossFn := func() float64 {
		out := net.Forward(x, true)
		l, _, _ := SoftmaxCE(out, y)
		return l
	}
	analytic := func() {
		out := net.Forward(x, true)
		_, g, _ := SoftmaxCE(out, y)
		net.Backward(g)
	}
	checkParamGrads(t, net.Params(), lossFn, analytic, 1e-5)
}

func TestTanhSigmoidLeakyGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct {
		name string
		act  func() Layer
	}{
		{"tanh", NewTanh},
		{"sigmoid", NewSigmoid},
		{"leaky", func() Layer { return NewLeakyReLU(0.2) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := NewNetwork(NewDense(3, 4, rng), tc.act(), NewDense(4, 2, rng))
			x := randBatch(rng, 2, 3)
			y := []int{1, 0}
			lossFn := func() float64 {
				out := net.Forward(x, true)
				l, _, _ := SoftmaxCE(out, y)
				return l
			}
			analytic := func() {
				out := net.Forward(x, true)
				_, g, _ := SoftmaxCE(out, y)
				net.Backward(g)
			}
			checkParamGrads(t, net.Params(), lossFn, analytic, 1e-5)
		})
	}
}

func TestBatchNormGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(NewDense(3, 4, rng), NewBatchNorm(4), NewReLU(), NewDense(4, 2, rng))
	x := randBatch(rng, 5, 3)
	y := []int{0, 1, 1, 0, 1}
	lossFn := func() float64 {
		out := net.Forward(x, true)
		l, _, _ := SoftmaxCE(out, y)
		return l
	}
	analytic := func() {
		out := net.Forward(x, true)
		_, g, _ := SoftmaxCE(out, y)
		net.Backward(g)
	}
	// Note: batch-norm running stats update every forward call, but the
	// loss in train mode only depends on batch stats, so numerical
	// differentiation stays valid.
	checkParamGrads(t, net.Params(), lossFn, analytic, 1e-4)
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	bn := NewBatchNorm(2)
	// Train on a shifted batch a few times.
	batch := [][]float64{{10, -4}, {12, -6}, {8, -2}}
	for i := 0; i < 50; i++ {
		bn.Forward(batch, true)
	}
	// A single inference sample equal to the running mean maps near beta=0.
	out := bn.Forward([][]float64{{10, -4}}, false)
	if math.Abs(out[0][0]) > 0.2 || math.Abs(out[0][1]) > 0.2 {
		t.Errorf("inference at running mean = %v; want ~[0 0]", out[0])
	}
	_ = rng
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDropout(0.5, rng)
	x := [][]float64{{1, 1, 1, 1, 1, 1, 1, 1}}
	evalOut := d.Forward(x, false)
	for j, v := range evalOut[0] {
		if v != 1 {
			t.Errorf("eval output[%d] = %v; want 1", j, v)
		}
	}
	// In train mode roughly half are dropped and survivors scaled by 2.
	var zeros, twos int
	for i := 0; i < 200; i++ {
		out := d.Forward(x, true)
		for _, v := range out[0] {
			switch v {
			case 0:
				zeros++
			case 2:
				twos++
			default:
				t.Fatalf("unexpected dropout output %v", v)
			}
		}
	}
	total := zeros + twos
	if frac := float64(zeros) / float64(total); frac < 0.4 || frac > 0.6 {
		t.Errorf("drop fraction = %v; want ~0.5", frac)
	}
}

func TestGradReverse(t *testing.T) {
	g := &GradReverse{Lambda: 2}
	x := [][]float64{{1, 2}}
	out := g.Forward(x, true)
	if out[0][0] != 1 || out[0][1] != 2 {
		t.Error("forward must be identity")
	}
	gin := g.Backward([][]float64{{3, -1}})
	if gin[0][0] != -6 || gin[0][1] != 2 {
		t.Errorf("backward = %v; want [-6 2]", gin[0])
	}
}

func TestSoftmaxCEKnownValue(t *testing.T) {
	// Uniform logits over 4 classes: loss = log(4).
	logits := [][]float64{{0, 0, 0, 0}}
	l, g, err := SoftmaxCE(logits, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-math.Log(4)) > 1e-12 {
		t.Errorf("loss = %v; want log(4)", l)
	}
	// Gradient: p - onehot = [.25 .25 -.75 .25].
	want := []float64{0.25, 0.25, -0.75, 0.25}
	for j := range want {
		if math.Abs(g[0][j]-want[j]) > 1e-12 {
			t.Errorf("grad[%d] = %v; want %v", j, g[0][j], want[j])
		}
	}
	if _, _, err := SoftmaxCE(logits, []int{7}); err == nil {
		t.Error("expected error for out-of-range label")
	}
	if _, _, err := SoftmaxCE(nil, nil); err == nil {
		t.Error("expected error for empty batch")
	}
}

func TestBCEWithLogitsGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(NewDense(3, 4, rng), NewLeakyReLU(0.2), NewDense(4, 1, rng))
	x := randBatch(rng, 4, 3)
	targets := []float64{1, 0, 1, 0}
	lossFn := func() float64 {
		out := net.Forward(x, true)
		l, _, _ := BCEWithLogits(out, targets)
		return l
	}
	analytic := func() {
		out := net.Forward(x, true)
		_, g, _ := BCEWithLogits(out, targets)
		net.Backward(g)
	}
	checkParamGrads(t, net.Params(), lossFn, analytic, 1e-6)
}

func TestMSEGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(NewDense(2, 5, rng), NewTanh(), NewDense(5, 3, rng))
	x := randBatch(rng, 3, 2)
	target := randBatch(rng, 3, 3)
	lossFn := func() float64 {
		out := net.Forward(x, true)
		l, _, _ := MSE(out, target)
		return l
	}
	analytic := func() {
		out := net.Forward(x, true)
		_, g, _ := MSE(out, target)
		net.Backward(g)
	}
	checkParamGrads(t, net.Params(), lossFn, analytic, 1e-6)
}

func TestSupConLossGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	emb := randBatch(rng, 5, 4)
	y := []int{0, 0, 1, 1, 0}
	_, grad, err := SupConLoss(emb, y, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range emb {
		for j := range emb[i] {
			want := numericalGrad(
				func() float64 { return emb[i][j] },
				func(v float64) { emb[i][j] = v },
				func() float64 {
					l, _, _ := SupConLoss(emb, y, 0.5)
					return l
				},
			)
			if math.Abs(grad[i][j]-want) > 1e-5*(1+math.Abs(want)) {
				t.Errorf("supcon grad[%d][%d] = %v; numerical %v", i, j, grad[i][j], want)
			}
		}
	}
}

func TestSupConLossNoPositives(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	emb := randBatch(rng, 3, 4)
	l, g, err := SupConLoss(emb, []int{0, 1, 2}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if l != 0 {
		t.Errorf("loss = %v; want 0 with no positive pairs", l)
	}
	for i := range g {
		for j := range g[i] {
			if g[i][j] != 0 {
				t.Error("gradient must be zero with no positive pairs")
			}
		}
	}
}

func TestAdamReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Learn XOR-ish separable toy problem.
	x := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	y := []int{0, 1, 1, 0}
	net := NewMLP(MLPConfig{In: 2, Hidden: []int{16}, Out: 2, Rng: rng})
	opt := NewAdam(0.01, 0)
	var first, last float64
	for epoch := 0; epoch < 500; epoch++ {
		out := net.Forward(x, true)
		l, g, err := SoftmaxCE(out, y)
		if err != nil {
			t.Fatal(err)
		}
		if epoch == 0 {
			first = l
		}
		last = l
		net.Backward(g)
		opt.Step(net.Params())
	}
	if last > first/10 {
		t.Errorf("Adam failed to learn XOR: first=%v last=%v", first, last)
	}
	// Predictions must be correct.
	out := net.Forward(x, false)
	for i := range x {
		if argmax(out[i]) != y[i] {
			t.Errorf("sample %d misclassified", i)
		}
	}
}

func TestSGDMomentumReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randBatch(rng, 32, 4)
	y := make([]int, 32)
	for i := range y {
		if x[i][0]+x[i][1] > 0 {
			y[i] = 1
		}
	}
	net := NewMLP(MLPConfig{In: 4, Hidden: []int{8}, Out: 2, Rng: rng})
	opt := NewSGD(0.1, 0.9)
	var first, last float64
	for epoch := 0; epoch < 200; epoch++ {
		out := net.Forward(x, true)
		l, g, _ := SoftmaxCE(out, y)
		if epoch == 0 {
			first = l
		}
		last = l
		net.Backward(g)
		opt.Step(net.Params())
	}
	if last >= first/2 {
		t.Errorf("SGD failed to reduce loss: first=%v last=%v", first, last)
	}
}

func TestMinibatches(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	batches := Minibatches(10, 4, rng)
	var total int
	seen := map[int]bool{}
	for _, b := range batches {
		total += len(b)
		for _, i := range b {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if total != 10 {
		t.Errorf("total indices = %d; want 10", total)
	}
	// 9 samples with batch 4 would leave a singleton: must be merged.
	batches = Minibatches(9, 4, rng)
	for _, b := range batches {
		if len(b) == 1 {
			t.Error("singleton batch not merged")
		}
	}
	// batchSize <= 0 yields one full batch.
	batches = Minibatches(5, 0, rng)
	if len(batches) != 1 || len(batches[0]) != 5 {
		t.Errorf("full batch fallback wrong: %v", batches)
	}
}

func TestConcatAndSplitCols(t *testing.T) {
	a := [][]float64{{1, 2}, {5, 6}}
	b := [][]float64{{3}, {7}}
	c := ConcatRows(a, b)
	if len(c) != 2 || len(c[0]) != 3 || c[1][2] != 7 {
		t.Fatalf("ConcatRows = %v", c)
	}
	parts := SplitCols(c, 2, 1)
	if parts[0][0][1] != 2 || parts[1][1][0] != 7 {
		t.Errorf("SplitCols = %v", parts)
	}
	if got := ConcatRows(); got != nil {
		t.Error("empty ConcatRows should be nil")
	}
}

func TestGatherHelpers(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []int{10, 20, 30}
	gx := Gather(x, []int{2, 0})
	gy := GatherLabels(y, []int{2, 0})
	if gx[0][0] != 3 || gx[1][0] != 1 || gy[0] != 30 || gy[1] != 10 {
		t.Error("gather wrong")
	}
}

func randBatch(rng *rand.Rand, n, d int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		out[i] = row
	}
	return out
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}
