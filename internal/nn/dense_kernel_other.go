//go:build !amd64

package nn

func axpy4(v *[4]float64, w, o0, o1, o2, o3 []float64) { axpy4Go(v, w, o0, o1, o2, o3) }

func axpy1(v float64, w, o []float64) { axpy1Go(v, w, o) }
