package nn

// SkipConcat wraps an inner layer stack and concatenates the stack's output
// with the original input: y = [inner(x), x]. A downstream dense layer can
// then model the direct (e.g. linear) dependence on x while the inner stack
// captures the nonlinear residual — which dramatically speeds up learning
// of near-linear reconstruction maps on a small step budget.
type SkipConcat struct {
	Inner Layer

	inWidth int
	out     Tensor
	gradH   Tensor
	gradIn  Tensor
	legacy  legacyIO
}

var _ TensorLayer = (*SkipConcat)(nil)

// NewSkipConcat wraps the inner layer (often a *Network).
func NewSkipConcat(inner Layer) *SkipConcat {
	return &SkipConcat{Inner: inner}
}

// Forward computes [inner(x), x] row-wise.
func (s *SkipConcat) Forward(x [][]float64, train bool) [][]float64 {
	return legacyForward(s, &s.legacy, x, train)
}

// ForwardT computes [inner(x), x] in place.
func (s *SkipConcat) ForwardT(x *Tensor, train bool) *Tensor {
	s.inWidth = x.cols
	h := LayerForwardT(s.Inner, x, train)
	out := s.out.Reset(x.rows, h.cols+x.cols)
	for i := 0; i < x.rows; i++ {
		row := out.Row(i)
		copy(row[:h.cols], h.Row(i))
		copy(row[h.cols:], x.Row(i))
	}
	return out
}

// Backward splits the incoming gradient into the inner-path part and the
// skip part, and sums the two input gradients.
func (s *SkipConcat) Backward(gradOut [][]float64) [][]float64 {
	if len(gradOut) == 0 {
		return gradOut
	}
	return legacyBackward(s, &s.legacy, gradOut)
}

// BackwardT splits the incoming gradient and sums the two input gradients.
func (s *SkipConcat) BackwardT(gradOut *Tensor) *Tensor {
	hWidth := gradOut.cols - s.inWidth
	gradH := s.gradH.Reset(gradOut.rows, hWidth)
	for i := 0; i < gradOut.rows; i++ {
		copy(gradH.Row(i), gradOut.Row(i)[:hWidth])
	}
	inner := LayerBackwardT(s.Inner, gradH)
	gradIn := s.gradIn.Reset(gradOut.rows, s.inWidth)
	for i := 0; i < gradOut.rows; i++ {
		skip := gradOut.Row(i)[hWidth:]
		innerRow := inner.Row(i)
		gi := gradIn.Row(i)
		for j := 0; j < s.inWidth; j++ {
			gi[j] = innerRow[j] + skip[j]
		}
	}
	return gradIn
}

// Params returns the inner stack's parameters.
func (s *SkipConcat) Params() []*Param { return s.Inner.Params() }
