package nn

// SkipConcat wraps an inner layer stack and concatenates the stack's output
// with the original input: y = [inner(x), x]. A downstream dense layer can
// then model the direct (e.g. linear) dependence on x while the inner stack
// captures the nonlinear residual — which dramatically speeds up learning
// of near-linear reconstruction maps on a small step budget.
type SkipConcat struct {
	Inner Layer

	inWidth int
}

var _ Layer = (*SkipConcat)(nil)

// NewSkipConcat wraps the inner layer (often a *Network).
func NewSkipConcat(inner Layer) *SkipConcat {
	return &SkipConcat{Inner: inner}
}

// Forward computes [inner(x), x] row-wise.
func (s *SkipConcat) Forward(x [][]float64, train bool) [][]float64 {
	if len(x) > 0 {
		s.inWidth = len(x[0])
	}
	h := s.Inner.Forward(x, train)
	return ConcatRows(h, x)
}

// Backward splits the incoming gradient into the inner-path part and the
// skip part, and sums the two input gradients.
func (s *SkipConcat) Backward(gradOut [][]float64) [][]float64 {
	if len(gradOut) == 0 {
		return gradOut
	}
	hWidth := len(gradOut[0]) - s.inWidth
	gradH := make([][]float64, len(gradOut))
	gradSkip := make([][]float64, len(gradOut))
	for i, row := range gradOut {
		gradH[i] = row[:hWidth]
		gradSkip[i] = row[hWidth:]
	}
	gradIn := s.Inner.Backward(gradH)
	out := make([][]float64, len(gradIn))
	for i := range gradIn {
		r := make([]float64, s.inWidth)
		for j := 0; j < s.inWidth; j++ {
			r[j] = gradIn[i][j] + gradSkip[i][j]
		}
		out[i] = r
	}
	return out
}

// Params returns the inner stack's parameters.
func (s *SkipConcat) Params() []*Param { return s.Inner.Params() }
