package nn

import "math"

// Optimizer updates parameters from their accumulated gradients and clears
// the gradients afterwards.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Param][]float64
}

var _ Optimizer = (*SGD)(nil)

// NewSGD creates an SGD optimizer.
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param][]float64)}
}

// Step applies one update and zeroes gradients.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		if o.Momentum == 0 {
			for i := range p.Data {
				p.Data[i] -= o.LR * p.Grad[i]
			}
		} else {
			v, ok := o.velocity[p]
			if !ok {
				v = make([]float64, len(p.Data))
				o.velocity[p] = v
			}
			for i := range p.Data {
				v[i] = o.Momentum*v[i] - o.LR*p.Grad[i]
				p.Data[i] += v[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer with decoupled weight decay. The paper's GAN
// uses lr 2e-4 with decay 1e-6 (§V-C3).
type Adam struct {
	LR          float64
	Beta1       float64 // default 0.9
	Beta2       float64 // default 0.999
	Eps         float64 // default 1e-8
	WeightDecay float64

	t    int
	m, v map[*Param][]float64
}

var _ Optimizer = (*Adam)(nil)

// NewAdam creates an Adam optimizer with standard betas.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{
		LR:          lr,
		Beta1:       0.9,
		Beta2:       0.999,
		Eps:         1e-8,
		WeightDecay: weightDecay,
		m:           make(map[*Param][]float64),
		v:           make(map[*Param][]float64),
	}
}

// Step applies one Adam update and zeroes gradients.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.Data))
			o.m[p] = m
		}
		v, ok := o.v[p]
		if !ok {
			v = make([]float64, len(p.Data))
			o.v[p] = v
		}
		for i := range p.Data {
			g := p.Grad[i]
			if o.WeightDecay != 0 {
				g += o.WeightDecay * p.Data[i]
			}
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mHat := m[i] / bc1
			vHat := v[i] / bc2
			p.Data[i] -= o.LR * mHat / (math.Sqrt(vHat) + o.Eps)
		}
		p.ZeroGrad()
	}
}
