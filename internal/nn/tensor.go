package nn

import (
	"math/rand"

	"netdrift/internal/mat"
)

// Tensor is a flat, row-major batch of float64 rows — the storage behind the
// package's zero-allocation hot path. Layers hold Tensors as reusable
// scratch: Reset reshapes in place and only reallocates when the required
// element count exceeds the existing capacity, so steady-state training
// loops stop allocating after the first batch of each shape.
//
// A Tensor returned by a layer's ForwardT/BackwardT is that layer's scratch
// buffer: it is valid until the layer's next ForwardT/BackwardT call and
// must not be retained across it. Callers that need isolation use ToRows.
type Tensor struct {
	rows, cols int
	data       []float64
}

// NewTensor allocates a rows×cols tensor (zeroed).
func NewTensor(rows, cols int) *Tensor {
	t := &Tensor{}
	t.Reset(rows, cols)
	for i := range t.data {
		t.data[i] = 0
	}
	return t
}

// Reset reshapes the tensor to rows×cols, reusing the existing backing
// array when it is large enough. The contents after Reset are undefined
// (kernels fully overwrite their outputs); use ZeroReset for accumulators.
// It returns the tensor for call chaining.
func (t *Tensor) Reset(rows, cols int) *Tensor {
	n := rows * cols
	if cap(t.data) < n {
		t.data = make([]float64, n)
	}
	t.data = t.data[:n]
	t.rows, t.cols = rows, cols
	return t
}

// ZeroReset is Reset followed by a zero fill of the new shape.
func (t *Tensor) ZeroReset(rows, cols int) *Tensor {
	t.Reset(rows, cols)
	for i := range t.data {
		t.data[i] = 0
	}
	return t
}

// Rows returns the number of rows.
func (t *Tensor) Rows() int { return t.rows }

// Cols returns the number of columns.
func (t *Tensor) Cols() int { return t.cols }

// Data returns the backing row-major slice (length Rows·Cols).
func (t *Tensor) Data() []float64 { return t.data }

// Row returns row i as a view into the backing array.
func (t *Tensor) Row(i int) []float64 {
	return t.data[i*t.cols : (i+1)*t.cols]
}

// ViewRows points view at rows [lo, hi) of t without copying: the view
// shares t's backing array. Shard trainers use it to hand each shard its
// contiguous row range of a batch tensor with zero allocation. The view is
// valid as long as t's backing array is (Reset on t may invalidate it).
func (t *Tensor) ViewRows(lo, hi int, view *Tensor) *Tensor {
	view.rows, view.cols = hi-lo, t.cols
	view.data = t.data[lo*t.cols : hi*t.cols]
	return view
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.data[i*t.cols+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.data[i*t.cols+j] = v }

// SetFromRows reshapes the tensor to match x and copies x into it. Ragged
// input keeps the first row's width (rows are assumed equal-length, the
// package-wide batch contract).
func (t *Tensor) SetFromRows(x [][]float64) *Tensor {
	if len(x) == 0 {
		return t.Reset(0, 0)
	}
	t.Reset(len(x), len(x[0]))
	for i, row := range x {
		copy(t.Row(i), row)
	}
	return t
}

// ToRows copies the tensor into a fresh [][]float64 whose rows share one
// newly allocated backing array — the slice-of-slices adapter's output
// format. The result does not alias the tensor.
func (t *Tensor) ToRows() [][]float64 {
	out := make([][]float64, t.rows)
	if t.rows == 0 {
		return out
	}
	flat := make([]float64, len(t.data))
	copy(flat, t.data)
	for i := range out {
		out[i] = flat[i*t.cols : (i+1)*t.cols]
	}
	return out
}

// Mat wraps the tensor's storage as a mat.Matrix view (no copy). The matrix
// aliases the tensor and is invalidated by the next Reset that grows it.
func (t *Tensor) Mat() (*mat.Matrix, error) {
	return mat.Wrap(t.rows, t.cols, t.data)
}

// ConcatInto writes the row-wise concatenation [parts[0] | parts[1] | ...]
// into dst and returns dst. All parts must have the same number of rows.
func ConcatInto(dst *Tensor, parts ...*Tensor) *Tensor {
	if len(parts) == 0 {
		return dst.Reset(0, 0)
	}
	rows := parts[0].rows
	width := 0
	for _, p := range parts {
		width += p.cols
	}
	dst.Reset(rows, width)
	for i := 0; i < rows; i++ {
		row := dst.Row(i)
		off := 0
		for _, p := range parts {
			copy(row[off:off+p.cols], p.Row(i))
			off += p.cols
		}
	}
	return dst
}

// GatherInto copies the given rows of x into dst (dst is reshaped to
// len(idx)×len(x[0])) and returns dst. Unlike Gather the rows are copied,
// not shared, so dst is a self-contained batch.
func GatherInto(dst *Tensor, x [][]float64, idx []int) *Tensor {
	if len(idx) == 0 || len(x) == 0 {
		return dst.Reset(0, 0)
	}
	dst.Reset(len(idx), len(x[0]))
	for i, j := range idx {
		copy(dst.Row(i), x[j])
	}
	return dst
}

// permInto writes a pseudo-random permutation of [0, n) into buf, consuming
// exactly the same rng draws — and producing exactly the same permutation —
// as rng.Perm(n) (pinned by TestPermIntoMatchesPerm). Reusing buf keeps the
// per-epoch shuffle allocation-free.
func permInto(rng *rand.Rand, n int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	// Mirrors rand.Perm exactly, including the i == 0 iteration whose
	// Intn(1) draw advances the rng state.
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		buf[i] = buf[j]
		buf[j] = i
	}
	return buf
}

// MinibatchesInto is Minibatches with caller-owned storage: the permutation
// is written into perm and the batch index slices (views into perm) into
// batches, both grown only when needed. It consumes the same rng draws and
// yields the same batches as Minibatches. Returns the (possibly regrown)
// perm and batches for the caller to retain.
func MinibatchesInto(n, batchSize int, rng *rand.Rand, perm []int, batches [][]int) ([]int, [][]int) {
	if batchSize <= 0 {
		batchSize = n
	}
	perm = permInto(rng, n, perm)
	batches = batches[:0]
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		batches = append(batches, perm[start:end])
	}
	// Merge a final singleton into the previous batch: the batches are
	// contiguous views into perm, so extending the penultimate view covers
	// the singleton.
	if len(batches) > 1 && len(batches[len(batches)-1]) == 1 {
		prev := batches[len(batches)-2]
		batches[len(batches)-2] = perm[n-len(prev)-1 : n]
		batches = batches[:len(batches)-1]
	}
	return perm, batches
}
