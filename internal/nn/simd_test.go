package nn

import (
	"math"
	"math/rand"
	"testing"
)

// kernelSizes covers every 4-wide tail length (0..9) plus larger bodies so
// both the vector loop and the scalar tail of each asm routine execute.
var kernelSizes = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 31, 64, 129}

// kernelInput fills a slice with values that exercise the bit-level corner
// cases the kernels must preserve: negative zero, NaN, denormal-ish smalls,
// and ordinary positives/negatives.
func kernelInput(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		switch i % 7 {
		case 0:
			out[i] = math.Copysign(0, -1) // -0.0
		case 1:
			out[i] = 0
		case 2:
			out[i] = math.NaN()
		default:
			out[i] = (rng.Float64() - 0.5) * 200
		}
	}
	return out
}

// positiveInput is for divisors/std slices that must stay away from zero.
func positiveInput(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 0.5 + rng.Float64()
	}
	return out
}

func bitsEqual(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: index %d: got %x (%v), want %x (%v)",
				name, i, math.Float64bits(got[i]), got[i],
				math.Float64bits(want[i]), want[i])
		}
	}
}

func bitEqualScalar(t *testing.T, name string, n int, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: n=%d: got %x (%v), want %x (%v)",
			name, n, math.Float64bits(got), got, math.Float64bits(want), want)
	}
}

// TestVectorKernelsGolden pins every dispatched kernel bitwise against its
// portable Go twin across sizes covering all tail lengths and corner values
// (-0.0, NaN, exact zeros). On hardware without AVX both sides run the same
// Go code and the test degenerates to a self-check.
func TestVectorKernelsGolden(t *testing.T) {
	if !SetVectorKernels(true) && !SetVectorKernels(true) {
		t.Log("AVX unavailable; golden test runs scalar-vs-scalar")
	}
	defer SetVectorKernels(true)
	rng := rand.New(rand.NewSource(42))

	for _, n := range kernelSizes {
		x := kernelInput(rng, n)
		y := kernelInput(rng, n)
		z := kernelInput(rng, n)
		pos := positiveInput(rng, n)
		nf := float64(max(n, 1))

		// vadd
		a, b := append([]float64(nil), x...), append([]float64(nil), x...)
		vadd(a, y)
		vaddGo(b, y)
		bitsEqual(t, "vadd", a, b)

		// vmulAdd
		a, b = append([]float64(nil), x...), append([]float64(nil), x...)
		vmulAdd(a, y, z)
		vmulAddGo(b, y, z)
		bitsEqual(t, "vmulAdd", a, b)

		// vsqDiffAdd
		a, b = append([]float64(nil), x...), append([]float64(nil), x...)
		vsqDiffAdd(a, y, z)
		vsqDiffAddGo(b, y, z)
		bitsEqual(t, "vsqDiffAdd", a, b)

		// vdivs
		a, b = append([]float64(nil), x...), append([]float64(nil), x...)
		vdivs(a, 3.7)
		vdivsGo(b, 3.7)
		bitsEqual(t, "vdivs", a, b)

		// vbnNorm
		a, b = make([]float64, n), make([]float64, n)
		vbnNorm(a, x, y, pos)
		vbnNormGo(b, x, y, pos)
		bitsEqual(t, "vbnNorm", a, b)

		// vbnAffine
		vbnAffine(a, x, y, z)
		vbnAffineGo(b, x, y, z)
		bitsEqual(t, "vbnAffine", a, b)

		// vbnBack
		vbnBack(a, x, y, pos, z, x, nf)
		vbnBackGo(b, x, y, pos, z, x, nf)
		bitsEqual(t, "vbnBack", a, b)

		// vreluFwd — must keep -0.0 and NaN as-is and zero only true negatives.
		vreluFwd(a, x)
		vreluFwdGo(b, x)
		bitsEqual(t, "vreluFwd", a, b)
		for i, v := range x {
			if v < 0 && a[i] != 0 {
				t.Fatalf("vreluFwd: negative input %v survived as %v", v, a[i])
			}
		}

		// vlreluFwd
		vlreluFwd(a, x, 0.2)
		vlreluFwdGo(b, x, 0.2)
		bitsEqual(t, "vlreluFwd", a, b)

		// vscale — -0.0 products (s=0 on negatives) must round-trip exactly.
		vscale(a, x, -1.5)
		vscaleGo(b, x, -1.5)
		bitsEqual(t, "vscale", a, b)

		// vlreluBwd at the LeakyReLU slope and at alpha=0 (the ReLU backward).
		for _, alpha := range []float64{0.2, 0} {
			vlreluBwd(a, y, x, alpha)
			vlreluBwdGo(b, y, x, alpha)
			bitsEqual(t, "vlreluBwd", a, b)
		}

		// Reductions: NaN-free inputs so a single bit pattern is well-defined,
		// but keep -0.0 and zeros in play.
		xr := make([]float64, n)
		yr := make([]float64, n)
		for i := range xr {
			xr[i] = (rng.Float64() - 0.5) * 8
			yr[i] = (rng.Float64() - 0.5) * 8
			if i%5 == 0 {
				xr[i] = math.Copysign(0, -1)
			}
		}
		bitEqualScalar(t, "vdot", n, vdot(xr, yr), vdotGo(xr, yr))
		bitEqualScalar(t, "vsum", n, vsum(xr), vsumGo(xr))

		ga, gb := make([]float64, n), make([]float64, n)
		la := vmse(ga, xr, yr)
		lb := vmseGo(gb, xr, yr)
		bitsEqual(t, "vmse grad", ga, gb)
		bitEqualScalar(t, "vmse loss", n, la, lb)
	}
}

// TestSetVectorKernelsToggle checks the toggle round-trips and that the axpy
// fast path follows it: with kernels off, axpy1 must match axpy1Go exactly
// (trivially true — it IS axpy1Go then) and flipping back on must restore
// the prior state's report.
func TestSetVectorKernelsToggle(t *testing.T) {
	initial := SetVectorKernels(true) // capture whether AVX binds at all
	defer SetVectorKernels(initial)

	prev := SetVectorKernels(false)
	if prev != initial {
		t.Fatalf("SetVectorKernels(false) reported prev=%v, want %v", prev, initial)
	}
	if SetVectorKernels(false) {
		t.Fatal("kernels report active immediately after disabling")
	}

	// Scalar-bound axpy and kernels still produce the contract results.
	rng := rand.New(rand.NewSource(7))
	w := positiveInput(rng, 37)
	o1 := make([]float64, 37)
	o2 := make([]float64, 37)
	axpy1(1.5, w, o1)
	axpy1Go(1.5, w, o2)
	bitsEqual(t, "axpy1 scalar-bound", o1, o2)

	on := SetVectorKernels(true)
	if on {
		t.Fatal("SetVectorKernels(true) reported prev=true after disable")
	}
	for i := range o1 {
		o1[i] = 0
	}
	axpy1(1.5, w, o1)
	bitsEqual(t, "axpy1 after re-enable", o1, o2)
}
