// Package nn implements feed-forward neural networks with hand-derived
// backpropagation: dense layers, batch normalization, dropout, a gradient
// reversal layer (for adversarial domain adaptation), classification and
// reconstruction losses, and SGD/Adam optimizers. It is the substrate for
// the paper's conditional GAN, the TNet/MLP classifiers, the VAE/AE
// ablation reconstructors, and the DANN/SCL/MatchNet/ProtoNet baselines.
//
// Everything is deterministic given the seeds supplied at construction; no
// package-level mutable state exists.
package nn

// Param is a flat learnable tensor with its accumulated gradient.
type Param struct {
	Name string
	Data []float64
	Grad []float64
}

// NewParam allocates a named parameter of the given size.
func NewParam(name string, size int) *Param {
	return &Param{
		Name: name,
		Data: make([]float64, size),
		Grad: make([]float64, size),
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// ZeroGrads clears the gradients of all given parameters.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}
