package nn

import (
	"math/rand"
)

// Network is an ordered stack of layers trained end-to-end.
type Network struct {
	Layers []Layer

	legacy legacyIO
}

var _ TensorLayer = (*Network)(nil)

// NewNetwork stacks the given layers.
func NewNetwork(layers ...Layer) *Network {
	return &Network{Layers: layers}
}

// Forward runs the batch through all layers.
func (n *Network) Forward(x [][]float64, train bool) [][]float64 {
	if len(n.Layers) == 0 || len(x) == 0 {
		return x
	}
	return legacyForward(n, &n.legacy, x, train)
}

// ForwardT runs the batch through all layers on the flat path. The result
// is the last layer's scratch buffer, valid until that layer's next call.
func (n *Network) ForwardT(x *Tensor, train bool) *Tensor {
	for _, l := range n.Layers {
		x = LayerForwardT(l, x, train)
	}
	return x
}

// Backward runs the gradient back through all layers and returns the
// gradient w.r.t. the network input.
func (n *Network) Backward(gradOut [][]float64) [][]float64 {
	if len(n.Layers) == 0 || len(gradOut) == 0 {
		return gradOut
	}
	return legacyBackward(n, &n.legacy, gradOut)
}

// BackwardT runs the gradient back through all layers on the flat path.
func (n *Network) BackwardT(gradOut *Tensor) *Tensor {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		gradOut = LayerBackwardT(n.Layers[i], gradOut)
	}
	return gradOut
}

// Params returns all learnable parameters in layer order.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// MLPConfig describes a standard multilayer perceptron.
type MLPConfig struct {
	In         int
	Hidden     []int
	Out        int
	Activation func() Layer // default NewReLU
	Dropout    float64      // applied after each hidden activation
	BatchNorm  bool         // applied before each hidden activation
	Rng        *rand.Rand
}

// NewMLP builds a dense feed-forward network from the config.
func NewMLP(cfg MLPConfig) *Network {
	if cfg.Activation == nil {
		cfg.Activation = NewReLU
	}
	var layers []Layer
	in := cfg.In
	for _, h := range cfg.Hidden {
		layers = append(layers, NewDense(in, h, cfg.Rng))
		if cfg.BatchNorm {
			layers = append(layers, NewBatchNorm(h))
		}
		layers = append(layers, cfg.Activation())
		if cfg.Dropout > 0 {
			layers = append(layers, NewDropout(cfg.Dropout, cfg.Rng))
		}
		in = h
	}
	layers = append(layers, NewDense(in, cfg.Out, cfg.Rng))
	return NewNetwork(layers...)
}

// Minibatches yields index batches of the given size in shuffled order.
// The final short batch is included when it has at least two samples
// (single-sample batches break batch statistics); a final singleton is
// merged into the previous batch. MinibatchesInto (tensor.go) is the
// allocation-free variant for training loops.
func Minibatches(n, batchSize int, rng *rand.Rand) [][]int {
	if batchSize <= 0 {
		batchSize = n
	}
	perm := rng.Perm(n)
	var out [][]int
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		out = append(out, perm[start:end])
	}
	if len(out) > 1 && len(out[len(out)-1]) == 1 {
		last := out[len(out)-1]
		out[len(out)-2] = append(out[len(out)-2], last...)
		out = out[:len(out)-1]
	}
	return out
}

// Gather selects the given rows of x into a new batch (rows are shared, not
// copied — layers do not mutate their inputs). GatherInto (tensor.go) is
// the allocation-free tensor variant.
func Gather(x [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for i, j := range idx {
		out[i] = x[j]
	}
	return out
}

// GatherLabels selects the given label rows.
func GatherLabels(y []int, idx []int) []int {
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = y[j]
	}
	return out
}

// ConcatRows horizontally concatenates the rows of the given batches
// (all must have the same number of rows).
func ConcatRows(batches ...[][]float64) [][]float64 {
	if len(batches) == 0 {
		return nil
	}
	n := len(batches[0])
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		var width int
		for _, b := range batches {
			width += len(b[i])
		}
		row := make([]float64, 0, width)
		for _, b := range batches {
			row = append(row, b[i]...)
		}
		out[i] = row
	}
	return out
}

// SplitCols splits each row of x into consecutive column groups of the
// given widths.
func SplitCols(x [][]float64, widths ...int) [][][]float64 {
	out := make([][][]float64, len(widths))
	for g := range out {
		out[g] = make([][]float64, len(x))
	}
	for i, row := range x {
		off := 0
		for g, w := range widths {
			out[g][i] = row[off : off+w]
			off += w
		}
	}
	return out
}
