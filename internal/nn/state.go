package nn

import (
	"errors"
	"fmt"
)

// Container is implemented by layers that wrap other layers (Network,
// SkipConcat); it lets state walkers reach nested layers.
type Container interface {
	Sublayers() []Layer
}

// Sublayers implements Container.
func (n *Network) Sublayers() []Layer { return n.Layers }

// Sublayers implements Container.
func (s *SkipConcat) Sublayers() []Layer { return []Layer{s.Inner} }

// Stateful is implemented by layers carrying non-parameter state that must
// survive serialization (e.g. batch-norm running statistics).
type Stateful interface {
	// ExtraState returns the layer's non-parameter state slices.
	ExtraState() [][]float64
	// SetExtraState restores state captured by ExtraState.
	SetExtraState(state [][]float64) error
}

// ExtraState implements Stateful: running mean and variance.
func (bn *BatchNorm) ExtraState() [][]float64 {
	return [][]float64{
		append([]float64(nil), bn.runningMean...),
		append([]float64(nil), bn.runningVar...),
	}
}

// SetExtraState implements Stateful.
func (bn *BatchNorm) SetExtraState(state [][]float64) error {
	if len(state) != 2 || len(state[0]) != bn.Dim || len(state[1]) != bn.Dim {
		return fmt.Errorf("nn: batchnorm state shape mismatch (dim %d)", bn.Dim)
	}
	copy(bn.runningMean, state[0])
	copy(bn.runningVar, state[1])
	return nil
}

// walkLayers visits every layer depth-first in deterministic order.
func walkLayers(l Layer, visit func(Layer)) {
	visit(l)
	if c, ok := l.(Container); ok {
		for _, sub := range c.Sublayers() {
			walkLayers(sub, visit)
		}
	}
}

// Snapshot captures every parameter and every piece of stateful layer
// state, positionally. It is only valid for restoring into an identically
// constructed network.
type Snapshot struct {
	Params [][]float64   `json:"params"`
	Extra  [][][]float64 `json:"extra"`
}

// TakeSnapshot captures the trainable and stateful state of a layer tree.
func TakeSnapshot(root Layer) *Snapshot {
	snap := &Snapshot{}
	for _, p := range root.Params() {
		snap.Params = append(snap.Params, append([]float64(nil), p.Data...))
	}
	walkLayers(root, func(l Layer) {
		if s, ok := l.(Stateful); ok {
			snap.Extra = append(snap.Extra, s.ExtraState())
		}
	})
	return snap
}

// ErrSnapshotMismatch is returned when a snapshot does not fit the network
// it is being restored into.
var ErrSnapshotMismatch = errors.New("nn: snapshot does not match network structure")

// RestoreSnapshot loads state captured by TakeSnapshot into an identically
// constructed layer tree.
func RestoreSnapshot(root Layer, snap *Snapshot) error {
	params := root.Params()
	if len(params) != len(snap.Params) {
		return fmt.Errorf("%w: %d params, snapshot has %d", ErrSnapshotMismatch, len(params), len(snap.Params))
	}
	for i, p := range params {
		if len(p.Data) != len(snap.Params[i]) {
			return fmt.Errorf("%w: param %d size %d, snapshot %d",
				ErrSnapshotMismatch, i, len(p.Data), len(snap.Params[i]))
		}
	}
	var stateful []Stateful
	walkLayers(root, func(l Layer) {
		if s, ok := l.(Stateful); ok {
			stateful = append(stateful, s)
		}
	})
	if len(stateful) != len(snap.Extra) {
		return fmt.Errorf("%w: %d stateful layers, snapshot has %d",
			ErrSnapshotMismatch, len(stateful), len(snap.Extra))
	}
	for i, p := range params {
		copy(p.Data, snap.Params[i])
	}
	for i, s := range stateful {
		if err := s.SetExtraState(snap.Extra[i]); err != nil {
			return fmt.Errorf("%w: stateful layer %d: %v", ErrSnapshotMismatch, i, err)
		}
	}
	return nil
}
