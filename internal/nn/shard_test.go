package nn

import (
	"math"
	"math/rand"
	"testing"

	"netdrift/internal/par"
)

// shardTestNet builds a small net exercising every replicable layer type.
func shardTestNet(rng *rand.Rand) *Network {
	return NewNetwork(
		NewSkipConcat(NewNetwork(
			NewDense(6, 8, rng),
			NewBatchNorm(8),
			NewReLU(),
		)),
		NewDense(14, 4, rng),
		NewLeakyReLU(0.2),
		NewDropout(0.3, rng),
		NewDense(4, 1, rng),
		NewTanh(),
	)
}

// runShardStep runs one full sharded forward/backward over x with the given
// shard bounds and worker count, reduces, folds, and returns the canonical
// gradient bits.
func runShardStep(sn *ShardedNet, x *Tensor, bounds []int, workers int) [][]uint64 {
	shards := len(bounds) - 1
	views := make([]Tensor, shards)
	grads := make([]Tensor, shards)
	par.ForEach(workers, shards, func(s int) {
		sn.SeedDropouts(s, mixSeed(99, s))
		view := x.ViewRows(bounds[s], bounds[s+1], &views[s])
		out := LayerForwardT(sn.Net(s), view, true)
		g := grads[s].Reset(out.Rows(), out.Cols())
		for i := range g.data {
			g.data[i] = 0.01 * float64(i%17)
		}
		LayerBackwardT(sn.Net(s), g)
	})
	sn.ReduceGrads(workers)
	sn.FoldBatchStats()
	var bits [][]uint64
	for _, p := range sn.Params(0) {
		row := make([]uint64, len(p.Grad))
		for i, v := range p.Grad {
			row[i] = math.Float64bits(v)
		}
		bits = append(bits, row)
	}
	return bits
}

// TestShardedNetWorkerInvariance pins the tentpole property at the nn
// level: the merged gradient, and the canonical running statistics, are
// bit-identical for every worker count at a fixed shard count.
func TestShardedNetWorkerInvariance(t *testing.T) {
	const shards = 4
	x := NewTensor(16, 6)
	rng := rand.New(rand.NewSource(3))
	for i := range x.data {
		x.data[i] = rng.NormFloat64()
	}
	bounds := par.ShardBounds(nil, x.Rows(), shards, 2)

	var wantGrads [][]uint64
	var wantStats []float64
	for _, workers := range []int{1, 2, 3, 7} {
		net := shardTestNet(rand.New(rand.NewSource(11)))
		sn := NewSharded(net, shards)
		got := runShardStep(sn, x, bounds, workers)
		var stats []float64
		walkLayers(net, func(l Layer) {
			if bn, ok := l.(*BatchNorm); ok {
				stats = append(stats, bn.runningMean...)
				stats = append(stats, bn.runningVar...)
			}
		})
		if workers == 1 {
			wantGrads, wantStats = got, stats
			continue
		}
		for p := range wantGrads {
			for i := range wantGrads[p] {
				if got[p][i] != wantGrads[p][i] {
					t.Fatalf("workers=%d: param %d grad[%d] differs", workers, p, i)
				}
			}
		}
		for i := range wantStats {
			if math.Float64bits(stats[i]) != math.Float64bits(wantStats[i]) {
				t.Fatalf("workers=%d: running stat %d differs", workers, i)
			}
		}
	}
}

// TestShardedNetParamSharing checks the replica scheme: replica 0 holds the
// canonical *Param objects; higher replicas share Data but own their Grad.
func TestShardedNetParamSharing(t *testing.T) {
	net := shardTestNet(rand.New(rand.NewSource(5)))
	sn := NewSharded(net, 3)
	canon := net.Params()
	p0 := sn.Params(0)
	if len(p0) != len(canon) {
		t.Fatalf("replica 0 has %d params, canonical %d", len(p0), len(canon))
	}
	for i := range canon {
		if p0[i] != canon[i] {
			t.Fatalf("replica 0 param %d is not the canonical object", i)
		}
	}
	for r := 1; r < 3; r++ {
		pr := sn.Params(r)
		for i := range canon {
			if pr[i] == canon[i] {
				t.Fatalf("replica %d param %d aliases the canonical object", r, i)
			}
			if &pr[i].Data[0] != &canon[i].Data[0] {
				t.Fatalf("replica %d param %d does not share Data", r, i)
			}
			if &pr[i].Grad[0] == &canon[i].Grad[0] {
				t.Fatalf("replica %d param %d shares the canonical Grad arena", r, i)
			}
		}
	}
}

// TestShardedNetReduceZeroesSources checks the arena invariant ReduceGrads
// maintains: after a reduce, every non-canonical arena is all zero.
func TestShardedNetReduceZeroesSources(t *testing.T) {
	net := shardTestNet(rand.New(rand.NewSource(7)))
	sn := NewSharded(net, 4)
	for r := 0; r < 4; r++ {
		for _, p := range sn.Params(r) {
			for i := range p.Grad {
				p.Grad[i] = float64(r + 1)
			}
		}
	}
	sn.ReduceGrads(2)
	for _, p := range sn.Params(0) {
		for i, v := range p.Grad {
			if v != 1+2+3+4 {
				t.Fatalf("canonical grad[%d] = %v, want 10", i, v)
			}
		}
	}
	for r := 1; r < 4; r++ {
		for _, p := range sn.Params(r) {
			for i, v := range p.Grad {
				if v != 0 {
					t.Fatalf("replica %d grad[%d] = %v after reduce, want 0", r, i, v)
				}
			}
		}
	}
}

// TestShardedNetReduceAllocs pins the steady-state allocation budget of the
// merge: sequential reduction allocates nothing.
func TestShardedNetReduceAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	net := shardTestNet(rand.New(rand.NewSource(9)))
	sn := NewSharded(net, 4)
	if avg := testing.AllocsPerRun(50, func() { sn.ReduceGrads(1) }); avg > 0 {
		t.Errorf("sequential ReduceGrads allocates %.2f/op, want 0", avg)
	}
}

// TestShardedNetUnsupportedLayerPanics pins the explicit failure mode for
// custom layers.
func TestShardedNetUnsupportedLayerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSharded accepted an unreplicable layer")
		}
	}()
	NewSharded(&fakeLayer{}, 2)
}

type fakeLayer struct{}

func (f *fakeLayer) Forward(x [][]float64, train bool) [][]float64 { return x }
func (f *fakeLayer) Backward(g [][]float64) [][]float64            { return g }
func (f *fakeLayer) Params() []*Param                              { return nil }
