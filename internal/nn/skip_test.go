package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestSkipConcatForwardShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inner := NewNetwork(NewDense(3, 5, rng), NewTanh())
	skip := NewSkipConcat(inner)
	x := randBatch(rng, 4, 3)
	out := skip.Forward(x, true)
	if len(out) != 4 || len(out[0]) != 8 {
		t.Fatalf("output shape = %dx%d; want 4x8", len(out), len(out[0]))
	}
	// The skip half must equal the input exactly.
	for i := range x {
		for j := range x[i] {
			if out[i][5+j] != x[i][j] {
				t.Fatal("skip half does not match input")
			}
		}
	}
}

func TestSkipConcatGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	inner := NewNetwork(NewDense(3, 4, rng), NewTanh())
	net := NewNetwork(
		NewSkipConcat(inner),
		NewDense(7, 2, rng),
	)
	x := randBatch(rng, 3, 3)
	y := []int{0, 1, 0}
	lossFn := func() float64 {
		out := net.Forward(x, true)
		l, _, _ := SoftmaxCE(out, y)
		return l
	}
	analytic := func() {
		out := net.Forward(x, true)
		_, g, _ := SoftmaxCE(out, y)
		net.Backward(g)
	}
	checkParamGrads(t, net.Params(), lossFn, analytic, 1e-6)
}

func TestSkipConcatInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inner := NewNetwork(NewDense(2, 3, rng), NewTanh())
	net := NewNetwork(NewSkipConcat(inner), NewDense(5, 1, rng))
	x := randBatch(rng, 2, 2)
	targets := []float64{1, 0}
	out := net.Forward(x, true)
	_, g, _ := BCEWithLogits(out, targets)
	gin := net.Backward(g)
	const h = 1e-5
	for i := range x {
		for j := range x[i] {
			orig := x[i][j]
			x[i][j] = orig + h
			lp, _, _ := BCEWithLogits(net.Forward(x, true), targets)
			x[i][j] = orig - h
			lm, _, _ := BCEWithLogits(net.Forward(x, true), targets)
			x[i][j] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(gin[i][j]-want) > 1e-6*(1+math.Abs(want)) {
				t.Errorf("input grad[%d][%d] = %v; numerical %v", i, j, gin[i][j], want)
			}
		}
	}
}

func TestSkipConcatParams(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	inner := NewNetwork(NewDense(2, 3, rng))
	skip := NewSkipConcat(inner)
	if got, want := len(skip.Params()), len(inner.Params()); got != want {
		t.Errorf("Params() = %d; want %d (inner's)", got, want)
	}
}
