package nn

import (
	"errors"
	"math/rand"
	"testing"
)

func buildStatefulNet(seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	return NewNetwork(
		NewSkipConcat(NewNetwork(
			NewDense(3, 4, rng),
			NewBatchNorm(4),
			NewReLU(),
		)),
		NewDense(7, 2, rng),
	)
}

func TestSnapshotRoundTrip(t *testing.T) {
	net := buildStatefulNet(1)
	// Train a little so batch-norm running stats and weights diverge from
	// initialization.
	rng := rand.New(rand.NewSource(2))
	x := randBatch(rng, 32, 3)
	y := make([]int, 32)
	for i := range y {
		if x[i][0] > 0 {
			y[i] = 1
		}
	}
	opt := NewAdam(1e-2, 0)
	for e := 0; e < 10; e++ {
		out := net.Forward(x, true)
		_, g, _ := SoftmaxCE(out, y)
		net.Backward(g)
		opt.Step(net.Params())
	}
	want := net.Forward(x, false)

	snap := TakeSnapshot(net)
	fresh := buildStatefulNet(99) // different init, same architecture
	if err := RestoreSnapshot(fresh, snap); err != nil {
		t.Fatal(err)
	}
	got := fresh.Forward(x, false)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("restored output differs at [%d][%d]: %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	net := buildStatefulNet(3)
	snap := TakeSnapshot(net)
	// Mutate the network after snapshotting.
	net.Params()[0].Data[0] += 100
	if snap.Params[0][0] == net.Params()[0].Data[0] {
		t.Error("snapshot must copy parameter data")
	}
}

func TestRestoreSnapshotMismatch(t *testing.T) {
	net := buildStatefulNet(4)
	snap := TakeSnapshot(net)

	rng := rand.New(rand.NewSource(5))
	other := NewNetwork(NewDense(3, 2, rng))
	if err := RestoreSnapshot(other, snap); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("err = %v; want ErrSnapshotMismatch", err)
	}

	// Same param count but wrong stateful-layer count.
	snap2 := TakeSnapshot(net)
	snap2.Extra = nil
	if err := RestoreSnapshot(net, snap2); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("err = %v; want ErrSnapshotMismatch", err)
	}
}

func TestBatchNormExtraState(t *testing.T) {
	bn := NewBatchNorm(2)
	bn.Forward([][]float64{{4, -2}, {6, -4}, {5, -3}}, true)
	state := bn.ExtraState()
	if len(state) != 2 || len(state[0]) != 2 {
		t.Fatalf("state shape wrong: %v", state)
	}
	fresh := NewBatchNorm(2)
	if err := fresh.SetExtraState(state); err != nil {
		t.Fatal(err)
	}
	out1 := bn.Forward([][]float64{{5, -3}}, false)
	out2 := fresh.Forward([][]float64{{5, -3}}, false)
	// Gamma/beta are parameters (identical defaults), running stats now
	// match, so inference outputs must agree.
	if out1[0][0] != out2[0][0] || out1[0][1] != out2[0][1] {
		t.Errorf("outputs differ after state restore: %v vs %v", out1[0], out2[0])
	}
	if err := fresh.SetExtraState([][]float64{{1}}); err == nil {
		t.Error("expected shape error")
	}
}
