package nn

import (
	"fmt"
	"math"
)

// BatchNorm normalizes each feature over the batch during training and uses
// running statistics at inference. Gamma/beta are learnable. The paper's
// CTGAN-style generator uses batch normalization in its hidden layers
// (§V-C3).
type BatchNorm struct {
	Dim      int
	Momentum float64 // running-stat update rate (default 0.1)
	Eps      float64

	gamma, beta             *Param
	runningMean, runningVar []float64

	// deferStats suppresses the running-stat update in training forwards.
	// Shard replicas run with it set (ghost batch norm): each shard
	// normalizes with its own batch statistics, and the trainer folds the
	// pending statistics into the canonical layer afterwards, in shard
	// order, via FoldStatsInto — so running stats are identical at every
	// worker count.
	deferStats   bool
	statsPending bool

	// forward caches and scratch (reused across batches)
	trainPass  bool // last forward used batch statistics
	xHat       Tensor
	mean, vari []float64
	std        []float64
	batchLen   int
	out        Tensor
	gradIn     Tensor
	sumG       []float64
	sumGX      []float64
	coef       []float64
	legacy     legacyIO
}

var _ TensorLayer = (*BatchNorm)(nil)

// NewBatchNorm creates a batch-normalization layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	if dim <= 0 {
		panic(fmt.Sprintf("nn: invalid batchnorm dim %d", dim))
	}
	bn := &BatchNorm{
		Dim:         dim,
		Momentum:    0.1,
		Eps:         1e-5,
		gamma:       NewParam(fmt.Sprintf("bn%d.gamma", dim), dim),
		beta:        NewParam(fmt.Sprintf("bn%d.beta", dim), dim),
		runningMean: make([]float64, dim),
		runningVar:  make([]float64, dim),
		mean:        make([]float64, dim),
		vari:        make([]float64, dim),
		std:         make([]float64, dim),
		sumG:        make([]float64, dim),
		sumGX:       make([]float64, dim),
		coef:        make([]float64, dim),
	}
	for i := range bn.gamma.Data {
		bn.gamma.Data[i] = 1
		bn.runningVar[i] = 1
	}
	return bn
}

// Forward normalizes the batch (training) or applies running stats
// (inference).
func (bn *BatchNorm) Forward(x [][]float64, train bool) [][]float64 {
	return legacyForward(bn, &bn.legacy, x, train)
}

// ForwardT normalizes the batch in place.
func (bn *BatchNorm) ForwardT(x *Tensor, train bool) *Tensor {
	n := x.rows
	out := bn.out.Reset(n, bn.Dim)
	if !train || n == 1 {
		// Inference path (also used for degenerate single-sample batches).
		bn.trainPass = false
		for i := 0; i < n; i++ {
			row := x.Row(i)
			o := out.Row(i)
			for j, v := range row {
				xh := (v - bn.runningMean[j]) / math.Sqrt(bn.runningVar[j]+bn.Eps)
				o[j] = bn.gamma.Data[j]*xh + bn.beta.Data[j]
			}
		}
		return out
	}

	mean := bn.mean
	for j := range mean {
		mean[j] = 0
	}
	for i := 0; i < n; i++ {
		vadd(mean, x.Row(i))
	}
	vdivs(mean, float64(n))
	variance := bn.vari
	for j := range variance {
		variance[j] = 0
	}
	for i := 0; i < n; i++ {
		vsqDiffAdd(variance, x.Row(i), mean)
	}
	vdivs(variance, float64(n))

	for j := range bn.std {
		bn.std[j] = math.Sqrt(variance[j] + bn.Eps)
	}
	xHat := bn.xHat.Reset(n, bn.Dim)
	bn.trainPass = true
	bn.batchLen = n
	for i := 0; i < n; i++ {
		xh := xHat.Row(i)
		vbnNorm(xh, x.Row(i), mean, bn.std)
		vbnAffine(out.Row(i), xh, bn.gamma.Data, bn.beta.Data)
	}
	if bn.deferStats {
		bn.statsPending = true
	} else {
		bn.applyStats(mean, variance)
	}
	return out
}

// applyStats performs the exponential running-stat update from one batch's
// mean/variance.
func (bn *BatchNorm) applyStats(mean, variance []float64) {
	for j := range mean {
		bn.runningMean[j] = (1-bn.Momentum)*bn.runningMean[j] + bn.Momentum*mean[j]
		bn.runningVar[j] = (1-bn.Momentum)*bn.runningVar[j] + bn.Momentum*variance[j]
	}
}

// FoldStatsInto applies the receiver's pending batch statistics (stashed by
// a deferStats training forward) to dst's running statistics and clears the
// pending flag. The trainer calls this once per shard in shard-index order
// after every parallel section, making the canonical running stats a pure
// function of the shard shape. No-op when nothing is pending.
func (bn *BatchNorm) FoldStatsInto(dst *BatchNorm) {
	if !bn.statsPending {
		return
	}
	bn.statsPending = false
	dst.applyStats(bn.mean, bn.vari)
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm) Backward(gradOut [][]float64) [][]float64 {
	return legacyBackward(bn, &bn.legacy, gradOut)
}

// BackwardT implements the standard batch-norm gradient in place.
func (bn *BatchNorm) BackwardT(gradOut *Tensor) *Tensor {
	gradIn := bn.gradIn.Reset(gradOut.rows, bn.Dim)
	if !bn.trainPass {
		// Inference-mode backward (running stats treated as constants).
		for i := 0; i < gradOut.rows; i++ {
			gRow := gradOut.Row(i)
			gi := gradIn.Row(i)
			for j, g := range gRow {
				gi[j] = g * bn.gamma.Data[j] / math.Sqrt(bn.runningVar[j]+bn.Eps)
			}
		}
		return gradIn
	}
	n := float64(bn.batchLen)
	sumG := bn.sumG   // Σ dL/dy
	sumGX := bn.sumGX // Σ dL/dy · x̂
	for j := range sumG {
		sumG[j] = 0
		sumGX[j] = 0
	}
	for i := 0; i < gradOut.rows; i++ {
		gRow := gradOut.Row(i)
		xh := bn.xHat.Row(i)
		vadd(sumG, gRow)
		vmulAdd(sumGX, gRow, xh)
		vadd(bn.beta.Grad, gRow)
		vmulAdd(bn.gamma.Grad, gRow, xh)
	}
	// gamma/(n*std) hoisted once per batch: the historical per-row
	// expression parsed as (gamma/(n*std)) * (...), so the hoist reuses the
	// exact same operations and bits.
	for j := range bn.coef {
		bn.coef[j] = bn.gamma.Data[j] / (n * bn.std[j])
	}
	for i := 0; i < gradOut.rows; i++ {
		vbnBack(gradIn.Row(i), gradOut.Row(i), bn.xHat.Row(i),
			bn.coef, sumG, sumGX, n)
	}
	return gradIn
}

// Params returns gamma and beta.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.gamma, bn.beta} }
