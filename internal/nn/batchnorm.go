package nn

import (
	"fmt"
	"math"
)

// BatchNorm normalizes each feature over the batch during training and uses
// running statistics at inference. Gamma/beta are learnable. The paper's
// CTGAN-style generator uses batch normalization in its hidden layers
// (§V-C3).
type BatchNorm struct {
	Dim      int
	Momentum float64 // running-stat update rate (default 0.1)
	Eps      float64

	gamma, beta             *Param
	runningMean, runningVar []float64

	// forward caches
	xHat     [][]float64
	std      []float64
	batchLen int
}

var _ Layer = (*BatchNorm)(nil)

// NewBatchNorm creates a batch-normalization layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	if dim <= 0 {
		panic(fmt.Sprintf("nn: invalid batchnorm dim %d", dim))
	}
	bn := &BatchNorm{
		Dim:         dim,
		Momentum:    0.1,
		Eps:         1e-5,
		gamma:       NewParam(fmt.Sprintf("bn%d.gamma", dim), dim),
		beta:        NewParam(fmt.Sprintf("bn%d.beta", dim), dim),
		runningMean: make([]float64, dim),
		runningVar:  make([]float64, dim),
	}
	for i := range bn.gamma.Data {
		bn.gamma.Data[i] = 1
		bn.runningVar[i] = 1
	}
	return bn
}

// Forward normalizes the batch (training) or applies running stats
// (inference).
func (bn *BatchNorm) Forward(x [][]float64, train bool) [][]float64 {
	n := len(x)
	out := make([][]float64, n)
	if !train || n == 1 {
		// Inference path (also used for degenerate single-sample batches).
		bn.xHat = nil
		for i, row := range x {
			o := make([]float64, bn.Dim)
			for j, v := range row {
				xh := (v - bn.runningMean[j]) / math.Sqrt(bn.runningVar[j]+bn.Eps)
				o[j] = bn.gamma.Data[j]*xh + bn.beta.Data[j]
			}
			out[i] = o
		}
		return out
	}

	mean := make([]float64, bn.Dim)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	variance := make([]float64, bn.Dim)
	for _, row := range x {
		for j, v := range row {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= float64(n)
	}

	bn.std = make([]float64, bn.Dim)
	for j := range bn.std {
		bn.std[j] = math.Sqrt(variance[j] + bn.Eps)
	}
	bn.xHat = make([][]float64, n)
	bn.batchLen = n
	for i, row := range x {
		xh := make([]float64, bn.Dim)
		o := make([]float64, bn.Dim)
		for j, v := range row {
			xh[j] = (v - mean[j]) / bn.std[j]
			o[j] = bn.gamma.Data[j]*xh[j] + bn.beta.Data[j]
		}
		bn.xHat[i] = xh
		out[i] = o
	}
	for j := range mean {
		bn.runningMean[j] = (1-bn.Momentum)*bn.runningMean[j] + bn.Momentum*mean[j]
		bn.runningVar[j] = (1-bn.Momentum)*bn.runningVar[j] + bn.Momentum*variance[j]
	}
	return out
}

// Backward implements the standard batch-norm gradient.
func (bn *BatchNorm) Backward(gradOut [][]float64) [][]float64 {
	if bn.xHat == nil {
		// Inference-mode backward (running stats treated as constants).
		gradIn := make([][]float64, len(gradOut))
		for i, gRow := range gradOut {
			gi := make([]float64, bn.Dim)
			for j, g := range gRow {
				gi[j] = g * bn.gamma.Data[j] / math.Sqrt(bn.runningVar[j]+bn.Eps)
			}
			gradIn[i] = gi
		}
		return gradIn
	}
	n := float64(bn.batchLen)
	sumG := make([]float64, bn.Dim)  // Σ dL/dy
	sumGX := make([]float64, bn.Dim) // Σ dL/dy · x̂
	for i, gRow := range gradOut {
		for j, g := range gRow {
			sumG[j] += g
			sumGX[j] += g * bn.xHat[i][j]
			bn.beta.Grad[j] += g
			bn.gamma.Grad[j] += g * bn.xHat[i][j]
		}
	}
	gradIn := make([][]float64, len(gradOut))
	for i, gRow := range gradOut {
		gi := make([]float64, bn.Dim)
		for j, g := range gRow {
			gi[j] = bn.gamma.Data[j] / (n * bn.std[j]) *
				(n*g - sumG[j] - bn.xHat[i][j]*sumGX[j])
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns gamma and beta.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.gamma, bn.beta} }
