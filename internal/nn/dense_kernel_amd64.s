//go:build amd64

#include "textflag.h"

// AVX kernels for the Dense inference hot loop. Bit-identity contract:
// only VMULPD/VADDPD and their VEX scalar forms are used — each lane is a
// single IEEE-rounded multiply followed by a single IEEE-rounded add,
// exactly what the portable Go kernels compute. VFMADD* must never be
// used here: fusing the multiply-add skips the intermediate rounding and
// would break the Infer == ForwardT golden tests.

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	// AVX needs the CPU flags (ECX bit 28) and OSXSAVE (ECX bit 27).
	MOVL CX, BX
	ANDL $(1<<27 | 1<<28), BX
	CMPL BX, $(1<<27 | 1<<28)
	JNE  noavx
	// XGETBV: the OS must save both XMM (bit 1) and YMM (bit 2) state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET

noavx:
	MOVB $0, ret+0(FP)
	RET

// func axpy4avx(v *[4]float64, w, o0, o1, o2, o3 *float64, n int)
//
// o_r[k] += v[r] * w[k] for r in 0..3, k in 0..n-1. One pass over the
// weight row feeds four output rows, so the weight memory traffic of the
// 4-row block is a quarter of four single-row passes.
TEXT ·axpy4avx(SB), NOSPLIT, $0-56
	MOVQ v+0(FP), AX
	MOVQ w+8(FP), SI
	MOVQ o0+16(FP), R8
	MOVQ o1+24(FP), R9
	MOVQ o2+32(FP), R10
	MOVQ o3+40(FP), R11
	MOVQ n+48(FP), CX

	VBROADCASTSD (AX), Y0
	VBROADCASTSD 8(AX), Y1
	VBROADCASTSD 16(AX), Y2
	VBROADCASTSD 24(AX), Y3

	// Pointer-increment addressing throughout: indexed stores cannot use
	// the dedicated store-address port on Intel cores and measurably slow
	// this loop down.
	MOVQ CX, DX
	SHRQ $2, DX
	JZ   tail4

loop4:
	VMOVUPD (SI), Y4
	VMULPD  Y4, Y0, Y5
	VADDPD  (R8), Y5, Y5
	VMOVUPD Y5, (R8)
	VMULPD  Y4, Y1, Y6
	VADDPD  (R9), Y6, Y6
	VMOVUPD Y6, (R9)
	VMULPD  Y4, Y2, Y7
	VADDPD  (R10), Y7, Y7
	VMOVUPD Y7, (R10)
	VMULPD  Y4, Y3, Y8
	VADDPD  (R11), Y8, Y8
	VMOVUPD Y8, (R11)
	ADDQ    $32, SI
	ADDQ    $32, R8
	ADDQ    $32, R9
	ADDQ    $32, R10
	ADDQ    $32, R11
	DECQ    DX
	JNZ     loop4

tail4:
	ANDQ $3, CX
	JZ   done4

tailloop4:
	VMOVSD (SI), X4
	VMULSD X4, X0, X5
	VADDSD (R8), X5, X5
	VMOVSD X5, (R8)
	VMULSD X4, X1, X6
	VADDSD (R9), X6, X6
	VMOVSD X6, (R9)
	VMULSD X4, X2, X7
	VADDSD (R10), X7, X7
	VMOVSD X7, (R10)
	VMULSD X4, X3, X8
	VADDSD (R11), X8, X8
	VMOVSD X8, (R11)
	ADDQ   $8, SI
	ADDQ   $8, R8
	ADDQ   $8, R9
	ADDQ   $8, R10
	ADDQ   $8, R11
	DECQ   CX
	JNZ    tailloop4

done4:
	VZEROUPPER
	RET

// func axpy1avx(v float64, w, o *float64, n int)
//
// o[k] += v * w[k] for k in 0..n-1.
TEXT ·axpy1avx(SB), NOSPLIT, $0-32
	MOVQ w+8(FP), SI
	MOVQ o+16(FP), R8
	MOVQ n+24(FP), CX

	VBROADCASTSD v+0(FP), Y0

	MOVQ CX, DX
	SHRQ $3, DX
	JZ   tail1

loop1:
	VMOVUPD (SI), Y4
	VMULPD  Y4, Y0, Y5
	VADDPD  (R8), Y5, Y5
	VMOVUPD Y5, (R8)
	VMOVUPD 32(SI), Y6
	VMULPD  Y6, Y0, Y7
	VADDPD  32(R8), Y7, Y7
	VMOVUPD Y7, 32(R8)
	ADDQ    $64, SI
	ADDQ    $64, R8
	DECQ    DX
	JNZ     loop1

tail1:
	ANDQ $7, CX
	JZ   done1

tailloop1:
	VMOVSD (SI), X4
	VMULSD X4, X0, X5
	VADDSD (R8), X5, X5
	VMOVSD X5, (R8)
	ADDQ   $8, SI
	ADDQ   $8, R8
	DECQ   CX
	JNZ    tailloop1

done1:
	VZEROUPPER
	RET
