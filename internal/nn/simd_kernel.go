package nn

// Portable scalar kernels for the training hot loops (Dense backward,
// BatchNorm forward/backward, the ReLU family, and the loss reductions),
// plus the dispatch table that swaps in their AVX twins on capable amd64
// hardware. The same no-FMA contract as the dense axpy kernels applies:
// the vector code uses only per-lane IEEE multiply/add/subtract/divide
// (VMULPD/VADDPD/VSUBPD/VDIVPD and their scalar VEX forms) — never
// VFMADD* — so every kernel is bit-identical to its scalar twin here,
// pinned by the golden tests in simd_test.go.
//
// The reductions (vdot, vsum, and vmse's loss sum) cannot match a plain
// sequential accumulation under lane-parallel SIMD, so each one's
// DEFINITION is a fixed lane scheme both twins implement. vsum and vmse
// use the 4-lane scheme: lane k accumulates elements i ≡ k (mod 4), lanes
// combine as (acc0+acc2)+(acc1+acc3) — exactly the
// VEXTRACTF128/VADDPD/VUNPCKHPD/VADDSD horizontal fold — and the remaining
// tail elements are added sequentially. vdot, hot enough that a single
// vector accumulator's addition-latency chain dominates, uses a 16-lane
// scheme instead (see its comment). Every scheme is fixed by the kernel,
// not by the hardware, so results are identical on every platform and at
// every worker count.

// The dispatch table: amd64 binds the AVX implementations at init when the
// CPU supports them (see simd_amd64.go); everywhere else the Go twins stay
// bound. SetVectorKernels flips the binding at runtime for benchmarks.
var (
	vadd       func(dst, x []float64)                                   = vaddGo
	vmulAdd    func(dst, a, b []float64)                                = vmulAddGo
	vsqDiffAdd func(dst, x, m []float64)                                = vsqDiffAddGo
	vdivs      func(x []float64, s float64)                             = vdivsGo
	vbnNorm    func(xh, x, mean, std []float64)                         = vbnNormGo
	vbnAffine  func(o, xh, gamma, beta []float64)                       = vbnAffineGo
	vbnBack    func(gi, g, xh, coef, sumG, sumGX []float64, nf float64) = vbnBackGo
	vreluFwd   func(dst, x []float64)                                   = vreluFwdGo
	vlreluFwd  func(dst, x []float64, alpha float64)                    = vlreluFwdGo
	vlreluBwd  func(gi, g, x []float64, alpha float64)                  = vlreluBwdGo
	vdot       func(a, b []float64) float64                             = vdotGo
	vscale     func(dst, x []float64, s float64)                        = vscaleGo
	vsum       func(x []float64) float64                                = vsumGo
	vmse       func(grad, pred, target []float64) float64               = vmseGo
)

// vaddGo accumulates dst[i] += x[i] — BatchNorm column sums, bias
// gradients, and the fixed-shape gradient tree reduction.
func vaddGo(dst, x []float64) {
	x = x[:len(dst)]
	for i, v := range x {
		dst[i] += v
	}
}

// vmulAddGo accumulates dst[i] += a[i]*b[i] (one rounding per op, no FMA).
func vmulAddGo(dst, a, b []float64) {
	a = a[:len(dst)]
	b = b[:len(dst)]
	for i := range dst {
		dst[i] += a[i] * b[i]
	}
}

// vsqDiffAddGo accumulates dst[i] += (x[i]-m[i])² — the BatchNorm variance
// pass.
func vsqDiffAddGo(dst, x, m []float64) {
	x = x[:len(dst)]
	m = m[:len(dst)]
	for i := range dst {
		d := x[i] - m[i]
		dst[i] += d * d
	}
}

// vdivsGo divides in place: x[i] /= s (true IEEE division, not a
// reciprocal multiply — bit-compatible with the scalar statistics loops).
func vdivsGo(x []float64, s float64) {
	for i := range x {
		x[i] /= s
	}
}

// vbnNormGo writes xh[i] = (x[i]-mean[i]) / std[i].
func vbnNormGo(xh, x, mean, std []float64) {
	x = x[:len(xh)]
	mean = mean[:len(xh)]
	std = std[:len(xh)]
	for i := range xh {
		xh[i] = (x[i] - mean[i]) / std[i]
	}
}

// vbnAffineGo writes o[i] = gamma[i]*xh[i] + beta[i].
func vbnAffineGo(o, xh, gamma, beta []float64) {
	xh = xh[:len(o)]
	gamma = gamma[:len(o)]
	beta = beta[:len(o)]
	for i := range o {
		o[i] = gamma[i]*xh[i] + beta[i]
	}
}

// vbnBackGo writes the batch-norm input gradient for one row:
// gi[i] = coef[i] * (nf*g[i] - sumG[i] - xh[i]*sumGX[i]), with
// coef[i] = gamma[i]/(nf*std[i]) hoisted once per batch by the caller
// (the hoist reuses the identical per-element arithmetic, so bits match
// the historical per-row recomputation).
func vbnBackGo(gi, g, xh, coef, sumG, sumGX []float64, nf float64) {
	g = g[:len(gi)]
	xh = xh[:len(gi)]
	coef = coef[:len(gi)]
	sumG = sumG[:len(gi)]
	sumGX = sumGX[:len(gi)]
	for i := range gi {
		gi[i] = coef[i] * (nf*g[i] - sumG[i] - xh[i]*sumGX[i])
	}
}

// vreluFwdGo is elementwise max(x, 0) with MAXPD's exact corner semantics
// (SRC1 = +0, SRC2 = x: returns x for -0 and NaN inputs), which coincide
// with the historical scalar `if x < 0 { 0 } else { x }`.
func vreluFwdGo(dst, x []float64) {
	x = x[:len(dst)]
	for i, v := range x {
		if v < 0 {
			dst[i] = 0
		} else {
			dst[i] = v
		}
	}
}

// vlreluFwdGo is the leaky variant: x < 0 ? alpha*x : x. Note alpha=0 is
// NOT ReLU bitwise (0*x is -0 for negative x); ReLU has its own kernel.
func vlreluFwdGo(dst, x []float64, alpha float64) {
	x = x[:len(dst)]
	for i, v := range x {
		if v < 0 {
			dst[i] = alpha * v
		} else {
			dst[i] = v
		}
	}
}

// vlreluBwdGo routes gradients through the (leaky) ReLU derivative:
// gi[i] = g[i] * (x[i] < 0 ? alpha : 1). With alpha=0 this IS the ReLU
// backward: g*0 keeps g's sign on the zero, exactly like the scalar path.
func vlreluBwdGo(gi, g, x []float64, alpha float64) {
	g = g[:len(gi)]
	x = x[:len(gi)]
	for i := range gi {
		f := 1.0
		if x[i] < 0 {
			f = alpha
		}
		gi[i] = g[i] * f
	}
}

// vdotGo is the fixed 16-lane dot product — the Dense backward
// input-gradient kernel, the hottest reduction in training. Unlike the
// 4-lane scheme of vsum/vmse, it keeps 16 independent accumulators (four
// vector registers in the AVX twin) so neither implementation serializes on
// a single addition dependency chain. The scheme is fixed by this contract,
// not by hardware: lane k accumulates elements i ≡ k (mod 16) in index
// order; lanes fold as f[k] = (l[k]+l[k+8]) + (l[k+4]+l[k+12]) for
// k < 4, then (f0+f2) + (f1+f3); the < 16 remainder is added sequentially
// after the fold.
func vdotGo(a, b []float64) float64 {
	b = b[:len(a)]
	var l [16]float64
	i := 0
	for ; i+16 <= len(a); i += 16 {
		l[0] += a[i] * b[i]
		l[1] += a[i+1] * b[i+1]
		l[2] += a[i+2] * b[i+2]
		l[3] += a[i+3] * b[i+3]
		l[4] += a[i+4] * b[i+4]
		l[5] += a[i+5] * b[i+5]
		l[6] += a[i+6] * b[i+6]
		l[7] += a[i+7] * b[i+7]
		l[8] += a[i+8] * b[i+8]
		l[9] += a[i+9] * b[i+9]
		l[10] += a[i+10] * b[i+10]
		l[11] += a[i+11] * b[i+11]
		l[12] += a[i+12] * b[i+12]
		l[13] += a[i+13] * b[i+13]
		l[14] += a[i+14] * b[i+14]
		l[15] += a[i+15] * b[i+15]
	}
	f0 := (l[0] + l[8]) + (l[4] + l[12])
	f1 := (l[1] + l[9]) + (l[5] + l[13])
	f2 := (l[2] + l[10]) + (l[6] + l[14])
	f3 := (l[3] + l[11]) + (l[7] + l[15])
	s := (f0 + f2) + (f1 + f3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// vscaleGo overwrites dst[i] = s·x[i] — the Dense backward input gradient
// for single-output layers (the discriminator head), where the row gradient
// is one scalar times the weight column.
func vscaleGo(dst, x []float64, s float64) {
	x = x[:len(dst)]
	for i, v := range x {
		dst[i] = s * v
	}
}

// vsumGo is the fixed 4-lane sum — the BCE loss-term reduction.
func vsumGo(x []float64) float64 {
	var a0, a1, a2, a3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		a0 += x[i]
		a1 += x[i+1]
		a2 += x[i+2]
		a3 += x[i+3]
	}
	s := (a0 + a2) + (a1 + a3)
	for ; i < len(x); i++ {
		s += x[i]
	}
	return s
}

// vmseGo fuses the MSE gradient and loss passes: grad[i] = 2*(pred[i] -
// target[i]) and the returned loss is the 4-lane sum of the squared
// differences (unnormalized; MSETN divides by the caller's total).
func vmseGo(grad, pred, target []float64) float64 {
	pred = pred[:len(grad)]
	target = target[:len(grad)]
	var a0, a1, a2, a3 float64
	i := 0
	for ; i+4 <= len(grad); i += 4 {
		d0 := pred[i] - target[i]
		d1 := pred[i+1] - target[i+1]
		d2 := pred[i+2] - target[i+2]
		d3 := pred[i+3] - target[i+3]
		grad[i] = 2 * d0
		grad[i+1] = 2 * d1
		grad[i+2] = 2 * d2
		grad[i+3] = 2 * d3
		a0 += d0 * d0
		a1 += d1 * d1
		a2 += d2 * d2
		a3 += d3 * d3
	}
	s := (a0 + a2) + (a1 + a3)
	for ; i < len(grad); i++ {
		d := pred[i] - target[i]
		grad[i] = 2 * d
		s += d * d
	}
	return s
}
