package nn

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// refDenseForward is the pre-tensor allocating Dense forward, kept verbatim
// as the golden reference for the in-place kernel.
func refDenseForward(w, b []float64, out int, x [][]float64) [][]float64 {
	y := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, out)
		copy(o, b)
		for j, v := range row {
			if v == 0 {
				continue
			}
			wRow := w[j*out : (j+1)*out]
			for k, wv := range wRow {
				o[k] += v * wv
			}
		}
		y[i] = o
	}
	return y
}

// refDenseBackward is the allocating reference for the Dense backward. The
// input gradient uses the fixed 4-lane dot scheme (vdotGo) that defines the
// layer's bit-level contract; weight/bias accumulations are the plain
// sequential sums (bit-identical to the axpy/vadd kernels).
func refDenseBackward(w []float64, in, out int, x, gradOut [][]float64) (gi [][]float64, gw, gb []float64) {
	gw = make([]float64, in*out)
	gb = make([]float64, out)
	gi = make([][]float64, len(gradOut))
	for i, gRow := range gradOut {
		row := x[i]
		g := make([]float64, in)
		for j, v := range row {
			gwRow := gw[j*out : (j+1)*out]
			g[j] = vdotGo(gRow, w[j*out:(j+1)*out])
			for k, gv := range gRow {
				gwRow[k] += gv * v
			}
		}
		for k, gv := range gRow {
			gb[k] += gv
		}
		gi[i] = g
	}
	return gi, gw, gb
}

func randRows(rng *rand.Rand, n, d int) [][]float64 {
	x := make([][]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
	}
	// Plant exact zeros to exercise the v == 0 skip branch.
	if n > 0 && d > 0 {
		x[0][0] = 0
		x[n-1][d-1] = 0
	}
	return x
}

// TestDenseKernelGolden pins the in-place Dense kernels bit-for-bit against
// the pre-tensor reference implementation, across repeated calls on the
// same layer (scratch reuse must not leak state between batches).
func TestDenseKernelGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDense(5, 3, rng)
	w, b := d.Params()[0], d.Params()[1]
	for trial := 0; trial < 4; trial++ {
		n := 2 + trial*3
		x := randRows(rng, n, 5)
		gradOut := randRows(rng, n, 3)

		got := d.Forward(x, true)
		want := refDenseForward(w.Data, b.Data, 3, x)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: forward mismatch", trial)
		}

		ZeroGrads(d.Params())
		gotGI := d.Backward(gradOut)
		wantGI, wantGW, wantGB := refDenseBackward(w.Data, 5, 3, x, gradOut)
		if !reflect.DeepEqual(gotGI, wantGI) {
			t.Fatalf("trial %d: input gradient mismatch", trial)
		}
		if !reflect.DeepEqual(w.Grad, wantGW) {
			t.Fatalf("trial %d: weight gradient mismatch", trial)
		}
		if !reflect.DeepEqual(b.Grad, wantGB) {
			t.Fatalf("trial %d: bias gradient mismatch", trial)
		}
	}
}

// refBatchNormForward is the pre-tensor training-mode forward: it returns
// the output, x̂, the batch std, and the updated running stats.
func refBatchNormForward(gamma, beta, runMean, runVar []float64, momentum, eps float64, x [][]float64) (out, xHat [][]float64, std []float64) {
	dim := len(gamma)
	n := len(x)
	mean := make([]float64, dim)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	variance := make([]float64, dim)
	for _, row := range x {
		for j, v := range row {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= float64(n)
	}
	std = make([]float64, dim)
	for j := range std {
		std[j] = math.Sqrt(variance[j] + eps)
	}
	out = make([][]float64, n)
	xHat = make([][]float64, n)
	for i, row := range x {
		xh := make([]float64, dim)
		o := make([]float64, dim)
		for j, v := range row {
			xh[j] = (v - mean[j]) / std[j]
			o[j] = gamma[j]*xh[j] + beta[j]
		}
		xHat[i] = xh
		out[i] = o
	}
	for j := range mean {
		runMean[j] = (1-momentum)*runMean[j] + momentum*mean[j]
		runVar[j] = (1-momentum)*runVar[j] + momentum*variance[j]
	}
	return out, xHat, std
}

// refBatchNormBackward is the pre-tensor training-mode backward.
func refBatchNormBackward(gamma []float64, xHat [][]float64, std []float64, gradOut [][]float64) (gi [][]float64, gGamma, gBeta []float64) {
	dim := len(gamma)
	n := float64(len(gradOut))
	sumG := make([]float64, dim)
	sumGX := make([]float64, dim)
	gGamma = make([]float64, dim)
	gBeta = make([]float64, dim)
	for i, gRow := range gradOut {
		for j, g := range gRow {
			sumG[j] += g
			sumGX[j] += g * xHat[i][j]
			gBeta[j] += g
			gGamma[j] += g * xHat[i][j]
		}
	}
	gi = make([][]float64, len(gradOut))
	for i, gRow := range gradOut {
		row := make([]float64, dim)
		for j, g := range gRow {
			row[j] = gamma[j] / (n * std[j]) * (n*g - sumG[j] - xHat[i][j]*sumGX[j])
		}
		gi[i] = row
	}
	return gi, gGamma, gBeta
}

// TestBatchNormKernelGolden pins the in-place BatchNorm kernels (and the
// running-statistic updates) bit-for-bit against the pre-tensor reference.
func TestBatchNormKernelGolden(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	bn := NewBatchNorm(4)
	gamma, beta := bn.Params()[0], bn.Params()[1]
	// Non-trivial affine parameters.
	for j := range gamma.Data {
		gamma.Data[j] = 0.5 + 0.1*float64(j)
		beta.Data[j] = 0.2 * float64(j)
	}
	refRunMean := append([]float64(nil), bn.runningMean...)
	refRunVar := append([]float64(nil), bn.runningVar...)
	for trial := 0; trial < 3; trial++ {
		x := randRows(rng, 6, 4)
		gradOut := randRows(rng, 6, 4)

		got := bn.Forward(x, true)
		want, xHat, std := refBatchNormForward(gamma.Data, beta.Data, refRunMean, refRunVar, bn.Momentum, bn.Eps, x)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: forward mismatch", trial)
		}
		if !reflect.DeepEqual(bn.runningMean, refRunMean) || !reflect.DeepEqual(bn.runningVar, refRunVar) {
			t.Fatalf("trial %d: running statistics mismatch", trial)
		}

		ZeroGrads(bn.Params())
		gotGI := bn.Backward(gradOut)
		wantGI, wantGGamma, wantGBeta := refBatchNormBackward(gamma.Data, xHat, std, gradOut)
		if !reflect.DeepEqual(gotGI, wantGI) {
			t.Fatalf("trial %d: input gradient mismatch", trial)
		}
		if !reflect.DeepEqual(gamma.Grad, wantGGamma) || !reflect.DeepEqual(beta.Grad, wantGBeta) {
			t.Fatalf("trial %d: parameter gradient mismatch", trial)
		}
	}
}

// TestPermIntoMatchesPerm pins permInto to rand.Perm: same draws, same
// permutation, for every size — the property the allocation-free epoch
// shuffle depends on.
func TestPermIntoMatchesPerm(t *testing.T) {
	var buf []int
	for _, n := range []int{0, 1, 2, 3, 7, 64, 255} {
		a := rand.New(rand.NewSource(99))
		b := rand.New(rand.NewSource(99))
		want := a.Perm(n)
		buf = permInto(b, n, buf)
		if len(want) == 0 && len(buf) == 0 {
			continue
		}
		if !reflect.DeepEqual(buf, want) {
			t.Fatalf("n=%d: permInto %v != rand.Perm %v", n, buf, want)
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d: rng streams diverged after permutation", n)
		}
	}
}

// TestMinibatchesIntoMatchesMinibatches checks the allocation-free variant
// produces identical batches (including the final-singleton merge) and
// consumes identical rng draws.
func TestMinibatchesIntoMatchesMinibatches(t *testing.T) {
	var perm []int
	var batches [][]int
	cases := []struct{ n, batch int }{
		{10, 4}, {65, 32}, {64, 32}, {1, 32}, {5, 0}, {33, 32}, {2, 1},
	}
	for _, tc := range cases {
		a := rand.New(rand.NewSource(42))
		b := rand.New(rand.NewSource(42))
		want := Minibatches(tc.n, tc.batch, a)
		perm, batches = MinibatchesInto(tc.n, tc.batch, b, perm, batches)
		if len(batches) != len(want) {
			t.Fatalf("n=%d batch=%d: %d batches, want %d", tc.n, tc.batch, len(batches), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(batches[i], want[i]) {
				t.Fatalf("n=%d batch=%d: batch %d = %v, want %v", tc.n, tc.batch, i, batches[i], want[i])
			}
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("n=%d batch=%d: rng streams diverged", tc.n, tc.batch)
		}
	}
}

// trainingStepAllocBudget is the pinned per-step allocation budget for a
// steady-state tensor-path training step (forward + loss + backward +
// optimizer). The hot path is designed to allocate nothing once scratch
// buffers have grown to the batch shape; the CI bench gate runs this test
// without the race detector.
const trainingStepAllocBudget = 0.5

// TestTrainingStepSteadyStateAllocs is the allocation-regression gate for
// the nn hot path: after warm-up, a full MLP training step (Dense +
// BatchNorm + ReLU + Dropout, MSE loss, Adam) must stay within
// trainingStepAllocBudget allocations.
func TestTrainingStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	rng := rand.New(rand.NewSource(7))
	net := NewMLP(MLPConfig{In: 8, Hidden: []int{16, 16}, Out: 4, Dropout: 0.2, BatchNorm: true, Rng: rng})
	opt := NewAdam(1e-3, 1e-6)
	params := net.Params()
	x := NewTensor(32, 8)
	target := NewTensor(32, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	for i := range target.Data() {
		target.Data()[i] = rng.NormFloat64()
	}
	var grad Tensor
	step := func() {
		out := net.ForwardT(x, true)
		if _, err := MSET(out, target, &grad); err != nil {
			t.Fatal(err)
		}
		net.BackwardT(&grad)
		opt.Step(params)
	}
	step() // grow scratch buffers and optimizer state
	step()
	if avg := testing.AllocsPerRun(20, step); avg > trainingStepAllocBudget {
		t.Errorf("steady-state training step allocates %.2f/op, budget %v", avg, trainingStepAllocBudget)
	}
}

// BenchmarkTrainingStep reports the tensor-path training step cost; run
// with -benchmem to watch the allocation budget.
func BenchmarkTrainingStep(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	net := NewMLP(MLPConfig{In: 8, Hidden: []int{16, 16}, Out: 4, Dropout: 0.2, BatchNorm: true, Rng: rng})
	opt := NewAdam(1e-3, 1e-6)
	params := net.Params()
	x := NewTensor(32, 8)
	target := NewTensor(32, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	for i := range target.Data() {
		target.Data()[i] = rng.NormFloat64()
	}
	var grad Tensor
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := net.ForwardT(x, true)
		if _, err := MSET(out, target, &grad); err != nil {
			b.Fatal(err)
		}
		net.BackwardT(&grad)
		opt.Step(params)
	}
}

// TestLegacyAdapterReturnsFreshRows guards the adapter contract callers
// rely on: Forward's result must stay valid after later Forward calls on
// the same network (baselines retain embeddings across passes).
func TestLegacyAdapterReturnsFreshRows(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewMLP(MLPConfig{In: 3, Hidden: []int{4}, Out: 2, Rng: rng})
	x1 := randRows(rng, 3, 3)
	x2 := randRows(rng, 3, 3)
	out1 := net.Forward(x1, false)
	snapshot := make([][]float64, len(out1))
	for i, row := range out1 {
		snapshot[i] = append([]float64(nil), row...)
	}
	_ = net.Forward(x2, false)
	if !reflect.DeepEqual(out1, snapshot) {
		t.Fatal("first Forward result was clobbered by the second call")
	}
}
