//go:build amd64

package nn

// simdActive reports whether the AVX kernel set is currently bound.
// Initialized from the CPUID probe; SetVectorKernels flips it together
// with the dispatch table so the axpy fast paths stay consistent with
// the rest of the kernels.
var simdActive = hasAVX

// The AVX routines live in simd_amd64.s. Same no-FMA contract as the
// dense axpy kernels: per-lane VMULPD/VADDPD/VSUBPD/VDIVPD plus scalar
// VEX tails, bit-identical to the Go twins in simd_kernel.go.

//go:noescape
func vaddavx(dst, x *float64, n int)

//go:noescape
func vmuladdavx(dst, a, b *float64, n int)

//go:noescape
func vsqdiffavx(dst, x, m *float64, n int)

//go:noescape
func vdivsavx(x *float64, s float64, n int)

//go:noescape
func vbnnormavx(xh, x, mean, std *float64, n int)

//go:noescape
func vbnaffineavx(o, xh, gamma, beta *float64, n int)

//go:noescape
func vbnbackavx(gi, grad, xh, coef, sumG, sumGX *float64, nf float64, n int)

//go:noescape
func vreluavx(dst, x *float64, n int)

//go:noescape
func vlreluavx(dst, x *float64, alpha float64, n int)

//go:noescape
func vlrelubwdavx(gi, grad, x *float64, alpha float64, n int)

//go:noescape
func vdotavx(a, b *float64, n int) float64

//go:noescape
func vscaleavx(dst, x *float64, s float64, n int)

//go:noescape
func vsumavx(x *float64, n int) float64

//go:noescape
func vmseavx(grad, pred, target *float64, n int) float64

// Slice wrappers. All kernels take equal-length slices (the length of the
// first operand is the element count, as in the Go twins).

func vaddAVX(dst, x []float64) {
	if len(dst) == 0 {
		return
	}
	vaddavx(&dst[0], &x[0], len(dst))
}

func vmulAddAVX(dst, a, b []float64) {
	if len(dst) == 0 {
		return
	}
	vmuladdavx(&dst[0], &a[0], &b[0], len(dst))
}

func vsqDiffAddAVX(dst, x, m []float64) {
	if len(dst) == 0 {
		return
	}
	vsqdiffavx(&dst[0], &x[0], &m[0], len(dst))
}

func vdivsAVX(x []float64, s float64) {
	if len(x) == 0 {
		return
	}
	vdivsavx(&x[0], s, len(x))
}

func vbnNormAVX(xh, x, mean, std []float64) {
	if len(xh) == 0 {
		return
	}
	vbnnormavx(&xh[0], &x[0], &mean[0], &std[0], len(xh))
}

func vbnAffineAVX(o, xh, gamma, beta []float64) {
	if len(o) == 0 {
		return
	}
	vbnaffineavx(&o[0], &xh[0], &gamma[0], &beta[0], len(o))
}

func vbnBackAVX(gi, g, xh, coef, sumG, sumGX []float64, nf float64) {
	if len(gi) == 0 {
		return
	}
	vbnbackavx(&gi[0], &g[0], &xh[0], &coef[0], &sumG[0], &sumGX[0], nf, len(gi))
}

func vreluFwdAVX(dst, x []float64) {
	if len(dst) == 0 {
		return
	}
	vreluavx(&dst[0], &x[0], len(dst))
}

func vlreluFwdAVX(dst, x []float64, alpha float64) {
	if len(dst) == 0 {
		return
	}
	vlreluavx(&dst[0], &x[0], alpha, len(dst))
}

func vlreluBwdAVX(gi, g, x []float64, alpha float64) {
	if len(gi) == 0 {
		return
	}
	vlrelubwdavx(&gi[0], &g[0], &x[0], alpha, len(gi))
}

func vdotAVX(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	return vdotavx(&a[0], &b[0], len(a))
}

func vscaleAVX(dst, x []float64, s float64) {
	if len(dst) == 0 {
		return
	}
	vscaleavx(&dst[0], &x[0], s, len(dst))
}

func vsumAVX(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return vsumavx(&x[0], len(x))
}

func vmseAVX(grad, pred, target []float64) float64 {
	if len(grad) == 0 {
		return 0
	}
	return vmseavx(&grad[0], &pred[0], &target[0], len(grad))
}

func bindGoKernels() {
	vadd = vaddGo
	vmulAdd = vmulAddGo
	vsqDiffAdd = vsqDiffAddGo
	vdivs = vdivsGo
	vbnNorm = vbnNormGo
	vbnAffine = vbnAffineGo
	vbnBack = vbnBackGo
	vreluFwd = vreluFwdGo
	vlreluFwd = vlreluFwdGo
	vlreluBwd = vlreluBwdGo
	vdot = vdotGo
	vscale = vscaleGo
	vsum = vsumGo
	vmse = vmseGo
}

func bindAVXKernels() {
	vadd = vaddAVX
	vmulAdd = vmulAddAVX
	vsqDiffAdd = vsqDiffAddAVX
	vdivs = vdivsAVX
	vbnNorm = vbnNormAVX
	vbnAffine = vbnAffineAVX
	vbnBack = vbnBackAVX
	vreluFwd = vreluFwdAVX
	vlreluFwd = vlreluFwdAVX
	vlreluBwd = vlreluBwdAVX
	vdot = vdotAVX
	vscale = vscaleAVX
	vsum = vsumAVX
	vmse = vmseAVX
}

// SetVectorKernels binds the AVX kernel set (on=true, when the hardware
// supports it) or the portable Go twins (on=false), and returns whether
// the AVX set was bound BEFORE the call. Because both sets are bit-identical
// the toggle never changes results — it exists so benchmarks and the
// driftbench gan_epoch stage can measure scalar-vs-vector honestly. Not
// safe to call concurrently with running training; flip it between runs.
func SetVectorKernels(on bool) bool {
	prev := simdActive
	simdActive = on && hasAVX
	if simdActive {
		bindAVXKernels()
	} else {
		bindGoKernels()
	}
	return prev
}

func init() {
	if hasAVX {
		bindAVXKernels()
	}
}
