package nn

import "math"

// This file is the serving hot path: an inference-only forward pass that
// runs over a caller-owned scratch arena instead of the per-layer scratch
// used by ForwardT. The training path stores activations and gradients on
// the layers themselves, which makes a network single-threaded; Infer
// keeps the network strictly read-only (weights and batch-norm running
// statistics are only read, never written), so any number of goroutines
// can run inference through one shared network as long as each owns its
// own InferScratch — and none runs ForwardT/BackwardT concurrently.
//
// The arithmetic is bit-identical to ForwardT in eval mode (train=false):
// each InferT below mirrors its layer's ForwardT eval branch loop for
// loop, pinned by the golden tests in infer_test.go.

// InferScratch is a caller-owned arena of reusable output tensors for the
// inference-only forward path. Each Infer call resets the arena and hands
// one buffer to every layer that needs an output; buffers grow on first
// use and are reused afterwards, so a steady-state batch forward of a
// fixed shape performs zero allocations. An arena serves one Infer call
// at a time; concurrent inference needs one arena per goroutine.
//
// The returned tensor of Infer is arena-owned: it is valid until the
// arena's next Infer call and must be copied out to be retained.
type InferScratch struct {
	bufs []*Tensor
	next int
}

// grab returns the next reusable tensor, growing the arena on first use.
func (s *InferScratch) grab() *Tensor {
	if s.next == len(s.bufs) {
		s.bufs = append(s.bufs, &Tensor{})
	}
	t := s.bufs[s.next]
	s.next++
	return t
}

// Inferencer is the inference-only counterpart of TensorLayer: InferT runs
// the layer's eval-mode forward arithmetic writing into arena buffers,
// without touching any layer-owned scratch or caches. Every built-in
// layer implements it.
type Inferencer interface {
	InferT(x *Tensor, s *InferScratch) *Tensor
}

// Infer runs root's eval-mode forward pass over the arena and returns the
// arena-owned output tensor. It is bit-identical to root.ForwardT(x,
// false) but mutates nothing except the arena, making it safe to call
// concurrently on a shared network (one arena per goroutine).
func Infer(root Layer, x *Tensor, s *InferScratch) *Tensor {
	s.next = 0
	return layerInferT(root, x, s)
}

// layerInferT dispatches one layer's inference pass, adapting through the
// slice API for custom layers that do not implement Inferencer (the
// compat path allocates and is not goroutine-safe; every layer in this
// package takes the arena path).
func layerInferT(l Layer, x *Tensor, s *InferScratch) *Tensor {
	if il, ok := l.(Inferencer); ok {
		return il.InferT(x, s)
	}
	return s.grab().SetFromRows(l.Forward(x.ToRows(), false))
}

var (
	_ Inferencer = (*Network)(nil)
	_ Inferencer = (*Dense)(nil)
	_ Inferencer = (*activation)(nil)
	_ Inferencer = (*BatchNorm)(nil)
	_ Inferencer = (*Dropout)(nil)
	_ Inferencer = (*GradReverse)(nil)
	_ Inferencer = (*SkipConcat)(nil)
)

// InferT implements Inferencer: the stack's layers run in order over the
// shared arena.
func (n *Network) InferT(x *Tensor, s *InferScratch) *Tensor {
	for _, l := range n.Layers {
		x = layerInferT(l, x, s)
	}
	return x
}

// InferT implements Inferencer: the affine map of ForwardT without the
// input cache (nothing on the layer is written).
//
// Rows run through a 4-way row-blocked kernel: each weight row is loaded
// once and feeds four output rows (a quarter of the weight memory traffic
// of four single-row passes), and the per-input rank-1 update runs through
// the axpy kernels — AVX on capable amd64 hardware, portable Go elsewhere.
// This is where the micro-batching throughput win comes from on
// compute-bound generators. Each output element still accumulates its
// terms in ascending input order with ForwardT's per-row zero skip, one
// IEEE-rounded multiply and add per input (the vector kernels never fuse
// them), so the result is bit-identical to the row-at-a-time eval forward.
func (d *Dense) InferT(x *Tensor, s *InferScratch) *Tensor {
	out := s.grab().Reset(x.rows, d.Out)
	if d.Out == 1 {
		// Single-output layers follow ForwardT's Out==1 definition — one
		// wide dot per row, no zero skip — so the bit-identity contract
		// with the eval forward holds.
		for i := 0; i < x.rows; i++ {
			out.data[i] = d.b.Data[0] + vdot(x.Row(i), d.w.Data)
		}
		return out
	}
	i := 0
	for ; i+4 <= x.rows; i += 4 {
		x0, x1, x2, x3 := x.Row(i), x.Row(i+1), x.Row(i+2), x.Row(i+3)
		o0 := out.Row(i)[:d.Out]
		o1 := out.Row(i + 1)[:d.Out]
		o2 := out.Row(i + 2)[:d.Out]
		o3 := out.Row(i + 3)[:d.Out]
		copy(o0, d.b.Data)
		copy(o1, d.b.Data)
		copy(o2, d.b.Data)
		copy(o3, d.b.Data)
		for j := 0; j < d.In; j++ {
			wRow := d.w.Data[j*d.Out : (j+1)*d.Out]
			v := [4]float64{x0[j], x1[j], x2[j], x3[j]}
			if v[0] != 0 && v[1] != 0 && v[2] != 0 && v[3] != 0 {
				axpy4(&v, wRow, o0, o1, o2, o3)
				continue
			}
			// A zero input contributes no term in ForwardT (zero skip);
			// handle mixed blocks row by row to keep that exact.
			if v[0] != 0 {
				axpy1(v[0], wRow, o0)
			}
			if v[1] != 0 {
				axpy1(v[1], wRow, o1)
			}
			if v[2] != 0 {
				axpy1(v[2], wRow, o2)
			}
			if v[3] != 0 {
				axpy1(v[3], wRow, o3)
			}
		}
	}
	for ; i < x.rows; i++ {
		row := x.Row(i)
		o := out.Row(i)[:d.Out]
		copy(o, d.b.Data)
		for j, v := range row {
			if v == 0 {
				continue
			}
			axpy1(v, d.w.Data[j*d.Out:(j+1)*d.Out], o)
		}
	}
	return out
}

// InferT implements Inferencer for elementwise activations.
func (a *activation) InferT(x *Tensor, s *InferScratch) *Tensor {
	out := s.grab().Reset(x.rows, x.cols)
	switch a.kind {
	case actReLU:
		vreluFwd(out.data, x.data)
	case actLeakyReLU:
		vlreluFwd(out.data, x.data, a.alpha)
	default:
		for i, v := range x.data {
			out.data[i] = a.fn(v)
		}
	}
	return out
}

// InferT implements Inferencer: the running-statistics normalization of
// ForwardT's eval branch. The running stats are read, never updated.
func (bn *BatchNorm) InferT(x *Tensor, s *InferScratch) *Tensor {
	n := x.rows
	// The per-column standard deviation is row-invariant: computing it
	// once per call instead of once per row changes nothing bit-wise
	// (every element still divides by the identical math.Sqrt value).
	std := s.grab().Reset(1, bn.Dim).Row(0)
	for j := range std {
		std[j] = math.Sqrt(bn.runningVar[j] + bn.Eps)
	}
	out := s.grab().Reset(n, bn.Dim)
	for i := 0; i < n; i++ {
		row := x.Row(i)
		o := out.Row(i)
		for j, v := range row {
			xh := (v - bn.runningMean[j]) / std[j]
			o[j] = bn.gamma.Data[j]*xh + bn.beta.Data[j]
		}
	}
	return out
}

// InferT implements Inferencer: dropout is the identity at inference.
func (d *Dropout) InferT(x *Tensor, _ *InferScratch) *Tensor { return x }

// InferT implements Inferencer: gradient reversal is the identity forward.
func (g *GradReverse) InferT(x *Tensor, _ *InferScratch) *Tensor { return x }

// InferT implements Inferencer: [inner(x), x] with the inner stack run
// over the same arena.
func (sc *SkipConcat) InferT(x *Tensor, s *InferScratch) *Tensor {
	h := layerInferT(sc.Inner, x, s)
	out := s.grab().Reset(x.rows, h.cols+x.cols)
	for i := 0; i < x.rows; i++ {
		row := out.Row(i)
		copy(row[:h.cols], h.Row(i))
		copy(row[h.cols:], x.Row(i))
	}
	return out
}
