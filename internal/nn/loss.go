package nn

import (
	"fmt"
	"math"
)

// SoftmaxCE computes the mean softmax cross-entropy loss of the logits
// against integer labels, along with the gradient w.r.t. the logits.
func SoftmaxCE(logits [][]float64, y []int) (float64, [][]float64, error) {
	if len(logits) != len(y) {
		return 0, nil, fmt.Errorf("nn: %d logit rows for %d labels", len(logits), len(y))
	}
	if len(logits) == 0 {
		return 0, nil, fmt.Errorf("nn: empty batch")
	}
	n := float64(len(y))
	grad := make([][]float64, len(logits))
	var loss float64
	for i, row := range logits {
		if y[i] < 0 || y[i] >= len(row) {
			return 0, nil, fmt.Errorf("nn: label %d out of range [0,%d)", y[i], len(row))
		}
		p := Softmax(row)
		loss += -math.Log(math.Max(p[y[i]], 1e-12))
		g := make([]float64, len(row))
		for j := range row {
			g[j] = p[j] / n
		}
		g[y[i]] -= 1 / n
		grad[i] = g
	}
	return loss / n, grad, nil
}

// Softmax returns the softmax of one logit row (numerically stabilized).
func Softmax(row []float64) []float64 {
	out := make([]float64, len(row))
	SoftmaxInto(out, row)
	return out
}

// SoftmaxInto writes the softmax of row into dst (len(dst) must equal
// len(row); dst may alias row). Same arithmetic as Softmax, allocation
// free for serving hot paths.
func SoftmaxInto(dst, row []float64) {
	maxV := row[0]
	for _, v := range row[1:] {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for j, v := range row {
		e := math.Exp(v - maxV)
		dst[j] = e
		sum += e
	}
	for j := range dst {
		dst[j] /= sum
	}
}

// BCEWithLogits computes the mean binary cross-entropy between single-logit
// rows and targets in {0,1} (or soft targets in [0,1]), with the gradient
// w.r.t. the logits. Each logits row must have exactly one element.
func BCEWithLogits(logits [][]float64, targets []float64) (float64, [][]float64, error) {
	if len(logits) != len(targets) {
		return 0, nil, fmt.Errorf("nn: %d logit rows for %d targets", len(logits), len(targets))
	}
	if len(logits) == 0 {
		return 0, nil, fmt.Errorf("nn: empty batch")
	}
	n := float64(len(logits))
	grad := make([][]float64, len(logits))
	var loss float64
	for i, row := range logits {
		if len(row) != 1 {
			return 0, nil, fmt.Errorf("nn: BCE logit row %d has %d values, want 1", i, len(row))
		}
		z := row[0]
		t := targets[i]
		// Stable: log(1+exp(-|z|)) + max(z,0) - z·t
		loss += math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))
		sig := 1 / (1 + math.Exp(-z))
		grad[i] = []float64{(sig - t) / n}
	}
	return loss / n, grad, nil
}

// BCEWithLogitsT is BCEWithLogits on the flat path: the gradient is written
// into grad (reshaped to match logits) instead of freshly allocated. The
// arithmetic — including the per-row accumulation order — matches
// BCEWithLogits exactly.
func BCEWithLogitsT(logits *Tensor, targets []float64, grad *Tensor) (float64, error) {
	if logits.rows != len(targets) {
		return 0, fmt.Errorf("nn: %d logit rows for %d targets", logits.rows, len(targets))
	}
	if logits.rows == 0 {
		return 0, fmt.Errorf("nn: empty batch")
	}
	if logits.cols != 1 {
		return 0, fmt.Errorf("nn: BCE logit rows have %d values, want 1", logits.cols)
	}
	n := float64(logits.rows)
	grad.Reset(logits.rows, 1)
	var loss float64
	for i := 0; i < logits.rows; i++ {
		z := logits.data[i]
		t := targets[i]
		loss += math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))
		sig := 1 / (1 + math.Exp(-z))
		grad.data[i] = (sig - t) / n
	}
	return loss / n, nil
}

// MSET is MSE on the flat path: the gradient is written into grad (reshaped
// to match pred) instead of freshly allocated. Same two-pass arithmetic as
// MSE, bit for bit.
func MSET(pred, target *Tensor, grad *Tensor) (float64, error) {
	if pred.rows != target.rows {
		return 0, fmt.Errorf("nn: %d predictions for %d targets", pred.rows, target.rows)
	}
	if pred.rows == 0 {
		return 0, fmt.Errorf("nn: empty batch")
	}
	if pred.cols != target.cols {
		return 0, fmt.Errorf("nn: width mismatch %d vs %d", pred.cols, target.cols)
	}
	var loss float64
	var count float64
	grad.Reset(pred.rows, pred.cols)
	for i, v := range pred.data {
		d := v - target.data[i]
		loss += d * d
		grad.data[i] = 2 * d
		count++
	}
	for i := range grad.data {
		grad.data[i] /= count
	}
	return loss / count, nil
}

// BCEWithLogitsTN is the sharded-trainer form of BCEWithLogitsT: the
// gradient is normalized by the caller's total (the FULL-batch row count,
// not this shard's), and the returned loss is the raw, unnormalized sum of
// the per-row loss terms, reduced with the fixed 4-lane vsum scheme.
// Callers accumulate shard partials in shard-index order and divide by the
// total once, which keeps the epoch loss independent of the worker count.
// terms is caller scratch with len ≥ logits rows (per-row loss terms land
// there before reduction so the function stays allocation free).
func BCEWithLogitsTN(logits *Tensor, targets []float64, grad *Tensor, terms []float64, total float64) (float64, error) {
	if logits.rows != len(targets) {
		return 0, fmt.Errorf("nn: %d logit rows for %d targets", logits.rows, len(targets))
	}
	if logits.rows == 0 {
		return 0, fmt.Errorf("nn: empty batch")
	}
	if logits.cols != 1 {
		return 0, fmt.Errorf("nn: BCE logit rows have %d values, want 1", logits.cols)
	}
	grad.Reset(logits.rows, 1)
	terms = terms[:logits.rows]
	for i := 0; i < logits.rows; i++ {
		z := logits.data[i]
		t := targets[i]
		terms[i] = math.Max(z, 0) - z*t + math.Log1p(math.Exp(-math.Abs(z)))
		sig := 1 / (1 + math.Exp(-z))
		grad.data[i] = (sig - t) / total
	}
	return vsum(terms), nil
}

// MSETN is the sharded-trainer form of MSET: the gradient is normalized by
// the caller's total (the FULL-batch element count), and the returned loss
// is the raw 4-lane sum of squared differences. See BCEWithLogitsTN for the
// accumulation contract.
func MSETN(pred, target, grad *Tensor, total float64) (float64, error) {
	if pred.rows != target.rows {
		return 0, fmt.Errorf("nn: %d predictions for %d targets", pred.rows, target.rows)
	}
	if pred.rows == 0 {
		return 0, fmt.Errorf("nn: empty batch")
	}
	if pred.cols != target.cols {
		return 0, fmt.Errorf("nn: width mismatch %d vs %d", pred.cols, target.cols)
	}
	grad.Reset(pred.rows, pred.cols)
	loss := vmse(grad.data, pred.data, target.data)
	vdivs(grad.data, total)
	return loss, nil
}

// MSE computes the mean squared error between prediction and target
// batches, with gradient w.r.t. the predictions.
func MSE(pred, target [][]float64) (float64, [][]float64, error) {
	if len(pred) != len(target) {
		return 0, nil, fmt.Errorf("nn: %d predictions for %d targets", len(pred), len(target))
	}
	if len(pred) == 0 {
		return 0, nil, fmt.Errorf("nn: empty batch")
	}
	var loss float64
	var count float64
	grad := make([][]float64, len(pred))
	for i := range pred {
		if len(pred[i]) != len(target[i]) {
			return 0, nil, fmt.Errorf("nn: row %d width mismatch %d vs %d", i, len(pred[i]), len(target[i]))
		}
		g := make([]float64, len(pred[i]))
		for j := range pred[i] {
			d := pred[i][j] - target[i][j]
			loss += d * d
			g[j] = 2 * d
			count++
		}
		grad[i] = g
	}
	for i := range grad {
		for j := range grad[i] {
			grad[i][j] /= count
		}
	}
	return loss / count, grad, nil
}

// SupConLoss is the supervised contrastive loss of Khosla et al., used by
// the SCL baseline. Embeddings are L2-normalized internally; the returned
// gradient is w.r.t. the raw (unnormalized) embeddings. Anchors without any
// positive pair contribute zero loss.
func SupConLoss(emb [][]float64, y []int, temp float64) (float64, [][]float64, error) {
	n := len(emb)
	if n != len(y) {
		return 0, nil, fmt.Errorf("nn: %d embeddings for %d labels", n, len(y))
	}
	if n < 2 {
		return 0, nil, fmt.Errorf("nn: supcon needs >= 2 samples")
	}
	if temp <= 0 {
		return 0, nil, fmt.Errorf("nn: supcon temperature %v must be positive", temp)
	}
	d := len(emb[0])

	// Normalize and remember norms for the chain rule.
	z := make([][]float64, n)
	norms := make([]float64, n)
	for i, row := range emb {
		var s float64
		for _, v := range row {
			s += v * v
		}
		norms[i] = math.Sqrt(s) + 1e-12
		zr := make([]float64, d)
		for j, v := range row {
			zr[j] = v / norms[i]
		}
		z[i] = zr
	}

	// Pairwise similarities / temperature.
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
		for j := range sim[i] {
			if i == j {
				continue
			}
			var s float64
			for k := 0; k < d; k++ {
				s += z[i][k] * z[j][k]
			}
			sim[i][j] = s / temp
		}
	}

	gradZ := make([][]float64, n)
	for i := range gradZ {
		gradZ[i] = make([]float64, d)
	}
	var loss float64
	var anchors float64
	for i := 0; i < n; i++ {
		var positives []int
		for j := 0; j < n; j++ {
			if j != i && y[j] == y[i] {
				positives = append(positives, j)
			}
		}
		if len(positives) == 0 {
			continue
		}
		anchors++
		// log-sum-exp over all a != i.
		maxSim := math.Inf(-1)
		for a := 0; a < n; a++ {
			if a != i && sim[i][a] > maxSim {
				maxSim = sim[i][a]
			}
		}
		var denom float64
		for a := 0; a < n; a++ {
			if a != i {
				denom += math.Exp(sim[i][a] - maxSim)
			}
		}
		logDenom := maxSim + math.Log(denom)
		pInv := 1 / float64(len(positives))
		for _, p := range positives {
			loss += -(sim[i][p] - logDenom) * pInv
		}
		// Gradient w.r.t. sim[i][a]: softmax weights minus positive mass.
		for a := 0; a < n; a++ {
			if a == i {
				continue
			}
			soft := math.Exp(sim[i][a] - logDenom)
			coeff := soft // from the log-denominator, per positive term
			isPos := 0.0
			if y[a] == y[i] {
				isPos = 1.0
			}
			gSim := coeff - isPos*pInv // summed over positives: |P|·pInv·soft - [a∈P]·pInv
			gSim *= 1                  // loss is summed over positives with weight pInv; handled above
			// Chain into z_i and z_a through sim = z_i·z_a/temp.
			for k := 0; k < d; k++ {
				gradZ[i][k] += gSim * z[a][k] / temp
				gradZ[a][k] += gSim * z[i][k] / temp
			}
		}
	}
	if anchors == 0 {
		zeroG := make([][]float64, n)
		for i := range zeroG {
			zeroG[i] = make([]float64, d)
		}
		return 0, zeroG, nil
	}
	loss /= anchors
	// Backprop through the L2 normalization: for e = raw, z = e/|e|,
	// dL/de = (I - z zᵀ)/|e| · dL/dz, then scale by 1/anchors.
	gradE := make([][]float64, n)
	for i := 0; i < n; i++ {
		var dot float64
		for k := 0; k < d; k++ {
			dot += gradZ[i][k] * z[i][k]
		}
		ge := make([]float64, d)
		for k := 0; k < d; k++ {
			ge[k] = (gradZ[i][k] - dot*z[i][k]) / norms[i] / anchors
		}
		gradE[i] = ge
	}
	return loss, gradE, nil
}
