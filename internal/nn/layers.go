package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is a differentiable network stage. Forward caches whatever Backward
// needs; Backward consumes the gradient w.r.t. the layer output,
// accumulates parameter gradients, and returns the gradient w.r.t. the
// layer input. A layer instance processes one batch at a time (the usual
// sequential-training contract).
type Layer interface {
	Forward(x [][]float64, train bool) [][]float64
	Backward(gradOut [][]float64) [][]float64
	Params() []*Param
}

// TensorLayer is the flat hot path implemented by every built-in layer:
// ForwardT/BackwardT run the same arithmetic as Forward/Backward (bit for
// bit — pinned by the golden tests in tensor_test.go) over row-major Tensor
// batches, writing into per-layer scratch buffers that are reused across
// calls. The returned tensor is the layer's scratch (or, for identity
// layers, the input itself) and is valid until the layer's next call.
type TensorLayer interface {
	Layer
	ForwardT(x *Tensor, train bool) *Tensor
	BackwardT(gradOut *Tensor) *Tensor
}

// legacyIO is the conversion scratch behind the slice-of-slices adapter:
// the old Forward/Backward API is a thin wrapper that copies into a reusable
// input tensor, runs the flat kernel, and copies the result out fresh
// (callers own and may retain the returned rows, as before).
type legacyIO struct {
	in, grad Tensor
}

func legacyForward(l TensorLayer, io *legacyIO, x [][]float64, train bool) [][]float64 {
	if len(x) == 0 {
		return x
	}
	io.in.SetFromRows(x)
	return l.ForwardT(&io.in, train).ToRows()
}

func legacyBackward(l TensorLayer, io *legacyIO, gradOut [][]float64) [][]float64 {
	if len(gradOut) == 0 {
		return gradOut
	}
	io.grad.SetFromRows(gradOut)
	return l.BackwardT(&io.grad).ToRows()
}

// LayerForwardT runs l's flat path, adapting through the slice API for
// custom layers that do not implement TensorLayer (the compat path
// allocates; every layer in this package takes the flat path).
func LayerForwardT(l Layer, x *Tensor, train bool) *Tensor {
	if tl, ok := l.(TensorLayer); ok {
		return tl.ForwardT(x, train)
	}
	out := &Tensor{}
	return out.SetFromRows(l.Forward(x.ToRows(), train))
}

// LayerBackwardT is the backward counterpart of LayerForwardT.
func LayerBackwardT(l Layer, gradOut *Tensor) *Tensor {
	if tl, ok := l.(TensorLayer); ok {
		return tl.BackwardT(gradOut)
	}
	out := &Tensor{}
	return out.SetFromRows(l.Backward(gradOut.ToRows()))
}

// Dense is a fully-connected layer: y = x·Wᵀ + b.
type Dense struct {
	In, Out int

	w, b   *Param
	input  *Tensor // caller-owned; stable between ForwardT and BackwardT
	out    Tensor
	gradIn Tensor
	legacy legacyIO
}

var _ TensorLayer = (*Dense)(nil)

// NewDense creates a dense layer with He-uniform initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %dx%d", in, out))
	}
	d := &Dense{
		In:  in,
		Out: out,
		w:   NewParam(fmt.Sprintf("dense%dx%d.w", in, out), in*out),
		b:   NewParam(fmt.Sprintf("dense%dx%d.b", in, out), out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.w.Data {
		d.w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes the affine map for a batch.
func (d *Dense) Forward(x [][]float64, train bool) [][]float64 {
	return legacyForward(d, &d.legacy, x, train)
}

// ForwardT computes the affine map in place.
func (d *Dense) ForwardT(x *Tensor, _ bool) *Tensor {
	d.input = x
	out := d.out.Reset(x.rows, d.Out)
	if d.Out == 1 {
		// Single-output layers (the discriminator head): the per-input axpy
		// degenerates to length-1 calls, so the row product is DEFINED as
		// one wide dot over the contiguous weight column instead —
		// b + vdot(row, w), no zero-skip.
		for i := 0; i < x.rows; i++ {
			out.data[i] = d.b.Data[0] + vdot(x.Row(i), d.w.Data)
		}
		return out
	}
	for i := 0; i < x.rows; i++ {
		row := x.Row(i)
		o := out.Row(i)
		copy(o, d.b.Data)
		for j, v := range row {
			if v == 0 {
				continue
			}
			axpy1(v, d.w.Data[j*d.Out:(j+1)*d.Out], o)
		}
	}
	return out
}

// Backward accumulates dL/dW, dL/db and returns dL/dx.
func (d *Dense) Backward(gradOut [][]float64) [][]float64 {
	return legacyBackward(d, &d.legacy, gradOut)
}

// BackwardT accumulates dL/dW, dL/db and returns dL/dx in place.
func (d *Dense) BackwardT(gradOut *Tensor) *Tensor {
	gradIn := d.gradIn.Reset(gradOut.rows, d.In)
	if d.input.cols != d.In {
		// Degenerate narrow input: the uncovered tail of each gradient row
		// must read as zero, as the allocating implementation guaranteed.
		gradIn.ZeroReset(gradOut.rows, d.In)
	}
	if d.Out == 1 {
		// Single-output layers: per-input vdot/axpy calls degenerate to
		// length-1 overhead, so the row gradients are DEFINED as wide
		// kernels over the contiguous weight column — gi = g0·w (vscale),
		// gw += g0·in (axpy1, no zero-skip).
		for i := 0; i < gradOut.rows; i++ {
			g0 := gradOut.data[i]
			in := d.input.Row(i)
			// Slice to the live input width so the degenerate narrow-input
			// case keeps its zero tail, like the generic path.
			vscale(gradIn.Row(i)[:len(in)], d.w.Data[:len(in)], g0)
			axpy1(g0, in, d.w.Grad[:len(in)])
			d.b.Grad[0] += g0
		}
		return gradIn
	}
	for i := 0; i < gradOut.rows; i++ {
		gRow := gradOut.Row(i)
		in := d.input.Row(i)
		gi := gradIn.Row(i)
		for j, v := range in {
			// Input gradient: the fixed-lane dot defined by vdot — the
			// bit-level reference for this layer (see refDenseBackward).
			gi[j] = vdot(gRow, d.w.Data[j*d.Out:(j+1)*d.Out])
			// Weight gradient: gw[k] += v*g[k]. Skipping v == 0 is
			// bit-neutral — the accumulator starts at +0 and +0 + (±0) = +0,
			// so it can never be -0 and adding a zero term never changes it.
			if v != 0 {
				axpy1(v, gRow, d.w.Grad[j*d.Out:(j+1)*d.Out])
			}
		}
		vadd(d.b.Grad, gRow)
	}
	return gradIn
}

// Params returns the layer's weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// actKind tags the built-in activations so the hot paths can dispatch to
// the vector kernels (and ShardedNet can clone an activation without
// inspecting its closures).
type actKind uint8

const (
	actGeneric actKind = iota // fn/deriv closures, elementwise scalar loop
	actReLU
	actLeakyReLU
	actTanh
	actSigmoid
)

// activation is shared machinery for elementwise activations.
type activation struct {
	kind  actKind
	alpha float64                    // leaky-ReLU negative slope
	fn    func(float64) float64      // generic forward (non-kernel kinds)
	deriv func(x, y float64) float64 // derivative given input x and output y

	input  *Tensor
	out    Tensor
	gradIn Tensor
	legacy legacyIO
}

var _ TensorLayer = (*activation)(nil)

// clone returns a fresh activation of the same kind with empty scratch,
// sharing nothing with the receiver (activations are stateless between
// batches apart from their caches).
func (a *activation) clone() *activation {
	return &activation{kind: a.kind, alpha: a.alpha, fn: a.fn, deriv: a.deriv}
}

func (a *activation) Forward(x [][]float64, train bool) [][]float64 {
	return legacyForward(a, &a.legacy, x, train)
}

func (a *activation) ForwardT(x *Tensor, _ bool) *Tensor {
	a.input = x
	out := a.out.Reset(x.rows, x.cols)
	switch a.kind {
	case actReLU:
		// Dedicated kernel: LeakyReLU with alpha=0 would turn negatives
		// into -0 (0*x), not the +0 the scalar definition produces.
		vreluFwd(out.data, x.data)
	case actLeakyReLU:
		vlreluFwd(out.data, x.data, a.alpha)
	default:
		for i, v := range x.data {
			out.data[i] = a.fn(v)
		}
	}
	return out
}

func (a *activation) Backward(gradOut [][]float64) [][]float64 {
	return legacyBackward(a, &a.legacy, gradOut)
}

func (a *activation) BackwardT(gradOut *Tensor) *Tensor {
	gradIn := a.gradIn.Reset(gradOut.rows, gradOut.cols)
	switch a.kind {
	case actReLU:
		// g*(x<0 ? 0 : 1): multiplying by literal 0 matches the historical
		// g*deriv scalar path bit for bit (keeps g's sign on the zero).
		vlreluBwd(gradIn.data, gradOut.data, a.input.data, 0)
	case actLeakyReLU:
		vlreluBwd(gradIn.data, gradOut.data, a.input.data, a.alpha)
	default:
		for i, g := range gradOut.data {
			gradIn.data[i] = g * a.deriv(a.input.data[i], a.out.data[i])
		}
	}
	return gradIn
}

func (a *activation) Params() []*Param { return nil }

// NewReLU returns a rectified linear activation layer.
func NewReLU() Layer {
	return &activation{kind: actReLU}
}

// NewLeakyReLU returns a leaky ReLU with the given negative slope.
func NewLeakyReLU(alpha float64) Layer {
	return &activation{kind: actLeakyReLU, alpha: alpha}
}

// NewTanh returns a tanh activation layer.
func NewTanh() Layer {
	return &activation{
		kind:  actTanh,
		fn:    math.Tanh,
		deriv: func(_, y float64) float64 { return 1 - y*y },
	}
}

// NewSigmoid returns a logistic activation layer.
func NewSigmoid() Layer {
	return &activation{
		kind:  actSigmoid,
		fn:    func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		deriv: func(_, y float64) float64 { return y * (1 - y) },
	}
}

// Dropout zeroes each unit with probability P during training and scales
// survivors by 1/(1-P) (inverted dropout). At inference it is the identity.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask    Tensor
	hasMask bool
	out     Tensor
	gradIn  Tensor
	legacy  legacyIO
}

var _ TensorLayer = (*Dropout)(nil)

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward applies the dropout mask in training mode.
func (d *Dropout) Forward(x [][]float64, train bool) [][]float64 {
	if !train || d.P == 0 {
		d.hasMask = false
		return x
	}
	return legacyForward(d, &d.legacy, x, train)
}

// ForwardT applies the dropout mask in training mode; at inference it
// returns x unchanged.
func (d *Dropout) ForwardT(x *Tensor, train bool) *Tensor {
	if !train || d.P == 0 {
		d.hasMask = false
		return x
	}
	scale := 1 / (1 - d.P)
	out := d.out.Reset(x.rows, x.cols)
	mask := d.mask.Reset(x.rows, x.cols)
	d.hasMask = true
	for i, v := range x.data {
		if d.rng.Float64() >= d.P {
			mask.data[i] = scale
			out.data[i] = v * scale
		} else {
			mask.data[i] = 0
			out.data[i] = 0
		}
	}
	return out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(gradOut [][]float64) [][]float64 {
	if !d.hasMask {
		return gradOut
	}
	return legacyBackward(d, &d.legacy, gradOut)
}

// BackwardT routes gradients through the surviving units.
func (d *Dropout) BackwardT(gradOut *Tensor) *Tensor {
	if !d.hasMask {
		return gradOut
	}
	gradIn := d.gradIn.Reset(gradOut.rows, gradOut.cols)
	for i, g := range gradOut.data {
		gradIn.data[i] = g * d.mask.data[i]
	}
	return gradIn
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// GradReverse is the identity in the forward pass and multiplies gradients
// by -Lambda in the backward pass (Ganin & Lempitsky's gradient reversal,
// used by the DANN baseline).
type GradReverse struct {
	Lambda float64

	gradIn Tensor
	legacy legacyIO
}

var _ TensorLayer = (*GradReverse)(nil)

// Forward is the identity.
func (g *GradReverse) Forward(x [][]float64, _ bool) [][]float64 { return x }

// ForwardT is the identity.
func (g *GradReverse) ForwardT(x *Tensor, _ bool) *Tensor { return x }

// Backward negates and scales the gradient.
func (g *GradReverse) Backward(gradOut [][]float64) [][]float64 {
	return legacyBackward(g, &g.legacy, gradOut)
}

// BackwardT negates and scales the gradient.
func (g *GradReverse) BackwardT(gradOut *Tensor) *Tensor {
	gradIn := g.gradIn.Reset(gradOut.rows, gradOut.cols)
	for i, v := range gradOut.data {
		gradIn.data[i] = -g.Lambda * v
	}
	return gradIn
}

// Params returns nil; the layer has no parameters.
func (g *GradReverse) Params() []*Param { return nil }
