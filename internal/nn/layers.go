package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is a differentiable network stage. Forward caches whatever Backward
// needs; Backward consumes the gradient w.r.t. the layer output,
// accumulates parameter gradients, and returns the gradient w.r.t. the
// layer input. A layer instance processes one batch at a time (the usual
// sequential-training contract).
type Layer interface {
	Forward(x [][]float64, train bool) [][]float64
	Backward(gradOut [][]float64) [][]float64
	Params() []*Param
}

// Dense is a fully-connected layer: y = x·Wᵀ + b.
type Dense struct {
	In, Out int

	w, b  *Param
	input [][]float64
}

var _ Layer = (*Dense)(nil)

// NewDense creates a dense layer with He-uniform initialization.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense shape %dx%d", in, out))
	}
	d := &Dense{
		In:  in,
		Out: out,
		w:   NewParam(fmt.Sprintf("dense%dx%d.w", in, out), in*out),
		b:   NewParam(fmt.Sprintf("dense%dx%d.b", in, out), out),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.w.Data {
		d.w.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes the affine map for a batch.
func (d *Dense) Forward(x [][]float64, _ bool) [][]float64 {
	d.input = x
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, d.Out)
		copy(o, d.b.Data)
		for j, v := range row {
			if v == 0 {
				continue
			}
			wRow := d.w.Data[j*d.Out : (j+1)*d.Out]
			for k, w := range wRow {
				o[k] += v * w
			}
		}
		out[i] = o
	}
	return out
}

// Backward accumulates dL/dW, dL/db and returns dL/dx.
func (d *Dense) Backward(gradOut [][]float64) [][]float64 {
	gradIn := make([][]float64, len(gradOut))
	for i, gRow := range gradOut {
		in := d.input[i]
		gi := make([]float64, d.In)
		for j, v := range in {
			wRow := d.w.Data[j*d.Out : (j+1)*d.Out]
			gwRow := d.w.Grad[j*d.Out : (j+1)*d.Out]
			var s float64
			for k, g := range gRow {
				s += g * wRow[k]
				gwRow[k] += g * v
			}
			gi[j] = s
		}
		for k, g := range gRow {
			d.b.Grad[k] += g
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns the layer's weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// activation is shared machinery for elementwise activations.
type activation struct {
	fn    func(float64) float64
	deriv func(x, y float64) float64 // derivative given input x and output y
	input [][]float64
	out   [][]float64
}

func (a *activation) Forward(x [][]float64, _ bool) [][]float64 {
	a.input = x
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			o[j] = a.fn(v)
		}
		out[i] = o
	}
	a.out = out
	return out
}

func (a *activation) Backward(gradOut [][]float64) [][]float64 {
	gradIn := make([][]float64, len(gradOut))
	for i, gRow := range gradOut {
		gi := make([]float64, len(gRow))
		for j, g := range gRow {
			gi[j] = g * a.deriv(a.input[i][j], a.out[i][j])
		}
		gradIn[i] = gi
	}
	return gradIn
}

func (a *activation) Params() []*Param { return nil }

// NewReLU returns a rectified linear activation layer.
func NewReLU() Layer {
	return &activation{
		fn: func(x float64) float64 {
			if x < 0 {
				return 0
			}
			return x
		},
		deriv: func(x, _ float64) float64 {
			if x < 0 {
				return 0
			}
			return 1
		},
	}
}

// NewLeakyReLU returns a leaky ReLU with the given negative slope.
func NewLeakyReLU(alpha float64) Layer {
	return &activation{
		fn: func(x float64) float64 {
			if x < 0 {
				return alpha * x
			}
			return x
		},
		deriv: func(x, _ float64) float64 {
			if x < 0 {
				return alpha
			}
			return 1
		},
	}
}

// NewTanh returns a tanh activation layer.
func NewTanh() Layer {
	return &activation{
		fn:    math.Tanh,
		deriv: func(_, y float64) float64 { return 1 - y*y },
	}
}

// NewSigmoid returns a logistic activation layer.
func NewSigmoid() Layer {
	return &activation{
		fn:    func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
		deriv: func(_, y float64) float64 { return y * (1 - y) },
	}
}

// Dropout zeroes each unit with probability P during training and scales
// survivors by 1/(1-P) (inverted dropout). At inference it is the identity.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask [][]float64
}

var _ Layer = (*Dropout)(nil)

// NewDropout creates a dropout layer with drop probability p.
func NewDropout(p float64, rng *rand.Rand) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward applies the dropout mask in training mode.
func (d *Dropout) Forward(x [][]float64, train bool) [][]float64 {
	if !train || d.P == 0 {
		d.mask = nil
		return x
	}
	scale := 1 / (1 - d.P)
	out := make([][]float64, len(x))
	d.mask = make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		m := make([]float64, len(row))
		for j, v := range row {
			if d.rng.Float64() >= d.P {
				m[j] = scale
				o[j] = v * scale
			}
		}
		out[i] = o
		d.mask[i] = m
	}
	return out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(gradOut [][]float64) [][]float64 {
	if d.mask == nil {
		return gradOut
	}
	gradIn := make([][]float64, len(gradOut))
	for i, gRow := range gradOut {
		gi := make([]float64, len(gRow))
		for j, g := range gRow {
			gi[j] = g * d.mask[i][j]
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// GradReverse is the identity in the forward pass and multiplies gradients
// by -Lambda in the backward pass (Ganin & Lempitsky's gradient reversal,
// used by the DANN baseline).
type GradReverse struct {
	Lambda float64
}

var _ Layer = (*GradReverse)(nil)

// Forward is the identity.
func (g *GradReverse) Forward(x [][]float64, _ bool) [][]float64 { return x }

// Backward negates and scales the gradient.
func (g *GradReverse) Backward(gradOut [][]float64) [][]float64 {
	out := make([][]float64, len(gradOut))
	for i, row := range gradOut {
		o := make([]float64, len(row))
		for j, v := range row {
			o[j] = -g.Lambda * v
		}
		out[i] = o
	}
	return out
}

// Params returns nil; the layer has no parameters.
func (g *GradReverse) Params() []*Param { return nil }
