//go:build !amd64

package nn

// SetVectorKernels is a no-op off amd64: only the portable Go kernels
// exist, they are always bound, and the previous state is always "scalar".
func SetVectorKernels(on bool) bool {
	return false
}
