//go:build amd64

package nn

// hasAVX gates the vector kernels at runtime: AVX requires both the CPU
// feature flag and OS support for saving YMM state (OSXSAVE + XGETBV).
var hasAVX = cpuHasAVX()

// cpuHasAVX is implemented in dense_kernel_amd64.s via CPUID/XGETBV.
func cpuHasAVX() bool

// axpy4avx and axpy1avx are the AVX forms of axpy4Go/axpy1Go. They use
// VMULPD/VADDPD (and their scalar VEX forms for the length tail), which
// round each lane exactly like the scalar Go code — no FMA — so results
// are bit-identical to the portable kernels.
//
//go:noescape
func axpy4avx(v *[4]float64, w, o0, o1, o2, o3 *float64, n int)

//go:noescape
func axpy1avx(v float64, w, o *float64, n int)

func axpy4(v *[4]float64, w, o0, o1, o2, o3 []float64) {
	if simdActive && len(w) > 0 {
		axpy4avx(v, &w[0], &o0[0], &o1[0], &o2[0], &o3[0], len(w))
		return
	}
	axpy4Go(v, w, o0, o1, o2, o3)
}

func axpy1(v float64, w, o []float64) {
	if simdActive && len(w) > 0 {
		axpy1avx(v, &w[0], &o[0], len(w))
		return
	}
	axpy1Go(v, w, o)
}
