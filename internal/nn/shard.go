package nn

import (
	"fmt"
	"math/rand"

	"netdrift/internal/par"
)

// ShardedNet runs one network as a fixed set of gradient-shard replicas for
// deterministic data-parallel training.
//
// Replica 0 shares the canonical network's *Param objects outright, so the
// merged gradient lands in the canonical Grad arenas and the existing
// optimizers (whose Adam state is keyed on the canonical *Param pointers)
// work unchanged. Replicas r ≥ 1 share the canonical Data slices — a
// parameter update is immediately visible to every replica — but own fresh
// Grad arenas, giving each shard a private accumulation target.
//
// The determinism contract: the replica count is fixed by configuration
// (never by worker availability), every shard's backward writes only its
// own arena, ReduceGrads merges the arenas with the fixed-shape binary
// tree of par.TreeReduce (elementwise vadd, combine order a pure function
// of the shard index), and FoldBatchStats applies deferred batch-norm
// statistics in shard-index order. The merged gradient, the updated
// parameters, and the running statistics are therefore bit-identical at
// every worker count.
//
// The canonical network must never run a training forward while sharded
// training is active (its scratch is unused; inference between epochs is
// fine). BatchNorm replicas run with deferred statistics (ghost batch
// norm) and need at least two rows per shard — use par.ShardBounds with
// minRows 2.
type ShardedNet struct {
	canonical Layer
	replicas  []Layer
	params    [][]*Param     // per replica, traversal order
	bns       [][]*BatchNorm // per replica, traversal order
	canonBNs  []*BatchNorm
	drops     [][]*Dropout // per replica, traversal order

	combineFn func(dst, src int) // stable closure: ReduceGrads stays alloc-free
}

// NewSharded builds shards replicas of root. Panics when shards < 1 or when
// the network contains a layer type it cannot replicate (custom layers
// outside this package).
func NewSharded(root Layer, shards int) *ShardedNet {
	if shards < 1 {
		panic(fmt.Sprintf("nn: NewSharded with %d shards", shards))
	}
	sn := &ShardedNet{canonical: root}
	walkLayers(root, func(l Layer) {
		if bn, ok := l.(*BatchNorm); ok {
			sn.canonBNs = append(sn.canonBNs, bn)
		}
	})
	for r := 0; r < shards; r++ {
		rep := cloneForShard(root, r == 0)
		sn.replicas = append(sn.replicas, rep)
		sn.params = append(sn.params, rep.Params())
		var bns []*BatchNorm
		var drops []*Dropout
		walkLayers(rep, func(l Layer) {
			switch v := l.(type) {
			case *BatchNorm:
				bns = append(bns, v)
			case *Dropout:
				drops = append(drops, v)
			}
		})
		sn.bns = append(sn.bns, bns)
		sn.drops = append(sn.drops, drops)
	}
	sn.combineFn = func(dst, src int) {
		pd, ps := sn.params[dst], sn.params[src]
		for p := range pd {
			g := ps[p].Grad
			vadd(pd[p].Grad, g)
			for i := range g {
				g[i] = 0
			}
		}
	}
	return sn
}

// Shards returns the replica count.
func (sn *ShardedNet) Shards() int { return len(sn.replicas) }

// Net returns replica r's network.
func (sn *ShardedNet) Net(r int) Layer { return sn.replicas[r] }

// Params returns replica r's parameters in traversal order. For r = 0 these
// are the canonical *Param objects themselves.
func (sn *ShardedNet) Params(r int) []*Param { return sn.params[r] }

// SeedDropouts reseeds every dropout layer of replica r from base, mixing in
// the layer index so stacked dropouts draw distinct streams. Trainers call
// it with a per-(step, phase, shard) seed before each shard forward, making
// mask draws independent of both execution order and worker count.
func (sn *ShardedNet) SeedDropouts(r int, base int64) {
	for i, d := range sn.drops[r] {
		d.rng.Seed(mixSeed(base, i))
	}
}

// ReduceGrads merges the per-shard gradient arenas into the canonical Grad
// slices (replica 0's params) with the fixed-shape tree reduction, zeroing
// every source arena as it is absorbed — after the call, replicas 1..k-1
// hold all-zero grads, ready for the next accumulation. workers only sets
// the parallelism of a level; the combine schedule and the bits of the
// result depend solely on the shard count.
func (sn *ShardedNet) ReduceGrads(workers int) {
	par.TreeReduce(workers, len(sn.replicas), sn.combineFn)
}

// FoldBatchStats applies the deferred batch statistics stashed by the
// replicas' training forwards to the canonical network's running
// statistics, in shard-index order per layer. Replicas whose flag is not
// pending (e.g. a shard that did not run) are skipped.
func (sn *ShardedNet) FoldBatchStats() {
	for j, cbn := range sn.canonBNs {
		for r := range sn.replicas {
			sn.bns[r][j].FoldStatsInto(cbn)
		}
	}
}

// cloneShardParam returns the canonical param itself for replica 0, or a
// Data-sharing copy with a fresh gradient arena otherwise.
func cloneShardParam(p *Param, canonical bool) *Param {
	if canonical {
		return p
	}
	return &Param{Name: p.Name, Data: p.Data, Grad: make([]float64, len(p.Grad))}
}

func cloneForShard(l Layer, canonical bool) Layer {
	switch v := l.(type) {
	case *Network:
		out := &Network{Layers: make([]Layer, len(v.Layers))}
		for i, c := range v.Layers {
			out.Layers[i] = cloneForShard(c, canonical)
		}
		return out
	case *SkipConcat:
		return &SkipConcat{Inner: cloneForShard(v.Inner, canonical)}
	case *Dense:
		return &Dense{
			In:  v.In,
			Out: v.Out,
			w:   cloneShardParam(v.w, canonical),
			b:   cloneShardParam(v.b, canonical),
		}
	case *BatchNorm:
		// Running stats are shared read-only: the replica defers its
		// updates (ghost batch norm) and its training path (≥2 rows) never
		// reads them, so only the canonical layer touches them — outside
		// the parallel sections, during FoldBatchStats.
		return &BatchNorm{
			Dim:         v.Dim,
			Momentum:    v.Momentum,
			Eps:         v.Eps,
			gamma:       cloneShardParam(v.gamma, canonical),
			beta:        cloneShardParam(v.beta, canonical),
			runningMean: v.runningMean,
			runningVar:  v.runningVar,
			mean:        make([]float64, v.Dim),
			vari:        make([]float64, v.Dim),
			std:         make([]float64, v.Dim),
			sumG:        make([]float64, v.Dim),
			sumGX:       make([]float64, v.Dim),
			coef:        make([]float64, v.Dim),
			deferStats:  true,
		}
	case *activation:
		return v.clone()
	case *Dropout:
		// Fresh rng so the shard's mask stream is reseedable per step —
		// the canonical rng's draw sequence must not be disturbed. A
		// splitmix source keeps the per-batch reseed O(1).
		return &Dropout{P: v.P, rng: NewShardRand(0)}
	case *GradReverse:
		return &GradReverse{Lambda: v.Lambda}
	default:
		panic(fmt.Sprintf("nn: ShardedNet cannot replicate layer type %T", l))
	}
}

// mixSeed derives a decorrelated seed from (base, i) with a splitmix64
// finalizer — the same construction core uses for per-sample seeds.
func mixSeed(base int64, i int) int64 {
	z := uint64(base) + uint64(i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// splitMix64Source is a rand.Source64 over the splitmix64 generator. Unlike
// the standard library's default source — whose Seed regenerates a
// 607-element feedback register, far too slow for per-(step, phase, shard)
// reseeding — seeding it is a single store.
type splitMix64Source struct{ state uint64 }

func (s *splitMix64Source) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitMix64Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitMix64Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// NewShardRand returns a *rand.Rand with O(1) reseeding, for shard-local
// random streams (dropout masks, generator noise) that are reseeded per
// (step, phase, shard). The draw sequence differs from rand.NewSource's, so
// it must only feed streams that are part of a new reproducibility key —
// never an existing seeded path.
func NewShardRand(seed int64) *rand.Rand {
	return rand.New(&splitMix64Source{state: uint64(seed)})
}
