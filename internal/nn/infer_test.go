package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// ganLikeNet builds the generator architecture served in production
// (SkipConcat trunk with Dense+BatchNorm+ReLU, dense head, tanh) and runs
// a few training steps so batch-norm running statistics are non-trivial.
func ganLikeNet(t *testing.T, in, hidden, out int) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	trunk := NewNetwork(
		NewDense(in, hidden, rng),
		NewBatchNorm(hidden),
		NewReLU(),
		NewDense(hidden, hidden, rng),
		NewBatchNorm(hidden),
		NewReLU(),
	)
	net := NewNetwork(
		NewSkipConcat(trunk),
		NewDense(hidden+in, out, rng),
		NewTanh(),
	)
	opt := NewAdam(1e-3, 1e-6)
	params := net.Params()
	x := NewTensor(16, in)
	target := NewTensor(16, out)
	var grad Tensor
	for step := 0; step < 5; step++ {
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		for i := range target.Data() {
			target.Data()[i] = rng.NormFloat64()
		}
		o := net.ForwardT(x, true)
		if _, err := MSET(o, target, &grad); err != nil {
			t.Fatal(err)
		}
		net.BackwardT(&grad)
		opt.Step(params)
	}
	return net
}

// TestInferMatchesForwardEval pins the serving contract: Infer is
// bit-identical to eval-mode ForwardT for every batch size, including the
// degenerate single-row batch.
func TestInferMatchesForwardEval(t *testing.T) {
	const in, hidden, out = 13, 24, 7
	net := ganLikeNet(t, in, hidden, out)
	rng := rand.New(rand.NewSource(29))
	var scratch InferScratch
	for _, rows := range []int{1, 2, 7, 32} {
		x := NewTensor(rows, in)
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		want := net.ForwardT(x, false).ToRows()
		got := Infer(net, x, &scratch)
		if got.Rows() != rows || got.Cols() != out {
			t.Fatalf("rows=%d: infer shape %dx%d, want %dx%d", rows, got.Rows(), got.Cols(), rows, out)
		}
		for i := 0; i < rows; i++ {
			for j, w := range want[i] {
				if g := got.At(i, j); g != w {
					t.Fatalf("rows=%d: infer[%d][%d] = %v, forward eval = %v", rows, i, j, g, w)
				}
			}
		}
	}
}

// TestInferDropoutGradReverseIdentity checks the identity layers pass the
// input tensor through untouched (no copy, no arena buffer burned).
func TestInferDropoutGradReverseIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	net := NewNetwork(NewDropout(0.5, rng), &GradReverse{Lambda: 1})
	x := NewTensor(3, 4)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	var s InferScratch
	if got := Infer(net, x, &s); got != x {
		t.Error("identity-only network should return the input tensor")
	}
	if len(s.bufs) != 0 {
		t.Errorf("identity layers burned %d arena buffers", len(s.bufs))
	}
}

// sliceOnlyLayer exercises the compat path: a custom layer without
// InferT support.
type sliceOnlyLayer struct{}

func (sliceOnlyLayer) Forward(x [][]float64, _ bool) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, len(row))
		for j, v := range row {
			o[j] = 2 * v
		}
		out[i] = o
	}
	return out
}
func (sliceOnlyLayer) Backward(g [][]float64) [][]float64 { return g }
func (sliceOnlyLayer) Params() []*Param                   { return nil }

func TestInferCompatPath(t *testing.T) {
	net := NewNetwork(sliceOnlyLayer{})
	x := NewTensor(2, 3)
	for i := range x.Data() {
		x.Data()[i] = float64(i)
	}
	var s InferScratch
	got := Infer(net, x, &s)
	for i := range x.Data() {
		if got.Data()[i] != 2*float64(i) {
			t.Fatalf("compat infer[%d] = %v, want %v", i, got.Data()[i], 2*float64(i))
		}
	}
}

// TestInferConcurrent runs many goroutines through one shared network,
// each with its own arena, and checks every result equals the sequential
// reference. Under -race this also proves Infer never writes the network.
func TestInferConcurrent(t *testing.T) {
	const in, hidden, out = 10, 16, 5
	net := ganLikeNet(t, in, hidden, out)
	rng := rand.New(rand.NewSource(41))
	x := NewTensor(8, in)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	var ref InferScratch
	want := Infer(net, x, &ref).ToRows()

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s InferScratch
			for iter := 0; iter < 50; iter++ {
				got := Infer(net, x, &s)
				for i := range want {
					for j, w := range want[i] {
						if got.At(i, j) != w {
							select {
							case errs <- "concurrent infer diverged from sequential reference":
							default:
							}
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// TestInferSteadyStateAllocs is the serving-path allocation gate: after
// warm-up, a batch forward through the GAN-shaped network must not
// allocate at all.
func TestInferSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under the race detector")
	}
	const in, hidden, out = 13, 24, 7
	net := ganLikeNet(t, in, hidden, out)
	rng := rand.New(rand.NewSource(3))
	x := NewTensor(32, in)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	var s InferScratch
	step := func() { Infer(net, x, &s) }
	step() // grow the arena
	step()
	if avg := testing.AllocsPerRun(50, step); avg > 0 {
		t.Errorf("steady-state inference forward allocates %.2f/op, want 0", avg)
	}
}

// BenchmarkInferForward reports the inference-only batch forward cost;
// run with -benchmem to watch the zero-allocation budget.
func BenchmarkInferForward(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	trunk := NewNetwork(
		NewDense(64, 128, rng),
		NewBatchNorm(128),
		NewReLU(),
		NewDense(128, 128, rng),
		NewBatchNorm(128),
		NewReLU(),
	)
	net := NewNetwork(
		NewSkipConcat(trunk),
		NewDense(128+64, 48, rng),
		NewTanh(),
	)
	x := NewTensor(32, 64)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	var s InferScratch
	Infer(net, x, &s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Infer(net, x, &s)
	}
}
