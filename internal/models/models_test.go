package models

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"netdrift/internal/nn"
)

func blobs(n, d, k int, sep float64, rng *rand.Rand) ([][]float64, []int) {
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % k
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[c%d] += sep
		x[i] = row
		y[i] = c
	}
	return x, y
}

func testAccuracy(t *testing.T, c Classifier, x [][]float64, y []int) float64 {
	t.Helper()
	pred, err := PredictClasses(c, x)
	if err != nil {
		t.Fatal(err)
	}
	var correct int
	for i := range pred {
		if pred[i] == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(y))
}

func TestAllClassifierFamiliesLearn(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y := blobs(400, 8, 3, 4, rng)
	xTest, yTest := blobs(150, 8, 3, 4, rng)
	for _, kind := range AllKinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			c, err := New(kind, Options{Seed: 7, Epochs: 20, Trees: 25})
			if err != nil {
				t.Fatal(err)
			}
			if c.Name() != kind.String() {
				t.Errorf("Name = %q; want %q", c.Name(), kind.String())
			}
			if err := c.Fit(x, y, 3); err != nil {
				t.Fatal(err)
			}
			if acc := testAccuracy(t, c, xTest, yTest); acc < 0.9 {
				t.Errorf("%s test accuracy = %v; want >= 0.9", kind, acc)
			}
		})
	}
}

func TestPredictBeforeFit(t *testing.T) {
	for _, kind := range AllKinds() {
		c, err := New(kind, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.PredictProba([][]float64{{1, 2}}); !errors.Is(err, ErrNotFitted) {
			t.Errorf("%s: err = %v; want ErrNotFitted", kind, err)
		}
	}
}

func TestFitValidation(t *testing.T) {
	c := NewMLPClassifier(Options{Epochs: 1})
	if err := c.Fit(nil, nil, 2); err == nil {
		t.Error("expected error for empty training set")
	}
	if err := c.Fit([][]float64{{1}}, []int{0, 1}, 2); err == nil {
		t.Error("expected error for length mismatch")
	}
	if err := c.Fit([][]float64{{1}}, []int{5}, 2); err == nil {
		t.Error("expected error for out-of-range label")
	}
	if err := c.Fit([][]float64{{1}}, []int{0}, 1); err == nil {
		t.Error("expected error for single class")
	}
}

func TestPredictWidthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y := blobs(60, 4, 2, 4, rng)
	c := NewMLPClassifier(Options{Seed: 1, Epochs: 3})
	if err := c.Fit(x, y, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PredictProba([][]float64{{1, 2}}); err == nil {
		t.Error("expected width mismatch error")
	}
}

func TestProbabilitiesNormalized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y := blobs(120, 5, 3, 3, rng)
	for _, kind := range AllKinds() {
		c, _ := New(kind, Options{Seed: 5, Epochs: 5, Trees: 10})
		if err := c.Fit(x, y, 3); err != nil {
			t.Fatal(err)
		}
		probs, err := c.PredictProba(x[:10])
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range probs {
			var s float64
			for _, v := range p {
				if v < -1e-12 {
					t.Errorf("%s: negative probability %v", kind, v)
				}
				s += v
			}
			if math.Abs(s-1) > 1e-6 {
				t.Errorf("%s row %d: probs sum to %v", kind, i, s)
			}
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, y := blobs(100, 4, 2, 3, rng)
	for _, kind := range AllKinds() {
		a, _ := New(kind, Options{Seed: 42, Epochs: 4, Trees: 8})
		b, _ := New(kind, Options{Seed: 42, Epochs: 4, Trees: 8})
		if err := a.Fit(x, y, 2); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(x, y, 2); err != nil {
			t.Fatal(err)
		}
		pa, _ := a.PredictProba(x[:5])
		pb, _ := b.PredictProba(x[:5])
		for i := range pa {
			for j := range pa[i] {
				if pa[i][j] != pb[i][j] {
					t.Fatalf("%s: same seed produced different predictions", kind)
				}
			}
		}
	}
}

func TestFeatureGateGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gate := NewFeatureGate(3, rng)
	head := nn.NewDense(3, 2, rng)
	net := nn.NewNetwork(gate, nn.NewTanh(), head)
	x := [][]float64{{0.4, -0.8, 0.3}, {-0.2, 0.9, -0.5}}
	y := []int{0, 1}

	lossFn := func() float64 {
		out := net.Forward(x, true)
		l, _, _ := nn.SoftmaxCE(out, y)
		return l
	}
	nn.ZeroGrads(net.Params())
	out := net.Forward(x, true)
	_, g, _ := nn.SoftmaxCE(out, y)
	net.Backward(g)

	const h = 1e-5
	for _, p := range gate.Params() {
		for i := range p.Data {
			orig := p.Data[i]
			p.Data[i] = orig + h
			lp := lossFn()
			p.Data[i] = orig - h
			lm := lossFn()
			p.Data[i] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(p.Grad[i]-want) > 1e-5*(1+math.Abs(want)) {
				t.Errorf("%s[%d]: grad = %v; numerical %v", p.Name, i, p.Grad[i], want)
			}
		}
	}
}

func TestFeatureGateInputGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	gate := NewFeatureGate(3, rng)
	x := [][]float64{{0.4, -0.8, 0.3}}
	target := [][]float64{{0.1, 0.2, -0.3}}
	lossFn := func() float64 {
		out := gate.Forward(x, true)
		l, _, _ := nn.MSE(out, target)
		return l
	}
	out := gate.Forward(x, true)
	_, g, _ := nn.MSE(out, target)
	gin := gate.Backward(g)
	const h = 1e-5
	for j := range x[0] {
		orig := x[0][j]
		x[0][j] = orig + h
		lp := lossFn()
		x[0][j] = orig - h
		lm := lossFn()
		x[0][j] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(gin[0][j]-want) > 1e-5*(1+math.Abs(want)) {
			t.Errorf("input grad[%d] = %v; numerical %v", j, gin[0][j], want)
		}
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Kind(99), Options{}); err == nil {
		t.Error("expected error for unknown kind")
	}
}
