package models

import (
	"fmt"
	"math/rand"

	"netdrift/internal/nn"
)

// MLPClassifier is a plain two-hidden-layer perceptron trained with Adam.
type MLPClassifier struct {
	opts Options

	net        *nn.Network
	numClasses int
	in         int
}

var _ Classifier = (*MLPClassifier)(nil)

// NewMLPClassifier creates an untrained MLP classifier.
func NewMLPClassifier(opts Options) *MLPClassifier {
	if opts.Epochs == 0 {
		opts.Epochs = 30
	}
	return &MLPClassifier{opts: opts}
}

// Name implements Classifier.
func (m *MLPClassifier) Name() string { return "MLP" }

// Fit trains the network with softmax cross-entropy.
func (m *MLPClassifier) Fit(x [][]float64, y []int, numClasses int) error {
	if err := validateFit(x, y, numClasses); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(m.opts.Seed))
	m.in = len(x[0])
	m.numClasses = numClasses
	m.net = nn.NewMLP(nn.MLPConfig{
		In:      m.in,
		Hidden:  []int{128, 64},
		Out:     numClasses,
		Dropout: 0.1,
		Rng:     rng,
	})
	return trainSoftmaxNet(m.net, x, y, m.opts.Epochs, 64, 1e-3, rng)
}

// PredictProba implements Classifier.
func (m *MLPClassifier) PredictProba(x [][]float64) ([][]float64, error) {
	if m.net == nil {
		return nil, ErrNotFitted
	}
	return softmaxForward(m.net, x, m.in)
}

// trainSoftmaxNet runs standard minibatch training with Adam.
func trainSoftmaxNet(net *nn.Network, x [][]float64, y []int, epochs, batch int, lr float64, rng *rand.Rand) error {
	opt := nn.NewAdam(lr, 1e-5)
	params := net.Params()
	for epoch := 0; epoch < epochs; epoch++ {
		for _, idx := range nn.Minibatches(len(x), batch, rng) {
			bx := nn.Gather(x, idx)
			by := nn.GatherLabels(y, idx)
			out := net.Forward(bx, true)
			_, grad, err := nn.SoftmaxCE(out, by)
			if err != nil {
				return fmt.Errorf("models: epoch %d: %w", epoch, err)
			}
			net.Backward(grad)
			opt.Step(params)
		}
	}
	return nil
}

func softmaxForward(net *nn.Network, x [][]float64, wantIn int) ([][]float64, error) {
	if len(x) == 0 {
		return nil, nil
	}
	if len(x[0]) != wantIn {
		return nil, fmt.Errorf("models: input width %d, trained on %d", len(x[0]), wantIn)
	}
	logits := net.Forward(x, false)
	out := make([][]float64, len(logits))
	for i, row := range logits {
		out[i] = nn.Softmax(row)
	}
	return out, nil
}
