package models

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"

	"netdrift/internal/nn"
)

// MLP persistence mirrors the adapter format in internal/core/persist.go:
// record the architecture config plus a positional weight snapshot, rebuild
// the same network shape on load, then restore the snapshot over it. Only
// the MLP classifier is serializable — it is the downstream model the
// serving endpoint ships with a bundle.

const mlpPersistVersion = 1

type mlpBlob struct {
	Version    int          `json:"version"`
	In         int          `json:"in"`
	Hidden     []int        `json:"hidden"`
	NumClasses int          `json:"numClasses"`
	Dropout    float64      `json:"dropout"`
	Seed       int64        `json:"seed"`
	Snapshot   *nn.Snapshot `json:"snapshot"`
}

// Save serializes a fitted MLP classifier as JSON.
func (m *MLPClassifier) Save(w io.Writer) error {
	blob, err := m.saveBlob()
	if err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(blob)
}

// saveBlob assembles the persistence blob shared by the JSON and binary
// codecs, so both formats serialize exactly the same state.
func (m *MLPClassifier) saveBlob() (*mlpBlob, error) {
	if m.net == nil {
		return nil, ErrNotFitted
	}
	return &mlpBlob{
		Version:    mlpPersistVersion,
		In:         m.in,
		Hidden:     []int{128, 64}, // fixed by Fit
		NumClasses: m.numClasses,
		Dropout:    0.1,
		Seed:       m.opts.Seed,
		Snapshot:   nn.TakeSnapshot(m.net),
	}, nil
}

// LoadMLPClassifier restores a classifier saved with Save. The result
// supports PredictProba and PredictProbaT; it can be re-Fit, which replaces
// the restored network.
func LoadMLPClassifier(r io.Reader) (*MLPClassifier, error) {
	var blob mlpBlob
	if err := json.NewDecoder(r).Decode(&blob); err != nil {
		return nil, fmt.Errorf("models: decode classifier: %w", err)
	}
	return mlpFromBlob(&blob)
}

// mlpFromBlob rebuilds a classifier from its persistence blob — the one
// assembly path shared by the JSON and binary codecs.
func mlpFromBlob(blob *mlpBlob) (*MLPClassifier, error) {
	if blob.Version != mlpPersistVersion {
		return nil, fmt.Errorf("models: unsupported classifier version %d", blob.Version)
	}
	if blob.In <= 0 || blob.NumClasses <= 0 {
		return nil, fmt.Errorf("models: invalid classifier dims in=%d classes=%d", blob.In, blob.NumClasses)
	}
	m := NewMLPClassifier(Options{Seed: blob.Seed})
	m.in = blob.In
	m.numClasses = blob.NumClasses
	// Architecture must match Fit exactly; the snapshot restore overwrites
	// the random initialization.
	m.net = nn.NewMLP(nn.MLPConfig{
		In:      blob.In,
		Hidden:  append([]int(nil), blob.Hidden...),
		Out:     blob.NumClasses,
		Dropout: blob.Dropout,
		Rng:     rand.New(rand.NewSource(blob.Seed)),
	})
	if blob.Snapshot == nil {
		return nil, fmt.Errorf("models: classifier blob missing snapshot")
	}
	if err := nn.RestoreSnapshot(m.net, blob.Snapshot); err != nil {
		return nil, fmt.Errorf("models: restore classifier: %w", err)
	}
	return m, nil
}

// MLPScratch holds per-worker buffers for PredictProbaT. One scratch serves
// one call at a time; the zero value is ready to use.
type MLPScratch struct {
	infer nn.InferScratch
	out   nn.Tensor
}

// PredictProbaT is PredictProba on the serving hot path: inference-only
// forward over caller-owned scratch, softmax written in place. Unlike
// PredictProba it is safe to call from many goroutines on one classifier,
// each with its own scratch, and a steady-state call allocates nothing.
// The returned tensor is scratch-owned and valid until the scratch's next
// use. Bit-identical to PredictProba.
func (m *MLPClassifier) PredictProbaT(x *nn.Tensor, scr *MLPScratch) (*nn.Tensor, error) {
	if m.net == nil {
		return nil, ErrNotFitted
	}
	if x.Rows() == 0 {
		return scr.out.Reset(0, 0), nil
	}
	if x.Cols() != m.in {
		return nil, fmt.Errorf("models: input width %d, trained on %d", x.Cols(), m.in)
	}
	logits := nn.Infer(m.net, x, &scr.infer)
	out := scr.out.Reset(logits.Rows(), logits.Cols())
	for i := 0; i < logits.Rows(); i++ {
		nn.SoftmaxInto(out.Row(i), logits.Row(i))
	}
	return out, nil
}
