package models

import (
	"bytes"
	"math/rand"
	"testing"

	"netdrift/internal/nn"
)

func fitToyMLP(t *testing.T) (*MLPClassifier, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	x := make([][]float64, 200)
	y := make([]int, 200)
	for i := range x {
		c := i % 3
		x[i] = []float64{
			float64(c) + 0.3*rng.NormFloat64(),
			float64(c)*0.5 + 0.3*rng.NormFloat64(),
			rng.NormFloat64(),
		}
		y[i] = c
	}
	m := NewMLPClassifier(Options{Seed: 3, Epochs: 5})
	if err := m.Fit(x, y, 3); err != nil {
		t.Fatal(err)
	}
	return m, x[:16]
}

func TestMLPSaveLoadRoundTrip(t *testing.T) {
	m, probe := fitToyMLP(t)
	want, err := m.PredictProba(probe)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadMLPClassifier(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.PredictProba(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("loaded classifier diverges at [%d][%d]: %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}

	unfit := NewMLPClassifier(Options{})
	if err := unfit.Save(&buf); err != ErrNotFitted {
		t.Errorf("saving unfitted classifier: err = %v, want ErrNotFitted", err)
	}
	if _, err := LoadMLPClassifier(bytes.NewReader([]byte(`{"version":99}`))); err == nil {
		t.Error("expected version error")
	}
}

func TestPredictProbaTMatchesPredictProba(t *testing.T) {
	m, probe := fitToyMLP(t)
	want, err := m.PredictProba(probe)
	if err != nil {
		t.Fatal(err)
	}
	var x nn.Tensor
	x.SetFromRows(probe)
	var scr MLPScratch
	out, err := m.PredictProbaT(&x, &scr)
	if err != nil {
		t.Fatal(err)
	}
	if out.Rows() != len(want) || out.Cols() != len(want[0]) {
		t.Fatalf("shape %dx%d, want %dx%d", out.Rows(), out.Cols(), len(want), len(want[0]))
	}
	for i := range want {
		for j := range want[i] {
			if out.Row(i)[j] != want[i][j] {
				t.Fatalf("PredictProbaT diverges at [%d][%d]: %v vs %v", i, j, out.Row(i)[j], want[i][j])
			}
		}
	}

	// Width mismatch and unfitted errors.
	var narrow nn.Tensor
	narrow.Reset(1, 2)
	if _, err := m.PredictProbaT(&narrow, &scr); err == nil {
		t.Error("expected width mismatch error")
	}
	unfit := NewMLPClassifier(Options{})
	if _, err := unfit.PredictProbaT(&x, &scr); err != ErrNotFitted {
		t.Errorf("unfitted PredictProbaT: err = %v, want ErrNotFitted", err)
	}
}
