// Package models exposes the four classifier families of the paper's
// Table I — TNet (a gated deep tabular network), MLP, random forest, and
// gradient-boosted trees — behind a single Classifier interface, keeping
// every domain-adaptation method in this library model-agnostic.
package models

import (
	"errors"
	"fmt"
)

// Kind identifies a classifier family.
type Kind int

// Classifier families used in Table I.
const (
	KindTNet Kind = iota + 1
	KindMLP
	KindRF
	KindXGB
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTNet:
		return "TNet"
	case KindMLP:
		return "MLP"
	case KindRF:
		return "RF"
	case KindXGB:
		return "XGB"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// AllKinds lists the classifier families in the paper's column order.
func AllKinds() []Kind { return []Kind{KindTNet, KindMLP, KindRF, KindXGB} }

// ErrNotFitted is returned when predicting before Fit.
var ErrNotFitted = errors.New("models: classifier not fitted")

// Classifier is a trainable multi-class probabilistic classifier.
type Classifier interface {
	// Fit trains on rows x with labels y over numClasses classes.
	Fit(x [][]float64, y []int, numClasses int) error
	// PredictProba returns per-class probabilities for each row.
	PredictProba(x [][]float64) ([][]float64, error)
	// Name identifies the classifier for reports.
	Name() string
}

// PredictClasses runs PredictProba and takes the argmax per row.
func PredictClasses(c Classifier, x [][]float64) ([]int, error) {
	probs, err := c.PredictProba(x)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(probs))
	for i, row := range probs {
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out, nil
}

// Options tune classifier capacity/compute. Zero values select defaults
// appropriate for the paper-scale datasets.
type Options struct {
	Seed   int64
	Epochs int // neural models only
	Trees  int // ensemble models only
}

// New constructs a classifier of the given kind.
func New(kind Kind, opts Options) (Classifier, error) {
	switch kind {
	case KindTNet:
		return NewTNet(opts), nil
	case KindMLP:
		return NewMLPClassifier(opts), nil
	case KindRF:
		return NewForestClassifier(opts), nil
	case KindXGB:
		return NewBoostClassifier(opts), nil
	default:
		return nil, fmt.Errorf("models: unknown kind %d", int(kind))
	}
}

func validateFit(x [][]float64, y []int, numClasses int) error {
	if len(x) == 0 {
		return errors.New("models: empty training set")
	}
	if len(x) != len(y) {
		return fmt.Errorf("models: %d rows but %d labels", len(x), len(y))
	}
	if numClasses < 2 {
		return fmt.Errorf("models: numClasses %d must be >= 2", numClasses)
	}
	for i, v := range y {
		if v < 0 || v >= numClasses {
			return fmt.Errorf("models: label %d at row %d out of range [0,%d)", v, i, numClasses)
		}
	}
	return nil
}
