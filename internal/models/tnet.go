package models

import (
	"fmt"
	"math"
	"math/rand"

	"netdrift/internal/nn"
)

// FeatureGate is an input-conditioned elementwise gate with a low-rank
// gating map:
//
//	u = W1·x,  z = W2·u + b,  y = x ⊙ σ(z)
//
// It lets the network softly select informative telemetry columns per
// sample — the mechanism that makes TNet a *tabular* architecture rather
// than a plain MLP (attention-like feature selection, cf. TabNet/TabularNet
// designs). The rank-R factorization keeps the gate O(d·R) instead of
// O(d²), which matters on 442-feature telemetry.
type FeatureGate struct {
	Dim  int
	Rank int

	w1, w2, b *nn.Param // w1: Rank×Dim, w2: Dim×Rank

	input [][]float64
	sig   [][]float64
	u     [][]float64
}

var _ nn.Layer = (*FeatureGate)(nil)

// NewFeatureGate creates a gate over dim features with a default rank of
// min(32, dim).
func NewFeatureGate(dim int, rng *rand.Rand) *FeatureGate {
	rank := 32
	if rank > dim {
		rank = dim
	}
	g := &FeatureGate{
		Dim:  dim,
		Rank: rank,
		w1:   nn.NewParam(fmt.Sprintf("gate%d.w1", dim), rank*dim),
		w2:   nn.NewParam(fmt.Sprintf("gate%d.w2", dim), dim*rank),
		b:    nn.NewParam(fmt.Sprintf("gate%d.b", dim), dim),
	}
	lim1 := math.Sqrt(6.0 / float64(dim))
	for i := range g.w1.Data {
		g.w1.Data[i] = (rng.Float64()*2 - 1) * lim1
	}
	lim2 := math.Sqrt(6.0/float64(rank)) * 0.5
	for i := range g.w2.Data {
		g.w2.Data[i] = (rng.Float64()*2 - 1) * lim2
	}
	// Bias the gates open initially so early training sees all features.
	for i := range g.b.Data {
		g.b.Data[i] = 1
	}
	return g
}

// Forward applies the gate to a batch.
func (g *FeatureGate) Forward(x [][]float64, _ bool) [][]float64 {
	g.input = x
	g.sig = make([][]float64, len(x))
	g.u = make([][]float64, len(x))
	out := make([][]float64, len(x))
	for i, row := range x {
		u := make([]float64, g.Rank)
		for j, v := range row {
			if v == 0 {
				continue
			}
			for m := 0; m < g.Rank; m++ {
				u[m] += g.w1.Data[m*g.Dim+j] * v
			}
		}
		z := make([]float64, g.Dim)
		copy(z, g.b.Data)
		for k := 0; k < g.Dim; k++ {
			w2Row := g.w2.Data[k*g.Rank : (k+1)*g.Rank]
			var s float64
			for m, um := range u {
				s += w2Row[m] * um
			}
			z[k] += s
		}
		s := make([]float64, g.Dim)
		o := make([]float64, g.Dim)
		for k := range z {
			s[k] = 1 / (1 + math.Exp(-z[k]))
			o[k] = row[k] * s[k]
		}
		g.u[i] = u
		g.sig[i] = s
		out[i] = o
	}
	return out
}

// Backward propagates through both the multiplicative path and the low-rank
// gate map.
func (g *FeatureGate) Backward(gradOut [][]float64) [][]float64 {
	gradIn := make([][]float64, len(gradOut))
	for i, gRow := range gradOut {
		x := g.input[i]
		s := g.sig[i]
		u := g.u[i]
		// dL/dz_k = gRow[k]·x_k·s_k(1-s_k)
		dz := make([]float64, g.Dim)
		for k := range dz {
			dz[k] = gRow[k] * x[k] * s[k] * (1 - s[k])
			g.b.Grad[k] += dz[k]
		}
		// du = W2ᵀ·dz; dW2[k][m] = dz_k·u_m
		du := make([]float64, g.Rank)
		for k, dzk := range dz {
			if dzk == 0 {
				continue
			}
			w2Row := g.w2.Data[k*g.Rank : (k+1)*g.Rank]
			gw2Row := g.w2.Grad[k*g.Rank : (k+1)*g.Rank]
			for m := 0; m < g.Rank; m++ {
				du[m] += dzk * w2Row[m]
				gw2Row[m] += dzk * u[m]
			}
		}
		// dW1[m][j] = du_m·x_j; dx_j += Σ_m du_m·W1[m][j]
		gi := make([]float64, g.Dim)
		for j := range gi {
			gi[j] = gRow[j] * s[j]
		}
		for m, dum := range du {
			if dum == 0 {
				continue
			}
			w1Row := g.w1.Data[m*g.Dim : (m+1)*g.Dim]
			gw1Row := g.w1.Grad[m*g.Dim : (m+1)*g.Dim]
			for j := 0; j < g.Dim; j++ {
				gi[j] += dum * w1Row[j]
				gw1Row[j] += dum * x[j]
			}
		}
		gradIn[i] = gi
	}
	return gradIn
}

// Params returns the gate weights.
func (g *FeatureGate) Params() []*nn.Param { return []*nn.Param{g.w1, g.w2, g.b} }

// TNet is the deep tabular classifier used as the strongest model family in
// Table I: a feature gate followed by a batch-normalized MLP trunk.
type TNet struct {
	opts Options

	net        *nn.Network
	numClasses int
	in         int
}

var _ Classifier = (*TNet)(nil)

// NewTNet creates an untrained TNet.
func NewTNet(opts Options) *TNet {
	if opts.Epochs == 0 {
		opts.Epochs = 35
	}
	return &TNet{opts: opts}
}

// Name implements Classifier.
func (t *TNet) Name() string { return "TNet" }

// Fit trains the gated tabular network.
func (t *TNet) Fit(x [][]float64, y []int, numClasses int) error {
	if err := validateFit(x, y, numClasses); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(t.opts.Seed))
	t.in = len(x[0])
	t.numClasses = numClasses
	t.net = nn.NewNetwork(
		NewFeatureGate(t.in, rng),
		nn.NewDense(t.in, 128, rng),
		nn.NewBatchNorm(128),
		nn.NewReLU(),
		nn.NewDropout(0.1, rng),
		nn.NewDense(128, 64, rng),
		nn.NewBatchNorm(64),
		nn.NewReLU(),
		nn.NewDense(64, numClasses, rng),
	)
	return trainSoftmaxNet(t.net, x, y, t.opts.Epochs, 64, 1e-3, rng)
}

// PredictProba implements Classifier.
func (t *TNet) PredictProba(x [][]float64) ([][]float64, error) {
	if t.net == nil {
		return nil, ErrNotFitted
	}
	return softmaxForward(t.net, x, t.in)
}
