package models

import (
	"bytes"
	"testing"

	"netdrift/internal/binenc"
)

// TestMLPBinaryRoundTripMatchesJSON pins the cross-codec contract: a
// classifier loaded from its binary encoding re-serializes to exactly the
// same JSON as one loaded from its JSON encoding, and both predict
// identically bit for bit.
func TestMLPBinaryRoundTripMatchesJSON(t *testing.T) {
	m, probe := fitToyMLP(t)

	bin, err := m.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadMLPClassifierBinary(binenc.NewReader(bin))
	if err != nil {
		t.Fatal(err)
	}
	var jsonBuf bytes.Buffer
	if err := m.Save(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := LoadMLPClassifier(&jsonBuf)
	if err != nil {
		t.Fatal(err)
	}

	var a, b bytes.Buffer
	if err := fromBin.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := fromJSON.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("binary-loaded classifier re-saves to different JSON than JSON-loaded classifier")
	}

	want, err := m.PredictProba(probe)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fromBin.PredictProba(probe)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("binary-loaded prediction differs at [%d][%d]: %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}

	unfit := NewMLPClassifier(Options{})
	if _, err := unfit.AppendBinary(nil); err != ErrNotFitted {
		t.Errorf("encoding unfitted classifier: err = %v, want ErrNotFitted", err)
	}
}

// TestLoadMLPClassifierBinaryMalformed feeds truncations plus a forged dim
// header; every case must fail with an error, never panic or misload.
func TestLoadMLPClassifierBinaryMalformed(t *testing.T) {
	m, _ := fitToyMLP(t)
	bin, err := m.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, 2, 4, 16, len(bin) / 2, len(bin) - 1} {
		if _, err := LoadMLPClassifierBinary(binenc.NewReader(bin[:cut])); err == nil {
			t.Errorf("truncation at %d bytes loaded successfully", cut)
		}
	}
	bad := append([]byte(nil), bin...)
	bad[0] = 99 // version
	if _, err := LoadMLPClassifierBinary(binenc.NewReader(bad)); err == nil {
		t.Error("bad version loaded successfully")
	}
	bad = append([]byte(nil), bin...)
	bad[2] = 200 // declared input width no longer matches the snapshot
	if _, err := LoadMLPClassifierBinary(binenc.NewReader(bad)); err == nil {
		t.Error("forged input width loaded successfully")
	}
}
