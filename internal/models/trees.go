package models

import (
	"netdrift/internal/tree"
)

// ForestClassifier adapts tree.RandomForest to the Classifier interface.
type ForestClassifier struct {
	opts Options
	rf   *tree.RandomForest
}

var _ Classifier = (*ForestClassifier)(nil)

// NewForestClassifier creates an untrained random forest.
func NewForestClassifier(opts Options) *ForestClassifier {
	if opts.Trees == 0 {
		opts.Trees = 80
	}
	return &ForestClassifier{opts: opts}
}

// Name implements Classifier.
func (f *ForestClassifier) Name() string { return "RF" }

// Fit trains the forest.
func (f *ForestClassifier) Fit(x [][]float64, y []int, numClasses int) error {
	if err := validateFit(x, y, numClasses); err != nil {
		return err
	}
	rf, err := tree.FitRandomForest(x, y, numClasses, tree.ForestConfig{
		NumTrees: f.opts.Trees,
		MaxDepth: 16,
		Seed:     f.opts.Seed,
	})
	if err != nil {
		return err
	}
	f.rf = rf
	return nil
}

// PredictProba implements Classifier.
func (f *ForestClassifier) PredictProba(x [][]float64) ([][]float64, error) {
	if f.rf == nil {
		return nil, ErrNotFitted
	}
	return f.rf.PredictProba(x)
}

// BoostClassifier adapts tree.GradientBoosting to the Classifier interface.
type BoostClassifier struct {
	opts Options
	gb   *tree.GradientBoosting
}

var _ Classifier = (*BoostClassifier)(nil)

// NewBoostClassifier creates an untrained boosted-tree classifier.
func NewBoostClassifier(opts Options) *BoostClassifier {
	if opts.Trees == 0 {
		opts.Trees = 40 // boosting rounds
	}
	return &BoostClassifier{opts: opts}
}

// Name implements Classifier.
func (b *BoostClassifier) Name() string { return "XGB" }

// Fit trains the boosted ensemble.
func (b *BoostClassifier) Fit(x [][]float64, y []int, numClasses int) error {
	if err := validateFit(x, y, numClasses); err != nil {
		return err
	}
	gb, err := tree.FitGradientBoosting(x, y, numClasses, tree.BoostConfig{
		Rounds:   b.opts.Trees,
		MaxDepth: 5,
		Seed:     b.opts.Seed,
	})
	if err != nil {
		return err
	}
	b.gb = gb
	return nil
}

// PredictProba implements Classifier.
func (b *BoostClassifier) PredictProba(x [][]float64) ([][]float64, error) {
	if b.gb == nil {
		return nil, ErrNotFitted
	}
	return b.gb.PredictProba(x)
}
