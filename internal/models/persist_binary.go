package models

import (
	"fmt"

	"netdrift/internal/binenc"
	"netdrift/internal/nn"
)

// Binary classifier persistence: the flat little-endian counterpart of the
// JSON blob in persist.go. Both codecs serialize the identical blob and
// rebuild through the same mlpFromBlob path, so a bundle loads to
// bit-identical state regardless of which format carried it.
//
// Layout (little-endian; slices are u32-count-prefixed, see binenc):
//
//	u16 version
//	u32 in, i32 hidden[], u32 numClasses
//	f64 dropout, i64 seed
//	snapshot (nn.AppendSnapshot)

// AppendBinary appends the classifier's binary encoding to dst. Like Save
// it requires a fitted classifier.
func (m *MLPClassifier) AppendBinary(dst []byte) ([]byte, error) {
	blob, err := m.saveBlob()
	if err != nil {
		return dst, err
	}
	dst = binenc.AppendU16(dst, uint16(blob.Version))
	dst = binenc.AppendU32(dst, uint32(blob.In))
	dst = binenc.AppendI32s(dst, blob.Hidden)
	dst = binenc.AppendU32(dst, uint32(blob.NumClasses))
	dst = binenc.AppendF64(dst, blob.Dropout)
	dst = binenc.AppendI64(dst, blob.Seed)
	dst = nn.AppendSnapshot(dst, blob.Snapshot)
	return dst, nil
}

// LoadMLPClassifierBinary decodes a classifier written by AppendBinary from
// r. Malformed input (truncation, overflowing counts, non-finite weights)
// fails with a typed error and never panics.
func LoadMLPClassifierBinary(r *binenc.Reader) (*MLPClassifier, error) {
	var blob mlpBlob
	blob.Version = int(r.U16())
	blob.In = int(r.U32())
	blob.Hidden = r.I32s()
	blob.NumClasses = int(r.U32())
	blob.Dropout = r.F64()
	blob.Seed = r.I64()
	snap, err := nn.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("models: decode classifier: %w", err)
	}
	blob.Snapshot = snap
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("models: decode classifier: %w", err)
	}
	if err := validateMLPBlobDims(&blob); err != nil {
		return nil, err
	}
	return mlpFromBlob(&blob)
}

// maxPersistDim bounds every network dimension a binary blob may declare,
// mirroring the adapter-side cap in internal/core.
const maxPersistDim = 1 << 20

// validateMLPBlobDims cross-checks the declared architecture against the
// decoded snapshot BEFORE any network of that shape is allocated: each
// weight matrix must be backed by the payload that carried it, so a hostile
// header cannot demand a rebuild larger than the input itself paid for. The
// expected param order mirrors nn.NewMLP exactly — per hidden layer a Dense
// w/b pair (ReLU and Dropout carry no params), then the output Dense w/b.
func validateMLPBlobDims(blob *mlpBlob) error {
	if blob.In <= 0 || blob.In > maxPersistDim ||
		blob.NumClasses <= 0 || blob.NumClasses > maxPersistDim ||
		len(blob.Hidden) > 64 {
		return fmt.Errorf("models: decode classifier: dims in=%d classes=%d hidden=%d out of range",
			blob.In, blob.NumClasses, len(blob.Hidden))
	}
	for _, h := range blob.Hidden {
		if h <= 0 || h > maxPersistDim {
			return fmt.Errorf("models: decode classifier: hidden width %d out of range", h)
		}
	}
	widths := append(append([]int{blob.In}, blob.Hidden...), blob.NumClasses)
	p := blob.Snapshot.Params
	if len(p) != 2*(len(widths)-1) {
		return fmt.Errorf("models: decode classifier: snapshot has %d params, want %d", len(p), 2*(len(widths)-1))
	}
	for i := 0; i+1 < len(widths); i++ {
		if len(p[2*i]) != widths[i]*widths[i+1] || len(p[2*i+1]) != widths[i+1] {
			return fmt.Errorf("models: decode classifier: snapshot shape does not match declared dims at layer %d", i)
		}
	}
	return nil
}
