// Package monitor implements online drift detection over telemetry
// streams. The paper notes (§VI-D) that FS and the GAN only need re-running
// when the data distribution shifts again, and that such refreshes are
// "infrequently triggered"; this package supplies the trigger: it compares
// windows of incoming (unlabelled) telemetry against a source-domain
// reference using per-feature two-sample statistics and raises a drift
// signal when enough features depart.
package monitor

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"netdrift/internal/obs"
	"netdrift/internal/stats"
)

// ErrNotFitted is returned when the detector is used before Fit.
var ErrNotFitted = errors.New("monitor: detector not fitted")

// ErrRowWidth is wrapped by Fit and Check when a row's feature count does
// not match the fitted reference width (narrower or wider). Callers
// distinguish malformed telemetry from detector misuse with errors.Is.
var ErrRowWidth = errors.New("monitor: row width mismatch")

// ErrNonFinite is wrapped by Fit and Check when a value is NaN or ±Inf.
// NaN does not order, so letting one into the sorted empirical CDFs or
// PSI bins would silently corrupt every statistic in the window; the
// boundary rejects it instead.
var ErrNonFinite = errors.New("monitor: non-finite value")

// validateRows rejects ragged and non-finite rows before any statistic
// touches them. what names the input ("reference" or "window") in errors.
func validateRows(rows [][]float64, width int, what string) error {
	for i, row := range rows {
		if len(row) != width {
			return fmt.Errorf("%w: %s row %d has %d features, want %d",
				ErrRowWidth, what, i, len(row), width)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: %s row %d, feature %d", ErrNonFinite, what, i, j)
			}
		}
	}
	return nil
}

// Config tunes the drift detector.
//
// Zero values select the documented defaults. To switch a check off
// entirely, set its knob to any negative value (the sentinel): a float
// zero cannot distinguish "unset" from "explicitly disabled", so negative
// semantics carry that intent instead of being silently reset.
type Config struct {
	// Alpha is the per-feature KS-test significance level after Bonferroni
	// correction across features (default 0.01). Alpha < 0 disables the
	// KS check: no feature is ever rejected on the KS criterion.
	Alpha float64
	// MinFraction is the fraction of features that must reject before the
	// window is declared drifted (default 0.02, i.e. 2% of features).
	// MinFraction < 0 selects maximum sensitivity: a single rejecting
	// feature drifts the window (the floor the default also bottoms out at
	// for narrow data).
	MinFraction float64
	// PSIBins is the number of quantile bins for the population stability
	// index (default 10).
	PSIBins int
	// PSIThreshold flags a feature as drifted when its PSI exceeds this
	// value (industry convention: 0.2 = significant shift; default 0.2).
	// PSIThreshold < 0 disables the PSI check.
	PSIThreshold float64
	// Obs, when non-nil, records check/drift counters and per-feature
	// KS-statistic and PSI histograms for every window checked.
	Obs *obs.Observer `json:"-"`
}

func (c *Config) applyDefaults() {
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.MinFraction == 0 {
		c.MinFraction = 0.02
	}
	if c.PSIBins == 0 {
		c.PSIBins = 10
	}
	if c.PSIThreshold == 0 {
		c.PSIThreshold = 0.2
	}
}

// Detector holds per-feature reference distributions from the source
// domain.
type Detector struct {
	cfg Config

	refSorted [][]float64 // per feature, ascending reference values
	binEdges  [][]float64 // per feature, PSI quantile edges
	refProps  [][]float64 // per feature, reference bin proportions
	fitted    bool
}

// New creates an unfitted detector.
func New(cfg Config) *Detector {
	cfg.applyDefaults()
	return &Detector{cfg: cfg}
}

// Fit records the reference (source-domain) distribution.
func (d *Detector) Fit(reference [][]float64) error {
	if len(reference) < 10 {
		return fmt.Errorf("monitor: need >= 10 reference rows, have %d", len(reference))
	}
	width := len(reference[0])
	if width == 0 {
		return errors.New("monitor: zero-width reference rows")
	}
	if err := validateRows(reference, width, "reference"); err != nil {
		return err
	}
	d.refSorted = make([][]float64, width)
	d.binEdges = make([][]float64, width)
	d.refProps = make([][]float64, width)
	col := make([]float64, len(reference))
	for j := 0; j < width; j++ {
		for i, row := range reference {
			col[i] = row[j]
		}
		sorted := append([]float64(nil), col...)
		sort.Float64s(sorted)
		d.refSorted[j] = sorted

		edges := make([]float64, d.cfg.PSIBins-1)
		for b := 1; b < d.cfg.PSIBins; b++ {
			q, err := stats.Quantile(sorted, float64(b)/float64(d.cfg.PSIBins))
			if err != nil {
				return err
			}
			edges[b-1] = q
		}
		d.binEdges[j] = edges
		d.refProps[j] = binProportions(sorted, edges)
	}
	d.fitted = true
	return nil
}

// Width returns the fitted reference's feature count (0 before Fit) — the
// row width Check expects, so streaming callers can validate at their own
// boundary without a round trip through ErrRowWidth.
func (d *Detector) Width() int { return len(d.refSorted) }

// FeatureReport attributes one feature's contribution to a drift verdict.
type FeatureReport struct {
	// Index is the feature's column index.
	Index int
	// KSStat is the two-sample Kolmogorov–Smirnov statistic (sup-distance
	// between the empirical CDFs).
	KSStat float64
	// KSP is the KS p-value.
	KSP float64
	// PSI is the feature's population stability index.
	PSI float64
	// Rejected is true when the feature failed the (Bonferroni-corrected)
	// KS test or exceeded the PSI threshold — the features responsible for
	// a Drifted verdict.
	Rejected bool
}

// Report is the outcome of checking one telemetry window.
type Report struct {
	// Drifted is true when the window departs from the reference enough to
	// warrant re-running FS and retraining the GAN.
	Drifted bool
	// Features holds the full per-feature attribution behind the verdict,
	// in column order.
	Features []FeatureReport
	// DriftedFeatures lists feature indices whose KS test rejected.
	DriftedFeatures []int
	// KSPValues holds the per-feature KS p-values.
	KSPValues []float64
	// PSI holds the per-feature population stability index.
	PSI []float64
	// MaxPSI is the largest per-feature PSI in the window.
	MaxPSI float64
}

// TopOffenders returns up to k rejected features ordered by descending
// PSI (ties broken by smaller KS p-value) — the headline attribution for
// operator-facing output.
func (r *Report) TopOffenders(k int) []FeatureReport {
	out := make([]FeatureReport, 0, k)
	for _, f := range r.Features {
		if f.Rejected {
			out = append(out, f)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PSI != out[j].PSI {
			return out[i].PSI > out[j].PSI
		}
		return out[i].KSP < out[j].KSP
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Check compares a window of telemetry rows against the reference.
func (d *Detector) Check(window [][]float64) (*Report, error) {
	if !d.fitted {
		return nil, ErrNotFitted
	}
	if len(window) < 5 {
		return nil, fmt.Errorf("monitor: need >= 5 window rows, have %d", len(window))
	}
	o := d.cfg.Obs
	width := len(d.refSorted)
	if err := validateRows(window, width, "window"); err != nil {
		return nil, err
	}
	rep := &Report{
		Features:  make([]FeatureReport, width),
		KSPValues: make([]float64, width),
		PSI:       make([]float64, width),
	}
	ksEnabled := d.cfg.Alpha >= 0
	psiEnabled := d.cfg.PSIThreshold >= 0
	bonferroni := d.cfg.Alpha / float64(width)
	col := make([]float64, len(window))
	var psiHits int
	for j := 0; j < width; j++ {
		for i, row := range window {
			col[i] = row[j]
		}
		stat, p := KSTwoSample(d.refSorted[j], col)
		rep.KSPValues[j] = p
		ksRejected := ksEnabled && p < bonferroni
		if ksRejected {
			rep.DriftedFeatures = append(rep.DriftedFeatures, j)
		}
		psi := PSI(d.refProps[j], binProportions(sortedCopy(col), d.binEdges[j]))
		rep.PSI[j] = psi
		if psi > rep.MaxPSI {
			rep.MaxPSI = psi
		}
		psiRejected := psiEnabled && psi > d.cfg.PSIThreshold
		if psiRejected {
			psiHits++
		}
		rep.Features[j] = FeatureReport{
			Index:    j,
			KSStat:   stat,
			KSP:      p,
			PSI:      psi,
			Rejected: ksRejected || psiRejected,
		}
		if o != nil {
			o.Histogram(obs.MetricMonitorKSStat).Observe(stat)
			o.Histogram(obs.MetricMonitorPSI).Observe(psi)
		}
	}
	minFraction := d.cfg.MinFraction
	if minFraction < 0 {
		minFraction = 0 // sentinel: a single rejecting feature suffices
	}
	need := int(math.Ceil(minFraction * float64(width)))
	if need < 1 {
		need = 1
	}
	rep.Drifted = len(rep.DriftedFeatures) >= need || psiHits >= need
	if o != nil {
		o.Counter(obs.MetricMonitorChecks).Inc()
		if rep.Drifted {
			o.Counter(obs.MetricMonitorDrifts).Inc()
		}
	}
	return rep, nil
}

// KSTwoSample computes the two-sample Kolmogorov–Smirnov statistic (the
// sup-distance between the empirical CDFs) and its p-value via the
// asymptotic Kolmogorov distribution. refSorted must be ascending; sample
// may be in any order.
func KSTwoSample(refSorted, sample []float64) (stat, p float64) {
	n := float64(len(refSorted))
	m := float64(len(sample))
	if n == 0 || m == 0 {
		return 0, 1
	}
	s := sortedCopy(sample)
	// Walk both empirical CDFs. The CDF gap is only measured after both
	// walks consume every copy of the current value, so tied observations
	// (including between the two samples) never inflate the statistic.
	var i, j int
	var dMax float64
	for i < len(refSorted) && j < len(s) {
		v := refSorted[i]
		if s[j] < v {
			v = s[j]
		}
		for i < len(refSorted) && refSorted[i] == v {
			i++
		}
		for j < len(s) && s[j] == v {
			j++
		}
		diff := math.Abs(float64(i)/n - float64(j)/m)
		if diff > dMax {
			dMax = diff
		}
	}
	en := math.Sqrt(n * m / (n + m))
	lambda := (en + 0.12 + 0.11/en) * dMax
	return dMax, kolmogorovQ(lambda)
}

// KSTwoSamplePValue returns only the p-value of KSTwoSample.
func KSTwoSamplePValue(refSorted, sample []float64) float64 {
	_, p := KSTwoSample(refSorted, sample)
	return p
}

// kolmogorovQ is the survival function of the Kolmogorov distribution.
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*lambda*lambda*float64(k)*float64(k))
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// PSI computes the population stability index between two bin-proportion
// vectors (same binning). Empty bins are floored to avoid infinities.
func PSI(ref, cur []float64) float64 {
	const floor = 1e-4
	var psi float64
	for b := range ref {
		r := math.Max(ref[b], floor)
		c := math.Max(cur[b], floor)
		psi += (c - r) * math.Log(c/r)
	}
	return psi
}

// binProportions buckets ascending values by the given edges.
func binProportions(sorted []float64, edges []float64) []float64 {
	props := make([]float64, len(edges)+1)
	if len(sorted) == 0 {
		return props
	}
	b := 0
	for _, v := range sorted {
		for b < len(edges) && v > edges[b] {
			b++
		}
		props[b]++
	}
	inv := 1 / float64(len(sorted))
	for i := range props {
		props[i] *= inv
	}
	return props
}

func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
