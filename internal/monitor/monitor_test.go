package monitor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netdrift/internal/dataset"
)

func gaussRows(n, d int, shift float64, shiftCols []int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	isShift := map[int]bool{}
	for _, c := range shiftCols {
		isShift[c] = true
	}
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
			if isShift[j] {
				row[j] += shift
			}
		}
		out[i] = row
	}
	return out
}

func TestDetectorNoDriftStaysQuiet(t *testing.T) {
	det := New(Config{})
	if err := det.Fit(gaussRows(2000, 20, 0, nil, 1)); err != nil {
		t.Fatal(err)
	}
	// Several clean windows: none should trigger.
	for w := 0; w < 5; w++ {
		rep, err := det.Check(gaussRows(200, 20, 0, nil, int64(100+w)))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Drifted {
			t.Errorf("window %d: false drift alarm (features %v)", w, rep.DriftedFeatures)
		}
	}
}

func TestDetectorCatchesShift(t *testing.T) {
	det := New(Config{})
	if err := det.Fit(gaussRows(2000, 20, 0, nil, 2)); err != nil {
		t.Fatal(err)
	}
	rep, err := det.Check(gaussRows(200, 20, 1.5, []int{3, 7, 11}, 200))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted {
		t.Fatal("shifted window not detected")
	}
	found := map[int]bool{}
	for _, f := range rep.DriftedFeatures {
		found[f] = true
	}
	for _, want := range []int{3, 7, 11} {
		if !found[want] {
			t.Errorf("shifted feature %d not flagged; flagged=%v", want, rep.DriftedFeatures)
		}
	}
	if len(rep.DriftedFeatures) > 5 {
		t.Errorf("too many false positives: %v", rep.DriftedFeatures)
	}
	if rep.MaxPSI <= 0.2 {
		t.Errorf("MaxPSI = %v; want > 0.2 for a 1.5σ shift", rep.MaxPSI)
	}
}

func TestDetectorCatchesVarianceChange(t *testing.T) {
	det := New(Config{})
	if err := det.Fit(gaussRows(2000, 10, 0, nil, 3)); err != nil {
		t.Fatal(err)
	}
	// Triple the spread of one feature (mean unchanged): KS catches shape.
	rng := rand.New(rand.NewSource(300))
	window := make([][]float64, 300)
	for i := range window {
		row := make([]float64, 10)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[4] *= 3
		window[i] = row
	}
	rep, err := det.Check(window)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted {
		t.Error("variance change not detected")
	}
}

func TestDetectorOnSynthetic5GIPC(t *testing.T) {
	d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
		Seed:         5,
		SourceNormal: 800, SourceFaults: [4]int{30, 40, 80, 60},
		TargetNormal: 300, TargetFaults: [4]int{15, 20, 40, 30},
		TargetTrainPerGroup: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := New(Config{})
	if err := det.Fit(d.Source.X); err != nil {
		t.Fatal(err)
	}
	// A window of source data: quiet.
	quietRep, err := det.Check(d.Source.X[:250])
	if err != nil {
		t.Fatal(err)
	}
	if quietRep.Drifted {
		t.Error("false alarm on in-domain window")
	}
	// A window of target data: drifted.
	driftRep, err := det.Check(d.Targets[0].Test.X[:250])
	if err != nil {
		t.Fatal(err)
	}
	if !driftRep.Drifted {
		t.Error("target-domain drift not detected")
	}
	if len(driftRep.DriftedFeatures) <= len(quietRep.DriftedFeatures) {
		t.Error("target window should flag more features than source window")
	}
}

func TestDetectorErrors(t *testing.T) {
	det := New(Config{})
	if _, err := det.Check([][]float64{{1}}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v; want ErrNotFitted", err)
	}
	if err := det.Fit(gaussRows(3, 2, 0, nil, 1)); err == nil {
		t.Error("expected error for tiny reference")
	}
	if err := det.Fit(gaussRows(100, 3, 0, nil, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Check(gaussRows(2, 3, 0, nil, 1)); err == nil {
		t.Error("expected error for tiny window")
	}
	if _, err := det.Check(gaussRows(10, 5, 0, nil, 1)); err == nil {
		t.Error("expected error for width mismatch")
	}
}

func TestKSPValueProperties(t *testing.T) {
	// Identical samples: p ≈ 1. Disjoint samples: p ≈ 0.
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 10000
	}
	if p := KSTwoSamplePValue(a, a); p < 0.99 {
		t.Errorf("KS p for identical samples = %v; want ~1", p)
	}
	if p := KSTwoSamplePValue(a, b); p > 1e-6 {
		t.Errorf("KS p for disjoint samples = %v; want ~0", p)
	}
	if p := KSTwoSamplePValue(nil, a); p != 1 {
		t.Errorf("KS p with empty reference = %v; want 1", p)
	}
}

// Property: KS p-values stay in [0, 1] for random inputs.
func TestKSPValueRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 50)
		b := make([]float64, 30)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + rng.Float64()
		}
		sortFloats(a)
		p := KSTwoSamplePValue(a, b)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPSIKnownValues(t *testing.T) {
	same := []float64{0.25, 0.25, 0.25, 0.25}
	if psi := PSI(same, same); math.Abs(psi) > 1e-12 {
		t.Errorf("PSI of identical distributions = %v; want 0", psi)
	}
	shifted := []float64{0.1, 0.2, 0.3, 0.4}
	if psi := PSI(same, shifted); psi <= 0 {
		t.Errorf("PSI of different distributions = %v; want > 0", psi)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
