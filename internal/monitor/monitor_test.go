package monitor

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netdrift/internal/dataset"
	"netdrift/internal/obs"
)

func gaussRows(n, d int, shift float64, shiftCols []int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	isShift := map[int]bool{}
	for _, c := range shiftCols {
		isShift[c] = true
	}
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.NormFloat64()
			if isShift[j] {
				row[j] += shift
			}
		}
		out[i] = row
	}
	return out
}

func TestDetectorNoDriftStaysQuiet(t *testing.T) {
	det := New(Config{})
	if err := det.Fit(gaussRows(2000, 20, 0, nil, 1)); err != nil {
		t.Fatal(err)
	}
	// Several clean windows: none should trigger.
	for w := 0; w < 5; w++ {
		rep, err := det.Check(gaussRows(200, 20, 0, nil, int64(100+w)))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Drifted {
			t.Errorf("window %d: false drift alarm (features %v)", w, rep.DriftedFeatures)
		}
	}
}

func TestDetectorCatchesShift(t *testing.T) {
	det := New(Config{})
	if err := det.Fit(gaussRows(2000, 20, 0, nil, 2)); err != nil {
		t.Fatal(err)
	}
	rep, err := det.Check(gaussRows(200, 20, 1.5, []int{3, 7, 11}, 200))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted {
		t.Fatal("shifted window not detected")
	}
	found := map[int]bool{}
	for _, f := range rep.DriftedFeatures {
		found[f] = true
	}
	for _, want := range []int{3, 7, 11} {
		if !found[want] {
			t.Errorf("shifted feature %d not flagged; flagged=%v", want, rep.DriftedFeatures)
		}
	}
	if len(rep.DriftedFeatures) > 5 {
		t.Errorf("too many false positives: %v", rep.DriftedFeatures)
	}
	if rep.MaxPSI <= 0.2 {
		t.Errorf("MaxPSI = %v; want > 0.2 for a 1.5σ shift", rep.MaxPSI)
	}
}

func TestDetectorCatchesVarianceChange(t *testing.T) {
	det := New(Config{})
	if err := det.Fit(gaussRows(2000, 10, 0, nil, 3)); err != nil {
		t.Fatal(err)
	}
	// Triple the spread of one feature (mean unchanged): KS catches shape.
	rng := rand.New(rand.NewSource(300))
	window := make([][]float64, 300)
	for i := range window {
		row := make([]float64, 10)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		row[4] *= 3
		window[i] = row
	}
	rep, err := det.Check(window)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted {
		t.Error("variance change not detected")
	}
}

func TestDetectorOnSynthetic5GIPC(t *testing.T) {
	d, err := dataset.Synthetic5GIPC(dataset.FiveGIPCConfig{
		Seed:         5,
		SourceNormal: 800, SourceFaults: [4]int{30, 40, 80, 60},
		TargetNormal: 300, TargetFaults: [4]int{15, 20, 40, 30},
		TargetTrainPerGroup: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	det := New(Config{})
	if err := det.Fit(d.Source.X); err != nil {
		t.Fatal(err)
	}
	// A window of source data: quiet.
	quietRep, err := det.Check(d.Source.X[:250])
	if err != nil {
		t.Fatal(err)
	}
	if quietRep.Drifted {
		t.Error("false alarm on in-domain window")
	}
	// A window of target data: drifted.
	driftRep, err := det.Check(d.Targets[0].Test.X[:250])
	if err != nil {
		t.Fatal(err)
	}
	if !driftRep.Drifted {
		t.Error("target-domain drift not detected")
	}
	if len(driftRep.DriftedFeatures) <= len(quietRep.DriftedFeatures) {
		t.Error("target window should flag more features than source window")
	}
}

func TestDetectorErrors(t *testing.T) {
	det := New(Config{})
	if _, err := det.Check([][]float64{{1}}); !errors.Is(err, ErrNotFitted) {
		t.Errorf("err = %v; want ErrNotFitted", err)
	}
	if err := det.Fit(gaussRows(3, 2, 0, nil, 1)); err == nil {
		t.Error("expected error for tiny reference")
	}
	if err := det.Fit(gaussRows(100, 3, 0, nil, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Check(gaussRows(2, 3, 0, nil, 1)); err == nil {
		t.Error("expected error for tiny window")
	}
	if _, err := det.Check(gaussRows(10, 5, 0, nil, 1)); err == nil {
		t.Error("expected error for width mismatch")
	}
}

func TestKSPValueProperties(t *testing.T) {
	// Identical samples: p ≈ 1. Disjoint samples: p ≈ 0.
	a := make([]float64, 500)
	b := make([]float64, 500)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 10000
	}
	if p := KSTwoSamplePValue(a, a); p < 0.99 {
		t.Errorf("KS p for identical samples = %v; want ~1", p)
	}
	if p := KSTwoSamplePValue(a, b); p > 1e-6 {
		t.Errorf("KS p for disjoint samples = %v; want ~0", p)
	}
	if p := KSTwoSamplePValue(nil, a); p != 1 {
		t.Errorf("KS p with empty reference = %v; want 1", p)
	}
}

// Property: KS p-values stay in [0, 1] for random inputs.
func TestKSPValueRangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := make([]float64, 50)
		b := make([]float64, 30)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + rng.Float64()
		}
		sortFloats(a)
		p := KSTwoSamplePValue(a, b)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPSIKnownValues(t *testing.T) {
	same := []float64{0.25, 0.25, 0.25, 0.25}
	if psi := PSI(same, same); math.Abs(psi) > 1e-12 {
		t.Errorf("PSI of identical distributions = %v; want 0", psi)
	}
	shifted := []float64{0.1, 0.2, 0.3, 0.4}
	if psi := PSI(same, shifted); psi <= 0 {
		t.Errorf("PSI of different distributions = %v; want > 0", psi)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestFeatureAttribution(t *testing.T) {
	det := New(Config{})
	if err := det.Fit(gaussRows(2000, 10, 0, nil, 5)); err != nil {
		t.Fatal(err)
	}
	rep, err := det.Check(gaussRows(300, 10, 2.0, []int{2, 6}, 500))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Features) != 10 {
		t.Fatalf("attribution covers %d features; want 10", len(rep.Features))
	}
	for j, f := range rep.Features {
		if f.Index != j {
			t.Errorf("feature %d reported index %d", j, f.Index)
		}
		shifted := j == 2 || j == 6
		if f.Rejected != shifted {
			t.Errorf("feature %d: rejected=%v, shifted=%v (KS=%.3f p=%.3g PSI=%.3f)",
				j, f.Rejected, shifted, f.KSStat, f.KSP, f.PSI)
		}
		if f.KSStat < 0 || f.KSStat > 1 {
			t.Errorf("feature %d: KS statistic %v outside [0,1]", j, f.KSStat)
		}
	}
	top := rep.TopOffenders(1)
	if len(top) != 1 || (top[0].Index != 2 && top[0].Index != 6) {
		t.Errorf("TopOffenders(1) = %+v; want one of the shifted features", top)
	}
	all := rep.TopOffenders(100)
	if len(all) != 2 {
		t.Errorf("TopOffenders(100) returned %d features; want 2", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].PSI < all[i].PSI {
			t.Errorf("TopOffenders not sorted by descending PSI: %+v", all)
		}
	}
}

func TestConfigSentinels(t *testing.T) {
	ref := gaussRows(2000, 10, 0, nil, 6)
	shifted := gaussRows(300, 10, 2.0, []int{1, 4}, 600)

	// Negative Alpha disables the KS criterion entirely.
	noKS := New(Config{Alpha: -1, PSIThreshold: -1})
	if err := noKS.Fit(ref); err != nil {
		t.Fatal(err)
	}
	rep, err := noKS.Check(shifted)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted || len(rep.DriftedFeatures) != 0 {
		t.Errorf("both checks disabled, yet drifted=%v features=%v", rep.Drifted, rep.DriftedFeatures)
	}
	for _, f := range rep.Features {
		if f.Rejected {
			t.Errorf("feature %d rejected with both checks disabled", f.Index)
		}
	}

	// Negative MinFraction: a single rejecting feature drifts the window.
	sensitive := New(Config{MinFraction: -1})
	if err := sensitive.Fit(ref); err != nil {
		t.Fatal(err)
	}
	rep, err = sensitive.Check(gaussRows(300, 10, 2.0, []int{7}, 700))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted {
		t.Error("MinFraction<0 should drift on a single rejecting feature")
	}

	// Zero values still select the documented defaults.
	def := New(Config{})
	if def.cfg.Alpha != 0.01 || def.cfg.MinFraction != 0.02 || def.cfg.PSIBins != 10 || def.cfg.PSIThreshold != 0.2 {
		t.Errorf("defaults not applied: %+v", def.cfg)
	}
	// Negative sentinels survive applyDefaults.
	kept := New(Config{Alpha: -1, MinFraction: -1, PSIThreshold: -1})
	if kept.cfg.Alpha >= 0 || kept.cfg.MinFraction >= 0 || kept.cfg.PSIThreshold >= 0 {
		t.Errorf("sentinels overwritten: %+v", kept.cfg)
	}
}

func TestDetectorRecordsMetrics(t *testing.T) {
	o := obs.New()
	det := New(Config{Obs: o})
	if err := det.Fit(gaussRows(1000, 5, 0, nil, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Check(gaussRows(100, 5, 0, nil, 800)); err != nil {
		t.Fatal(err)
	}
	if _, err := det.Check(gaussRows(100, 5, 3.0, []int{0, 1, 2}, 801)); err != nil {
		t.Fatal(err)
	}
	if v, _ := o.Registry.Value(obs.MetricMonitorChecks); v != 2 {
		t.Errorf("checks counter = %v; want 2", v)
	}
	if v, _ := o.Registry.Value(obs.MetricMonitorDrifts); v != 1 {
		t.Errorf("drifts counter = %v; want 1", v)
	}
	if h := o.Registry.Histogram(obs.MetricMonitorKSStat); h.Count() != 10 {
		t.Errorf("KS-stat observations = %d; want 10 (2 windows x 5 features)", h.Count())
	}
}

func TestKSTwoSampleStatistic(t *testing.T) {
	// Identical samples: statistic 0. Disjoint samples: statistic 1.
	same := []float64{1, 2, 3, 4, 5}
	stat, _ := KSTwoSample(same, same)
	if stat != 0 {
		t.Errorf("identical samples: stat = %v; want 0", stat)
	}
	stat, p := KSTwoSample([]float64{1, 2, 3}, []float64{10, 11, 12})
	if stat != 1 {
		t.Errorf("disjoint samples: stat = %v; want 1", stat)
	}
	if p > 0.2 {
		t.Errorf("disjoint samples: p = %v; want small", p)
	}
}

// Satellite regression: malformed windows must fail with the typed
// sentinels, never panic or silently skew the statistics.
func TestCheckRejectsMalformedWindows(t *testing.T) {
	det := New(Config{})
	if err := det.Fit(gaussRows(100, 4, 0, nil, 42)); err != nil {
		t.Fatal(err)
	}
	clean := func() [][]float64 { return gaussRows(20, 4, 0, nil, 43) }

	t.Run("NaN", func(t *testing.T) {
		w := clean()
		w[7][2] = math.NaN()
		if _, err := det.Check(w); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("Check(NaN window) = %v, want ErrNonFinite", err)
		}
	})
	t.Run("Inf", func(t *testing.T) {
		w := clean()
		w[3][0] = math.Inf(-1)
		if _, err := det.Check(w); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("Check(Inf window) = %v, want ErrNonFinite", err)
		}
	})
	t.Run("NarrowRow", func(t *testing.T) {
		w := clean()
		w[5] = w[5][:2]
		if _, err := det.Check(w); !errors.Is(err, ErrRowWidth) {
			t.Fatalf("Check(narrow row) = %v, want ErrRowWidth", err)
		}
	})
	t.Run("WideRow", func(t *testing.T) {
		w := clean()
		w[5] = append(append([]float64(nil), w[5]...), 1.0)
		if _, err := det.Check(w); !errors.Is(err, ErrRowWidth) {
			t.Fatalf("Check(wide row) = %v, want ErrRowWidth", err)
		}
	})
	t.Run("CleanStillWorks", func(t *testing.T) {
		if _, err := det.Check(clean()); err != nil {
			t.Fatalf("Check(clean window) = %v", err)
		}
	})
}

func TestFitRejectsMalformedReference(t *testing.T) {
	ref := gaussRows(100, 4, 0, nil, 7)
	ref[11][1] = math.NaN()
	if err := New(Config{}).Fit(ref); !errors.Is(err, ErrNonFinite) {
		t.Fatalf("Fit(NaN reference) = %v, want ErrNonFinite", err)
	}
	ref = gaussRows(100, 4, 0, nil, 8)
	ref[20] = ref[20][:3]
	if err := New(Config{}).Fit(ref); !errors.Is(err, ErrRowWidth) {
		t.Fatalf("Fit(ragged reference) = %v, want ErrRowWidth", err)
	}
}
