package ctrl

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/fault"
	"netdrift/internal/models"
	"netdrift/internal/monitor"
	"netdrift/internal/obs"
	"netdrift/internal/serve"
)

// toyDrift mirrors the drifted toy problem used across the repo's tests:
// f2 is the variant aggregate, mean-shifted in the target domain.
func toyDrift(n int, target bool, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 2
		cs := float64(2*c - 1)
		f0 := cs + 0.5*rng.NormFloat64()
		f1 := cs*0.8 + 0.5*rng.NormFloat64()
		f2 := f0 + f1 + cs + 0.1*rng.NormFloat64()
		if target {
			f2 += 4
		}
		f3 := rng.NormFloat64()
		x[i] = []float64{f0, f1, f2, f3}
		y[i] = c
	}
	return &dataset.Dataset{X: x, Y: y}
}

// Shared fitted fixture: a stale incumbent (support drawn from the source
// itself, so it never learned the drift) and a good candidate (support
// from the drifted target). The classifier is trained once, through the
// incumbent, and never retrained — the paper's protocol.
var fixOnce sync.Once
var fix struct {
	source  *dataset.Dataset
	probe   *dataset.Dataset
	staleAd *core.Adapter
	goodAd  *core.Adapter
	clf     *models.MLPClassifier
}

func fitAdapter(t testing.TB, src, support *dataset.Dataset, seed int64) *core.Adapter {
	t.Helper()
	ad := core.NewAdapter(core.AdapterConfig{
		Mode:  core.ModeFSRecon,
		Recon: core.ReconGAN,
		GAN:   core.GANConfig{Epochs: 6},
		Seed:  seed,
	})
	if err := ad.Fit(src, support); err != nil {
		t.Fatal(err)
	}
	return ad
}

func fixture(t testing.TB) {
	t.Helper()
	fixOnce.Do(func() {
		fix.source = toyDrift(400, false, 11)
		fix.probe = toyDrift(120, true, 13)
		fix.staleAd = fitAdapter(t, fix.source, toyDrift(20, false, 17), 1)
		fix.goodAd = fitAdapter(t, fix.source, toyDrift(20, true, 19), 2)
		train, err := fix.staleAd.TrainingData(fix.source)
		if err != nil {
			t.Fatal(err)
		}
		fix.clf = models.NewMLPClassifier(models.Options{Seed: 3, Epochs: 3})
		if err := fix.clf.Fit(train.X, train.Y, 2); err != nil {
			t.Fatal(err)
		}
	})
}

func incumbentBundle() *serve.Bundle {
	return &serve.Bundle{ID: "incumbent", Adapter: fix.staleAd, Classifier: fix.clf}
}

// harness wires a controller over a fresh registry with fast test knobs.
type harness struct {
	o      *obs.Observer
	reg    *serve.Registry
	events chan Event
	ctrl   *Controller
}

func newHarness(t testing.TB, dir string, mutate func(*Config)) *harness {
	t.Helper()
	fixture(t)
	h := &harness{o: obs.New(), events: make(chan Event, 1024)}
	h.reg = serve.NewRegistry(h.o)
	h.reg.Swap(incumbentBundle())
	det := monitor.New(monitor.Config{})
	if err := det.Fit(fix.source.X); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Detector:   det,
		Registry:   h.reg,
		Probe:      fix.probe,
		NumClasses: 2,
		Refit: func(ctx context.Context, shots *dataset.Dataset, epoch int) (*Candidate, error) {
			return &Candidate{ID: fmt.Sprintf("cand%d", epoch), Adapter: fix.goodAd}, nil
		},
		WindowSize:       24,
		CheckEvery:       12,
		DriftUp:          2,
		Cooldown:         100 * time.Millisecond,
		ShotsPerClass:    10,
		MinShotsPerClass: 2,
		Retry:            RetryConfig{MaxAttempts: 3, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond},
		BundleDir:        dir,
		CheckpointPath:   filepath.Join(dir, "ctrl.ckpt"),
		WatchFor:         60 * time.Millisecond,
		WatchEvery:       10 * time.Millisecond,
		WatchWindow:      10 * time.Second,
		MinWatchRequests: 1 << 30, // watchdog effectively off unless a test arms it
		Seed:             7,
		Obs:              h.o,
		OnEvent:          func(ev Event) { h.events <- ev },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.ctrl = c
	return h
}

// feedDrift pushes labelled drifted batches through IngestRows.
func (h *harness) feedDrift(t testing.TB, batches int, seed int64) {
	t.Helper()
	rows := toyDrift(12*batches, true, seed)
	for i := 0; i < batches; i++ {
		batch := rows.X[i*12 : (i+1)*12]
		labels := rows.Y[i*12 : (i+1)*12]
		if _, err := h.ctrl.IngestRows(batch, labels); err != nil {
			t.Fatal(err)
		}
	}
}

// waitEvent consumes events until kind arrives (fatal after timeout).
func (h *harness) waitEvent(t testing.TB, kind string) Event {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case ev := <-h.events:
			if ev.Kind == kind {
				return ev
			}
		case <-deadline:
			t.Fatalf("timed out waiting for event %q", kind)
		}
	}
}

// expectNoEvent asserts no event of the given kinds arrives within d.
func (h *harness) expectNoEvent(t testing.TB, d time.Duration, kinds ...string) {
	t.Helper()
	deadline := time.After(d)
	for {
		select {
		case ev := <-h.events:
			for _, k := range kinds {
				if ev.Kind == k {
					t.Fatalf("unexpected event %q (%s)", ev.Kind, ev.Detail)
				}
			}
		case <-deadline:
			return
		}
	}
}

func TestCampaignPromotesOnDrift(t *testing.T) {
	h := newHarness(t, t.TempDir(), nil)
	h.ctrl.Start()
	defer h.ctrl.Close()

	h.feedDrift(t, 8, 101)
	h.waitEvent(t, EventDriftDetected)
	h.waitEvent(t, EventRefitStart)
	ev := h.waitEvent(t, EventGatePass)
	if ev.Epoch != 1 {
		t.Fatalf("gate-pass epoch = %d, want 1", ev.Epoch)
	}
	h.waitEvent(t, EventPromote)
	if got := h.reg.Current().ID; got != "cand1" {
		t.Fatalf("current bundle = %q, want cand1", got)
	}
	h.waitEvent(t, EventWatchClear)

	if v, ok := h.o.Registry.Value(obs.MetricCtrlDriftToRecovery); !ok || v <= 0 {
		t.Fatalf("drift-to-recovery gauge = %v ok=%v, want > 0", v, ok)
	}
	st := h.ctrl.Status()
	if st.Epoch != 1 || st.Phase != PhaseIdle {
		t.Fatalf("status = %+v, want epoch 1 idle", st)
	}
	if st.IncumbentPath == "" || st.IncumbentPath != st.PromotedPath {
		t.Fatalf("watch-clear should advance incumbent path: %+v", st)
	}
}

func TestRefitFailureRetriesThenCoolsDown(t *testing.T) {
	inj := fault.New(5)
	inj.Set(FaultSiteRefit, fault.Spec{ErrRate: 1})
	h := newHarness(t, t.TempDir(), func(c *Config) { c.Faults = inj })
	h.ctrl.Start()
	defer h.ctrl.Close()

	h.feedDrift(t, 8, 202)
	h.waitEvent(t, EventDriftDetected)
	h.waitEvent(t, EventRefitRetry)
	h.waitEvent(t, EventRefitRetry) // MaxAttempts 3 => exactly 2 retries
	h.waitEvent(t, EventRefitFail)
	if got := h.reg.Current().ID; got != "incumbent" {
		t.Fatalf("failed refit must not disturb serving; current = %q", got)
	}
	if st := h.ctrl.Status(); st.Phase != PhaseIdle || st.CooldownRemaining == "" {
		t.Fatalf("after refit-fail want idle + cooldown, got %+v", st)
	}
	if st := inj.Stats(FaultSiteRefit); st.Errs != 3 {
		t.Fatalf("refit chaos site fired %d errs, want 3 (one per attempt)", st.Errs)
	}
}

func TestGateRejectsNonImprovingCandidate(t *testing.T) {
	h := newHarness(t, t.TempDir(), func(c *Config) {
		// The "poisoned" candidate: same stale geometry as the incumbent,
		// so it cannot clear the margin.
		c.Refit = func(ctx context.Context, shots *dataset.Dataset, epoch int) (*Candidate, error) {
			return &Candidate{ID: "poison", Adapter: fix.staleAd}, nil
		}
	})
	h.ctrl.Start()
	defer h.ctrl.Close()

	h.feedDrift(t, 8, 303)
	h.waitEvent(t, EventDriftDetected)
	ev := h.waitEvent(t, EventGateFail)
	if ev.Detail == "" {
		t.Fatal("gate-fail event should carry scores in Detail")
	}
	if got := h.reg.Current().ID; got != "incumbent" {
		t.Fatalf("rejected candidate must not serve; current = %q", got)
	}
	if st := h.ctrl.Status(); st.Epoch != 0 {
		t.Fatalf("rejected candidate must not advance the epoch: %+v", st)
	}
}

func TestWatchdogRollsBackOnBurn(t *testing.T) {
	slo := obs.NewSLOSet(obs.SLO{}, time.Minute, 0, nil)
	h := newHarness(t, t.TempDir(), func(c *Config) {
		c.SLO = slo
		c.MinWatchRequests = 5
		c.WatchFor = 5 * time.Second // long: rollback must beat the clear
	})
	h.ctrl.Start()
	defer h.ctrl.Close()

	h.feedDrift(t, 8, 404)
	h.waitEvent(t, EventPromote)
	// The promoted bundle "hurts" serving: burn the /v1/adapt error budget.
	for i := 0; i < 50; i++ {
		slo.Observe(serve.EndpointAdapt, 0.001, true)
	}
	h.waitEvent(t, EventRollback)
	if got := h.reg.Current().ID; got != "incumbent" {
		t.Fatalf("rollback must restore the incumbent; current = %q", got)
	}
	// The campaign unwinds to idle just after the rollback event; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := h.ctrl.Status()
		if st.Phase == PhaseIdle {
			if st.Epoch != 1 {
				t.Fatalf("post-rollback status = %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never returned to idle: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestForcePromoteAndPhaseGuard(t *testing.T) {
	h := newHarness(t, t.TempDir(), func(c *Config) { c.WatchFor = 30 * time.Millisecond })
	h.ctrl.Start()
	defer h.ctrl.Close()

	done := make(chan error, 1)
	go func() {
		done <- h.ctrl.ForcePromote(&Candidate{ID: "forced", Adapter: fix.goodAd})
	}()
	h.waitEvent(t, EventPromote)
	if got := h.reg.Current().ID; got != "forced" {
		t.Fatalf("current = %q, want forced", got)
	}
	// While the forced promotion is under watch, a second force is refused.
	if err := h.ctrl.ForcePromote(&Candidate{ID: "second", Adapter: fix.goodAd}); err == nil {
		t.Fatal("concurrent ForcePromote should be refused")
	}
	h.waitEvent(t, EventWatchClear)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointResumeDoesNotRefit(t *testing.T) {
	dir := t.TempDir()
	h := newHarness(t, dir, nil)
	h.ctrl.Start()
	h.feedDrift(t, 8, 505)
	h.waitEvent(t, EventWatchClear)
	wantReservoir := h.ctrl.Status().ReservoirRows
	h.ctrl.Close()

	// A "restarted" controller over the same checkpoint: fresh registry
	// (still holding the boot bundle), fresh detector.
	h2 := newHarness(t, dir, nil)
	st := h2.ctrl.Status()
	if !st.Restored || st.Epoch != 1 {
		t.Fatalf("restored status = %+v, want restored epoch 1", st)
	}
	if st.ReservoirRows != wantReservoir {
		t.Fatalf("reservoir rows = %d, want %d carried across the crash", st.ReservoirRows, wantReservoir)
	}
	h2.ctrl.Start()
	defer h2.ctrl.Close()
	ev := h2.waitEvent(t, EventResume)
	if ev.Epoch != 1 {
		t.Fatalf("resume epoch = %d, want 1", ev.Epoch)
	}
	// The promoted bundle is reinstalled from its epoch file...
	if got := h2.reg.Current().ID; got != "cand1" {
		t.Fatalf("resume should reinstall the promoted bundle; current = %q", got)
	}
	// ...and no refit is re-triggered by the restart itself.
	h2.expectNoEvent(t, 300*time.Millisecond, EventDriftDetected, EventRefitStart)
}

func TestIngestRejectsMalformedRows(t *testing.T) {
	h := newHarness(t, t.TempDir(), nil)
	defer h.ctrl.Close()

	cases := map[string]struct {
		rows   [][]float64
		labels []int
	}{
		"empty":        {nil, nil},
		"narrow":       {[][]float64{{1, 2}}, nil},
		"nan":          {[][]float64{{1, 2, 0.0 / zero(), 4}}, nil},
		"labelLenMism": {[][]float64{{1, 2, 3, 4}}, []int{0, 1}},
	}
	for name, tc := range cases {
		if _, err := h.ctrl.IngestRows(tc.rows, tc.labels); !errors.Is(err, serve.ErrIngestRejected) {
			t.Errorf("%s: err = %v, want ErrIngestRejected", name, err)
		}
	}
	if st := h.ctrl.Status(); st.IngestedRows != 0 {
		t.Fatalf("rejected batches must not count: %+v", st)
	}
}

// zero defeats the compiler's divide-by-zero constant check.
func zero() float64 { return 0 }
