// Package ctrl closes the paper's drift-mitigation loop: a streaming
// ingest path accumulates target-domain telemetry, the monitor's KS/PSI
// verdict (behind hysteresis and a cooldown so flapping drift cannot
// thrash refits) triggers a background few-shot FS+GAN refit, the refit
// candidate must beat the incumbent on a held-out probe set by a minimum
// margin (the shadow gate) before the registry hot-swaps it in, and a
// post-promotion watchdog rolls back to the retained previous bundle if
// serving burns past the SLO threshold. The downstream classifier is never
// retrained — only the adapter refits — which is the paper's central
// claim operationalized.
//
// The controller is crash-safe: its durable state (epoch counter, promoted
// and incumbent bundle paths, cooldown stamp, and the per-class shot
// reservoir) checkpoints atomically (.tmp+rename, CRC-guarded — see
// checkpoint.go), so a restarted controller reinstalls its last promoted
// bundle and resumes idle instead of re-triggering the refit it already
// shipped.
package ctrl

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"sync"
	"time"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/fault"
	"netdrift/internal/models"
	"netdrift/internal/monitor"
	"netdrift/internal/obs"
	"netdrift/internal/serve"
)

// Chaos sites fired on the controller's state-changing paths (see
// internal/fault). Arming them exercises refit retry/backoff, promote
// failure handling, and rollback resilience.
const (
	// FaultSiteRefit fires at the top of every refit attempt.
	FaultSiteRefit = "ctrl.refit"
	// FaultSitePromote fires at the top of every promote attempt, before
	// the candidate bundle file is written.
	FaultSitePromote = "ctrl.promote"
	// FaultSiteRollback fires at the top of every rollback attempt. If
	// chaos exhausts the retries the swap is forced anyway: rollback is
	// the safety net and must not itself be deniable.
	FaultSiteRollback = "ctrl.rollback"
)

func init() {
	fault.RegisterSite(FaultSiteRefit, "controller refit attempt, before RefitFunc runs")
	fault.RegisterSite(FaultSitePromote, "controller promote attempt, before the bundle write")
	fault.RegisterSite(FaultSiteRollback, "controller rollback attempt, before the registry swap")
}

// Event kinds emitted on every controller transition (obs counter
// MetricCtrlTransitions{event=...}, flight-recorder kind "ctrl", and the
// OnEvent callback).
const (
	EventDriftDetected = "drift-detected"
	EventRefitStart    = "refit-start"
	EventRefitRetry    = "refit-retry"
	EventRefitFail     = "refit-fail"
	EventGatePass      = "gate-pass"
	EventGateFail      = "gate-fail"
	EventPromote       = "promote"
	EventPromoteFail   = "promote-fail"
	EventWatchClear    = "watch-clear"
	EventRollback      = "rollback"
	EventResume        = "resume"
)

// Controller phases, as reported by Status.
const (
	PhaseIdle      = "idle"
	PhaseRefitting = "refitting"
	PhaseGating    = "gating"
	PhaseWatching  = "watching"
)

// Event is one controller transition.
type Event struct {
	Kind   string
	Epoch  int
	At     time.Time
	Detail string
}

// Candidate is the product of one refit: a freshly fitted adapter and,
// optionally, a classifier. A nil Classifier keeps serving the incumbent's
// — the paper's protocol, where drift response never retrains downstream.
type Candidate struct {
	ID         string
	Adapter    *core.Adapter
	Classifier *models.MLPClassifier
}

// RefitFunc produces a refit candidate from the reservoir's labelled
// shots. It runs on a background goroutine under retry + per-attempt
// timeout; it should honor ctx where it can. epoch is the candidate's
// 1-based promotion number (for IDs and seeds).
type RefitFunc func(ctx context.Context, shots *dataset.Dataset, epoch int) (*Candidate, error)

// Config wires a Controller. Detector, Registry, Refit, Probe, and
// NumClasses are required; everything else defaults sanely.
type Config struct {
	// Detector is the fitted drift detector. The controller owns it from
	// here on (it refits the reference after successful promotions unless
	// SkipRebaseline is set).
	Detector *monitor.Detector
	// Registry receives promoted bundles and supplies the incumbent.
	Registry *serve.Registry
	// Refit builds a candidate from the reservoir shots.
	Refit RefitFunc
	// Probe is the held-out labelled probe set the shadow gate scores on.
	Probe *dataset.Dataset
	// NumClasses sizes the macro-F1 computation.
	NumClasses int

	// WindowSize is the sliding drift-check window in rows (default 64).
	WindowSize int
	// CheckEvery runs a drift check after this many ingested rows once the
	// window is full (default WindowSize/2).
	CheckEvery int
	// DriftUp is the hysteresis: consecutive drifted verdicts required to
	// trigger a campaign (default 2). A single clean verdict resets it.
	DriftUp int
	// Cooldown suppresses new campaigns after any campaign ends, however
	// it ended (default 30s) — flapping drift cannot thrash refits.
	Cooldown time.Duration
	// ShotsPerClass bounds the per-class reservoir (default 32).
	ShotsPerClass int
	// MinShotsPerClass gates triggering: every observed class must have at
	// least this many retained shots (default 1).
	MinShotsPerClass int

	// Retry bounds refit and promote attempts; rollback shares it.
	Retry RetryConfig
	// MinWinMargin is the macro-F1 points ([0,100] scale) the candidate
	// must beat the incumbent by at the gate. Zero selects the default
	// (1.0); negative means the candidate need only match.
	MinWinMargin float64
	// SkipRebaseline leaves the detector's reference untouched after a
	// successful promotion. The default refits it on the current window so
	// the monitor measures drift since the last adaptation — otherwise the
	// still-shifted raw telemetry would re-trigger forever.
	SkipRebaseline bool

	// BundleDir receives promoted bundle files, bundle-epoch%06d.<ext>
	// (default ".").
	BundleDir string
	// BundleFormat encodes promoted bundles (default binary/NDBF).
	BundleFormat serve.BundleFormat
	// InitialBundlePath seeds the incumbent path bookkeeping (the bundle
	// serving before the first promotion), for checkpoints and status.
	InitialBundlePath string

	// SLO, when set, feeds the watchdog the /v1/adapt burn rate.
	SLO *obs.SLOSet
	// WatchFor is how long a promotion stays under the watchdog before it
	// is trusted (default 2m).
	WatchFor time.Duration
	// WatchEvery is the watchdog poll interval (default 2s).
	WatchEvery time.Duration
	// WatchWindow is the SLO stats window the watchdog reads (default 1m).
	WatchWindow time.Duration
	// RollbackBurn rolls back when the /v1/adapt burn rate meets it
	// (default 2.0 — burning budget twice as fast as sustainable).
	RollbackBurn float64
	// RollbackDegradeFrac rolls back when this fraction of post-promote
	// requests were served degraded/passthrough (default 0.5). Degraded
	// responses do not burn the SLO budget, so the watchdog tracks them
	// separately.
	RollbackDegradeFrac float64
	// MinWatchRequests is the evidence floor: neither rollback trigger
	// fires on fewer requests (default 20).
	MinWatchRequests int

	// CheckpointPath enables atomic state checkpoints ("" = off).
	CheckpointPath string
	// CheckpointEvery also checkpoints after this many ingested rows, on
	// top of every transition (default 256).
	CheckpointEvery int

	// Seed scopes the reservoir sampling and retry jitter.
	Seed int64
	// Faults arms the ctrl.* chaos sites (nil = no chaos).
	Faults *fault.Injector
	// Obs records counters, gauges, flight events, and spans.
	Obs *obs.Observer
	// OnEvent observes every transition, synchronously. It must not call
	// back into the Controller (it may run under the controller's lock).
	OnEvent func(Event)
	// Now is the clock (default time.Now); injectable for tests.
	Now func() time.Time
}

func (c *Config) applyDefaults() {
	if c.WindowSize == 0 {
		c.WindowSize = 64
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = c.WindowSize / 2
	}
	if c.CheckEvery < 1 {
		c.CheckEvery = 1
	}
	if c.DriftUp == 0 {
		c.DriftUp = 2
	}
	if c.Cooldown == 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.ShotsPerClass == 0 {
		c.ShotsPerClass = 32
	}
	if c.MinShotsPerClass == 0 {
		c.MinShotsPerClass = 1
	}
	c.Retry = c.Retry.withDefaults()
	if c.MinWinMargin == 0 {
		c.MinWinMargin = 1.0
	} else if c.MinWinMargin < 0 {
		c.MinWinMargin = 0
	}
	if c.BundleDir == "" {
		c.BundleDir = "."
	}
	if c.BundleFormat == "" {
		c.BundleFormat = serve.FormatBinary
	}
	if c.WatchFor == 0 {
		c.WatchFor = 2 * time.Minute
	}
	if c.WatchEvery == 0 {
		c.WatchEvery = 2 * time.Second
	}
	if c.WatchWindow == 0 {
		c.WatchWindow = time.Minute
	}
	if c.RollbackBurn == 0 {
		c.RollbackBurn = 2.0
	}
	if c.RollbackDegradeFrac == 0 {
		c.RollbackDegradeFrac = 0.5
	}
	if c.MinWatchRequests == 0 {
		c.MinWatchRequests = 20
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// Controller runs the closed drift-response loop. Construct with New,
// launch with Start, feed with IngestRows (it implements
// serve.IngestSink), stop with Close.
type Controller struct {
	cfg Config
	o   *obs.Observer

	ctx     context.Context
	cancel  context.CancelFunc
	closed  chan struct{}
	trigger chan struct{}
	wg      sync.WaitGroup

	campMu   sync.Mutex // serializes campaigns (loop + ForcePromote)
	retryRng *rand.Rand // jitter source; guarded by campMu

	ckptMu sync.Mutex // serializes checkpoint file writes

	mu            sync.Mutex
	phase         string
	res           *reservoir
	window        [][]float64 // ring of copied rows
	winNext       int
	winCount      int
	sinceCheck    int
	sinceCkpt     int
	driftStreak   int
	cooldownUntil time.Time
	driftAt       time.Time
	epoch         int
	ingested      int64
	incumbentPath string // bundle serving before the current/last campaign
	promotedPath  string // bundle installed by the last promotion
	prevBundle    *serve.Bundle
	prevPath      string
	lastRecovery  float64 // seconds, last successful campaign
	restored      bool    // a checkpoint was loaded

	startOnce sync.Once
	closeOnce sync.Once
}

// New builds a controller and, when CheckpointPath names an existing
// checkpoint, restores its durable state (a corrupt checkpoint is an
// error — silent fallback would re-trigger the refit the file was
// recording). Call Start to launch the loop.
func New(cfg Config) (*Controller, error) {
	cfg.applyDefaults()
	switch {
	case cfg.Detector == nil:
		return nil, errors.New("ctrl: Config.Detector is required")
	case cfg.Detector.Width() == 0:
		return nil, errors.New("ctrl: Config.Detector must be fitted")
	case cfg.Registry == nil:
		return nil, errors.New("ctrl: Config.Registry is required")
	case cfg.Refit == nil:
		return nil, errors.New("ctrl: Config.Refit is required")
	case cfg.Probe == nil || len(cfg.Probe.X) == 0:
		return nil, errors.New("ctrl: Config.Probe must have rows")
	case cfg.NumClasses < 2:
		return nil, errors.New("ctrl: Config.NumClasses must be >= 2")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Controller{
		cfg:           cfg,
		o:             cfg.Obs,
		ctx:           ctx,
		cancel:        cancel,
		closed:        make(chan struct{}),
		trigger:       make(chan struct{}, 1),
		retryRng:      rand.New(rand.NewSource(cfg.Seed ^ 0x5ca1ab1e)),
		phase:         PhaseIdle,
		res:           newReservoir(cfg.ShotsPerClass, cfg.Seed),
		window:        make([][]float64, cfg.WindowSize),
		incumbentPath: cfg.InitialBundlePath,
	}
	if cfg.CheckpointPath != "" {
		st, err := loadCheckpointFile(cfg.CheckpointPath)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("ctrl: load checkpoint %s: %w", cfg.CheckpointPath, err)
		}
		if st != nil {
			c.restoreFrom(st)
		}
	}
	c.o.Gauge(obs.MetricCtrlEpoch).Set(float64(c.epoch))
	return c, nil
}

func (c *Controller) restoreFrom(st *checkpointState) {
	c.epoch = st.epoch
	if st.cooldownUntil != 0 {
		c.cooldownUntil = time.Unix(0, st.cooldownUntil)
	}
	if st.incumbentPath != "" {
		c.incumbentPath = st.incumbentPath
	}
	c.promotedPath = st.promotedPath
	c.lastRecovery = st.lastRecoverySec
	for i := range st.classes {
		cr := st.classes[i]
		c.res.byLabel[cr.label] = &cr
	}
	c.restored = true
}

// Start launches the campaign loop. When a checkpoint was restored it
// first reinstalls the last promoted bundle, so a crashed controller
// resumes serving its own work without a refit. Idempotent.
func (c *Controller) Start() {
	c.startOnce.Do(func() {
		if c.restored {
			detail := fmt.Sprintf("epoch=%d reservoir=%d", c.epoch, c.res.totalRows())
			if p := c.promotedPath; p != "" {
				if _, err := c.cfg.Registry.LoadFile(p); err != nil {
					detail += " reinstall-failed: " + err.Error()
				} else {
					detail += " reinstalled=" + p
				}
			}
			c.emit(EventResume, detail, c.epoch)
			c.o.Gauge(obs.MetricCtrlReservoirRows).Set(float64(c.res.totalRows()))
		}
		c.wg.Add(1)
		go c.loop()
	})
}

// Close stops the loop, waits for any in-flight campaign step to unwind,
// and writes a final checkpoint.
func (c *Controller) Close() {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.cancel()
		c.wg.Wait()
		c.checkpoint("close")
	})
}

func (c *Controller) now() time.Time { return c.cfg.Now() }

// emit records one transition everywhere at once: transition counter,
// flight-recorder event, and the OnEvent callback. May run under c.mu —
// OnEvent must not call back into the controller.
func (c *Controller) emit(kind, detail string, epoch int) {
	c.o.Counter(obs.MetricCtrlTransitions, "event", kind).Inc()
	c.o.FlightRecord(obs.FlightKindCtrl, kind, "", detail)
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(Event{Kind: kind, Epoch: epoch, At: c.now(), Detail: detail})
	}
}

// IngestRows implements serve.IngestSink: it feeds target-domain telemetry
// into the drift window and (labelled rows only; label < 0 means
// unlabelled) the shot reservoir, and runs the drift check on cadence.
// Malformed rows are rejected with serve.ErrIngestRejected before any
// state changes.
func (c *Controller) IngestRows(rows [][]float64, labels []int) (serve.IngestSummary, error) {
	var sum serve.IngestSummary
	if len(rows) == 0 {
		return sum, fmt.Errorf("%w: rows must not be empty", serve.ErrIngestRejected)
	}
	if len(labels) != 0 && len(labels) != len(rows) {
		return sum, fmt.Errorf("%w: %d labels for %d rows", serve.ErrIngestRejected, len(labels), len(rows))
	}
	width := c.cfg.Detector.Width()
	for i, row := range rows {
		if len(row) != width {
			return sum, fmt.Errorf("%w: rows[%d] has %d features, want %d", serve.ErrIngestRejected, i, len(row), width)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return sum, fmt.Errorf("%w: rows[%d][%d] is non-finite", serve.ErrIngestRejected, i, j)
			}
		}
	}

	c.mu.Lock()
	for i, row := range rows {
		slot := c.window[c.winNext]
		if slot == nil {
			slot = make([]float64, width)
			c.window[c.winNext] = slot
		}
		copy(slot, row)
		c.winNext = (c.winNext + 1) % len(c.window)
		if c.winCount < len(c.window) {
			c.winCount++
		}
		if len(labels) != 0 && labels[i] >= 0 {
			c.res.add(row, labels[i])
		}
		c.ingested++
		c.sinceCheck++
		c.sinceCkpt++
	}
	c.o.Counter(obs.MetricCtrlIngestRows).Add(float64(len(rows)))
	c.o.Gauge(obs.MetricCtrlReservoirRows).Set(float64(c.res.totalRows()))
	if c.winCount == len(c.window) && c.sinceCheck >= c.cfg.CheckEvery {
		c.sinceCheck = 0
		c.checkLocked()
	}
	needCkpt := c.cfg.CheckpointPath != "" && c.sinceCkpt >= c.cfg.CheckpointEvery
	if needCkpt {
		c.sinceCkpt = 0
	}
	sum.Accepted = len(rows)
	sum.Phase = c.phase
	sum.DriftStreak = c.driftStreak
	sum.ReservoirRows = c.res.totalRows()
	c.mu.Unlock()

	if needCkpt {
		c.checkpoint("ingest")
	}
	return sum, nil
}

// checkLocked runs one drift check over the full window and applies the
// hysteresis + cooldown trigger policy. Caller holds c.mu.
func (c *Controller) checkLocked() {
	rep, err := c.cfg.Detector.Check(c.window)
	if err != nil {
		// Ingest validated width and finiteness, so this is a detector
		// misconfiguration; surface it on the flight recorder.
		c.o.FlightRecord(obs.FlightKindCtrl, "check-error", "", err.Error())
		return
	}
	if !rep.Drifted {
		c.driftStreak = 0
		return
	}
	c.driftStreak++
	if c.phase != PhaseIdle ||
		c.driftStreak < c.cfg.DriftUp ||
		c.now().Before(c.cooldownUntil) ||
		c.res.totalRows() == 0 ||
		c.res.minClassCount() < c.cfg.MinShotsPerClass {
		return
	}
	c.phase = PhaseRefitting
	c.driftAt = c.now()
	c.driftStreak = 0
	c.emit(EventDriftDetected,
		fmt.Sprintf("features=%d/%d maxPSI=%.3f reservoir=%d",
			len(rep.DriftedFeatures), len(rep.Features), rep.MaxPSI, c.res.totalRows()),
		c.epoch)
	select {
	case c.trigger <- struct{}{}:
	default:
	}
}

// loop is the campaign goroutine: one campaign at a time, triggered by the
// drift policy.
func (c *Controller) loop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.closed:
			return
		case <-c.trigger:
			c.campMu.Lock()
			c.campaign()
			c.campMu.Unlock()
		}
	}
}

// endCampaign returns to idle and arms the cooldown, whatever the
// campaign's outcome, then checkpoints.
func (c *Controller) endCampaign() {
	c.mu.Lock()
	c.phase = PhaseIdle
	c.cooldownUntil = c.now().Add(c.cfg.Cooldown)
	c.driftStreak = 0
	c.mu.Unlock()
	c.checkpoint("campaign-end")
}

// campaign runs drift-response end to end: refit (retried), shadow gate,
// promote (retried), watchdog. Caller holds campMu.
func (c *Controller) campaign() {
	sp := c.o.StartSpan("ctrl.campaign")
	defer sp.End()

	c.mu.Lock()
	shots := c.res.snapshot()
	nextEpoch := c.epoch + 1
	driftAt := c.driftAt
	c.mu.Unlock()
	sp.SetAttr("epoch", fmt.Sprintf("%d", nextEpoch))

	// Refit, under retry with jittered backoff and per-attempt timeout.
	c.emit(EventRefitStart, fmt.Sprintf("shots=%d classes=%d", len(shots.X), len(shots.ClassCounts())), nextEpoch)
	refitSp := sp.Child("ctrl.refit")
	refitStart := c.now()
	var cand *Candidate
	err := retryDo(c.ctx, c.cfg.Retry, c.retryRng, func(ctx context.Context) error {
		if err := c.cfg.Faults.Fire(FaultSiteRefit); err != nil {
			return err
		}
		fresh, ferr := c.cfg.Refit(ctx, shots, nextEpoch)
		if ferr != nil {
			return ferr
		}
		if fresh == nil || fresh.Adapter == nil {
			return errors.New("ctrl: refit returned no adapter")
		}
		cand = fresh
		return nil
	}, func(n int, err error, wait time.Duration) {
		c.emit(EventRefitRetry, fmt.Sprintf("attempt=%d err=%v backoff=%s", n, err, wait), nextEpoch)
	})
	refitSp.End()
	if err != nil {
		sp.SetAttr("outcome", EventRefitFail)
		c.emit(EventRefitFail, err.Error(), nextEpoch)
		c.endCampaign()
		return
	}
	c.o.Histogram(obs.MetricCtrlRefitSeconds).Observe(c.now().Sub(refitStart).Seconds())
	if cand.ID == "" {
		cand.ID = fmt.Sprintf("ctrl-epoch%d", nextEpoch)
	}

	// Shadow gate against the live incumbent.
	c.mu.Lock()
	c.phase = PhaseGating
	c.mu.Unlock()
	gateSp := sp.Child("ctrl.gate")
	incumbent := c.cfg.Registry.Current()
	rep, err := shadowGate(cand, incumbent, c.cfg.Probe, c.cfg.NumClasses, c.cfg.MinWinMargin)
	gateSp.End()
	if !math.IsNaN(rep.CandidateScore) {
		c.o.Gauge(obs.MetricCtrlGateScore, "role", "candidate").Set(rep.CandidateScore)
	}
	if !math.IsNaN(rep.IncumbentScore) {
		c.o.Gauge(obs.MetricCtrlGateScore, "role", "incumbent").Set(rep.IncumbentScore)
	}
	if err != nil {
		sp.SetAttr("outcome", EventGateFail)
		c.emit(EventGateFail, "gate error: "+err.Error(), nextEpoch)
		c.endCampaign()
		return
	}
	if !rep.Pass {
		sp.SetAttr("outcome", EventGateFail)
		c.emit(EventGateFail, rep.Reason, nextEpoch)
		c.endCampaign()
		return
	}
	c.emit(EventGatePass, fmt.Sprintf("candidate=%.2f incumbent=%.2f margin=%.2f",
		rep.CandidateScore, rep.IncumbentScore, rep.Margin), nextEpoch)

	// The classifier is never retrained; when the candidate does not ship
	// its own, the incumbent's is carried forward into the promoted bundle
	// so the serving surface (predictions included) never narrows.
	if cand.Classifier == nil && incumbent != nil {
		cand.Classifier = incumbent.Classifier
	}

	// Promote: write the candidate bundle and hot-swap it in, retaining
	// the incumbent for rollback.
	promoteSp := sp.Child("ctrl.promote")
	prev, prevPath, perr := c.promote(cand, nextEpoch, driftAt)
	promoteSp.End()
	if perr != nil {
		sp.SetAttr("outcome", EventPromoteFail)
		c.emit(EventPromoteFail, perr.Error(), nextEpoch)
		c.endCampaign()
		return
	}

	// Watchdog: the promotion is provisional until it survives WatchFor.
	watchSp := sp.Child("ctrl.watch")
	rolledBack := c.watch(prev, prevPath, nextEpoch)
	watchSp.End()
	if rolledBack {
		sp.SetAttr("outcome", EventRollback)
	} else {
		sp.SetAttr("outcome", EventWatchClear)
	}
	c.endCampaign()
}

// bundlePath names the promoted bundle file for an epoch.
func (c *Controller) bundlePath(epoch int) string {
	ext := "ndbf"
	if c.cfg.BundleFormat == serve.FormatJSON {
		ext = "json"
	}
	return filepath.Join(c.cfg.BundleDir, fmt.Sprintf("bundle-epoch%06d.%s", epoch, ext))
}

// promote writes the candidate to its epoch-versioned file and installs it
// through Registry.LoadFile (breaker-guarded, singleflighted), under the
// retry policy. Returns the displaced bundle and its path for rollback.
func (c *Controller) promote(cand *Candidate, nextEpoch int, driftAt time.Time) (*serve.Bundle, string, error) {
	path := c.bundlePath(nextEpoch)
	prev := c.cfg.Registry.Current()
	c.mu.Lock()
	prevPath := c.incumbentPath
	c.mu.Unlock()
	err := retryDo(c.ctx, c.cfg.Retry, c.retryRng, func(ctx context.Context) error {
		if err := c.cfg.Faults.Fire(FaultSitePromote); err != nil {
			return err
		}
		if err := serve.WriteBundleFileFormat(path, cand.ID, cand.Adapter, cand.Classifier, c.cfg.BundleFormat); err != nil {
			return err
		}
		_, err := c.cfg.Registry.LoadFile(path)
		return err
	}, func(n int, err error, wait time.Duration) {
		c.emit(EventPromoteFail, fmt.Sprintf("attempt=%d err=%v backoff=%s (retrying)", n, err, wait), nextEpoch)
	})
	if err != nil {
		return nil, "", err
	}
	recovery := 0.0
	if !driftAt.IsZero() {
		recovery = c.now().Sub(driftAt).Seconds()
	}
	c.mu.Lock()
	c.epoch = nextEpoch
	c.promotedPath = path
	c.prevBundle = prev
	c.prevPath = prevPath
	c.phase = PhaseWatching
	if !driftAt.IsZero() {
		c.lastRecovery = recovery
	}
	c.mu.Unlock()
	c.o.Gauge(obs.MetricCtrlEpoch).Set(float64(nextEpoch))
	detail := fmt.Sprintf("bundle=%s path=%s (forced)", cand.ID, path)
	if !driftAt.IsZero() {
		c.o.Gauge(obs.MetricCtrlDriftToRecovery).Set(recovery)
		detail = fmt.Sprintf("bundle=%s path=%s recovery=%.3fs", cand.ID, path, recovery)
	}
	c.emit(EventPromote, detail, nextEpoch)
	c.checkpoint("promote")
	return prev, prevPath, nil
}

// watchBase is the serve-counter baseline captured at promotion.
type watchBase struct{ ok, degraded float64 }

func (c *Controller) serveCounts() watchBase {
	if c.o == nil || c.o.Registry == nil {
		return watchBase{}
	}
	ok, _ := c.o.Registry.Value(obs.MetricServeRequests, "outcome", "ok")
	deg, _ := c.o.Registry.Value(obs.MetricServeRequests, "outcome", "degraded")
	return watchBase{ok: ok, degraded: deg}
}

// unhealthy decides whether the promoted bundle is hurting serving: the
// /v1/adapt SLO burn rate (errors, timeouts, shed) or the degraded
// fraction since promotion (passthrough responses burn no budget but mean
// the adapter is not adapting). Both need MinWatchRequests of evidence.
func (c *Controller) unhealthy(base watchBase) (bool, string) {
	if c.cfg.SLO != nil {
		st := c.cfg.SLO.Tracker(serve.EndpointAdapt).Stats(c.cfg.WatchWindow)
		if st.Requests >= uint64(c.cfg.MinWatchRequests) && st.BurnRate >= c.cfg.RollbackBurn {
			return true, fmt.Sprintf("burn-rate %.1f >= %.1f over %s (%d reqs, %d errors)",
				st.BurnRate, c.cfg.RollbackBurn, c.cfg.WatchWindow, st.Requests, st.Errors)
		}
	}
	cur := c.serveCounts()
	okD, degD := cur.ok-base.ok, cur.degraded-base.degraded
	if total := okD + degD; total >= float64(c.cfg.MinWatchRequests) &&
		degD/total >= c.cfg.RollbackDegradeFrac {
		return true, fmt.Sprintf("degraded fraction %.2f >= %.2f since promote (%d reqs)",
			degD/total, c.cfg.RollbackDegradeFrac, int(total))
	}
	return false, ""
}

// watch polls serving health until the promotion earns trust (WatchFor
// elapsed → watch-clear, the incumbent path advances, and the detector
// rebaselines) or proves harmful (→ rollback). Returns true on rollback.
func (c *Controller) watch(prev *serve.Bundle, prevPath string, epoch int) bool {
	base := c.serveCounts()
	deadline := c.now().Add(c.cfg.WatchFor)
	for {
		select {
		case <-c.closed:
			return false
		case <-time.After(c.cfg.WatchEvery):
		}
		if bad, why := c.unhealthy(base); bad {
			c.rollback(prev, prevPath, why, epoch)
			return true
		}
		if c.now().After(deadline) {
			c.mu.Lock()
			c.incumbentPath = c.promotedPath
			c.prevBundle = nil
			c.prevPath = ""
			c.mu.Unlock()
			c.emit(EventWatchClear, fmt.Sprintf("healthy for %s", c.cfg.WatchFor), epoch)
			c.rebaseline()
			return false
		}
	}
}

// rollback swaps the retained previous bundle back in. The chaos site can
// delay it but never deny it: if retries exhaust, the swap happens anyway
// (Registry.Swap itself cannot fail).
func (c *Controller) rollback(prev *serve.Bundle, prevPath, why string, epoch int) {
	err := retryDo(c.ctx, c.cfg.Retry, c.retryRng, func(ctx context.Context) error {
		if err := c.cfg.Faults.Fire(FaultSiteRollback); err != nil {
			return err
		}
		c.cfg.Registry.Swap(prev)
		return nil
	}, nil)
	detail := why
	if err != nil {
		c.cfg.Registry.Swap(prev) // forced: rollback is not deniable
		detail += " (forced after retry exhaustion: " + err.Error() + ")"
	}
	c.mu.Lock()
	c.promotedPath = prevPath
	if prevPath != "" {
		c.incumbentPath = prevPath
	}
	c.prevBundle = nil
	c.prevPath = ""
	c.mu.Unlock()
	c.emit(EventRollback, detail, epoch)
	c.checkpoint("rollback")
}

// rebaseline refits the detector's reference on the current window after a
// trusted promotion, so the monitor measures drift since the last
// adaptation rather than re-alarming forever on the same shift.
func (c *Controller) rebaseline() {
	if c.cfg.SkipRebaseline {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.winCount < len(c.window) || c.winCount < 10 {
		return
	}
	if err := c.cfg.Detector.Fit(c.window); err != nil {
		c.o.FlightRecord(obs.FlightKindCtrl, "rebaseline-error", "", err.Error())
		return
	}
	c.driftStreak = 0
	c.sinceCheck = 0
	c.o.FlightRecord(obs.FlightKindCtrl, "rebaseline", "", fmt.Sprintf("rows=%d", c.winCount))
}

// ForcePromote installs a candidate without drift trigger or shadow gate —
// the operator override — but still under the promote retry/chaos
// machinery, and still watched: an unhealthy forced promotion rolls back
// like any other. Blocks through the watch phase; returns the promote
// error, if any. Fails if a campaign is already in flight.
func (c *Controller) ForcePromote(cand *Candidate) error {
	if cand == nil || cand.Adapter == nil {
		return errors.New("ctrl: ForcePromote needs a candidate with an adapter")
	}
	if !c.campMu.TryLock() {
		return errors.New("ctrl: a campaign is already in flight")
	}
	defer c.campMu.Unlock()
	c.mu.Lock()
	if c.phase != PhaseIdle {
		phase := c.phase
		c.mu.Unlock()
		return fmt.Errorf("ctrl: cannot force-promote during %s", phase)
	}
	c.phase = PhaseGating
	nextEpoch := c.epoch + 1
	c.mu.Unlock()
	if cand.ID == "" {
		cand.ID = fmt.Sprintf("forced-epoch%d", nextEpoch)
	}
	if cand.Classifier == nil {
		if inc := c.cfg.Registry.Current(); inc != nil {
			cand.Classifier = inc.Classifier
		}
	}
	prev, prevPath, err := c.promote(cand, nextEpoch, time.Time{})
	if err != nil {
		c.emit(EventPromoteFail, "forced: "+err.Error(), nextEpoch)
		c.endCampaign()
		return err
	}
	c.watch(prev, prevPath, nextEpoch)
	c.endCampaign()
	return nil
}

// checkpoint atomically persists the controller's durable state.
func (c *Controller) checkpoint(reason string) {
	if c.cfg.CheckpointPath == "" {
		return
	}
	c.mu.Lock()
	st := &checkpointState{
		epoch:           c.epoch,
		incumbentPath:   c.incumbentPath,
		promotedPath:    c.promotedPath,
		lastRecoverySec: c.lastRecovery,
	}
	if !c.cooldownUntil.IsZero() {
		st.cooldownUntil = c.cooldownUntil.UnixNano()
	}
	for _, label := range c.res.labels() {
		cr := c.res.byLabel[label]
		cls := classReservoir{label: cr.label, seen: cr.seen, rows: make([][]float64, len(cr.rows))}
		for i, row := range cr.rows {
			cls.rows[i] = append([]float64(nil), row...)
		}
		st.classes = append(st.classes, cls)
	}
	c.mu.Unlock()
	blob := encodeCheckpoint(st)

	c.ckptMu.Lock()
	err := writeCheckpointFile(c.cfg.CheckpointPath, blob)
	c.ckptMu.Unlock()
	if err != nil {
		c.o.FlightRecord(obs.FlightKindCtrl, "checkpoint-error", "", err.Error())
		return
	}
	c.o.Counter(obs.MetricCtrlCheckpoints).Inc()
}

// StatusReport is the operator view of the controller, embedded in
// /v1/status.
type StatusReport struct {
	Phase               string  `json:"phase"`
	Epoch               int     `json:"epoch"`
	IngestedRows        int64   `json:"ingested_rows"`
	WindowFill          int     `json:"window_fill"`
	WindowSize          int     `json:"window_size"`
	DriftStreak         int     `json:"drift_streak"`
	ReservoirRows       int     `json:"reservoir_rows"`
	ReservoirClasses    int     `json:"reservoir_classes"`
	CooldownRemaining   string  `json:"cooldown_remaining,omitempty"`
	IncumbentPath       string  `json:"incumbent_path,omitempty"`
	PromotedPath        string  `json:"promoted_path,omitempty"`
	LastRecoverySeconds float64 `json:"last_recovery_seconds,omitempty"`
	Restored            bool    `json:"restored_from_checkpoint,omitempty"`
}

// Status snapshots the controller state.
func (c *Controller) Status() StatusReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusReport{
		Phase:               c.phase,
		Epoch:               c.epoch,
		IngestedRows:        c.ingested,
		WindowFill:          c.winCount,
		WindowSize:          len(c.window),
		DriftStreak:         c.driftStreak,
		ReservoirRows:       c.res.totalRows(),
		ReservoirClasses:    len(c.res.byLabel),
		IncumbentPath:       c.incumbentPath,
		PromotedPath:        c.promotedPath,
		LastRecoverySeconds: c.lastRecovery,
		Restored:            c.restored,
	}
	if rem := c.cooldownUntil.Sub(c.now()); rem > 0 {
		st.CooldownRemaining = rem.Round(time.Millisecond).String()
	}
	return st
}
