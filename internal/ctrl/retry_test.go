package ctrl

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestBackoffDoublesWithinJitterBounds(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 5, BaseBackoff: 100 * time.Millisecond, MaxBackoff: 400 * time.Millisecond}.withDefaults()
	rng := rand.New(rand.NewSource(1))
	for attempt := 1; attempt <= 4; attempt++ {
		base := cfg.BaseBackoff << (attempt - 1)
		if base > cfg.MaxBackoff {
			base = cfg.MaxBackoff
		}
		for trial := 0; trial < 50; trial++ {
			w := cfg.backoff(attempt, rng)
			lo, hi := base/2, base+base/2
			if w < lo || w >= hi {
				t.Fatalf("attempt %d: backoff %s outside [%s, %s)", attempt, w, lo, hi)
			}
		}
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}
	var calls, retries int
	err := retryDo(context.Background(), cfg, rand.New(rand.NewSource(2)), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	}, func(n int, err error, wait time.Duration) { retries++ })
	if err != nil || calls != 3 || retries != 2 {
		t.Fatalf("err=%v calls=%d retries=%d, want nil/3/2", err, calls, retries)
	}
}

func TestRetryExhaustionReturnsLastError(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	sentinel := errors.New("permanent")
	var calls int
	err := retryDo(context.Background(), cfg, rand.New(rand.NewSource(3)), func(ctx context.Context) error {
		calls++
		return sentinel
	}, nil)
	if !errors.Is(err, sentinel) || calls != 3 {
		t.Fatalf("err=%v calls=%d, want sentinel after 3 attempts", err, calls)
	}
}

func TestRetryAttemptTimeout(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond, AttemptTimeout: 10 * time.Millisecond}
	release := make(chan struct{})
	defer close(release)
	err := retryDo(context.Background(), cfg, rand.New(rand.NewSource(4)), func(ctx context.Context) error {
		<-release // hangs past every attempt timeout
		return nil
	}, nil)
	if !errors.Is(err, errAttemptTimeout) {
		t.Fatalf("err = %v, want errAttemptTimeout", err)
	}
}

func TestRetryContainsPanics(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond}
	var calls int
	err := retryDo(context.Background(), cfg, rand.New(rand.NewSource(5)), func(ctx context.Context) error {
		calls++
		panic("chaos")
	}, nil)
	if err == nil || calls != 2 {
		t.Fatalf("err=%v calls=%d, want contained panic error after both attempts", err, calls)
	}
}

func TestRetryHonorsCancelledContext(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 5, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	var calls int
	start := time.Now()
	err := retryDo(ctx, cfg, rand.New(rand.NewSource(6)), func(c context.Context) error {
		calls++
		cancel() // cancel mid-flight: the backoff wait must abort
		return errors.New("fail")
	}, nil)
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want abort after first attempt", err, calls)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancelled retry took %s — backoff did not abort", elapsed)
	}
}
