package ctrl

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// RetryConfig bounds one retried controller operation (refit, promote,
// rollback). Zero values select the documented defaults.
type RetryConfig struct {
	// MaxAttempts is the total tries before giving up (default 3).
	MaxAttempts int
	// BaseBackoff is the first inter-attempt wait; it doubles per failure
	// and is jittered to 50–150% (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (default 5s).
	MaxBackoff time.Duration
	// AttemptTimeout bounds each attempt; an attempt that outlives it
	// counts as failed and the next one starts (default 0 = unbounded).
	// The attempt's goroutine keeps running until its work returns — a
	// refit cannot be preempted mid-kernel — so RefitFuncs should honor
	// ctx where they can.
	AttemptTimeout time.Duration
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 3
	}
	if c.BaseBackoff == 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 5 * time.Second
	}
	return c
}

// backoff returns the jittered wait before attempt n+1 (n is the number of
// failures so far, 1-based).
func (c RetryConfig) backoff(n int, rng *rand.Rand) time.Duration {
	d := c.BaseBackoff
	for i := 1; i < n && d < c.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	return time.Duration(float64(d) * (0.5 + rng.Float64()))
}

// errAttemptTimeout marks an attempt abandoned by AttemptTimeout.
var errAttemptTimeout = fmt.Errorf("ctrl: attempt timed out")

// runAttempt executes one attempt with panic containment (a chaos site
// inside attempt may panic) and the per-attempt timeout. On timeout the
// attempt goroutine is left to finish in the background; its late result is
// discarded.
func runAttempt(parent context.Context, timeout time.Duration, attempt func(ctx context.Context) error) error {
	ctx := parent
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(parent, timeout)
	}
	defer cancel()
	done := make(chan error, 1)
	go func() {
		defer func() {
			if rec := recover(); rec != nil {
				done <- fmt.Errorf("ctrl: attempt panic: %v", rec)
			}
		}()
		done <- attempt(ctx)
	}()
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		if parent.Err() != nil {
			return parent.Err()
		}
		return fmt.Errorf("%w after %s", errAttemptTimeout, timeout)
	}
}

// retryDo runs attempt under the retry policy: up to MaxAttempts tries,
// jittered exponential backoff between them, each bounded by
// AttemptTimeout. onRetry (may be nil) observes each failure that will be
// retried. Returns nil on the first success, the last error otherwise, and
// ctx.Err() as soon as the parent context dies.
func retryDo(ctx context.Context, cfg RetryConfig, rng *rand.Rand,
	attempt func(ctx context.Context) error,
	onRetry func(n int, err error, wait time.Duration)) error {
	var lastErr error
	for n := 1; n <= cfg.MaxAttempts; n++ {
		lastErr = runAttempt(ctx, cfg.AttemptTimeout, attempt)
		if lastErr == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if n == cfg.MaxAttempts {
			break
		}
		wait := cfg.backoff(n, rng)
		if onRetry != nil {
			onRetry(n, lastErr, wait)
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return lastErr
}
