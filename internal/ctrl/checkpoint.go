package ctrl

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"

	"netdrift/internal/binenc"
)

// Checkpoint wire format (NDCC, "NetDrift Ctrl Checkpoint"): the same
// shape as the NDBF bundle format — magic, version, then one
// length-prefixed CRC-32-guarded section — so a truncated or bit-rotted
// file fails loudly instead of resurrecting a corrupt controller. The file
// is always written to <path>.tmp, fsynced, and renamed into place, so a
// crash mid-write leaves the previous checkpoint intact.
//
//	"NDCC" | u16 version | u32 payloadLen | u32 crc32(payload) | payload
//
// payload:
//
//	u32 epoch
//	i64 cooldownUntil (unix nanos; 0 = none)
//	str incumbentPath    (u16 length prefix)
//	str promotedPath
//	f64 lastRecoverySeconds
//	u32 classes, then per class:
//	  i64 label | u64 seen | u32 rows | u32 width | rows*width raw f64
const (
	checkpointMagic   = "NDCC"
	checkpointVersion = 1
)

var (
	// ErrCheckpointMagic is returned when the file is not an NDCC checkpoint.
	ErrCheckpointMagic = errors.New("ctrl: bad checkpoint magic")
	// ErrCheckpointChecksum is returned when the payload CRC does not match.
	ErrCheckpointChecksum = errors.New("ctrl: checkpoint checksum mismatch")
)

// checkpointState is the persisted controller state: enough to resume
// after a crash without re-triggering the refit that was already promoted
// (epoch + promoted path) and without losing the accumulated shots
// (reservoir). The in-flight campaign itself is NOT persisted — a crash
// mid-refit resumes idle and lets the next drift verdict start over.
type checkpointState struct {
	epoch           int
	cooldownUntil   int64 // unix nanos
	incumbentPath   string
	promotedPath    string
	lastRecoverySec float64
	classes         []classReservoir
}

func encodeCheckpoint(st *checkpointState) []byte {
	payload := binenc.AppendU32(nil, uint32(st.epoch))
	payload = binenc.AppendI64(payload, st.cooldownUntil)
	payload = binenc.AppendString(payload, st.incumbentPath)
	payload = binenc.AppendString(payload, st.promotedPath)
	payload = binenc.AppendF64(payload, st.lastRecoverySec)
	payload = binenc.AppendU32(payload, uint32(len(st.classes)))
	for _, cr := range st.classes {
		payload = binenc.AppendI64(payload, int64(cr.label))
		payload = binenc.AppendU64(payload, cr.seen)
		payload = binenc.AppendU32(payload, uint32(len(cr.rows)))
		width := 0
		if len(cr.rows) > 0 {
			width = len(cr.rows[0])
		}
		payload = binenc.AppendU32(payload, uint32(width))
		for _, row := range cr.rows {
			payload = binenc.AppendF64sRaw(payload, row)
		}
	}
	blob := []byte(checkpointMagic)
	blob = binenc.AppendU16(blob, checkpointVersion)
	blob = binenc.AppendU32(blob, uint32(len(payload)))
	blob = binenc.AppendU32(blob, crc32.ChecksumIEEE(payload))
	return append(blob, payload...)
}

func decodeCheckpoint(data []byte) (*checkpointState, error) {
	if len(data) < 4 || string(data[:4]) != checkpointMagic {
		return nil, ErrCheckpointMagic
	}
	r := binenc.NewReader(data[4:])
	if v := r.U16(); r.Err() == nil && v != checkpointVersion {
		return nil, fmt.Errorf("ctrl: checkpoint version %d, want %d", v, checkpointVersion)
	}
	n := int(r.U32())
	sum := r.U32()
	payload := r.Bytes(n)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ctrl: checkpoint truncated: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, ErrCheckpointChecksum
	}
	p := binenc.NewReader(payload)
	st := &checkpointState{
		epoch:         int(p.U32()),
		cooldownUntil: p.I64(),
		incumbentPath: p.String(),
	}
	st.promotedPath = p.String()
	st.lastRecoverySec = p.F64()
	classes := p.Count(8 + 8 + 4 + 4)
	for i := 0; i < classes; i++ {
		cr := classReservoir{label: int(p.I64()), seen: p.U64()}
		rows := int(p.U32())
		width := int(p.U32())
		if p.Err() != nil {
			break
		}
		for k := 0; k < rows; k++ {
			row := make([]float64, width)
			p.F64sInto(row)
			cr.rows = append(cr.rows, row)
		}
		st.classes = append(st.classes, cr)
	}
	if err := p.Err(); err != nil {
		return nil, fmt.Errorf("ctrl: checkpoint payload: %w", err)
	}
	return st, nil
}

// writeCheckpointFile atomically replaces path with blob: write to
// <path>.tmp, fsync, rename. A crash at any point leaves either the old
// complete checkpoint or the new complete one, never a torn file.
func writeCheckpointFile(path string, blob []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// loadCheckpointFile reads and verifies a checkpoint. A missing file
// returns (nil, nil): first boot is not an error.
func loadCheckpointFile(path string) (*checkpointState, error) {
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return decodeCheckpoint(blob)
}
