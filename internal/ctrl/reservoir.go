package ctrl

import (
	"math/rand"
	"sort"

	"netdrift/internal/dataset"
)

// classReservoir holds the retained shots for one class label.
type classReservoir struct {
	label int
	seen  uint64
	rows  [][]float64
}

// reservoir keeps a bounded, per-class uniform sample of the labelled
// target-domain rows seen so far (Vitter's Algorithm R per class). Bounding
// per class rather than globally mirrors the paper's few-shot protocol: a
// refit wants a handful of shots from EVERY class, and a global reservoir
// under class imbalance would starve the rare ones. All randomness comes
// from one seeded RNG, so a replayed ingest stream reproduces the same
// sample. Not goroutine-safe; the controller serializes access.
type reservoir struct {
	capPerClass int
	rng         *rand.Rand
	byLabel     map[int]*classReservoir
}

func newReservoir(capPerClass int, seed int64) *reservoir {
	return &reservoir{
		capPerClass: capPerClass,
		rng:         rand.New(rand.NewSource(seed)),
		byLabel:     make(map[int]*classReservoir),
	}
}

// add offers one labelled row (copied; the caller keeps ownership).
func (r *reservoir) add(row []float64, label int) {
	cr := r.byLabel[label]
	if cr == nil {
		cr = &classReservoir{label: label}
		r.byLabel[label] = cr
	}
	cr.seen++
	if len(cr.rows) < r.capPerClass {
		cr.rows = append(cr.rows, append([]float64(nil), row...))
		return
	}
	if j := r.rng.Int63n(int64(cr.seen)); int(j) < r.capPerClass {
		cr.rows[j] = append(cr.rows[j][:0], row...)
	}
}

// totalRows counts the retained shots across classes.
func (r *reservoir) totalRows() int {
	n := 0
	for _, cr := range r.byLabel {
		n += len(cr.rows)
	}
	return n
}

// minClassCount returns the smallest per-class retained count (0 when the
// reservoir is empty) — the few-shot floor the refit trigger checks.
func (r *reservoir) minClassCount() int {
	minCount := 0
	first := true
	for _, cr := range r.byLabel {
		if first || len(cr.rows) < minCount {
			minCount = len(cr.rows)
			first = false
		}
	}
	return minCount
}

// labels returns the class labels present, ascending.
func (r *reservoir) labels() []int {
	out := make([]int, 0, len(r.byLabel))
	for l := range r.byLabel {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}

// snapshot returns the retained shots as a Dataset in deterministic order
// (labels ascending, rows in slot order), deep-copied so the caller can use
// it outside the controller's lock.
func (r *reservoir) snapshot() *dataset.Dataset {
	d := &dataset.Dataset{}
	for _, label := range r.labels() {
		cr := r.byLabel[label]
		for _, row := range cr.rows {
			d.X = append(d.X, append([]float64(nil), row...))
			d.Y = append(d.Y, label)
		}
	}
	return d
}
