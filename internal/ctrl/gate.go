package ctrl

import (
	"errors"
	"fmt"
	"math"

	"netdrift/internal/core"
	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
	"netdrift/internal/serve"
)

// GateReport is the shadow-evaluation verdict on one refit candidate.
type GateReport struct {
	// CandidateScore and IncumbentScore are macro-F1 on the probe set,
	// scaled [0,100]. CandidateScore is NaN when the candidate failed to
	// produce finite probe outputs (an automatic rejection).
	CandidateScore float64 `json:"candidate_score"`
	IncumbentScore float64 `json:"incumbent_score"`
	// Margin is the minimum win the candidate had to clear.
	Margin float64 `json:"margin"`
	// Pass is true when CandidateScore >= IncumbentScore + Margin.
	Pass bool `json:"pass"`
	// Reason explains a rejection ("" on pass).
	Reason string `json:"reason,omitempty"`
}

// scoreAdapter runs the probe set through one adapter + classifier on the
// inference-only serving path (AdaptBatch with pinned seeds, PredictProbaT)
// and returns macro-F1. Using the serving path matters twice over: the
// incumbent being scored is concurrently serving live traffic (the training
// entry points mutate layer caches; these do not), and the score measures
// exactly what promoted traffic would see, bit for bit.
func scoreAdapter(ad *core.Adapter, clf *models.MLPClassifier, probe *dataset.Dataset, numClasses int) (float64, error) {
	seeds := make([]int64, len(probe.X))
	var scr core.AdaptScratch
	out, err := ad.AdaptBatch(probe.X, seeds, &scr)
	if err != nil {
		return 0, fmt.Errorf("adapt probe: %w", err)
	}
	for i := 0; i < out.Rows(); i++ {
		for _, v := range out.Row(i) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, fmt.Errorf("adapt probe: non-finite output at row %d", i)
			}
		}
	}
	var mscr models.MLPScratch
	probs, err := clf.PredictProbaT(out, &mscr)
	if err != nil {
		return 0, fmt.Errorf("predict probe: %w", err)
	}
	yPred := make([]int, probs.Rows())
	for i := range yPred {
		row := probs.Row(i)
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		yPred[i] = best
	}
	return metrics.MacroF1Score(probe.Y, yPred, numClasses)
}

// shadowGate scores the candidate against the incumbent bundle on the
// held-out probe set. Per the paper's protocol the downstream classifier is
// never retrained, so unless the candidate ships its own classifier both
// sides share the incumbent's — the gate then isolates exactly the
// adapter's contribution. A candidate that cannot be scored (transform
// error, non-finite outputs) is rejected, not escalated: a poisoned
// candidate is the case the gate exists for.
func shadowGate(cand *Candidate, inc *serve.Bundle, probe *dataset.Dataset, numClasses int, margin float64) (GateReport, error) {
	rep := GateReport{Margin: margin, CandidateScore: math.NaN(), IncumbentScore: math.NaN()}
	if inc == nil || inc.Adapter == nil {
		return rep, errors.New("ctrl: no incumbent bundle to gate against")
	}
	clf := cand.Classifier
	if clf == nil {
		clf = inc.Classifier
	}
	if clf == nil {
		return rep, errors.New("ctrl: no classifier available for gate scoring")
	}
	incClf := inc.Classifier
	if incClf == nil {
		incClf = clf // one classifier total: both sides share it
	}
	incScore, err := scoreAdapter(inc.Adapter, incClf, probe, numClasses)
	if err != nil {
		return rep, fmt.Errorf("ctrl: incumbent probe score: %w", err)
	}
	rep.IncumbentScore = incScore
	candScore, err := scoreAdapter(cand.Adapter, clf, probe, numClasses)
	if err != nil {
		rep.Reason = "candidate unscorable: " + err.Error()
		return rep, nil
	}
	rep.CandidateScore = candScore
	if candScore >= incScore+margin {
		rep.Pass = true
		return rep, nil
	}
	rep.Reason = fmt.Sprintf("candidate %.2f vs incumbent %.2f: margin %.2f not met", candScore, incScore, margin)
	return rep, nil
}
