package ctrl

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func sampleState() *checkpointState {
	return &checkpointState{
		epoch:           3,
		cooldownUntil:   1723100000123456789,
		incumbentPath:   "bundles/bundle-epoch000002.ndbf",
		promotedPath:    "bundles/bundle-epoch000003.ndbf",
		lastRecoverySec: 4.25,
		classes: []classReservoir{
			{label: 0, seen: 40, rows: [][]float64{{1, 2, 3}, {4, 5, 6}}},
			{label: 1, seen: 7, rows: [][]float64{{-1.5, 0, 2.25}}},
		},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	want := sampleState()
	got, err := decodeCheckpoint(encodeCheckpoint(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestCheckpointRejectsCorruption(t *testing.T) {
	blob := encodeCheckpoint(sampleState())

	t.Run("flipped payload byte", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[len(bad)-1] ^= 0x40
		if _, err := decodeCheckpoint(bad); !errors.Is(err, ErrCheckpointChecksum) {
			t.Fatalf("err = %v, want ErrCheckpointChecksum", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0] = 'X'
		if _, err := decodeCheckpoint(bad); !errors.Is(err, ErrCheckpointMagic) {
			t.Fatalf("err = %v, want ErrCheckpointMagic", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, len(blob) / 2, len(blob) - 1} {
			if _, err := decodeCheckpoint(blob[:n]); err == nil {
				t.Fatalf("truncation to %d bytes decoded cleanly", n)
			}
		}
	})
}

func TestCheckpointFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ctrl.ckpt")
	if err := writeCheckpointFile(path, encodeCheckpoint(sampleState())); err != nil {
		t.Fatal(err)
	}
	// No .tmp residue after a successful rename.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf(".tmp residue: %v", err)
	}
	st, err := loadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if st == nil || st.epoch != 3 {
		t.Fatalf("loaded state = %+v", st)
	}
	// Missing file is a clean cold start, not an error.
	st, err = loadCheckpointFile(filepath.Join(dir, "absent.ckpt"))
	if err != nil || st != nil {
		t.Fatalf("missing file: st=%v err=%v, want nil/nil", st, err)
	}
	// A corrupt file on disk surfaces the decode error.
	if err := os.WriteFile(path, []byte("NDCCgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCheckpointFile(path); err == nil {
		t.Fatal("corrupt checkpoint file loaded cleanly")
	}
}

func TestReservoirBoundedAndDeterministic(t *testing.T) {
	build := func() *reservoir {
		r := newReservoir(4, 42)
		for i := 0; i < 100; i++ {
			r.add([]float64{float64(i)}, i%3)
		}
		return r
	}
	a, b := build(), build()
	if a.totalRows() != 12 {
		t.Fatalf("total rows = %d, want 12 (4 per class x 3 classes)", a.totalRows())
	}
	if a.minClassCount() != 4 {
		t.Fatalf("min class count = %d, want 4", a.minClassCount())
	}
	da, db := a.snapshot(), b.snapshot()
	if !reflect.DeepEqual(da.X, db.X) || !reflect.DeepEqual(da.Y, db.Y) {
		t.Fatal("same seed + same stream must sample identically")
	}
	// Snapshot rows are deep copies: mutating them must not corrupt the
	// reservoir's retained shots.
	da.X[0][0] = 1e9
	if a.snapshot().X[0][0] == 1e9 {
		t.Fatal("snapshot aliases reservoir storage")
	}
}
