package mat

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if r, c := m.Dims(); r != 2 || c != 3 {
		t.Fatalf("Dims() = %d,%d; want 2,3", r, c)
	}
	m.Set(1, 2, 5.5)
	if got := m.At(1, 2); got != 5.5 {
		t.Errorf("At(1,2) = %v; want 5.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %v; want 0 (zero matrix)", got)
	}
}

func TestFromRows(t *testing.T) {
	tests := []struct {
		name    string
		rows    [][]float64
		wantErr bool
	}{
		{name: "valid", rows: [][]float64{{1, 2}, {3, 4}}},
		{name: "empty", rows: nil, wantErr: true},
		{name: "ragged", rows: [][]float64{{1, 2}, {3}}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := FromRows(tt.rows)
			if tt.wantErr {
				if err == nil {
					t.Fatal("expected error, got nil")
				}
				if !errors.Is(err, ErrShape) {
					t.Errorf("error = %v; want ErrShape", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("FromRows: %v", err)
			}
			if m.At(1, 0) != 3 {
				t.Errorf("At(1,0) = %v; want 3", m.At(1, 0))
			}
		})
	}
}

func TestFromRowsCopies(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	rows[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Error("FromRows must copy its input")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if r, c := tr.Dims(); r != 3 || c != 2 {
		t.Fatalf("T() dims = %d,%d; want 3,2", r, c)
	}
	if tr.At(2, 1) != 6 {
		t.Errorf("T().At(2,1) = %v; want 6", tr.At(2, 1))
	}
	// Transpose is an involution.
	if !Equal(m, tr.T(), 0) {
		t.Error("T(T(m)) != m")
	}
}

func TestMul(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5, 6}, {7, 8}})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-12) {
		t.Errorf("Mul = %+v; want %+v", got, want)
	}

	bad := New(3, 3)
	if _, err := Mul(a, bad); !errors.Is(err, ErrShape) {
		t.Errorf("Mul shape mismatch error = %v; want ErrShape", err)
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	got, err := Mul(a, Identity(4))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, a, 1e-12) {
		t.Error("a*I != a")
	}
}

func TestMulVec(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	got, err := MulVec(a, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v; want [3 7]", got)
	}
	if _, err := MulVec(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("MulVec shape error = %v; want ErrShape", err)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{4, 3}, {2, 1}})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{5, 5}, {5, 5}})
	if !Equal(sum, want, 0) {
		t.Errorf("Add = %+v; want all-5s", sum)
	}
	diff, err := Sub(sum, b)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(diff, a, 0) {
		t.Error("(a+b)-b != a")
	}
	sc := Scale(2, a)
	if sc.At(1, 1) != 8 {
		t.Errorf("Scale(2,a).At(1,1) = %v; want 8", sc.At(1, 1))
	}
}

func TestSolve(t *testing.T) {
	a, _ := FromRows([][]float64{{2, 1}, {1, 3}})
	b, _ := FromRows([][]float64{{3}, {5}})
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Verify a*x == b.
	ax, _ := Mul(a, x)
	if !Equal(ax, b, 1e-10) {
		t.Errorf("a*x = %+v; want %+v", ax, b)
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 4}})
	b := New(2, 1)
	if _, err := Solve(a, b); !errors.Is(err, ErrSingular) {
		t.Errorf("Solve singular error = %v; want ErrSingular", err)
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5
	a := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
		a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod, _ := Mul(a, inv)
	if !Equal(prod, Identity(n), 1e-8) {
		t.Error("a*inv(a) != I")
	}
}

func TestCholesky(t *testing.T) {
	// a = L0*L0^T for a known L0 is PD by construction.
	l0, _ := FromRows([][]float64{{2, 0, 0}, {1, 3, 0}, {0.5, -1, 1.5}})
	a, _ := Mul(l0, l0.T())
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := Mul(l, l.T())
	if !Equal(rec, a, 1e-10) {
		t.Error("L*L^T != a")
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPD) {
		t.Errorf("Cholesky error = %v; want ErrNotPD", err)
	}
}

func TestLogDetPD(t *testing.T) {
	a, _ := FromRows([][]float64{{4, 0}, {0, 9}})
	ld, err := LogDetPD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ld-math.Log(36)) > 1e-10 {
		t.Errorf("LogDetPD = %v; want log(36)=%v", ld, math.Log(36))
	}
}

func TestCovariance(t *testing.T) {
	// Columns: x, 2x (perfectly correlated).
	x, _ := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}, {4, 8}})
	cov, err := Covariance(x)
	if err != nil {
		t.Fatal(err)
	}
	// var(x) over {1,2,3,4} is 5/3; cov(x,2x) = 2*var(x); var(2x) = 4*var(x).
	vx := 5.0 / 3.0
	if math.Abs(cov.At(0, 0)-vx) > 1e-10 {
		t.Errorf("cov(0,0) = %v; want %v", cov.At(0, 0), vx)
	}
	if math.Abs(cov.At(0, 1)-2*vx) > 1e-10 {
		t.Errorf("cov(0,1) = %v; want %v", cov.At(0, 1), 2*vx)
	}
	corr := CorrelationFromCov(cov)
	if math.Abs(corr.At(0, 1)-1) > 1e-10 {
		t.Errorf("corr(x,2x) = %v; want 1", corr.At(0, 1))
	}
}

func TestCovarianceTooFewRows(t *testing.T) {
	x := New(1, 3)
	if _, err := Covariance(x); !errors.Is(err, ErrShape) {
		t.Errorf("Covariance error = %v; want ErrShape", err)
	}
}

func TestSubMatrix(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s, err := m.SubMatrix([]int{0, 2}, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := FromRows([][]float64{{2, 3}, {8, 9}})
	if !Equal(s, want, 0) {
		t.Errorf("SubMatrix = %+v; want %+v", s, want)
	}
	if _, err := m.SubMatrix([]int{5}, []int{0}); !errors.Is(err, ErrShape) {
		t.Errorf("out-of-range error = %v; want ErrShape", err)
	}
}

func TestRowColViews(t *testing.T) {
	m, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Error("Row must return a copy")
	}
	rv := m.RowView(1)
	rv[0] = 99
	if m.At(1, 0) != 99 {
		t.Error("RowView must alias the matrix")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Errorf("Col(1) = %v; want [2 4]", c)
	}
}

func TestTraceAndNorm(t *testing.T) {
	m, _ := FromRows([][]float64{{3, 0}, {0, 4}})
	if m.Trace() != 7 {
		t.Errorf("Trace = %v; want 7", m.Trace())
	}
	if m.FrobeniusNorm() != 5 {
		t.Errorf("FrobeniusNorm = %v; want 5", m.FrobeniusNorm())
	}
}

// Property: (A*B)^T == B^T * A^T for random matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 3, 4)
		b := randomMatrix(rng, 4, 2)
		ab, err := Mul(a, b)
		if err != nil {
			return false
		}
		btat, err := Mul(b.T(), a.T())
		if err != nil {
			return false
		}
		return Equal(ab.T(), btat, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Solve(a, b) satisfies a*x ≈ b for random well-conditioned a.
func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)) // keep well-conditioned
		}
		b := randomMatrix(rng, n, 2)
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax, err := Mul(a, x)
		if err != nil {
			return false
		}
		return Equal(ax, b, 1e-7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: covariance matrices are symmetric positive semi-definite
// (checked as Cholesky succeeding after a small ridge).
func TestCovariancePSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomMatrix(rng, 30, 4)
		cov, err := Covariance(x)
		if err != nil {
			return false
		}
		if !Equal(cov, cov.T(), 1e-12) {
			return false
		}
		ridge := Identity(4)
		reg, err := Add(cov, Scale(1e-8, ridge))
		if err != nil {
			return false
		}
		_, err = Cholesky(reg)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}
