// Package mat provides small dense-matrix primitives used throughout the
// library: construction, arithmetic, linear solves, Cholesky factorization,
// and covariance estimation. It is intentionally minimal — just what the
// causal-inference tests, Gaussian mixture models, and alignment baselines
// need — and has no external dependencies.
package mat

import (
	"errors"
	"fmt"
	"math"

	"netdrift/internal/par"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

var (
	// ErrShape is returned when operand dimensions are incompatible.
	ErrShape = errors.New("mat: incompatible shapes")
	// ErrSingular is returned when a solve or inversion encounters a
	// (numerically) singular matrix.
	ErrSingular = errors.New("mat: singular matrix")
	// ErrNotPD is returned by Cholesky when the input is not positive
	// definite.
	ErrNotPD = errors.New("mat: matrix is not positive definite")
)

// New returns a rows×cols zero matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrShape)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			return nil, fmt.Errorf("%w: row %d has %d columns, want %d", ErrShape, i, len(r), m.cols)
		}
		copy(m.data[i*m.cols:(i+1)*m.cols], r)
	}
	return m, nil
}

// FromSlice wraps a row-major slice. The data is copied.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: %d values for %dx%d", ErrShape, len(data), rows, cols)
	}
	m := New(rows, cols)
	copy(m.data, data)
	return m, nil
}

// Wrap builds a rows×cols matrix backed directly by data (row-major).
// Unlike FromSlice no copy is made: the caller transfers ownership of data
// and must not mutate it afterwards. This lets hot paths assemble a matrix
// in a single allocation.
func Wrap(rows, cols int, data []float64) (*Matrix, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("%w: invalid dimensions %dx%d", ErrShape, rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("%w: %d values for %dx%d", ErrShape, len(data), rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Reset reshapes m to rows×cols, reusing the existing backing array when it
// is large enough (the workspace primitive behind the *Into variants). The
// contents after Reset are undefined. Returns m for chaining.
func (m *Matrix) Reset(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	n := rows * cols
	if cap(m.data) < n {
		m.data = make([]float64, n)
	}
	m.data = m.data[:n]
	m.rows, m.cols = rows, cols
	return m
}

// CopyFrom reshapes m to src's shape and copies src's contents into it.
func (m *Matrix) CopyFrom(src *Matrix) *Matrix {
	m.Reset(src.rows, src.cols)
	copy(m.data, src.data)
	return m
}

// SetIdentity reshapes m to n×n and fills it with the identity.
func (m *Matrix) SetIdentity(n int) *Matrix {
	m.Reset(n, n)
	for i := range m.data {
		m.data[i] = 0
	}
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Dims returns the (rows, cols) of the matrix.
func (m *Matrix) Dims() (int, int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RowView returns row i without copying. Mutating the returned slice mutates
// the matrix; callers that need isolation should use Row.
func (m *Matrix) RowView(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Add returns a+b.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d + %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out, nil
}

// Sub returns a-b.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: %dx%d - %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Scale returns s*a as a new matrix.
func Scale(s float64, a *Matrix) *Matrix {
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = s * a.data[i]
	}
	return out
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) (*Matrix, error) {
	return MulWorkers(a, b, 1)
}

// MulWorkers returns the matrix product a*b computed with up to workers
// goroutines over contiguous blocks of output rows (workers <= 0 means
// GOMAXPROCS). Every output element accumulates its k-terms in exactly the
// same order as the sequential product, so the result is bit-identical to
// Mul for any worker count; a resolved worker count of 1 runs entirely in
// the calling goroutine.
func MulWorkers(a, b *Matrix, workers int) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: %dx%d * %dx%d", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.cols)
	workers = par.WorkersFor(workers, int64(a.rows)*int64(a.cols)*int64(b.cols))
	par.Blocks(workers, a.rows, func(lo, hi int) {
		mulRows(a, b, out, lo, hi)
	})
	return out, nil
}

// mulRows computes output rows [lo, hi) of out = a*b. Row blocks are
// disjoint, so concurrent calls on distinct ranges never race.
func mulRows(a, b, out *Matrix, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MulVec returns the matrix-vector product a*x.
func MulVec(a *Matrix, x []float64) ([]float64, error) {
	if a.cols != len(x) {
		return nil, fmt.Errorf("%w: %dx%d * vec(%d)", ErrShape, a.rows, a.cols, len(x))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		row := a.data[i*a.cols : (i+1)*a.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out, nil
}

// SubMatrix extracts the rows and columns listed in rowIdx and colIdx (in
// order, duplicates allowed).
func (m *Matrix) SubMatrix(rowIdx, colIdx []int) (*Matrix, error) {
	return m.SubMatrixInto(new(Matrix), rowIdx, colIdx)
}

// SubMatrixInto is SubMatrix writing into the caller-owned dst (reshaped as
// needed). Returns dst.
func (m *Matrix) SubMatrixInto(dst *Matrix, rowIdx, colIdx []int) (*Matrix, error) {
	if len(rowIdx) == 0 || len(colIdx) == 0 {
		return nil, fmt.Errorf("%w: empty index set", ErrShape)
	}
	out := dst.Reset(len(rowIdx), len(colIdx))
	for i, ri := range rowIdx {
		if ri < 0 || ri >= m.rows {
			return nil, fmt.Errorf("%w: row index %d out of range", ErrShape, ri)
		}
		for j, cj := range colIdx {
			if cj < 0 || cj >= m.cols {
				return nil, fmt.Errorf("%w: col index %d out of range", ErrShape, cj)
			}
			out.data[i*out.cols+j] = m.data[ri*m.cols+cj]
		}
	}
	return out, nil
}

// Trace returns the sum of diagonal elements of a square matrix.
func (m *Matrix) Trace() float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	var t float64
	for i := 0; i < n; i++ {
		t += m.data[i*m.cols+i]
	}
	return t
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func (m *Matrix) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Equal reports whether a and b have the same shape and entries within tol.
func Equal(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}
