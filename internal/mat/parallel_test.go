package mat

import (
	"math/rand"
	"testing"
)

func seededMatrix(rows, cols int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := New(rows, cols)
	for i := range m.data {
		// Mix in exact zeros so the da == 0 / av == 0 skip paths are
		// exercised by the bit-identity comparison.
		if rng.Intn(7) == 0 {
			continue
		}
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// bitIdentical reports whether two matrices match exactly — same float64
// bit patterns, not approximate equality.
func bitIdentical(a, b *Matrix) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] {
			return false
		}
		// Distinguish +0 from -0: a sign flip would betray a reordered
		// reduction even though == treats them as equal.
		if a.data[i] == 0 && (1/a.data[i] != 1/b.data[i]) {
			return false
		}
	}
	return true
}

func TestWrap(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m, err := Wrap(2, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v; want 6", m.At(1, 2))
	}
	// No copy: mutating the backing slice must show through.
	data[5] = 60
	if m.At(1, 2) != 60 {
		t.Error("Wrap copied the data; want shared backing slice")
	}
	if _, err := Wrap(2, 3, []float64{1}); err == nil {
		t.Error("no error for wrong-sized data")
	}
	if _, err := Wrap(0, 3, nil); err == nil {
		t.Error("no error for zero rows")
	}
}

func TestMulWorkersBitIdentical(t *testing.T) {
	for _, tc := range []struct{ m, k, n int }{
		{1, 1, 1}, {3, 4, 5}, {64, 64, 64}, {101, 53, 97}, {200, 40, 120},
	} {
		a := seededMatrix(tc.m, tc.k, int64(tc.m*1000+tc.k))
		b := seededMatrix(tc.k, tc.n, int64(tc.k*1000+tc.n))
		seq, err := MulWorkers(a, b, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 7, 16} {
			parOut, err := MulWorkers(a, b, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !bitIdentical(seq, parOut) {
				t.Fatalf("%dx%dx%d workers=%d: parallel product differs from sequential",
					tc.m, tc.k, tc.n, workers)
			}
		}
	}
}

func TestMulWorkersShapeError(t *testing.T) {
	a := New(2, 3)
	b := New(4, 2)
	if _, err := MulWorkers(a, b, 4); err == nil {
		t.Error("no shape error")
	}
}

func TestCovarianceWorkersBitIdentical(t *testing.T) {
	for _, tc := range []struct{ n, d int }{
		{2, 1}, {50, 7}, {400, 33}, {123, 64},
	} {
		x := seededMatrix(tc.n, tc.d, int64(tc.n*31+tc.d))
		seq, err := CovarianceWorkers(x, 1)
		if err != nil {
			t.Fatal(err)
		}
		if want, _ := Covariance(x); !bitIdentical(seq, want) {
			t.Fatal("CovarianceWorkers(x, 1) differs from Covariance(x)")
		}
		for _, workers := range []int{2, 5, 16} {
			parOut, err := CovarianceWorkers(x, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !bitIdentical(seq, parOut) {
				t.Fatalf("n=%d d=%d workers=%d: parallel covariance differs from sequential",
					tc.n, tc.d, workers)
			}
		}
	}
}

func TestCovarianceWorkersTooFewRows(t *testing.T) {
	if _, err := CovarianceWorkers(New(1, 3), 4); err == nil {
		t.Error("no error for single-row input")
	}
}
