package mat

import (
	"fmt"
	"math"

	"netdrift/internal/par"
)

// Solve solves the linear system a*x = b for x using Gaussian elimination
// with partial pivoting. a must be square; b may have multiple columns.
// Neither input is modified.
func Solve(a, b *Matrix) (*Matrix, error) {
	return SolveInto(a, b, new(Matrix), new(Matrix), new(Matrix))
}

// SolveInto is Solve with caller-owned workspaces: aw and bw receive the
// elimination working copies of a and b, and the solution is written into x
// (all three reshaped as needed). Returns x. The elimination and
// back-substitution arithmetic is identical to Solve, operation for
// operation, so reusing workspaces never changes a result.
func SolveInto(a, b, aw, bw, x *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: coefficient matrix is %dx%d", ErrShape, a.rows, a.cols)
	}
	if a.rows != b.rows {
		return nil, fmt.Errorf("%w: a is %dx%d, b has %d rows", ErrShape, a.rows, a.cols, b.rows)
	}
	n := a.rows
	// Augmented working copies.
	aw.CopyFrom(a)
	bw.CopyFrom(b)

	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(aw.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aw.At(r, col)); v > maxAbs {
				maxAbs = v
				pivot = r
			}
		}
		if maxAbs < 1e-12 {
			return nil, fmt.Errorf("%w: pivot %d", ErrSingular, col)
		}
		if pivot != col {
			swapRows(aw, pivot, col)
			swapRows(bw, pivot, col)
		}
		// Eliminate below.
		pivVal := aw.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := aw.At(r, col) / pivVal
			if factor == 0 {
				continue
			}
			for c := col; c < n; c++ {
				aw.Set(r, c, aw.At(r, c)-factor*aw.At(col, c))
			}
			for c := 0; c < bw.cols; c++ {
				bw.Set(r, c, bw.At(r, c)-factor*bw.At(col, c))
			}
		}
	}
	// Back substitution (every x entry is written before it is read, so the
	// workspace needs no zeroing).
	x.Reset(n, bw.cols)
	for c := 0; c < bw.cols; c++ {
		for r := n - 1; r >= 0; r-- {
			s := bw.At(r, c)
			for k := r + 1; k < n; k++ {
				s -= aw.At(r, k) * x.At(k, c)
			}
			x.Set(r, c, s/aw.At(r, r))
		}
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Inverse returns the inverse of a square matrix.
func Inverse(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrShape, a.rows, a.cols)
	}
	return Solve(a, Identity(a.rows))
}

// InverseInto is Inverse with caller-owned workspaces: ident holds the
// identity right-hand side, aw/bw the elimination working copies, and the
// inverse is written into x. Returns x.
func InverseInto(a, ident, aw, bw, x *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrShape, a.rows, a.cols)
	}
	ident.SetIdentity(a.rows)
	return SolveInto(a, ident, aw, bw, x)
}

// Cholesky computes the lower-triangular factor L with a = L*Lᵀ.
// Returns ErrNotPD when a is not (numerically) positive definite.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("%w: %dx%d", ErrShape, a.rows, a.cols)
	}
	n := a.rows
	l := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < j; k++ {
				s += l.At(i, k) * l.At(j, k)
			}
			if i == j {
				d := a.At(i, i) - s
				if d <= 0 {
					return nil, fmt.Errorf("%w: leading minor %d", ErrNotPD, i)
				}
				l.Set(i, j, math.Sqrt(d))
			} else {
				l.Set(i, j, (a.At(i, j)-s)/l.At(j, j))
			}
		}
	}
	return l, nil
}

// LogDetPD returns the log-determinant of a positive-definite matrix via its
// Cholesky factor.
func LogDetPD(a *Matrix) (float64, error) {
	l, err := Cholesky(a)
	if err != nil {
		return 0, err
	}
	var ld float64
	for i := 0; i < l.rows; i++ {
		ld += math.Log(l.At(i, i))
	}
	return 2 * ld, nil
}

// Covariance computes the (cols×cols) sample covariance matrix of the rows
// of x, using the unbiased 1/(n-1) normalization. x must have at least two
// rows.
func Covariance(x *Matrix) (*Matrix, error) {
	return CovarianceWorkers(x, 1)
}

// CovarianceWorkers computes Covariance with up to workers goroutines
// (workers <= 0 means GOMAXPROCS), parallelized over contiguous blocks of
// output rows. Each covariance entry accumulates its per-sample terms in
// ascending sample order — the same order as the sequential kernel — so the
// result is bit-identical to Covariance for any worker count; a resolved
// worker count of 1 runs entirely in the calling goroutine.
func CovarianceWorkers(x *Matrix, workers int) (*Matrix, error) {
	n, d := x.Dims()
	if n < 2 {
		return nil, fmt.Errorf("%w: need >= 2 rows, have %d", ErrShape, n)
	}
	means := make([]float64, d)
	for i := 0; i < n; i++ {
		row := x.data[i*d : (i+1)*d]
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	cov := New(d, d)
	workers = par.WorkersFor(workers, int64(n)*int64(d)*int64(d))
	if workers == 1 {
		// Sequential path: one pass over the samples, upper triangle only.
		for i := 0; i < n; i++ {
			row := x.data[i*d : (i+1)*d]
			for a := 0; a < d; a++ {
				da := row[a] - means[a]
				if da == 0 {
					continue
				}
				crow := cov.data[a*d : (a+1)*d]
				for b := a; b < d; b++ {
					crow[b] += da * (row[b] - means[b])
				}
			}
		}
	} else {
		// Parallel path: each worker owns a disjoint block of output rows
		// and scans the samples in the same ascending order, so every
		// cov[a][b] sees the identical sequence of floating-point adds
		// (including the da == 0 skips) as the sequential pass.
		par.Blocks(workers, d, func(lo, hi int) {
			for i := 0; i < n; i++ {
				row := x.data[i*d : (i+1)*d]
				for a := lo; a < hi; a++ {
					da := row[a] - means[a]
					if da == 0 {
						continue
					}
					crow := cov.data[a*d : (a+1)*d]
					for b := a; b < d; b++ {
						crow[b] += da * (row[b] - means[b])
					}
				}
			}
		})
	}
	norm := 1.0 / float64(n-1)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) * norm
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov, nil
}

// CorrelationFromCov converts a covariance matrix into a correlation matrix.
// Zero-variance dimensions yield zero correlations (and unit diagonal).
func CorrelationFromCov(cov *Matrix) *Matrix {
	d := cov.rows
	corr := New(d, d)
	sd := make([]float64, d)
	for i := 0; i < d; i++ {
		sd[i] = math.Sqrt(math.Max(cov.At(i, i), 0))
	}
	for a := 0; a < d; a++ {
		for b := 0; b < d; b++ {
			if a == b {
				corr.Set(a, b, 1)
				continue
			}
			if sd[a] == 0 || sd[b] == 0 {
				continue
			}
			corr.Set(a, b, cov.At(a, b)/(sd[a]*sd[b]))
		}
	}
	return corr
}
