package mat

import (
	"math/rand"
	"reflect"
	"testing"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := range m.data {
		m.data[i] = rng.NormFloat64()
	}
	return m
}

// diagDominant returns a random diagonally dominant (hence invertible)
// square matrix.
func diagDominant(rng *rand.Rand, n int) *Matrix {
	m := randMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, m.At(i, i)+float64(n)+1)
	}
	return m
}

// TestSolveIntoMatchesSolve pins the workspace solve bit-for-bit against
// Solve, reusing the same workspaces across descending sizes so stale
// contents from a larger system would surface as a mismatch.
func TestSolveIntoMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var aw, bw, x Matrix
	for _, n := range []int{6, 4, 6, 2, 1} {
		a := diagDominant(rng, n)
		b := randMatrix(rng, n, 3)
		want, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveInto(a, b, &aw, &bw, &x)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.data, want.data) || got.rows != want.rows || got.cols != want.cols {
			t.Fatalf("n=%d: SolveInto differs from Solve", n)
		}
	}
}

// TestInverseIntoMatchesInverse pins the workspace inverse against Inverse.
func TestInverseIntoMatchesInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var ident, aw, bw, x Matrix
	for _, n := range []int{5, 3, 5, 1} {
		a := diagDominant(rng, n)
		want, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		got, err := InverseInto(a, &ident, &aw, &bw, &x)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.data, want.data) {
			t.Fatalf("n=%d: InverseInto differs from Inverse", n)
		}
	}
}

// TestSubMatrixIntoMatchesSubMatrix covers the in-place extraction,
// including duplicate indices and out-of-range errors.
func TestSubMatrixIntoMatchesSubMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMatrix(rng, 5, 6)
	var dst Matrix
	cases := [][2][]int{
		{{0, 2, 4}, {1, 3}},
		{{1, 1}, {0, 0, 5}},
		{{4}, {2}},
	}
	for _, c := range cases {
		want, err := m.SubMatrix(c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.SubMatrixInto(&dst, c[0], c[1])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.data, want.data) || got.rows != want.rows || got.cols != want.cols {
			t.Fatalf("rows %v cols %v: SubMatrixInto differs", c[0], c[1])
		}
	}
	if _, err := m.SubMatrixInto(&dst, []int{9}, []int{0}); err == nil {
		t.Fatal("expected out-of-range row error")
	}
	if _, err := m.SubMatrixInto(&dst, nil, []int{0}); err == nil {
		t.Fatal("expected empty index error")
	}
}

// TestResetReusesBacking verifies Reset only reallocates on growth — the
// property every scratch buffer in the repo leans on.
func TestResetReusesBacking(t *testing.T) {
	var m Matrix
	m.Reset(4, 5)
	base := &m.data[0]
	m.Reset(2, 3)
	if &m.data[0] != base {
		t.Fatal("shrinking Reset reallocated")
	}
	if m.rows != 2 || m.cols != 3 || len(m.data) != 6 {
		t.Fatalf("bad shape after Reset: %dx%d len %d", m.rows, m.cols, len(m.data))
	}
	m.Reset(10, 10)
	if len(m.data) != 100 {
		t.Fatal("growing Reset did not resize")
	}
}

// TestCopyFromSetIdentity covers the remaining workspace primitives,
// including identity over a dirty reused buffer.
func TestCopyFromSetIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := randMatrix(rng, 3, 4)
	var m Matrix
	m.CopyFrom(src)
	if !Equal(&m, src, 0) {
		t.Fatal("CopyFrom mismatch")
	}
	m.data[0] = 42
	if src.data[0] == 42 {
		t.Fatal("CopyFrom aliased the source")
	}
	m.Reset(4, 4)
	for i := range m.data {
		m.data[i] = 9 // dirty the workspace
	}
	m.SetIdentity(3)
	if !Equal(&m, Identity(3), 0) {
		t.Fatal("SetIdentity left stale contents")
	}
}
