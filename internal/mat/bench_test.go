package mat

import (
	"fmt"
	"runtime"
	"testing"
)

// Benchmarks for the parallel matrix kernels. Compare seq vs par with:
//
//	go test -bench 'Mul|Covariance' -benchtime 1x ./internal/mat
func BenchmarkMul(b *testing.B) {
	for _, size := range []int{64, 256} {
		a := seededMatrix(size, size, 1)
		c := seededMatrix(size, size, 2)
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("n=%d/workers=%d", size, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := MulWorkers(a, c, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkCovariance(b *testing.B) {
	for _, tc := range []struct{ n, d int }{{2000, 64}, {5000, 128}} {
		x := seededMatrix(tc.n, tc.d, 3)
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("n=%d_d=%d/workers=%d", tc.n, tc.d, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := CovarianceWorkers(x, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
