package metrics

import (
	"fmt"
	"strings"
)

// ClassReport holds one class's precision/recall/F1 and support.
type ClassReport struct {
	Class     int
	Name      string
	Precision float64
	Recall    float64
	F1        float64
	Support   int
}

// Report is a per-class breakdown plus aggregate scores.
type Report struct {
	Classes  []ClassReport
	Accuracy float64
	MacroF1  float64
}

// NewReport builds a classification report. classNames is optional; when
// shorter than numClasses, remaining classes are named "class<i>".
func NewReport(yTrue, yPred []int, numClasses int, classNames []string) (*Report, error) {
	c, err := NewConfusion(yTrue, yPred, numClasses)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Accuracy: c.Accuracy(),
		MacroF1:  c.MacroF1(),
	}
	f1s := c.PerClassF1()
	for cls := 0; cls < numClasses; cls++ {
		var tp, fp, fn, support int
		for j := 0; j < numClasses; j++ {
			if j == cls {
				tp = c.Counts[cls][cls]
			} else {
				fn += c.Counts[cls][j]
				fp += c.Counts[j][cls]
			}
			support += c.Counts[cls][j]
		}
		cr := ClassReport{Class: cls, F1: f1s[cls], Support: support}
		if cls < len(classNames) {
			cr.Name = classNames[cls]
		} else {
			cr.Name = fmt.Sprintf("class%d", cls)
		}
		if tp+fp > 0 {
			cr.Precision = float64(tp) / float64(tp+fp)
		}
		if tp+fn > 0 {
			cr.Recall = float64(tp) / float64(tp+fn)
		}
		rep.Classes = append(rep.Classes, cr)
	}
	return rep, nil
}

// String renders the report in the familiar sklearn-style layout.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %9s %9s %9s %9s\n", "", "precision", "recall", "f1", "support")
	for _, c := range r.Classes {
		fmt.Fprintf(&sb, "%-24s %9.3f %9.3f %9.3f %9d\n",
			c.Name, c.Precision, c.Recall, c.F1, c.Support)
	}
	fmt.Fprintf(&sb, "\n%-24s %9.3f\n", "accuracy", r.Accuracy)
	fmt.Fprintf(&sb, "%-24s %9.3f\n", "macro F1", r.MacroF1)
	return sb.String()
}
