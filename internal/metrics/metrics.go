// Package metrics implements classification evaluation metrics: confusion
// matrices, accuracy, and the macro-averaged F1 score the paper reports.
package metrics

import (
	"fmt"
	"strings"
)

// Confusion is a square confusion matrix: Counts[actual][predicted].
type Confusion struct {
	Counts [][]int
}

// NewConfusion tallies predictions against ground truth over numClasses.
func NewConfusion(yTrue, yPred []int, numClasses int) (*Confusion, error) {
	if len(yTrue) != len(yPred) {
		return nil, fmt.Errorf("metrics: %d truths vs %d predictions", len(yTrue), len(yPred))
	}
	if numClasses < 2 {
		return nil, fmt.Errorf("metrics: numClasses %d must be >= 2", numClasses)
	}
	c := &Confusion{Counts: make([][]int, numClasses)}
	for i := range c.Counts {
		c.Counts[i] = make([]int, numClasses)
	}
	for i := range yTrue {
		if yTrue[i] < 0 || yTrue[i] >= numClasses {
			return nil, fmt.Errorf("metrics: true label %d out of range", yTrue[i])
		}
		if yPred[i] < 0 || yPred[i] >= numClasses {
			return nil, fmt.Errorf("metrics: predicted label %d out of range", yPred[i])
		}
		c.Counts[yTrue[i]][yPred[i]]++
	}
	return c, nil
}

// Accuracy returns the fraction of correct predictions.
func (c *Confusion) Accuracy() float64 {
	var correct, total int
	for i, row := range c.Counts {
		for j, v := range row {
			total += v
			if i == j {
				correct += v
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(correct) / float64(total)
}

// PerClassF1 returns each class's F1 score. Classes absent from both the
// truth and the predictions score zero.
func (c *Confusion) PerClassF1() []float64 {
	k := len(c.Counts)
	out := make([]float64, k)
	for cls := 0; cls < k; cls++ {
		var tp, fp, fn int
		for j := 0; j < k; j++ {
			if j == cls {
				tp = c.Counts[cls][cls]
				continue
			}
			fn += c.Counts[cls][j]
			fp += c.Counts[j][cls]
		}
		denom := 2*tp + fp + fn
		if denom == 0 {
			continue
		}
		out[cls] = 2 * float64(tp) / float64(denom)
	}
	return out
}

// MacroF1 returns the unweighted mean of per-class F1 scores, the metric
// reported throughout the paper's evaluation.
func (c *Confusion) MacroF1() float64 {
	f1s := c.PerClassF1()
	var s float64
	for _, v := range f1s {
		s += v
	}
	return s / float64(len(f1s))
}

// String renders the matrix compactly for logs.
func (c *Confusion) String() string {
	var sb strings.Builder
	for _, row := range c.Counts {
		for j, v := range row {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%4d", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// MacroF1Score is a convenience wrapper: confusion + macro F1 in one call,
// returning the score scaled to [0, 100] as the paper reports it.
func MacroF1Score(yTrue, yPred []int, numClasses int) (float64, error) {
	c, err := NewConfusion(yTrue, yPred, numClasses)
	if err != nil {
		return 0, err
	}
	return 100 * c.MacroF1(), nil
}

// Argmax returns the index of the largest value in each probability row.
func Argmax(probs [][]float64) []int {
	out := make([]int, len(probs))
	for i, row := range probs {
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
