package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestReportKnownValues(t *testing.T) {
	// Class 0: tp=1 fp=1 fn=1 -> P=0.5 R=0.5 F1=0.5, support 2.
	// Class 1: tp=2 fp=1 fn=1 -> P=2/3 R=2/3 F1=2/3, support 3.
	// Class 2: tp=1 fp=0 fn=0 -> P=1 R=1 F1=1, support 1.
	yTrue := []int{0, 0, 1, 1, 1, 2}
	yPred := []int{0, 1, 1, 1, 0, 2}
	rep, err := NewReport(yTrue, yPred, 3, []string{"normal", "fault"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 3 {
		t.Fatalf("classes = %d; want 3", len(rep.Classes))
	}
	checks := []struct {
		p, r, f1 float64
		support  int
		name     string
	}{
		{0.5, 0.5, 0.5, 2, "normal"},
		{2.0 / 3, 2.0 / 3, 2.0 / 3, 3, "fault"},
		{1, 1, 1, 1, "class2"}, // name falls back when classNames is short
	}
	for i, want := range checks {
		got := rep.Classes[i]
		if math.Abs(got.Precision-want.p) > 1e-12 ||
			math.Abs(got.Recall-want.r) > 1e-12 ||
			math.Abs(got.F1-want.f1) > 1e-12 {
			t.Errorf("class %d: P/R/F1 = %.3f/%.3f/%.3f; want %.3f/%.3f/%.3f",
				i, got.Precision, got.Recall, got.F1, want.p, want.r, want.f1)
		}
		if got.Support != want.support {
			t.Errorf("class %d support = %d; want %d", i, got.Support, want.support)
		}
		if got.Name != want.name {
			t.Errorf("class %d name = %q; want %q", i, got.Name, want.name)
		}
	}
	if math.Abs(rep.Accuracy-4.0/6.0) > 1e-12 {
		t.Errorf("accuracy = %v; want 4/6", rep.Accuracy)
	}
}

func TestReportString(t *testing.T) {
	rep, err := NewReport([]int{0, 1}, []int{0, 1}, 2, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"precision", "recall", "support", "a", "b", "macro F1"} {
		if !strings.Contains(s, want) {
			t.Errorf("report output missing %q:\n%s", want, s)
		}
	}
}

func TestReportErrors(t *testing.T) {
	if _, err := NewReport([]int{0}, []int{0, 1}, 2, nil); err == nil {
		t.Error("expected length mismatch error")
	}
}
