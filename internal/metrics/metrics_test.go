package metrics

import (
	"math"
	"testing"
)

func TestConfusionBasics(t *testing.T) {
	yTrue := []int{0, 0, 1, 1, 1, 2}
	yPred := []int{0, 1, 1, 1, 0, 2}
	c, err := NewConfusion(yTrue, yPred, 3)
	if err != nil {
		t.Fatal(err)
	}
	if c.Counts[0][0] != 1 || c.Counts[0][1] != 1 || c.Counts[1][1] != 2 ||
		c.Counts[1][0] != 1 || c.Counts[2][2] != 1 {
		t.Errorf("confusion wrong:\n%v", c)
	}
	if acc := c.Accuracy(); math.Abs(acc-4.0/6.0) > 1e-12 {
		t.Errorf("accuracy = %v; want 4/6", acc)
	}
}

func TestPerClassF1KnownValues(t *testing.T) {
	// Class 0: tp=1, fp=1, fn=1 -> F1 = 2/(2+2) = 0.5
	// Class 1: tp=2, fp=1, fn=1 -> F1 = 4/(4+2) = 2/3
	// Class 2: tp=1, fp=0, fn=0 -> F1 = 1
	yTrue := []int{0, 0, 1, 1, 1, 2}
	yPred := []int{0, 1, 1, 1, 0, 2}
	c, _ := NewConfusion(yTrue, yPred, 3)
	f1 := c.PerClassF1()
	want := []float64{0.5, 2.0 / 3.0, 1.0}
	for i := range want {
		if math.Abs(f1[i]-want[i]) > 1e-12 {
			t.Errorf("F1[%d] = %v; want %v", i, f1[i], want[i])
		}
	}
	wantMacro := (0.5 + 2.0/3.0 + 1.0) / 3
	if m := c.MacroF1(); math.Abs(m-wantMacro) > 1e-12 {
		t.Errorf("MacroF1 = %v; want %v", m, wantMacro)
	}
}

func TestPerfectAndWorstF1(t *testing.T) {
	c, _ := NewConfusion([]int{0, 1, 0, 1}, []int{0, 1, 0, 1}, 2)
	if c.MacroF1() != 1 {
		t.Errorf("perfect MacroF1 = %v; want 1", c.MacroF1())
	}
	c, _ = NewConfusion([]int{0, 1, 0, 1}, []int{1, 0, 1, 0}, 2)
	if c.MacroF1() != 0 {
		t.Errorf("worst MacroF1 = %v; want 0", c.MacroF1())
	}
}

func TestAbsentClassScoresZero(t *testing.T) {
	// Class 2 never appears in truth or predictions.
	c, _ := NewConfusion([]int{0, 1}, []int{0, 1}, 3)
	f1 := c.PerClassF1()
	if f1[2] != 0 {
		t.Errorf("absent class F1 = %v; want 0", f1[2])
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := NewConfusion([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := NewConfusion([]int{0}, []int{5}, 2); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := NewConfusion([]int{-1}, []int{0}, 2); err == nil {
		t.Error("expected negative label error")
	}
	if _, err := NewConfusion([]int{0}, []int{0}, 1); err == nil {
		t.Error("expected numClasses error")
	}
}

func TestMacroF1Score(t *testing.T) {
	s, err := MacroF1Score([]int{0, 1, 0, 1}, []int{0, 1, 0, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s != 100 {
		t.Errorf("MacroF1Score = %v; want 100", s)
	}
}

func TestArgmax(t *testing.T) {
	got := Argmax([][]float64{{0.1, 0.7, 0.2}, {0.9, 0.05, 0.05}})
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("Argmax = %v; want [1 0]", got)
	}
}
