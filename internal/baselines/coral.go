package baselines

import (
	"fmt"

	"netdrift/internal/dataset"
	"netdrift/internal/mat"
	"netdrift/internal/models"
)

// CORAL implements Correlation Alignment (Sun et al., "Return of
// Frustratingly Easy Domain Adaptation"): re-color the source features so
// their second-order statistics match the target's, then train on the
// transformed source plus the support set. With few-shot targets the target
// covariance is heavily shrunk toward identity.
type CORAL struct {
	// Shrinkage blends the target covariance with identity; 0 selects an
	// automatic value growing as the support set shrinks.
	Shrinkage float64
	Seed      int64
}

var _ Method = CORAL{}

// Name implements Method.
func (CORAL) Name() string { return "CORAL" }

// ModelAgnostic implements Method.
func (CORAL) ModelAgnostic() bool { return true }

// Predict implements Method.
func (m CORAL) Predict(source, support, test *dataset.Dataset, clf models.Classifier) ([]int, error) {
	if err := validateInputs(source, support, test, true); err != nil {
		return nil, err
	}
	scaled, err := zScale(source.X, source.X, support.X, test.X)
	if err != nil {
		return nil, err
	}
	srcX, supX, testX := scaled[0], scaled[1], scaled[2]
	d := source.NumFeatures()

	shrink := m.Shrinkage
	if shrink == 0 {
		// More shrinkage with fewer support samples relative to dimension.
		shrink = float64(d) / float64(d+len(supX))
		if shrink > 0.95 {
			shrink = 0.95
		}
	}

	cs, err := shrunkCovariance(srcX, 0.05)
	if err != nil {
		return nil, fmt.Errorf("baselines: coral source covariance: %w", err)
	}
	ct, err := shrunkCovariance(supX, shrink)
	if err != nil {
		return nil, fmt.Errorf("baselines: coral target covariance: %w", err)
	}
	// x' = x · A with A = Ls^{-T} Lt^{T}: then Cov(x') = A^T Cs A = Ct.
	ls, err := mat.Cholesky(cs)
	if err != nil {
		return nil, fmt.Errorf("baselines: coral source factor: %w", err)
	}
	lt, err := mat.Cholesky(ct)
	if err != nil {
		return nil, fmt.Errorf("baselines: coral target factor: %w", err)
	}
	// A = solve(Ls^T, Lt^T).
	a, err := mat.Solve(ls.T(), lt.T())
	if err != nil {
		return nil, fmt.Errorf("baselines: coral transform: %w", err)
	}
	transformed := applyRight(srcX, a)

	// Train on re-colored source plus the raw support samples.
	trainX := append(transformed, supX...)
	trainY := append(append([]int(nil), source.Y...), support.Y...)
	if err := clf.Fit(trainX, trainY, numClassesOf(source, support, test)); err != nil {
		return nil, fmt.Errorf("baselines: coral fit: %w", err)
	}
	return models.PredictClasses(clf, testX)
}

// shrunkCovariance returns (1-λ)·Cov + λ·I.
func shrunkCovariance(x [][]float64, lambda float64) (*mat.Matrix, error) {
	xm, err := mat.FromRows(x)
	if err != nil {
		return nil, err
	}
	cov, err := mat.Covariance(xm)
	if err != nil {
		return nil, err
	}
	d := cov.Rows()
	out := mat.Scale(1-lambda, cov)
	for i := 0; i < d; i++ {
		out.Set(i, i, out.At(i, i)+lambda)
	}
	return out, nil
}

// applyRight computes each row · A.
func applyRight(x [][]float64, a *mat.Matrix) [][]float64 {
	d := a.Rows()
	out := make([][]float64, len(x))
	for i, row := range x {
		o := make([]float64, a.Cols())
		for k := 0; k < d; k++ {
			v := row[k]
			if v == 0 {
				continue
			}
			for j := 0; j < a.Cols(); j++ {
				o[j] += v * a.At(k, j)
			}
		}
		out[i] = o
	}
	return out
}
