package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"netdrift/internal/dataset"
	"netdrift/internal/models"
	"netdrift/internal/nn"
)

// fewShotHead selects the episodic scoring function.
type fewShotHead int

const (
	headProto fewShotHead = iota + 1 // squared distance to class prototypes
	headMatch                        // attention over individual support samples
)

// FewShotNet implements the MatchNet [22] and ProtoNet [21] baselines: an
// embedding network trained episodically on the source domain, with the
// few-shot target samples forming the inference-time support set.
type FewShotNet struct {
	Episodes int     // default 200
	Shots    int     // support size per class per episode; default 5
	Queries  int     // query size per class per episode; default 5
	LR       float64 // default 1e-3
	// ProtoBlend weighs the target support against source prototypes when
	// forming inference prototypes (ProtoNet only); default 0.7.
	ProtoBlend float64
	Seed       int64

	head fewShotHead
}

var _ Method = (*FewShotNet)(nil)

// NewProtoNet returns the prototypical-networks baseline.
func NewProtoNet(episodes int, seed int64) *FewShotNet {
	return &FewShotNet{Episodes: episodes, Seed: seed, head: headProto}
}

// NewMatchNet returns the matching-networks baseline.
func NewMatchNet(episodes int, seed int64) *FewShotNet {
	return &FewShotNet{Episodes: episodes, Seed: seed, head: headMatch}
}

// Name implements Method.
func (m *FewShotNet) Name() string {
	if m.head == headMatch {
		return "MatchNet"
	}
	return "ProtoNet"
}

// ModelAgnostic implements Method.
func (*FewShotNet) ModelAgnostic() bool { return false }

// Predict implements Method.
func (m *FewShotNet) Predict(source, support, test *dataset.Dataset, _ models.Classifier) ([]int, error) {
	if err := validateInputs(source, support, test, true); err != nil {
		return nil, err
	}
	episodes := m.Episodes
	if episodes == 0 {
		episodes = 200
	}
	shots := m.Shots
	if shots == 0 {
		shots = 5
	}
	queries := m.Queries
	if queries == 0 {
		queries = 5
	}
	lr := m.LR
	if lr == 0 {
		lr = 1e-3
	}
	blend := m.ProtoBlend
	if blend == 0 {
		blend = 0.7
	}
	numClasses := numClassesOf(source, support, test)
	scaled, err := zScale(source.X, source.X, support.X, test.X)
	if err != nil {
		return nil, err
	}
	srcX, supX, testX := scaled[0], scaled[1], scaled[2]

	rng := rand.New(rand.NewSource(m.Seed))
	in := source.NumFeatures()
	net := nn.NewNetwork(
		nn.NewDense(in, 128, rng),
		nn.NewReLU(),
		nn.NewDense(128, 64, rng),
	)
	opt := nn.NewAdam(lr, 1e-5)
	params := net.Params()

	byClass := make(map[int][]int)
	for i, y := range source.Y {
		byClass[y] = append(byClass[y], i)
	}

	for ep := 0; ep < episodes; ep++ {
		if err := m.episode(net, opt, params, srcX, byClass, numClasses, shots, queries, rng); err != nil {
			return nil, fmt.Errorf("baselines: %s episode %d: %w", m.Name(), ep, err)
		}
	}

	supZ := net.Forward(supX, false)
	testZ := net.Forward(testX, false)
	switch m.head {
	case headMatch:
		return matchInference(testZ, supZ, support.Y, numClasses), nil
	default:
		srcZ := net.Forward(srcX, false)
		return protoInference(testZ, srcZ, source.Y, supZ, support.Y, numClasses, blend), nil
	}
}

// episode runs one episodic training step on source data.
func (m *FewShotNet) episode(net *nn.Network, opt nn.Optimizer, params []*nn.Param,
	srcX [][]float64, byClass map[int][]int, numClasses, shots, queries int, rng *rand.Rand) error {

	var batch [][]float64
	var supClass, qryClass []int // class of each support/query row
	var supPos, qryPos []int     // row positions in batch
	for c := 0; c < numClasses; c++ {
		idx := byClass[c]
		if len(idx) == 0 {
			continue
		}
		perm := rng.Perm(len(idx))
		take := func(k int) []int {
			out := make([]int, 0, k)
			for i := 0; i < k; i++ {
				out = append(out, idx[perm[i%len(perm)]])
			}
			return out
		}
		for _, i := range take(shots) {
			supPos = append(supPos, len(batch))
			supClass = append(supClass, c)
			batch = append(batch, srcX[i])
		}
		perm = rng.Perm(len(idx))
		for _, i := range take(queries) {
			qryPos = append(qryPos, len(batch))
			qryClass = append(qryClass, c)
			batch = append(batch, srcX[i])
		}
	}
	if len(supPos) == 0 || len(qryPos) == 0 {
		return fmt.Errorf("empty episode")
	}

	z := net.Forward(batch, true)
	dim := len(z[0])

	// Per-class support statistics.
	classRows := make(map[int][]int) // class -> positions in batch
	for k, pos := range supPos {
		classRows[supClass[k]] = append(classRows[supClass[k]], pos)
	}
	protos := make(map[int][]float64)
	for c, rows := range classRows {
		p := make([]float64, dim)
		for _, r := range rows {
			for j, v := range z[r] {
				p[j] += v
			}
		}
		for j := range p {
			p[j] /= float64(len(rows))
		}
		protos[c] = p
	}
	classes := make([]int, 0, len(protos))
	for c := 0; c < numClasses; c++ {
		if _, ok := protos[c]; ok {
			classes = append(classes, c)
		}
	}

	const temp = 8.0
	gradZ := make([][]float64, len(z))
	for i := range gradZ {
		gradZ[i] = make([]float64, dim)
	}
	nQ := float64(len(qryPos))
	for k, qp := range qryPos {
		zq := z[qp]
		scores := make([]float64, len(classes))
		for ci, c := range classes {
			switch m.head {
			case headMatch:
				rows := classRows[c]
				var s float64
				for _, r := range rows {
					s += dot(zq, z[r])
				}
				scores[ci] = s / (temp * float64(len(rows)))
			default:
				scores[ci] = -sqDist(zq, protos[c])
			}
		}
		p := nn.Softmax(scores)
		for ci, c := range classes {
			g := p[ci] / nQ
			if c == qryClass[k] {
				g -= 1 / nQ
			}
			if g == 0 {
				continue
			}
			switch m.head {
			case headMatch:
				rows := classRows[c]
				scale := 1 / (temp * float64(len(rows)))
				for _, r := range rows {
					for j := 0; j < dim; j++ {
						gradZ[qp][j] += g * scale * z[r][j]
						gradZ[r][j] += g * scale * zq[j]
					}
				}
			default:
				proto := protos[c]
				rows := classRows[c]
				inv := 1 / float64(len(rows))
				for j := 0; j < dim; j++ {
					diff := zq[j] - proto[j]
					gradZ[qp][j] += g * (-2) * diff
					// Support gradient flows through the class mean.
					for _, r := range rows {
						gradZ[r][j] += g * 2 * diff * inv
					}
				}
			}
		}
	}
	net.Backward(gradZ)
	opt.Step(params)
	return nil
}

// protoInference blends source prototypes with target support means and
// assigns each query to the nearest prototype.
func protoInference(testZ, srcZ [][]float64, srcY []int, supZ [][]float64, supY []int, numClasses int, blend float64) []int {
	dim := len(testZ[0])
	srcProto := classMeans(srcZ, srcY, numClasses, dim)
	tgtProto := classMeans(supZ, supY, numClasses, dim)
	protos := make([][]float64, numClasses)
	for c := 0; c < numClasses; c++ {
		switch {
		case srcProto[c] == nil && tgtProto[c] == nil:
			continue
		case srcProto[c] == nil:
			protos[c] = tgtProto[c]
		case tgtProto[c] == nil:
			protos[c] = srcProto[c]
		default:
			p := make([]float64, dim)
			for j := 0; j < dim; j++ {
				p[j] = (1-blend)*srcProto[c][j] + blend*tgtProto[c][j]
			}
			protos[c] = p
		}
	}
	out := make([]int, len(testZ))
	for i, zq := range testZ {
		best, bestD := -1, math.Inf(1)
		for c, p := range protos {
			if p == nil {
				continue
			}
			if d := sqDist(zq, p); d < bestD {
				bestD = d
				best = c
			}
		}
		out[i] = best
	}
	return out
}

// matchInference classifies by cosine attention over the target support.
func matchInference(testZ, supZ [][]float64, supY []int, numClasses int) []int {
	const temp = 0.1
	out := make([]int, len(testZ))
	for i, zq := range testZ {
		sims := make([]float64, len(supZ))
		for s, zs := range supZ {
			sims[s] = cosine(zq, zs) / temp
		}
		att := nn.Softmax(sims)
		classMass := make([]float64, numClasses)
		for s, a := range att {
			classMass[supY[s]] += a
		}
		best := 0
		for c, v := range classMass {
			if v > classMass[best] {
				best = c
			}
		}
		out[i] = best
	}
	return out
}

func classMeans(z [][]float64, y []int, numClasses, dim int) [][]float64 {
	sums := make([][]float64, numClasses)
	counts := make([]int, numClasses)
	for i, c := range y {
		if sums[c] == nil {
			sums[c] = make([]float64, dim)
		}
		for j, v := range z[i] {
			sums[c][j] += v
		}
		counts[c]++
	}
	for c := range sums {
		if sums[c] == nil {
			continue
		}
		for j := range sums[c] {
			sums[c][j] /= float64(counts[c])
		}
	}
	return sums
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func cosine(a, b []float64) float64 {
	na, nb := math.Sqrt(dot(a, a)), math.Sqrt(dot(b, b))
	if na == 0 || nb == 0 {
		return 0
	}
	return dot(a, b) / (na * nb)
}
