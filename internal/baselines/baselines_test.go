package baselines

import (
	"errors"
	"math/rand"
	"testing"

	"netdrift/internal/dataset"
	"netdrift/internal/metrics"
	"netdrift/internal/models"
)

// driftProblem builds a 3-class drifted problem: 6 invariant signal
// features, 4 variant features that carry strong class signal in-domain but
// are mean-shifted in the target.
func driftProblem(n int, target bool, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]int, n)
	shifts := []float64{3, -3, 4, -4}
	for i := 0; i < n; i++ {
		c := i % 3
		row := make([]float64, 10)
		for j := 0; j < 6; j++ {
			row[j] = rng.NormFloat64() * 0.8
		}
		row[c] += 1.6 // invariant class signal
		for j := 0; j < 4; j++ {
			row[6+j] = rng.NormFloat64() * 0.5
			if (c+j)%3 == 0 {
				row[6+j] += 2.5 // strong variant class signal
			}
			if target {
				row[6+j] += shifts[j]
			}
		}
		x[i] = row
		y[i] = c
	}
	return &dataset.Dataset{X: x, Y: y}
}

func f1Of(t *testing.T, m Method, src, sup, tst *dataset.Dataset, clf models.Classifier) float64 {
	t.Helper()
	pred, err := m.Predict(src, sup, tst, clf)
	if err != nil {
		t.Fatalf("%s: %v", m.Name(), err)
	}
	if len(pred) != tst.NumSamples() {
		t.Fatalf("%s: %d predictions for %d samples", m.Name(), len(pred), tst.NumSamples())
	}
	f1, err := metrics.MacroF1Score(tst.Y, pred, 3)
	if err != nil {
		t.Fatal(err)
	}
	return f1
}

func quickClf() models.Classifier {
	return models.NewMLPClassifier(models.Options{Seed: 3, Epochs: 10})
}

func TestAllMethodsRunAndBeatChanceInDomain(t *testing.T) {
	src := driftProblem(450, false, 1)
	sup := driftProblem(15, true, 2)
	tst := driftProblem(240, true, 3)

	methods := []Method{
		SrcOnly{},
		TarOnly{},
		SAndT{Seed: 5},
		&FineTune{Seed: 5, PretrainEpochs: 8, TuneEpochs: 20},
		CORAL{Seed: 5},
		&DANN{Epochs: 8, Seed: 5},
		NewSCL(8, 5),
		NewMatchNet(60, 5),
		NewProtoNet(60, 5),
		CMT{Seed: 5},
		ICD{Seed: 5},
	}
	for _, m := range methods {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			var clf models.Classifier
			if m.ModelAgnostic() {
				clf = quickClf()
			}
			f1 := f1Of(t, m, src, sup, tst, clf)
			// Chance macro-F1 is ~33; every method must beat it. (SrcOnly
			// included: the drift hurts it but rarely below chance here.)
			if f1 < 25 {
				t.Errorf("%s F1 = %.1f; implausibly low", m.Name(), f1)
			}
			t.Logf("%s F1 = %.1f", m.Name(), f1)
		})
	}
}

func TestAdaptiveMethodsBeatSrcOnly(t *testing.T) {
	src := driftProblem(450, false, 7)
	sup := driftProblem(15, true, 8)
	tst := driftProblem(240, true, 9)

	srcOnly := f1Of(t, SrcOnly{}, src, sup, tst, quickClf())
	for _, m := range []Method{SAndT{Seed: 4}, CORAL{Seed: 4}, CMT{Seed: 4}} {
		f1 := f1Of(t, m, src, sup, tst, quickClf())
		if f1 <= srcOnly-5 {
			t.Errorf("%s F1 = %.1f worse than SrcOnly %.1f", m.Name(), f1, srcOnly)
		}
	}
}

func TestMethodNamesAndAgnosticism(t *testing.T) {
	tests := []struct {
		m        Method
		name     string
		agnostic bool
	}{
		{SrcOnly{}, "SrcOnly", true},
		{TarOnly{}, "TarOnly", true},
		{SAndT{}, "S&T", true},
		{&FineTune{}, "Fine-tune", false},
		{CORAL{}, "CORAL", true},
		{&DANN{}, "DANN", false},
		{NewSCL(1, 0), "SCL", false},
		{NewMatchNet(1, 0), "MatchNet", false},
		{NewProtoNet(1, 0), "ProtoNet", false},
		{CMT{}, "CMT", true},
		{ICD{}, "ICD", true},
	}
	for _, tt := range tests {
		if got := tt.m.Name(); got != tt.name {
			t.Errorf("Name = %q; want %q", got, tt.name)
		}
		if got := tt.m.ModelAgnostic(); got != tt.agnostic {
			t.Errorf("%s.ModelAgnostic = %v; want %v", tt.name, got, tt.agnostic)
		}
	}
}

func TestValidateInputs(t *testing.T) {
	good := driftProblem(30, false, 1)
	if err := validateInputs(nil, nil, good, false); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("nil source: err = %v; want ErrInvalidInput", err)
	}
	if err := validateInputs(good, nil, good, true); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("nil support: err = %v; want ErrInvalidInput", err)
	}
	narrow, _ := good.SelectFeatures([]int{0, 1})
	if err := validateInputs(good, good, narrow, false); !errors.Is(err, ErrInvalidInput) {
		t.Errorf("width mismatch: err = %v; want ErrInvalidInput", err)
	}
}

func TestICDVariantCount(t *testing.T) {
	src := driftProblem(450, false, 11)
	sup := driftProblem(30, true, 12)
	n, err := ICD{}.VariantCount(src, sup)
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 || n > 6 {
		t.Errorf("ICD variant count = %d; want within [1, 6] (4 shifted features)", n)
	}
}

func TestCMTAugmentationHandlesOneShot(t *testing.T) {
	src := driftProblem(300, false, 13)
	sup := driftProblem(3, true, 14) // exactly 1 per class
	tst := driftProblem(120, true, 15)
	f1 := f1Of(t, CMT{Seed: 9}, src, sup, tst, quickClf())
	if f1 < 25 {
		t.Errorf("CMT 1-shot F1 = %.1f; implausibly low", f1)
	}
}

func TestTarOnlyImprovesWithMoreShots(t *testing.T) {
	src := driftProblem(300, false, 16)
	tst := driftProblem(240, true, 17)
	f1Small := f1Of(t, TarOnly{}, src, driftProblem(6, true, 18), tst, quickClf())
	f1Large := f1Of(t, TarOnly{}, src, driftProblem(90, true, 19), tst, quickClf())
	if f1Large < f1Small-3 {
		t.Errorf("TarOnly should improve with shots: %.1f (6) vs %.1f (90)", f1Small, f1Large)
	}
}

// TestCMTDeterministicAcrossRuns guards the sorted class iteration in the
// augmentation loop: ranging over the per-class map directly let Go's
// randomized map order reassign the shared rng's draws between runs, so two
// identical CMT calls could train on differently ordered (and differently
// jittered) data and disagree.
func TestCMTDeterministicAcrossRuns(t *testing.T) {
	src := driftProblem(300, false, 11)
	sup := driftProblem(15, true, 12)
	tst := driftProblem(90, true, 13)
	run := func() []int {
		pred, err := CMT{Seed: 5}.Predict(src, sup, tst, quickClf())
		if err != nil {
			t.Fatal(err)
		}
		return pred
	}
	first := run()
	for trial := 0; trial < 3; trial++ {
		again := run()
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("trial %d: prediction %d differs (%d vs %d)", trial, i, again[i], first[i])
			}
		}
	}
}
