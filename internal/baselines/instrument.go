package baselines

import (
	"netdrift/internal/dataset"
	"netdrift/internal/models"
	"netdrift/internal/obs"
)

// instrumented wraps a Method with wall-clock timing. The Method interface
// folds per-method training and inference into Predict, so the recorded
// latency is the method's full fit+predict cost on the protocol — the
// running-time quantity the paper compares in §VI-D.
type instrumented struct {
	Method
	obs *obs.Observer
}

// Instrument wraps m so every Predict records its latency into the
// observer's netdrift_method_predict_seconds histogram, labelled by
// method name, and runs under a span. A nil observer returns m unchanged.
func Instrument(m Method, o *obs.Observer) Method {
	if o == nil || m == nil {
		return m
	}
	return &instrumented{Method: m, obs: o}
}

// Predict implements Method.
func (im *instrumented) Predict(source, support, test *dataset.Dataset, clf models.Classifier) ([]int, error) {
	defer im.obs.Time(obs.MetricMethodSeconds, "method", im.Name())()
	sp := im.obs.StartSpan("method.predict")
	sp.SetAttr("method", im.Name())
	defer sp.End()
	return im.Method.Predict(source, support, test, clf)
}

// Unwrap exposes the wrapped method (for type assertions in runners).
func (im *instrumented) Unwrap() Method { return im.Method }
