// Package baselines implements every compared approach from the paper's
// evaluation (§VI-A): the naive baselines (SrcOnly, TarOnly, S&T,
// Fine-Tune), domain-independent representation learning (CORAL, DANN,
// SCL), few-shot learners (MatchNet, ProtoNet), and the causal baselines
// (CMT, ICD). Model-agnostic methods accept any models.Classifier;
// model-specific methods (DANN, SCL, MatchNet, ProtoNet) train their own
// networks, as in the original works.
package baselines

import (
	"errors"
	"fmt"
	"math/rand"

	"netdrift/internal/dataset"
	"netdrift/internal/models"
	"netdrift/internal/stats"
)

// Method is a domain-adaptation approach evaluated on the paper's protocol:
// train on all source samples plus a few-shot target support set, then
// predict labels for target test rows.
type Method interface {
	// Name identifies the method as it appears in Table I.
	Name() string
	// ModelAgnostic reports whether Predict uses the supplied classifier.
	ModelAgnostic() bool
	// Predict trains per the method's protocol and labels the test rows.
	// clf is ignored by model-specific methods and may then be nil.
	Predict(source, support, test *dataset.Dataset, clf models.Classifier) ([]int, error)
}

// ErrInvalidInput is returned for malformed method inputs.
var ErrInvalidInput = errors.New("baselines: invalid input")

func validateInputs(source, support, test *dataset.Dataset, needSupport bool) error {
	if source == nil || test == nil {
		return fmt.Errorf("%w: nil dataset", ErrInvalidInput)
	}
	if err := source.Validate(); err != nil {
		return fmt.Errorf("%w: source: %v", ErrInvalidInput, err)
	}
	if err := test.Validate(); err != nil {
		return fmt.Errorf("%w: test: %v", ErrInvalidInput, err)
	}
	if source.NumFeatures() != test.NumFeatures() {
		return fmt.Errorf("%w: width mismatch source %d test %d",
			ErrInvalidInput, source.NumFeatures(), test.NumFeatures())
	}
	if needSupport {
		if support == nil {
			return fmt.Errorf("%w: nil support set", ErrInvalidInput)
		}
		if err := support.Validate(); err != nil {
			return fmt.Errorf("%w: support: %v", ErrInvalidInput, err)
		}
		if support.NumFeatures() != source.NumFeatures() {
			return fmt.Errorf("%w: support width %d", ErrInvalidInput, support.NumFeatures())
		}
	}
	return nil
}

// zScale fits a z-score scaler on fit rows and transforms each batch.
func zScale(fit [][]float64, batches ...[][]float64) ([][][]float64, error) {
	sc := stats.NewStandardScaler()
	if err := sc.Fit(fit); err != nil {
		return nil, err
	}
	out := make([][][]float64, len(batches))
	for i, b := range batches {
		t, err := sc.Transform(b)
		if err != nil {
			return nil, err
		}
		out[i] = t
	}
	return out, nil
}

func numClassesOf(ds ...*dataset.Dataset) int {
	k := 0
	for _, d := range ds {
		if d == nil {
			continue
		}
		if c := d.NumClasses(); c > k {
			k = c
		}
	}
	return k
}

// SrcOnly trains the classifier on source data only — the lower bound that
// quantifies raw drift damage.
type SrcOnly struct{}

var _ Method = SrcOnly{}

// Name implements Method.
func (SrcOnly) Name() string { return "SrcOnly" }

// ModelAgnostic implements Method.
func (SrcOnly) ModelAgnostic() bool { return true }

// Predict implements Method.
func (SrcOnly) Predict(source, support, test *dataset.Dataset, clf models.Classifier) ([]int, error) {
	if err := validateInputs(source, support, test, false); err != nil {
		return nil, err
	}
	scaled, err := zScale(source.X, source.X, test.X)
	if err != nil {
		return nil, err
	}
	if err := clf.Fit(scaled[0], source.Y, numClassesOf(source, test)); err != nil {
		return nil, fmt.Errorf("baselines: srconly fit: %w", err)
	}
	return models.PredictClasses(clf, scaled[1])
}

// TarOnly trains the classifier on the few-shot target support only.
type TarOnly struct{}

var _ Method = TarOnly{}

// Name implements Method.
func (TarOnly) Name() string { return "TarOnly" }

// ModelAgnostic implements Method.
func (TarOnly) ModelAgnostic() bool { return true }

// Predict implements Method.
func (TarOnly) Predict(source, support, test *dataset.Dataset, clf models.Classifier) ([]int, error) {
	if err := validateInputs(source, support, test, true); err != nil {
		return nil, err
	}
	scaled, err := zScale(support.X, support.X, test.X)
	if err != nil {
		return nil, err
	}
	if err := clf.Fit(scaled[0], support.Y, numClassesOf(source, support, test)); err != nil {
		return nil, fmt.Errorf("baselines: taronly fit: %w", err)
	}
	return models.PredictClasses(clf, scaled[1])
}

// SAndT pools source and target support, oversampling the support so the
// target domain carries extra weight (the paper's S&T baseline).
type SAndT struct {
	// TargetBoost multiplies the support set by duplication; 0 selects a
	// factor that brings the support to roughly a quarter of the source
	// volume.
	TargetBoost int
	Seed        int64
}

var _ Method = SAndT{}

// Name implements Method.
func (SAndT) Name() string { return "S&T" }

// ModelAgnostic implements Method.
func (SAndT) ModelAgnostic() bool { return true }

// Predict implements Method.
func (m SAndT) Predict(source, support, test *dataset.Dataset, clf models.Classifier) ([]int, error) {
	if err := validateInputs(source, support, test, true); err != nil {
		return nil, err
	}
	boost := m.TargetBoost
	if boost == 0 {
		boost = source.NumSamples() / (4 * support.NumSamples())
		if boost < 1 {
			boost = 1
		}
	}
	pooled := source.Clone()
	for b := 0; b < boost; b++ {
		var err error
		pooled, err = dataset.Concat(pooled, support)
		if err != nil {
			return nil, err
		}
	}
	pooled = pooled.Shuffle(rand.New(rand.NewSource(m.Seed)))
	scaled, err := zScale(pooled.X, pooled.X, test.X)
	if err != nil {
		return nil, err
	}
	if err := clf.Fit(scaled[0], pooled.Y, numClassesOf(source, support, test)); err != nil {
		return nil, fmt.Errorf("baselines: s&t fit: %w", err)
	}
	return models.PredictClasses(clf, scaled[1])
}
