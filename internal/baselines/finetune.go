package baselines

import (
	"fmt"
	"math/rand"

	"netdrift/internal/dataset"
	"netdrift/internal/models"
	"netdrift/internal/nn"
)

// FineTune pre-trains an MLP on the source domain and then re-optimizes all
// parameters on the few-shot target support at a lower learning rate. The
// paper applies this baseline to the MLP model only (§VI-B(a)) and
// fine-tunes all parameters rather than the last layer.
type FineTune struct {
	PretrainEpochs int     // default 30
	TuneEpochs     int     // default 60 (tiny support set)
	LR             float64 // pretrain LR; default 1e-3
	TuneLR         float64 // fine-tune LR; default 2e-4
	Seed           int64
}

var _ Method = (*FineTune)(nil)

// Name implements Method.
func (*FineTune) Name() string { return "Fine-tune" }

// ModelAgnostic implements Method: the paper restricts this baseline to the
// MLP architecture.
func (*FineTune) ModelAgnostic() bool { return false }

// Predict implements Method.
func (m *FineTune) Predict(source, support, test *dataset.Dataset, _ models.Classifier) ([]int, error) {
	if err := validateInputs(source, support, test, true); err != nil {
		return nil, err
	}
	pre := m.PretrainEpochs
	if pre == 0 {
		pre = 30
	}
	tune := m.TuneEpochs
	if tune == 0 {
		tune = 60
	}
	lr := m.LR
	if lr == 0 {
		lr = 1e-3
	}
	tuneLR := m.TuneLR
	if tuneLR == 0 {
		tuneLR = 2e-4
	}
	numClasses := numClassesOf(source, support, test)
	scaled, err := zScale(source.X, source.X, support.X, test.X)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(m.Seed))
	net := nn.NewMLP(nn.MLPConfig{
		In:      source.NumFeatures(),
		Hidden:  []int{128, 64},
		Out:     numClasses,
		Dropout: 0.1,
		Rng:     rng,
	})
	if err := trainNet(net, scaled[0], source.Y, pre, 64, lr, rng); err != nil {
		return nil, fmt.Errorf("baselines: finetune pretrain: %w", err)
	}
	if err := trainNet(net, scaled[1], support.Y, tune, 16, tuneLR, rng); err != nil {
		return nil, fmt.Errorf("baselines: finetune tune: %w", err)
	}
	return argmaxForward(net, scaled[2]), nil
}

func trainNet(net *nn.Network, x [][]float64, y []int, epochs, batch int, lr float64, rng *rand.Rand) error {
	opt := nn.NewAdam(lr, 1e-5)
	params := net.Params()
	for e := 0; e < epochs; e++ {
		for _, idx := range nn.Minibatches(len(x), batch, rng) {
			out := net.Forward(nn.Gather(x, idx), true)
			_, grad, err := nn.SoftmaxCE(out, nn.GatherLabels(y, idx))
			if err != nil {
				return err
			}
			net.Backward(grad)
			opt.Step(params)
		}
	}
	return nil
}

func argmaxForward(net *nn.Network, x [][]float64) []int {
	logits := net.Forward(x, false)
	out := make([]int, len(logits))
	for i, row := range logits {
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
