package baselines

import (
	"fmt"
	"math"
	"math/rand"

	"netdrift/internal/dataset"
	"netdrift/internal/models"
	"netdrift/internal/nn"
)

// DANN implements Domain-Adversarial Neural Networks (Ganin & Lempitsky):
// a shared feature extractor trained to classify labels while a
// gradient-reversed domain head tries to tell source from target, pushing
// the features toward domain independence. Model-specific: it trains its
// own network, as in [14], [15].
type DANN struct {
	Epochs int     // default 30
	LR     float64 // default 1e-3
	Lambda float64 // max gradient-reversal strength; default 1 (ramped)
	Seed   int64

	// useSupCon adds the supervised-contrastive term: the SCL baseline.
	useSupCon bool
	scWeight  float64
}

var _ Method = (*DANN)(nil)

// NewSCL returns the SCL baseline [38]: DANN's adversarial training
// combined with a supervised contrastive embedding loss.
func NewSCL(epochs int, seed int64) *DANN {
	return &DANN{Epochs: epochs, Seed: seed, useSupCon: true, scWeight: 0.5}
}

// Name implements Method.
func (m *DANN) Name() string {
	if m.useSupCon {
		return "SCL"
	}
	return "DANN"
}

// ModelAgnostic implements Method.
func (*DANN) ModelAgnostic() bool { return false }

// Predict implements Method.
func (m *DANN) Predict(source, support, test *dataset.Dataset, _ models.Classifier) ([]int, error) {
	if err := validateInputs(source, support, test, true); err != nil {
		return nil, err
	}
	epochs := m.Epochs
	if epochs == 0 {
		epochs = 30
	}
	lr := m.LR
	if lr == 0 {
		lr = 1e-3
	}
	lambdaMax := m.Lambda
	if lambdaMax == 0 {
		lambdaMax = 1
	}
	numClasses := numClassesOf(source, support, test)
	scaled, err := zScale(source.X, source.X, support.X, test.X)
	if err != nil {
		return nil, err
	}
	srcX, supX, testX := scaled[0], scaled[1], scaled[2]

	rng := rand.New(rand.NewSource(m.Seed))
	in := source.NumFeatures()
	feat := nn.NewNetwork(
		nn.NewDense(in, 128, rng),
		nn.NewReLU(),
		nn.NewDense(128, 64, rng),
		nn.NewReLU(),
	)
	labelHead := nn.NewNetwork(nn.NewDense(64, numClasses, rng))
	grl := &nn.GradReverse{Lambda: 0}
	domainHead := nn.NewNetwork(
		grl,
		nn.NewDense(64, 32, rng),
		nn.NewReLU(),
		nn.NewDense(32, 1, rng),
	)
	opt := nn.NewAdam(lr, 1e-5)
	params := append(append(feat.Params(), labelHead.Params()...), domainHead.Params()...)

	nSrc := len(srcX)
	batches := nn.Minibatches(nSrc, 64, rng)
	totalSteps := epochs * len(batches)
	step := 0
	for epoch := 0; epoch < epochs; epoch++ {
		for _, idx := range nn.Minibatches(nSrc, 64, rng) {
			// DANN's schedule: lambda ramps from 0 to lambdaMax.
			p := float64(step) / float64(totalSteps)
			grl.Lambda = lambdaMax * (2/(1+math.Exp(-10*p)) - 1)
			step++

			// Source half: label loss + domain label 0.
			bx := nn.Gather(srcX, idx)
			by := nn.GatherLabels(source.Y, idx)
			if err := m.adversarialStep(feat, labelHead, domainHead, bx, by, 0); err != nil {
				return nil, fmt.Errorf("baselines: %s source step: %w", m.Name(), err)
			}
			// Target half: resample the tiny support set with replacement.
			tIdx := make([]int, len(idx))
			for i := range tIdx {
				tIdx[i] = rng.Intn(len(supX))
			}
			tx := nn.Gather(supX, tIdx)
			ty := nn.GatherLabels(support.Y, tIdx)
			if err := m.adversarialStep(feat, labelHead, domainHead, tx, ty, 1); err != nil {
				return nil, fmt.Errorf("baselines: %s target step: %w", m.Name(), err)
			}
			opt.Step(params)
		}
	}

	z := feat.Forward(testX, false)
	return argmaxForward2(labelHead, z), nil
}

// adversarialStep accumulates gradients for one domain's batch: label CE
// (plus optional SupCon) and adversarial domain BCE through the reversal.
func (m *DANN) adversarialStep(feat, labelHead, domainHead *nn.Network, bx [][]float64, by []int, domain float64) error {
	z := feat.Forward(bx, true)

	logits := labelHead.Forward(z, true)
	_, gradLogits, err := nn.SoftmaxCE(logits, by)
	if err != nil {
		return err
	}
	gradZ := labelHead.Backward(gradLogits)

	dLogit := domainHead.Forward(z, true)
	_, gradD, err := nn.BCEWithLogits(dLogit, constTargets(len(bx), domain))
	if err != nil {
		return err
	}
	gradZD := domainHead.Backward(gradD)
	for i := range gradZ {
		for j := range gradZ[i] {
			gradZ[i][j] += gradZD[i][j]
		}
	}

	if m.useSupCon {
		_, gradSC, err := nn.SupConLoss(z, by, 0.5)
		if err != nil {
			return err
		}
		for i := range gradZ {
			for j := range gradZ[i] {
				gradZ[i][j] += m.scWeight * gradSC[i][j]
			}
		}
	}
	feat.Backward(gradZ)
	return nil
}

func constTargets(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func argmaxForward2(head *nn.Network, z [][]float64) []int {
	logits := head.Forward(z, false)
	out := make([]int, len(logits))
	for i, row := range logits {
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
