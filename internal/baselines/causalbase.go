package baselines

import (
	"fmt"
	"math/rand"
	"sort"

	"netdrift/internal/causal"
	"netdrift/internal/dataset"
	"netdrift/internal/mat"
	"netdrift/internal/models"
)

// CMT implements Causal Mechanism Transfer (Teshima et al. [26]) adapted to
// this library's stack: the source data estimates an invertible mixing of
// independent components (linear ICA via whitening — a documented
// simplification of the paper's nonlinear ICA, see DESIGN.md), and
// augmented target samples are produced by shuffling independent components
// among same-class target support samples. The classifier trains on the
// augmented target data.
type CMT struct {
	AugPerClass int     // augmented samples per class; default 60
	Jitter      float64 // component jitter for 1-shot classes; default 0.05
	Seed        int64
}

var _ Method = CMT{}

// Name implements Method.
func (CMT) Name() string { return "CMT" }

// ModelAgnostic implements Method.
func (CMT) ModelAgnostic() bool { return true }

// Predict implements Method.
func (m CMT) Predict(source, support, test *dataset.Dataset, clf models.Classifier) ([]int, error) {
	if err := validateInputs(source, support, test, true); err != nil {
		return nil, err
	}
	aug := m.AugPerClass
	if aug == 0 {
		aug = 60
	}
	jitter := m.Jitter
	if jitter == 0 {
		jitter = 0.05
	}
	scaled, err := zScale(source.X, source.X, support.X, test.X)
	if err != nil {
		return nil, err
	}
	srcX, supX, testX := scaled[0], scaled[1], scaled[2]

	// Mixing estimated on source: Cov = L·Lᵀ; components e = L⁻¹·x.
	cov, err := shrunkCovariance(srcX, 0.05)
	if err != nil {
		return nil, fmt.Errorf("baselines: cmt covariance: %w", err)
	}
	l, err := mat.Cholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("baselines: cmt mixing factor: %w", err)
	}
	linv, err := mat.Inverse(l)
	if err != nil {
		return nil, fmt.Errorf("baselines: cmt unmixing: %w", err)
	}

	// Whiten the support per class.
	byClass := make(map[int][][]float64)
	for i, row := range supX {
		e, err := mat.MulVec(linv, row)
		if err != nil {
			return nil, err
		}
		byClass[support.Y[i]] = append(byClass[support.Y[i]], e)
	}

	// Train on the source pool plus the augmented target samples. Teshima
	// et al. train on augmented target data alone; with 16-160 support
	// samples on 400+-dimensional telemetry that starves the classifier,
	// so the source pool is retained (the augmented target samples carry
	// the adaptation signal), keeping CMT the strongest baseline as in
	// Table I.
	rng := rand.New(rand.NewSource(m.Seed))
	trainX := append([][]float64{}, srcX...)
	trainY := append([]int(nil), source.Y...)
	d := source.NumFeatures()
	// Iterate classes in sorted order: ranging over the map directly would
	// let Go's randomized iteration order reassign the shared rng's draws
	// (and reorder the training rows) between otherwise identical runs.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	for _, c := range classes {
		comps := byClass[c]
		// Keep the originals.
		for _, e := range comps {
			x, err := mat.MulVec(l, e)
			if err != nil {
				return nil, err
			}
			trainX = append(trainX, x)
			trainY = append(trainY, c)
		}
		// Augment by resampling each independent component across the
		// class's samples (the CMT combinatorial augmentation), with
		// jitter so 1-shot classes still produce diversity.
		for a := 0; a < aug; a++ {
			e := make([]float64, d)
			for j := 0; j < d; j++ {
				src := comps[rng.Intn(len(comps))]
				e[j] = src[j] + jitter*rng.NormFloat64()
			}
			x, err := mat.MulVec(l, e)
			if err != nil {
				return nil, err
			}
			trainX = append(trainX, x)
			trainY = append(trainY, c)
		}
	}
	if err := clf.Fit(trainX, trainY, numClassesOf(source, support, test)); err != nil {
		return nil, fmt.Errorf("baselines: cmt fit: %w", err)
	}
	return models.PredictClasses(clf, testX)
}

// ICD adapts the invariant-conditional-distribution method of Magliacane et
// al. [16] to this setting: identify features whose distribution shifts
// across domains with a conservative marginal-only test, drop them, and
// train the classifier on source plus support over the remaining features.
// The original method's subset search is exponential in the number of
// features and is designed for low-dimensional medical data (the paper's
// critique, §II); on 100+-dimensional telemetry a practical adaptation can
// only examine a bounded feature window, so ICD identifies far fewer
// variant features than FS — exactly what the paper observes (§VI-B(d)).
type ICD struct {
	Alpha  float64 // marginal-test significance; default 1e-8 (conservative)
	Window int     // features examined by the subset search; default 40
	Seed   int64
}

var _ Method = ICD{}

// Name implements Method.
func (ICD) Name() string { return "ICD" }

// ModelAgnostic implements Method.
func (ICD) ModelAgnostic() bool { return true }

// Predict implements Method.
func (m ICD) Predict(source, support, test *dataset.Dataset, clf models.Classifier) ([]int, error) {
	if err := validateInputs(source, support, test, true); err != nil {
		return nil, err
	}
	scaled, err := zScale(source.X, source.X, support.X, test.X)
	if err != nil {
		return nil, err
	}
	srcX, supX, testX := scaled[0], scaled[1], scaled[2]

	variant, err := m.findVariant(srcX, supX)
	if err != nil {
		return nil, err
	}
	isVariant := make(map[int]bool, len(variant))
	for _, v := range variant {
		isVariant[v] = true
	}
	var keep []int
	for j := 0; j < source.NumFeatures(); j++ {
		if !isVariant[j] {
			keep = append(keep, j)
		}
	}
	if len(keep) == 0 {
		return nil, fmt.Errorf("baselines: icd removed every feature")
	}
	trainX := selectColumns(append(append([][]float64{}, srcX...), supX...), keep)
	trainY := append(append([]int(nil), source.Y...), support.Y...)
	if err := clf.Fit(trainX, trainY, numClassesOf(source, support, test)); err != nil {
		return nil, fmt.Errorf("baselines: icd fit: %w", err)
	}
	return models.PredictClasses(clf, selectColumns(testX, keep))
}

// findVariant runs the bounded-window conservative search on scaled data.
func (m ICD) findVariant(srcX, supX [][]float64) ([]int, error) {
	alpha := m.Alpha
	if alpha == 0 {
		alpha = 1e-8
	}
	window := m.Window
	if window == 0 {
		window = 40
	}
	d := len(srcX[0])
	cols := make([]int, d)
	for i := range cols {
		cols[i] = i
	}
	if window < d {
		rng := rand.New(rand.NewSource(m.Seed))
		rng.Shuffle(d, func(i, j int) { cols[i], cols[j] = cols[j], cols[i] })
		cols = cols[:window]
	}
	res, err := causal.FindVariantFeatures(
		selectColumns(srcX, cols), selectColumns(supX, cols),
		causal.FNodeConfig{Alpha: alpha, MarginalOnly: true},
	)
	if err != nil {
		return nil, fmt.Errorf("baselines: icd separation: %w", err)
	}
	out := make([]int, 0, len(res.Variant))
	for _, v := range res.Variant {
		out = append(out, cols[v])
	}
	return out, nil
}

// VariantCount exposes how many features ICD would drop (used by the
// sensitivity analysis).
func (m ICD) VariantCount(source, support *dataset.Dataset) (int, error) {
	scaled, err := zScale(source.X, source.X, support.X)
	if err != nil {
		return 0, err
	}
	variant, err := m.findVariant(scaled[0], scaled[1])
	if err != nil {
		return 0, err
	}
	return len(variant), nil
}

func selectColumns(x [][]float64, cols []int) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		r := make([]float64, len(cols))
		for k, c := range cols {
			r[k] = row[c]
		}
		out[i] = r
	}
	return out
}
