package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"netdrift/internal/scm"
)

// The synthetic 5GC dataset mirrors the ITU "AI for Good" network fault
// management dataset used in the paper (§IV-A): 442 performance metrics
// from a cloud-native 5G core, 16 classes (normal + 5 fault types × 3
// VNFs), 3,645 source-domain samples and 873 target-domain test samples.
// The target domain ("real network" vs the source "digital twin") differs
// by soft interventions on a fixed set of traffic-trend and resource
// baseline features.

// 5GC fault types (paper §IV-A).
const (
	faultBridgeDeletion = iota
	faultInterfaceDown
	faultPacketLoss
	faultMemoryStress
	faultCPUOverload
	numFaultTypes5GC = 5
)

var vnfNames5GC = [...]string{"amf", "ausf", "udm"}

var faultNames5GC = [...]string{
	"bridge-deletion", "interface-down", "packet-loss", "memory-stress", "vcpu-overload",
}

// FiveGCConfig configures the synthetic 5GC generator. Zero values select
// the paper's sample counts.
type FiveGCConfig struct {
	Seed              int64
	SourceSamples     int     // default 3,645
	TargetTrainPool   int     // few-shot candidate pool size; default 192 (12 per class)
	TargetTestSamples int     // default 873
	ShiftMagnitude    float64 // multiplier on intervention strength; default 1
}

// vnfBlock records the feature indices of one VNF's metric block. Each
// category designates a "symptom subset" of invariant features: fault
// signatures move those features in a per-class aligned direction, and the
// category's leaf summaries aggregate them — concentrating the class signal
// the way real utilization/volume summaries do.
type vnfBlock struct {
	trafficRoots   []int
	trafficDerived []int
	trafficSymptom []int
	aggregates     []int // variant leaves (traffic totals)
	ifaceInv       []int
	ifaceSymptom   []int
	ifaceLeaves    []int // variant candidates
	memInv         []int
	memSymptom     []int
	memLeaves      []int
	cpuInv         []int
	cpuSymptom     []int
	cpuLeaves      []int
	load           []int
}

// Synthetic5GC generates the 5GC-like drifted dataset pair.
func Synthetic5GC(cfg FiveGCConfig) (*Drifted, error) {
	if cfg.SourceSamples == 0 {
		cfg.SourceSamples = 3645
	}
	if cfg.TargetTrainPool == 0 {
		cfg.TargetTrainPool = 192
	}
	if cfg.TargetTestSamples == 0 {
		cfg.TargetTestSamples = 873
	}
	if cfg.ShiftMagnitude == 0 {
		cfg.ShiftMagnitude = 1
	}

	b := newTelemetryBuilder(cfg.Seed)
	blocks := make([]vnfBlock, len(vnfNames5GC))
	for v, vnf := range vnfNames5GC {
		blocks[v] = buildVNFBlock5GC(b, vnf)
	}
	globals := buildGlobals5GC(b, blocks)

	model, err := b.model()
	if err != nil {
		return nil, err
	}
	if got := model.NumFeatures(); got != 442 {
		return nil, fmt.Errorf("dataset: 5gc model has %d features, want 442", got)
	}

	variant := collectVariant5GC(blocks)
	shift, err := build5GCShift(b.fork(cfg.Seed+7001), blocks, cfg.ShiftMagnitude)
	if err != nil {
		return nil, err
	}
	sig := build5GCSignatures(b.fork(cfg.Seed+7002), blocks, globals, model.NumFeatures())

	classNames := make([]string, 0, 16)
	classNames = append(classNames, "normal")
	for _, vnf := range vnfNames5GC {
		for _, f := range faultNames5GC {
			classNames = append(classNames, vnf+"/"+f)
		}
	}

	gen := &driftedGenerator{
		model:      model,
		sig:        sig,
		shift:      shift,
		names:      b.names,
		classNames: classNames,
		numClasses: 16,
		jitter:     0.15,
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	src, err := gen.sample(classBalancedLabels(cfg.SourceSamples, 16, rng), false, rng)
	if err != nil {
		return nil, err
	}
	tgtTrain, err := gen.sample(classBalancedLabels(cfg.TargetTrainPool, 16, rng), true, rng)
	if err != nil {
		return nil, err
	}
	tgtTest, err := gen.sample(classBalancedLabels(cfg.TargetTestSamples, 16, rng), true, rng)
	if err != nil {
		return nil, err
	}
	return &Drifted{
		Source:      src,
		TargetTrain: tgtTrain,
		TargetTest:  tgtTest,
		Model:       model,
		Shift:       shift,
		TrueVariant: variant,
	}, nil
}

// driftedGenerator samples labelled datasets from one SCM with per-class
// exogenous signatures, optionally under the domain-shift interventions.
type driftedGenerator struct {
	model      *scm.Model
	sig        [][]float64
	shift      []scm.Intervention
	names      []string
	classNames []string
	numClasses int
	jitter     float64
}

func (g *driftedGenerator) sample(labels []int, shifted bool, rng *rand.Rand) (*Dataset, error) {
	exog := exogenousFromSignatures(labels, g.sig, g.jitter, rng)
	var ivs []scm.Intervention
	if shifted {
		ivs = g.shift
	}
	x, err := g.model.Sample(scm.SampleConfig{
		N:             len(labels),
		Interventions: ivs,
		Exogenous:     exog,
		Rng:           rng,
	})
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		X:            x,
		Y:            append([]int(nil), labels...),
		FeatureNames: append([]string(nil), g.names...),
		ClassNames:   append([]string(nil), g.classNames...),
	}
	return d, d.Validate()
}

func buildVNFBlock5GC(b *telemetryBuilder, vnf string) vnfBlock {
	var blk vnfBlock

	// Traffic: 8 root counters, 24 derived rates, 8 aggregate totals.
	for i := 0; i < 8; i++ {
		blk.trafficRoots = append(blk.trafficRoots,
			b.addRoot(fmt.Sprintf("%s.traffic.root%d", vnf, i), 0.8+0.4*b.rng.Float64()))
	}
	pool := append([]int(nil), blk.trafficRoots...)
	for i := 0; i < 24; i++ {
		idx := b.addDerived(fmt.Sprintf("%s.traffic.rate%d", vnf, i), pool, 2, 0.8, 0.4, false)
		blk.trafficDerived = append(blk.trafficDerived, idx)
		pool = append(pool, idx)
	}
	blk.trafficSymptom = blk.trafficDerived[4:16]
	for i := 0; i < 8; i++ {
		parents := b.pickN(blk.trafficSymptom, 4)
		blk.aggregates = append(blk.aggregates,
			b.addAggregate(fmt.Sprintf("%s.traffic.total%d", vnf, i), parents, 0.8))
	}

	// Interface: 12 invariant status/speed metrics, 8 leaf counters.
	// The leaves are low-noise aggregations of the invariant metrics —
	// high-SNR summaries whose class signal flows entirely through their
	// (invariant) parents, so the conditional GAN can reconstruct them
	// faithfully from the invariant features.
	ifacePool := append([]int(nil), blk.trafficRoots...)
	for i := 0; i < 12; i++ {
		idx := b.addDerived(fmt.Sprintf("%s.iface.status%d", vnf, i), ifacePool, 2, 0.6, 0.5, false)
		blk.ifaceInv = append(blk.ifaceInv, idx)
		ifacePool = append(ifacePool, idx)
	}
	blk.ifaceSymptom = blk.ifaceInv[4:12]
	for i := 0; i < 8; i++ {
		blk.ifaceLeaves = append(blk.ifaceLeaves,
			b.addAggregate(fmt.Sprintf("%s.iface.pkts%d", vnf, i), b.pickN(blk.ifaceSymptom, 4), 0.8))
	}

	// Memory: 17 invariant, 8 aggregation leaves.
	memPool := []int{}
	for i := 0; i < 5; i++ {
		idx := b.addRoot(fmt.Sprintf("%s.mem.base%d", vnf, i), 0.6)
		blk.memInv = append(blk.memInv, idx)
		memPool = append(memPool, idx)
	}
	for i := 0; i < 12; i++ {
		idx := b.addDerived(fmt.Sprintf("%s.mem.stat%d", vnf, i), memPool, 2, 0.7, 0.4, false)
		blk.memInv = append(blk.memInv, idx)
		memPool = append(memPool, idx)
	}
	blk.memSymptom = blk.memInv[9:17]
	for i := 0; i < 8; i++ {
		blk.memLeaves = append(blk.memLeaves,
			b.addAggregate(fmt.Sprintf("%s.mem.page%d", vnf, i), b.pickN(blk.memSymptom, 4), 0.8))
	}

	// CPU: 17 invariant (driven partly by traffic), 8 aggregation leaves.
	cpuPool := append([]int(nil), blk.trafficDerived[:6]...)
	for i := 0; i < 5; i++ {
		idx := b.addRoot(fmt.Sprintf("%s.cpu.base%d", vnf, i), 0.6)
		blk.cpuInv = append(blk.cpuInv, idx)
		cpuPool = append(cpuPool, idx)
	}
	for i := 0; i < 12; i++ {
		idx := b.addDerived(fmt.Sprintf("%s.cpu.util%d", vnf, i), cpuPool, 3, 0.6, 0.4, false)
		blk.cpuInv = append(blk.cpuInv, idx)
		cpuPool = append(cpuPool, idx)
	}
	blk.cpuSymptom = blk.cpuInv[9:17]
	for i := 0; i < 8; i++ {
		blk.cpuLeaves = append(blk.cpuLeaves,
			b.addAggregate(fmt.Sprintf("%s.cpu.steal%d", vnf, i), b.pickN(blk.cpuSymptom, 4), 0.8))
	}

	// System load: 20 invariant metrics derived from cpu+memory state.
	loadPool := append(append([]int(nil), blk.cpuInv...), blk.memInv...)
	for i := 0; i < 20; i++ {
		blk.load = append(blk.load,
			b.addDerived(fmt.Sprintf("%s.load.avg%d", vnf, i), loadPool, 3, 0.5, 0.45, false))
	}
	return blk
}

func buildGlobals5GC(b *telemetryBuilder, blocks []vnfBlock) []int {
	// 52 global 5G-core metrics (registration counters, session stats),
	// driven by invariant traffic state across all VNFs.
	var pool []int
	for _, blk := range blocks {
		pool = append(pool, blk.trafficDerived[:8]...)
	}
	globals := make([]int, 0, 52)
	for i := 0; i < 52; i++ {
		globals = append(globals,
			b.addDerived(fmt.Sprintf("core.reg%d", i), pool, 3, 0.5, 0.5, false))
	}
	return globals
}

func collectVariant5GC(blocks []vnfBlock) []int {
	var out []int
	for _, blk := range blocks {
		out = append(out, blk.aggregates...)
		out = append(out, blk.ifaceLeaves[:6]...)
		out = append(out, blk.memLeaves[:6]...)
		out = append(out, blk.cpuLeaves[:6]...)
	}
	sort.Ints(out)
	return out
}

func build5GCShift(b *telemetryBuilder, blocks []vnfBlock, mag float64) ([]scm.Intervention, error) {
	var ivs []scm.Intervention
	meanShift := func(target int, lo, hi float64) {
		amt := (lo + (hi-lo)*b.rng.Float64()) * mag
		if b.rng.Float64() < 0.5 {
			amt = -amt
		}
		ivs = append(ivs, scm.Intervention{Target: target, Kind: scm.MeanShift, Amount: amt})
	}
	// Heterogeneous drift strengths reproduce the paper's detection curve
	// (§VI-C: 35/68/75 variant features found with 1/5/10 shots): the
	// traffic-trend shifts are large and detectable from a single shot;
	// the resource-baseline shifts are subtle and only become detectable
	// as the target sample grows.
	// Leaf summaries aggregate ~5 parents, so their total spread is a few
	// units; "strong" shifts are several σ and "subtle" ones well under
	// 1σ — detectable only as the target sample grows (§VI-C).
	for _, blk := range blocks {
		// Traffic-trend drift: every aggregate total shifts strongly, a
		// third of them also turning burstier.
		for i, t := range blk.aggregates {
			meanShift(t, 2.5, 5.0)
			if i%3 == 0 {
				ivs = append(ivs, scm.Intervention{Target: t, Kind: scm.NoiseScale, Amount: 2 + b.rng.Float64()})
			}
		}
		// Resource counters: two strong movers per category (hitting the
		// fault-symptom summaries, so SrcOnly degrades on every fault
		// type), the rest subtle configuration-level shifts.
		for _, leaves := range [][]int{blk.ifaceLeaves[:6], blk.memLeaves[:6], blk.cpuLeaves[:6]} {
			for i, t := range leaves {
				if i < 3 {
					meanShift(t, 2.5, 5.0)
				} else {
					meanShift(t, 0.6, 1.2)
				}
			}
		}
	}
	if len(ivs) == 0 {
		return nil, fmt.Errorf("dataset: empty 5gc shift")
	}
	return ivs, nil
}

// build5GCSignatures creates per-class additive effects. Class signal is
// injected on *invariant* features only; the variant leaves and traffic
// totals inherit it through their parents. In-domain classifiers therefore
// lean on the crisp high-SNR leaf summaries (which drift), while FS can
// still classify from the noisier invariant evidence — reproducing the
// paper's SrcOnly collapse and FS recovery, with FS+GAN regaining the
// leaves by reconstruction.
func build5GCSignatures(b *telemetryBuilder, blocks []vnfBlock, globals []int, d int) [][]float64 {
	sig := make([][]float64, 16)
	for c := range sig {
		sig[c] = make([]float64, d)
	}
	sgn := func() float64 {
		if b.rng.Float64() < 0.5 {
			return -1
		}
		return 1
	}
	// Per-feature class evidence on invariant metrics is deliberately weak:
	// classifying from invariants alone requires pooling many features
	// (bounding FS in the high 80s as in the paper). Symptom effects within
	// a category are sign-aligned (memory stress pushes all memory metrics
	// the same way), so the category's leaf summaries concentrate the
	// evidence and dominate in-domain training.
	aligned := func(row []float64, feats []int, n int) {
		dir := sgn()
		for _, f := range b.pickN(feats, n) {
			row[f] = dir * (0.55 + 0.35*b.rng.Float64())
		}
	}
	weak := func(row []float64, feats []int, n int) {
		for _, f := range b.pickN(feats, n) {
			row[f] = sgn() * (0.3 + 0.3*b.rng.Float64())
		}
	}

	for v := range vnfNames5GC {
		blk := blocks[v]
		for f := 0; f < numFaultTypes5GC; f++ {
			row := sig[1+v*numFaultTypes5GC+f]
			switch f {
			case faultBridgeDeletion:
				aligned(row, blk.trafficSymptom, 11)
				weak(row, blk.trafficRoots, 3)
				weak(row, globals, 4)
			case faultInterfaceDown:
				aligned(row, blk.ifaceSymptom, 8)
				weak(row, blk.ifaceInv[:4], 3)
				weak(row, globals, 3)
			case faultPacketLoss:
				aligned(row, blk.ifaceSymptom, 4)
				aligned(row, blk.trafficSymptom, 6)
				weak(row, blk.trafficRoots, 2)
			case faultMemoryStress:
				aligned(row, blk.memSymptom, 8)
				weak(row, blk.memInv[:9], 3)
				weak(row, blk.load, 4)
			case faultCPUOverload:
				aligned(row, blk.cpuSymptom, 8)
				weak(row, blk.cpuInv[:9], 3)
				weak(row, blk.load, 5)
			}
		}
	}
	return sig
}
