package dataset

import (
	"fmt"
	"math/rand"

	"netdrift/internal/scm"
)

// telemetryBuilder incrementally constructs an explicit telemetry SCM with
// named features. It tracks which features are "leaves" (never used as a
// parent), because the synthetic domain shift intervenes on leaves only:
// that keeps the ground-truth variant set exactly equal to the intervention
// targets, with no marginal drift leaking into descendants (DESIGN.md §5).
type telemetryBuilder struct {
	nodes  []scm.Node
	names  []string
	isLeaf []bool
	rng    *rand.Rand
}

func newTelemetryBuilder(seed int64) *telemetryBuilder {
	return &telemetryBuilder{rng: rand.New(rand.NewSource(seed))}
}

// fork returns a copy of the builder whose RNG is independent of the
// original's stream, so that signature and shift construction cannot
// perturb each other's draws across configuration changes.
func (b *telemetryBuilder) fork(salt int64) *telemetryBuilder {
	nb := *b
	nb.rng = rand.New(rand.NewSource(salt))
	return &nb
}

// addRoot appends a parent-less feature and returns its index.
func (b *telemetryBuilder) addRoot(name string, noiseStd float64) int {
	return b.addNode(name, scm.Node{
		Bias:     b.rng.NormFloat64() * 0.5,
		NoiseStd: noiseStd,
		NL:       scm.Linear,
	}, false)
}

// addDerived appends a feature whose parents are drawn from the candidate
// pool (non-leaf features only), and returns its index.
func (b *telemetryBuilder) addDerived(name string, pool []int, numParents int, weightScale, noiseStd float64, leaf bool) int {
	nd := scm.Node{
		Bias:     b.rng.NormFloat64() * 0.3,
		NoiseStd: noiseStd,
		NL:       scm.Linear,
	}
	if b.rng.Float64() < 0.25 {
		nd.NL = scm.Tanh
	}
	perm := b.rng.Perm(len(pool))
	for _, pi := range perm {
		if len(nd.Parents) >= numParents {
			break
		}
		p := pool[pi]
		if b.isLeaf[p] {
			continue
		}
		w := (0.4 + 0.6*b.rng.Float64()) * weightScale
		if b.rng.Float64() < 0.4 {
			w = -w
		}
		nd.Parents = append(nd.Parents, p)
		nd.Weights = append(nd.Weights, w)
	}
	return b.addNode(name, nd, leaf)
}

// addAggregate appends a near-deterministic positive-weighted sum of the
// given parents (e.g. a traffic-volume total), marked as a leaf. These are
// the features the conditional GAN can reconstruct accurately.
func (b *telemetryBuilder) addAggregate(name string, parents []int, noiseStd float64) int {
	nd := scm.Node{
		NoiseStd: noiseStd,
		NL:       scm.Linear,
	}
	for _, p := range parents {
		nd.Parents = append(nd.Parents, p)
		nd.Weights = append(nd.Weights, 0.7+0.5*b.rng.Float64())
	}
	return b.addNode(name, nd, true)
}

func (b *telemetryBuilder) addNode(name string, nd scm.Node, leaf bool) int {
	idx := len(b.nodes)
	b.nodes = append(b.nodes, nd)
	b.names = append(b.names, name)
	b.isLeaf = append(b.isLeaf, leaf)
	return idx
}

func (b *telemetryBuilder) model() (*scm.Model, error) {
	m := &scm.Model{Nodes: b.nodes}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("telemetry model: %w", err)
	}
	return m, nil
}

// pickN selects n distinct elements of pool (or all of pool when n exceeds
// its length) using the builder's RNG.
func (b *telemetryBuilder) pickN(pool []int, n int) []int {
	if n > len(pool) {
		n = len(pool)
	}
	perm := b.rng.Perm(len(pool))
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = pool[perm[i]]
	}
	return out
}

// Drifted bundles a source/target domain pair generated from one SCM, with
// ground truth about the domain shift.
type Drifted struct {
	Source      *Dataset           // observational domain D_A
	TargetTrain *Dataset           // interventional domain D_C: few-shot pool
	TargetTest  *Dataset           // interventional domain D_C: evaluation set
	Model       *scm.Model         // the generating SCM
	Shift       []scm.Intervention // the soft interventions realizing the drift
	TrueVariant []int              // ground-truth variant feature indices (sorted)
}

// classBalancedLabels produces n labels spread as evenly as possible over
// numClasses, shuffled.
func classBalancedLabels(n, numClasses int, rng *rand.Rand) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i % numClasses
	}
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// labelsFromCounts produces labels with exact per-class counts, shuffled.
func labelsFromCounts(counts []int, rng *rand.Rand) []int {
	var out []int
	for c, n := range counts {
		for i := 0; i < n; i++ {
			out = append(out, c)
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// exogenousFromSignatures expands per-class signature vectors into a
// per-sample exogenous matrix, with per-sample jitter so that repeated
// samples of a class are not identical beyond mechanism noise.
func exogenousFromSignatures(labels []int, sig [][]float64, jitter float64, rng *rand.Rand) [][]float64 {
	out := make([][]float64, len(labels))
	for i, y := range labels {
		row := make([]float64, len(sig[y]))
		for j, v := range sig[y] {
			if v == 0 {
				continue
			}
			row[j] = v * (1 + jitter*(rng.Float64()*2-1))
		}
		out[i] = row
	}
	return out
}
