// Package dataset defines the tabular Dataset type used across the library
// and the synthetic generators standing in for the paper's two gated ITU 5G
// datasets (see DESIGN.md §2 for the substitution rationale).
package dataset

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// Dataset is a tabular classification dataset: one row of continuous
// features per sample plus an integer class label. Groups optionally carry
// a secondary stratification label (e.g. fault type when Y has been
// binarized for fault detection, as in the 5GIPC protocol).
type Dataset struct {
	X            [][]float64
	Y            []int
	Groups       []int    // optional; len 0 or len(Y)
	FeatureNames []string // optional; len 0 or len(X[0])
	ClassNames   []string // optional
}

// ErrInvalidDataset is returned by Validate for malformed datasets.
var ErrInvalidDataset = errors.New("dataset: invalid dataset")

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 {
		return fmt.Errorf("%w: no samples", ErrInvalidDataset)
	}
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("%w: %d rows but %d labels", ErrInvalidDataset, len(d.X), len(d.Y))
	}
	width := len(d.X[0])
	if width == 0 {
		return fmt.Errorf("%w: zero-width rows", ErrInvalidDataset)
	}
	for i, row := range d.X {
		if len(row) != width {
			return fmt.Errorf("%w: row %d has %d features, want %d", ErrInvalidDataset, i, len(row), width)
		}
	}
	if len(d.Groups) != 0 && len(d.Groups) != len(d.Y) {
		return fmt.Errorf("%w: %d group labels for %d samples", ErrInvalidDataset, len(d.Groups), len(d.Y))
	}
	if len(d.FeatureNames) != 0 && len(d.FeatureNames) != width {
		return fmt.Errorf("%w: %d feature names for %d features", ErrInvalidDataset, len(d.FeatureNames), width)
	}
	for i, y := range d.Y {
		if y < 0 {
			return fmt.Errorf("%w: negative label %d at row %d", ErrInvalidDataset, y, i)
		}
	}
	return nil
}

// NumSamples returns the number of rows.
func (d *Dataset) NumSamples() int { return len(d.X) }

// NumFeatures returns the feature dimensionality (0 when empty).
func (d *Dataset) NumFeatures() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// NumClasses returns 1 + the maximum label (0 when empty).
func (d *Dataset) NumClasses() int {
	maxY := -1
	for _, y := range d.Y {
		if y > maxY {
			maxY = y
		}
	}
	return maxY + 1
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		X:            make([][]float64, len(d.X)),
		Y:            append([]int(nil), d.Y...),
		Groups:       append([]int(nil), d.Groups...),
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
	}
	for i, row := range d.X {
		c.X[i] = append([]float64(nil), row...)
	}
	return c
}

// Subset returns a new dataset holding the given row indices (copied).
func (d *Dataset) Subset(idx []int) (*Dataset, error) {
	out := &Dataset{
		X:            make([][]float64, 0, len(idx)),
		Y:            make([]int, 0, len(idx)),
		FeatureNames: append([]string(nil), d.FeatureNames...),
		ClassNames:   append([]string(nil), d.ClassNames...),
	}
	if len(d.Groups) > 0 {
		out.Groups = make([]int, 0, len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= len(d.X) {
			return nil, fmt.Errorf("dataset: subset index %d out of range [0,%d)", i, len(d.X))
		}
		out.X = append(out.X, append([]float64(nil), d.X[i]...))
		out.Y = append(out.Y, d.Y[i])
		if len(d.Groups) > 0 {
			out.Groups = append(out.Groups, d.Groups[i])
		}
	}
	return out, nil
}

// SelectFeatures returns a copy keeping only the listed feature columns, in
// the given order.
func (d *Dataset) SelectFeatures(cols []int) (*Dataset, error) {
	width := d.NumFeatures()
	for _, c := range cols {
		if c < 0 || c >= width {
			return nil, fmt.Errorf("dataset: column %d out of range [0,%d)", c, width)
		}
	}
	out := &Dataset{
		X:          make([][]float64, len(d.X)),
		Y:          append([]int(nil), d.Y...),
		Groups:     append([]int(nil), d.Groups...),
		ClassNames: append([]string(nil), d.ClassNames...),
	}
	if len(d.FeatureNames) > 0 {
		out.FeatureNames = make([]string, len(cols))
		for j, c := range cols {
			out.FeatureNames[j] = d.FeatureNames[c]
		}
	}
	for i, row := range d.X {
		nr := make([]float64, len(cols))
		for j, c := range cols {
			nr[j] = row[c]
		}
		out.X[i] = nr
	}
	return out, nil
}

// Concat appends the rows of other to a copy of d. Feature widths must
// match; names are taken from d.
func Concat(d, other *Dataset) (*Dataset, error) {
	if d.NumFeatures() != other.NumFeatures() {
		return nil, fmt.Errorf("dataset: concat width mismatch %d vs %d", d.NumFeatures(), other.NumFeatures())
	}
	out := d.Clone()
	for i, row := range other.X {
		out.X = append(out.X, append([]float64(nil), row...))
		out.Y = append(out.Y, other.Y[i])
	}
	switch {
	case len(out.Groups) > 0 && len(other.Groups) > 0:
		out.Groups = append(out.Groups, other.Groups...)
	case len(out.Groups) > 0 || len(other.Groups) > 0:
		out.Groups = nil // inconsistent group metadata: drop it
	}
	return out, nil
}

// Shuffle returns a copy with rows permuted by the given RNG.
func (d *Dataset) Shuffle(rng *rand.Rand) *Dataset {
	idx := rng.Perm(len(d.X))
	out, _ := d.Subset(idx) // indices from Perm are always in range
	return out
}

// StratifiedSplit partitions the dataset into two parts with approximately
// `frac` of each class in the first part. Stratification uses Y, or Groups
// when useGroups is set.
func (d *Dataset) StratifiedSplit(frac float64, useGroups bool, rng *rand.Rand) (*Dataset, *Dataset, error) {
	if frac <= 0 || frac >= 1 {
		return nil, nil, fmt.Errorf("dataset: split fraction %v out of (0,1)", frac)
	}
	strata := d.Y
	if useGroups {
		if len(d.Groups) == 0 {
			return nil, nil, errors.New("dataset: no group labels for group-stratified split")
		}
		strata = d.Groups
	}
	byClass := indexByLabel(strata)
	var firstIdx, secondIdx []int
	for _, label := range sortedKeys(byClass) {
		idx := byClass[label]
		perm := rng.Perm(len(idx))
		cut := int(float64(len(idx))*frac + 0.5)
		if cut == 0 && len(idx) > 0 {
			cut = 1
		}
		if cut == len(idx) && len(idx) > 1 {
			cut--
		}
		for i, pi := range perm {
			if i < cut {
				firstIdx = append(firstIdx, idx[pi])
			} else {
				secondIdx = append(secondIdx, idx[pi])
			}
		}
	}
	first, err := d.Subset(firstIdx)
	if err != nil {
		return nil, nil, err
	}
	second, err := d.Subset(secondIdx)
	if err != nil {
		return nil, nil, err
	}
	return first, second, nil
}

// FewShot draws `perClass` samples from each stratum (Y, or Groups when
// useGroups is set), returning the support set and the remainder. Strata
// with fewer than perClass samples contribute everything they have to the
// support set.
func (d *Dataset) FewShot(perClass int, useGroups bool, rng *rand.Rand) (support, rest *Dataset, err error) {
	if perClass <= 0 {
		return nil, nil, fmt.Errorf("dataset: perClass %d must be positive", perClass)
	}
	strata := d.Y
	if useGroups {
		if len(d.Groups) == 0 {
			return nil, nil, errors.New("dataset: no group labels for group-stratified few-shot draw")
		}
		strata = d.Groups
	}
	byClass := indexByLabel(strata)
	var supIdx, restIdx []int
	for _, label := range sortedKeys(byClass) {
		idx := byClass[label]
		perm := rng.Perm(len(idx))
		take := perClass
		if take > len(idx) {
			take = len(idx)
		}
		for i, pi := range perm {
			if i < take {
				supIdx = append(supIdx, idx[pi])
			} else {
				restIdx = append(restIdx, idx[pi])
			}
		}
	}
	support, err = d.Subset(supIdx)
	if err != nil {
		return nil, nil, err
	}
	rest, err = d.Subset(restIdx)
	if err != nil {
		return nil, nil, err
	}
	return support, rest, nil
}

// ClassCounts returns the number of samples per label value.
func (d *Dataset) ClassCounts() map[int]int {
	out := make(map[int]int)
	for _, y := range d.Y {
		out[y]++
	}
	return out
}

// OneHot encodes the labels as one-hot vectors over numClasses columns.
func OneHot(y []int, numClasses int) ([][]float64, error) {
	out := make([][]float64, len(y))
	for i, v := range y {
		if v < 0 || v >= numClasses {
			return nil, fmt.Errorf("dataset: label %d out of range [0,%d)", v, numClasses)
		}
		row := make([]float64, numClasses)
		row[v] = 1
		out[i] = row
	}
	return out, nil
}

func indexByLabel(labels []int) map[int][]int {
	out := make(map[int][]int)
	for i, y := range labels {
		out[y] = append(out[y], i)
	}
	return out
}

func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
