package dataset

import (
	"bytes"
	"math"
	"testing"

	"netdrift/internal/stats"
)

func TestSynthetic5GCShape(t *testing.T) {
	d, err := Synthetic5GC(FiveGCConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Source.NumFeatures(); got != 442 {
		t.Errorf("source features = %d; want 442", got)
	}
	if got := d.Source.NumSamples(); got != 3645 {
		t.Errorf("source samples = %d; want 3645", got)
	}
	if got := d.TargetTest.NumSamples(); got != 873 {
		t.Errorf("target test samples = %d; want 873", got)
	}
	if got := d.Source.NumClasses(); got != 16 {
		t.Errorf("classes = %d; want 16", got)
	}
	if len(d.TrueVariant) != 78 {
		t.Errorf("true variant count = %d; want 78", len(d.TrueVariant))
	}
	if len(d.Source.ClassNames) != 16 {
		t.Errorf("class names = %d; want 16", len(d.Source.ClassNames))
	}
	// Roughly balanced classes.
	counts := d.Source.ClassCounts()
	for c := 0; c < 16; c++ {
		if counts[c] < 200 || counts[c] > 260 {
			t.Errorf("class %d count = %d; want ~228", c, counts[c])
		}
	}
}

func TestSynthetic5GCDeterminism(t *testing.T) {
	a, err := Synthetic5GC(FiveGCConfig{Seed: 9, SourceSamples: 64, TargetTrainPool: 32, TargetTestSamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic5GC(FiveGCConfig{Seed: 9, SourceSamples: 64, TargetTrainPool: 32, TargetTestSamples: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Source.X {
		for j := range a.Source.X[i] {
			if a.Source.X[i][j] != b.Source.X[i][j] {
				t.Fatal("same seed must reproduce identical data")
			}
		}
	}
}

func TestSynthetic5GCVariantFeaturesActuallyShift(t *testing.T) {
	d, err := Synthetic5GC(FiveGCConfig{Seed: 3, SourceSamples: 1600, TargetTrainPool: 32, TargetTestSamples: 1600})
	if err != nil {
		t.Fatal(err)
	}
	isVariant := make(map[int]bool, len(d.TrueVariant))
	for _, v := range d.TrueVariant {
		isVariant[v] = true
	}
	// Compare per-class means so class priors cannot mask shifts. Use the
	// normal class (label 0).
	srcNormal := rowsOfClass(d.Source, 0)
	tgtNormal := rowsOfClass(d.TargetTest, 0)

	var variantShifted, invariantStable int
	var variantTotal, invariantTotal int
	for j := 0; j < d.Source.NumFeatures(); j++ {
		sc := columnOf(srcNormal, j)
		tc := columnOf(tgtNormal, j)
		diff := math.Abs(stats.Mean(sc) - stats.Mean(tc))
		pooled := math.Sqrt(stats.Variance(sc)/float64(len(sc)) + stats.Variance(tc)/float64(len(tc)))
		// The drift is heterogeneous by design: some interventions shift
		// strongly (traffic aggregates), others subtly (resource
		// baselines), so the detection bar here is deliberately low.
		shifted := diff > 5*pooled && diff > 0.25
		if isVariant[j] {
			variantTotal++
			// NoiseScale/MechanismScale interventions change variance or
			// coupling, not necessarily the mean, so only count mean
			// movers.
			if shifted {
				variantShifted++
			}
		} else {
			invariantTotal++
			if !shifted {
				invariantStable++
			}
		}
	}
	if frac := float64(variantShifted) / float64(variantTotal); frac < 0.6 {
		t.Errorf("only %.0f%% of variant features show mean shifts; want >= 60%%", frac*100)
	}
	if frac := float64(invariantStable) / float64(invariantTotal); frac < 0.97 {
		t.Errorf("only %.0f%% of invariant features are stable; want >= 97%%", frac*100)
	}
}

func TestSynthetic5GIPCShape(t *testing.T) {
	d, err := Synthetic5GIPC(FiveGIPCConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Source.NumFeatures(); got != 116 {
		t.Errorf("features = %d; want 116", got)
	}
	if got := d.Source.NumSamples(); got != 5315+100+226+874+619 {
		t.Errorf("source samples = %d; want 7134", got)
	}
	if len(d.Targets) != 1 {
		t.Fatalf("targets = %d; want 1", len(d.Targets))
	}
	tt0 := d.Targets[0]
	if got := tt0.Test.NumSamples(); got != 2060+95+124+311+546 {
		t.Errorf("target test samples = %d; want 3136", got)
	}
	if d.Source.NumClasses() != 2 {
		t.Errorf("classes = %d; want 2 (binary)", d.Source.NumClasses())
	}
	// Groups must track fault types 0..4.
	gc := map[int]int{}
	for _, g := range d.Source.Groups {
		gc[g]++
	}
	if gc[0] != 5315 || gc[1] != 100 || gc[2] != 226 || gc[3] != 874 || gc[4] != 619 {
		t.Errorf("group counts = %v", gc)
	}
	// Binary labels consistent with groups.
	for i, g := range d.Source.Groups {
		want := 0
		if g != 0 {
			want = 1
		}
		if d.Source.Y[i] != want {
			t.Fatalf("row %d: label %d inconsistent with group %d", i, d.Source.Y[i], g)
		}
	}
	if len(tt0.TrueVariant) == 0 {
		t.Error("no true variant features recorded")
	}
}

func TestSynthetic5GIPCTwoTargets(t *testing.T) {
	d, err := Synthetic5GIPC(FiveGIPCConfig{
		Seed:         7,
		SourceNormal: 400, SourceFaults: [4]int{30, 30, 30, 30},
		TargetNormal: 200, TargetFaults: [4]int{20, 20, 20, 20},
		NumTargets: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Targets) != 2 {
		t.Fatalf("targets = %d; want 2", len(d.Targets))
	}
	// The two targets must share a majority of variant features (paper
	// §VI-F) but not be identical.
	v0 := map[int]bool{}
	for _, f := range d.Targets[0].TrueVariant {
		v0[f] = true
	}
	var common int
	for _, f := range d.Targets[1].TrueVariant {
		if v0[f] {
			common++
		}
	}
	n1 := len(d.Targets[1].TrueVariant)
	if common*2 <= n1 {
		t.Errorf("common variant features %d of %d; want majority", common, n1)
	}
	if common == n1 && n1 == len(d.Targets[0].TrueVariant) {
		t.Error("targets should not have identical variant sets")
	}
}

func TestSynthetic5GIPCBadNumTargets(t *testing.T) {
	if _, err := Synthetic5GIPC(FiveGIPCConfig{Seed: 1, NumTargets: 3}); err == nil {
		t.Error("expected error for NumTargets=3")
	}
}

func TestSplitByGMMRecoversRegimes(t *testing.T) {
	d, err := Synthetic5GIPC(FiveGIPCConfig{
		Seed:         5,
		SourceNormal: 700, SourceFaults: [4]int{20, 30, 60, 50},
		TargetNormal: 300, TargetFaults: [4]int{10, 15, 30, 25},
		TargetTrainPerGroup: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Concat(d.Source, d.Targets[0].Test)
	if err != nil {
		t.Fatal(err)
	}
	nSrc := d.Source.NumSamples()
	clusters, assign, err := SplitByGMM(pooled, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d; want 2", len(clusters))
	}
	if clusters[0].NumSamples() < clusters[1].NumSamples() {
		t.Error("clusters must be ordered largest first")
	}
	// Cluster 0 (largest) should align with the true source rows.
	var agree int
	for i, a := range assign {
		isSrc := i < nSrc
		if (a == 0) == isSrc {
			agree++
		}
	}
	acc := float64(agree) / float64(len(assign))
	if acc < 0.9 {
		t.Errorf("GMM domain recovery accuracy = %.2f; want >= 0.9", acc)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := toyDataset()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSamples() != d.NumSamples() || got.NumFeatures() != d.NumFeatures() {
		t.Fatalf("round-trip shape mismatch")
	}
	for i := range d.X {
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Errorf("X[%d][%d] = %v; want %v", i, j, got.X[i][j], d.X[i][j])
			}
		}
		if got.Y[i] != d.Y[i] || got.Groups[i] != d.Groups[i] {
			t.Errorf("labels/groups mismatch at %d", i)
		}
	}
	if got.FeatureNames[0] != "a" || got.FeatureNames[1] != "b" {
		t.Errorf("feature names = %v", got.FeatureNames)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("a,b\n1,2\n")); err == nil {
		t.Error("expected error for missing label column")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,__label__\nx,0\n")); err == nil {
		t.Error("expected error for non-numeric feature")
	}
	if _, err := ReadCSV(bytes.NewBufferString("a,__label__\n1,x\n")); err == nil {
		t.Error("expected error for non-numeric label")
	}
}

func rowsOfClass(d *Dataset, class int) [][]float64 {
	var out [][]float64
	for i, y := range d.Y {
		if y == class {
			out = append(out, d.X[i])
		}
	}
	return out
}

func columnOf(rows [][]float64, j int) []float64 {
	out := make([]float64, len(rows))
	for i := range rows {
		out[i] = rows[i][j]
	}
	return out
}
