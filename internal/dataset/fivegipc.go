package dataset

import (
	"fmt"
	"math/rand"

	"netdrift/internal/scm"
	"netdrift/internal/stats"
)

// The synthetic 5GIPC dataset mirrors the IEICE RISING 5G IP-core NFV
// testbed dataset (paper §IV-B): 116 metrics collected from five VNFs
// (TR-01, TR-02, IntGW-01, IntGW-02, RR-01), binary fault detection with
// four injected fault types (node failure, interface failure, packet loss,
// packet delay). The domain structure is a latent operating regime; the
// paper recovers the domains by GMM clustering, a protocol reproduced by
// SplitByGMM.

// 5GIPC fault types (group labels; 0 is normal).
const (
	groupNormal = iota
	groupNodeFailure
	groupInterfaceFailure
	groupPacketLoss
	groupPacketDelay
	numGroups5GIPC = 5
)

var vnfNames5GIPC = [...]string{"tr01", "tr02", "intgw01", "intgw02", "rr01"}

// GroupNames5GIPC names the 5GIPC strata (normal + four fault types).
var GroupNames5GIPC = [...]string{
	"normal", "node-failure", "interface-failure", "packet-loss", "packet-delay",
}

// FiveGIPCConfig configures the synthetic 5GIPC generator. Zero values
// select the paper's sample counts.
type FiveGIPCConfig struct {
	Seed                int64
	SourceNormal        int    // default 5,315
	SourceFaults        [4]int // default {100, 226, 874, 619}
	TargetNormal        int    // test normals; default 2,060
	TargetFaults        [4]int // test faults; default {95, 124, 311, 546}
	TargetTrainPerGroup int    // few-shot pool per stratum; default 12
	NumTargets          int    // 1 (Table I/II) or 2 (Table III); default 1
	ShiftMagnitude      float64
}

// DriftTarget is one target domain of a multi-target drift scenario.
type DriftTarget struct {
	Train       *Dataset
	Test        *Dataset
	Shift       []scm.Intervention
	TrueVariant []int
}

// DriftedMulti bundles a source domain with one or more target domains
// drawn from the same SCM under different soft-intervention sets.
type DriftedMulti struct {
	Source  *Dataset
	Targets []DriftTarget
	Model   *scm.Model
}

// gipcBlock records per-VNF feature indices.
type gipcBlock struct {
	trafficRoots []int
	rates        []int
	aggregates   []int // variant leaves
	cpuInv       []int
	cpuLeaves    []int
	memInv       []int
	memLeaves    []int
	ifaceInv     []int
	ifaceLeaf    int
}

// Synthetic5GIPC generates the 5GIPC-like drifted dataset.
func Synthetic5GIPC(cfg FiveGIPCConfig) (*DriftedMulti, error) {
	applyGIPCDefaults(&cfg)
	if cfg.NumTargets < 1 || cfg.NumTargets > 2 {
		return nil, fmt.Errorf("dataset: NumTargets %d must be 1 or 2", cfg.NumTargets)
	}

	b := newTelemetryBuilder(cfg.Seed)
	blocks := make([]gipcBlock, len(vnfNames5GIPC))
	for v, vnf := range vnfNames5GIPC {
		blocks[v] = buildVNFBlock5GIPC(b, vnf)
	}
	// Global metrics: leaves driven by invariant traffic rates; five of the
	// six are intervened by the regime shift.
	var globalPool []int
	for _, blk := range blocks {
		globalPool = append(globalPool, blk.rates[:3]...)
	}
	globals := make([]int, 6)
	for i := range globals {
		globals[i] = b.addDerived(fmt.Sprintf("core.sess%d", i), globalPool, 3, 0.5, 0.4, true)
	}

	model, err := b.model()
	if err != nil {
		return nil, err
	}
	if got := model.NumFeatures(); got != 116 {
		return nil, fmt.Errorf("dataset: 5gipc model has %d features, want 116", got)
	}

	sigs := build5GIPCSignatures(b.fork(cfg.Seed+7002), blocks, model.NumFeatures())

	shifts := make([][]scm.Intervention, cfg.NumTargets)
	for t := range shifts {
		shifts[t] = build5GIPCShift(b.fork(cfg.Seed+7001+int64(t)), blocks, globals, cfg.ShiftMagnitude, t)
	}

	out := &DriftedMulti{Model: model}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	src, err := sample5GIPC(model, sigs, nil, cfg.SourceNormal, cfg.SourceFaults, b.names, rng)
	if err != nil {
		return nil, err
	}
	out.Source = src

	for t := 0; t < cfg.NumTargets; t++ {
		poolFaults := [4]int{}
		for i := range poolFaults {
			poolFaults[i] = cfg.TargetTrainPerGroup
		}
		train, err := sample5GIPC(model, sigs, shifts[t], cfg.TargetTrainPerGroup, poolFaults, b.names, rng)
		if err != nil {
			return nil, err
		}
		test, err := sample5GIPC(model, sigs, shifts[t], cfg.TargetNormal, cfg.TargetFaults, b.names, rng)
		if err != nil {
			return nil, err
		}
		out.Targets = append(out.Targets, DriftTarget{
			Train:       train,
			Test:        test,
			Shift:       shifts[t],
			TrueVariant: scm.Targets(shifts[t]),
		})
	}
	return out, nil
}

func applyGIPCDefaults(cfg *FiveGIPCConfig) {
	if cfg.SourceNormal == 0 {
		cfg.SourceNormal = 5315
	}
	if cfg.SourceFaults == ([4]int{}) {
		cfg.SourceFaults = [4]int{100, 226, 874, 619}
	}
	if cfg.TargetNormal == 0 {
		cfg.TargetNormal = 2060
	}
	if cfg.TargetFaults == ([4]int{}) {
		cfg.TargetFaults = [4]int{95, 124, 311, 546}
	}
	if cfg.TargetTrainPerGroup == 0 {
		cfg.TargetTrainPerGroup = 12
	}
	if cfg.NumTargets == 0 {
		cfg.NumTargets = 1
	}
	if cfg.ShiftMagnitude == 0 {
		cfg.ShiftMagnitude = 1
	}
}

// sample5GIPC draws a labelled 5GIPC dataset: binary Y (0 normal, 1 fault),
// Groups carrying the fault type, with each faulty sample's signature
// applied to one randomly chosen VNF (the paper injects each fault into a
// single VNF).
func sample5GIPC(model *scm.Model, sigs [][][]float64, shift []scm.Intervention,
	normal int, faults [4]int, names []string, rng *rand.Rand) (*Dataset, error) {
	counts := []int{normal, faults[0], faults[1], faults[2], faults[3]}
	groups := labelsFromCounts(counts, rng)
	n := len(groups)
	d := model.NumFeatures()

	exog := make([][]float64, n)
	for i, g := range groups {
		if g == groupNormal {
			exog[i] = make([]float64, d)
			continue
		}
		vnf := rng.Intn(len(vnfNames5GIPC))
		base := sigs[g][vnf]
		row := make([]float64, d)
		for j, v := range base {
			if v == 0 {
				continue
			}
			row[j] = v * (1 + 0.15*(rng.Float64()*2-1))
		}
		exog[i] = row
	}
	x, err := model.Sample(scm.SampleConfig{
		N:             n,
		Interventions: shift,
		Exogenous:     exog,
		Rng:           rng,
	})
	if err != nil {
		return nil, err
	}
	y := make([]int, n)
	for i, g := range groups {
		if g != groupNormal {
			y[i] = 1
		}
	}
	ds := &Dataset{
		X:            x,
		Y:            y,
		Groups:       groups,
		FeatureNames: append([]string(nil), names...),
		ClassNames:   []string{"normal", "fault"},
	}
	return ds, ds.Validate()
}

func buildVNFBlock5GIPC(b *telemetryBuilder, vnf string) gipcBlock {
	var blk gipcBlock
	for i := 0; i < 3; i++ {
		blk.trafficRoots = append(blk.trafficRoots,
			b.addRoot(fmt.Sprintf("%s.traffic.root%d", vnf, i), 0.8))
	}
	pool := append([]int(nil), blk.trafficRoots...)
	for i := 0; i < 6; i++ {
		idx := b.addDerived(fmt.Sprintf("%s.traffic.rate%d", vnf, i), pool, 2, 0.8, 0.4, false)
		blk.rates = append(blk.rates, idx)
		pool = append(pool, idx)
	}
	for i := 0; i < 2; i++ {
		blk.aggregates = append(blk.aggregates,
			b.addAggregate(fmt.Sprintf("%s.traffic.total%d", vnf, i), b.pickN(pool, 4), 0.08))
	}
	// Resource leaves are low-noise aggregations of the invariant metrics
	// (utilization summaries); their fault signal flows through the
	// invariant parents so the GAN can reconstruct them (cf. the 5GC
	// generator).
	cpuPool := append([]int(nil), blk.rates[:3]...)
	for i := 0; i < 2; i++ {
		idx := b.addDerived(fmt.Sprintf("%s.cpu.util%d", vnf, i), cpuPool, 2, 0.7, 0.4, false)
		blk.cpuInv = append(blk.cpuInv, idx)
		cpuPool = append(cpuPool, idx)
	}
	for i := 0; i < 2; i++ {
		parents := append(append([]int(nil), blk.cpuInv...), blk.rates[:2]...)
		blk.cpuLeaves = append(blk.cpuLeaves,
			b.addAggregate(fmt.Sprintf("%s.cpu.steal%d", vnf, i), parents, 0.12))
	}
	memPool := []int{}
	for i := 0; i < 2; i++ {
		idx := b.addRoot(fmt.Sprintf("%s.mem.base%d", vnf, i), 0.6)
		blk.memInv = append(blk.memInv, idx)
		memPool = append(memPool, idx)
	}
	for i := 0; i < 2; i++ {
		parents := append(append([]int(nil), blk.memInv...), blk.rates[2])
		blk.memLeaves = append(blk.memLeaves,
			b.addAggregate(fmt.Sprintf("%s.mem.page%d", vnf, i), parents, 0.12))
	}
	ifacePool := append([]int(nil), blk.trafficRoots...)
	for i := 0; i < 2; i++ {
		idx := b.addDerived(fmt.Sprintf("%s.iface.status%d", vnf, i), ifacePool, 2, 0.6, 0.45, false)
		blk.ifaceInv = append(blk.ifaceInv, idx)
		ifacePool = append(ifacePool, idx)
	}
	blk.ifaceLeaf = b.addAggregate(fmt.Sprintf("%s.iface.err0", vnf),
		append(append([]int(nil), blk.ifaceInv...), blk.rates[:3]...), 0.12)
	return blk
}

// build5GIPCShift creates one regime's soft interventions. variantSet 0 and
// 1 overlap on all traffic aggregates (the paper observes most variant
// features are common across targets) and differ on the resource subset.
func build5GIPCShift(b *telemetryBuilder, blocks []gipcBlock, globals []int, mag float64, variantSet int) []scm.Intervention {
	var ivs []scm.Intervention
	meanShift := func(target int, lo, hi float64) {
		amt := (lo + (hi-lo)*b.rng.Float64()) * mag
		if b.rng.Float64() < 0.5 {
			amt = -amt
		}
		ivs = append(ivs, scm.Intervention{Target: target, Kind: scm.MeanShift, Amount: amt})
	}
	// Heterogeneous drift strengths (cf. the 5GC generator): traffic
	// aggregates shift strongly, globals moderately, and the per-regime
	// resource baselines subtly — so FS finds more variant features as the
	// target sample grows (paper §VI-C: 23/31/37 with 1/5/10 shots).
	for v, blk := range blocks {
		for _, t := range blk.aggregates {
			meanShift(t, 3.5, 6.0)
		}
		// Resource baselines alternate between the two regimes so the
		// Table III targets share the traffic shifts but differ here. One
		// leaf per category moves strongly, the other subtly (only
		// detectable with more target samples).
		if v%2 == variantSet%2 {
			meanShift(blk.cpuLeaves[0], 4.0, 7.0)
			meanShift(blk.cpuLeaves[1], 0.8, 1.6)
			meanShift(blk.ifaceLeaf, 3.0, 6.0)
		} else {
			meanShift(blk.memLeaves[0], 4.0, 7.0)
			meanShift(blk.memLeaves[1], 0.8, 1.6)
		}
	}
	for _, g := range globals[:5] {
		meanShift(g, 2.5, 3.5)
	}
	return ivs
}

// build5GIPCSignatures returns sigs[fault][vnf] additive effect vectors.
// Index 0 (normal) is unused.
func build5GIPCSignatures(b *telemetryBuilder, blocks []gipcBlock, d int) [][][]float64 {
	sigs := make([][][]float64, numGroups5GIPC)
	for g := range sigs {
		sigs[g] = make([][]float64, len(blocks))
		for v := range sigs[g] {
			sigs[g][v] = make([]float64, d)
		}
	}
	sgn := func() float64 {
		if b.rng.Float64() < 0.5 {
			return -1
		}
		return 1
	}
	// Fault signal lives on invariant metrics only (weak per feature) and
	// is sign-aligned within a category, so the drifting leaf summaries
	// inherit and concentrate it through their parents — cf.
	// build5GCSignatures.
	aligned := func(row []float64, feats ...int) {
		dir := sgn()
		for _, f := range feats {
			row[f] = dir * (0.8 + 0.5*b.rng.Float64())
		}
	}
	for v, blk := range blocks {
		// Node failure: everything on the VNF collapses.
		row := sigs[groupNodeFailure][v]
		aligned(row, blk.rates...)
		aligned(row, blk.cpuInv...)
		aligned(row, blk.memInv...)
		aligned(row, blk.trafficRoots...)

		// Interface failure: interface and traffic path.
		row = sigs[groupInterfaceFailure][v]
		aligned(row, blk.ifaceInv...)
		aligned(row, blk.rates[:4]...)

		// Packet loss: retransmissions inflate counters.
		row = sigs[groupPacketLoss][v]
		aligned(row, blk.rates...)
		aligned(row, blk.ifaceInv[0])
		aligned(row, blk.trafficRoots[:2]...)

		// Packet delay: queueing shows in rates and CPU.
		row = sigs[groupPacketDelay][v]
		aligned(row, blk.rates...)
		aligned(row, blk.cpuInv...)
	}
	return sigs
}

// SplitByGMM reproduces the paper's domain-splitting protocol (§IV-B):
// cluster the pooled samples with a k-component GMM on standardized
// features and return the clusters ordered by decreasing size (the largest
// is the source domain). The returned assignment maps each input row to its
// cluster's position in the returned slice.
func SplitByGMM(pooled *Dataset, k int, seed int64) ([]*Dataset, []int, error) {
	if err := pooled.Validate(); err != nil {
		return nil, nil, err
	}
	scaler := stats.NewStandardScaler()
	if err := scaler.Fit(pooled.X); err != nil {
		return nil, nil, err
	}
	xs, err := scaler.Transform(pooled.X)
	if err != nil {
		return nil, nil, err
	}
	gmm, err := stats.FitGMM(xs, stats.GMMConfig{K: k, Seed: seed, Restarts: 3})
	if err != nil {
		return nil, nil, err
	}
	assign, err := gmm.Predict(xs)
	if err != nil {
		return nil, nil, err
	}
	counts := make([]int, k)
	for _, a := range assign {
		counts[a]++
	}
	// Order cluster ids by decreasing size.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if counts[order[j]] > counts[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	rank := make([]int, k)
	for pos, id := range order {
		rank[id] = pos
	}
	idxByRank := make([][]int, k)
	for i, a := range assign {
		r := rank[a]
		idxByRank[r] = append(idxByRank[r], i)
	}
	out := make([]*Dataset, 0, k)
	for r := 0; r < k; r++ {
		if len(idxByRank[r]) == 0 {
			return nil, nil, fmt.Errorf("dataset: gmm cluster %d is empty", r)
		}
		sub, err := pooled.Subset(idxByRank[r])
		if err != nil {
			return nil, nil, err
		}
		out = append(out, sub)
	}
	ranked := make([]int, len(assign))
	for i, a := range assign {
		ranked[i] = rank[a]
	}
	return out, ranked, nil
}
