package dataset

import "testing"

// TestSplitByGMMThreeWay exercises the Table III protocol: the pooled data
// of a source and two distinct target regimes is split into three clusters,
// largest first.
func TestSplitByGMMThreeWay(t *testing.T) {
	d, err := Synthetic5GIPC(FiveGIPCConfig{
		Seed:         23,
		SourceNormal: 700, SourceFaults: [4]int{20, 30, 60, 50},
		TargetNormal: 250, TargetFaults: [4]int{10, 15, 30, 25},
		TargetTrainPerGroup: 2,
		NumTargets:          2,
	})
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := Concat(d.Source, d.Targets[0].Test)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err = Concat(pooled, d.Targets[1].Test)
	if err != nil {
		t.Fatal(err)
	}
	clusters, assign, err := SplitByGMM(pooled, 3, 29)
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %d; want 3", len(clusters))
	}
	if clusters[0].NumSamples() < clusters[1].NumSamples() ||
		clusters[1].NumSamples() < clusters[2].NumSamples() {
		t.Error("clusters must be ordered by decreasing size")
	}
	// The biggest cluster should align with the true source block.
	nSrc := d.Source.NumSamples()
	var agree int
	for i := 0; i < nSrc; i++ {
		if assign[i] == 0 {
			agree++
		}
	}
	if frac := float64(agree) / float64(nSrc); frac < 0.85 {
		t.Errorf("source recovery fraction = %.2f; want >= 0.85", frac)
	}
	// Assignments must cover every pooled row.
	if len(assign) != pooled.NumSamples() {
		t.Fatalf("assignment length %d; want %d", len(assign), pooled.NumSamples())
	}
}
