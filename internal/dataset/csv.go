package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Column names used for the label and group columns when writing CSV.
const (
	labelColumn = "__label__"
	groupColumn = "__group__"
)

// WriteCSV serializes the dataset: a header row (feature names, or f0..fN
// when unnamed, plus label and optional group columns) followed by one row
// per sample.
func WriteCSV(w io.Writer, d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	width := d.NumFeatures()
	header := make([]string, 0, width+2)
	if len(d.FeatureNames) == width {
		header = append(header, d.FeatureNames...)
	} else {
		for j := 0; j < width; j++ {
			header = append(header, "f"+strconv.Itoa(j))
		}
	}
	header = append(header, labelColumn)
	hasGroups := len(d.Groups) > 0
	if hasGroups {
		header = append(header, groupColumn)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: write header: %w", err)
	}
	rec := make([]string, 0, len(header))
	for i, row := range d.X {
		rec = rec[:0]
		for _, v := range row {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		rec = append(rec, strconv.Itoa(d.Y[i]))
		if hasGroups {
			rec = append(rec, strconv.Itoa(d.Groups[i]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("dataset: write row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a dataset previously written by WriteCSV.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: read header: %w", err)
	}
	labelIdx := -1
	groupIdx := -1
	for j, name := range header {
		switch name {
		case labelColumn:
			labelIdx = j
		case groupColumn:
			groupIdx = j
		}
	}
	if labelIdx == -1 {
		return nil, errors.New("dataset: csv missing label column")
	}
	var featIdx []int
	var featNames []string
	for j, name := range header {
		if j == labelIdx || j == groupIdx {
			continue
		}
		featIdx = append(featIdx, j)
		featNames = append(featNames, name)
	}
	d := &Dataset{FeatureNames: featNames}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: read line %d: %w", line, err)
		}
		row := make([]float64, len(featIdx))
		for k, j := range featIdx {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %q: %w", line, header[j], err)
			}
			row[k] = v
		}
		y, err := strconv.Atoi(rec[labelIdx])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d label: %w", line, err)
		}
		d.X = append(d.X, row)
		d.Y = append(d.Y, y)
		if groupIdx != -1 {
			g, err := strconv.Atoi(rec[groupIdx])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d group: %w", line, err)
			}
			d.Groups = append(d.Groups, g)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
