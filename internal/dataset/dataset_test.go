package dataset

import (
	"errors"
	"math/rand"
	"testing"
)

func toyDataset() *Dataset {
	return &Dataset{
		X:            [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}, {11, 12}},
		Y:            []int{0, 0, 0, 1, 1, 1},
		Groups:       []int{0, 1, 0, 1, 0, 1},
		FeatureNames: []string{"a", "b"},
		ClassNames:   []string{"neg", "pos"},
	}
}

func TestValidateDataset(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Dataset)
		wantErr bool
	}{
		{name: "valid", mutate: func(*Dataset) {}},
		{name: "no samples", mutate: func(d *Dataset) { d.X = nil; d.Y = nil }, wantErr: true},
		{name: "label mismatch", mutate: func(d *Dataset) { d.Y = d.Y[:2] }, wantErr: true},
		{name: "ragged", mutate: func(d *Dataset) { d.X[1] = []float64{1} }, wantErr: true},
		{name: "bad groups", mutate: func(d *Dataset) { d.Groups = d.Groups[:1] }, wantErr: true},
		{name: "bad names", mutate: func(d *Dataset) { d.FeatureNames = []string{"a"} }, wantErr: true},
		{name: "negative label", mutate: func(d *Dataset) { d.Y[0] = -1 }, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := toyDataset()
			tt.mutate(d)
			err := d.Validate()
			if tt.wantErr && !errors.Is(err, ErrInvalidDataset) {
				t.Errorf("Validate = %v; want ErrInvalidDataset", err)
			}
			if !tt.wantErr && err != nil {
				t.Errorf("Validate = %v; want nil", err)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := toyDataset()
	c := d.Clone()
	c.X[0][0] = 99
	c.Y[0] = 1
	if d.X[0][0] == 99 || d.Y[0] == 1 {
		t.Error("Clone must deep-copy")
	}
}

func TestSubset(t *testing.T) {
	d := toyDataset()
	s, err := d.Subset([]int{5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumSamples() != 2 || s.X[0][0] != 11 || s.X[1][0] != 1 {
		t.Errorf("Subset rows wrong: %+v", s.X)
	}
	if s.Groups[0] != 1 || s.Groups[1] != 0 {
		t.Errorf("Subset groups wrong: %v", s.Groups)
	}
	if _, err := d.Subset([]int{99}); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestSelectFeatures(t *testing.T) {
	d := toyDataset()
	s, err := d.SelectFeatures([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumFeatures() != 1 || s.X[2][0] != 6 {
		t.Errorf("SelectFeatures wrong: %+v", s.X)
	}
	if len(s.FeatureNames) != 1 || s.FeatureNames[0] != "b" {
		t.Errorf("names = %v; want [b]", s.FeatureNames)
	}
	if _, err := d.SelectFeatures([]int{5}); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestConcat(t *testing.T) {
	a := toyDataset()
	b := toyDataset()
	c, err := Concat(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSamples() != 12 {
		t.Errorf("NumSamples = %d; want 12", c.NumSamples())
	}
	if len(c.Groups) != 12 {
		t.Errorf("Groups len = %d; want 12", len(c.Groups))
	}
	narrow, _ := a.SelectFeatures([]int{0})
	if _, err := Concat(a, narrow); err == nil {
		t.Error("expected width mismatch error")
	}
	// Inconsistent group metadata is dropped, not fabricated.
	noGroups := toyDataset()
	noGroups.Groups = nil
	mixed, err := Concat(a, noGroups)
	if err != nil {
		t.Fatal(err)
	}
	if len(mixed.Groups) != 0 {
		t.Error("Concat should drop inconsistent groups")
	}
}

func TestStratifiedSplit(t *testing.T) {
	d := toyDataset()
	rng := rand.New(rand.NewSource(1))
	a, b, err := d.StratifiedSplit(0.5, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSamples()+b.NumSamples() != 6 {
		t.Fatal("split lost samples")
	}
	// Each half should have samples of both classes (3 per class, split ~50%).
	for _, part := range []*Dataset{a, b} {
		counts := part.ClassCounts()
		if counts[0] == 0 || counts[1] == 0 {
			t.Errorf("split part missing a class: %v", counts)
		}
	}
	if _, _, err := d.StratifiedSplit(0, false, rng); err == nil {
		t.Error("expected error for frac=0")
	}
}

func TestFewShot(t *testing.T) {
	d := toyDataset()
	rng := rand.New(rand.NewSource(2))
	sup, rest, err := d.FewShot(1, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if sup.NumSamples() != 2 {
		t.Fatalf("support size = %d; want 2 (1 per class)", sup.NumSamples())
	}
	counts := sup.ClassCounts()
	if counts[0] != 1 || counts[1] != 1 {
		t.Errorf("support counts = %v; want 1 per class", counts)
	}
	if rest.NumSamples() != 4 {
		t.Errorf("rest size = %d; want 4", rest.NumSamples())
	}
	// Group-stratified draw.
	supG, _, err := d.FewShot(1, true, rng)
	if err != nil {
		t.Fatal(err)
	}
	gc := map[int]int{}
	for _, g := range supG.Groups {
		gc[g]++
	}
	if gc[0] != 1 || gc[1] != 1 {
		t.Errorf("group support counts = %v; want 1 per group", gc)
	}
	// Oversized request takes everything available.
	supAll, restNone, err := d.FewShot(100, false, rng)
	if err != nil {
		t.Fatal(err)
	}
	if supAll.NumSamples() != 6 || restNone.NumSamples() != 0 {
		t.Errorf("oversized few-shot: %d/%d; want 6/0", supAll.NumSamples(), restNone.NumSamples())
	}
	if _, _, err := d.FewShot(0, false, rng); err == nil {
		t.Error("expected error for perClass=0")
	}
}

func TestFewShotNoGroups(t *testing.T) {
	d := toyDataset()
	d.Groups = nil
	if _, _, err := d.FewShot(1, true, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected error when groups requested but absent")
	}
}

func TestOneHot(t *testing.T) {
	oh, err := OneHot([]int{0, 2, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}}
	for i := range want {
		for j := range want[i] {
			if oh[i][j] != want[i][j] {
				t.Errorf("OneHot[%d][%d] = %v; want %v", i, j, oh[i][j], want[i][j])
			}
		}
	}
	if _, err := OneHot([]int{3}, 3); err == nil {
		t.Error("expected error for out-of-range label")
	}
}

func TestNumClassesAndCounts(t *testing.T) {
	d := toyDataset()
	if d.NumClasses() != 2 {
		t.Errorf("NumClasses = %d; want 2", d.NumClasses())
	}
	counts := d.ClassCounts()
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("ClassCounts = %v; want 3/3", counts)
	}
	var empty Dataset
	if empty.NumClasses() != 0 {
		t.Errorf("empty NumClasses = %d; want 0", empty.NumClasses())
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	d := toyDataset()
	s := d.Shuffle(rand.New(rand.NewSource(3)))
	if s.NumSamples() != d.NumSamples() {
		t.Fatal("shuffle changed size")
	}
	// Sum of first feature must be preserved.
	var want, got float64
	for i := range d.X {
		want += d.X[i][0]
		got += s.X[i][0]
	}
	if want != got {
		t.Error("shuffle is not a permutation")
	}
}
