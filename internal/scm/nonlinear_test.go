package scm

import (
	"math"
	"math/rand"
	"testing"

	"netdrift/internal/stats"
)

func TestNonlinearityString(t *testing.T) {
	tests := []struct {
		nl   Nonlinearity
		want string
	}{
		{Linear, "linear"},
		{Tanh, "tanh"},
		{ReLU, "relu"},
		{Nonlinearity(99), "Nonlinearity(99)"},
	}
	for _, tt := range tests {
		if got := tt.nl.String(); got != tt.want {
			t.Errorf("String() = %q; want %q", got, tt.want)
		}
	}
}

func TestInterventionKindString(t *testing.T) {
	tests := []struct {
		k    InterventionKind
		want string
	}{
		{MeanShift, "mean-shift"},
		{NoiseScale, "noise-scale"},
		{MechanismScale, "mechanism-scale"},
		{InterventionKind(42), "InterventionKind(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("String() = %q; want %q", got, tt.want)
		}
	}
}

func TestTanhNodeBounded(t *testing.T) {
	// A noiseless tanh node is bounded in (-1, 1) regardless of its input.
	m := &Model{Nodes: []Node{
		{NL: Linear, NoiseStd: 3},
		{Parents: []int{0}, Weights: []float64{5}, NL: Tanh},
	}}
	x, err := m.Sample(SampleConfig{N: 500, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	// math.Tanh saturates to exactly ±1.0 in float64 for large inputs, so
	// the bound is closed.
	for _, row := range x {
		if math.Abs(row[1]) > 1 {
			t.Fatalf("tanh output %v out of [-1,1]", row[1])
		}
	}
}

func TestReLUNodeNonNegative(t *testing.T) {
	m := &Model{Nodes: []Node{
		{NL: Linear, NoiseStd: 2},
		{Parents: []int{0}, Weights: []float64{1}, NL: ReLU},
	}}
	x, err := m.Sample(SampleConfig{N: 500, Rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	var zeros int
	for _, row := range x {
		if row[1] < 0 {
			t.Fatalf("relu output %v negative", row[1])
		}
		if row[1] == 0 {
			zeros++
		}
	}
	// Roughly half the inputs are negative, so ReLU should clamp many.
	if zeros < 100 {
		t.Errorf("only %d clamped values of 500; ReLU not active", zeros)
	}
}

func TestCombinedInterventionsCompose(t *testing.T) {
	// MeanShift and NoiseScale on the same target compose.
	m := &Model{Nodes: []Node{{NL: Linear, NoiseStd: 1}}}
	ivs := []Intervention{
		{Target: 0, Kind: MeanShift, Amount: 5},
		{Target: 0, Kind: NoiseScale, Amount: 2},
	}
	x, err := m.Sample(SampleConfig{N: 5000, Interventions: ivs, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	col := make([]float64, len(x))
	for i := range x {
		col[i] = x[i][0]
	}
	if m := stats.Mean(col); math.Abs(m-5) > 0.15 {
		t.Errorf("mean = %v; want ~5", m)
	}
	if v := stats.Variance(col); math.Abs(v-4) > 0.5 {
		t.Errorf("variance = %v; want ~4", v)
	}
}
