package scm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netdrift/internal/stats"
)

func chainModel() *Model {
	// X0 -> X1 -> X2
	return &Model{Nodes: []Node{
		{NL: Linear, NoiseStd: 1},
		{Parents: []int{0}, Weights: []float64{2}, NL: Linear, NoiseStd: 0.1},
		{Parents: []int{1}, Weights: []float64{1}, NL: Linear, NoiseStd: 0.1},
	}}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		model   *Model
		wantErr bool
	}{
		{name: "valid chain", model: chainModel()},
		{name: "empty", model: &Model{}, wantErr: true},
		{
			name: "parent after child",
			model: &Model{Nodes: []Node{
				{Parents: []int{1}, Weights: []float64{1}, NL: Linear},
				{NL: Linear},
			}},
			wantErr: true,
		},
		{
			name: "weights mismatch",
			model: &Model{Nodes: []Node{
				{NL: Linear},
				{Parents: []int{0}, Weights: nil, NL: Linear},
			}},
			wantErr: true,
		},
		{
			name:    "negative noise",
			model:   &Model{Nodes: []Node{{NL: Linear, NoiseStd: -1}}},
			wantErr: true,
		},
		{
			name:    "bad nonlinearity",
			model:   &Model{Nodes: []Node{{NoiseStd: 1}}},
			wantErr: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.model.Validate()
			if tt.wantErr && !errors.Is(err, ErrInvalidModel) {
				t.Errorf("Validate() = %v; want ErrInvalidModel", err)
			}
			if !tt.wantErr && err != nil {
				t.Errorf("Validate() = %v; want nil", err)
			}
		})
	}
}

func TestSampleShapeAndDeterminism(t *testing.T) {
	m := chainModel()
	x1, err := m.Sample(SampleConfig{N: 50, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	if len(x1) != 50 || len(x1[0]) != 3 {
		t.Fatalf("sample shape = %dx%d; want 50x3", len(x1), len(x1[0]))
	}
	x2, err := m.Sample(SampleConfig{N: 50, Rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		for j := range x1[i] {
			if x1[i][j] != x2[i][j] {
				t.Fatal("same seed must reproduce identical samples")
			}
		}
	}
}

func TestSampleErrors(t *testing.T) {
	m := chainModel()
	rng := rand.New(rand.NewSource(1))
	if _, err := m.Sample(SampleConfig{N: 0, Rng: rng}); err == nil {
		t.Error("expected error for N=0")
	}
	if _, err := m.Sample(SampleConfig{N: 5}); err == nil {
		t.Error("expected error for nil Rng")
	}
	if _, err := m.Sample(SampleConfig{N: 5, Rng: rng,
		Interventions: []Intervention{{Target: 99, Kind: MeanShift}}}); err == nil {
		t.Error("expected error for out-of-range target")
	}
	if _, err := m.Sample(SampleConfig{N: 5, Rng: rng,
		Exogenous: [][]float64{{1, 2, 3}}}); err == nil {
		t.Error("expected error for wrong exogenous row count")
	}
}

func TestChainCorrelationStructure(t *testing.T) {
	m := chainModel()
	x, err := m.Sample(SampleConfig{N: 4000, Rng: rand.New(rand.NewSource(11))})
	if err != nil {
		t.Fatal(err)
	}
	c0 := column(x, 0)
	c1 := column(x, 1)
	c2 := column(x, 2)
	// X1 = 2*X0 + small noise: strong positive correlation.
	if r := stats.Correlation(c0, c1); r < 0.95 {
		t.Errorf("corr(X0,X1) = %v; want > 0.95", r)
	}
	// X2 = X1 + small noise: correlation flows down the chain.
	if r := stats.Correlation(c0, c2); r < 0.9 {
		t.Errorf("corr(X0,X2) = %v; want > 0.9", r)
	}
}

func TestMeanShiftIntervention(t *testing.T) {
	m := chainModel()
	rngA := rand.New(rand.NewSource(5))
	rngB := rand.New(rand.NewSource(6))
	obs, err := m.Sample(SampleConfig{N: 3000, Rng: rngA})
	if err != nil {
		t.Fatal(err)
	}
	ivs := []Intervention{{Target: 1, Kind: MeanShift, Amount: 5}}
	itv, err := m.Sample(SampleConfig{N: 3000, Interventions: ivs, Rng: rngB})
	if err != nil {
		t.Fatal(err)
	}
	// Target mean shifts by ~5.
	d1 := stats.Mean(column(itv, 1)) - stats.Mean(column(obs, 1))
	if math.Abs(d1-5) > 0.3 {
		t.Errorf("mean shift on X1 = %v; want ~5", d1)
	}
	// Downstream node X2 inherits the shift (X2 = X1 + noise).
	d2 := stats.Mean(column(itv, 2)) - stats.Mean(column(obs, 2))
	if math.Abs(d2-5) > 0.3 {
		t.Errorf("propagated shift on X2 = %v; want ~5", d2)
	}
	// Upstream node X0 is unaffected.
	d0 := stats.Mean(column(itv, 0)) - stats.Mean(column(obs, 0))
	if math.Abs(d0) > 0.15 {
		t.Errorf("shift on X0 = %v; want ~0", d0)
	}
}

func TestNoiseScaleIntervention(t *testing.T) {
	m := chainModel()
	obs, _ := m.Sample(SampleConfig{N: 4000, Rng: rand.New(rand.NewSource(7))})
	ivs := []Intervention{{Target: 0, Kind: NoiseScale, Amount: 3}}
	itv, _ := m.Sample(SampleConfig{N: 4000, Interventions: ivs, Rng: rand.New(rand.NewSource(8))})
	vObs := stats.Variance(column(obs, 0))
	vItv := stats.Variance(column(itv, 0))
	if ratio := vItv / vObs; math.Abs(ratio-9) > 1.5 {
		t.Errorf("variance ratio = %v; want ~9", ratio)
	}
}

func TestMechanismScaleIntervention(t *testing.T) {
	m := chainModel()
	ivs := []Intervention{{Target: 1, Kind: MechanismScale, Amount: 0}}
	itv, _ := m.Sample(SampleConfig{N: 4000, Interventions: ivs, Rng: rand.New(rand.NewSource(9))})
	// With weight zeroed, X1 no longer depends on X0.
	if r := stats.Correlation(column(itv, 0), column(itv, 1)); math.Abs(r) > 0.06 {
		t.Errorf("corr(X0,X1) after severing = %v; want ~0", r)
	}
}

func TestExogenousInput(t *testing.T) {
	m := &Model{Nodes: []Node{{NL: Linear, NoiseStd: 0.01}}}
	exog := [][]float64{{10}, {20}, {30}}
	x, err := m.Sample(SampleConfig{N: 3, Exogenous: exog, Rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{10, 20, 30} {
		if math.Abs(x[i][0]-want) > 0.2 {
			t.Errorf("sample %d = %v; want ~%v", i, x[i][0], want)
		}
	}
}

func TestTargets(t *testing.T) {
	ivs := []Intervention{
		{Target: 5, Kind: MeanShift},
		{Target: 2, Kind: NoiseScale},
		{Target: 5, Kind: NoiseScale}, // duplicate target
	}
	got := Targets(ivs)
	if len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Errorf("Targets = %v; want [2 5]", got)
	}
	if got := Targets(nil); got != nil {
		t.Errorf("Targets(nil) = %v; want nil", got)
	}
}

func TestDescendants(t *testing.T) {
	// 0 -> 1 -> 3, 2 isolated.
	m := &Model{Nodes: []Node{
		{NL: Linear},
		{Parents: []int{0}, Weights: []float64{1}, NL: Linear},
		{NL: Linear},
		{Parents: []int{1}, Weights: []float64{1}, NL: Linear},
	}}
	got := m.Descendants([]int{0})
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("Descendants(0) = %v; want [1 3]", got)
	}
	if got := m.Descendants([]int{2}); got != nil {
		t.Errorf("Descendants(2) = %v; want nil", got)
	}
}

func TestRandomModel(t *testing.T) {
	m, err := RandomModel(RandomConfig{NumFeatures: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumFeatures() != 100 {
		t.Fatalf("NumFeatures = %d; want 100", m.NumFeatures())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Should produce some edges.
	var edges int
	for _, nd := range m.Nodes {
		edges += len(nd.Parents)
	}
	if edges == 0 {
		t.Error("random model has no edges")
	}
	// Determinism with the same seed.
	m2, err := RandomModel(RandomConfig{NumFeatures: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.Nodes {
		if m.Nodes[i].Bias != m2.Nodes[i].Bias {
			t.Fatal("same seed must produce identical models")
		}
	}
}

func TestRandomModelErrors(t *testing.T) {
	if _, err := RandomModel(RandomConfig{NumFeatures: 0}); err == nil {
		t.Error("expected error for zero features")
	}
}

func TestRandomInterventions(t *testing.T) {
	ivs, err := RandomInterventions(10, nil, 1, 2, 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ivs) != 10 {
		t.Fatalf("got %d interventions; want 10", len(ivs))
	}
	targets := Targets(ivs)
	if len(targets) != 10 {
		t.Errorf("targets not distinct: %v", targets)
	}
	for _, iv := range ivs {
		if iv.Target < 0 || iv.Target >= 50 {
			t.Errorf("target %d out of range", iv.Target)
		}
	}
	if _, err := RandomInterventions(100, []int{1, 2}, 1, 2, 50, 3); err == nil {
		t.Error("expected error when k exceeds eligible pool")
	}
	if _, err := RandomInterventions(0, nil, 1, 2, 50, 3); err == nil {
		t.Error("expected error for k=0")
	}
}

// Property: observational resampling with different seeds preserves
// per-node means within statistical tolerance (the model is stationary).
func TestSampleStationarityProperty(t *testing.T) {
	m, err := RandomModel(RandomConfig{NumFeatures: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		a, err := m.Sample(SampleConfig{N: 800, Rng: rand.New(rand.NewSource(seed))})
		if err != nil {
			return false
		}
		b, err := m.Sample(SampleConfig{N: 800, Rng: rand.New(rand.NewSource(seed + 1))})
		if err != nil {
			return false
		}
		for j := 0; j < 10; j++ {
			ca, cb := column(a, j), column(b, j)
			pooledSD := math.Sqrt(stats.Variance(ca)/800 + stats.Variance(cb)/800)
			if math.Abs(stats.Mean(ca)-stats.Mean(cb)) > 6*pooledSD+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func column(x [][]float64, j int) []float64 {
	out := make([]float64, len(x))
	for i := range x {
		out[i] = x[i][j]
	}
	return out
}
